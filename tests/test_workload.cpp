// Tests for the workload:: subsystem: arrival-model schedules, legacy
// closed-loop equivalence, Zipf skew, trace replay, spec serialization,
// the castAt/topology validation added alongside it, and golden-pinned
// fingerprints for ragged topologies under the open-loop models.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "golden_util.hpp"
#include "testing/scenario.hpp"
#include "workload/generator.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;
using wanmc::testing::Scenario;
using wanmc::testing::ScenarioRunner;

RunConfig wanCfg(ProtocolKind kind, int groups, int procs, uint64_t seed) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

RunConfig lanCfg(ProtocolKind kind, int groups, int procs, uint64_t seed) {
  RunConfig c = wanCfg(kind, groups, procs, seed);
  c.latency = sim::LatencyModel{kMs, 2 * kMs, kMs, 2 * kMs};
  return c;
}

// ---------------------------------------------------------------------------
// Closed loop: the legacy schedule, and the in-flight cap.
// ---------------------------------------------------------------------------

TEST(ClosedLoop, ReproducesLegacyRotatingSchedule) {
  // The uncapped closed loop must reproduce the retired scheduleWorkload()
  // schedule exactly: cast i at start + i*interval, sender and extra
  // destination groups drawn from SplitMix64(seed) in the legacy order.
  Experiment ex(wanCfg(ProtocolKind::kA1, 3, 2, 11));
  workload::Spec spec = workload::Spec::closedLoop(8, 50 * kMs, 2);
  spec.seed = 7;
  auto& w = ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);

  ASSERT_EQ(r.trace.casts.size(), 8u);
  ASSERT_EQ(w.issued().size(), 8u);
  SplitMix64 rng(7);
  for (int i = 0; i < 8; ++i) {
    const auto& c = r.trace.casts[static_cast<size_t>(i)];
    EXPECT_EQ(c.when, 10 * kMs + i * 50 * kMs);
    const auto sender = static_cast<ProcessId>(rng.next() % 6);
    EXPECT_EQ(c.process, sender);
    GroupSet dest;
    dest.add(r.topo.group(sender));
    while (dest.size() < 2) dest.add(static_cast<GroupId>(rng.next() % 3));
    EXPECT_EQ(c.dest, dest);
    EXPECT_EQ(w.issued()[static_cast<size_t>(i)], c.msg);
  }
}

TEST(ClosedLoop, InFlightCapDefersArrivals) {
  // cap=1 with a 5ms think time on a WAN: every cast after the first must
  // wait for its predecessor's first delivery, so arrivals are spaced by
  // delivery latency (hundreds of ms), not by the nominal interval.
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 3));
  workload::Spec spec = workload::Spec::closedLoop(5, 5 * kMs, 2);
  spec.inFlightCap = 1;
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);

  ASSERT_EQ(r.trace.casts.size(), 5u);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  for (size_t i = 0; i + 1 < r.trace.casts.size(); ++i) {
    const MsgId prev = r.trace.casts[i].msg;
    SimTime firstDelivery = kTimeNever;
    for (const auto& d : r.trace.deliveries)
      if (d.msg == prev) firstDelivery = std::min(firstDelivery, d.when);
    ASSERT_NE(firstDelivery, kTimeNever);
    EXPECT_GE(r.trace.casts[i + 1].when, firstDelivery)
        << "cast " << i + 1 << " issued before cast " << i << " completed";
  }
}

// ---------------------------------------------------------------------------
// Open-loop models.
// ---------------------------------------------------------------------------

TEST(OpenLoop, FixedGapIgnoresDeliveryProgress) {
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 5));
  workload::Spec spec;
  spec.model = workload::Model::kOpenLoopFixed;
  spec.count = 10;
  spec.meanGap = 7 * kMs;  // far below the WAN delivery latency
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 10u);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(r.trace.casts[static_cast<size_t>(i)].when,
              10 * kMs + i * 7 * kMs);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
}

TEST(OpenLoop, PoissonGapsJitterButReplayDeterministically) {
  auto runOnce = [] {
    Experiment ex(lanCfg(ProtocolKind::kSkeen87, 3, 1, 5));
    ex.addWorkload(workload::Spec::openLoopPoisson(30, 20 * kMs, 2));
    auto r = ex.run(600 * kSec);
    std::vector<SimTime> whens;
    for (const auto& c : r.trace.casts) whens.push_back(c.when);
    return whens;
  };
  const auto whens = runOnce();
  ASSERT_EQ(whens.size(), 30u);
  std::set<SimTime> gaps;
  for (size_t i = 1; i < whens.size(); ++i)
    gaps.insert(whens[i] - whens[i - 1]);
  EXPECT_GT(gaps.size(), 3u) << "Poisson arrivals should jitter";
  EXPECT_EQ(whens, runOnce()) << "same seed must replay the same schedule";
}

TEST(Bursty, HonorsOnOffPhases) {
  Experiment ex(lanCfg(ProtocolKind::kSkeen87, 3, 1, 5));
  workload::Spec spec;
  spec.model = workload::Model::kBursty;
  spec.count = 6;
  spec.onDuration = 20 * kMs;
  spec.offDuration = 300 * kMs;
  spec.burstGap = 10 * kMs;
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 6u);
  const SimTime expected[] = {10 * kMs,  20 * kMs,  330 * kMs,
                              340 * kMs, 650 * kMs, 660 * kMs};
  for (size_t i = 0; i < 6; ++i)
    EXPECT_EQ(r.trace.casts[i].when, expected[i]) << "cast " << i;
}

// ---------------------------------------------------------------------------
// Skew and replay.
// ---------------------------------------------------------------------------

TEST(Zipf, SenderSkewConcentratesLoad) {
  Experiment ex(lanCfg(ProtocolKind::kSkeen87, 3, 2, 9));
  workload::Spec spec;
  spec.model = workload::Model::kOpenLoopFixed;
  spec.count = 200;
  spec.meanGap = 5 * kMs;
  spec.senderZipf = 2.0;
  ex.addWorkload(spec);
  auto r = ex.run(3600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 200u);
  std::map<ProcessId, int> bySender;
  for (const auto& c : r.trace.casts) ++bySender[c.process];
  // Under Zipf(2) over 6 processes, rank 0 carries ~65% of the mass; a
  // uniform draw would put ~33 casts on each sender.
  EXPECT_GT(bySender[0], 90);
  EXPECT_GT(bySender[0], 2 * bySender[1]);
}

TEST(Zipf, DestinationSkewFavorsPopularGroups) {
  Experiment ex(lanCfg(ProtocolKind::kSkeen87, 4, 1, 9));
  workload::Spec spec;
  spec.model = workload::Model::kOpenLoopFixed;
  spec.count = 200;
  spec.meanGap = 5 * kMs;
  spec.destGroups = 2;
  spec.destZipf = 1.5;
  ex.addWorkload(spec);
  auto r = ex.run(3600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 200u);
  std::map<GroupId, int> byGroup;
  for (const auto& c : r.trace.casts)
    for (GroupId g : c.dest.groups()) ++byGroup[g];
  // Group 0 is the popular destination; group 3 is only ever addressed as
  // a sender's own group or a rare tail draw.
  EXPECT_GT(byGroup[0], byGroup[3] * 2);
}

TEST(TraceReplay, ReplaysVerbatim) {
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 4));
  std::vector<workload::TraceCast> trace = {
      {5 * kMs, 1, GroupSet::of({0})},
      {9 * kMs, 3, GroupSet::of({0, 1})},
      {13 * kMs, 0, GroupSet{}},  // empty = all groups
  };
  auto& w = ex.addWorkload(workload::Spec::traceReplay(trace));
  auto r = ex.run(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 3u);
  EXPECT_EQ(w.issued().size(), 3u);
  EXPECT_EQ(r.trace.casts[0].when, 5 * kMs);
  EXPECT_EQ(r.trace.casts[0].process, 1);
  EXPECT_EQ(r.trace.casts[0].dest, GroupSet::of({0}));
  EXPECT_EQ(r.trace.casts[1].process, 3);
  EXPECT_EQ(r.trace.casts[1].dest, GroupSet::of({0, 1}));
  EXPECT_EQ(r.trace.casts[2].dest, r.topo.allGroups());
  EXPECT_TRUE(r.checkAtomicSuite().empty());
}

TEST(Workloads, LayeredGeneratorsCompose) {
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 6));
  ex.addWorkload(workload::Spec::closedLoop(3, 40 * kMs, 2));
  ex.addWorkload(workload::Spec::traceReplay(
      {{15 * kMs, 2, GroupSet::of({1})}, {25 * kMs, 0, GroupSet::of({0})}}));
  auto r = ex.run(600 * kSec);
  EXPECT_EQ(r.trace.casts.size(), 5u);
  const std::vector<MsgId> ids = ex.workloadIds();
  EXPECT_EQ(ids.size(), 5u);
  std::set<MsgId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
}

// ---------------------------------------------------------------------------
// Spec serialization.
// ---------------------------------------------------------------------------

TEST(Spec, SerializationRoundTripsEveryModel) {
  std::vector<workload::Spec> specs;
  specs.push_back(workload::Spec::closedLoop(12, 30 * kMs, 3));
  specs.back().inFlightCap = 4;
  specs.back().senderZipf = 1.25;
  specs.push_back(workload::Spec::openLoopPoisson(50, 20 * kMs));
  specs.back().destZipf = 0.5;
  {
    workload::Spec s;
    s.model = workload::Model::kOpenLoopFixed;
    s.meanGap = 8 * kMs;
    s.seed = 99;
    specs.push_back(s);
  }
  {
    workload::Spec s;
    s.model = workload::Model::kBursty;
    s.onDuration = 50 * kMs;
    s.offDuration = 250 * kMs;
    s.burstGap = 2 * kMs;
    specs.push_back(s);
  }
  specs.push_back(workload::Spec::traceReplay(
      {{kMs, 0, GroupSet::of({0})}, {2 * kMs, 3, GroupSet{}}}));

  for (const workload::Spec& s : specs) {
    const std::string text = workload::toString(s);
    auto parsed = workload::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, s) << text;
  }
}

TEST(Spec, ParseRejectsMalformedInput) {
  EXPECT_FALSE(workload::parse("").has_value());
  EXPECT_FALSE(workload::parse("warp-drive count=3").has_value());
  EXPECT_FALSE(workload::parse("closed-loop bogus=1").has_value());
  EXPECT_FALSE(workload::parse("closed-loop count=x").has_value());
  EXPECT_FALSE(workload::parse("trace cast=nonsense").has_value());
}

// ---------------------------------------------------------------------------
// Validation: castAt arguments and scale ceilings.
// ---------------------------------------------------------------------------

TEST(Validation, CastAtRejectsBadArguments) {
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 1));
  EXPECT_THROW(ex.castAt(kMs, -1, GroupSet::of({0})),
               std::invalid_argument);
  EXPECT_THROW(ex.castAt(kMs, 4, GroupSet::of({0})),
               std::invalid_argument);  // pids are 0..3
  EXPECT_THROW(ex.castAt(kMs, 0, GroupSet{}), std::invalid_argument);
  EXPECT_THROW(ex.castAt(kMs, 0, GroupSet::of({0, 5})),
               std::invalid_argument);  // group 5 does not exist
  EXPECT_NO_THROW(ex.castAt(kMs, 0, GroupSet::of({0, 1})));
}

TEST(Validation, BroadcastProtocolsRequireFullGroupSet) {
  Experiment ex(wanCfg(ProtocolKind::kA2, 3, 1, 1));
  EXPECT_THROW(ex.castAt(kMs, 0, GroupSet::of({0, 1})),
               std::invalid_argument);
  EXPECT_NO_THROW(ex.castAllAt(kMs, 0));
}

TEST(Validation, TopologyRejectsGroupSetCeiling) {
  EXPECT_THROW(Topology(65, 1), std::invalid_argument);
  EXPECT_THROW(Topology(std::vector<int>(70, 2)), std::invalid_argument);
  EXPECT_THROW(Topology({2, 0, 2}), std::invalid_argument);
  EXPECT_NO_THROW(Topology(64, 1));
}

TEST(Validation, RodriguesWorkloadsCappedBelowScopeBase) {
  // Rodrigues98 runs per-message consensus under scope kScopeBase + msgId;
  // a workload crossing 2^20 ids must be rejected up front, not wrap.
  Experiment ex(wanCfg(ProtocolKind::kRodrigues98, 2, 2, 1));
  workload::Spec spec = workload::Spec::closedLoop(1 << 20, kMs, 2);
  EXPECT_THROW(ex.addWorkload(spec), std::invalid_argument);
  // The same budget is fine for a protocol without the scope ceiling.
  Experiment ok(wanCfg(ProtocolKind::kA1, 2, 2, 1));
  EXPECT_NO_THROW(ok.addWorkload(spec));
}

TEST(Validation, RodriguesBatchedCeilingUsesExactCarrierBudget) {
  // With batching on, carrier ids draw from the same allocator as cast
  // ids. The upfront check budgets the exact size-trigger carrier count
  // ceil(B / batchMaxSize) — replacing the old conservative 2x bound,
  // which rejected everything past ~524k casts. With maxSize = 4 and
  // nextMsgId starting at 1, B = 838860 reaches exactly id 2^20 - 1 and
  // is accepted; one more cast crosses the scope band.
  RunConfig cfg = wanCfg(ProtocolKind::kRodrigues98, 2, 2, 1);
  cfg.stack.batchWindow = 50 * kMs;
  cfg.stack.batchMaxSize = 4;
  workload::Spec fits = workload::Spec::closedLoop(838'860, kMs, 2);
  workload::Spec over = workload::Spec::closedLoop(838'861, kMs, 2);
  EXPECT_NO_THROW(Experiment(cfg).addWorkload(fits));
  EXPECT_THROW(Experiment(cfg).addWorkload(over), std::invalid_argument);
  // Unbatched runs keep the plain budget: no carrier headroom reserved.
  RunConfig plain = wanCfg(ProtocolKind::kRodrigues98, 2, 2, 1);
  workload::Spec full = workload::Spec::closedLoop((1 << 20) - 1, kMs, 2);
  EXPECT_NO_THROW(Experiment(plain).addWorkload(full));
}

TEST(Validation, RodriguesCeilingCountsLayeredWorkloadBudgets) {
  // Ids are allocated lazily at arrival time, so the ceiling must hold
  // against the RESERVED total: two workloads that individually fit must
  // not be accepted when together they cross 2^20.
  Experiment ex(wanCfg(ProtocolKind::kRodrigues98, 2, 2, 1));
  workload::Spec half = workload::Spec::closedLoop(600'000, kMs, 2);
  EXPECT_NO_THROW(ex.addWorkload(half));
  EXPECT_THROW(ex.addWorkload(half), std::invalid_argument);
}

TEST(ClosedLoop, CrashedSenderDoesNotWedgeTheCap) {
  // A cast whose sender already crashed is suppressed (the id is consumed,
  // nothing is sent): it must not count as in-flight, or a cap-1 loop
  // would wait forever for a delivery that cannot happen.
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 3, 2));
  ex.crashAt(0, kMs);
  workload::Spec spec = workload::Spec::closedLoop(12, 5 * kMs, 2);
  spec.inFlightCap = 1;
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);
  // Every arrival fired; casts by the crashed pid 0 are absent from the
  // trace but the loop kept going.
  EXPECT_EQ(ex.workloadIds().size(), 12u);
  EXPECT_GE(r.trace.casts.size(), 8u);
  EXPECT_LT(r.trace.casts.size(), 12u)
      << "seed 2 must draw the crashed sender at least once for this test "
         "to bite; pick another seed if the workload RNG changes";
  EXPECT_TRUE(r.checkAtomicSuite().empty());
}

TEST(Bursty, MidRunInstallNeverRewindsTheClock) {
  // Installing a workload whose phase anchor lies in the past must clamp
  // arrivals to the present; a rewound scheduler clock would corrupt
  // every latency stat downstream.
  Experiment ex(wanCfg(ProtocolKind::kA1, 2, 2, 8));
  ex.run(5 * kSec);  // advance the clock past spec.start
  workload::Spec spec;
  spec.model = workload::Model::kBursty;
  spec.count = 6;
  spec.onDuration = 20 * kMs;
  spec.offDuration = 300 * kMs;
  spec.burstGap = 10 * kMs;
  ex.addWorkload(spec);  // start = 10ms, long gone
  auto r = ex.runMore(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 6u);
  SimTime prev = 5 * kSec;
  for (const auto& c : r.trace.casts) {
    EXPECT_GE(c.when, prev) << "cast timestamps must be monotone";
    prev = c.when;
  }
}

// ---------------------------------------------------------------------------
// Ragged topologies x open-loop/skewed/capped models, swept over seeds and
// pinned to golden fingerprints (tests/golden/workload_fingerprints.txt).
// ---------------------------------------------------------------------------

std::map<std::string, uint64_t> raggedWorkloadCells() {
  struct ModelCase {
    const char* tag;
    workload::Spec spec;
  };
  std::vector<ModelCase> models;
  {
    workload::Spec s = workload::Spec::openLoopPoisson(6, 60 * kMs, 2);
    models.push_back({"open-poisson", s});
  }
  {
    workload::Spec s;
    s.model = workload::Model::kBursty;
    s.count = 6;
    s.onDuration = 60 * kMs;
    s.offDuration = 250 * kMs;
    s.burstGap = 15 * kMs;
    models.push_back({"bursty", s});
  }
  {
    workload::Spec s = workload::Spec::closedLoop(6, 60 * kMs, 2);
    s.senderZipf = 1.2;
    s.destZipf = 0.8;
    models.push_back({"skew-zipf", s});
  }
  {
    workload::Spec s = workload::Spec::closedLoop(6, 20 * kMs, 2);
    s.inFlightCap = 2;
    models.push_back({"closed-cap2", s});
  }

  const std::vector<std::vector<int>> topologies = {{4, 1, 3}, {2, 5, 1, 2}};
  std::map<std::string, uint64_t> out;
  for (ProtocolKind kind : {ProtocolKind::kA1, ProtocolKind::kA2}) {
    for (const auto& sizes : topologies) {
      std::string topoTag = "topo";
      for (int n : sizes) {
        topoTag += '-';  // appended separately: GCC 12 -Wrestrict false
        topoTag += std::to_string(n);  // positive on the operator+ form
      }
      for (const ModelCase& m : models) {
        Scenario s;
        s.name = std::string(wanmc::testing::protocolTestName(kind)) + "/" +
                 topoTag + "/" + m.tag;
        s.config.groupSizes = sizes;
        s.config.protocol = kind;
        s.latency = wanmc::testing::LatencyPreset::kWan;
        s.workload = m.spec;
        s.runUntil = 900 * kSec;
        s.withDefaultExpectations();
        s.expect.minDeliveries = 1;
        for (const auto& r : ScenarioRunner(s).sweepSeeds(1, 2)) {
          EXPECT_TRUE(r.ok()) << r.report();
          out[r.name] = wanmc::testing::fnv1a64(r.fingerprint);
        }
      }
    }
  }
  return out;
}

TEST(RaggedWorkloads, GoldenFingerprintsPinned) {
  wanmc::testing::checkOrRegenGolden(
      std::string(WANMC_SOURCE_DIR) + "/tests/golden/workload_fingerprints.txt",
      raggedWorkloadCells());
}

}  // namespace
}  // namespace wanmc
