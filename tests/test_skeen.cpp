// Tests for Skeen's original algorithm [2] and the paper's §1 corollary:
// Skeen's algorithm, designed for failure-free systems more than 20 years
// before the paper, already attains the genuine-multicast lower bound of
// latency degree 2.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = ProtocolKind::kSkeen87;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

RunConfig fixedCfg(int groups, int procs, uint64_t seed = 1) {
  RunConfig c = cfg(groups, procs, seed);
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

TEST(Skeen, TheCorollaryLatencyDegreeTwo) {
  // §1: "Skeen's algorithm ... is also optimal": one delay to spread m,
  // one to exchange the votes — degree 2, the Prop. 3.1/3.2 bound.
  Experiment ex(fixedCfg(2, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(Skeen, SingleGroupStillExchangesVotes) {
  // Unlike A1 (whose group clock IS agreed via consensus), Skeen's
  // per-process clocks always need the vote exchange — but within one
  // group it is intra-group traffic, so the degree stays 0.
  Experiment ex(fixedCfg(1, 3));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  EXPECT_EQ(*r.trace.latencyDegree(id), 0);
}

TEST(Skeen, NoConsensusNoFdTraffic) {
  Experiment ex(cfg(2, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_EQ(r.traffic.at(Layer::kConsensus).total(), 0u);
  EXPECT_EQ(r.traffic.at(Layer::kFailureDetector).total(), 0u);
  EXPECT_EQ(r.traffic.at(Layer::kReliableMulticast).total(), 0u);
}

TEST(Skeen, MessageComplexityQuadraticInDestinations) {
  // data: kd-1 from the sender; votes: each dest process to all others.
  const int k = 2, d = 2, n = k * d;
  Experiment ex(fixedCfg(k, d));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  const uint64_t total = r.traffic.at(Layer::kProtocol).total();
  EXPECT_EQ(total, static_cast<uint64_t>(n - 1) +  // data
                       static_cast<uint64_t>(n) * (n - 1));  // votes
}

TEST(Skeen, GenuineOnlyAddresseesParticipate) {
  Experiment ex(cfg(3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  auto v = verify::checkGenuineness(r.checkContext(), r.genuineness);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(Skeen, ConcurrentOverlappingMulticastsConsistent) {
  Experiment ex(cfg(3, 2, 13));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
  ex.castAt(kMs + 2, 2, GroupSet::of({1, 2}), "b");
  ex.castAt(kMs + 4, 4, GroupSet::of({0, 1, 2}), "c");
  ex.castAt(kMs + 6, 1, GroupSet::of({0, 2}), "d");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.trace.deliveries.size(), 4u + 4 + 6 + 4);
}

TEST(Skeen, WorkloadSweepSafe) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Experiment ex(cfg(3, 2, seed));
    workload::Spec spec = workload::Spec::closedLoop(20, 30 * kMs, 2);
    spec.seed = seed * 37;
    ex.addWorkload(spec);
    auto r = ex.run(600 * kSec);
    auto v = r.checkAtomicSuite();
    EXPECT_TRUE(v.empty()) << "seed " << seed << ": " << v[0];
  }
}

TEST(Skeen, LowerBoundNeverBeatenAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Experiment ex(cfg(3, 2, seed));
    auto id = ex.castAt(kMs, static_cast<ProcessId>(seed % 6),
                        GroupSet::of({0, 1}), "x");
    auto r = ex.run(600 * kSec);
    auto deg = r.trace.latencyDegree(id);
    ASSERT_TRUE(deg.has_value());
    EXPECT_GE(*deg, 2) << "seed " << seed;
  }
}

TEST(Skeen, MatchesA1OrderSemantics) {
  // Same workload through Skeen and A1: both must satisfy the full suite
  // (the delivered ORDERS may differ — only pairwise consistency is
  // specified).
  for (auto kind : {ProtocolKind::kSkeen87, ProtocolKind::kA1}) {
    auto c = cfg(3, 2, 2);
    c.protocol = kind;
    Experiment ex(c);
    ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
    ex.castAt(kMs + 1, 3, GroupSet::of({0, 1}), "b");
    ex.castAt(kMs + 2, 4, GroupSet::of({0, 1, 2}), "c");
    auto r = ex.run(600 * kSec);
    auto v = r.checkAtomicSuite();
    EXPECT_TRUE(v.empty()) << protocolName(kind) << ": " << v[0];
  }
}

// The shared fault matrix, which for the failure-free Skeen87 contains only
// failure-free and omission cells (traitsOf drops the crash scenarios).
TEST(Skeen, StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kSkeen87))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
