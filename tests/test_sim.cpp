// Unit tests for the simulation substrate: scheduler, topology, network,
// modified Lamport clocks (paper §2.3), crash-stop semantics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

using sim::LatencyModel;
using sim::Runtime;

TEST(Scheduler, FiresInTimeOrder) {
  sim::Scheduler s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, TieBreaksByInsertionOrder) {
  sim::Scheduler s;
  std::vector<int> order;
  s.at(10, [&] { order.push_back(1); });
  s.at(10, [&] { order.push_back(2); });
  s.at(10, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, CancelledEventsDoNotFire) {
  sim::Scheduler s;
  bool fired = false;
  auto id = s.at(10, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, RunUntilStopsEarly) {
  sim::Scheduler s;
  int count = 0;
  s.at(10, [&] { ++count; });
  s.at(100, [&] { ++count; });
  s.run(50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 50);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  sim::Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.at(s.now() + 1, recurse);
  };
  s.at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4);
}

// Regression for the PR 1 tombstone leak: cancelling an id that already
// fired (or never existed) must be a no-op — it used to insert a tombstone
// that was never erased, making pendingEvents() underflow and wrap.
TEST(Scheduler, CancelOfFiredIdIsANoop) {
  sim::Scheduler s;
  int fired = 0;
  auto id = s.at(10, [&] { ++fired; });
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pendingEvents(), 0u);
  s.cancel(id);                      // already fired: no-op
  EXPECT_EQ(s.pendingEvents(), 0u);  // must not underflow
  s.cancel(id ^ 0xdeadbeef);         // never issued: no-op
  s.cancel(0);                       // kNoEvent: no-op
  EXPECT_EQ(s.pendingEvents(), 0u);
  // The scheduler stays fully usable afterwards.
  s.at(20, [&] { ++fired; });
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelIsIdempotentAndCountsOnce) {
  sim::Scheduler s;
  bool fired = false;
  auto id = s.at(10, [&] { fired = true; });
  s.at(20, [] {});
  EXPECT_EQ(s.pendingEvents(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.cancel(id);  // double cancel: no-op
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

// Ids are generation-tagged: once an event fires, its id can never alias a
// later event even if the underlying pool slot is reused.
TEST(Scheduler, StaleIdCannotCancelASlotReusedByANewEvent) {
  sim::Scheduler s;
  bool aFired = false;
  bool bFired = false;
  auto a = s.at(10, [&] { aFired = true; });
  s.run();
  ASSERT_TRUE(aFired);
  auto b = s.at(20, [&] { bFired = true; });  // likely reuses a's slot
  EXPECT_NE(a, b);
  s.cancel(a);  // stale id: must NOT cancel b
  s.run();
  EXPECT_TRUE(bFired);
}

TEST(Scheduler, TieBreakSurvivesInterleavedCancels) {
  sim::Scheduler s;
  std::vector<int> order;
  auto a = s.at(10, [&] { order.push_back(1); });
  s.at(10, [&] { order.push_back(2); });
  auto c = s.at(10, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(4); });
  s.cancel(a);
  s.cancel(c);
  EXPECT_EQ(s.pendingEvents(), 2u);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 4}));
}

// Events stamped beyond the calendar's near window park in the far heap
// and must still fire in exact (time, insertion) order.
TEST(Scheduler, FarFutureEventsInterleaveCorrectly) {
  sim::Scheduler s;
  std::vector<int> order;
  s.at(3600 * kSec, [&] { order.push_back(5); });  // far
  s.at(1, [&] { order.push_back(1); });            // near
  s.at(10 * kSec, [&] { order.push_back(3); });    // far at insert time
  s.at(50 * kMs, [&] {                             // near
    order.push_back(2);
    // Fires at 3599.05s: before the 3600s event, after the 10s one.
    s.at(s.now() + 3599 * kSec, [&] { order.push_back(4); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(s.now(), 3600 * kSec);
}

TEST(Topology, RegularLayout) {
  Topology t(3, 4);
  EXPECT_EQ(t.numProcesses(), 12);
  EXPECT_EQ(t.numGroups(), 3);
  EXPECT_EQ(t.group(0), 0);
  EXPECT_EQ(t.group(4), 1);
  EXPECT_EQ(t.group(11), 2);
  EXPECT_TRUE(t.sameGroup(4, 7));
  EXPECT_FALSE(t.sameGroup(3, 4));
  EXPECT_EQ(t.members(1), (std::vector<ProcessId>{4, 5, 6, 7}));
}

TEST(Topology, RaggedLayout) {
  Topology t({2, 3, 1});
  EXPECT_EQ(t.numProcesses(), 6);
  EXPECT_EQ(t.group(5), 2);
  EXPECT_EQ(t.groupSize(1), 3);
  EXPECT_EQ(t.members(2), (std::vector<ProcessId>{5}));
}

TEST(GroupSet, BasicOps) {
  auto s = GroupSet::of({0, 2});
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(1));
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.groups(), (std::vector<GroupId>{0, 2}));
  EXPECT_EQ(GroupSet::all(3).size(), 3);
  EXPECT_EQ(s.without(2).size(), 1);
}

TEST(SplitMix64, DeterministicAndForkIndependent) {
  SplitMix64 a(42), b(42);
  EXPECT_EQ(a.next(), b.next());
  auto c = a.fork(1);
  auto d = a.fork(2);
  EXPECT_NE(c.next(), d.next());
  for (int i = 0; i < 1000; ++i) {
    int64_t v = a.uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

// ---------------------------------------------------------------------------

struct EchoPayload final : Payload {
  int tag;
  explicit EchoPayload(int t) : tag(t) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override { return "echo"; }
};

class Probe final : public sim::Node {
 public:
  using sim::Node::Node;
  std::vector<std::pair<ProcessId, int>> got;
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    got.push_back({from, static_cast<const EchoPayload&>(*p).tag});
  }
  void emit(ProcessId to, int tag) {
    send(to, std::make_shared<const EchoPayload>(tag));
  }
  using sim::Node::timer;
};

Runtime makeRt(int groups, int procs, uint64_t seed = 1) {
  return Runtime(Topology(groups, procs), LatencyModel::fixed(kMs, 100 * kMs),
                 seed);
}

TEST(Network, DeliversWithLatencyModel) {
  Runtime rt = makeRt(2, 2);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 4; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  probes[0]->emit(1, 7);   // intra: 1ms
  probes[0]->emit(2, 8);   // inter: 100ms
  rt.run();
  ASSERT_EQ(probes[1]->got.size(), 1u);
  ASSERT_EQ(probes[2]->got.size(), 1u);
  EXPECT_EQ(rt.now(), 100 * kMs);
}

TEST(Network, LamportClockRulesPerPaper) {
  // Rule 2: inter-group sends tick the clock, intra-group sends do not.
  // Rule 3: receive jumps to max(LC, ts(send)).
  Runtime rt = makeRt(2, 2);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 4; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  probes[0]->emit(1, 1);  // intra
  EXPECT_EQ(rt.lamport(0), 0u);
  probes[0]->emit(2, 2);  // inter
  EXPECT_EQ(rt.lamport(0), 1u);
  rt.run();
  EXPECT_EQ(rt.lamport(1), 0u);  // intra receive: max(0, 0)
  EXPECT_EQ(rt.lamport(2), 1u);  // inter receive: max(0, 1)
  EXPECT_EQ(rt.lamport(3), 0u);  // untouched

  // Traffic accounting.
  EXPECT_EQ(rt.traffic().at(Layer::kProtocol).intra, 1u);
  EXPECT_EQ(rt.traffic().at(Layer::kProtocol).inter, 1u);
}

TEST(Network, CrashedProcessesNeitherSendNorReceive) {
  Runtime rt = makeRt(1, 3);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 3; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  rt.crash(1);
  probes[0]->emit(1, 1);  // to crashed: vanishes
  probes[1]->emit(2, 2);  // from crashed: not sent
  rt.run();
  EXPECT_TRUE(probes[1]->got.empty());
  EXPECT_TRUE(probes[2]->got.empty());
  EXPECT_FALSE(rt.crashed(0));
  EXPECT_TRUE(rt.crashed(1));
  EXPECT_EQ(rt.aliveInGroup(0), 2);
}

TEST(Network, ScheduledCrashAndTimerSuppression) {
  Runtime rt = makeRt(1, 2);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 2; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  bool fired = false;
  rt.timer(1, 50 * kMs, [&] { fired = true; });
  rt.scheduleCrash(1, 10 * kMs);
  rt.run();
  EXPECT_FALSE(fired);  // timer after crash is suppressed
}

TEST(Network, DropFilterInjectsOmissions) {
  Runtime rt = makeRt(1, 2);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 2; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.setDropFilter([](ProcessId, ProcessId to, const Payload&) {
    return to == 1;
  });
  rt.start();
  probes[0]->emit(1, 1);
  rt.run();
  EXPECT_TRUE(probes[1]->got.empty());
}

TEST(Network, DeterministicAcrossIdenticalSeeds) {
  auto runOnce = [](uint64_t seed) {
    Runtime rt(Topology(2, 2), LatencyModel{kMs, 2 * kMs, 90 * kMs, 110 * kMs},
               seed);
    std::vector<Probe*> probes;
    for (ProcessId p = 0; p < 4; ++p) {
      auto n = std::make_unique<Probe>(rt, p);
      probes.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
    for (int i = 0; i < 10; ++i) probes[0]->emit(3, i);
    rt.run();
    return rt.now();
  };
  EXPECT_EQ(runOnce(5), runOnce(5));
  EXPECT_NE(runOnce(5), runOnce(6));  // jitter actually depends on the seed
}

TEST(Trace, LatencyDegreeComputation) {
  RunTrace t;
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  t.casts.push_back(CastEvent{0, 1, m->dest, 5, 0});
  t.destOf[1] = m->dest;
  t.deliveries.push_back(DeliveryEvent{0, 1, 7, 10, 0});
  t.deliveries.push_back(DeliveryEvent{1, 1, 6, 12, 0});
  ASSERT_TRUE(t.latencyDegree(1).has_value());
  EXPECT_EQ(*t.latencyDegree(1), 2);  // max(7, 6) - 5
  EXPECT_FALSE(t.latencyDegree(99).has_value());
  EXPECT_EQ(*t.minLatencyDegree(), 2);
}

}  // namespace
}  // namespace wanmc
