// Focused tests for the broadcast baselines' internals: the deterministic
// merge's frontier semantics ([1]) and the sequencer protocols' optimistic
// delivery and failover ([12]/[13]).
#include <gtest/gtest.h>

#include "abcast/sequencer_node.hpp"
#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(ProtocolKind kind, int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  c.merge.heartbeatPeriod = 200 * kMs;
  return c;
}

// ---------------------------------------------------------------------------
// Deterministic merge [1].
// ---------------------------------------------------------------------------

TEST(Merge, MultipleMessagesPerTickKeepPublisherOrder) {
  // Three messages from one publisher within one heartbeat period share a
  // tick; the per-publisher event counter must keep their relative order.
  Experiment ex(cfg(ProtocolKind::kDetMerge00, 2, 1));
  auto a = ex.castAllAt(210 * kMs, 0, "a");
  auto b = ex.castAllAt(220 * kMs, 0, "b");
  auto c = ex.castAllAt(230 * kMs, 0, "c");
  auto r = ex.run(5 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  auto seqs = r.trace.sequences();
  EXPECT_EQ(seqs[1], (std::vector<MsgId>{a, b, c}));
  EXPECT_EQ(seqs[0], (std::vector<MsgId>{a, b, c}));
}

TEST(Merge, CrossPublisherTieBreaksByPublisherId) {
  // Two messages in the same tick from different publishers: the merge
  // orders them by (tick, publisher), at every subscriber.
  Experiment ex(cfg(ProtocolKind::kDetMerge00, 2, 1));
  auto fromP1 = ex.castAllAt(230 * kMs, 1, "b");  // larger pid...
  auto fromP0 = ex.castAllAt(231 * kMs, 0, "a");  // ...but p0 sorts first
  auto r = ex.run(5 * kSec);
  auto seqs = r.trace.sequences();
  EXPECT_EQ(seqs[0], (std::vector<MsgId>{fromP0, fromP1}));
  EXPECT_EQ(seqs[1], (std::vector<MsgId>{fromP0, fromP1}));
}

TEST(Merge, MergeDelayBoundedByHeartbeatPeriod) {
  // A message waits at most ~2 heartbeat periods + 1 WAN delay for the
  // other publishers' frontiers (the rate-vs-delay tradeoff [1] studies).
  Experiment ex(cfg(ProtocolKind::kDetMerge00, 3, 1));
  auto id = ex.castAllAt(350 * kMs, 0, "x");
  auto r = ex.run(5 * kSec);
  EXPECT_LE(*r.trace.wallLatency(id), 2 * 200 * kMs + 110 * kMs);
}

TEST(Merge, ShorterHeartbeatPeriodShortensMergeDelay) {
  auto wallWith = [](SimTime period) {
    auto c = cfg(ProtocolKind::kDetMerge00, 2, 1);
    c.merge.heartbeatPeriod = period;
    Experiment ex(c);
    // The sender must be the LARGEST pid: a message from publisher P waits
    // for frontier(Q) > ts for every Q < P, i.e. for Q's next tick — the
    // heartbeat-period-dependent merge delay. (The smallest-pid
    // publisher's messages only need frontier >= ts, already satisfied.)
    auto id = ex.castAllAt(2 * period + period / 4, 1, "x");
    auto r = ex.run(20 * kSec);
    return *r.trace.wallLatency(id);
  };
  EXPECT_LT(wallWith(50 * kMs), wallWith(400 * kMs));
}

TEST(Merge, IdleSkipSuppressesRedundantHeartbeats) {
  // A busy publisher does not heartbeat: data events advance its frontier.
  Experiment ex(cfg(ProtocolKind::kDetMerge00, 2, 1));
  for (int i = 0; i < 10; ++i)
    ex.castAllAt(10 * kMs + i * 50 * kMs, 0, "x");  // p0 busy all along
  auto r = ex.run(kSec);
  // p0 sent its t=0 heartbeat plus data; p1 heartbeats every period.
  // Count protocol packets from p0: 1 hb + 10 data (1 copy each, n=2).
  uint64_t p0Sent = 0;
  (void)p0Sent;  // counted via totals below
  const auto total = r.traffic.at(Layer::kProtocol).total();
  // p1 (idle): ~5 heartbeats in 1s; p0: 1 hb + 10 data. All n-1=1 copies.
  EXPECT_LE(total, 20u);
}

// ---------------------------------------------------------------------------
// Sequencer protocols [12]/[13].
// ---------------------------------------------------------------------------

TEST(Sequencer, OptimisticOrderCanDisagreeFinalOrderCannot) {
  // Optimistic deliveries follow raw arrival order and may disagree across
  // processes; the final order never does. Two near-simultaneous senders
  // in different groups make arrival orders differ.
  Experiment ex(cfg(ProtocolKind::kSousa02, 2, 2, 7));
  ex.castAllAt(10 * kMs, 0, "a");
  ex.castAllAt(10 * kMs + 1, 2, "b");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  // p0 sees its own m first; p2 sees its own first: optimistic orders
  // differ...
  auto& n0 = dynamic_cast<abcast::SequencerNode&>(ex.node(0));
  auto& n2 = dynamic_cast<abcast::SequencerNode&>(ex.node(2));
  EXPECT_NE(n0.optimisticOrder(), n2.optimisticOrder());
  // ...but the final sequences agree (checked pairwise by the suite; spot
  // check here).
  auto seqs = r.trace.sequences();
  EXPECT_EQ(seqs[0], seqs[2]);
}

TEST(Sequencer, SousaSequencerCrashFailover) {
  Experiment ex(cfg(ProtocolKind::kSousa02, 2, 2));
  ex.castAllAt(10 * kMs, 1, "a");
  ex.crashAt(0, 400 * kMs);  // p0 is the sequencer
  ex.castAllAt(kSec, 1, "b");
  ex.castAllAt(kSec + 10 * kMs, 3, "c");
  auto r = ex.run(600 * kSec);
  auto ctx = r.checkContext();
  for (auto&& e : verify::checkUniformIntegrity(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkAgreementCorrectOnly(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkPrefixOrderCorrectOnly(ctx))
    ADD_FAILURE() << e;
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 3u) << "p" << p;
}

TEST(Sequencer, VicenteSequencerCrashStaysUniform) {
  Experiment ex(cfg(ProtocolKind::kVicente02, 2, 2));
  ex.castAllAt(10 * kMs, 1, "a");
  ex.crashAt(0, 400 * kMs);
  ex.castAllAt(kSec, 2, "b");
  auto r = ex.run(600 * kSec);
  auto ctx = r.checkContext();
  for (auto&& e : verify::checkUniformIntegrity(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkUniformAgreement(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkUniformPrefixOrder(ctx)) ADD_FAILURE() << e;
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 2u) << "p" << p;
}

TEST(Sequencer, SousaTrafficLinearVicenteQuadratic) {
  auto interFor = [](ProtocolKind kind, int d) {
    Experiment ex(cfg(kind, 2, d));
    ex.castAllAt(10 * kMs, 0, "x");
    auto r = ex.run(600 * kSec);
    return r.traffic.at(Layer::kProtocol).inter;
  };
  // Doubling n roughly doubles Sousa's traffic but quadruples Vicente's.
  const auto s2 = interFor(ProtocolKind::kSousa02, 2);
  const auto s4 = interFor(ProtocolKind::kSousa02, 4);
  const auto v2 = interFor(ProtocolKind::kVicente02, 2);
  const auto v4 = interFor(ProtocolKind::kVicente02, 4);
  EXPECT_LE(s4, 3 * s2);
  EXPECT_GE(v4, 3 * v2);
}

TEST(Sequencer, EchoFirstSightStillSequences) {
  // An echo can beat the sender's data packet to the sequencer (it carries
  // the payload): the message must still get a sequence number promptly.
  Experiment ex(cfg(ProtocolKind::kVicente02, 2, 2, 9));
  // Drop the direct data packet to the sequencer p0; p1's echo introduces m.
  ex.runtime().setDropFilter([](ProcessId from, ProcessId to,
                                const Payload& p) {
    const auto* sp = dynamic_cast<const abcast::SeqPayload*>(&p);
    return sp != nullptr && sp->kind == abcast::SeqPayload::Kind::kData &&
           from == 2 && to == 0;
  });
  ex.castAllAt(10 * kMs, 2, "x");
  auto r = ex.run(600 * kSec);
  auto seqs = r.trace.sequences();
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(seqs[p].size(), 1u) << p;
}

// The shared fault matrix for the sequencer baselines; Sousa02's cells use
// correct-only (non-uniform) obligations, Vicente02's the uniform suite.
TEST(Sequencer, SousaStandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kSousa02))
    EXPECT_TRUE(r.ok()) << r.report();
}

TEST(Sequencer, VicenteStandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kVicente02))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
