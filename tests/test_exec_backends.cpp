// Differential backend test: every protocol stack runs one standard-matrix
// cell on BOTH execution backends and must satisfy the SAME verify::
// safety properties on each.
//
// The contract is property equality, not order equality: the threaded
// backend schedules on real threads with a real clock, so its interleaving
// (and hence the delivered order and the fingerprint) may legitimately
// differ from the sim oracle's. What may NOT differ is whether the
// paper's §2.2 properties hold — integrity, validity, agreement, prefix
// order are backend-independent obligations of the protocol, and a stack
// that satisfies them only under the simulator's cooperative scheduler is
// broken.
#include <gtest/gtest.h>

#include <optional>

#include "exec/context.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;

// The first failure-free cell of the standard matrix: no crash schedule,
// no drops, no partitions — the axes the threaded backend (v1) rejects.
std::optional<testing::Scenario> failureFreeCell(ProtocolKind kind) {
  testing::MatrixOptions opt;
  opt.seedsPerCell = 1;
  for (auto& s : testing::standardFaultMatrix(kind, opt)) {
    const bool faulty = !s.crashes.empty() || s.randomCrashes.has_value() ||
                        !s.recoveries.empty() ||
                        s.randomRecoveries.has_value() || s.churn.has_value() ||
                        !s.partitions.empty() ||
                        s.randomPartitions.has_value() || !s.drops.empty();
    if (!faulty) return std::move(s);
  }
  return std::nullopt;
}

class ExecBackends : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ExecBackends, FailureFreeCellHoldsOnBothBackends) {
  auto cell = failureFreeCell(GetParam());
  ASSERT_TRUE(cell.has_value()) << "no failure-free cell in the matrix";

  testing::Scenario simCell = *cell;
  simCell.config.backend = exec::Backend::kSim;
  const auto simResult = testing::ScenarioRunner(simCell).run();
  EXPECT_TRUE(simResult.ok()) << "[sim] " << simResult.report();

  testing::Scenario thrCell = *cell;
  thrCell.config.backend = exec::Backend::kThreaded;
  const auto thrResult = testing::ScenarioRunner(thrCell).run();
  EXPECT_TRUE(thrResult.ok()) << "[threaded] " << thrResult.report();

  // Safety + liveness held on both; the workloads were identical, so the
  // delivery LEDGERS must agree even though the delivered orders need not:
  // same casts completed, same total number of deliveries.
  EXPECT_EQ(simResult.run.trace.casts.size(), thrResult.run.trace.casts.size());
  EXPECT_EQ(simResult.run.trace.deliveries.size(),
            thrResult.run.trace.deliveries.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ExecBackends,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kFritzke98,
                      ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
                      ProtocolKind::kViaBcast, ProtocolKind::kSkeen87,
                      ProtocolKind::kA2, ProtocolKind::kSousa02,
                      ProtocolKind::kVicente02, ProtocolKind::kDetMerge00),
    [](const auto& info) {
      return wanmc::testing::protocolTestName(info.param);
    });

}  // namespace
}  // namespace wanmc
