// Tests for the streaming metrics plane (PR 4): LogHistogram binning and
// percentile semantics, Recorder-vs-trace Summary equivalence, determinism
// of summaries across the sweep thread pool, the latency-throughput sweep
// driver, and the LatencyModel construction guards.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "metrics/recorder.hpp"
#include "sim/runtime.hpp"
#include "metrics/summary.hpp"
#include "metrics/sweep.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;
using metrics::LogHistogram;
using metrics::Summary;

// ---------------------------------------------------------------------------
// LogHistogram.
// ---------------------------------------------------------------------------

TEST(LogHistogram, FirstOctaveIsExact) {
  LogHistogram h;
  for (SimTime v : {0, 1, 2, 3, 7}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.max(), 7);
  EXPECT_EQ(h.percentile(0.0), 0);
  EXPECT_EQ(h.percentile(1.0), 7);
}

TEST(LogHistogram, PercentilesWithinBucketResolution) {
  LogHistogram h;
  for (SimTime v = 1; v <= 100000; v += 17) h.add(v);
  // Relative error bound: one sub-bucket (12.5%) either way.
  const double p50 = static_cast<double>(h.percentile(0.5));
  EXPECT_GT(p50, 50000.0 * 0.875);
  EXPECT_LT(p50, 50000.0 * 1.135);
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LogHistogram, OrderIndependentAndMergeExact) {
  std::vector<SimTime> values;
  for (int i = 0; i < 500; ++i) values.push_back((i * 7919) % 300000);
  LogHistogram a;
  for (SimTime v : values) a.add(v);
  std::reverse(values.begin(), values.end());
  LogHistogram b;
  for (SimTime v : values) b.add(v);
  EXPECT_EQ(a, b);

  // Splitting the stream and merging reproduces the whole.
  LogHistogram lo, hi;
  for (size_t i = 0; i < values.size(); ++i)
    (i % 2 ? lo : hi).add(values[i]);
  lo.merge(hi);
  EXPECT_EQ(lo, a);
}

TEST(LogHistogram, PercentileIsMonotoneInQ) {
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.add(i * 331);
  SimTime prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const SimTime v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

// ---------------------------------------------------------------------------
// Recorder vs trace-based Summary: identical constructions.
// ---------------------------------------------------------------------------

core::RunResult runOne(ProtocolKind kind, bool metricsOn, uint64_t seed,
                       bool crash) {
  RunConfig c;
  c.groups = 3;
  c.procsPerGroup = 3;
  c.protocol = kind;
  c.seed = seed;
  c.metrics = metricsOn;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  c.workload = workload::Spec::closedLoop(12, 60 * kMs);
  Experiment ex(c);
  if (crash) ex.crashAt(1, 130 * kMs);
  return ex.run(600 * kSec);
}

TEST(MetricsEquivalence, StreamingMatchesTraceRescan) {
  for (ProtocolKind kind :
       {ProtocolKind::kA1, ProtocolKind::kA2, ProtocolKind::kRodrigues98}) {
    for (bool crash : {false, true}) {
      if (crash && kind == ProtocolKind::kA2) continue;  // keep it quick
      auto r = runOne(kind, /*metricsOn=*/true, 5, crash);
      const Summary rebuilt = metrics::summarizeTrace(
          r.trace, r.topo, r.traffic, r.lastAlgoSend, r.endTime);
      EXPECT_EQ(r.metrics, rebuilt)
          << core::protocolName(kind) << " crash=" << crash;
    }
  }
}

TEST(MetricsEquivalence, MetricsOffFallbackMatchesRecorder) {
  auto on = runOne(ProtocolKind::kA1, true, 9, false);
  auto off = runOne(ProtocolKind::kA1, false, 9, false);
  // The runs are byte-identical (observation never perturbs), so the
  // recorder summary and the harvest-time fallback must coincide.
  EXPECT_EQ(on.metrics, off.metrics);
}

TEST(MetricsSummary, CountersAndBreakdownsAreCoherent) {
  auto r = runOne(ProtocolKind::kA1, true, 3, false);
  const Summary& m = r.metrics;
  EXPECT_EQ(m.casts, r.trace.casts.size());
  EXPECT_EQ(m.deliveries, r.trace.deliveries.size());
  EXPECT_EQ(m.completed, m.casts);        // failure-free: everything lands
  EXPECT_EQ(m.fullyDelivered, m.casts);   // ... at every addressee
  EXPECT_EQ(m.msgLatency.count(), m.completed);
  EXPECT_EQ(m.deliveryLatency.count(), m.deliveries);
  // Per-group delivery counts partition all deliveries.
  uint64_t perGroupTotal = 0;
  for (const auto& h : m.perGroup) perGroupTotal += h.count();
  EXPECT_EQ(perGroupTotal, m.deliveries);
  uint64_t perDestTotal = 0;
  for (const auto& h : m.perDestSize) perDestTotal += h.count();
  EXPECT_EQ(perDestTotal, m.deliveries);
  // Traffic seen by the observer plane == the runtime's own accounting.
  EXPECT_EQ(m.traffic, r.traffic);
  EXPECT_EQ(m.lastAlgoSendAt, r.lastAlgoSend);
  EXPECT_GT(m.offeredPerSec(), 0.0);
  EXPECT_GT(m.goodputPerSec(), 0.0);
  // Degree tallies cover every completed message.
  uint64_t degTotal = 0;
  for (const auto& [deg, n] : m.latencyDegrees) degTotal += n;
  EXPECT_EQ(degTotal, m.completed);
}

TEST(MetricsSummary, MergePoolsExactly) {
  auto a = runOne(ProtocolKind::kA1, true, 3, false).metrics;
  auto b = runOne(ProtocolKind::kA1, true, 4, false).metrics;
  Summary pooled = a;
  pooled.merge(b);
  EXPECT_EQ(pooled.casts, a.casts + b.casts);
  EXPECT_EQ(pooled.deliveries, a.deliveries + b.deliveries);
  EXPECT_EQ(pooled.msgLatency.count(),
            a.msgLatency.count() + b.msgLatency.count());
  EXPECT_EQ(pooled.msgLatency.max(),
            std::max(a.msgLatency.max(), b.msgLatency.max()));
  // Merge is symmetric.
  Summary other = b;
  other.merge(a);
  EXPECT_EQ(pooled, other);
}

// ---------------------------------------------------------------------------
// Determinism across the sweep thread pool (satellite: identical Summary
// serial vs parallel).
// ---------------------------------------------------------------------------

TEST(MetricsDeterminism, SummariesIdenticalSerialVsJobs) {
  testing::Scenario s;
  s.name = "metrics-determinism";
  s.config.groups = 3;
  s.config.procsPerGroup = 3;
  s.config.protocol = ProtocolKind::kA1;
  s.latency = testing::LatencyPreset::kWan;
  s.workload = workload::Spec::openLoopPoisson(10, 40 * kMs);
  s.randomCrashes = testing::RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
  s.withDefaultExpectations();

  testing::ScenarioRunner runner(s);
  const auto serial = runner.sweepSeeds(1, 12, /*jobs=*/1);
  const auto parallel = runner.sweepSeeds(1, 12, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint) << i;
    EXPECT_EQ(serial[i].run.metrics, parallel[i].run.metrics) << i;
  }
}

// ---------------------------------------------------------------------------
// Sweep driver.
// ---------------------------------------------------------------------------

TEST(WorkloadAccounting, NominalRateMatchesModelConfiguration) {
  EXPECT_DOUBLE_EQ(
      workload::Spec::closedLoop(10, 50 * kMs).nominalRatePerSec(), 20.0);
  EXPECT_DOUBLE_EQ(
      workload::Spec::openLoopPoisson(10, 10 * kMs).nominalRatePerSec(),
      100.0);
  workload::Spec bursty;
  bursty.model = workload::Model::kBursty;
  bursty.onDuration = 100 * kMs;
  bursty.offDuration = 400 * kMs;
  bursty.burstGap = 5 * kMs;  // 20 casts per 500ms cycle
  EXPECT_DOUBLE_EQ(bursty.nominalRatePerSec(), 40.0);
  auto replay = workload::Spec::traceReplay(
      {{0, 0, {}}, {100 * kMs, 1, {}}, {200 * kMs, 0, {}}});
  EXPECT_DOUBLE_EQ(replay.nominalRatePerSec(), 10.0);
}

TEST(WorkloadAccounting, MeasuredOfferedTracksNominalWhenUncapped) {
  RunConfig c;
  c.groups = 3;
  c.procsPerGroup = 2;
  c.protocol = ProtocolKind::kA1;
  c.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  workload::Spec spec = workload::Spec::closedLoop(50, 20 * kMs);
  c.workload = spec;
  Experiment ex(c);
  auto r = ex.run(600 * kSec);
  // Uncapped: the generator honors its spacing exactly.
  EXPECT_NEAR(r.metrics.offeredPerSec(), spec.nominalRatePerSec(), 1e-6);
}

TEST(Sweep, DefaultLadderIsGeometricDescending) {
  const auto ladder = metrics::defaultLoadLadder(7, 256 * kMs, 4 * kMs);
  ASSERT_EQ(ladder.size(), 7u);
  EXPECT_EQ(ladder.front(), 256 * kMs);
  EXPECT_EQ(ladder.back(), 4 * kMs);
  for (size_t i = 1; i < ladder.size(); ++i)
    EXPECT_LT(ladder[i], ladder[i - 1]);
}

TEST(Sweep, LatencyVsOfferedLoadCurveIsMonotone) {
  // The acceptance shape, pinned on EXACTLY the default `wanmc_cli sweep
  // --protocol a1` configuration (default topology/ladder/seeds/casts):
  // offered load rises along the ladder; p50/p99 never decrease with load
  // (the paper's Figure-1 regime for A1). Note this is a property of the
  // default ladder, not of every ladder: mid-load staggering vs high-load
  // consensus batching make latency-vs-load genuinely non-monotone for
  // some (topology, ladder) choices.
  metrics::SweepOptions opt;
  opt.base.protocol = ProtocolKind::kA1;
  opt.base.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  const auto curve = metrics::runLatencyThroughputSweep(opt);
  ASSERT_EQ(curve.size(), 7u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].offeredPerSec, curve[i - 1].offeredPerSec) << i;
    EXPECT_GE(curve[i].latency.p50, curve[i - 1].latency.p50) << i;
    EXPECT_GE(curve[i].latency.p99, curve[i - 1].latency.p99) << i;
  }
  for (const auto& p : curve) {
    EXPECT_EQ(p.seeds, 3);
    EXPECT_EQ(p.casts, 1800u);
    EXPECT_GT(p.goodputPerSec, 0.0);
  }
  // Under overload the loop falls measurably behind the offered rate.
  EXPECT_LT(curve.back().goodputPerSec, curve.back().offeredPerSec * 0.99);
}

TEST(Sweep, DeterministicAcrossJobs) {
  metrics::SweepOptions opt;
  opt.base.protocol = ProtocolKind::kA1;
  opt.base.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  opt.casts = 40;
  opt.seedsPerPoint = 3;
  opt.intervals = {64 * kMs, 16 * kMs};
  opt.jobs = 1;
  const auto serial = metrics::runLatencyThroughputSweep(opt);
  opt.jobs = 4;
  const auto parallel = metrics::runLatencyThroughputSweep(opt);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].latency, parallel[i].latency) << i;
    EXPECT_EQ(serial[i].offeredPerSec, parallel[i].offeredPerSec) << i;
  }
}

TEST(Sweep, CsvHasHeaderAndRows) {
  std::vector<metrics::SweepPoint> pts(2);
  pts[0].interval = 100;
  pts[1].interval = 50;
  std::ostringstream os;
  metrics::writeSweepCsv(pts, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("interval_us,offered_per_sec,goodput_per_sec,p50_us"),
            std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

// ---------------------------------------------------------------------------
// LatencyModel validation (satellite): bad ranges rejected at construction.
// ---------------------------------------------------------------------------

TEST(LatencyModelValidation, RejectsInvertedAndNegativeBounds) {
  auto runWith = [](sim::LatencyModel m) {
    RunConfig c;
    c.latency = m;
    Experiment ex(c);
  };
  EXPECT_THROW(runWith(sim::LatencyModel{2 * kMs, kMs, 100 * kMs, 110 * kMs}),
               std::invalid_argument);
  EXPECT_THROW(runWith(sim::LatencyModel{kMs, 2 * kMs, 110 * kMs, 100 * kMs}),
               std::invalid_argument);
  EXPECT_THROW(runWith(sim::LatencyModel{-kMs, kMs, 100 * kMs, 110 * kMs}),
               std::invalid_argument);
  EXPECT_THROW(runWith(sim::LatencyModel{kMs, 2 * kMs, -1, 110 * kMs}),
               std::invalid_argument);
  // Degenerate-but-valid: zero-width and zero-latency ranges are fine.
  EXPECT_NO_THROW(runWith(sim::LatencyModel::fixed(0, 0)));
  EXPECT_THROW(sim::Runtime(Topology(2, 2),
                            sim::LatencyModel{kMs, 0, kMs, 2 * kMs}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace wanmc
