// Tests for the verify layer itself: each checker must catch planted
// violations and accept clean traces.
#include <gtest/gtest.h>

#include "verify/properties.hpp"

namespace wanmc {
namespace {

struct Builder {
  Topology topo{2, 2};
  RunTrace trace;
  std::set<ProcessId> correct{0, 1, 2, 3};

  void cast(MsgId id, ProcessId sender, GroupSet dest, uint64_t lamport = 0,
            SimTime when = 0) {
    trace.casts.push_back(CastEvent{sender, id, dest, lamport, when});
    trace.destOf[id] = dest;
    trace.senderOf[id] = sender;
  }
  void deliver(ProcessId p, MsgId id, uint64_t lamport = 0,
               SimTime when = 0) {
    trace.deliveries.push_back(DeliveryEvent{
        p, id, lamport, when,
        static_cast<uint64_t>(trace.deliveries.size())});
  }
  [[nodiscard]] verify::CheckContext ctx() const {
    return verify::CheckContext{&trace, &topo, correct};
  }
};

TEST(Integrity, AcceptsCleanTrace) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0, 1}));
  for (ProcessId p = 0; p < 4; ++p) b.deliver(p, 1);
  EXPECT_TRUE(verify::checkUniformIntegrity(b.ctx()).empty());
}

TEST(Integrity, CatchesDuplicateDelivery) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0}));
  b.deliver(0, 1);
  b.deliver(0, 1);
  EXPECT_FALSE(verify::checkUniformIntegrity(b.ctx()).empty());
}

TEST(Integrity, CatchesDeliveryWithoutCast) {
  Builder b;
  b.deliver(0, 99);
  EXPECT_FALSE(verify::checkUniformIntegrity(b.ctx()).empty());
}

TEST(Integrity, CatchesNonAddresseeDelivery) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0}));
  b.deliver(2, 1);  // p2 is in group 1
  EXPECT_FALSE(verify::checkUniformIntegrity(b.ctx()).empty());
}

TEST(Validity, CatchesMissingDeliveryAtCorrectAddressee) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.deliver(0, 1);
  b.deliver(1, 1);
  b.deliver(2, 1);  // p3 never delivers
  auto v = verify::checkValidity(b.ctx());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("p3"), std::string::npos);
}

TEST(Validity, FaultySenderCreatesNoObligation) {
  Builder b;
  b.correct = {1, 2, 3};
  b.cast(1, 0, GroupSet::of({0, 1}));  // sender p0 crashed
  EXPECT_TRUE(verify::checkValidity(b.ctx()).empty());
}

TEST(Validity, FaultyAddresseeCreatesNoObligation) {
  Builder b;
  b.correct = {0, 1, 2};
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.deliver(0, 1);
  b.deliver(1, 1);
  b.deliver(2, 1);
  EXPECT_TRUE(verify::checkValidity(b.ctx()).empty());
}

TEST(UniformAgreement, FaultyDeliveryCreatesObligation) {
  Builder b;
  b.correct = {1, 2, 3};
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.deliver(0, 1);  // p0 delivered then crashed
  auto v = verify::checkUniformAgreement(b.ctx());
  EXPECT_FALSE(v.empty());
}

TEST(NonUniformAgreement, FaultyDeliveryCreatesNoObligation) {
  Builder b;
  b.correct = {1, 2, 3};
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.deliver(0, 1);  // p0 delivered then crashed
  EXPECT_TRUE(verify::checkAgreementCorrectOnly(b.ctx()).empty());
}

TEST(PrefixOrder, AcceptsConsistentProjections) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.cast(2, 2, GroupSet::of({0, 1}));
  for (ProcessId p = 0; p < 4; ++p) {
    b.deliver(p, 1);
    b.deliver(p, 2);
  }
  EXPECT_TRUE(verify::checkUniformPrefixOrder(b.ctx()).empty());
}

TEST(PrefixOrder, AcceptsPrefix) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.cast(2, 2, GroupSet::of({0, 1}));
  b.deliver(0, 1);
  b.deliver(0, 2);
  b.deliver(2, 1);  // p2 is behind but consistent
  EXPECT_TRUE(verify::checkUniformPrefixOrder(b.ctx()).empty());
}

TEST(PrefixOrder, CatchesOrderInversion) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.cast(2, 2, GroupSet::of({0, 1}));
  b.deliver(0, 1);
  b.deliver(0, 2);
  b.deliver(2, 2);
  b.deliver(2, 1);  // inverted
  EXPECT_FALSE(verify::checkUniformPrefixOrder(b.ctx()).empty());
}

TEST(PrefixOrder, ProjectionIgnoresNonSharedMessages) {
  Builder b;
  // m1 -> groups {0,1}; m2 -> group {0} only. p0's sequence (m2, m1) and
  // p2's (m1) are consistent once projected on shared messages.
  b.cast(1, 0, GroupSet::of({0, 1}));
  b.cast(2, 0, GroupSet::of({0}));
  b.deliver(0, 2);
  b.deliver(0, 1);
  b.deliver(2, 1);
  EXPECT_TRUE(verify::checkUniformPrefixOrder(b.ctx()).empty());
}

TEST(Genuineness, FlagsOutsiderTraffic) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0}));
  verify::GenuinenessInput in;
  in.sentAlgorithmic = {0, 1, 2};  // p2 (group 1) has no business here
  auto v = verify::checkGenuineness(b.ctx(), in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("p2"), std::string::npos);
}

TEST(Genuineness, SenderOutsideDestIsAllowed) {
  Builder b;
  b.cast(1, 2, GroupSet::of({0}));  // p2 casts to a foreign group
  verify::GenuinenessInput in;
  in.sentAlgorithmic = {0, 1, 2};
  in.receivedAlgorithmic = {0, 1};
  EXPECT_TRUE(verify::checkGenuineness(b.ctx(), in).empty());
}

TEST(Quiescence, AcceptsPromptSettle) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0}), 0, 1000);
  EXPECT_TRUE(verify::checkQuiescence(b.ctx(), 2000, 5000).empty());
}

TEST(Quiescence, FlagsLateTraffic) {
  Builder b;
  b.cast(1, 0, GroupSet::of({0}), 0, 1000);
  EXPECT_FALSE(verify::checkQuiescence(b.ctx(), 99000, 5000).empty());
}

}  // namespace
}  // namespace wanmc
