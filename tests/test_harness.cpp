// Tests for the fault-injection harness itself (src/testing): determinism
// of reruns, crash-at-time semantics, drop-filter determinism and matching,
// and the expectation-derivation logic.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;
using wanmc::testing::CrashSpec;
using wanmc::testing::DropSpec;
using wanmc::testing::LatencyPreset;
using wanmc::testing::RandomCrashes;
using wanmc::testing::Scenario;
using wanmc::testing::ScenarioRunner;
using wanmc::testing::ScheduledCast;

Scenario baseScenario(ProtocolKind kind = ProtocolKind::kA1,
                      uint64_t seed = 42) {
  Scenario s;
  s.name = "harness-test";
  s.config.groups = 2;
  s.config.procsPerGroup = 3;
  s.config.protocol = kind;
  s.config.seed = seed;
  s.latency = LatencyPreset::kWan;
  s.workload = workload::Spec::closedLoop(6, 60 * kMs, 2);
  s.withDefaultExpectations();
  return s;
}

// --- determinism -----------------------------------------------------------

TEST(Harness, SameSeedProducesByteIdenticalTrace) {
  ScenarioRunner runner(baseScenario());
  auto a = runner.run();
  auto b = runner.run();
  EXPECT_TRUE(a.ok()) << a.report();
  EXPECT_FALSE(a.fingerprint.empty());
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(Harness, DifferentSeedsProduceDifferentTraces) {
  auto a = ScenarioRunner(baseScenario(ProtocolKind::kA1, 1)).run();
  auto b = ScenarioRunner(baseScenario(ProtocolKind::kA1, 2)).run();
  // Jittered WAN latencies and reseeded workloads: traces must diverge.
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Harness, RerunWithCrashesAndDropsIsStillDeterministic) {
  Scenario s = baseScenario();
  s.randomCrashes = RandomCrashes{1, 50 * kMs, 500 * kMs, 0xfeed};
  DropSpec d;
  d.interGroupOnly = true;
  d.probability = 0.25;
  s.drops.push_back(d);
  s.withDefaultExpectations();
  ScenarioRunner runner(s);
  auto a = runner.run();
  auto b = runner.run();
  EXPECT_TRUE(a.ok()) << a.report();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.effectiveCrashes.size(), b.effectiveCrashes.size());
  for (size_t i = 0; i < a.effectiveCrashes.size(); ++i) {
    EXPECT_EQ(a.effectiveCrashes[i].pid, b.effectiveCrashes[i].pid);
    EXPECT_EQ(a.effectiveCrashes[i].when, b.effectiveCrashes[i].when);
  }
}

// --- crash semantics -------------------------------------------------------

TEST(Harness, ScriptedCrashStopsTheProcessAtItsTime) {
  Scenario s = baseScenario();
  const SimTime crashTime = 200 * kMs;
  s.crashes.push_back(CrashSpec{4, crashTime});
  s.withDefaultExpectations();
  auto r = ScenarioRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.report();
  EXPECT_EQ(r.run.correct.count(4), 0u);
  for (const auto& d : r.run.trace.deliveries) {
    if (d.process == 4) {
      EXPECT_LE(d.when, crashTime) << "delivery after crash instant";
    }
  }
}

TEST(Harness, MaterializedCrashesAreMinorityPerGroupAndInWindow) {
  Topology topo(3, 5);
  RandomCrashes plan{2, 100 * kMs, 900 * kMs, 0xab};
  auto crashes = wanmc::testing::materializeCrashes(topo, plan, 7);
  auto again = wanmc::testing::materializeCrashes(topo, plan, 7);
  ASSERT_EQ(crashes.size(), again.size());
  for (size_t i = 0; i < crashes.size(); ++i) {
    EXPECT_EQ(crashes[i].pid, again[i].pid);
    EXPECT_EQ(crashes[i].when, again[i].when);
  }
  std::map<GroupId, std::set<ProcessId>> perGroup;
  for (const auto& c : crashes) {
    EXPECT_GE(c.when, plan.earliest);
    EXPECT_LE(c.when, plan.latest);
    perGroup[topo.group(c.pid)].insert(c.pid);
  }
  for (GroupId g = 0; g < 3; ++g)
    EXPECT_EQ(perGroup[g].size(), 2u) << "g" << g;  // 2 = minority of 5
}

TEST(Harness, MaterializedCrashesClampToStrictMinority) {
  Topology topo(2, 3);
  RandomCrashes plan{5, 10 * kMs, 20 * kMs, 0xab};  // asks for 5 victims
  auto crashes = wanmc::testing::materializeCrashes(topo, plan, 1);
  std::map<GroupId, int> count;
  for (const auto& c : crashes) ++count[topo.group(c.pid)];
  for (auto [g, n] : count) EXPECT_LE(n, 1) << "g" << g;  // minority of 3
}

TEST(Harness, DifferentSeedsPickDifferentCrashSchedules) {
  Topology topo(3, 5);
  RandomCrashes plan{2, 100 * kMs, 900 * kMs, 0xab};
  auto a = wanmc::testing::materializeCrashes(topo, plan, 1);
  auto b = wanmc::testing::materializeCrashes(topo, plan, 2);
  bool differ = a.size() != b.size();
  for (size_t i = 0; !differ && i < a.size(); ++i)
    differ = a[i].pid != b[i].pid || a[i].when != b[i].when;
  EXPECT_TRUE(differ);
}

// --- drop filters ----------------------------------------------------------

TEST(Harness, TotalInterGroupBlackoutStopsRemoteDelivery) {
  Scenario s = baseScenario();
  s.workload.reset();
  s.casts.push_back(ScheduledCast{kMs, 0, GroupSet::of({0, 1}), "x"});
  DropSpec d;  // drop every packet that crosses a group border, forever
  d.interGroupOnly = true;
  s.drops.push_back(d);
  s.withDefaultExpectations();  // drops present: safety-only
  auto r = ScenarioRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.report();
  for (const auto& del : r.run.trace.deliveries)
    EXPECT_EQ(r.run.topo.group(del.process), 0)
        << "group 1 delivered despite the blackout";
}

TEST(Harness, DropWindowOnlyAffectsItsInterval) {
  // Blackout long past the run's traffic: nothing may change.
  Scenario plain = baseScenario();
  Scenario windowed = baseScenario();
  DropSpec d;
  d.interGroupOnly = true;
  d.activeFrom = 800 * kSec;
  d.activeUntil = 900 * kSec;
  windowed.drops.push_back(d);
  // Keep liveness checks identical on both sides for a fair comparison.
  windowed.expect = plain.expect;
  auto a = ScenarioRunner(plain).run();
  auto b = ScenarioRunner(windowed).run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(Harness, LayerScopedDropOnlyMatchesThatLayer) {
  // Footnote-4 style scenario via the harness: drop every reliable-multicast
  // packet into group 1; A1 must still deliver everywhere through the
  // timestamp exchange, so liveness can stay ON.
  Scenario s = baseScenario();
  s.workload.reset();
  s.casts.push_back(ScheduledCast{kMs, 0, GroupSet::of({0, 1}), "x"});
  DropSpec d;
  d.layer = Layer::kReliableMulticast;
  d.toGroup = 1;
  s.drops.push_back(d);
  s.withDefaultExpectations();
  s.expect.checkLiveness = true;  // this particular loss is compensated
  auto r = ScenarioRunner(s).run();
  EXPECT_TRUE(r.ok()) << r.report();
  auto seqs = r.run.trace.sequences();
  for (ProcessId p = 0; p < 6; ++p)
    EXPECT_EQ(seqs[p].size(), 1u) << "p" << p;
}

TEST(Harness, ProbabilisticDropIsSeedDeterministic) {
  Scenario s = baseScenario();
  DropSpec d;
  d.interGroupOnly = true;
  d.probability = 0.5;
  s.drops.push_back(d);
  s.withDefaultExpectations();
  auto a = ScenarioRunner(s).run();
  auto b = ScenarioRunner(s).run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  // And a different scenario seed re-derives a different coin stream.
  Scenario s2 = s;
  s2.config.seed = s.config.seed + 1;
  auto c = ScenarioRunner(s2).run();
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

// --- expectations ----------------------------------------------------------

TEST(Harness, DefaultExpectationsFollowProtocolTraits) {
  auto uniform = wanmc::testing::defaultExpectations(ProtocolKind::kA1,
                                                     false, false);
  EXPECT_TRUE(uniform.uniform);
  EXPECT_TRUE(uniform.checkLiveness);
  EXPECT_TRUE(uniform.checkGenuineness);

  auto sousa = wanmc::testing::defaultExpectations(ProtocolKind::kSousa02,
                                                   true, false);
  EXPECT_FALSE(sousa.uniform);

  auto dropped = wanmc::testing::defaultExpectations(ProtocolKind::kA1,
                                                     false, true);
  EXPECT_FALSE(dropped.checkLiveness);
  EXPECT_FALSE(dropped.checkGenuineness);

  EXPECT_FALSE(
      wanmc::testing::traitsOf(ProtocolKind::kSkeen87).toleratesCrashes);
  EXPECT_FALSE(
      wanmc::testing::traitsOf(ProtocolKind::kDetMerge00).toleratesCrashes);
}

TEST(Harness, StallDetectionReportsFlatRuns) {
  Scenario s = baseScenario();
  DropSpec d;  // drop absolutely everything
  s.drops.push_back(d);
  s.withDefaultExpectations();
  s.expect.minDeliveries = 1;
  auto r = ScenarioRunner(s).run();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations[0].find("stall"), std::string::npos);
}

// --- sweeps ----------------------------------------------------------------

TEST(Harness, SeedSweepRunsEachSeedOnce) {
  auto results = ScenarioRunner(baseScenario()).sweepSeeds(10, 5);
  ASSERT_EQ(results.size(), 5u);
  std::set<std::string> prints;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].seed,
              static_cast<uint64_t>(10 + i));
    EXPECT_TRUE(results[static_cast<size_t>(i)].ok())
        << results[static_cast<size_t>(i)].report();
    prints.insert(results[static_cast<size_t>(i)].fingerprint);
  }
  EXPECT_EQ(prints.size(), 5u) << "seeds collided to identical traces";
}

TEST(Harness, StandardMatrixCoversCrashAndDropCells) {
  auto scenarios = wanmc::testing::standardFaultMatrix(ProtocolKind::kA1);
  bool hasCrash = false, hasDrop = false, hasPlain = false;
  for (const auto& s : scenarios) {
    if (s.randomCrashes || !s.crashes.empty()) hasCrash = true;
    if (!s.drops.empty()) hasDrop = true;
    if (!s.randomCrashes && s.crashes.empty() && s.drops.empty())
      hasPlain = true;
  }
  EXPECT_TRUE(hasCrash);
  EXPECT_TRUE(hasDrop);
  EXPECT_TRUE(hasPlain);
  // Skeen's matrix must not contain crash cells.
  for (const auto& s :
       wanmc::testing::standardFaultMatrix(ProtocolKind::kSkeen87))
    EXPECT_TRUE(!s.randomCrashes && s.crashes.empty()) << s.name;
}

}  // namespace
}  // namespace wanmc
