// Shared machinery for golden-fingerprint tests: a stable hash, plus
// load/compare/regenerate helpers over "key <hex-hash>" files under
// tests/golden/. Regenerate a file (only when a behavior change is
// intended and reviewed) by running the owning test binary with
// WANMC_REGEN_GOLDEN=1.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace wanmc::testing {

inline uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Compares `actual` against the golden file at `path`, or rewrites the
// file when WANMC_REGEN_GOLDEN is set (then skips the test). Every
// mismatch is reported as a test failure keyed by cell name, capped so a
// systematic divergence does not flood the log.
inline void checkOrRegenGolden(
    const std::string& path,
    const std::map<std::string, uint64_t>& actual) {
  ASSERT_FALSE(actual.empty());

  if (std::getenv("WANMC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& [key, hash] : actual)
      out << key << " " << std::hex << hash << std::dec << "\n";
    GTEST_SKIP() << "regenerated " << path << " with " << actual.size()
                 << " cells";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with WANMC_REGEN_GOLDEN=1 to create it";
  // Line format: <key with spaces> <hex hash>; the hash is the last token.
  std::map<std::string, uint64_t> golden;
  std::string line;
  while (std::getline(in, line)) {
    const size_t sep = line.rfind(' ');
    if (sep == std::string::npos) continue;
    golden[line.substr(0, sep)] =
        std::stoull(line.substr(sep + 1), nullptr, 16);
  }

  EXPECT_EQ(golden.size(), actual.size())
      << "cell set changed: " << golden.size() << " golden cells vs "
      << actual.size() << " actual";
  int mismatches = 0;
  std::vector<std::string> divergedKeys;
  std::vector<std::string> newKeys;
  for (const auto& [k, h] : actual) {
    auto it = golden.find(k);
    if (it == golden.end()) {
      newKeys.push_back(k);
      ADD_FAILURE() << "cell not in golden file: " << k;
    } else if (it->second != h) {
      divergedKeys.push_back(k);
      if (++mismatches <= 10)  // don't flood the log
        ADD_FAILURE() << "fingerprint diverged: " << k;
    }
  }
  std::vector<std::string> missingKeys;
  for (const auto& [k, h] : golden)
    if (!actual.count(k)) missingKeys.push_back(k);

  if (divergedKeys.empty() && newKeys.empty() && missingKeys.empty()) return;

  // Determinism breaks must be diagnosable from the CI run page: write
  // the observed hashes and a per-cell diff summary next to the build
  // (WANMC_GOLDEN_DIFF_DIR, set by CMake to <build>/golden_diff; CI
  // uploads the directory as an artifact when golden tests fail).
  const char* diffDir = std::getenv("WANMC_GOLDEN_DIFF_DIR");
#ifdef WANMC_GOLDEN_DIFF_DIR_DEFAULT
  if (diffDir == nullptr) diffDir = WANMC_GOLDEN_DIFF_DIR_DEFAULT;
#endif
  if (diffDir == nullptr) return;
  std::filesystem::create_directories(diffDir);
  const std::string stem =
      std::filesystem::path(path).filename().string();
  {
    std::ofstream out(std::string(diffDir) + "/" + stem + ".actual");
    for (const auto& [key, hash] : actual)
      out << key << " " << std::hex << hash << std::dec << "\n";
  }
  std::ofstream diff(std::string(diffDir) + "/" + stem + ".diff");
  diff << "# golden: " << path << "\n";
  for (const auto& k : divergedKeys) diff << "diverged " << k << "\n";
  for (const auto& k : newKeys) diff << "only-in-actual " << k << "\n";
  for (const auto& k : missingKeys) diff << "only-in-golden " << k << "\n";
}

}  // namespace wanmc::testing
