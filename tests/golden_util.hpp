// Shared machinery for golden-fingerprint tests: a stable hash, plus
// load/compare/regenerate helpers over "key <hex-hash>" files under
// tests/golden/. Regenerate a file (only when a behavior change is
// intended and reviewed) by running the owning test binary with
// WANMC_REGEN_GOLDEN=1.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace wanmc::testing {

inline uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Compares `actual` against the golden file at `path`, or rewrites the
// file when WANMC_REGEN_GOLDEN is set (then skips the test). Every
// mismatch is reported as a test failure keyed by cell name, capped so a
// systematic divergence does not flood the log.
inline void checkOrRegenGolden(
    const std::string& path,
    const std::map<std::string, uint64_t>& actual) {
  ASSERT_FALSE(actual.empty());

  if (std::getenv("WANMC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const auto& [key, hash] : actual)
      out << key << " " << std::hex << hash << std::dec << "\n";
    GTEST_SKIP() << "regenerated " << path << " with " << actual.size()
                 << " cells";
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with WANMC_REGEN_GOLDEN=1 to create it";
  // Line format: <key with spaces> <hex hash>; the hash is the last token.
  std::map<std::string, uint64_t> golden;
  std::string line;
  while (std::getline(in, line)) {
    const size_t sep = line.rfind(' ');
    if (sep == std::string::npos) continue;
    golden[line.substr(0, sep)] =
        std::stoull(line.substr(sep + 1), nullptr, 16);
  }

  EXPECT_EQ(golden.size(), actual.size())
      << "cell set changed: " << golden.size() << " golden cells vs "
      << actual.size() << " actual";
  int mismatches = 0;
  for (const auto& [k, h] : actual) {
    auto it = golden.find(k);
    if (it == golden.end()) {
      ADD_FAILURE() << "cell not in golden file: " << k;
    } else if (it->second != h) {
      ADD_FAILURE() << "fingerprint diverged: " << k;
      if (++mismatches >= 10) break;  // don't flood the log
    }
  }
}

}  // namespace wanmc::testing
