// Every protocol stack is exercised under the SAME crash/drop/seed matrix
// (testing::standardFaultMatrix): failure-free runs on three latency
// presets, random minority crashes, sender crashes, targeted and
// probabilistic omission faults, and crash+loss combinations — each swept
// over multiple seeds, with expectations derived from the protocol's
// published guarantees (uniform vs non-uniform, crash-tolerant or not).
#include <gtest/gtest.h>

#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;

class ScenarioMatrix : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ScenarioMatrix, AllCellsSatisfyDerivedExpectations) {
  wanmc::testing::MatrixOptions opt;
  opt.seedsPerCell = 3;
  auto results = wanmc::testing::runStandardMatrix(GetParam(), opt);
  ASSERT_FALSE(results.empty());
  for (const auto& r : results) EXPECT_TRUE(r.ok()) << r.report();
}

TEST_P(ScenarioMatrix, EveryCellIsReproducible) {
  // One pass over the matrix at a single seed, run twice: byte-identical.
  wanmc::testing::MatrixOptions opt;
  opt.seedsPerCell = 1;
  auto a = wanmc::testing::runStandardMatrix(GetParam(), opt);
  auto b = wanmc::testing::runStandardMatrix(GetParam(), opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint) << a[i].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ScenarioMatrix,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kFritzke98,
                      ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
                      ProtocolKind::kViaBcast, ProtocolKind::kSkeen87,
                      ProtocolKind::kA2, ProtocolKind::kSousa02,
                      ProtocolKind::kVicente02, ProtocolKind::kDetMerge00),
    [](const auto& info) {
      return wanmc::testing::protocolTestName(info.param);
    });

}  // namespace
}  // namespace wanmc
