// Cross-protocol integration tests: every protocol against the full safety
// suite on shared workloads, plus the paper's headline cross-protocol
// claims (lower bounds, multicast-vs-broadcast tradeoff).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workload/generator.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(ProtocolKind kind, int groups, int procs, uint64_t seed) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

class AllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AllProtocols, SafetySuiteOnMixedWorkload) {
  const auto kind = GetParam();
  Experiment ex(cfg(kind, 3, 2, 21));
  ex.addWorkload(workload::Spec::closedLoop(10, 80 * kMs, 2));
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << protocolName(kind) << ": " << v[0];
  EXPECT_EQ(r.trace.casts.size(), 10u);
}

TEST_P(AllProtocols, DeterministicAcrossReruns) {
  const auto kind = GetParam();
  auto runOnce = [&] {
    Experiment ex(cfg(kind, 2, 2, 33));
    ex.addWorkload(workload::Spec::closedLoop(8, 70 * kMs));
    auto r = ex.run(600 * kSec);
    std::string fingerprint;
    for (const auto& d : r.trace.deliveries)
      fingerprint += std::to_string(d.process) + ":" +
                     std::to_string(d.msg) + ":" + std::to_string(d.when) +
                     ";";
    return fingerprint;
  };
  EXPECT_EQ(runOnce(), runOnce());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllProtocols,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kFritzke98,
                      ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
                      ProtocolKind::kSkeen87, ProtocolKind::kViaBcast,
                      ProtocolKind::kA2, ProtocolKind::kSousa02,
                      ProtocolKind::kVicente02, ProtocolKind::kDetMerge00),
    [](const auto& info) {
      switch (info.param) {
        case ProtocolKind::kA1: return "A1";
        case ProtocolKind::kFritzke98: return "Fritzke98";
        case ProtocolKind::kDelporte00: return "Delporte00";
        case ProtocolKind::kRodrigues98: return "Rodrigues98";
        case ProtocolKind::kViaBcast: return "ViaBcast";
        case ProtocolKind::kA2: return "A2";
        case ProtocolKind::kSousa02: return "Sousa02";
        case ProtocolKind::kVicente02: return "Vicente02";
        case ProtocolKind::kDetMerge00: return "DetMerge00";
        case ProtocolKind::kSkeen87: return "Skeen87";
      }
      return "Unknown";
    });

// ---------------------------------------------------------------------------
// Empirical lower bound (Prop. 3.1/3.2): no genuine multicast run delivers
// a >= 2-group message below latency degree 2.
// ---------------------------------------------------------------------------

TEST(LowerBound, NoGenuineMulticastBeatsDegreeTwo) {
  for (ProtocolKind kind :
       {ProtocolKind::kA1, ProtocolKind::kFritzke98,
        ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
        ProtocolKind::kSkeen87}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      Experiment ex(cfg(kind, 3, 2, seed));
      workload::Spec spec = workload::Spec::closedLoop(10, 50 * kMs, 2);
      spec.seed = seed;
      auto& w = ex.addWorkload(spec);
      auto r = ex.run(600 * kSec);
      const std::vector<MsgId>& ids = w.issued();
      for (MsgId id : ids) {
        auto it = r.trace.destOf.find(id);
        ASSERT_NE(it, r.trace.destOf.end());
        if (it->second.size() < 2) continue;
        auto deg = r.trace.latencyDegree(id);
        ASSERT_TRUE(deg.has_value());
        EXPECT_GE(*deg, 2) << protocolName(kind) << " seed " << seed;
      }
    }
  }
}

// A1 attains the bound: degree exactly 2, so the bound is tight (Thm 4.1).
TEST(LowerBound, A1AttainsDegreeTwo) {
  auto c = cfg(ProtocolKind::kA1, 2, 2, 2);
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);  // best case
  Experiment ex(c);
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

// ---------------------------------------------------------------------------
// The intro's tradeoff: broadcast-based multicast wins on latency, genuine
// multicast wins on inter-group bandwidth when few groups are addressed.
// ---------------------------------------------------------------------------

TEST(Tradeoff, GenuineSavesBandwidthViaBcastSavesLatency) {
  const int groups = 4, procs = 2;
  auto runOne = [&](ProtocolKind kind, SimTime period) {
    auto c = cfg(kind, groups, procs, 3);
    c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
    Experiment ex(c);
    // Stream addressed to 2 of 4 groups.
    for (int i = 0; i < 20; ++i)
      ex.castAt(kMs + i * period, 0, GroupSet::of({0, 1}), "x");
    return ex.run(600 * kSec);
  };
  // Dense streams for the bandwidth comparison and via-bcast's warm-path
  // latency; a sparse stream for A1's per-message degree (Lamport clocks
  // are global, so overlapping messages inflate each other's spans).
  auto a1Dense = runOne(ProtocolKind::kA1, 40 * kMs);
  auto a1Sparse = runOne(ProtocolKind::kA1, 500 * kMs);
  auto viaDense = runOne(ProtocolKind::kViaBcast, 40 * kMs);
  ASSERT_TRUE(a1Dense.checkAtomicSuite().empty());
  ASSERT_TRUE(viaDense.checkAtomicSuite().empty());
  // Latency: via-bcast reaches degree 1, genuine A1 cannot go below 2.
  EXPECT_EQ(*viaDense.trace.minLatencyDegree(), 1);
  EXPECT_EQ(*a1Sparse.trace.minLatencyDegree(), 2);
  // Bandwidth: A1 involves only the 2 addressed groups; via-bcast ships
  // bundles among all 4 groups every round.
  EXPECT_LT(a1Dense.traffic.interAlgorithmic(),
            viaDense.traffic.interAlgorithmic());
}

// Atomic multicast really is harder than broadcast: A2 (broadcast) beats
// the genuine multicast latency bound.
TEST(Tradeoff, BroadcastBeatsGenuineMulticastLatency) {
  auto c = cfg(ProtocolKind::kA2, 2, 2, 4);
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  Experiment ex(c);
  for (int i = 0; i < 20; ++i)
    ex.castAllAt(kMs + i * 40 * kMs, static_cast<ProcessId>(i % 4), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_EQ(*r.trace.minLatencyDegree(), 1);
}

}  // namespace
}  // namespace wanmc
