// Randomized property tests: >=100 seeds per protocol stack, each seed a
// fresh workload plus (for crash-tolerant stacks) a fresh random crash
// schedule of up to f processes per group (f = strict minority, so
// consensus stays solvable). Every run is checked against the agreement /
// total-order invariants appropriate to the stack.
#include <gtest/gtest.h>

#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;
using wanmc::testing::RandomCrashes;
using wanmc::testing::Scenario;
using wanmc::testing::ScenarioRunner;

constexpr int kSeeds = 100;

Scenario sweepScenario(ProtocolKind kind, bool withCrashes) {
  Scenario s;
  s.name = std::string(core::protocolName(kind)) +
           (withCrashes ? "/crash-sweep" : "/sweep");
  s.config.groups = 3;
  s.config.procsPerGroup = 3;
  s.config.protocol = kind;
  s.latency = wanmc::testing::LatencyPreset::kWan;
  s.workload = workload::Spec::closedLoop(6, 80 * kMs, 2);
  s.runUntil = 900 * kSec;
  if (withCrashes)
    s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
  s.withDefaultExpectations();
  return s;
}

class SeedSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(SeedSweep, HundredSeedsSatisfyOrderAndAgreement) {
  const ProtocolKind kind = GetParam();
  const bool crashes =
      wanmc::testing::traitsOf(kind).toleratesCrashes;
  auto results =
      ScenarioRunner(sweepScenario(kind, crashes)).sweepSeeds(1, kSeeds);
  ASSERT_EQ(results.size(), static_cast<size_t>(kSeeds));
  int failures = 0;
  for (const auto& r : results) {
    if (!r.ok()) {
      ++failures;
      ADD_FAILURE() << r.report();
    }
    if (failures >= 5) break;  // don't flood the log
  }
}

// The thread-pool sweep must be a pure reordering of work: same seeds,
// same results, byte-identical fingerprints, output ordered by seed.
TEST(ParallelSweep, MatchesSerialSweepByteForByte) {
  Scenario s = sweepScenario(ProtocolKind::kA1, true);
  s.runUntil = 30 * kSec;
  const int kCount = 8;
  auto serial = ScenarioRunner(s).sweepSeeds(1, kCount, /*jobs=*/1);
  auto parallel = ScenarioRunner(s).sweepSeeds(1, kCount, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint)
        << "parallel sweep diverged at seed " << serial[i].seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, SeedSweep,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kFritzke98,
                      ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
                      ProtocolKind::kViaBcast, ProtocolKind::kSkeen87,
                      ProtocolKind::kA2, ProtocolKind::kSousa02,
                      ProtocolKind::kVicente02, ProtocolKind::kDetMerge00),
    [](const auto& info) {
      return wanmc::testing::protocolTestName(info.param);
    });

}  // namespace
}  // namespace wanmc
