// Bootstrap plane tests: recovery state transfer (src/bootstrap/).
//
// The rejoin contract under test: a recovered process requests an
// order-state snapshot plus delivery suffix from a live donor, installs it,
// and resumes as a full protocol participant — for EVERY protocol stack.
// The adversity tests pin the handshake's failure paths: donor crash
// mid-transfer (retry), rejoin inside an unhealed partition (no completion
// until heal), a second crash racing the offer (stale-session drop), and a
// joining donor (deny + advance).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/experiment.hpp"
#include "testing/scenario.hpp"
#include "verify/properties.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(ProtocolKind kind, int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  c.stack.fdOracleDelay = 30 * kMs;
  c.stack.bootstrap.armed = true;
  // Liveness under crash-recovery: an amnesiac rejoin can be a silent
  // consensus coordinator; only a round timeout moves the round on.
  c.stack.consensusRoundTimeout = 500 * kMs;
  return c;
}

// The recovered process's delivery sequence from `since` on (i.e. the new
// incarnation's sequence: replay + everything it earned afterwards).
std::vector<MsgId> sequenceSince(const core::RunResult& r, ProcessId pid,
                                 SimTime since) {
  std::vector<MsgId> out;
  for (const DeliveryEvent& d : r.trace.deliveries)
    if (d.process == pid && d.when >= since) out.push_back(d.msg);
  return out;
}

void expectRejoinSafe(const core::RunResult& r, const std::string& tag) {
  auto ctx = r.checkContext();
  for (auto&& v : verify::checkUniformIntegrity(ctx))
    ADD_FAILURE() << tag << ": " << v;
  for (auto&& v : verify::checkRecoveredDelivery(ctx))
    ADD_FAILURE() << tag << ": " << v;
}

// ---------------------------------------------------------------------------
// Per-protocol rejoin smoke: with the plane armed, a crash+recover cycle
// ends with the rejoiner holding its donor's full sequence and earning its
// own deliveries afterwards — for all ten stacks.
// ---------------------------------------------------------------------------

class RejoinSmoke : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(RejoinSmoke, RecoveredProcessRejoins) {
  const ProtocolKind kind = GetParam();
  Experiment ex(cfg(kind, 2, 3));
  const SimTime recoverAt = 800 * kMs;
  ex.crashAt(1, 300 * kMs);
  ex.recoverAt(1, recoverAt);
  auto cast = [&](SimTime when, ProcessId sender) {
    if (core::isBroadcastProtocol(kind)) return ex.castAllAt(when, sender);
    return ex.castAt(when, sender, GroupSet::of({0, 1}));
  };
  cast(100 * kMs, 0);       // delivered before the crash
  cast(500 * kMs, 3);       // cast while p1 is down
  cast(2 * kSec, 2);        // cast after the install
  const MsgId last = cast(2500 * kMs, 4);
  auto r = ex.run(120 * kSec);

  expectRejoinSafe(r, protocolName(kind));
  ASSERT_GE(r.rejoins.size(), 1u) << protocolName(kind);
  EXPECT_EQ(r.rejoins[0].pid, 1);
  EXPECT_GE(r.metrics.bootstrap.snapshotsInstalled, 1u);
  EXPECT_GE(r.metrics.bootstrap.snapshotsServed, 1u);
  EXPECT_GT(r.metrics.bootstrap.snapshotBytes, 0u);

  // The new incarnation's sequence equals a never-crashed groupmate's full
  // sequence: the replay reproduced the donor's history and the rejoined
  // protocol earned the rest on its own.
  const auto seqs = r.trace.sequences();
  const auto mine = sequenceSince(r, 1, recoverAt);
  EXPECT_EQ(mine, seqs.at(2)) << protocolName(kind);
  EXPECT_TRUE(std::find(mine.begin(), mine.end(), last) != mine.end());

  // Catch-up accounting: the install happened within the settle window
  // plus one request round-trip, and the rejoiner delivered after it.
  const auto& rj = r.rejoins[0];
  EXPECT_GE(rj.installedAt, recoverAt);
  EXPECT_LE(rj.installedAt, recoverAt + kSec);
  EXPECT_GT(rj.firstDeliveryAfter, rj.installedAt);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, RejoinSmoke,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kFritzke98,
                      ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
                      ProtocolKind::kViaBcast, ProtocolKind::kSkeen87,
                      ProtocolKind::kA2, ProtocolKind::kSousa02,
                      ProtocolKind::kVicente02, ProtocolKind::kDetMerge00),
    [](const auto& info) {
      return wanmc::testing::protocolTestName(info.param);
    });

// ---------------------------------------------------------------------------
// Adversity: the handshake's failure paths.
// ---------------------------------------------------------------------------

TEST(BootstrapAdversity, DonorCrashMidTransferRetriesNextCandidate) {
  // One group of three. p1 rejoins and asks p0 (first candidate); p0 dies
  // with the request in flight. The retry timer must advance to p2.
  Experiment ex(cfg(ProtocolKind::kA1, 1, 3));
  ex.castAt(100 * kMs, 0, GroupSet::of({0}));
  ex.crashAt(1, 300 * kMs);
  ex.recoverAt(1, 800 * kMs);
  // settle = interMax + intraMax + slack = 162 ms: the request leaves at
  // t=962 ms and needs 1-2 ms to p0. Crash p0 at 962.5 ms: after the send,
  // before the arrival.
  ex.crashAt(0, 962 * kMs + 500);
  ex.castAt(2 * kSec, 2, GroupSet::of({0}));
  auto r = ex.run(120 * kSec);

  expectRejoinSafe(r, "donor-crash");
  EXPECT_GE(r.metrics.bootstrap.retries, 1u);
  EXPECT_GE(r.metrics.bootstrap.snapshotsRequested, 2u);
  EXPECT_EQ(r.metrics.bootstrap.snapshotsInstalled, 1u);
  ASSERT_EQ(r.rejoins.size(), 1u);
  // Both post-install survivors (p1 rejoined, p2 correct) hold everything.
  const auto seqs = r.trace.sequences();
  EXPECT_EQ(sequenceSince(r, 1, 800 * kMs), seqs.at(2));
}

TEST(BootstrapAdversity, RejoinInsidePartitionCompletesAfterHeal) {
  // p0 is alone in group 0 (so every donor is cross-group) and rejoins
  // while its group is cut off. No offer can land before the heal; the
  // retry loop must carry the handshake across it. Reliable channels are
  // armed so protocol traffic lost in the cut is retransmitted — the
  // substrate this plane is designed to sit on.
  RunConfig c = cfg(ProtocolKind::kVicente02, 2, 2);
  c.groupSizes = {1, 2};
  c.stack.reliableChannels = true;
  Experiment ex(c);
  const SimTime heal = 3 * kSec;
  ex.castAllAt(100 * kMs, 1);
  ex.crashAt(0, 300 * kMs);
  ex.recoverAt(0, 800 * kMs);
  ex.partitionAt(GroupSet::of({0}), 700 * kMs, heal);
  ex.castAllAt(4 * kSec, 2);
  auto r = ex.run(120 * kSec);

  expectRejoinSafe(r, "partition-rejoin");
  EXPECT_GE(r.metrics.bootstrap.retries, 1u);
  ASSERT_GE(r.rejoins.size(), 1u);
  EXPECT_EQ(r.rejoins[0].pid, 0);
  // The snapshot could only cross the link once the partition healed.
  EXPECT_GE(r.rejoins[0].installedAt, heal);
  const auto seqs = r.trace.sequences();
  EXPECT_EQ(sequenceSince(r, 0, 800 * kMs), seqs.at(2));
}

TEST(BootstrapAdversity, SecondCrashDropsStaleOfferAndRestartsHandshake) {
  // p1 rejoins, requests, then crashes AGAIN with the offer in flight and
  // recovers immediately. The offer reaches the third incarnation carrying
  // the second incarnation's session: it must be dropped as stale, and the
  // fresh handshake must install on its own.
  Experiment ex(cfg(ProtocolKind::kA1, 2, 3));
  ex.castAt(100 * kMs, 0, GroupSet::of({0, 1}));
  ex.crashAt(1, 300 * kMs);
  ex.recoverAt(1, 800 * kMs);
  // Request leaves at 962 ms; the offer returns ~964-966 ms. Crash in
  // between and recover before it lands.
  ex.crashAt(1, 962 * kMs + 200);
  ex.recoverAt(1, 962 * kMs + 400);
  ex.castAt(2 * kSec, 2, GroupSet::of({0, 1}));
  auto r = ex.run(120 * kSec);

  expectRejoinSafe(r, "second-crash");
  EXPECT_EQ(r.metrics.bootstrap.staleDropped, 1u);
  EXPECT_EQ(r.metrics.bootstrap.snapshotsInstalled, 1u);
  ASSERT_EQ(r.rejoins.size(), 1u);
  EXPECT_EQ(r.rejoins[0].pid, 1);
  const auto seqs = r.trace.sequences();
  EXPECT_EQ(sequenceSince(r, 1, 962 * kMs + 400), seqs.at(2));
}

TEST(BootstrapAdversity, JoiningDonorDeniesAndRejoinerAdvances) {
  // Both members of group 0 rejoin, staggered. Each one's first candidate
  // is its (still joining) groupmate, which must deny; the deny advances
  // the rejoiner to a cross-group donor immediately, without waiting out
  // the retry timer. The oracle delay is pushed past the downtime so the
  // crashed pair recovers before anyone suspected it: no retraction, no
  // donor announcement — the candidate list alone picks the target.
  RunConfig c = cfg(ProtocolKind::kA1, 2, 2);
  c.stack.fdOracleDelay = 10 * kSec;
  Experiment ex(c);
  ex.castAt(100 * kMs, 2, GroupSet::of({0, 1}));
  ex.crashAt(0, 400 * kMs);
  ex.crashAt(1, 400 * kMs);
  ex.recoverAt(0, 640 * kMs);   // requests p1 at ~803 ms: p1 joins at 800
  ex.recoverAt(1, 800 * kMs);   // requests p0 at ~963 ms: p0 installs ~1010
  ex.castAt(2 * kSec, 2, GroupSet::of({0, 1}));
  ex.castAt(2500 * kMs, 3, GroupSet::of({0, 1}));
  auto r = ex.run(120 * kSec);

  expectRejoinSafe(r, "joining-donor");
  EXPECT_EQ(r.metrics.bootstrap.denies, 2u);
  EXPECT_EQ(r.metrics.bootstrap.snapshotsInstalled, 2u);
  EXPECT_EQ(r.rejoins.size(), 2u);
  const auto seqs = r.trace.sequences();
  EXPECT_EQ(sequenceSince(r, 0, 640 * kMs), seqs.at(3));
  EXPECT_EQ(sequenceSince(r, 1, 800 * kMs), seqs.at(3));
}

// ---------------------------------------------------------------------------
// Unarmed: the plane does not exist, nothing changes.
// ---------------------------------------------------------------------------

TEST(BootstrapUnarmed, NoPlaneNoTrafficNoRejoins) {
  RunConfig c = cfg(ProtocolKind::kA1, 2, 3);
  c.stack.bootstrap.armed = false;
  Experiment ex(c);
  ex.crashAt(1, 300 * kMs);
  ex.recoverAt(1, 800 * kMs);
  ex.castAt(100 * kMs, 0, GroupSet::of({0, 1}));
  ex.castAt(2 * kSec, 2, GroupSet::of({0, 1}));
  auto r = ex.run(60 * kSec);

  EXPECT_TRUE(r.rejoins.empty());
  EXPECT_EQ(r.metrics.bootstrap, BootstrapStats{});
  const auto& boot =
      r.traffic.perLayer[static_cast<size_t>(Layer::kBootstrap)];
  EXPECT_EQ(boot.intra, 0u);
  EXPECT_EQ(boot.inter, 0u);
}

}  // namespace
}  // namespace wanmc
