// Unit tests for the per-group uniform consensus implementations
// (EarlyConsensus and CtConsensus), including crash and suspicion cases.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sim/runtime.hpp"
#include "consensus/consensus.hpp"
#include "core/stack_node.hpp"

namespace wanmc {
namespace {

using consensus::ConsensusKind;
using consensus::Instance;

// A bare test node hosting one consensus service over its whole group.
class ConsensusHost final : public core::StackNode {
 public:
  ConsensusHost(sim::Runtime& rt, ProcessId pid, const core::StackConfig& cfg)
      : core::StackNode(rt, pid, cfg) {
    svc = &addGroupConsensus();
    svc->onDecide([this](Instance k, const ConsensusValue& v) {
      decisions[k] = v;
      decisionOrder.push_back(k);
    });
  }
  void onProtocolMessage(ProcessId, const PayloadPtr&) override {}

  consensus::ConsensusService* svc = nullptr;
  std::map<Instance, ConsensusValue> decisions;
  std::vector<Instance> decisionOrder;
};

struct Fixture {
  explicit Fixture(int procs, ConsensusKind kind, uint64_t seed = 1,
                   fd::FdKind fdKind = fd::FdKind::kOracle)
      : rt(Topology(1, procs), sim::LatencyModel::fixed(kMs, 100 * kMs),
           seed) {
    core::StackConfig cfg;
    cfg.consensusKind = kind;
    cfg.fdKind = fdKind;
    cfg.fdOracleDelay = 10 * kMs;
    for (ProcessId p = 0; p < procs; ++p) {
      auto n = std::make_unique<ConsensusHost>(rt, p, cfg);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
  }

  sim::Runtime rt;
  std::vector<ConsensusHost*> hosts;
};

ConsensusValue num(uint64_t v) { return ConsensusValue{v}; }

class ConsensusParamTest : public ::testing::TestWithParam<ConsensusKind> {};

TEST_P(ConsensusParamTest, SingleProcessDecidesOwnValue) {
  Fixture f(1, GetParam());
  f.hosts[0]->svc->propose(1, num(42));
  f.rt.run();
  ASSERT_TRUE(f.hosts[0]->decisions.count(1));
  EXPECT_TRUE(valueEquals(f.hosts[0]->decisions[1], num(42)));
}

TEST_P(ConsensusParamTest, AllDecideSameValue) {
  Fixture f(3, GetParam());
  for (int p = 0; p < 3; ++p)
    f.hosts[p]->svc->propose(1, num(100 + static_cast<uint64_t>(p)));
  f.rt.run();
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(f.hosts[p]->decisions.count(1)) << "p" << p;
    EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[1],
                            f.hosts[0]->decisions[1]));
  }
}

TEST_P(ConsensusParamTest, UniformIntegrityDecidedWasProposed) {
  Fixture f(5, GetParam());
  for (int p = 0; p < 5; ++p)
    f.hosts[p]->svc->propose(1, num(static_cast<uint64_t>(p)));
  f.rt.run();
  const auto& d = f.hosts[0]->decisions[1];
  const auto v = std::get<uint64_t>(d);
  EXPECT_LT(v, 5u);
}

TEST_P(ConsensusParamTest, IndependentInstances) {
  Fixture f(3, GetParam());
  for (int p = 0; p < 3; ++p) {
    f.hosts[p]->svc->propose(7, num(70));
    f.hosts[p]->svc->propose(9, num(90));
  }
  f.rt.run();
  for (int p = 0; p < 3; ++p) {
    EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[7], num(70)));
    EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[9], num(90)));
  }
}

TEST_P(ConsensusParamTest, LatecomerProposerStillDecides) {
  Fixture f(3, GetParam());
  f.hosts[0]->svc->propose(1, num(5));
  f.hosts[1]->svc->propose(1, num(6));
  f.rt.run();  // majority may already decide
  f.hosts[2]->svc->propose(1, num(7));
  f.rt.run();
  for (int p = 0; p < 3; ++p) {
    ASSERT_TRUE(f.hosts[p]->decisions.count(1)) << "p" << p;
    EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[1],
                            f.hosts[0]->decisions[1]));
  }
}

TEST_P(ConsensusParamTest, ToleratesMinorityCrashBeforePropose) {
  Fixture f(3, GetParam());
  f.rt.crash(2);
  f.hosts[0]->svc->propose(1, num(11));
  f.hosts[1]->svc->propose(1, num(12));
  f.rt.run();
  ASSERT_TRUE(f.hosts[0]->decisions.count(1));
  ASSERT_TRUE(f.hosts[1]->decisions.count(1));
  EXPECT_TRUE(
      valueEquals(f.hosts[0]->decisions[1], f.hosts[1]->decisions[1]));
}

TEST_P(ConsensusParamTest, ToleratesCoordinatorCrashMidInstance) {
  Fixture f(5, GetParam());
  // The round-1 coordinator of instance 1 is members[(1 + 0) % 5] = p1.
  // Crash it shortly after proposals go out.
  for (int p = 0; p < 5; ++p)
    f.hosts[p]->svc->propose(1, num(static_cast<uint64_t>(p) + 1));
  f.rt.scheduleCrash(1, kMs / 2);
  f.rt.run();
  std::optional<uint64_t> decided;
  for (int p = 0; p < 5; ++p) {
    if (p == 1) continue;
    ASSERT_TRUE(f.hosts[p]->decisions.count(1)) << "p" << p;
    const auto v = std::get<uint64_t>(f.hosts[p]->decisions[1]);
    if (!decided) decided = v;
    EXPECT_EQ(*decided, v);
  }
}

TEST_P(ConsensusParamTest, ManySequentialInstances) {
  Fixture f(3, GetParam());
  for (Instance k = 1; k <= 20; ++k)
    for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(k, num(k * 10));
  f.rt.run();
  for (int p = 0; p < 3; ++p)
    for (Instance k = 1; k <= 20; ++k)
      EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[k], num(k * 10)));
}

TEST_P(ConsensusParamTest, SparseInstanceNumbers) {
  // A1 numbers instances by the (jumping) group clock.
  Fixture f(3, GetParam());
  for (Instance k : {5u, 17u, 1000000u})
    for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(k, num(k));
  f.rt.run();
  for (int p = 0; p < 3; ++p)
    for (Instance k : {5u, 17u, 1000000u})
      EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[k], num(k)));
}

TEST_P(ConsensusParamTest, SecondProposalPerInstanceIgnored) {
  Fixture f(3, GetParam());
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, num(1));
  f.rt.run();
  const auto before = f.hosts[0]->decisions[1];
  f.hosts[0]->svc->propose(1, num(999));
  f.rt.run();
  EXPECT_TRUE(valueEquals(f.hosts[0]->decisions[1], before));
}

TEST_P(ConsensusParamTest, WorksWithHeartbeatFd) {
  Fixture f(3, GetParam(), /*seed=*/3, fd::FdKind::kHeartbeat);
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, num(8));
  f.rt.run(5 * kSec);  // heartbeats never stop; bound the run
  for (int p = 0; p < 3; ++p)
    EXPECT_TRUE(valueEquals(f.hosts[p]->decisions[1], num(8)));
}

TEST_P(ConsensusParamTest, CrashWithHeartbeatFdStillLive) {
  Fixture f(3, GetParam(), /*seed=*/4, fd::FdKind::kHeartbeat);
  for (int p = 0; p < 3; ++p)
    f.hosts[p]->svc->propose(1, num(static_cast<uint64_t>(p)));
  f.rt.scheduleCrash(1, kMs);
  f.rt.run(10 * kSec);
  ASSERT_TRUE(f.hosts[0]->decisions.count(1));
  ASSERT_TRUE(f.hosts[2]->decisions.count(1));
  EXPECT_TRUE(
      valueEquals(f.hosts[0]->decisions[1], f.hosts[2]->decisions[1]));
}

TEST_P(ConsensusParamTest, BundleValuesRoundTrip) {
  Fixture f(3, GetParam());
  MsgBundle b{makeAppMessage(3, 0, GroupSet::of({0})),
              makeAppMessage(1, 1, GroupSet::of({0}))};
  canonicalize(b);
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, b);
  f.rt.run();
  const auto& d = std::get<MsgBundle>(f.hosts[1]->decisions[1]);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0]->id, 1u);
  EXPECT_EQ(d[1]->id, 3u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ConsensusParamTest,
                         ::testing::Values(ConsensusKind::kEarly,
                                           ConsensusKind::kCt),
                         [](const auto& info) {
                           return info.param == ConsensusKind::kEarly
                                      ? "Early"
                                      : "ChandraToueg";
                         });

TEST(EarlyConsensus, DecidesInTwoIntraDelaysFailureFree) {
  // The early-deciding fast path: propose -> PROPOSE broadcast -> ACK
  // broadcast -> decide. With 1ms intra links that is ~2-3ms, well under
  // one WAN delay — the basis of the paper's "consensus costs no
  // inter-group delay" accounting.
  Fixture f(3, ConsensusKind::kEarly);
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, num(1));
  f.rt.run(5 * kMs);
  for (int p = 0; p < 3; ++p) EXPECT_TRUE(f.hosts[p]->decisions.count(1));
}

TEST(Consensus, NoInterGroupTrafficForGroupScopedInstances) {
  Fixture f(3, ConsensusKind::kEarly);
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, num(1));
  f.rt.run();
  EXPECT_EQ(f.rt.traffic().at(Layer::kConsensus).inter, 0u);
  EXPECT_GT(f.rt.traffic().at(Layer::kConsensus).intra, 0u);
}

}  // namespace
}  // namespace wanmc
