// Streaming-vs-trace checker equivalence over the full standard matrix
// (PR 4 acceptance): for every (protocol, scenario, seed) cell, the
// incremental prefix-order checker fed by the observer-plane event stream
// must return exactly the violations the O(n^2) trace-based checkers
// return — uniform AND correct-only — and the streaming metrics Summary
// must equal the trace-rescan Summary. Synthetic violating traces cover
// the positive (violation-reporting) paths, which real protocols never
// exercise.
#include <gtest/gtest.h>

#include <string>

#include "testing/scenario.hpp"
#include "verify/streaming.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;
using testing::MatrixOptions;
using testing::ScenarioResult;

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kA1,        ProtocolKind::kFritzke98,
    ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
    ProtocolKind::kViaBcast,  ProtocolKind::kSkeen87,
    ProtocolKind::kA2,        ProtocolKind::kSousa02,
    ProtocolKind::kVicente02, ProtocolKind::kDetMerge00,
};

// Replays a recorded run into a fresh streaming checker: all casts first
// (each cast chronologically precedes its deliveries, and the checker
// keys only on destinations), then deliveries in recorded order — the
// same per-process and global interleaving the live observer saw.
// Recovered processes are excluded up front, exactly as ScenarioRunner
// excludes them from its live checker (the trace-based oracle skips them
// via verify::recoveredProcesses).
verify::StreamingOrderChecker replay(const core::RunResult& r) {
  verify::StreamingOrderChecker checker(r.topo);
  for (ProcessId p : r.recovered) checker.excludeProcess(p);
  for (const auto& c : r.trace.casts) checker.onCast(c);
  for (const auto& d : r.trace.deliveries) checker.onDeliver(d);
  return checker;
}

TEST(StreamingOrder, MatchesTraceCheckersOnFullStandardMatrix) {
  for (ProtocolKind kind : kAllProtocols) {
    for (const ScenarioResult& res :
         runStandardMatrix(kind, MatrixOptions{})) {
      const auto checker = replay(res.run);
      const auto ctx = res.run.checkContext();
      EXPECT_EQ(checker.violations(),
                verify::checkUniformPrefixOrder(ctx))
          << res.name;
      EXPECT_EQ(checker.violations(res.run.correct),
                verify::checkPrefixOrderCorrectOnly(ctx))
          << res.name;
      // And the metrics plane: streaming Summary == trace rescan. The
      // channel-substrate and bootstrap blocks are maintained by their
      // planes and injected at harvest — like lastAlgoSend they are not
      // reconstructible from the trace, so the rescan oracle takes them
      // verbatim.
      metrics::Summary rescan = metrics::summarizeTrace(
          res.run.trace, res.run.topo, res.run.traffic,
          res.run.lastAlgoSend, res.run.endTime);
      rescan.channels = res.run.metrics.channels;
      rescan.bootstrap = res.run.metrics.bootstrap;
      EXPECT_EQ(res.run.metrics, rescan) << res.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Synthetic violating runs: both checkers must agree on the violation,
// its position, and its wording.
// ---------------------------------------------------------------------------

core::RunResult syntheticRun() {
  core::RunResult r;
  r.topo = Topology(2, 2);  // p0,p1 in g0; p2,p3 in g1
  r.correct = {0, 1, 2, 3};
  return r;
}

void cast(core::RunResult& r, MsgId m, ProcessId sender, GroupSet dest,
          SimTime when) {
  r.trace.casts.push_back(CastEvent{sender, m, dest, 0, when});
  r.trace.destOf[m] = dest;
  r.trace.senderOf[m] = sender;
}

void deliver(core::RunResult& r, ProcessId p, MsgId m, SimTime when) {
  r.trace.deliveries.push_back(DeliveryEvent{p, m, 0, when, 0});
}

TEST(StreamingOrder, FlagsSwappedPairIdenticallyToOracle) {
  auto r = syntheticRun();
  const GroupSet both = GroupSet::of({0, 1});
  cast(r, 1, 0, both, 0);
  cast(r, 2, 2, both, 0);
  // p0 delivers m1 then m2; p2 delivers m2 then m1: divergence at pos 0.
  deliver(r, 0, 1, 10);
  deliver(r, 2, 2, 11);
  deliver(r, 0, 2, 12);
  deliver(r, 2, 1, 13);
  // p1 and p3 agree with p0.
  for (ProcessId p : {1, 3}) {
    deliver(r, p, 1, 20);
    deliver(r, p, 2, 21);
  }

  const auto checker = replay(r);
  const auto oracle = verify::checkUniformPrefixOrder(r.checkContext());
  EXPECT_EQ(checker.violations(), oracle);
  ASSERT_FALSE(oracle.empty());
  // p0-vs-p2 and the swapped pair partners: p2 disagrees with p0, p1; p3
  // disagrees with p2. 3 violated pairs either way.
  EXPECT_EQ(oracle.size(), 3u);
  EXPECT_NE(oracle[0].find("between p0 and p2"), std::string::npos);
  EXPECT_NE(oracle[0].find("at position 0"), std::string::npos);
  EXPECT_TRUE(checker.anyViolation());
}

TEST(StreamingOrder, CorrectOnlyFiltersCrashedPairs) {
  auto r = syntheticRun();
  const GroupSet both = GroupSet::of({0, 1});
  cast(r, 1, 0, both, 0);
  cast(r, 2, 2, both, 0);
  // Only p3 disagrees, and p3 crashed.
  for (ProcessId p : {0, 1, 2}) {
    deliver(r, p, 1, 10);
    deliver(r, p, 2, 11);
  }
  deliver(r, 3, 2, 10);
  deliver(r, 3, 1, 11);
  r.correct = {0, 1, 2};

  const auto checker = replay(r);
  const auto ctx = r.checkContext();
  EXPECT_EQ(checker.violations(), verify::checkUniformPrefixOrder(ctx));
  EXPECT_FALSE(checker.violations().empty());  // uniform: p3 counts
  EXPECT_EQ(checker.violations(r.correct),
            verify::checkPrefixOrderCorrectOnly(ctx));
  EXPECT_TRUE(checker.violations(r.correct).empty());  // correct-only: not
}

TEST(StreamingOrder, DivergenceDeepInSequenceReportsPosition) {
  auto r = syntheticRun();
  const GroupSet both = GroupSet::of({0, 1});
  for (MsgId m = 1; m <= 6; ++m) cast(r, m, 0, both, 0);
  // All four processes agree on m1..m4; p0/p1 then deliver m5,m6 while
  // p2/p3 deliver m6,m5.
  for (ProcessId p : {0, 1, 2, 3})
    for (MsgId m = 1; m <= 4; ++m) deliver(r, p, m, 10 + m);
  for (ProcessId p : {0, 1}) {
    deliver(r, p, 5, 20);
    deliver(r, p, 6, 21);
  }
  for (ProcessId p : {2, 3}) {
    deliver(r, p, 6, 20);
    deliver(r, p, 5, 21);
  }

  const auto checker = replay(r);
  const auto oracle = verify::checkUniformPrefixOrder(r.checkContext());
  EXPECT_EQ(checker.violations(), oracle);
  ASSERT_EQ(oracle.size(), 4u);  // the four cross pairs
  EXPECT_NE(oracle[0].find("at position 4: m5 vs m6"), std::string::npos);
}

TEST(StreamingOrder, PrefixTruncationIsNotAViolation) {
  auto r = syntheticRun();
  const GroupSet both = GroupSet::of({0, 1});
  cast(r, 1, 0, both, 0);
  cast(r, 2, 0, both, 1);
  // p2 stops after m1 (a strict prefix of p0's sequence): legal.
  deliver(r, 0, 1, 10);
  deliver(r, 0, 2, 11);
  deliver(r, 2, 1, 10);
  for (ProcessId p : {1, 3}) {
    deliver(r, p, 1, 12);
    deliver(r, p, 2, 13);
  }

  const auto checker = replay(r);
  EXPECT_EQ(checker.violations(),
            verify::checkUniformPrefixOrder(r.checkContext()));
  EXPECT_TRUE(checker.violations().empty());
}

TEST(StreamingOrder, IgnoresNonAddresseesAndUnknownMessages) {
  auto r = syntheticRun();
  cast(r, 1, 0, GroupSet::of({0}), 0);  // g0 only
  deliver(r, 0, 1, 10);
  deliver(r, 1, 1, 11);
  deliver(r, 2, 1, 12);   // p2 is not an addressee (integrity's problem)
  deliver(r, 3, 99, 13);  // never cast
  const auto checker = replay(r);
  EXPECT_EQ(checker.violations(),
            verify::checkUniformPrefixOrder(r.checkContext()));
  EXPECT_TRUE(checker.violations().empty());
}

}  // namespace
}  // namespace wanmc
