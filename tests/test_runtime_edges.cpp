// Edge-case tests for the runtime's batch-send semantics (the paper's
// one-event-per-multicast clock rule) and for consensus corner cases that
// the protocol-level tests exercise only indirectly.
#include <gtest/gtest.h>

#include <memory>

#include "consensus/consensus.hpp"
#include "core/stack_node.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

struct TagPayload final : Payload {
  int tag;
  explicit TagPayload(int t) : tag(t) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override { return "tag"; }
};

class Probe final : public sim::Node {
 public:
  using sim::Node::Node;
  std::vector<std::pair<ProcessId, uint64_t>> got;  // (from, lamport-at-rcv)
  void onMessage(ProcessId from, const PayloadPtr&) override {
    got.push_back({from, runtime().lamport(pid())});
  }
};

sim::Runtime makeRt(int groups, int procs) {
  return sim::Runtime(Topology(groups, procs),
                      sim::LatencyModel::fixed(kMs, 100 * kMs), 1);
}

TEST(Multicast, OneEventOneTickManyCopies) {
  sim::Runtime rt = makeRt(2, 2);
  std::vector<Probe*> probes;
  for (ProcessId p = 0; p < 4; ++p) {
    auto n = std::make_unique<Probe>(rt, p);
    probes.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  // Fan-out to intra (p1) and inter (p2, p3) destinations: ONE send event,
  // one tick, every copy carries the same stamp (paper §2.3 / Thm 4.1
  // proof style).
  rt.multicast(0, {1, 2, 3}, std::make_shared<const TagPayload>(1));
  EXPECT_EQ(rt.lamport(0), 1u);  // ticked once, not three times
  rt.run();
  EXPECT_EQ(rt.lamport(1), 1u);  // intra receiver jumps to the shared stamp
  EXPECT_EQ(rt.lamport(2), 1u);
  EXPECT_EQ(rt.lamport(3), 1u);
  // Per-link counting is still per copy.
  EXPECT_EQ(rt.traffic().at(Layer::kProtocol).intra, 1u);
  EXPECT_EQ(rt.traffic().at(Layer::kProtocol).inter, 2u);
}

TEST(Multicast, IntraOnlyFanOutDoesNotTick) {
  sim::Runtime rt = makeRt(1, 3);
  for (ProcessId p = 0; p < 3; ++p)
    rt.attach(p, std::make_unique<Probe>(rt, p));
  rt.start();
  rt.multicast(0, {1, 2}, std::make_shared<const TagPayload>(1));
  EXPECT_EQ(rt.lamport(0), 0u);
  rt.run();
  EXPECT_EQ(rt.lamport(1), 0u);
  EXPECT_EQ(rt.lamport(2), 0u);
}

TEST(Multicast, EmptyDestinationListIsANoop) {
  sim::Runtime rt = makeRt(1, 2);
  for (ProcessId p = 0; p < 2; ++p)
    rt.attach(p, std::make_unique<Probe>(rt, p));
  rt.start();
  rt.multicast(0, {}, std::make_shared<const TagPayload>(1));
  EXPECT_EQ(rt.lamport(0), 0u);
  EXPECT_EQ(rt.traffic().at(Layer::kProtocol).total(), 0u);
}

TEST(Multicast, WireTraceRecordsEveryCopy) {
  sim::Runtime rt = makeRt(2, 1);
  rt.setRecordWire(true);
  for (ProcessId p = 0; p < 2; ++p)
    rt.attach(p, std::make_unique<Probe>(rt, p));
  rt.start();
  rt.multicast(0, {1}, std::make_shared<const TagPayload>(1));
  rt.run();
  ASSERT_EQ(rt.trace().wire.size(), 1u);
  EXPECT_EQ(rt.trace().wire[0].from, 0);
  EXPECT_EQ(rt.trace().wire[0].to, 1);
  EXPECT_TRUE(rt.trace().wire[0].interGroup);
}

// ---------------------------------------------------------------------------
// Consensus corner cases.
// ---------------------------------------------------------------------------

class ConsHost final : public core::StackNode {
 public:
  ConsHost(sim::Runtime& rt, ProcessId pid, const core::StackConfig& cfg)
      : core::StackNode(rt, pid, cfg) {
    svc = &addGroupConsensus();
    svc->onDecide([this](consensus::Instance k, const ConsensusValue& v) {
      decisions[k] = v;
    });
  }
  void onProtocolMessage(ProcessId, const PayloadPtr&) override {}
  consensus::ConsensusService* svc = nullptr;
  std::map<consensus::Instance, ConsensusValue> decisions;
};

struct ConsFixture {
  ConsFixture(int procs, consensus::ConsensusKind kind)
      : rt(Topology(1, procs), sim::LatencyModel::fixed(kMs, 100 * kMs), 1) {
    core::StackConfig cfg;
    cfg.consensusKind = kind;
    for (ProcessId p = 0; p < procs; ++p) {
      auto n = std::make_unique<ConsHost>(rt, p, cfg);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
  }
  sim::Runtime rt;
  std::vector<ConsHost*> hosts;
};

TEST(ConsensusEdge, NonProposerStillLearnsViaDecideRelay) {
  // p2 never proposes; uniform agreement must still reach it (DECIDE
  // relay / ack broadcasts).
  ConsFixture f(3, consensus::ConsensusKind::kEarly);
  f.hosts[0]->svc->propose(1, uint64_t{7});
  f.hosts[1]->svc->propose(1, uint64_t{8});
  f.rt.run();
  ASSERT_TRUE(f.hosts[2]->decisions.count(1));
  EXPECT_TRUE(valueEquals(f.hosts[2]->decisions[1],
                          f.hosts[0]->decisions[1]));
}

TEST(ConsensusEdge, TwoProcessGroupNeedsBoth) {
  // Majority of 2 is 2: with one process silent, no decision; once it
  // proposes, both decide.
  ConsFixture f(2, consensus::ConsensusKind::kEarly);
  f.hosts[0]->svc->propose(1, uint64_t{1});
  f.rt.run(kSec);
  EXPECT_FALSE(f.hosts[0]->decisions.count(1));
  f.hosts[1]->svc->propose(1, uint64_t{2});
  f.rt.run();
  EXPECT_TRUE(f.hosts[0]->decisions.count(1));
  EXPECT_TRUE(f.hosts[1]->decisions.count(1));
}

TEST(ConsensusEdge, InterleavedInstancesDecideIndependently) {
  ConsFixture f(3, consensus::ConsensusKind::kCt);
  // Propose instances out of order and interleaved across processes.
  f.hosts[0]->svc->propose(2, uint64_t{20});
  f.hosts[1]->svc->propose(1, uint64_t{10});
  f.hosts[2]->svc->propose(2, uint64_t{21});
  f.hosts[0]->svc->propose(1, uint64_t{11});
  f.hosts[2]->svc->propose(1, uint64_t{12});
  f.hosts[1]->svc->propose(2, uint64_t{22});
  f.rt.run();
  for (auto* h : f.hosts) {
    ASSERT_TRUE(h->decisions.count(1));
    ASSERT_TRUE(h->decisions.count(2));
    EXPECT_TRUE(valueEquals(h->decisions[1], f.hosts[0]->decisions[1]));
    EXPECT_TRUE(valueEquals(h->decisions[2], f.hosts[0]->decisions[2]));
  }
}

TEST(ConsensusEdge, DecisionSurvivesLateCrashOfEveryoneButOne) {
  // After the decision is reached, crash all but one process: the decision
  // set must already be consistent (uniformity: what was decided stays).
  ConsFixture f(3, consensus::ConsensusKind::kEarly);
  for (int p = 0; p < 3; ++p)
    f.hosts[p]->svc->propose(1, uint64_t{static_cast<uint64_t>(p)});
  f.rt.run();
  const auto v0 = f.hosts[0]->decisions.at(1);
  f.rt.crash(1);
  f.rt.crash(2);
  f.rt.run();
  EXPECT_TRUE(valueEquals(f.hosts[0]->decisions.at(1), v0));
}

TEST(ConsensusEdge, A1EntryValuesRoundTrip) {
  ConsFixture f(3, consensus::ConsensusKind::kEarly);
  A1EntrySet set;
  set.push_back(A1Entry{makeAppMessage(5, 0, GroupSet::of({0})),
                        Stage::s0, 0});
  set.push_back(A1Entry{makeAppMessage(3, 1, GroupSet::of({0, 1})),
                        Stage::s2, 17});
  canonicalize(set);
  for (int p = 0; p < 3; ++p) f.hosts[p]->svc->propose(1, set);
  f.rt.run();
  const auto& d = std::get<A1EntrySet>(f.hosts[2]->decisions.at(1));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].msg->id, 3u);
  EXPECT_EQ(d[0].stage, Stage::s2);
  EXPECT_EQ(d[0].ts, 17u);
  EXPECT_EQ(d[1].msg->id, 5u);
}

}  // namespace
}  // namespace wanmc
