// Unit tests for fault plane v2: dynamic link state (partitions that
// heal, per-link down windows) and process recovery (fresh incarnations,
// incarnation-guarded timers and listeners), plus the verify-layer
// recovery semantics and the Summary fault-counter block.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/runtime.hpp"
#include "core/experiment.hpp"
#include "testing/scenario.hpp"
#include "verify/properties.hpp"

namespace wanmc {
namespace {

using sim::LatencyModel;
using sim::Runtime;

struct PingPayload final : Payload {
  int tag;
  explicit PingPayload(int t) : tag(t) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override { return "ping"; }
};

class Probe final : public sim::Node {
 public:
  using sim::Node::Node;
  std::vector<std::pair<ProcessId, int>> got;
  int starts = 0;
  void onStart() override { ++starts; }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    got.push_back({from, static_cast<const PingPayload&>(*p).tag});
  }
  void emit(ProcessId to, int tag) {
    send(to, std::make_shared<const PingPayload>(tag));
  }
  using sim::Node::timer;
};

struct Net {
  explicit Net(int groups, int procs, uint64_t seed = 1)
      : rt(Topology(groups, procs), LatencyModel::fixed(kMs, 100 * kMs),
           seed) {
    for (ProcessId p = 0; p < groups * procs; ++p) {
      auto n = std::make_unique<Probe>(rt, p);
      probes.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.setNodeFactory([this](ProcessId p) {
      auto n = std::make_unique<Probe>(rt, p);
      probes[static_cast<size_t>(p)] = n.get();
      return n;
    });
    rt.start();
  }
  Runtime rt;
  std::vector<Probe*> probes;
};

// ---------------------------------------------------------------------------
// Dynamic link state.
// ---------------------------------------------------------------------------

TEST(Partition, CutsLinksDuringWindowOnly) {
  Net net(2, 2);  // g0 = {0,1}, g1 = {2,3}
  net.rt.partition(GroupSet::single(0), 10 * kMs, 200 * kMs);

  net.probes[0]->emit(2, 1);  // sent at t=0, before the cut: arrives
  net.rt.scheduler().at(50 * kMs, [&] { net.probes[0]->emit(2, 2); });
  net.rt.scheduler().at(50 * kMs, [&] { net.probes[2]->emit(1, 3); });
  net.rt.scheduler().at(50 * kMs, [&] { net.probes[0]->emit(1, 4); });
  net.rt.scheduler().at(250 * kMs, [&] { net.probes[0]->emit(2, 5); });
  net.rt.run();

  // Cross-cut copies inside the window vanish, both directions; the
  // intra-group copy and the post-heal copy arrive.
  ASSERT_EQ(net.probes[2]->got.size(), 2u);
  EXPECT_EQ(net.probes[2]->got[0].second, 1);
  EXPECT_EQ(net.probes[2]->got[1].second, 5);
  EXPECT_TRUE(net.probes[1]->got.size() == 1 &&
              net.probes[1]->got[0].second == 4);
  EXPECT_EQ(net.rt.trace().linkDrops, 2u);

  // Cut + heal transitions are recorded.
  ASSERT_EQ(net.rt.trace().partitions.size(), 2u);
  EXPECT_TRUE(net.rt.trace().partitions[0].cut);
  EXPECT_EQ(net.rt.trace().partitions[0].when, 10 * kMs);
  EXPECT_FALSE(net.rt.trace().partitions[1].cut);
  EXPECT_EQ(net.rt.trace().partitions[1].when, 200 * kMs);
}

TEST(Partition, InFlightCopiesSurviveTheCut) {
  Net net(2, 2);
  // Inter-group latency is 100ms: a copy sent at t=0 is in flight when
  // the cut activates at 50ms, and still arrives (the partition cuts the
  // link, not the copies already past it).
  net.rt.partition(GroupSet::single(0), 50 * kMs, kTimeNever);
  net.probes[0]->emit(2, 9);
  net.rt.run();
  ASSERT_EQ(net.probes[2]->got.size(), 1u);
}

TEST(Partition, HealAllAndManualHeal) {
  Net net(2, 2);
  auto id = net.rt.partition(GroupSet::single(0), 0, kTimeNever);
  EXPECT_FALSE(net.rt.linkUp(0, 2));
  EXPECT_TRUE(net.rt.linkUp(0, 1));
  net.rt.heal(id);
  EXPECT_TRUE(net.rt.linkUp(0, 2));
  net.rt.heal(id);  // idempotent
  EXPECT_TRUE(net.rt.linkUp(0, 2));

  net.rt.partition(GroupSet::single(1), 0, kTimeNever);
  EXPECT_FALSE(net.rt.linkUp(3, 1));
  net.rt.healAll();
  EXPECT_TRUE(net.rt.linkUp(3, 1));
}

TEST(Partition, OverlappingPartitionsStackPerLink) {
  Net net(3, 1);
  auto a = net.rt.partition(GroupSet::single(0), 0, kTimeNever);
  net.rt.partition(GroupSet::of({0, 1}), 0, kTimeNever);
  EXPECT_FALSE(net.rt.linkUp(0, 2));
  net.rt.heal(a);  // the second partition still cuts g0|g1 from g2
  EXPECT_FALSE(net.rt.linkUp(0, 2));
  EXPECT_TRUE(net.rt.linkUp(0, 1));  // only partition `a` separated g0|g1
  net.rt.healAll();
  EXPECT_TRUE(net.rt.linkUp(0, 2));
}

TEST(Partition, ValidationErrors) {
  Net net(2, 2);
  EXPECT_THROW(net.rt.partition(GroupSet{}, 0, kMs), std::invalid_argument);
  EXPECT_THROW(net.rt.partition(GroupSet::of({0, 1}), 0, kMs),
               std::invalid_argument);  // no far side
  EXPECT_THROW(net.rt.partition(GroupSet::single(5), 0, kMs),
               std::invalid_argument);  // beyond topology
  EXPECT_THROW(net.rt.partition(GroupSet::single(0), 10 * kMs, 10 * kMs),
               std::invalid_argument);  // empty window
  net.rt.run(kMs);
  EXPECT_THROW(net.rt.partition(GroupSet::single(0), 0, 2 * kMs),
               std::invalid_argument);  // starts in the past
}

TEST(Partition, HealBeforeActivationCancelsTheCut) {
  Net net(2, 2);
  auto id = net.rt.partition(GroupSet::single(0), 100 * kMs, kTimeNever);
  net.rt.heal(id);
  net.rt.scheduler().at(150 * kMs, [&] { net.probes[0]->emit(2, 1); });
  net.rt.run();
  EXPECT_EQ(net.probes[2]->got.size(), 1u);
  EXPECT_TRUE(net.rt.trace().partitions.empty());  // never cut, never healed
}

TEST(CutLink, DropsOnlyThatPairWithinWindow) {
  Net net(1, 3);
  net.rt.cutLink(0, 1, 0, 50 * kMs);
  net.probes[0]->emit(1, 1);  // cut (0<->1 down)
  net.probes[1]->emit(0, 2);  // cut (symmetric)
  net.probes[0]->emit(2, 3);  // unaffected pair
  net.rt.scheduler().at(60 * kMs, [&] { net.probes[0]->emit(1, 4); });
  net.rt.run();
  ASSERT_EQ(net.probes[1]->got.size(), 1u);
  EXPECT_EQ(net.probes[1]->got[0].second, 4);
  EXPECT_TRUE(net.probes[0]->got.empty());
  EXPECT_EQ(net.probes[2]->got.size(), 1u);
  EXPECT_EQ(net.rt.trace().linkDrops, 2u);

  EXPECT_THROW(net.rt.cutLink(0, 0, 0, kMs), std::invalid_argument);
  EXPECT_THROW(net.rt.cutLink(0, 7, 0, kMs), std::invalid_argument);
  EXPECT_THROW(net.rt.cutLink(0, 1, kMs, kMs), std::invalid_argument);
}

TEST(Partition, LocalTimersSurviveTheCut) {
  Net net(2, 1);
  net.rt.partition(GroupSet::single(0), 0, kTimeNever);
  int fired = 0;
  net.probes[0]->timer(10 * kMs, [&] { ++fired; });
  net.rt.run();
  EXPECT_EQ(fired, 1);  // partitions cut links, not the local calendar
}

// ---------------------------------------------------------------------------
// Process recovery.
// ---------------------------------------------------------------------------

TEST(Recovery, FreshIncarnationReceivesAgain) {
  Net net(1, 2);
  net.rt.crash(1);
  Probe* dead = net.probes[1];
  net.probes[0]->emit(1, 1);  // to a crashed process: vanishes
  net.rt.run();
  net.rt.recover(1);
  Probe* fresh = net.probes[1];
  EXPECT_NE(dead, fresh);      // the factory rebuilt the node
  EXPECT_EQ(fresh->starts, 1); // onStart ran on the new incarnation
  EXPECT_FALSE(net.rt.crashed(1));
  EXPECT_TRUE(net.rt.everCrashed(1));
  EXPECT_EQ(net.rt.incarnation(1), 1u);
  net.probes[0]->emit(1, 2);
  net.rt.run();
  ASSERT_EQ(fresh->got.size(), 1u);
  EXPECT_EQ(fresh->got[0].second, 2);
  ASSERT_EQ(net.rt.trace().recoveries.size(), 1u);
  EXPECT_EQ(net.rt.trace().recoveries[0].process, 1);
}

TEST(Recovery, StaleTimersDoNotFireIntoTheFreshNode) {
  Net net(1, 2);
  int oldFired = 0;
  net.probes[1]->timer(100 * kMs, [&] { ++oldFired; });
  net.rt.scheduleCrash(1, 10 * kMs);
  net.rt.scheduleRecover(1, 50 * kMs);
  net.rt.run();
  // The timer was registered by incarnation 0; at fire time the process
  // is alive again but as incarnation 1 — the guard suppresses it.
  EXPECT_EQ(oldFired, 0);
  EXPECT_EQ(net.rt.incarnation(1), 1u);
  // Timers registered by the fresh incarnation do fire.
  int newFired = 0;
  net.probes[1]->timer(10 * kMs, [&] { ++newFired; });
  net.rt.run();
  EXPECT_EQ(newFired, 1);
}

TEST(Recovery, RecoverAliveProcessIsNoop) {
  Net net(1, 2);
  net.rt.scheduleRecover(1, 10 * kMs);  // never crashed by then
  net.rt.run();
  EXPECT_EQ(net.rt.incarnation(1), 0u);
  EXPECT_TRUE(net.rt.trace().recoveries.empty());
}

TEST(Recovery, RequiresNodeFactory) {
  Runtime rt(Topology(1, 2), LatencyModel::fixed(kMs, 100 * kMs), 1);
  for (ProcessId p = 0; p < 2; ++p)
    rt.attach(p, std::make_unique<Probe>(rt, p));
  rt.crash(1);
  EXPECT_THROW(rt.recover(1), std::logic_error);
}

TEST(Recovery, ExperimentValidatesRecoverAt) {
  core::RunConfig cfg;
  cfg.groups = 2;
  cfg.procsPerGroup = 2;
  core::Experiment ex(cfg);
  EXPECT_THROW(ex.recoverAt(-1, kMs), std::invalid_argument);
  EXPECT_THROW(ex.recoverAt(4, kMs), std::invalid_argument);
  EXPECT_THROW(ex.crashAt(4, kMs), std::invalid_argument);
  EXPECT_THROW(ex.partitionAt(GroupSet::of({0, 1}), 0, kMs),
               std::invalid_argument);
}

TEST(Recovery, RunResultSplitsCorrectAndRecovered) {
  core::RunConfig cfg;
  cfg.groups = 2;
  cfg.procsPerGroup = 2;
  cfg.stack.consensusRoundTimeout = 2 * kSec;
  core::Experiment ex(cfg);
  ex.crashAt(1, 20 * kMs);
  ex.recoverAt(1, 60 * kMs);
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
  ex.castAt(100 * kMs, 2, GroupSet::of({0, 1}), "b");
  auto r = ex.run(30 * kSec);
  EXPECT_EQ(r.correct.count(1), 0u);   // recovered != correct
  EXPECT_EQ(r.recovered.count(1), 1u);
  EXPECT_EQ(r.correct.size(), 3u);
  // The fault block is identical in both summary constructions.
  EXPECT_EQ(r.metrics.faults.crashes, 1u);
  EXPECT_EQ(r.metrics.faults.recoveries, 1u);
  EXPECT_EQ(r.metrics.faults,
            metrics::summarizeTrace(r.trace, r.topo, r.traffic,
                                    r.lastAlgoSend, r.endTime)
                .faults);
  // The recovered process delivers the post-recovery message (A1 rejoins).
  EXPECT_TRUE(verify::checkRecoveredDelivery(r.checkContext()).empty());
}

TEST(Recovery, ScheduledCastsFromARecoveredSenderFire) {
  // A cast is a harness event, not state of the incarnation that was
  // alive when it was scheduled: it fires iff the sender is alive at
  // cast time — including a sender that crashed and recovered meanwhile.
  core::RunConfig cfg;
  cfg.groups = 2;
  cfg.procsPerGroup = 2;
  cfg.stack.consensusRoundTimeout = 2 * kSec;
  core::Experiment ex(cfg);
  ex.crashAt(1, 50 * kMs);
  ex.recoverAt(1, 100 * kMs);
  ex.castAt(200 * kMs, 1, GroupSet::of({0, 1}), "post-recovery");
  ex.castAt(70 * kMs, 1, GroupSet::of({0, 1}), "while-down");
  auto r = ex.run(30 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 1u);  // the down-window cast is skipped
  EXPECT_EQ(r.trace.casts[0].process, 1);
  EXPECT_EQ(r.trace.casts[0].when, 200 * kMs);
  EXPECT_GE(r.trace.deliveries.size(), 3u);  // and it actually delivers
}

// ---------------------------------------------------------------------------
// Verify-layer recovery semantics.
// ---------------------------------------------------------------------------

verify::CheckContext ctxOf(const RunTrace& trace, const Topology& topo,
                           std::set<ProcessId> correct) {
  return verify::CheckContext{&trace, &topo, std::move(correct)};
}

TEST(RecoverySemantics, IntegrityBindsPerIncarnation) {
  Topology topo(1, 2);
  RunTrace t;
  t.casts.push_back(CastEvent{0, 1, GroupSet::single(0), 0, 10});
  t.destOf[1] = GroupSet::single(0);
  t.senderOf[1] = 0;
  // p1 delivers m1, crashes, recovers, and re-delivers it (amnesia): OK.
  t.deliveries.push_back(DeliveryEvent{1, 1, 0, 20, 0});
  t.crashes.push_back(CrashEvent{1, 30});
  t.recoveries.push_back(RecoveryEvent{1, 40});
  t.deliveries.push_back(DeliveryEvent{1, 1, 0, 50, 1});
  EXPECT_TRUE(verify::checkUniformIntegrity(ctxOf(t, topo, {0})).empty());

  // A second delivery WITHIN the new incarnation is still a violation.
  t.deliveries.push_back(DeliveryEvent{1, 1, 0, 60, 2});
  auto v = verify::checkUniformIntegrity(ctxOf(t, topo, {0}));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("2 times"), std::string::npos);
}

TEST(RecoverySemantics, UniformPrefixOrderSkipsRecoveredProcesses) {
  Topology topo(1, 2);
  RunTrace t;
  for (MsgId m = 1; m <= 2; ++m) {
    t.casts.push_back(CastEvent{0, m, GroupSet::single(0), 0, 10});
    t.destOf[m] = GroupSet::single(0);
    t.senderOf[m] = 0;
  }
  // p0 delivers m1 then m2; p1 (recovered mid-run) delivers only m2 —
  // a prefix violation between never-crashed processes, but p1 restarted.
  t.deliveries.push_back(DeliveryEvent{0, 1, 0, 20, 0});
  t.deliveries.push_back(DeliveryEvent{0, 2, 0, 30, 1});
  t.crashes.push_back(CrashEvent{1, 15});
  t.recoveries.push_back(RecoveryEvent{1, 25});
  t.deliveries.push_back(DeliveryEvent{1, 2, 0, 40, 0});
  EXPECT_TRUE(verify::checkUniformPrefixOrder(ctxOf(t, topo, {0})).empty());
  EXPECT_EQ(verify::recoveredProcesses(ctxOf(t, topo, {0})),
            (std::set<ProcessId>{1}));
  // Sanity: without the recovery events the same trace IS a violation.
  RunTrace bare = t;
  bare.crashes.clear();
  bare.recoveries.clear();
  EXPECT_FALSE(
      verify::checkUniformPrefixOrder(ctxOf(bare, topo, {0})).empty());
}

TEST(RecoverySemantics, RecoveredDeliveryObligation) {
  Topology topo(1, 2);
  RunTrace t;
  t.crashes.push_back(CrashEvent{1, 10});
  t.recoveries.push_back(RecoveryEvent{1, 20});
  // m1 cast after p1's recovery, delivered by every correct addressee
  // (p0) but not by p1: violation.
  t.casts.push_back(CastEvent{0, 1, GroupSet::single(0), 0, 30});
  t.destOf[1] = GroupSet::single(0);
  t.senderOf[1] = 0;
  t.deliveries.push_back(DeliveryEvent{0, 1, 0, 40, 0});
  auto v = verify::checkRecoveredDelivery(ctxOf(t, topo, {0}));
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("recovery: p1"), std::string::npos);
  // Once p1 delivers it, the obligation is met.
  t.deliveries.push_back(DeliveryEvent{1, 1, 0, 50, 0});
  EXPECT_TRUE(verify::checkRecoveredDelivery(ctxOf(t, topo, {0})).empty());
}

TEST(RecoverySemantics, NoObligationAfterASecondCrash) {
  // crash -> recover -> crash: the process ends the run down, so it owes
  // nothing — not even messages cast during its alive window.
  Topology topo(1, 2);
  RunTrace t;
  t.crashes.push_back(CrashEvent{1, 10});
  t.recoveries.push_back(RecoveryEvent{1, 20});
  t.crashes.push_back(CrashEvent{1, 60});
  t.casts.push_back(CastEvent{0, 1, GroupSet::single(0), 0, 30});
  t.destOf[1] = GroupSet::single(0);
  t.senderOf[1] = 0;
  t.deliveries.push_back(DeliveryEvent{0, 1, 0, 40, 0});
  EXPECT_TRUE(verify::checkRecoveredDelivery(ctxOf(t, topo, {0})).empty());
}

// ---------------------------------------------------------------------------
// Scenario plumbing: materializers and fingerprints.
// ---------------------------------------------------------------------------

TEST(ScenarioFaultPlane, MaterializersAreDeterministic) {
  Topology topo(3, 3);
  std::vector<testing::CrashSpec> crashes{{1, 100 * kMs}, {4, 200 * kMs}};
  testing::RandomRecoveries rr;
  auto a = materializeRecoveries(crashes, rr, 7);
  auto b = materializeRecoveries(crashes, rr, 7);
  ASSERT_EQ(a.size(), 2u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pid, b[i].pid);
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(a[i].pid, crashes[i].pid);
    EXPECT_GE(a[i].when, crashes[i].when + rr.delayMin);
    EXPECT_LE(a[i].when, crashes[i].when + rr.delayMax);
  }
  EXPECT_NE(materializeRecoveries(crashes, rr, 8)[0].when, a[0].when);

  testing::RandomPartitions rp;
  auto pa = materializePartitions(topo, rp, 7);
  auto pb = materializePartitions(topo, rp, 7);
  ASSERT_EQ(pa.size(), 1u);
  EXPECT_EQ(pa[0].side.bits(), pb[0].side.bits());
  EXPECT_EQ(pa[0].from, pb[0].from);
  EXPECT_EQ(pa[0].until, pb[0].until);
  EXPECT_GT(pa[0].until, pa[0].from);
  // A single-group topology has no far side to cut.
  EXPECT_TRUE(materializePartitions(Topology(1, 3), rp, 7).empty());
}

TEST(ScenarioFaultPlane, FingerprintPinsRecoveryAndPartitionEvents) {
  testing::Scenario s;
  s.name = "fp";
  s.config.groups = 2;
  s.config.procsPerGroup = 2;
  s.config.protocol = core::ProtocolKind::kA1;
  s.latency = testing::LatencyPreset::kWan;
  s.workload = workload::Spec::closedLoop(4, 70 * kMs, 2);
  s.crashes.push_back(testing::CrashSpec{1, 150 * kMs});
  s.recoveries.push_back(testing::RecoverSpec{1, 400 * kMs});
  s.partitions.push_back(
      testing::PartitionSpec{GroupSet::single(1), 200 * kMs, 350 * kMs});
  s.runUntil = 20 * kSec;
  s.withDefaultExpectations();

  auto r1 = testing::ScenarioRunner(s).run();
  auto r2 = testing::ScenarioRunner(s).run();
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_NE(r1.fingerprint.find("R p1 t400000"), std::string::npos);
  EXPECT_NE(r1.fingerprint.find("P cut s2 t200000"), std::string::npos);
  EXPECT_NE(r1.fingerprint.find("P heal s2 t350000"), std::string::npos);
  EXPECT_EQ(r1.effectiveRecoveries.size(), 1u);
  EXPECT_EQ(r1.effectivePartitions.size(), 1u);
}

}  // namespace
}  // namespace wanmc
