// The batching plane (PR 6): carrier codec, window/size flush semantics,
// batch-internal delivery order, crashed-sender window boundaries, and the
// determinism contract (serial == parallel sweeps for batched scenarios).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/batch.hpp"
#include "core/experiment.hpp"
#include "metrics/sweep.hpp"
#include "testing/scenario.hpp"
#include "verify/properties.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

// ---------------------------------------------------------------------------
// Carrier codec.
// ---------------------------------------------------------------------------

TEST(BatchCodec, RoundTripPreservesIdsAndBodies) {
  const GroupSet dest = GroupSet::of({0, 1});
  std::vector<AppMsgPtr> casts = {
      makeAppMessage(7, 3, dest, "alpha"),
      makeAppMessage(9, 3, dest, ""),  // empty body survives
      makeAppMessage(12, 3, dest, std::string("\x00\x01\xff", 3)),
  };
  const std::string wire = encodeBatchBody(casts);
  const auto back = decodeBatchBody(3, dest, wire);
  ASSERT_EQ(back.size(), casts.size());
  for (size_t i = 0; i < casts.size(); ++i) {
    EXPECT_EQ(back[i]->id, casts[i]->id);
    EXPECT_EQ(back[i]->body, casts[i]->body);
    EXPECT_EQ(back[i]->sender, 3);
    EXPECT_EQ(back[i]->dest.bits(), dest.bits());
    EXPECT_FALSE(back[i]->batch);
  }
}

TEST(BatchCodec, MalformedBuffersThrow) {
  const GroupSet dest = GroupSet::single(0);
  std::vector<AppMsgPtr> casts = {makeAppMessage(1, 0, dest, "payload")};
  const std::string wire = encodeBatchBody(casts);

  // Truncations at every prefix length must throw, never read past the end.
  for (size_t cut = 0; cut < wire.size(); ++cut)
    EXPECT_THROW(decodeBatchBody(0, dest, wire.substr(0, cut)),
                 std::invalid_argument)
        << "cut=" << cut;
  // Trailing garbage is malformed too.
  EXPECT_THROW(decodeBatchBody(0, dest, wire + "x"), std::invalid_argument);
  // A count that promises more entries than the buffer holds.
  std::string lying(wire);
  lying[0] = '\x07';
  EXPECT_THROW(decodeBatchBody(0, dest, lying), std::invalid_argument);
}

TEST(BatchCodec, CarrierIsFlaggedAndExposesConstituents) {
  const GroupSet dest = GroupSet::of({0, 1});
  std::vector<AppMsgPtr> casts = {makeAppMessage(1, 0, dest, "a"),
                                  makeAppMessage(2, 0, dest, "b")};
  AppMsgPtr carrier = makeCarrier(100, 0, dest, casts);
  ASSERT_NE(asBatch(carrier), nullptr);
  EXPECT_TRUE(carrier->batch);
  EXPECT_EQ(carrier->id, 100u);
  ASSERT_EQ(asBatch(carrier)->casts.size(), 2u);
  EXPECT_EQ(asBatch(carrier)->casts[0]->id, 1u);
  EXPECT_EQ(asBatch(carrier)->casts[1]->id, 2u);
  // The carrier body is the wire encoding of its constituents.
  EXPECT_EQ(carrier->body, encodeBatchBody(casts));
  // A plain message is not a carrier.
  EXPECT_EQ(asBatch(casts[0]), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end batching semantics through Experiment.
// ---------------------------------------------------------------------------

RunConfig batchedConfig(SimTime window, int maxSize) {
  RunConfig cfg;
  cfg.groups = 3;
  cfg.procsPerGroup = 2;
  cfg.protocol = ProtocolKind::kA1;
  cfg.stack.batchWindow = window;
  cfg.stack.batchMaxSize = maxSize;
  return cfg;
}

TEST(Batching, WindowCoalescesAndDeliversInBatchOrder) {
  Experiment ex(batchedConfig(30 * kMs, 0));
  const GroupSet d01 = GroupSet::of({0, 1});
  // Three casts inside one window with the same (sender, dest) key, plus
  // one with a different destination set (its own batch).
  const MsgId m1 = ex.castAt(10 * kMs, 0, d01, "a");
  const MsgId m2 = ex.castAt(12 * kMs, 0, d01, "b");
  const MsgId m3 = ex.castAt(14 * kMs, 0, d01, "c");
  const MsgId m4 = ex.castAt(11 * kMs, 0, GroupSet::of({0, 2}), "d");
  auto r = ex.run(10 * kSec);

  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite().size();

  // Carriers never surface in the trace: every cast and delivery is a
  // constituent id, and casts are recorded at enqueue time (the window
  // wait counts as latency; the cast timestamp is the application's).
  ASSERT_EQ(r.trace.casts.size(), 4u);
  for (const auto& c : r.trace.casts)
    EXPECT_TRUE(c.msg == m1 || c.msg == m2 || c.msg == m3 || c.msg == m4);
  EXPECT_EQ(r.trace.castOf(m1)->when, 10 * kMs);
  EXPECT_EQ(r.trace.castOf(m3)->when, 14 * kMs);
  for (const auto& dv : r.trace.deliveries)
    EXPECT_TRUE(dv.msg == m1 || dv.msg == m2 || dv.msg == m3 || dv.msg == m4)
        << "carrier id " << dv.msg << " leaked into the trace";

  // Every addressee of the batch delivers its casts contiguously, in
  // batch-internal (enqueue) order: m1, m2, m3 back to back.
  const auto seqs = r.trace.sequences();
  for (ProcessId p : {0, 1, 2, 3}) {
    const auto& seq = seqs.at(p);
    auto it1 = std::find(seq.begin(), seq.end(), m1);
    ASSERT_NE(it1, seq.end()) << "p" << p;
    ASSERT_LE(it1 + 3, seq.end()) << "p" << p;
    EXPECT_EQ(*(it1 + 1), m2) << "p" << p;
    EXPECT_EQ(*(it1 + 2), m3) << "p" << p;
  }
  // Group 2's members see only the second batch.
  for (ProcessId p : {4, 5}) EXPECT_EQ(seqs.at(p), std::vector<MsgId>{m4});
}

TEST(Batching, SizeBoundFlushesBeforeTheWindowExpires) {
  // Window far beyond the horizon of the first flush: only the size bound
  // can explain an early delivery.
  Experiment ex(batchedConfig(10 * kSec, 2));
  const GroupSet d01 = GroupSet::of({0, 1});
  const MsgId m1 = ex.castAt(10 * kMs, 0, d01, "a");
  const MsgId m2 = ex.castAt(20 * kMs, 0, d01, "b");
  // A third cast re-opens the key; its batch is window-held to 10.03s.
  const MsgId m3 = ex.castAt(30 * kMs, 0, d01, "c");
  auto r = ex.run(60 * kSec);

  EXPECT_TRUE(r.checkAtomicSuite().empty());
  SimTime firstPair = kTimeNever, third = kTimeNever;
  for (const auto& dv : r.trace.deliveries) {
    if (dv.msg == m1 || dv.msg == m2) firstPair = std::min(firstPair, dv.when);
    if (dv.msg == m3) third = std::min(third, dv.when);
  }
  EXPECT_LT(firstPair, 10 * kSec) << "size bound did not flush early";
  EXPECT_GE(third, 30 * kMs + 10 * kSec) << "window hold was not honored";
}

TEST(Batching, CrashBeforeWindowExpiryDropsTheBatch) {
  // Satellite: a flush timer must not fire on behalf of a dead sender. The
  // cast is enqueued at 100ms, the 50ms window would flush at 150ms, and
  // the sender dies at 120ms: nothing may be delivered anywhere.
  RunConfig cfg = batchedConfig(50 * kMs, 0);
  cfg.groups = 2;
  Experiment ex(cfg);
  ex.castAt(100 * kMs, 0, GroupSet::of({0, 1}), "doomed");
  ex.crashAt(0, 120 * kMs);
  auto r = ex.run(10 * kSec);

  // The cast is on record (it happened), but the batch died with its
  // sender — validity only binds casts by correct processes.
  EXPECT_EQ(r.trace.casts.size(), 1u);
  EXPECT_TRUE(r.trace.deliveries.empty());
  EXPECT_TRUE(r.checkAtomicSuite().empty());
}

TEST(Batching, RecoverBeforeFlushStartsAFreshBatch) {
  // Crash at 120ms, recover at 140ms: at window expiry (150ms) the sender
  // is alive again but under a NEW incarnation — the old batch belongs to
  // the dead one and is dropped, not flushed. A later cast from the fresh
  // incarnation batches and delivers normally.
  RunConfig cfg = batchedConfig(50 * kMs, 0);
  cfg.groups = 2;
  cfg.stack.consensusRoundTimeout = 2 * kSec;
  Experiment ex(cfg);
  const GroupSet d01 = GroupSet::of({0, 1});
  const MsgId m1 = ex.castAt(100 * kMs, 0, d01, "old-incarnation");
  ex.crashAt(0, 120 * kMs);
  ex.recoverAt(0, 140 * kMs);
  const MsgId m2 = ex.castAt(300 * kMs, 0, d01, "fresh-incarnation");
  auto r = ex.run(30 * kSec);

  EXPECT_TRUE(r.checkAtomicSuite().empty());
  int m1Deliveries = 0, m2Deliveries = 0;
  for (const auto& dv : r.trace.deliveries) {
    m1Deliveries += dv.msg == m1;
    m2Deliveries += dv.msg == m2;
  }
  EXPECT_EQ(m1Deliveries, 0) << "dead incarnation's batch was flushed";
  EXPECT_EQ(m2Deliveries, 4) << "fresh incarnation's cast must reach all";
}

TEST(Batching, ReducesOrderingTrafficForTheSameWorkload) {
  auto runWith = [](SimTime window) {
    Experiment ex(batchedConfig(window, 0));
    const GroupSet d01 = GroupSet::of({0, 1});
    for (int i = 0; i < 6; ++i)
      ex.castAt((10 + i) * kMs, 0, d01, std::to_string(i));
    return ex.run(30 * kSec);
  };
  auto unbatched = runWith(0);
  auto batched = runWith(40 * kMs);

  // Same delivered ids at every process...
  auto ids = [](const core::RunResult& r) {
    auto seqs = r.trace.sequences();
    for (auto& [p, seq] : seqs) std::sort(seq.begin(), seq.end());
    return seqs;
  };
  EXPECT_EQ(ids(unbatched), ids(batched));
  // ...for strictly fewer ordering-layer messages: six protocol instances
  // collapse into one.
  const uint64_t costU = unbatched.traffic.at(Layer::kProtocol).total() +
                         unbatched.traffic.at(Layer::kConsensus).total();
  const uint64_t costB = batched.traffic.at(Layer::kProtocol).total() +
                         batched.traffic.at(Layer::kConsensus).total();
  EXPECT_LT(costB, costU);
}

TEST(BatchLadder, RungsDifferOnlyInBatchKnobs) {
  metrics::SweepOptions opt;
  opt.base.groups = 3;
  opt.base.procsPerGroup = 2;
  opt.base.protocol = ProtocolKind::kA1;
  opt.base.latency = sim::LatencyModel::fixed(kMs, 50 * kMs);
  opt.casts = 20;
  opt.seedsPerPoint = 1;
  opt.intervals = {20 * kMs, 5 * kMs};
  const auto rungs =
      metrics::runBatchLadderSweep(opt, {0, 4}, /*batchWindow=*/30 * kMs);
  ASSERT_EQ(rungs.size(), 2u);
  EXPECT_EQ(rungs[0].batchMaxSize, 0);
  EXPECT_EQ(rungs[0].batchWindow, 0);  // the unbatched control rung
  EXPECT_EQ(rungs[1].batchMaxSize, 4);
  EXPECT_EQ(rungs[1].batchWindow, 30 * kMs);
  for (const auto& e : rungs) {
    ASSERT_EQ(e.curve.size(), 2u);
    EXPECT_GT(e.peakGoodputPerSec, 0.0);
    for (const auto& p : e.curve) EXPECT_EQ(p.casts, 20u);
  }
  std::ostringstream os;
  metrics::writeBatchLadderCsv(rungs, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("batch_max,batch_window_us,interval_us"),
            std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

// ---------------------------------------------------------------------------
// Determinism contract: a batched scenario sweeps identically serial and
// parallel (same pinning the golden matrix relies on for the batch cells).
// ---------------------------------------------------------------------------

TEST(BatchedSweep, SerialAndParallelFingerprintsMatch) {
  testing::Scenario s;
  s.name = "a1/batched-sweep";
  s.config.groups = 3;
  s.config.procsPerGroup = 3;
  s.config.protocol = ProtocolKind::kA1;
  s.config.stack.batchWindow = 50 * kMs;
  s.config.stack.batchMaxSize = 4;
  s.latency = testing::LatencyPreset::kWan;
  auto w = workload::Spec::openLoopPoisson(24, 10 * kMs, 2);
  w.senderZipf = 1.5;
  w.destZipf = 1.5;
  s.workload = w;
  s.runUntil = 30 * kSec;
  s.withDefaultExpectations();

  const int kCount = 6;
  auto serial = testing::ScenarioRunner(s).sweepSeeds(1, kCount, /*jobs=*/1);
  auto parallel = testing::ScenarioRunner(s).sweepSeeds(1, kCount, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(serial[i].ok()) << serial[i].report();
    EXPECT_EQ(serial[i].fingerprint, parallel[i].fingerprint)
        << "batched sweep diverged at seed " << serial[i].seed;
  }
}

}  // namespace
}  // namespace wanmc
