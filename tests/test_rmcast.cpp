// Unit tests for reliable multicast (non-uniform and uniform variants).
#include <gtest/gtest.h>

#include <memory>

#include "rmcast/rmcast.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

using rmcast::RelayPolicy;
using rmcast::ReliableMulticast;
using rmcast::RmPayload;
using rmcast::Uniformity;

class RmHost final : public sim::Node {
 public:
  RmHost(sim::Runtime& rt, ProcessId pid, RelayPolicy relay,
         Uniformity uniformity)
      : sim::Node(rt, pid), rm(rt, pid, relay, uniformity) {
    rm.onDeliver([this](const AppMsgPtr& m) { delivered.push_back(m->id); });
  }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    rm.onMessage(from, static_cast<const RmPayload&>(*p));
  }
  ReliableMulticast rm;
  std::vector<MsgId> delivered;
};

struct Fixture {
  Fixture(int groups, int procs,
          RelayPolicy relay = RelayPolicy::kIntraOnly,
          Uniformity uni = Uniformity::kNonUniform, uint64_t seed = 1)
      : rt(Topology(groups, procs),
           sim::LatencyModel::fixed(kMs, 100 * kMs), seed) {
    for (ProcessId p = 0; p < groups * procs; ++p) {
      auto n = std::make_unique<RmHost>(rt, p, relay, uni);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
  }
  sim::Runtime rt;
  std::vector<RmHost*> hosts;
};

TEST(RMcastNonUniform, DeliversToAllAddressees) {
  Fixture f(3, 2);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_EQ(f.hosts[p]->delivered, std::vector<MsgId>{1}) << "p" << p;
  // Group 2 is not an addressee.
  EXPECT_TRUE(f.hosts[4]->delivered.empty());
  EXPECT_TRUE(f.hosts[5]->delivered.empty());
}

TEST(RMcastNonUniform, SenderOutsideDestDoesNotDeliver) {
  Fixture f(2, 2);
  auto m = makeAppMessage(1, 0, GroupSet::of({1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  EXPECT_TRUE(f.hosts[0]->delivered.empty());
  EXPECT_EQ(f.hosts[2]->delivered, std::vector<MsgId>{1});
  EXPECT_EQ(f.hosts[3]->delivered, std::vector<MsgId>{1});
}

TEST(RMcastNonUniform, NoDuplicateDeliveries) {
  Fixture f(2, 3);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  for (auto* h : f.hosts) EXPECT_LE(h->delivered.size(), 1u);
}

TEST(RMcastNonUniform, InterGroupMessageCountMatchesPaper) {
  // [6]-style accounting: a multicast from p to k groups (p's group being
  // one of them) costs d(k-1) inter-group messages.
  const int d = 3, k = 3;
  Fixture f(k, d);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1, 2}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  EXPECT_EQ(f.rt.traffic().at(Layer::kReliableMulticast).inter,
            static_cast<uint64_t>(d * (k - 1)));
}

TEST(RMcastNonUniform, LatencyDegreeOne) {
  // One inter-group delay from R-MCast to the last R-Deliver.
  Fixture f(2, 2);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  // All deliveries happened by one WAN delay (100ms) + relay slack.
  EXPECT_LE(f.rt.now(), 102 * kMs);
}

TEST(RMcastNonUniform, ExplicitDestOverride) {
  // A2's usage: R-MCast to the sender's own group although m.dest = Gamma.
  Fixture f(2, 2);
  auto m = makeAppMessage(1, 0, GroupSet::all(2));
  f.hosts[0]->rm.rmcastTo(m, {0, 1});
  f.rt.run();
  EXPECT_EQ(f.hosts[0]->delivered, std::vector<MsgId>{1});
  EXPECT_EQ(f.hosts[1]->delivered, std::vector<MsgId>{1});
  EXPECT_TRUE(f.hosts[2]->delivered.empty());
  EXPECT_TRUE(f.hosts[3]->delivered.empty());
  EXPECT_EQ(f.rt.traffic().at(Layer::kReliableMulticast).inter, 0u);
}

TEST(RMcastNonUniform, IntraGroupAgreementUnderOmission) {
  // Drop the sender's direct packet to p1; the intra-group relay from p2
  // must still deliver m at p1 (agreement within the group).
  Fixture f(2, 3);
  f.rt.setDropFilter([](ProcessId from, ProcessId to, const Payload& p) {
    const auto* rm = dynamic_cast<const RmPayload*>(&p);
    return rm != nullptr && !rm->isRelay && from == 0 && to == 4;
  });
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  EXPECT_EQ(f.hosts[4]->delivered, std::vector<MsgId>{1});
}

TEST(RMcastEager, CrossGroupAgreementWhenWholeGroupMissed) {
  // Drop every direct packet to group 1; with eager relay, group 0's
  // processes re-send to group 1, so agreement holds across groups.
  Fixture f(2, 2, RelayPolicy::kEager);
  f.rt.setDropFilter([&f](ProcessId from, ProcessId to, const Payload& p) {
    const auto* rm = dynamic_cast<const RmPayload*>(&p);
    return rm != nullptr && !rm->isRelay && from == 0 &&
           f.rt.topology().group(to) == 1;
  });
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  EXPECT_EQ(f.hosts[2]->delivered, std::vector<MsgId>{1});
  EXPECT_EQ(f.hosts[3]->delivered, std::vector<MsgId>{1});
}

TEST(RMcastUniform, DeliversAfterMajorityCopies) {
  Fixture f(2, 3, RelayPolicy::kEager, Uniformity::kUniform);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  for (ProcessId p = 0; p < 6; ++p)
    EXPECT_EQ(f.hosts[p]->delivered, std::vector<MsgId>{1}) << "p" << p;
}

TEST(RMcastUniform, StillLatencyDegreeOne) {
  // The majority copies are intra-group: uniformity does not add an
  // inter-group delay (matches the paper's degree-1 accounting for [6]).
  // Note: eager relays keep flying after the last delivery, so we check
  // delivery times, not when the event queue drains.
  Fixture f(2, 3, RelayPolicy::kEager, Uniformity::kUniform);
  std::vector<SimTime> deliveredAt(6, -1);
  for (ProcessId p = 0; p < 6; ++p)
    f.hosts[p]->rm.onDeliver([&, p](const AppMsgPtr&) {
      deliveredAt[static_cast<size_t>(p)] = f.rt.now();
    });
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  for (ProcessId p = 0; p < 6; ++p) {
    ASSERT_GE(deliveredAt[static_cast<size_t>(p)], 0) << "p" << p;
    EXPECT_LE(deliveredAt[static_cast<size_t>(p)], 104 * kMs) << "p" << p;
  }
}

TEST(RMcastUniform, SingleProcessGroups) {
  Fixture f(3, 1, RelayPolicy::kEager, Uniformity::kUniform);
  auto m = makeAppMessage(1, 0, GroupSet::of({0, 1, 2}));
  f.hosts[0]->rm.rmcast(m);
  f.rt.run();
  for (ProcessId p = 0; p < 3; ++p)
    EXPECT_EQ(f.hosts[p]->delivered, std::vector<MsgId>{1});
}

TEST(RMcast, ManyMessagesAllDelivered) {
  Fixture f(3, 2);
  for (MsgId i = 1; i <= 50; ++i) {
    auto m = makeAppMessage(i, static_cast<ProcessId>(i % 6),
                            GroupSet::of({0, 1, 2}));
    f.hosts[static_cast<size_t>(i % 6)]->rm.rmcast(m);
  }
  f.rt.run();
  for (auto* h : f.hosts) EXPECT_EQ(h->delivered.size(), 50u);
}

}  // namespace
}  // namespace wanmc
