// Tests for the trace/statistics export module and the Experiment API
// surface (workload generation, cumulative runs, config handling).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "core/experiment.hpp"
#include "core/export.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

core::RunResult sampleRun() {
  RunConfig c;
  c.groups = 2;
  c.procsPerGroup = 2;
  c.protocol = ProtocolKind::kA1;
  c.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  Experiment ex(c);
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  ex.castAt(300 * kMs, 2, GroupSet::of({1}), "y");
  return ex.run();
}

TEST(ExportCsv, DeliveriesHaveHeaderAndRows) {
  auto r = sampleRun();
  std::ostringstream os;
  core::writeDeliveriesCsv(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("process,group,msg,sender,destGroups,lamport,"
                     "simTimeUs,order"),
            std::string::npos);
  // m1 delivered at 4 processes, m2 at 2: header + 6 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 7);
}

TEST(ExportJson, SummaryContainsAggregates) {
  auto r = sampleRun();
  std::ostringstream os;
  core::writeSummaryJson(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"processes\": 4"), std::string::npos);
  EXPECT_NE(out.find("\"casts\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"deliveries\": 6"), std::string::npos);
  EXPECT_NE(out.find("\"latencyDegreeHistogram\""), std::string::npos);
  EXPECT_NE(out.find("\"safetyViolations\": []"), std::string::npos);
}

TEST(ExportJson, SummaryCarriesStreamingMetrics) {
  auto r = sampleRun();
  std::ostringstream os;
  core::writeSummaryJson(r, os);
  const std::string out = os.str();
  // The redesigned summary is built on RunResult::metrics: percentile
  // block (now with p99), rates, breakdowns, quiescence.
  EXPECT_NE(out.find("\"wallLatencyUs\""), std::string::npos);
  EXPECT_NE(out.find("\"p99\""), std::string::npos);
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"completed\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"fullyDelivered\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"goodputPerSec\""), std::string::npos);
  EXPECT_NE(out.find("\"perGroupLatencyUs\""), std::string::npos);
  EXPECT_NE(out.find("\"perDestSizeLatencyUs\""), std::string::npos);
  EXPECT_NE(out.find("\"quiescence\""), std::string::npos);
}

TEST(ExportCsv, LatencyCsvHasScopedPercentileRows) {
  auto r = sampleRun();
  std::ostringstream os;
  core::writeLatencyCsv(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("scope,key,count,p50_us,p90_us,p99_us,max_us,mean_us"),
            std::string::npos);
  EXPECT_NE(out.find("message,,2,"), std::string::npos);
  EXPECT_NE(out.find("delivery,,6,"), std::string::npos);
  EXPECT_NE(out.find("group,0,"), std::string::npos);
  EXPECT_NE(out.find("group,1,"), std::string::npos);
  // m1 addressed to 2 groups, m2 to 1: both destsize scopes present.
  EXPECT_NE(out.find("destsize,1,"), std::string::npos);
  EXPECT_NE(out.find("destsize,2,"), std::string::npos);
}

TEST(ExportJson, ViolationsAreReported) {
  // Hand-build a trace with a duplicate delivery.
  core::RunResult r;
  r.topo = Topology(1, 1);
  r.correct = {0};
  r.trace.casts.push_back(CastEvent{0, 1, GroupSet::of({0}), 0, 0});
  r.trace.destOf[1] = GroupSet::of({0});
  r.trace.deliveries.push_back(DeliveryEvent{0, 1, 0, 1, 0});
  r.trace.deliveries.push_back(DeliveryEvent{0, 1, 0, 2, 1});
  std::ostringstream os;
  core::writeSummaryJson(r, os);
  EXPECT_NE(os.str().find("2 times"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Experiment API surface.
// ---------------------------------------------------------------------------

TEST(ExperimentApi, WorkloadIsDeterministicPerSeed) {
  auto gen = [](uint64_t seed) {
    RunConfig c;
    c.groups = 3;
    c.procsPerGroup = 2;
    c.protocol = ProtocolKind::kA1;
    Experiment ex(c);
    workload::Spec spec = workload::Spec::closedLoop(10, 50 * kMs);
    spec.seed = seed;
    ex.addWorkload(spec);
    // Reactive generation: ids are allocated as arrivals fire, so the run
    // must drain the workload before the ids can be compared.
    auto r = ex.run(600 * kSec);
    EXPECT_EQ(r.trace.casts.size(), 10u);
    return ex.workloadIds();
  };
  EXPECT_EQ(gen(3), gen(3));
}

TEST(ExperimentApi, WorkloadRespectsDestGroupCount) {
  RunConfig c;
  c.groups = 4;
  c.procsPerGroup = 2;
  c.protocol = ProtocolKind::kA1;
  c.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  Experiment ex(c);
  ex.addWorkload(workload::Spec::closedLoop(12, 50 * kMs, 3));
  auto r = ex.run(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 12u);
  for (const auto& cst : r.trace.casts) {
    EXPECT_EQ(cst.dest.size(), 3);
    // The sender's own group is always addressed.
    EXPECT_TRUE(cst.dest.contains(r.topo.group(cst.process)));
  }
}

TEST(ExperimentApi, BroadcastProtocolsAlwaysGetFullDest) {
  RunConfig c;
  c.groups = 3;
  c.procsPerGroup = 1;
  c.protocol = ProtocolKind::kA2;
  c.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  workload::Spec spec = workload::Spec::closedLoop(5, 50 * kMs, 1);
  c.workload = spec;  // via RunConfig: installed by the constructor
  Experiment ex(c);
  auto r = ex.run(600 * kSec);
  ASSERT_EQ(r.trace.casts.size(), 5u);
  for (const auto& cst : r.trace.casts) EXPECT_EQ(cst.dest.size(), 3);
}

TEST(ExperimentApi, RunMoreAccumulates) {
  RunConfig c;
  c.groups = 2;
  c.procsPerGroup = 2;
  c.protocol = ProtocolKind::kA2;
  c.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  Experiment ex(c);
  ex.castAllAt(kMs, 0, "a");
  auto r1 = ex.run(5 * kSec);
  EXPECT_EQ(r1.trace.casts.size(), 1u);
  ex.castAllAt(6 * kSec, 1, "b");
  auto r2 = ex.runMore(20 * kSec);
  EXPECT_EQ(r2.trace.casts.size(), 2u);
  EXPECT_EQ(r2.trace.deliveries.size(), 8u);
}

TEST(ExperimentApi, ProtocolNamesAreUnique) {
  std::set<std::string> names;
  for (auto kind :
       {ProtocolKind::kA1, ProtocolKind::kFritzke98,
        ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
        ProtocolKind::kViaBcast, ProtocolKind::kSkeen87, ProtocolKind::kA2,
        ProtocolKind::kSousa02, ProtocolKind::kVicente02,
        ProtocolKind::kDetMerge00})
    names.insert(core::protocolName(kind));
  EXPECT_EQ(names.size(), 10u);
}

TEST(ExperimentApi, CrashedSetReflectedInResult) {
  RunConfig c;
  c.groups = 2;
  c.procsPerGroup = 2;
  c.protocol = ProtocolKind::kA2;
  Experiment ex(c);
  ex.crashAt(3, 10 * kMs);
  auto r = ex.run(kSec);
  EXPECT_EQ(r.correct, (std::set<ProcessId>{0, 1, 2}));
}

}  // namespace
}  // namespace wanmc
