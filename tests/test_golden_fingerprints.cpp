// Golden-fingerprint determinism guard for the simulator hot path.
//
// Every (scenario, seed) cell of the standard fault matrix — all 10
// protocols, both matrix seeds — is run and its canonical trace fingerprint
// hashed. The hashes are pinned in tests/golden/fingerprints.txt, which was
// recorded BEFORE the PR 2 scheduler/runtime rewrite: any change to event
// ordering, latency draws, Lamport stamping, or traffic accounting shows up
// here as a byte-level divergence tied to a single reproducible seed.
//
// Regenerate (only when a behavior change is intended and reviewed):
//   WANMC_REGEN_GOLDEN=1 ./test_golden_fingerprints
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;
using wanmc::testing::MatrixOptions;
using wanmc::testing::ScenarioResult;

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kA1,        ProtocolKind::kFritzke98,
    ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
    ProtocolKind::kViaBcast,  ProtocolKind::kSkeen87,
    ProtocolKind::kA2,        ProtocolKind::kSousa02,
    ProtocolKind::kVicente02, ProtocolKind::kDetMerge00,
};

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string goldenPath() {
  return std::string(WANMC_SOURCE_DIR) + "/tests/golden/fingerprints.txt";
}

// name+seed -> fingerprint hash, over the full standard matrix.
std::map<std::string, uint64_t> computeAll() {
  std::map<std::string, uint64_t> out;
  for (ProtocolKind kind : kAllProtocols) {
    MatrixOptions opt;
    for (const ScenarioResult& r : runStandardMatrix(kind, opt)) {
      std::ostringstream key;
      key << wanmc::testing::protocolTestName(kind) << "|" << r.name;
      out[key.str()] = fnv1a64(r.fingerprint);
    }
  }
  return out;
}

TEST(GoldenFingerprints, MatrixCellsMatchPreRefactorTraces) {
  const auto actual = computeAll();
  ASSERT_FALSE(actual.empty());

  if (std::getenv("WANMC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath());
    ASSERT_TRUE(out.good()) << "cannot write " << goldenPath();
    for (const auto& [key, hash] : actual) {
      out << key << " " << std::hex << hash << std::dec << "\n";
    }
    GTEST_SKIP() << "regenerated " << goldenPath() << " with "
                 << actual.size() << " cells";
  }

  std::ifstream in(goldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << goldenPath()
                         << " — run with WANMC_REGEN_GOLDEN=1 to create it";
  // Line format: <key with spaces> <hex hash>; the hash is the last token.
  std::map<std::string, uint64_t> golden;
  std::string line;
  while (std::getline(in, line)) {
    const size_t sep = line.rfind(' ');
    if (sep == std::string::npos) continue;
    golden[line.substr(0, sep)] =
        std::stoull(line.substr(sep + 1), nullptr, 16);
  }

  EXPECT_EQ(golden.size(), actual.size())
      << "matrix shape changed: " << golden.size() << " golden cells vs "
      << actual.size() << " actual";
  int mismatches = 0;
  for (const auto& [k, h] : actual) {
    auto it = golden.find(k);
    if (it == golden.end()) {
      ADD_FAILURE() << "cell not in golden file: " << k;
    } else if (it->second != h) {
      ADD_FAILURE() << "fingerprint diverged: " << k;
      if (++mismatches >= 10) break;  // don't flood the log
    }
  }
}

}  // namespace
}  // namespace wanmc
