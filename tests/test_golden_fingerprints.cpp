// Golden-fingerprint determinism guard for the simulator hot path.
//
// Every (scenario, seed) cell of the standard fault matrix — all 10
// protocols, both matrix seeds — is run and its canonical trace fingerprint
// hashed. The hashes are pinned in tests/golden/fingerprints.txt, which was
// recorded BEFORE the PR 2 scheduler/runtime rewrite: any change to event
// ordering, latency draws, Lamport stamping, or traffic accounting shows up
// here as a byte-level divergence tied to a single reproducible seed.
//
// Regenerate (only when a behavior change is intended and reviewed):
//   WANMC_REGEN_GOLDEN=1 ./test_golden_fingerprints
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "golden_util.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::ProtocolKind;
using wanmc::testing::MatrixOptions;
using wanmc::testing::ScenarioResult;

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kA1,        ProtocolKind::kFritzke98,
    ProtocolKind::kDelporte00, ProtocolKind::kRodrigues98,
    ProtocolKind::kViaBcast,  ProtocolKind::kSkeen87,
    ProtocolKind::kA2,        ProtocolKind::kSousa02,
    ProtocolKind::kVicente02, ProtocolKind::kDetMerge00,
};

// name+seed -> fingerprint hash, over the full standard matrix.
std::map<std::string, uint64_t> computeAll() {
  std::map<std::string, uint64_t> out;
  for (ProtocolKind kind : kAllProtocols) {
    MatrixOptions opt;
    for (const ScenarioResult& r : runStandardMatrix(kind, opt)) {
      std::ostringstream key;
      key << wanmc::testing::protocolTestName(kind) << "|" << r.name;
      out[key.str()] = wanmc::testing::fnv1a64(r.fingerprint);
    }
  }
  return out;
}

TEST(GoldenFingerprints, MatrixCellsMatchPreRefactorTraces) {
  wanmc::testing::checkOrRegenGolden(
      std::string(WANMC_SOURCE_DIR) + "/tests/golden/fingerprints.txt",
      computeAll());
}

}  // namespace
}  // namespace wanmc
