// Unit tests for the failure detectors.
#include <gtest/gtest.h>

#include <memory>

#include "fd/failure_detector.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

class FdHost final : public sim::Node {
 public:
  FdHost(sim::Runtime& rt, ProcessId pid, fd::FdKind kind,
         SimTime oracleDelay, fd::HeartbeatFd::Params hb)
      : sim::Node(rt, pid) {
    det = fd::makeFd(kind, rt, pid, rt.topology().members(gid()),
                     oracleDelay, hb);
    det->onSuspicion([this](ProcessId p) { suspicions.push_back(p); });
  }
  void onStart() override { det->start(); }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    det->onMessage(from, *p);
  }
  std::unique_ptr<fd::FailureDetector> det;
  std::vector<ProcessId> suspicions;
};

struct Fixture {
  Fixture(int procs, fd::FdKind kind, SimTime oracleDelay = 0,
          fd::HeartbeatFd::Params hb = {})
      : rt(Topology(1, procs), sim::LatencyModel::fixed(kMs, 100 * kMs), 1) {
    for (ProcessId p = 0; p < procs; ++p) {
      auto n = std::make_unique<FdHost>(rt, p, kind, oracleDelay, hb);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
  }
  sim::Runtime rt;
  std::vector<FdHost*> hosts;
};

TEST(OracleFd, NoSuspicionWithoutCrash) {
  Fixture f(3, fd::FdKind::kOracle);
  f.rt.run(kSec);
  for (auto* h : f.hosts) {
    EXPECT_TRUE(h->suspicions.empty());
    for (ProcessId p = 0; p < 3; ++p) EXPECT_FALSE(h->det->suspects(p));
  }
}

TEST(OracleFd, SuspectsAfterCrashImmediately) {
  Fixture f(3, fd::FdKind::kOracle, /*oracleDelay=*/0);
  f.rt.crash(1);
  f.rt.run(kSec);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
  EXPECT_TRUE(f.hosts[2]->det->suspects(1));
  EXPECT_EQ(f.hosts[0]->suspicions, std::vector<ProcessId>{1});
}

TEST(OracleFd, DetectionDelayIsHonored) {
  Fixture f(2, fd::FdKind::kOracle, /*oracleDelay=*/50 * kMs);
  f.rt.scheduleCrash(1, 10 * kMs);
  f.rt.run(30 * kMs);
  EXPECT_FALSE(f.hosts[0]->det->suspects(1));
  f.rt.run(200 * kMs);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
}

TEST(OracleFd, SendsNoMessages) {
  Fixture f(3, fd::FdKind::kOracle);
  f.rt.crash(2);
  f.rt.run(kSec);
  EXPECT_EQ(f.rt.traffic().at(Layer::kFailureDetector).total(), 0u);
}

TEST(HeartbeatFd, NoFalseSuspicionInQuietSystem) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(3, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.run(2 * kSec);
  for (auto* h : f.hosts) EXPECT_TRUE(h->suspicions.empty());
}

TEST(HeartbeatFd, DetectsCrashWithinTimeout) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(3, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.scheduleCrash(1, 500 * kMs);
  f.rt.run(2 * kSec);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
  EXPECT_TRUE(f.hosts[2]->det->suspects(1));
  EXPECT_FALSE(f.hosts[0]->det->suspects(2));
}

TEST(HeartbeatFd, GeneratesPeriodicTraffic) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(2, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.run(kSec);
  // ~50 ticks x 2 processes x 1 peer each.
  const auto total = f.rt.traffic().at(Layer::kFailureDetector).total();
  EXPECT_GT(total, 80u);
  EXPECT_LT(total, 120u);
}

// ---------------------------------------------------------------------------
// Cross-group scoping (fault plane v2): per-remote-group heartbeat lanes,
// suspicion retraction on recovery and partition heal.
// ---------------------------------------------------------------------------

// A host whose detector monitors its own group PLUS every remote group
// (the widened scope a cross-group consensus stack like Rodrigues uses).
class ScopedFdHost final : public sim::Node {
 public:
  ScopedFdHost(sim::Runtime& rt, ProcessId pid, fd::FdKind kind)
      : sim::Node(rt, pid) {
    det = fd::makeFd(kind, rt, pid, rt.topology().members(gid()),
                     /*oracleDelay=*/0,
                     fd::HeartbeatFd::Params{20 * kMs, 80 * kMs},
                     fd::HeartbeatFd::Params{60 * kMs, 400 * kMs});
    for (GroupId g = 0; g < rt.topology().numGroups(); ++g)
      if (g != gid()) det->addRemoteGroup(g, rt.topology().members(g));
    det->onSuspicion([this](ProcessId p) { suspicions.push_back(p); });
    det->onRetraction([this](ProcessId p, bool fresh) {
      retractions.push_back(p);
      retractionFresh.push_back(fresh ? 1 : 0);
    });
  }
  void onStart() override { det->start(); }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    det->onMessage(from, *p);
  }
  std::unique_ptr<fd::FailureDetector> det;
  std::vector<ProcessId> suspicions;
  std::vector<ProcessId> retractions;
  std::vector<uint8_t> retractionFresh;  // parallel to retractions
};

struct ScopedFixture {
  ScopedFixture(int groups, int procs, fd::FdKind kind)
      : rt(Topology(groups, procs),
           sim::LatencyModel::fixed(kMs, 100 * kMs), 1) {
    for (ProcessId p = 0; p < groups * procs; ++p) {
      auto n = std::make_unique<ScopedFdHost>(rt, p, kind);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.setNodeFactory([this, kind](ProcessId p) {
      auto n = std::make_unique<ScopedFdHost>(rt, p, kind);
      hosts[static_cast<size_t>(p)] = n.get();
      return n;
    });
    rt.start();
  }
  sim::Runtime rt;
  std::vector<ScopedFdHost*> hosts;
};

TEST(HeartbeatFdScoped, SuspectsRemoteGroupCrash) {
  // g0 = {0,1}, g1 = {2,3}: p0 must learn of p2's crash through its
  // remote lane — the pre-v2 detector (own-group scope) never would.
  ScopedFixture f(2, 2, fd::FdKind::kHeartbeat);
  f.rt.scheduleCrash(2, 500 * kMs);
  f.rt.run(2 * kSec);
  EXPECT_TRUE(f.hosts[0]->det->suspects(2));
  EXPECT_TRUE(f.hosts[1]->det->suspects(2));
  EXPECT_TRUE(f.hosts[3]->det->suspects(2));  // own group still works
  EXPECT_FALSE(f.hosts[0]->det->suspects(3));
}

TEST(HeartbeatFdScoped, NoFalseSuspicionAcrossAliveLinks) {
  // Partition g0 away: g1 and g2 stay connected to each other. g1 may
  // (correctly) suspect the unreachable g0 processes, but must never
  // suspect g2's — their link is alive — and g0's members must not
  // suspect EACH OTHER (the intra lane never crossed the cut).
  ScopedFixture f(3, 2, fd::FdKind::kHeartbeat);
  f.rt.partition(GroupSet::single(0), 100 * kMs, kTimeNever);
  f.rt.run(3 * kSec);
  for (ProcessId p : {2, 3, 4, 5}) {
    EXPECT_FALSE(f.hosts[2]->det->suspects(p)) << "p" << p;
    EXPECT_FALSE(f.hosts[4]->det->suspects(p)) << "p" << p;
  }
  EXPECT_TRUE(f.hosts[2]->det->suspects(0));  // cut side IS unreachable
  EXPECT_FALSE(f.hosts[0]->det->suspects(1));  // intra lane unaffected
  EXPECT_TRUE(f.hosts[0]->det->suspects(2));  // and symmetric outward
}

TEST(HeartbeatFdScoped, RetractsAfterHeal) {
  ScopedFixture f(2, 2, fd::FdKind::kHeartbeat);
  f.rt.partition(GroupSet::single(0), 100 * kMs, 1500 * kMs);
  f.rt.run(1200 * kMs);
  ASSERT_TRUE(f.hosts[0]->det->suspects(2));  // suspected during the cut
  f.rt.run(3 * kSec);  // heal at 1.5s: heartbeats flow again
  EXPECT_FALSE(f.hosts[0]->det->suspects(2));
  EXPECT_FALSE(f.hosts[2]->det->suspects(0));
  // The rehabilitation was signalled, not just flag-cleared — and marked
  // as a SAME-incarnation rehabilitation: the peer kept its state.
  ASSERT_FALSE(f.hosts[0]->retractions.empty());
  EXPECT_EQ(f.hosts[0]->retractions[0],
            f.hosts[0]->suspicions[0]);
  EXPECT_EQ(f.hosts[0]->retractionFresh[0], 0);
}

TEST(HeartbeatFdScoped, RecoverDuringPartitionIsReportedFresh) {
  // Regression (PR 6): p0 crashes AND recovers entirely inside a
  // partition window, so no timeout-based evidence distinguishes it from
  // a process that was merely unreachable. Before heartbeats carried the
  // sender incarnation, the post-heal retraction was indistinguishable
  // from a rehabilitation and state-re-introduction layers (Rodrigues
  // kData re-sends) would wrongly assume p0 kept its pre-crash state.
  ScopedFixture f(2, 2, fd::FdKind::kHeartbeat);
  f.rt.partition(GroupSet::single(0), 100 * kMs, 2 * kSec);
  f.rt.scheduleCrash(0, 500 * kMs);
  f.rt.scheduleRecover(0, 1 * kSec);  // reborn while still cut off
  f.rt.run(1800 * kMs);
  ASSERT_TRUE(f.hosts[2]->det->suspects(0));  // unreachable during cut
  f.rt.run(5 * kSec);  // heal: the fresh incarnation's heartbeats flow
  EXPECT_FALSE(f.hosts[2]->det->suspects(0));
  ASSERT_FALSE(f.hosts[2]->retractions.empty());
  ASSERT_EQ(f.hosts[2]->retractions[0], 0);
  EXPECT_EQ(f.hosts[2]->retractionFresh[0], 1) << "recover-during-"
      "partition must be reported as a fresh incarnation, not a "
      "rehabilitation";
  // Contrast on the same run: p2's own group peer p3 never saw p0's lane
  // drop... while p1 (same side of the cut, same group as p0) watched the
  // crash directly: its intra lane timed out and the recovery heartbeats
  // carry the new incarnation too.
  ASSERT_FALSE(f.hosts[1]->retractions.empty());
  EXPECT_EQ(f.hosts[1]->retractions[0], 0);
  EXPECT_EQ(f.hosts[1]->retractionFresh[0], 1);
}

TEST(HeartbeatFdScoped, RetractsAfterRecovery) {
  ScopedFixture f(2, 2, fd::FdKind::kHeartbeat);
  f.rt.scheduleCrash(2, 200 * kMs);
  f.rt.scheduleRecover(2, 1500 * kMs);
  f.rt.run(1200 * kMs);
  ASSERT_TRUE(f.hosts[0]->det->suspects(2));
  ASSERT_TRUE(f.hosts[3]->det->suspects(2));
  f.rt.run(4 * kSec);  // recovered: fresh heartbeats rehabilitate
  EXPECT_FALSE(f.hosts[0]->det->suspects(2));
  EXPECT_FALSE(f.hosts[3]->det->suspects(2));
  // ... and the heartbeats betray the new incarnation.
  ASSERT_FALSE(f.hosts[0]->retractions.empty());
  EXPECT_EQ(f.hosts[0]->retractionFresh[0], 1);
  // The fresh incarnation's own detector starts clean and suspects
  // nobody who is alive.
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_FALSE(f.hosts[2]->det->suspects(p)) << "p" << p;
}

TEST(OracleFd, RetractsOnRecoveryAndSeedsLateDetectors) {
  ScopedFixture f(2, 2, fd::FdKind::kOracle);
  f.rt.scheduleCrash(2, 100 * kMs);
  f.rt.scheduleRecover(2, 500 * kMs);
  f.rt.run(300 * kMs);
  ASSERT_TRUE(f.hosts[0]->det->suspects(2));
  f.rt.run(kSec);
  // Retraction at the instant of recovery — the oracle reads the truth.
  EXPECT_FALSE(f.hosts[0]->det->suspects(2));
  EXPECT_EQ(f.hosts[0]->retractions, std::vector<ProcessId>{2});
  // A detector constructed mid-run (the recovered node's) is seeded with
  // the processes that are crashed at construction time.
  ScopedFixture g(2, 2, fd::FdKind::kOracle);
  g.rt.scheduleCrash(0, 100 * kMs);
  g.rt.scheduleCrash(2, 150 * kMs);
  g.rt.scheduleRecover(2, 400 * kMs);  // p0 still down at p2's rebirth
  g.rt.run(2 * kSec);
  EXPECT_TRUE(g.hosts[2]->det->suspects(0));
  EXPECT_FALSE(g.hosts[2]->det->suspects(1));
}

TEST(HeartbeatFdScoped, FastRecoveryWhileUnsuspectedStillRetractsFresh) {
  // Regression (PR 7): p2 crashes and recovers FASTER than any lane's
  // timeout can notice (intra timeout 80ms, crash window 30ms), so no
  // peer ever suspects it. The fresh incarnation's first heartbeat must
  // still fire onRetraction(fresh=true) — without it, the Rodrigues-style
  // state-re-introduction hooks would never learn the amnesiac rejoined
  // until some unrelated suspicion cycle happened to fire.
  ScopedFixture f(2, 2, fd::FdKind::kHeartbeat);
  f.rt.scheduleCrash(2, 200 * kMs);
  f.rt.scheduleRecover(2, 230 * kMs);
  f.rt.run(2 * kSec);
  // Own-group peer p3: never suspected, yet told about the incarnation.
  EXPECT_TRUE(f.hosts[3]->suspicions.empty());
  ASSERT_FALSE(f.hosts[3]->retractions.empty());
  EXPECT_EQ(f.hosts[3]->retractions[0], 2);
  EXPECT_EQ(f.hosts[3]->retractionFresh[0], 1);
  EXPECT_FALSE(f.hosts[3]->det->suspects(2));
  // Remote-lane observer p0 (remote timeout 400ms) is equally blind to
  // the 30ms window and must learn the same way.
  EXPECT_TRUE(f.hosts[0]->suspicions.empty());
  ASSERT_FALSE(f.hosts[0]->retractions.empty());
  EXPECT_EQ(f.hosts[0]->retractions[0], 2);
  EXPECT_EQ(f.hosts[0]->retractionFresh[0], 1);
}

}  // namespace
}  // namespace wanmc
