// Unit tests for the failure detectors.
#include <gtest/gtest.h>

#include <memory>

#include "fd/failure_detector.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

class FdHost final : public sim::Node {
 public:
  FdHost(sim::Runtime& rt, ProcessId pid, fd::FdKind kind,
         SimTime oracleDelay, fd::HeartbeatFd::Params hb)
      : sim::Node(rt, pid) {
    det = fd::makeFd(kind, rt, pid, rt.topology().members(gid()),
                     oracleDelay, hb);
    det->onSuspicion([this](ProcessId p) { suspicions.push_back(p); });
  }
  void onStart() override { det->start(); }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    det->onMessage(from, *p);
  }
  std::unique_ptr<fd::FailureDetector> det;
  std::vector<ProcessId> suspicions;
};

struct Fixture {
  Fixture(int procs, fd::FdKind kind, SimTime oracleDelay = 0,
          fd::HeartbeatFd::Params hb = {})
      : rt(Topology(1, procs), sim::LatencyModel::fixed(kMs, 100 * kMs), 1) {
    for (ProcessId p = 0; p < procs; ++p) {
      auto n = std::make_unique<FdHost>(rt, p, kind, oracleDelay, hb);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
  }
  sim::Runtime rt;
  std::vector<FdHost*> hosts;
};

TEST(OracleFd, NoSuspicionWithoutCrash) {
  Fixture f(3, fd::FdKind::kOracle);
  f.rt.run(kSec);
  for (auto* h : f.hosts) {
    EXPECT_TRUE(h->suspicions.empty());
    for (ProcessId p = 0; p < 3; ++p) EXPECT_FALSE(h->det->suspects(p));
  }
}

TEST(OracleFd, SuspectsAfterCrashImmediately) {
  Fixture f(3, fd::FdKind::kOracle, /*oracleDelay=*/0);
  f.rt.crash(1);
  f.rt.run(kSec);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
  EXPECT_TRUE(f.hosts[2]->det->suspects(1));
  EXPECT_EQ(f.hosts[0]->suspicions, std::vector<ProcessId>{1});
}

TEST(OracleFd, DetectionDelayIsHonored) {
  Fixture f(2, fd::FdKind::kOracle, /*oracleDelay=*/50 * kMs);
  f.rt.scheduleCrash(1, 10 * kMs);
  f.rt.run(30 * kMs);
  EXPECT_FALSE(f.hosts[0]->det->suspects(1));
  f.rt.run(200 * kMs);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
}

TEST(OracleFd, SendsNoMessages) {
  Fixture f(3, fd::FdKind::kOracle);
  f.rt.crash(2);
  f.rt.run(kSec);
  EXPECT_EQ(f.rt.traffic().at(Layer::kFailureDetector).total(), 0u);
}

TEST(HeartbeatFd, NoFalseSuspicionInQuietSystem) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(3, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.run(2 * kSec);
  for (auto* h : f.hosts) EXPECT_TRUE(h->suspicions.empty());
}

TEST(HeartbeatFd, DetectsCrashWithinTimeout) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(3, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.scheduleCrash(1, 500 * kMs);
  f.rt.run(2 * kSec);
  EXPECT_TRUE(f.hosts[0]->det->suspects(1));
  EXPECT_TRUE(f.hosts[2]->det->suspects(1));
  EXPECT_FALSE(f.hosts[0]->det->suspects(2));
}

TEST(HeartbeatFd, GeneratesPeriodicTraffic) {
  fd::HeartbeatFd::Params hb{20 * kMs, 80 * kMs};
  Fixture f(2, fd::FdKind::kHeartbeat, 0, hb);
  f.rt.run(kSec);
  // ~50 ticks x 2 processes x 1 peer each.
  const auto total = f.rt.traffic().at(Layer::kFailureDetector).total();
  EXPECT_GT(total, 80u);
  EXPECT_LT(total, 120u);
}

}  // namespace
}  // namespace wanmc
