// Tests for the Figure-1 comparison baselines: Fritzke98 [5], Delporte00
// [4], Rodrigues98 [10], via-broadcast, Sousa02 [12], Vicente02 [13],
// Aguilera-Strom DetMerge00 [1].
#include <gtest/gtest.h>

#include "abcast/sequencer_node.hpp"
#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(ProtocolKind kind, int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

// Jitter-free variant for latency-degree assertions: the paper's Figure 1
// reports best-case degrees (the minimum over admissible runs); fixed link
// delays make the favorable interleaving deterministic. Degree checks also
// use ISOLATED messages — Lamport clocks are global, so unrelated concurrent
// traffic would inflate per-message distances.
RunConfig fixedCfg(ProtocolKind kind, int groups, int procs,
                   uint64_t seed = 1) {
  RunConfig c = cfg(kind, groups, procs, seed);
  // Intra-group delays are two orders of magnitude below inter-group ones
  // so that group-local consensus always completes between WAN hops (the
  // interleaving the paper's theorems assume).
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

// ---------------------------------------------------------------------------
// Multicast baselines share A1's safety contract.
// ---------------------------------------------------------------------------

class McastBaseline : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(McastBaseline, SingleMulticastSafeAndComplete) {
  Experiment ex(cfg(GetParam(), 3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.trace.deliveries.size(), 4u);
}

TEST_P(McastBaseline, ConcurrentOverlappingMulticastsSafe) {
  Experiment ex(cfg(GetParam(), 3, 2, 11));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
  ex.castAt(kMs + 3, 2, GroupSet::of({1, 2}), "b");
  ex.castAt(kMs + 5, 4, GroupSet::of({0, 1, 2}), "c");
  ex.castAt(kMs + 7, 1, GroupSet::of({0}), "d");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST_P(McastBaseline, WorkloadSweepSafe) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Experiment ex(cfg(GetParam(), 3, 2, seed));
    workload::Spec spec = workload::Spec::closedLoop(12, 60 * kMs, 2);
    spec.seed = seed * 31;
    ex.addWorkload(spec);
    auto r = ex.run(600 * kSec);
    auto v = r.checkAtomicSuite();
    EXPECT_TRUE(v.empty()) << "seed " << seed << ": " << v[0];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, McastBaseline,
    ::testing::Values(ProtocolKind::kFritzke98, ProtocolKind::kDelporte00,
                      ProtocolKind::kRodrigues98, ProtocolKind::kViaBcast),
    [](const auto& info) {
      switch (info.param) {
        case ProtocolKind::kFritzke98: return "Fritzke98";
        case ProtocolKind::kDelporte00: return "Delporte00";
        case ProtocolKind::kRodrigues98: return "Rodrigues98";
        default: return "ViaBcast";
      }
    });

// ---------------------------------------------------------------------------
// Latency degrees per Figure 1a.
// ---------------------------------------------------------------------------

TEST(Fritzke98, LatencyDegreeTwo) {
  // Sender outside both destination groups: the two groups then run their
  // first consensus symmetrically and exchange timestamps in one round
  // trip — the Delta = 2 run. (With the sender inside a destination group,
  // its group's earlier consensus races the remote TS arrival; the uniform
  // reliable multicast's extra intra hop makes that race a dead heat under
  // fixed latencies.)
  Experiment ex(fixedCfg(ProtocolKind::kFritzke98, 3, 2));
  auto id = ex.castAt(kMs, 4, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(Delporte00, LatencyDegreeGrowsWithK) {
  // k + 1 when the sender is not in the ring's first group.
  for (int k = 2; k <= 4; ++k) {
    Experiment ex(fixedCfg(ProtocolKind::kDelporte00, k, 2));
    GroupSet dest;
    for (GroupId g = 0; g < k; ++g) dest.add(g);
    // Sender in the LAST destination group: reaching g1 costs one delay.
    const ProcessId sender = static_cast<ProcessId>((k - 1) * 2);
    auto id = ex.castAt(kMs, sender, dest, "x");
    auto r = ex.run(600 * kSec);
    EXPECT_TRUE(r.checkAtomicSuite().empty());
    EXPECT_EQ(*r.trace.latencyDegree(id), k + 1) << "k=" << k;
  }
}

TEST(Delporte00, GenuineOnlyAddresseesParticipate) {
  Experiment ex(cfg(ProtocolKind::kDelporte00, 3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  auto v = verify::checkGenuineness(r.checkContext(), r.genuineness);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(Rodrigues98, LatencyDegreeFour) {
  Experiment ex(fixedCfg(ProtocolKind::kRodrigues98, 2, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  EXPECT_EQ(*r.trace.latencyDegree(id), 4);
}

TEST(Rodrigues98, GenuineOnlyAddresseesParticipate) {
  Experiment ex(cfg(ProtocolKind::kRodrigues98, 3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  auto v = verify::checkGenuineness(r.checkContext(), r.genuineness);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(ViaBcast, LatencyDegreeOneWhenWarmButNotGenuine) {
  Experiment ex(fixedCfg(ProtocolKind::kViaBcast, 3, 2));
  // Warm the rounds with a stream, then measure.
  for (int i = 0; i < 20; ++i)
    ex.castAt(kMs + i * 40 * kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  ASSERT_TRUE(r.trace.minLatencyDegree().has_value());
  EXPECT_EQ(*r.trace.minLatencyDegree(), 1);  // beats the genuine bound...
  auto v = verify::checkGenuineness(r.checkContext(), r.genuineness);
  EXPECT_FALSE(v.empty());  // ...precisely because it is not genuine
}

// ---------------------------------------------------------------------------
// Broadcast baselines.
// ---------------------------------------------------------------------------

TEST(Sousa02, FinalDeliveryDegreeTwo) {
  // Isolated message: concurrent traffic would inflate its Lamport span.
  Experiment ex(fixedCfg(ProtocolKind::kSousa02, 2, 2));
  auto id = ex.castAllAt(kMs, 2, "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(Sousa02, TotalOrderUnderConcurrentSenders) {
  Experiment ex(cfg(ProtocolKind::kSousa02, 2, 2));
  for (int i = 0; i < 9; ++i)
    ex.castAllAt(10 * kMs + i * 30 * kMs, static_cast<ProcessId>(i % 4), "y");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  auto seqs = r.trace.sequences();
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(seqs[p], seqs[0]);
}

TEST(Sousa02, OptimisticDeliveryIsOneHop) {
  Experiment ex(cfg(ProtocolKind::kSousa02, 2, 2));
  ex.castAllAt(kMs, 0, "x");
  ex.run();
  for (ProcessId p = 0; p < 4; ++p) {
    auto& n = dynamic_cast<abcast::SequencerNode&>(ex.node(p));
    EXPECT_EQ(n.optimisticOrder().size(), 1u);
  }
}

TEST(Vicente02, UniformDegreeTwoAndONSquared) {
  const int m = 2, d = 2, n = m * d;
  Experiment ex(fixedCfg(ProtocolKind::kVicente02, m, d));
  auto id = ex.castAllAt(kMs, 1, "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
  // data O(n) + echo O(n^2) + seq O(n): quadratic dominates.
  EXPECT_GE(r.traffic.at(Layer::kProtocol).total(),
            static_cast<uint64_t>(n) * (n - 1));
}

TEST(DetMerge00, LatencyDegreeOneWithSlowHeartbeats) {
  // Single-process groups: with an intra-group peer, the peer's next
  // heartbeat causally follows m (it received m microseconds after the
  // cast) and Lamport-inflates the measured span — the degree-1 run the
  // paper's Figure 1 accounts for is the one where the gating heartbeats
  // are concurrent with m.
  auto c = fixedCfg(ProtocolKind::kDetMerge00, 2, 1);
  c.merge.heartbeatPeriod = 200 * kMs;  // >= inter-group delay
  Experiment ex(c);
  auto id = ex.castAllAt(300 * kMs, 0, "x");
  auto r = ex.run(5 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 1);
}

TEST(DetMerge00, TotalOrderUnderConcurrentPublishers) {
  auto c = cfg(ProtocolKind::kDetMerge00, 2, 2);
  Experiment ex(c);
  for (int i = 0; i < 10; ++i)
    ex.castAllAt(100 * kMs + i * 70 * kMs, static_cast<ProcessId>(i % 4),
                 "x");
  auto r = ex.run(10 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  auto seqs = r.trace.sequences();
  for (ProcessId p = 1; p < 4; ++p) EXPECT_EQ(seqs[p], seqs[0]);
}

TEST(DetMerge00, MulticastModeDeliversAtAddresseesOnly) {
  auto c = fixedCfg(ProtocolKind::kDetMerge00, 3, 1);
  c.merge.multicastMode = true;
  c.merge.heartbeatPeriod = 200 * kMs;
  Experiment ex(c);
  auto id = ex.castAt(300 * kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run(5 * kSec);
  auto seqs = r.trace.sequences();
  EXPECT_EQ(seqs[0].size(), 1u);
  EXPECT_EQ(seqs[1].size(), 1u);
  EXPECT_TRUE(seqs[2].empty());  // group 2 is not addressed
  EXPECT_EQ(*r.trace.latencyDegree(id), 1);
}

TEST(DetMerge00, NeverQuiescent) {
  auto c = cfg(ProtocolKind::kDetMerge00, 2, 1);
  Experiment ex(c);
  ex.castAllAt(100 * kMs, 0, "x");
  auto r = ex.run(20 * kSec);
  // Heartbeats keep flowing long after the last cast: [1] trades
  // quiescence for its latency degree of 1.
  auto v = verify::checkQuiescence(r.checkContext(), r.lastAlgoSend, 5 * kSec);
  EXPECT_FALSE(v.empty());
}

// The remaining baselines' shared fault matrices (the other stacks run
// theirs from their own test files).
TEST(Baselines, Fritzke98StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kFritzke98))
    EXPECT_TRUE(r.ok()) << r.report();
}

TEST(Baselines, Rodrigues98StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kRodrigues98))
    EXPECT_TRUE(r.ok()) << r.report();
}

TEST(Baselines, ViaBcastStandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kViaBcast))
    EXPECT_TRUE(r.ok()) << r.report();
}

TEST(Baselines, DetMergeStandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kDetMerge00))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
