// Unit tests for the reliable retransmitting channel substrate
// (src/channel/): per-link sequencing and FIFO delivery under reorder,
// loss recovery via RTO retransmit and NACK fast resend, duplicate and
// stale-incarnation suppression, the bounded holdback buffer, and the
// loss model underneath it all.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "channel/channel.hpp"
#include "sim/runtime.hpp"

namespace wanmc {
namespace {

struct TestMsg final : Payload {
  explicit TestMsg(int i) : id(i) {}
  int id;
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return "t" + std::to_string(id);
  }
};

class ChanHost final : public sim::Node {
 public:
  using sim::Node::Node;
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    if (const auto* m = dynamic_cast<const TestMsg*>(p.get()))
      got.push_back({from, m->id});
  }
  std::vector<std::pair<ProcessId, int>> got;
};

struct ChanFixture {
  ChanFixture(int groups, int procs, sim::LatencyModel lm,
              channel::Config cfg = {}, uint64_t seed = 1)
      : rt(Topology(groups, procs), lm, seed), plane(rt, cfg) {
    rt.setChannelHook(&plane);
    for (ProcessId p = 0; p < rt.topology().numProcesses(); ++p) {
      auto n = std::make_unique<ChanHost>(rt, p);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.setNodeFactory([this](ProcessId p) {
      auto n = std::make_unique<ChanHost>(rt, p);
      hosts[static_cast<size_t>(p)] = n.get();
      return n;
    });
    rt.start();
  }

  std::vector<int> idsAt(ProcessId p) const {
    std::vector<int> out;
    for (const auto& [from, id] : hosts[static_cast<size_t>(p)]->got)
      out.push_back(id);
    return out;
  }

  sim::Runtime rt;
  channel::Plane plane;
  std::vector<ChanHost*> hosts;
};

std::vector<int> iota(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

// ---------------------------------------------------------------------------
// FIFO and counters on a clean link.
// ---------------------------------------------------------------------------

TEST(Channel, CleanLinkDeliversInOrderWithMinimalTraffic) {
  ChanFixture f(1, 3, sim::LatencyModel::fixed(kMs, 100 * kMs));
  for (int i = 0; i < 8; ++i)
    f.rt.multicast(0, {1, 2}, std::make_shared<TestMsg>(i));
  f.rt.run(10 * kSec);
  EXPECT_EQ(f.idsAt(1), iota(8));
  EXPECT_EQ(f.idsAt(2), iota(8));
  const auto& s = f.plane.stats();
  EXPECT_EQ(s.dataSent, 16u);   // one per (message, destination)
  EXPECT_EQ(s.delivered, 16u);
  EXPECT_EQ(s.acksSent, 16u);   // one cumulative ACK per DATA arrival
  EXPECT_EQ(s.retransmits, 0u);  // nothing lost: the RTO never fires
  EXPECT_EQ(s.nacksSent, 0u);
  EXPECT_EQ(s.duplicatesDropped, 0u);
  EXPECT_EQ(s.staleDropped, 0u);
  EXPECT_EQ(s.holdbackOverflow, 0u);
}

TEST(Channel, ReorderingJitterIsMaskedByTheHoldback) {
  // Wide iid jitter: 30 copies drawn independently from [1ms, 50ms] arrive
  // scrambled, but each link must hand them up strictly in send order.
  ChanFixture f(1, 2, sim::LatencyModel{kMs, 50 * kMs, kMs, 50 * kMs});
  for (int i = 0; i < 30; ++i)
    f.rt.send(0, 1, std::make_shared<TestMsg>(i));
  f.rt.run(30 * kSec);
  EXPECT_EQ(f.idsAt(1), iota(30));
  EXPECT_EQ(f.plane.stats().delivered, 30u);
  // The premise actually bit: at least one arrival opened a gap.
  EXPECT_GT(f.plane.stats().nacksSent, 0u)
      << "seed 1 must scramble at least one pair for this test to bite; "
         "pick another seed if the latency RNG changes";
}

// ---------------------------------------------------------------------------
// Loss recovery.
// ---------------------------------------------------------------------------

TEST(Channel, LossIsRecoveredExactlyOnceInOrder) {
  ChanFixture f(2, 1, sim::LatencyModel::fixed(kMs, 100 * kMs));
  f.rt.setLossRate(0.3);
  for (int i = 0; i < 30; ++i)
    f.rt.send(0, 1, std::make_shared<TestMsg>(i));
  f.rt.run(120 * kSec);
  EXPECT_EQ(f.idsAt(1), iota(30));  // every loss masked, no dup, no reorder
  const auto& s = f.plane.stats();
  EXPECT_GT(f.rt.trace().lossDrops, 0u);
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_EQ(s.delivered, 30u);
  // A retransmitted copy whose original got through is suppressed by seq.
  EXPECT_GT(s.duplicatesDropped, 0u);
}

TEST(Channel, BoundedHoldbackOverflowStillConvergesViaRetransmit) {
  // Drop the first transmission of seq 0 only: seqs 1..4 arrive in order
  // behind the gap, the 2-slot holdback keeps {1,2} and sheds {3,4}
  // (drop-newest), and the NACK + RTO machinery re-offers everything.
  channel::Config cfg;
  cfg.holdbackCap = 2;
  ChanFixture f(1, 2, sim::LatencyModel::fixed(kMs, 100 * kMs), cfg);
  int dropped = 0;
  f.rt.setDropFilter([&dropped](ProcessId, ProcessId, const Payload& p) {
    const auto* d = dynamic_cast<const channel::DataPacket*>(&p);
    if (d != nullptr && d->seq == 0 && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  for (int i = 0; i < 5; ++i)
    f.rt.send(0, 1, std::make_shared<TestMsg>(i));
  f.rt.run(30 * kSec);
  EXPECT_EQ(f.idsAt(1), iota(5));
  const auto& s = f.plane.stats();
  EXPECT_EQ(s.holdbackOverflow, 2u);  // seqs 3 and 4 found the buffer full
  EXPECT_GT(s.nacksSent, 0u);         // the gap was NACKed...
  EXPECT_GT(s.retransmits, 0u);       // ...and re-offered
  EXPECT_EQ(s.delivered, 5u);
}

// ---------------------------------------------------------------------------
// Incarnations: stale suppression and link re-keying.
// ---------------------------------------------------------------------------

TEST(Channel, StaleIncarnationCopiesAreDroppedNotDelivered) {
  // p0's first DATA (incarnation 0, seq 0) is still in flight when p0
  // crashes and recovers; the fresh incarnation reuses seq 0 for a NEW
  // message. Without the (sender incarnation, seq) key the straggler
  // would either be delivered under the fresh space or suppress the
  // legitimate fresh seq 0.
  ChanFixture f(2, 1, sim::LatencyModel::fixed(kMs, 100 * kMs));
  f.rt.send(0, 1, std::make_shared<TestMsg>(100));  // inc 0, arrives t=100ms
  f.rt.scheduleCrash(0, 10 * kMs);
  f.rt.scheduleRecover(0, 20 * kMs);
  f.rt.scheduler().at(30 * kMs, [&f]() {
    f.rt.send(0, 1, std::make_shared<TestMsg>(200));  // inc 1, seq 0 again
  });
  f.rt.run(10 * kSec);
  EXPECT_EQ(f.idsAt(1), std::vector<int>{200});
  EXPECT_EQ(f.plane.stats().staleDropped, 1u);
  EXPECT_EQ(f.plane.stats().delivered, 1u);
}

TEST(Channel, ReceiverRecoveryRekeysTheLinkAndReoffersTheBacklog) {
  // p1 acks ids 0..1, crashes, and rejoins as an amnesiac while p0 still
  // holds unacked ids 2..4. p1's fresh ACK reveals the new incarnation;
  // p0 must re-key the link (new epoch, sequence space from 0) and
  // re-offer the backlog, which the fresh p1 delivers in order.
  ChanFixture f(2, 1, sim::LatencyModel::fixed(kMs, 100 * kMs));
  for (int i = 0; i < 2; ++i)
    f.rt.send(0, 1, std::make_shared<TestMsg>(i));
  // ids 0,1 arrive at 100ms, ACKs back at 200ms. Crash after the ACKs.
  f.rt.scheduleCrash(1, 250 * kMs);
  f.rt.scheduler().at(300 * kMs, [&f]() {
    for (int i = 2; i < 5; ++i)
      f.rt.send(0, 1, std::make_shared<TestMsg>(i));  // into the void
  });
  f.rt.scheduleRecover(1, 390 * kMs);  // alive again before the copies land
  f.rt.run(60 * kSec);
  // The fresh incarnation saw exactly the unacked backlog, in order
  // (ids 0..1 died with the old incarnation's state — by design).
  EXPECT_EQ(f.idsAt(1), (std::vector<int>{2, 3, 4}));
  EXPECT_GT(f.plane.stats().retransmits, 0u);
}

// ---------------------------------------------------------------------------
// The loss model itself (channels off).
// ---------------------------------------------------------------------------

TEST(LossModel, DropsCopiesWithoutChannelsAndValidatesRange) {
  sim::Runtime rt(Topology(2, 1), sim::LatencyModel::fixed(kMs, 100 * kMs),
                  1);
  EXPECT_THROW(rt.setLossRate(-0.1), std::invalid_argument);
  EXPECT_THROW(rt.setLossRate(1.0), std::invalid_argument);
  rt.setLossRate(0.5);
  std::vector<ChanHost*> hosts;
  for (ProcessId p = 0; p < 2; ++p) {
    auto n = std::make_unique<ChanHost>(rt, p);
    hosts.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  for (int i = 0; i < 100; ++i)
    rt.send(0, 1, std::make_shared<TestMsg>(i));
  rt.run(10 * kSec);
  EXPECT_GT(rt.trace().lossDrops, 0u);
  EXPECT_EQ(hosts[1]->got.size() + rt.trace().lossDrops, 100u);
  EXPECT_GT(hosts[1]->got.size(), 0u);
}

TEST(LossModel, ZeroRateDrawsNoCoinsAndRunsAreByteIdentical) {
  // Arming then disarming nothing: a 0-loss run must match a run where
  // setLossRate was never called (the coin stream is gated, not merely
  // ignored) — this is what pins the 436 golden cells channels-off.
  auto runOnce = [](bool touchKnob) {
    sim::Runtime rt(Topology(2, 2),
                    sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs}, 7);
    if (touchKnob) rt.setLossRate(0.0);
    std::vector<ChanHost*> hosts;
    for (ProcessId p = 0; p < 4; ++p) {
      auto n = std::make_unique<ChanHost>(rt, p);
      hosts.push_back(n.get());
      rt.attach(p, std::move(n));
    }
    rt.start();
    for (int i = 0; i < 20; ++i)
      rt.multicast(0, {1, 2, 3}, std::make_shared<TestMsg>(i));
    rt.run(10 * kSec);
    std::vector<std::pair<ProcessId, int>> all;
    for (auto* h : hosts)
      all.insert(all.end(), h->got.begin(), h->got.end());
    return all;
  };
  EXPECT_EQ(runOnce(false), runOnce(true));
}

}  // namespace
}  // namespace wanmc
