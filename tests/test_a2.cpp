// Tests for Algorithm A2 (atomic broadcast with latency degree 1, paper §5).
#include <gtest/gtest.h>

#include "abcast/a2_node.hpp"
#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = ProtocolKind::kA2;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

// Jitter-free variant for latency-degree assertions (best-case runs).
RunConfig fixedCfg(int groups, int procs, uint64_t seed = 1) {
  RunConfig c = cfg(groups, procs, seed);
  // Intra-group delays are two orders of magnitude below inter-group ones
  // so that group-local consensus always completes between WAN hops (the
  // interleaving the paper's theorems assume).
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

TEST(A2, SingleMessageDeliveredEverywhere) {
  Experiment ex(cfg(2, 2));
  ex.castAllAt(kMs, 0, "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  auto seqs = r.trace.sequences();
  for (ProcessId p = 0; p < 4; ++p) EXPECT_EQ(seqs[p].size(), 1u);
}

TEST(A2, ColdStartLatencyDegreeTwo) {
  // Theorem 5.2: the first message after quiescence pays two delays — the
  // remote groups must be woken by our bundle before they answer with
  // theirs.
  Experiment ex(fixedCfg(2, 2));
  auto id = ex.castAllAt(kMs, 0, "x");
  auto r = ex.run();
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(A2, WarmRunReachesLatencyDegreeOne) {
  // Theorem 5.1: while rounds are running, a broadcast is delivered within
  // one inter-group delay. Keep the system busy with a steady stream and
  // check the minimum latency degree over the stream.
  Experiment ex(fixedCfg(2, 2));
  for (int i = 0; i < 30; ++i)
    ex.castAllAt(kMs + i * 40 * kMs, static_cast<ProcessId>(i % 4), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  ASSERT_TRUE(r.trace.minLatencyDegree().has_value());
  EXPECT_EQ(*r.trace.minLatencyDegree(), 1);
}

TEST(A2, TotalOrderAcrossConcurrentSenders) {
  Experiment ex(cfg(3, 2, 9));
  for (int i = 0; i < 12; ++i)
    ex.castAllAt(kMs + (i % 3) * 10 * kMs + (i / 3) * 250 * kMs,
                 static_cast<ProcessId>(i % 6), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  // Full broadcast: all processes must have identical sequences.
  auto seqs = r.trace.sequences();
  for (ProcessId p = 1; p < 6; ++p) EXPECT_EQ(seqs[p], seqs[0]);
}

TEST(A2, QuiescentAfterFiniteBroadcasts) {
  // Prop. A.9: after the last message, at most one extra (empty) round runs
  // and then every process stops sending.
  Experiment ex(cfg(2, 2));
  ex.castAllAt(kMs, 0, "x");
  ex.castAllAt(400 * kMs, 2, "y");
  auto r = ex.run();
  auto v = verify::checkQuiescence(r.checkContext(), r.lastAlgoSend, 2 * kSec);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(A2, RestartAfterQuiescenceStaysLive) {
  // Prediction mistakes are tolerated: a message broadcast long after the
  // system went quiescent is still delivered by everyone.
  Experiment ex(cfg(2, 2));
  ex.castAllAt(kMs, 0, "x");
  auto r1 = ex.run(10 * kSec);
  EXPECT_EQ(r1.trace.deliveries.size(), 4u);
  ex.castAllAt(20 * kSec, 3, "y");
  auto r2 = ex.runMore(60 * kSec);
  EXPECT_TRUE(r2.checkAtomicSuite().empty()) << r2.checkAtomicSuite()[0];
  EXPECT_EQ(r2.trace.deliveries.size(), 8u);
}

TEST(A2, EmptyRoundsDoNotRaiseBarrier) {
  Experiment ex(cfg(2, 2));
  ex.castAllAt(kMs, 0, "x");
  ex.run();
  auto& n0 = dynamic_cast<abcast::A2Node&>(ex.node(0));
  EXPECT_TRUE(n0.quiescentNow());
  // One useful round + one trailing empty round.
  EXPECT_EQ(n0.usefulRounds(), 1u);
  EXPECT_LE(n0.roundsExecuted(), 2u);
}

TEST(A2, BundleTrafficIsONSquaredPerRound) {
  const int m = 3, d = 2, n = m * d;
  Experiment ex(cfg(m, d));
  ex.castAllAt(kMs, 0, "x");
  auto r = ex.run();
  // Protocol-layer inter-group messages per round: every process sends its
  // group bundle to the (n - d) processes of the other groups. Two rounds
  // run (one useful + one empty).
  const uint64_t perRound = static_cast<uint64_t>(n) * (n - d);
  EXPECT_EQ(r.traffic.at(Layer::kProtocol).inter, 2 * perRound);
}

TEST(A2, RoundNumbersAdvanceInLockstep) {
  Experiment ex(cfg(3, 2));
  for (int i = 0; i < 5; ++i) ex.castAllAt(kMs + i * 300 * kMs, 0, "x");
  ex.run(600 * kSec);
  auto k0 = dynamic_cast<abcast::A2Node&>(ex.node(0)).round();
  for (ProcessId p = 1; p < 6; ++p)
    EXPECT_EQ(dynamic_cast<abcast::A2Node&>(ex.node(p)).round(), k0);
}

TEST(A2, HighFrequencyStreamAllRoundsUseful) {
  // §5.3: with inter-group latency ~100ms, >= 10 msg/s keeps the algorithm
  // non-reactive and every round delivers at least one message.
  Experiment ex(cfg(2, 2));
  const SimTime period = 50 * kMs;  // 20 msg/s
  for (int i = 0; i < 100; ++i)
    ex.castAllAt(10 * kMs + i * period, static_cast<ProcessId>(i % 4), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  auto& n0 = dynamic_cast<abcast::A2Node&>(ex.node(0));
  // All rounds but the trailing one delivered something.
  EXPECT_GE(n0.usefulRounds() + 1, n0.roundsExecuted());
}

class A2Sweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(A2Sweep, SafetyAcrossTopologiesAndSeeds) {
  auto [groups, procs, seed] = GetParam();
  Experiment ex(cfg(groups, procs, static_cast<uint64_t>(seed)));
  workload::Spec spec = workload::Spec::closedLoop(15, 35 * kMs);
  spec.seed = static_cast<uint64_t>(seed) * 17;
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  // Broadcast: every correct process delivers every message.
  EXPECT_EQ(r.trace.deliveries.size(),
            15u * static_cast<size_t>(groups * procs));
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, A2Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3)));

// The shared crash/drop/seed matrix every stack runs under (ScenarioRunner).
TEST(A2, StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kA2))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
