// Focused tests for the Delporte-Fauconnier ring baseline [4]: the
// sequential per-group processing discipline ("before handling other
// messages, every group waits for a final acknowledgment from gk") and its
// latency/traffic consequences.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = ProtocolKind::kDelporte00;
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

TEST(Ring, SingleGroupMessageNeedsNoAckHop) {
  Experiment ex(cfg(2, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0}), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  // g1 == gk: consensus, then immediate delivery; no inter-group traffic.
  EXPECT_EQ(*r.trace.latencyDegree(id), 0);
  EXPECT_EQ(r.traffic.interAlgorithmic(), 0u);
}

TEST(Ring, SenderInFirstGroupSavesOneDelay) {
  // The k+1 accounting charges one delay for reaching g1; a sender already
  // in g1 skips it: degree k.
  const int k = 3;
  Experiment ex(cfg(k, 2));
  GroupSet dest = GroupSet::of({0, 1, 2});
  auto id = ex.castAt(kMs, 0, dest, "x");  // p0 is in g1 = group 0
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  EXPECT_EQ(*r.trace.latencyDegree(id), k);
}

TEST(Ring, HandoverTrafficIsDSquaredPerHop) {
  const int k = 3, d = 3;
  Experiment ex(cfg(k, d));
  // Sender in g1: no start hop.
  ex.castAt(kMs, 0, GroupSet::of({0, 1, 2}), "x");
  auto r = ex.run(600 * kSec);
  // handovers: (k-1) hops x d senders x d receivers; acks: gk's d members
  // to the 2d processes of the other groups.
  const uint64_t expected = static_cast<uint64_t>((k - 1) * d * d) +
                            static_cast<uint64_t>(d * (k - 1) * d);
  EXPECT_EQ(r.traffic.interAlgorithmic(), expected);
}

TEST(Ring, HeadOfLineBlockingIsReal) {
  // A message cast while another is mid-ring waits for the first's FULL
  // ring traversal before its own even starts — the latency cost of [4]'s
  // sequential discipline that A1 avoids.
  Experiment ex(cfg(3, 2));
  GroupSet dest = GroupSet::of({0, 1, 2});
  auto id1 = ex.castAt(kMs, 0, dest, "a");
  auto id2 = ex.castAt(50 * kMs, 0, dest, "b");  // m1 is mid-ring
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  const SimTime w1 = *r.trace.wallLatency(id1);
  const SimTime w2 = *r.trace.wallLatency(id2);
  // m2's wall latency includes waiting out m1's remaining ring plus its
  // own full traversal: at least one extra WAN round trip over m1's.
  EXPECT_GE(w2, w1 + 150 * kMs);
}

TEST(Ring, OverlappingRingsStayConsistent) {
  // Messages whose rings overlap partially ({0,1}, {1,2}, {0,2}): group 1
  // is first for one ring and second for another — the causal handover
  // discipline must still produce pairwise-consistent orders.
  Experiment ex(cfg(3, 2, 3));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
  ex.castAt(kMs + 1, 2, GroupSet::of({1, 2}), "b");
  ex.castAt(kMs + 2, 4, GroupSet::of({0, 2}), "c");
  ex.castAt(kMs + 3, 1, GroupSet::of({0, 1, 2}), "d");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.trace.deliveries.size(), 4u + 4 + 4 + 6);
}

TEST(Ring, BatchedCandidatesShareAConsensusInstance) {
  // Several messages arriving at g1 between consensus instances are decided
  // together and processed in id order.
  Experiment ex(cfg(2, 2, 5));
  std::vector<MsgId> ids;
  for (int i = 0; i < 4; ++i)
    ids.push_back(ex.castAt(kMs, 2, GroupSet::of({0, 1}), "x"));
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  // All four delivered in id order at every destination process.
  auto seqs = r.trace.sequences();
  for (ProcessId p = 0; p < 4; ++p) {
    ASSERT_EQ(seqs[p].size(), 4u);
    EXPECT_TRUE(std::is_sorted(seqs[p].begin(), seqs[p].end()));
  }
}

TEST(Ring, LatencyGrowsLinearlyUnlikeA1) {
  // The defining contrast of Figure 1a, as wall-clock time.
  for (int k = 2; k <= 4; ++k) {
    Experiment exRing(cfg(k, 2));
    GroupSet dest;
    for (GroupId g = 0; g < k; ++g) dest.add(g);
    auto idRing = exRing.castAt(kMs, 0, dest, "x");
    auto rRing = exRing.run(600 * kSec);

    auto cA1 = cfg(k, 2);
    cA1.protocol = ProtocolKind::kA1;
    Experiment exA1(cA1);
    auto idA1 = exA1.castAt(kMs, 0, dest, "x");
    auto rA1 = exA1.run(600 * kSec);

    const SimTime ringWall = *rRing.trace.wallLatency(idRing);
    const SimTime a1Wall = *rA1.trace.wallLatency(idA1);
    // Ring: ~k x 100ms; A1: ~2 x 100ms regardless of k.
    EXPECT_GE(ringWall, (k - 1) * 100 * kMs);
    EXPECT_LE(a1Wall, 230 * kMs);
    if (k >= 3) {
      EXPECT_GT(ringWall, a1Wall);
    }
  }
}

// The shared crash/drop/seed matrix every stack runs under (ScenarioRunner).
TEST(Ring, StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kDelporte00))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
