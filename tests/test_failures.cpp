// Crash-injection tests: the fault-tolerance obligations of the paper's
// algorithms under benign crash-stop failures (at least one correct process
// per group; consensus solvable, i.e. a majority correct per group).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(ProtocolKind kind, int groups, int procs, uint64_t seed = 1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  c.stack.fdOracleDelay = 30 * kMs;
  return c;
}

// Safety suite for crashed runs: uniform agreement obligations only bind
// correct processes; prefix order is checked on the final sequences.
void expectSafe(const core::RunResult& r, const std::string& tag) {
  auto ctx = r.checkContext();
  for (auto&& v : verify::checkUniformIntegrity(ctx))
    ADD_FAILURE() << tag << ": " << v;
  for (auto&& v : verify::checkValidity(ctx))
    ADD_FAILURE() << tag << ": " << v;
  for (auto&& v : verify::checkUniformAgreement(ctx))
    ADD_FAILURE() << tag << ": " << v;
  for (auto&& v : verify::checkUniformPrefixOrder(ctx))
    ADD_FAILURE() << tag << ": " << v;
}

TEST(A1Failures, MinorityCrashInDestinationGroup) {
  Experiment ex(cfg(ProtocolKind::kA1, 2, 3));
  ex.crashAt(4, 50 * kMs);  // one of three in group 1
  for (int i = 0; i < 8; ++i)
    ex.castAt(kMs + i * 60 * kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A1 minority crash");
  // Every correct addressee delivered all 8 messages.
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 8u) << "p" << p;
}

TEST(A1Failures, SenderCrashesRightAfterCast) {
  Experiment ex(cfg(ProtocolKind::kA1, 2, 3));
  auto id = ex.castAt(100 * kMs, 0, GroupSet::of({0, 1}), "x");
  ex.crashAt(0, 100 * kMs + 1);
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A1 sender crash");
  // The message was R-MCast before the crash: all correct addressees must
  // deliver it (agreement via intra-group relay + TS propagation).
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct)
    EXPECT_EQ(seqs[p], std::vector<MsgId>{id}) << "p" << p;
}

TEST(A1Failures, CrashDuringTimestampExchange) {
  Experiment ex(cfg(ProtocolKind::kA1, 3, 3, 5));
  for (int i = 0; i < 6; ++i)
    ex.castAt(kMs + i * 80 * kMs, 1, GroupSet::of({0, 1, 2}), "x");
  // Crash one process per group mid-protocol (majorities survive).
  ex.crashAt(2, 120 * kMs);
  ex.crashAt(5, 170 * kMs);
  ex.crashAt(8, 220 * kMs);
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A1 exchange crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 6u) << "p" << p;
}

TEST(A2Failures, MinorityCrashPerGroup) {
  Experiment ex(cfg(ProtocolKind::kA2, 2, 3));
  ex.crashAt(1, 90 * kMs);
  ex.crashAt(4, 140 * kMs);
  for (int i = 0; i < 8; ++i)
    ex.castAllAt(kMs + i * 70 * kMs, static_cast<ProcessId>((i % 2) * 3),
                 "x");
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A2 minority crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 8u) << "p" << p;
}

TEST(A2Failures, SenderCrashesAfterLocalRMcast) {
  Experiment ex(cfg(ProtocolKind::kA2, 2, 3));
  auto id = ex.castAllAt(100 * kMs, 0, "x");
  ex.crashAt(0, 100 * kMs + 1);
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A2 sender crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct)
    EXPECT_EQ(seqs[p], std::vector<MsgId>{id}) << "p" << p;
}

TEST(A2Failures, CrashWhileQuiescentThenRestart) {
  Experiment ex(cfg(ProtocolKind::kA2, 2, 3));
  ex.castAllAt(kMs, 0, "x");
  ex.run(10 * kSec);
  ex.crashAt(3, 11 * kSec);  // crash during the quiescent phase
  ex.castAllAt(15 * kSec, 1, "y");
  auto r = ex.runMore(60 * kSec);
  expectSafe(r, "A2 quiescent crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 2u) << "p" << p;
}

TEST(RingFailures, MinorityCrashOnTheRing) {
  Experiment ex(cfg(ProtocolKind::kDelporte00, 3, 3, 7));
  ex.crashAt(4, 130 * kMs);  // one member of the middle group
  for (int i = 0; i < 5; ++i)
    ex.castAt(kMs + i * 150 * kMs, 0, GroupSet::of({0, 1, 2}), "x");
  auto r = ex.run(600 * kSec);
  expectSafe(r, "ring crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 5u) << "p" << p;
}

TEST(SousaFailures, SequencerCrashFailsOver) {
  Experiment ex(cfg(ProtocolKind::kSousa02, 2, 2));
  ex.castAllAt(kMs, 1, "a");
  ex.crashAt(0, 500 * kMs);  // p0 is the initial sequencer
  ex.castAllAt(kSec, 1, "b");
  ex.castAllAt(kSec + 50 * kMs, 2, "c");
  auto r = ex.run(600 * kSec);
  // Non-uniform protocol: agreement obligations only among correct procs.
  auto ctx = r.checkContext();
  for (auto&& v : verify::checkUniformIntegrity(ctx)) ADD_FAILURE() << v;
  for (auto&& v : verify::checkAgreementCorrectOnly(ctx)) ADD_FAILURE() << v;
  for (auto&& v : verify::checkPrefixOrderCorrectOnly(ctx))
    ADD_FAILURE() << v;
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 3u) << "p" << p;
}

TEST(ConsensusFailures, A1SurvivesCoordinatorCrashMidConsensus) {
  // Crash the likely round-1 coordinator of an early instance while the
  // first message is being ordered.
  Experiment ex(cfg(ProtocolKind::kA1, 2, 3, 9));
  ex.castAt(100 * kMs, 0, GroupSet::of({0, 1}), "x");
  ex.crashAt(2, 101 * kMs);
  ex.crashAt(4, 101 * kMs);
  auto r = ex.run(600 * kSec);
  expectSafe(r, "A1 coordinator crash");
  auto seqs = r.trace.sequences();
  for (ProcessId p : r.correct) EXPECT_EQ(seqs[p].size(), 1u) << "p" << p;
}

// Random minority-crash sweeps, driven through the fault-injection harness
// (testing::ScenarioRunner): one victim per group at a seed-derived time,
// four seeds per protocol, every crash-tolerant stack. The deep 100-seed
// sweeps live in tests/test_seed_sweep.cpp under the `scenario` ctest label.
class CrashSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CrashSweep, RandomMinorityCrashesStaySafe) {
  const ProtocolKind kind = GetParam();
  wanmc::testing::Scenario s;
  s.name = std::string(protocolName(kind)) + "/crash-sweep";
  s.config.groups = 3;
  s.config.procsPerGroup = 3;
  s.config.protocol = kind;
  s.latency = wanmc::testing::LatencyPreset::kWan;
  s.workload = workload::Spec::closedLoop(10, 90 * kMs, 2);
  s.randomCrashes = wanmc::testing::RandomCrashes{1, 50 * kMs, kSec, 0x101};
  s.runUntil = 900 * kSec;
  s.withDefaultExpectations();
  s.expect.minDeliveries = 1;  // the run must not stall entirely
  for (const auto& r : wanmc::testing::ScenarioRunner(s).sweepSeeds(1, 4))
    EXPECT_TRUE(r.ok()) << r.report();
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CrashSweep,
    ::testing::Values(ProtocolKind::kA1, ProtocolKind::kA2,
                      ProtocolKind::kFritzke98, ProtocolKind::kDelporte00,
                      ProtocolKind::kRodrigues98, ProtocolKind::kViaBcast,
                      ProtocolKind::kSousa02, ProtocolKind::kVicente02),
    [](const auto& info) {
      return wanmc::testing::protocolTestName(info.param);
    });

}  // namespace
}  // namespace wanmc
