// Tests for Algorithm A1 (genuine atomic multicast, paper §4).
#include <gtest/gtest.h>

#include "amcast/a1_node.hpp"
#include "core/experiment.hpp"
#include "testing/scenario.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

RunConfig cfg(int groups, int procs, uint64_t seed = 1,
              ProtocolKind kind = ProtocolKind::kA1) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

// Jitter-free variant: latency-degree assertions reproduce the paper's
// best-case accounting, which assumes the favorable interleaving of the
// theorems' runs (the algorithm's latency degree is the MINIMUM over
// admissible runs); fixed link delays make that interleaving deterministic.
RunConfig fixedCfg(int groups, int procs, uint64_t seed = 1,
                   ProtocolKind kind = ProtocolKind::kA1) {
  RunConfig c = cfg(groups, procs, seed, kind);
  // Intra-group delays are two orders of magnitude below inter-group ones
  // so that group-local consensus always completes between WAN hops (the
  // interleaving the paper's theorems assume).
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

TEST(A1, SingleGroupSingleMessage) {
  Experiment ex(cfg(1, 3));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  // Latency degree 0: sender in the only destination group, everything
  // intra-group.
  EXPECT_EQ(*r.trace.latencyDegree(id), 0);
}

TEST(A1, SingleRemoteGroupLatencyDegreeOne) {
  Experiment ex(fixedCfg(2, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({1}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 1);
}

TEST(A1, TwoGroupsLatencyDegreeTwo) {
  // Theorem 4.1: a message A-MCast to two groups with Delta(m, R) = 2.
  Experiment ex(fixedCfg(2, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(A1, DeliversAtAllAddresseesOnly) {
  Experiment ex(cfg(3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  auto seqs = r.trace.sequences();
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_EQ(seqs[p].size(), 1u) << "p" << p;
  EXPECT_TRUE(seqs[4].empty());
  EXPECT_TRUE(seqs[5].empty());
}

TEST(A1, GenuinenessOnlyAddresseesParticipate) {
  Experiment ex(cfg(3, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  auto v = verify::checkGenuineness(r.checkContext(), r.genuineness);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(A1, InterGroupMessageCountMatchesFigure1a) {
  // d(k-1) for the reliable multicast + k(k-1)d^2 for the TS exchange.
  const int k = 3, d = 2;
  Experiment ex(cfg(k, d));
  ex.castAt(kMs, 0, GroupSet::of({0, 1, 2}), "x");
  auto r = ex.run();
  const uint64_t expected = static_cast<uint64_t>(d * (k - 1)) +
                            static_cast<uint64_t>(k * (k - 1) * d * d);
  EXPECT_EQ(r.traffic.interAlgorithmic(), expected);
}

TEST(A1, ConcurrentMessagesTotalOrderWithinOverlap) {
  Experiment ex(cfg(3, 2, 5));
  // Two concurrent messages to overlapping group sets.
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
  ex.castAt(kMs, 5, GroupSet::of({1, 2}), "b");
  ex.castAt(kMs, 2, GroupSet::of({0, 1, 2}), "c");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
}

TEST(A1, ManyMessagesMixedDestinations) {
  Experiment ex(cfg(3, 2, 7));
  ex.addWorkload(workload::Spec::closedLoop(40, 20 * kMs, 2));
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  EXPECT_EQ(r.trace.casts.size(), 40u);
}

TEST(A1, SingleGroupMessagesUseOneConsensusInstance) {
  // The skip optimization: single-group messages jump s0 -> s3.
  Experiment ex(cfg(1, 3));
  for (int i = 0; i < 5; ++i)
    ex.castAt(kMs + i * 50 * kMs, 0, GroupSet::of({0}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  auto& node = dynamic_cast<amcast::A1Node&>(ex.node(0));
  // One consensus decision per message (no batching at 50ms spacing, no
  // second consensus).
  EXPECT_EQ(node.consensusInstancesDecided(), 5u);
}

TEST(A1, StageSkippingSparesConsensusVsFritzke) {
  // §4.1/§6: same latency degree, fewer consensus instances than [5].
  auto countInstances = [](ProtocolKind kind) {
    Experiment ex(cfg(2, 2, 3, kind));
    for (int i = 0; i < 6; ++i)
      ex.castAt(kMs + i * 300 * kMs, 0, GroupSet::of({0, 1}), "x");
    auto r = ex.run();
    EXPECT_TRUE(r.checkAtomicSuite().empty());
    uint64_t total = 0;
    for (ProcessId p = 0; p < 4; ++p)
      total += dynamic_cast<amcast::A1Node&>(ex.node(p))
                   .consensusInstancesDecided();
    return total;
  };
  EXPECT_LT(countInstances(ProtocolKind::kA1),
            countInstances(ProtocolKind::kFritzke98));
}

TEST(A1, QuiescentAfterFiniteCasts) {
  Experiment ex(cfg(2, 2));
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run();
  // Everything (including substrate chatter) happens within a settle budget
  // of a few WAN hops after the last cast.
  auto v = verify::checkQuiescence(r.checkContext(), r.lastAlgoSend, kSec);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(A1, SenderOutsideDestinationSet) {
  Experiment ex(fixedCfg(3, 2));
  auto id = ex.castAt(kMs, 0, GroupSet::of({1, 2}), "x");
  auto r = ex.run();
  EXPECT_TRUE(r.checkAtomicSuite().empty()) << r.checkAtomicSuite()[0];
  auto seqs = r.trace.sequences();
  EXPECT_TRUE(seqs[0].empty());
  EXPECT_EQ(seqs[2].size(), 1u);
  EXPECT_EQ(*r.trace.latencyDegree(id), 2);
}

TEST(A1, Footnote4TsMessagesPropagateTheMessage) {
  // Paper footnote 4: the (TS, m) message "also serves the purpose of
  // propagating m". Drop EVERY reliable-multicast packet headed to group 1
  // (as if the sender crashed after reaching only its own group): group 1
  // must still learn m from group 0's (TS, m) messages and deliver it.
  Experiment ex(cfg(2, 2));
  ex.runtime().setDropFilter(
      [&ex](ProcessId, ProcessId to, const Payload& p) {
        return p.layer() == Layer::kReliableMulticast &&
               ex.runtime().topology().group(to) == 1;
      });
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
  auto r = ex.run(600 * kSec);
  auto seqs = r.trace.sequences();
  for (ProcessId p = 0; p < 4; ++p)
    EXPECT_EQ(seqs[p], std::vector<MsgId>{id}) << "p" << p;
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(A1, CtConsensusYieldsSameDeliveryOrder) {
  // The protocol's order must not depend on which consensus implementation
  // runs underneath (both are uniform consensus).
  auto orderWith = [](consensus::ConsensusKind kind) {
    auto c = cfg(3, 2, 4);
    c.stack.consensusKind = kind;
    Experiment ex(c);
    ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");
    ex.castAt(kMs + 1, 2, GroupSet::of({0, 1}), "b");
    ex.castAt(kMs + 2, 1, GroupSet::of({0, 1}), "c");
    auto r = ex.run(600 * kSec);
    EXPECT_TRUE(r.checkAtomicSuite().empty());
    return r.trace.sequences()[0];
  };
  // Both runs must be internally consistent; the orders may differ between
  // implementations (both are admissible), but each must deliver all three.
  EXPECT_EQ(orderWith(consensus::ConsensusKind::kEarly).size(), 3u);
  EXPECT_EQ(orderWith(consensus::ConsensusKind::kCt).size(), 3u);
}

class A1Sweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(A1Sweep, SafetyAcrossTopologiesAndSeeds) {
  auto [groups, procs, seed] = GetParam();
  Experiment ex(cfg(groups, procs, static_cast<uint64_t>(seed)));
  workload::Spec spec =
      workload::Spec::closedLoop(15, 40 * kMs, std::min(2, groups));
  spec.seed = static_cast<uint64_t>(seed) * 13;
  ex.addWorkload(spec);
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.trace.casts.size(), 15u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, A1Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(1, 2, 3)));

// The shared crash/drop/seed matrix every stack runs under (ScenarioRunner;
// see tests/test_scenario_matrix.cpp for the all-protocol sweep).
TEST(A1, StandardFaultMatrix) {
  for (const auto& r :
       wanmc::testing::runStandardMatrix(ProtocolKind::kA1))
    EXPECT_TRUE(r.ok()) << r.report();
}

}  // namespace
}  // namespace wanmc
