// Stack-variant matrix tests: the core algorithms must be correct over
// EVERY substrate combination — both consensus implementations (early
// deciding and classic Chandra-Toueg) and both failure detectors (oracle
// and heartbeat), on regular and ragged topologies, and with every A2
// quiescence predictor.
#include <gtest/gtest.h>

#include "abcast/a2_node.hpp"
#include "core/experiment.hpp"

namespace wanmc {
namespace {

using core::Experiment;
using core::ProtocolKind;
using core::RunConfig;

struct Variant {
  ProtocolKind protocol;
  consensus::ConsensusKind consensusKind;
  fd::FdKind fdKind;
};

class StackMatrix : public ::testing::TestWithParam<Variant> {};

RunConfig makeCfg(const Variant& v, int groups, int procs, uint64_t seed) {
  RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = v.protocol;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  c.stack.consensusKind = v.consensusKind;
  c.stack.fdKind = v.fdKind;
  c.stack.fdHeartbeat = fd::HeartbeatFd::Params{20 * kMs, 100 * kMs};
  return c;
}

TEST_P(StackMatrix, FailureFreeWorkloadSafeAndComplete) {
  auto v = GetParam();
  Experiment ex(makeCfg(v, 3, 2, 5));
  ex.addWorkload(workload::Spec::closedLoop(10, 60 * kMs, 2));
  auto r = ex.run(120 * kSec);  // heartbeat FD never quiesces: bounded run
  auto errs = r.checkAtomicSuite();
  EXPECT_TRUE(errs.empty()) << errs[0];
  EXPECT_EQ(r.trace.casts.size(), 10u);
  // Every cast message was delivered by all its addressees.
  for (const auto& c : r.trace.casts) {
    size_t expected = 0;
    for (ProcessId p : r.topo.allProcesses())
      if (c.dest.contains(r.topo.group(p))) ++expected;
    size_t got = 0;
    for (const auto& d : r.trace.deliveries)
      if (d.msg == c.msg) ++got;
    EXPECT_EQ(got, expected) << "m" << c.msg;
  }
}

TEST_P(StackMatrix, SurvivesMinorityCrash) {
  auto v = GetParam();
  Experiment ex(makeCfg(v, 2, 3, 6));
  ex.crashAt(1, 100 * kMs);
  ex.crashAt(5, 200 * kMs);
  ex.addWorkload(workload::Spec::closedLoop(8, 90 * kMs, 2));
  auto r = ex.run(200 * kSec);
  auto ctx = r.checkContext();
  for (auto&& e : verify::checkUniformIntegrity(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkValidity(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkUniformAgreement(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkUniformPrefixOrder(ctx)) ADD_FAILURE() << e;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StackMatrix,
    ::testing::Values(
        Variant{ProtocolKind::kA1, consensus::ConsensusKind::kEarly,
                fd::FdKind::kOracle},
        Variant{ProtocolKind::kA1, consensus::ConsensusKind::kCt,
                fd::FdKind::kOracle},
        Variant{ProtocolKind::kA1, consensus::ConsensusKind::kEarly,
                fd::FdKind::kHeartbeat},
        Variant{ProtocolKind::kA1, consensus::ConsensusKind::kCt,
                fd::FdKind::kHeartbeat},
        Variant{ProtocolKind::kA2, consensus::ConsensusKind::kEarly,
                fd::FdKind::kOracle},
        Variant{ProtocolKind::kA2, consensus::ConsensusKind::kCt,
                fd::FdKind::kOracle},
        Variant{ProtocolKind::kA2, consensus::ConsensusKind::kEarly,
                fd::FdKind::kHeartbeat},
        Variant{ProtocolKind::kA2, consensus::ConsensusKind::kCt,
                fd::FdKind::kHeartbeat}),
    [](const auto& info) {
      const Variant& v = info.param;
      std::string name =
          v.protocol == ProtocolKind::kA1 ? "A1" : "A2";
      name += v.consensusKind == consensus::ConsensusKind::kEarly ? "_Early"
                                                                  : "_CT";
      name += v.fdKind == fd::FdKind::kOracle ? "_Oracle" : "_Heartbeat";
      return name;
    });

// ---------------------------------------------------------------------------
// Ragged topologies.
// ---------------------------------------------------------------------------

TEST(RaggedTopology, A1AcrossUnevenGroups) {
  RunConfig c;
  c.groupSizes = {1, 3, 2};
  c.protocol = ProtocolKind::kA1;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  Experiment ex(c);
  ex.castAt(kMs, 0, GroupSet::of({0, 1}), "a");   // 1-proc group to 3-proc
  ex.castAt(50 * kMs, 1, GroupSet::of({1, 2}), "b");
  ex.castAt(90 * kMs, 5, GroupSet::of({0, 1, 2}), "c");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.topo.numProcesses(), 6);
  EXPECT_EQ(r.topo.groupSize(1), 3);
}

TEST(RaggedTopology, A2AcrossUnevenGroups) {
  RunConfig c;
  c.groupSizes = {2, 1, 3};
  c.protocol = ProtocolKind::kA2;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  Experiment ex(c);
  for (int i = 0; i < 6; ++i)
    ex.castAllAt(kMs + i * 80 * kMs, static_cast<ProcessId>(i), "x");
  auto r = ex.run(600 * kSec);
  auto v = r.checkAtomicSuite();
  EXPECT_TRUE(v.empty()) << v[0];
  EXPECT_EQ(r.trace.deliveries.size(), 6u * 6u);
}

TEST(RaggedTopology, CrashInSingletonGroupBlocksOnlyLiveness) {
  // With a singleton group crashed, no multicast addressed to it can be
  // delivered (no correct process there — outside the paper's assumption),
  // but messages among the other groups still flow.
  RunConfig c;
  c.groupSizes = {1, 2, 2};
  c.protocol = ProtocolKind::kA1;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  Experiment ex(c);
  ex.crashAt(0, 10 * kMs);
  ex.castAt(100 * kMs, 1, GroupSet::of({1, 2}), "ok");
  auto r = ex.run(60 * kSec);
  auto ctx = r.checkContext();
  for (auto&& e : verify::checkUniformIntegrity(ctx)) ADD_FAILURE() << e;
  for (auto&& e : verify::checkValidity(ctx)) ADD_FAILURE() << e;
  EXPECT_EQ(r.trace.deliveries.size(), 4u);
}

// ---------------------------------------------------------------------------
// A2 quiescence predictors (§5.3 extension).
// ---------------------------------------------------------------------------

RunConfig a2Cfg(abcast::A2Options::Predictor pred, uint64_t seed = 1) {
  RunConfig c;
  c.groups = 2;
  c.procsPerGroup = 2;
  c.seed = seed;
  c.protocol = ProtocolKind::kA2;
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  c.a2.predictor = pred;
  return c;
}

TEST(A2Predictors, LingerKeepsRoundsAliveThroughShortGaps) {
  // Two messages separated by a gap longer than a round but shorter than
  // the linger horizon: with the default predictor the second pays the
  // Theorem-5.2 cold start (~2 WAN delays of wall latency); with linger it
  // rides a still-running round and commits ~one WAN delay sooner. (The
  // lingering rounds keep ticking the Lamport clocks, so the benefit shows
  // in wall latency, not in the Lamport span.)
  auto runWith = [](abcast::A2Options::Predictor pred) {
    auto c = a2Cfg(pred);
    c.a2.lingerRounds = 8;
    Experiment ex(c);
    ex.castAllAt(kMs, 0, "a");
    auto id = ex.castAllAt(900 * kMs, 2, "b");
    auto r = ex.run(600 * kSec);
    EXPECT_TRUE(r.checkAtomicSuite().empty());
    return std::pair(*r.trace.latencyDegree(id),
                     *r.trace.wallLatency(id));
  };
  auto [coldDeg, coldWall] = runWith(abcast::A2Options::Predictor::kRoundEmpty);
  auto [lingerDeg, lingerWall] = runWith(abcast::A2Options::Predictor::kLinger);
  EXPECT_EQ(coldDeg, 2);
  EXPECT_GE(coldWall, 200 * kMs);        // restart: two WAN delays
  EXPECT_LT(lingerWall, 180 * kMs);      // warm round: roughly one
  (void)lingerDeg;
}

TEST(A2Predictors, LingerEventuallyStops) {
  auto c = a2Cfg(abcast::A2Options::Predictor::kLinger);
  c.a2.lingerRounds = 3;
  Experiment ex(c);
  ex.castAllAt(kMs, 0, "a");
  auto r = ex.run(600 * kSec);
  // Quiescence still holds — just later (3 extra empty rounds ~ 3 WAN
  // round trips).
  auto v = verify::checkQuiescence(r.checkContext(), r.lastAlgoSend,
                                   5 * kSec);
  EXPECT_TRUE(v.empty()) << v[0];
  auto& n0 = dynamic_cast<abcast::A2Node&>(ex.node(0));
  EXPECT_GE(n0.roundsExecuted(), 3u);
}

TEST(A2Predictors, RateAdaptiveStopsAfterStreamEnds) {
  auto c = a2Cfg(abcast::A2Options::Predictor::kRateAdaptive);
  c.a2.rateMultiplier = 3.0;
  Experiment ex(c);
  for (int i = 0; i < 10; ++i)
    ex.castAllAt(kMs + i * 50 * kMs, static_cast<ProcessId>(i % 4), "x");
  auto r = ex.run(600 * kSec);
  EXPECT_TRUE(r.checkAtomicSuite().empty());
  // With ~50ms inter-arrivals and multiplier 3, rounds stop within ~150ms
  // plus one round after the last arrival: comfortably under 5s.
  auto v = verify::checkQuiescence(r.checkContext(), r.lastAlgoSend,
                                   5 * kSec);
  EXPECT_TRUE(v.empty()) << v[0];
}

TEST(A2Predictors, AllPredictorsPreserveSafety) {
  for (auto pred : {abcast::A2Options::Predictor::kRoundEmpty,
                    abcast::A2Options::Predictor::kLinger,
                    abcast::A2Options::Predictor::kRateAdaptive}) {
    auto c = a2Cfg(pred, 9);
    c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
    Experiment ex(c);
    // Gaps straddle the round time.
    ex.addWorkload(workload::Spec::closedLoop(12, 120 * kMs));
    auto r = ex.run(600 * kSec);
    auto v = r.checkAtomicSuite();
    EXPECT_TRUE(v.empty()) << v[0];
    EXPECT_EQ(r.trace.deliveries.size(), 12u * 4u);
  }
}

}  // namespace
}  // namespace wanmc
