// Partial replication over genuine atomic multicast (Algorithm A1) — the
// application scenario motivating the paper's introduction.
//
// Three data centers (groups), each replicating a subset of a key-value
// store's key ranges:
//     group 0: keys a*      group 1: keys b*      group 2: keys c*
// A write touching one range is A-MCast to one group; a multi-key
// transaction touching two ranges is A-MCast to both groups. Because A1
// orders every pair of messages consistently at their common destinations
// (uniform prefix order), every replica of a range applies the same
// command sequence — without any group that is not concerned ever doing
// work (genuineness).
//
//   $ ./examples/partial_replication
#include <cstdio>
#include <map>
#include <string>

#include "core/experiment.hpp"

using namespace wanmc;

namespace {

// A trivially partial-replicated KV store: applies "put k v" commands.
class KvReplica {
 public:
  explicit KvReplica(ProcessId pid) : pid_(pid) {}

  void apply(const AppMessage& m) {
    // body format: "put <key> <value>"
    const auto s1 = m.body.find(' ');
    const auto s2 = m.body.find(' ', s1 + 1);
    const std::string key = m.body.substr(s1 + 1, s2 - s1 - 1);
    const std::string value = m.body.substr(s2 + 1);
    kv_[key] = value;
    log_ += key + "=" + value + ";";
  }

  [[nodiscard]] const std::string& log() const { return log_; }
  [[nodiscard]] std::string get(const std::string& key) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? "<none>" : it->second;
  }

 private:
  ProcessId pid_;
  std::map<std::string, std::string> kv_;
  std::string log_;
};

GroupId rangeOf(const std::string& key) {
  return static_cast<GroupId>(key[0] - 'a');
}

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.groups = 3;
  cfg.procsPerGroup = 2;
  cfg.protocol = core::ProtocolKind::kA1;
  cfg.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  cfg.seed = 7;
  core::Experiment ex(cfg);

  std::vector<KvReplica> replicas;
  for (ProcessId p = 0; p < 6; ++p) replicas.emplace_back(p);
  for (ProcessId p = 0; p < 6; ++p) {
    ex.node(p).onADeliver([p, &replicas](const AppMsgPtr& m) {
      replicas[static_cast<size_t>(p)].apply(*m);
    });
  }

  // Issue writes: some single-range, some cross-range transactions.
  auto put = [&](SimTime at, ProcessId client, const std::string& key,
                 const std::string& value) {
    ex.castAt(at, client, GroupSet::single(rangeOf(key)),
              "put " + key + " " + value);
  };
  auto multiPut = [&](SimTime at, ProcessId client, const std::string& k1,
                      const std::string& v1) {
    // A cross-range transaction: one command applied at two ranges (e.g. a
    // denormalized secondary index).
    GroupSet dest;
    dest.add(rangeOf(k1));
    dest.add((rangeOf(k1) + 1) % 3);
    ex.castAt(at, client, dest, "put " + k1 + " " + v1);
  };

  std::printf("partial replication: 3 ranges x 2 replicas, A1 genuine "
              "multicast\n\n");
  put(10 * kMs, 0, "alpha", "1");
  put(12 * kMs, 2, "bravo", "2");
  put(14 * kMs, 4, "charlie", "3");
  multiPut(20 * kMs, 1, "apple", "10");    // ranges a+b
  multiPut(22 * kMs, 3, "banana", "20");   // ranges b+c
  put(30 * kMs, 5, "cherry", "30");
  multiPut(40 * kMs, 0, "avocado", "40");  // ranges a+b

  auto r = ex.run();

  std::printf("replica command logs (per range, must match within a "
              "range):\n");
  for (ProcessId p = 0; p < 6; ++p)
    std::printf("  p%d (range %c): %s\n", p,
                static_cast<char>('a' + ex.runtime().topology().group(p)),
                replicas[static_cast<size_t>(p)].log().c_str());

  bool consistent = true;
  for (GroupId g = 0; g < 3; ++g) {
    const auto members = ex.runtime().topology().members(g);
    for (size_t i = 1; i < members.size(); ++i)
      consistent &= replicas[static_cast<size_t>(members[i])].log() ==
                    replicas[static_cast<size_t>(members[0])].log();
  }
  std::printf("\nintra-range consistency: %s\n",
              consistent ? "OK" : "BROKEN");

  auto violations = r.checkAtomicSuite();
  auto genuine = verify::checkGenuineness(r.checkContext(), r.genuineness);
  std::printf("atomic multicast properties: %s\n",
              violations.empty() ? "OK" : violations[0].c_str());
  std::printf("genuineness (no uninvolved range worked): %s\n",
              genuine.empty() ? "OK" : genuine[0].c_str());
  std::printf("inter-group messages: %llu\n",
              static_cast<unsigned long long>(r.traffic.interAlgorithmic()));
  return (consistent && violations.empty() && genuine.empty()) ? 0 : 1;
}
