// Latency explorer: run every protocol in the library on the same WAN and
// workload and print a side-by-side comparison — a hands-on version of the
// paper's Figure 1.
//
//   $ ./examples/latency_explorer [groups] [procsPerGroup] [msgs]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

using namespace wanmc;

namespace {

struct RowResult {
  int64_t minDeg = -1;
  int64_t maxDeg = -1;
  double meanWallMs = 0;
  uint64_t inter = 0;
  bool safe = false;
  bool genuine = false;
};

RowResult runProtocol(core::ProtocolKind kind, int groups, int procs,
                      int msgs) {
  core::RunConfig cfg;
  cfg.groups = groups;
  cfg.procsPerGroup = procs;
  cfg.protocol = kind;
  cfg.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  cfg.seed = 5;
  cfg.merge.heartbeatPeriod = 200 * kMs;
  core::Experiment ex(cfg);

  SplitMix64 rng(42);
  for (int i = 0; i < msgs; ++i) {
    const auto sender = static_cast<ProcessId>(
        rng.next() % static_cast<uint64_t>(groups * procs));
    GroupSet dest;
    if (core::isBroadcastProtocol(kind)) {
      dest = GroupSet::all(groups);
    } else {
      dest.add(ex.runtime().topology().group(sender));
      dest.add(static_cast<GroupId>(rng.next() %
                                    static_cast<uint64_t>(groups)));
    }
    ex.castAt(10 * kMs + i * 40 * kMs, sender, dest, "op");
  }
  auto r = ex.run(kind == core::ProtocolKind::kDetMerge00
                      ? 10 * kSec + msgs * 40 * kMs
                      : 600 * kSec);

  RowResult out;
  out.safe = r.checkAtomicSuite().empty();
  // Genuineness probe: a run with ONE message addressed to a strict subset
  // of the groups — over many messages every process tends to be an
  // addressee of something, which would mask non-genuine machinery.
  {
    core::RunConfig pc = cfg;
    // [1] is probed in multicast mode: as a pure broadcast, genuineness is
    // vacuous (every process is an addressee).
    const bool subsetProbe = groups > 1 &&
                             (!core::isBroadcastProtocol(kind) ||
                              kind == core::ProtocolKind::kDetMerge00);
    if (kind == core::ProtocolKind::kDetMerge00)
      pc.merge.multicastMode = true;
    core::Experiment probe(pc);
    probe.castAt(kMs, 0,
                 subsetProbe ? GroupSet::of({0}) : GroupSet::all(groups),
                 "probe");
    auto pr = probe.run(kind == core::ProtocolKind::kDetMerge00 ? 5 * kSec
                                                                : 600 * kSec);
    out.genuine =
        verify::checkGenuineness(pr.checkContext(), pr.genuineness).empty();
  }
  out.inter = r.traffic.interAlgorithmic();
  // All the latency aggregates come straight off the streaming summary —
  // no per-message trace rescans (PR 4).
  const metrics::Summary& m = r.metrics;
  if (!m.latencyDegrees.empty()) {
    out.minDeg = m.latencyDegrees.begin()->first;
    out.maxDeg = m.latencyDegrees.rbegin()->first;
  }
  out.meanWallMs = m.msgLatency.mean() *
                   static_cast<double>(m.completed) /
                   (static_cast<double>(msgs) * kMs);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int groups = argc > 1 ? std::atoi(argv[1]) : 3;
  const int procs = argc > 2 ? std::atoi(argv[2]) : 2;
  const int msgs = argc > 3 ? std::atoi(argv[3]) : 20;

  std::printf("latency explorer: %d groups x %d processes, %d messages, "
              "100ms WAN links\n", groups, procs, msgs);
  std::printf("(multicasts address 1-2 groups; broadcasts address all)\n\n");
  std::printf("%-30s %8s %8s %12s %12s %6s %8s\n", "protocol", "minDeg",
              "maxDeg", "mean wall", "inter msgs", "safe", "genuine");

  const core::ProtocolKind kinds[] = {
      core::ProtocolKind::kA1,          core::ProtocolKind::kFritzke98,
      core::ProtocolKind::kDelporte00,  core::ProtocolKind::kRodrigues98,
      core::ProtocolKind::kSkeen87,     core::ProtocolKind::kViaBcast,
      core::ProtocolKind::kA2,          core::ProtocolKind::kSousa02,
      core::ProtocolKind::kVicente02,   core::ProtocolKind::kDetMerge00,
  };
  for (auto kind : kinds) {
    auto r = runProtocol(kind, groups, procs, msgs);
    std::printf("%-30s %8lld %8lld %10.1fms %12llu %6s %8s\n",
                core::protocolName(kind), static_cast<long long>(r.minDeg),
                static_cast<long long>(r.maxDeg), r.meanWallMs,
                static_cast<unsigned long long>(r.inter),
                r.safe ? "yes" : "NO", r.genuine ? "yes" : "no");
  }
  std::printf("\nnotes: per-message Lamport spans of overlapping messages "
              "inflate each other (the clock is global), so\n"
              "minDeg is the number to compare with Figure 1; 'genuine' "
              "fails by design for broadcast-based multicast\n"
              "and for [1] (heartbeats to everyone).\n");
  return 0;
}
