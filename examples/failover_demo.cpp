// Fault-tolerance demo: crashes mid-protocol, with the heartbeat failure
// detector (no oracle) driving consensus coordinator rotation.
//
// A 2-group system orders a stream of multicasts with A1 while one process
// per group crashes mid-run — including a consensus coordinator. The
// remaining majorities keep every group's clock advancing and all correct
// addressees deliver the full stream in a consistent order.
//
//   $ ./examples/failover_demo
#include <cstdio>

#include "core/experiment.hpp"

using namespace wanmc;

int main() {
  core::RunConfig cfg;
  cfg.groups = 2;
  cfg.procsPerGroup = 3;  // majorities survive one crash per group
  cfg.protocol = core::ProtocolKind::kA1;
  cfg.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  cfg.seed = 3;
  // Real failure detection: heartbeats + timeout, eventually-strong.
  cfg.stack.fdKind = fd::FdKind::kHeartbeat;
  cfg.stack.fdHeartbeat = fd::HeartbeatFd::Params{20 * kMs, 100 * kMs};
  core::Experiment ex(cfg);

  for (ProcessId p = 0; p < 6; ++p) {
    ex.node(p).onADeliver([p, &ex](const AppMsgPtr& m) {
      std::printf("  t=%7.1fms  p%d  A-Deliver m%llu\n",
                  static_cast<double>(ex.runtime().now()) / kMs, p,
                  static_cast<unsigned long long>(m->id));
    });
  }

  std::printf("stream of 6 multicasts to both groups; p1 (group 0) and p4 "
              "(group 1) crash mid-run\n\n");
  // Senders are processes that stay correct (a message whose sender
  // crashes before casting would simply never exist).
  const ProcessId senders[] = {0, 2, 3, 5, 0, 2};
  for (int i = 0; i < 6; ++i)
    ex.castAt(10 * kMs + i * 120 * kMs, senders[i], GroupSet::of({0, 1}),
              "cmd");
  ex.crashAt(1, 150 * kMs);  // likely a coordinator of an early instance
  ex.crashAt(4, 260 * kMs);

  auto r = ex.run(60 * kSec);

  std::printf("\ncorrect processes: ");
  for (ProcessId p : r.correct) std::printf("p%d ", p);
  std::printf("\n");

  auto seqs = r.trace.sequences();
  bool complete = true;
  for (ProcessId p : r.correct) complete &= seqs[p].size() == 6;
  std::printf("all 6 messages delivered by every correct process: %s\n",
              complete ? "OK" : "INCOMPLETE");

  auto ctx = r.checkContext();
  auto v1 = verify::checkUniformIntegrity(ctx);
  auto v2 = verify::checkUniformAgreement(ctx);
  auto v3 = verify::checkUniformPrefixOrder(ctx);
  std::printf("uniform integrity: %s, uniform agreement: %s, prefix order: "
              "%s\n",
              v1.empty() ? "OK" : v1[0].c_str(),
              v2.empty() ? "OK" : v2[0].c_str(),
              v3.empty() ? "OK" : v3[0].c_str());
  std::printf("failure-detector traffic (heartbeats): %llu messages\n",
              static_cast<unsigned long long>(
                  r.traffic.at(Layer::kFailureDetector).total()));
  return (complete && v1.empty() && v2.empty() && v3.empty()) ? 0 : 1;
}
