// workload_showcase — one run per workload model, side by side.
//
// Drives A1 on a 3x3 WAN under every arrival model the workload::
// subsystem offers and prints a compact per-model summary: how the cast
// schedule spreads over time, how load concentrates on senders, and what
// delivery latency looks like when the arrival process stops being polite.
// Also round-trips each spec through its serialized form to demonstrate
// that a workload is a value you can log, diff, and replay.
//
//   $ ./examples/workload_showcase
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "workload/generator.hpp"

using namespace wanmc;

namespace {

struct Row {
  std::string name;
  workload::Spec spec;
};

void runOne(const Row& row) {
  // Serialize -> parse -> run: the spec survives the round trip, so the
  // printed line is a complete reproduction recipe.
  const std::string text = workload::toString(row.spec);
  auto parsed = workload::parse(text);
  if (!parsed || !(*parsed == row.spec)) {
    std::printf("%-12s serialization round-trip FAILED\n", row.name.c_str());
    return;
  }

  core::RunConfig cfg;
  cfg.groups = 3;
  cfg.procsPerGroup = 3;
  cfg.protocol = core::ProtocolKind::kA1;
  cfg.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  cfg.seed = 42;
  cfg.workload = *parsed;
  core::Experiment ex(cfg);
  auto r = ex.run(900 * kSec);

  // Cast span and busiest sender.
  SimTime first = kTimeNever;
  SimTime last = 0;
  std::map<ProcessId, int> bySender;
  for (const auto& c : r.trace.casts) {
    first = std::min(first, c.when);
    last = std::max(last, c.when);
    ++bySender[c.process];
  }
  int hottest = 0;
  for (const auto& [pid, n] : bySender) hottest = std::max(hottest, n);

  // Mean sender-to-last-delivery latency.
  double meanLatencyMs = 0;
  int measured = 0;
  for (const auto& c : r.trace.casts) {
    SimTime done = -1;
    for (const auto& d : r.trace.deliveries)
      if (d.msg == c.msg) done = std::max(done, d.when);
    if (done >= 0) {
      meanLatencyMs += static_cast<double>(done - c.when) / kMs;
      ++measured;
    }
  }
  if (measured > 0) meanLatencyMs /= measured;

  std::printf("%-12s %2zu casts over %6.0fms  hottest sender %2d/%zu casts  "
              "mean latency %6.1fms  safe=%s\n",
              row.name.c_str(), r.trace.casts.size(),
              static_cast<double>(last - first) / kMs, hottest,
              r.trace.casts.size(), meanLatencyMs,
              r.checkAtomicSuite().empty() ? "yes" : "NO");
  std::printf("             spec: %s\n", text.c_str());
}

}  // namespace

int main() {
  std::vector<Row> rows;

  rows.push_back({"closed-loop", workload::Spec::closedLoop(12, 60 * kMs)});

  {
    workload::Spec s = workload::Spec::closedLoop(12, 10 * kMs);
    s.inFlightCap = 1;  // one client, think time 10ms: paced by delivery
    rows.push_back({"closed-cap1", s});
  }

  rows.push_back({"open-poisson",
                  workload::Spec::openLoopPoisson(12, 60 * kMs)});

  {
    workload::Spec s;
    s.model = workload::Model::kOpenLoopFixed;
    s.count = 12;
    s.meanGap = 5 * kMs;  // overload: 20x faster than delivery latency
    rows.push_back({"open-storm", s});
  }

  {
    workload::Spec s;
    s.model = workload::Model::kBursty;
    s.count = 12;
    s.onDuration = 30 * kMs;
    s.offDuration = 400 * kMs;
    s.burstGap = 5 * kMs;
    rows.push_back({"bursty", s});
  }

  {
    workload::Spec s = workload::Spec::closedLoop(12, 60 * kMs);
    s.senderZipf = 1.5;  // hotspot: pid 0 sends most of the traffic
    s.destZipf = 1.0;
    rows.push_back({"zipf-skew", s});
  }

  {
    std::vector<workload::TraceCast> trace;
    for (int i = 0; i < 6; ++i)
      trace.push_back({(10 + 25 * i) * kMs, static_cast<ProcessId>(i),
                       GroupSet::of({0, static_cast<GroupId>(i % 3)})});
    rows.push_back({"trace-replay", workload::Spec::traceReplay(trace)});
  }

  std::printf("A1 on a 3x3 WAN (95-110ms inter-group), seed 42:\n\n");
  for (const Row& row : rows) runOne(row);
  return 0;
}
