// wanmc_cli — command-line driver for the simulator.
//
// Runs any protocol on any topology/workload and prints a summary (JSON) or
// raw traces (CSV) for external analysis / plotting.
//
//   $ ./examples/wanmc_cli --protocol a1 --groups 3 --procs 2
//         --msgs 50 --interval-ms 40 --dest-groups 2 --seed 9
//         --format summary      (one line; wrapped here for width)
//
//   --protocol   a1|fritzke98|delporte00|rodrigues98|skeen87|viabcast|
//                a2|sousa02|vicente02|detmerge00
//   --format     summary (JSON) | messages (CSV) | deliveries (CSV)
//   --inter-ms / --intra-us   link latencies (fixed)
//   --crash <pid>:<ms>        schedule a crash (repeatable)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/export.hpp"

using namespace wanmc;

namespace {

core::ProtocolKind parseProtocol(const std::string& s) {
  if (s == "a1") return core::ProtocolKind::kA1;
  if (s == "fritzke98") return core::ProtocolKind::kFritzke98;
  if (s == "delporte00") return core::ProtocolKind::kDelporte00;
  if (s == "rodrigues98") return core::ProtocolKind::kRodrigues98;
  if (s == "skeen87") return core::ProtocolKind::kSkeen87;
  if (s == "viabcast") return core::ProtocolKind::kViaBcast;
  if (s == "a2") return core::ProtocolKind::kA2;
  if (s == "sousa02") return core::ProtocolKind::kSousa02;
  if (s == "vicente02") return core::ProtocolKind::kVicente02;
  if (s == "detmerge00") return core::ProtocolKind::kDetMerge00;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::RunConfig cfg;
  cfg.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  core::WorkloadSpec spec;
  spec.count = 20;
  spec.interval = 40 * kMs;
  std::string format = "summary";
  std::vector<std::pair<ProcessId, SimTime>> crashes;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") cfg.protocol = parseProtocol(next());
    else if (arg == "--groups") cfg.groups = std::atoi(next().c_str());
    else if (arg == "--procs") cfg.procsPerGroup = std::atoi(next().c_str());
    else if (arg == "--seed") cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--msgs") spec.count = std::atoi(next().c_str());
    else if (arg == "--interval-ms")
      spec.interval = std::atoi(next().c_str()) * kMs;
    else if (arg == "--dest-groups")
      spec.destGroups = std::atoi(next().c_str());
    else if (arg == "--inter-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      cfg.latency.interMin = cfg.latency.interMax = v;
    } else if (arg == "--intra-us") {
      const SimTime v = std::atoi(next().c_str());
      cfg.latency.intraMin = cfg.latency.intraMax = v;
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--crash") {
      const std::string v = next();
      const auto colon = v.find(':');
      crashes.push_back({std::atoi(v.substr(0, colon).c_str()),
                         std::atoi(v.substr(colon + 1).c_str()) * kMs});
    } else if (arg == "--help") {
      std::printf("usage: wanmc_cli [--protocol P] [--groups N] [--procs D] "
                  "[--msgs M] [--interval-ms I] [--dest-groups K] "
                  "[--seed S] [--inter-ms L] [--intra-us U] "
                  "[--crash pid:ms] [--format summary|messages|deliveries]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  core::Experiment ex(cfg);
  for (auto [pid, when] : crashes) ex.crashAt(pid, when);
  scheduleWorkload(ex, spec);
  const SimTime horizon = cfg.protocol == core::ProtocolKind::kDetMerge00
                              ? spec.start + spec.count * spec.interval +
                                    5 * kSec
                              : 3600 * kSec;
  auto r = ex.run(horizon);

  if (format == "summary") {
    core::writeSummaryJson(r, std::cout);
  } else if (format == "messages") {
    core::writeMessagesCsv(r, std::cout);
  } else if (format == "deliveries") {
    core::writeDeliveriesCsv(r, std::cout);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  return r.checkAtomicSuite().empty() ? 0 : 1;
}
