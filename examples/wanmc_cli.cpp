// wanmc_cli — command-line driver for the simulator.
//
// Runs any protocol on any topology/workload and prints a summary (JSON) or
// raw traces (CSV) for external analysis / plotting, or drives the
// closed-loop latency-throughput sweep (the paper's Figure-1 regime).
//
//   $ ./examples/wanmc_cli --protocol a1 --groups 3 --procs 2
//         --msgs 50 --interval-ms 40 --dest-groups 2 --seed 9
//         --format summary      (one line; wrapped here for width)
//   $ ./examples/wanmc_cli sweep --protocol a1 --points 7 --csv-out a1.csv
//
//   --protocol   a1|fritzke98|delporte00|rodrigues98|skeen87|viabcast|
//                a2|sousa02|vicente02|detmerge00
//   --workload   closed-loop|open-fixed|open-poisson|bursty (arrival model)
//   --workload-spec "open-poisson count=50 mean=20000 szipf=1.2"
//                full serialized workload::Spec, overrides the other
//                workload flags (see src/workload/spec.hpp)
//   --format     summary (JSON) | deliveries (CSV) |
//                latency (CSV percentile rows, see core::writeLatencyCsv)
//   --json-out / --csv-out    also write the summary JSON / latency CSV
//                to a file. `sweep` accepts only --csv-out (the sweep CSV)
//   --inter-ms / --intra-us   link latencies (fixed)
//   --batch-window <ms> / --batch-max <n>
//                batching plane (StackConfig::batchWindow/batchMaxSize):
//                coalesce same-(sender,dest) casts for up to <ms>, flush
//                early at <n> casts. 0 0 (the default) = batching off
//   --loss <p>   iid per-wire-copy drop probability in [0,1), deterministic
//                from the run seed (RunConfig::lossRate). Liveness under
//                loss needs --reliable-channels.
//   --reliable-channels
//                arm the retransmitting channel substrate (src/channel/):
//                per-link sequencing, ACK/NACK, timer-driven retransmit
//   --crash <pid>:<ms>        schedule a crash (repeatable)
//   --recover <pid>:<ms>      schedule a recovery (fresh incarnation,
//                             reset state; no-op if alive; repeatable)
//   --partition <g,g,..>:<fromMs>:<untilMs>
//                             cut those groups off for [from, until)ms;
//                             `untilMs` = "never" keeps the cut
//                             (repeatable). Bad pids/groups/windows are
//                             rejected up front, not silently ignored.
//   --churn <pid>:<periodMs>  continuous crash/recover cycling: <pid>
//                             crashes at k*period and rejoins half a
//                             period later, for every k >= 1 inside the
//                             arrival schedule. Arms the bootstrap plane
//                             (state transfer) and the consensus round
//                             timeout. Validated like --crash: bad pids
//                             and periods that fit no cycle are rejected
//                             up front (repeatable).
//
// `sweep` flags: --points K, --casts M, --cap C, --seeds S, --jobs J,
// --interval-max-ms / --interval-min-ms (ladder endpoints), plus
// --protocol/--groups/--procs/--dest-groups/--seed/--inter-ms/--intra-us/
// --batch-window/--batch-max,
// and --check-baseline FILE [--tolerance F]: compare this sweep's p50/p99
// per load point against a baseline CSV and exit 1 on a >F regression
// (default 0.25) — the CI percentile gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "core/run_options.hpp"
#include "metrics/sweep.hpp"
#include "workload/spec.hpp"

using namespace wanmc;

namespace {

workload::Model parseModel(const std::string& s) {
  for (workload::Model m :
       {workload::Model::kClosedLoop, workload::Model::kOpenLoopFixed,
        workload::Model::kOpenLoopPoisson, workload::Model::kBursty})
    if (s == workload::modelName(m)) return m;
  std::fprintf(stderr, "unknown workload model '%s'\n", s.c_str());
  std::exit(2);
}

void writeFileOrDie(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  f << text;
}

// Strict integer parse: the whole token must be a number (silent
// tail-garbage acceptance is how bad fault schedules sneak through).
long long parseIntOrDie(const std::string& s, const char* what) {
  size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (used != s.size() || s.empty()) {
    std::fprintf(stderr, "%s: '%s' is not a number\n", what, s.c_str());
    std::exit(2);
  }
  return v;
}

// "<pid>:<ms>" for --crash / --recover.
std::pair<ProcessId, SimTime> parsePidAtMs(const std::string& v,
                                           const char* flag) {
  const auto colon = v.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= v.size()) {
    std::fprintf(stderr, "%s expects <pid>:<ms>, got '%s'\n", flag,
                 v.c_str());
    std::exit(2);
  }
  return {static_cast<ProcessId>(
              parseIntOrDie(v.substr(0, colon), flag)),
          parseIntOrDie(v.substr(colon + 1), flag) * kMs};
}

// "<g,g,..>:<fromMs>:<untilMs|never>" for --partition.
struct PartitionArg {
  GroupSet side;
  SimTime from = 0;
  SimTime until = kTimeNever;
};
PartitionArg parsePartition(const std::string& v) {
  const auto c1 = v.find(':');
  const auto c2 = c1 == std::string::npos ? std::string::npos
                                          : v.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    std::fprintf(stderr,
                 "--partition expects <g,g,..>:<fromMs>:<untilMs|never>, "
                 "got '%s'\n",
                 v.c_str());
    std::exit(2);
  }
  PartitionArg out;
  std::string groups = v.substr(0, c1);
  size_t pos = 0;
  while (pos <= groups.size()) {
    const auto comma = groups.find(',', pos);
    const std::string tok =
        groups.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
    const long long g = parseIntOrDie(tok, "--partition group");
    if (g < 0 || g >= 64) {
      std::fprintf(stderr, "--partition: group %lld out of range\n", g);
      std::exit(2);
    }
    out.side.add(static_cast<GroupId>(g));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  out.from = parseIntOrDie(v.substr(c1 + 1, c2 - c1 - 1),
                           "--partition fromMs") * kMs;
  const std::string untilTok = v.substr(c2 + 1);
  if (untilTok != "never")
    out.until = parseIntOrDie(untilTok, "--partition untilMs") * kMs;
  return out;
}

// Baseline comparison for `sweep --check-baseline`: per load point
// (keyed by interval_us), p50 and p99 may not regress by more than
// `tolerance` (fractional). Returns the number of violations.
int checkSweepBaseline(const std::vector<metrics::SweepPoint>& points,
                       const std::string& baselinePath, double tolerance) {
  std::ifstream in(baselinePath);
  if (!in.good()) {
    std::fprintf(stderr, "cannot read baseline %s\n", baselinePath.c_str());
    return 1;
  }
  // writeSweepCsv layout: interval_us,offered,goodput,p50,p90,p99,...
  std::map<long long, std::pair<double, double>> base;  // interval -> p50,p99
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::vector<std::string> cols;
    std::stringstream ss(line);
    std::string tok;
    while (std::getline(ss, tok, ',')) cols.push_back(tok);
    if (cols.size() < 6) continue;
    base[std::atoll(cols[0].c_str())] = {std::atof(cols[3].c_str()),
                                         std::atof(cols[5].c_str())};
  }
  int bad = 0;
  auto gate = [&](long long interval, const char* name, double now,
                  double was) {
    if (was <= 0) return;
    const double ratio = now / was;
    if (ratio > 1.0 + tolerance) {
      std::fprintf(stderr,
                   "sweep gate: %s at interval %lldus regressed %.1f%% "
                   "(%.0fus -> %.0fus, tolerance %.0f%%)\n",
                   name, interval, (ratio - 1.0) * 100.0, was, now,
                   tolerance * 100.0);
      ++bad;
    }
  };
  int matched = 0;
  for (const auto& p : points) {
    auto it = base.find(static_cast<long long>(p.interval));
    if (it == base.end()) continue;
    ++matched;
    gate(p.interval, "p50", static_cast<double>(p.latency.p50),
         it->second.first);
    gate(p.interval, "p99", static_cast<double>(p.latency.p99),
         it->second.second);
  }
  if (matched == 0) {
    std::fprintf(stderr,
                 "sweep gate: no load point of the baseline matches this "
                 "sweep (different ladder?)\n");
    return 1;
  }
  if (bad == 0)
    std::fprintf(stderr, "sweep gate: %d load points within %.0f%% of %s\n",
                 matched, tolerance * 100.0, baselinePath.c_str());
  return bad;
}

// `wanmc_cli sweep ...`: the closed-loop offered-load ladder, one
// latency-vs-throughput CSV row per load point (metrics/sweep.hpp).
int sweepMain(int argc, char** argv) {
  core::RunOptions ro;  // the shared knobs, parsed/validated in one place
  metrics::SweepOptions opt;
  int points = 7;
  SimTime slowest = 256 * kMs;
  SimTime fastest = 4 * kMs;
  std::string csvOut;
  std::string baseline;
  double tolerance = 0.25;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (ro.consumeFlag(arg, next)) continue;
    if (arg == "--points") points = std::atoi(next().c_str());
    else if (arg == "--casts") opt.casts = std::atoi(next().c_str());
    else if (arg == "--cap") opt.inFlightCap = std::atoi(next().c_str());
    else if (arg == "--seeds") opt.seedsPerPoint = std::atoi(next().c_str());
    else if (arg == "--jobs") opt.jobs = std::atoi(next().c_str());
    else if (arg == "--interval-max-ms")
      slowest = std::atoi(next().c_str()) * kMs;
    else if (arg == "--interval-min-ms")
      fastest = std::atoi(next().c_str()) * kMs;
    else if (arg == "--csv-out") {
      csvOut = next();
    } else if (arg == "--check-baseline") {
      baseline = next();
    } else if (arg == "--tolerance") {
      tolerance = std::atof(next().c_str());
    } else if (arg == "--help") {
      std::printf(
          "usage: wanmc_cli sweep %s\n"
          "         [--points K] [--casts M] [--cap C] [--seeds S] "
          "[--jobs J] [--interval-max-ms A] [--interval-min-ms B] "
          "[--csv-out FILE] [--check-baseline FILE [--tolerance F]]\n",
          core::RunOptions::flagHelp());
      return 0;
    } else {
      std::fprintf(stderr, "unknown sweep flag '%s' (try sweep --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (points <= 0 || opt.casts <= 0 || opt.seedsPerPoint <= 0) {
    std::fprintf(stderr,
                 "sweep: --points, --casts, and --seeds must be positive "
                 "(got %d, %d, %d)\n",
                 points, opt.casts, opt.seedsPerPoint);
    return 2;
  }
  if (tolerance <= 0) {
    std::fprintf(stderr, "sweep: --tolerance must be positive\n");
    return 2;
  }
  try {
    opt.base = ro.toRunConfig();  // validates the shared knobs
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 2;
  }
  opt.firstSeed = ro.seed;
  opt.destGroups = ro.destGroups;
  opt.intervals = metrics::defaultLoadLadder(points, slowest, fastest);
  std::vector<metrics::SweepPoint> curve;
  try {
    curve = metrics::runLatencyThroughputSweep(opt);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "sweep: %s\n", e.what());
    return 2;
  }
  std::ostringstream os;
  metrics::writeSweepCsv(curve, os);
  std::fputs(os.str().c_str(), stdout);
  if (!csvOut.empty()) writeFileOrDie(csvOut, os.str());
  if (!baseline.empty() && checkSweepBaseline(curve, baseline, tolerance) > 0)
    return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
    return sweepMain(argc - 2, argv + 2);

  core::RunOptions ro;  // the shared knobs, parsed/validated in one place
  workload::Spec spec = workload::Spec::closedLoop(20, 40 * kMs);
  std::string format = "summary";
  std::string jsonOut;
  std::string csvOut;
  std::vector<std::pair<ProcessId, SimTime>> crashes;
  std::vector<std::pair<ProcessId, SimTime>> recoveries;
  std::vector<std::pair<ProcessId, SimTime>> churns;  // pid -> cycle period
  std::vector<PartitionArg> partitions;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (ro.consumeFlag(arg, next)) continue;
    if (arg == "--msgs") spec.count = std::atoi(next().c_str());
    else if (arg == "--interval-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      spec.interval = spec.meanGap = v;  // one knob for either model family
    } else if (arg == "--workload") spec.model = parseModel(next());
    else if (arg == "--cap") spec.inFlightCap = std::atoi(next().c_str());
    else if (arg == "--zipf-sender")
      spec.senderZipf = std::atof(next().c_str());
    else if (arg == "--zipf-dest") spec.destZipf = std::atof(next().c_str());
    else if (arg == "--burst-on-ms")
      spec.onDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-off-ms")
      spec.offDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-gap-ms")
      spec.burstGap = std::atoi(next().c_str()) * kMs;
    else if (arg == "--workload-spec") {
      const std::string text = next();
      auto parsed = workload::parse(text);
      if (!parsed) {
        std::fprintf(stderr, "malformed workload spec '%s'\n", text.c_str());
        return 2;
      }
      spec = *parsed;
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--json-out") {
      jsonOut = next();
    } else if (arg == "--csv-out") {
      csvOut = next();
    } else if (arg == "--crash") {
      crashes.push_back(parsePidAtMs(next(), "--crash"));
    } else if (arg == "--recover") {
      recoveries.push_back(parsePidAtMs(next(), "--recover"));
    } else if (arg == "--partition") {
      partitions.push_back(parsePartition(next()));
    } else if (arg == "--churn") {
      const auto parsed = parsePidAtMs(next(), "--churn");
      if (parsed.second <= 0) {
        std::fprintf(stderr, "--churn: period must be positive, got %lldms\n",
                     static_cast<long long>(parsed.second / kMs));
        return 2;
      }
      churns.push_back(parsed);
    } else if (arg == "--help") {
      std::printf("usage: wanmc_cli [sweep] %s\n"
                  "         [--msgs M] [--interval-ms I] "
                  "[--workload closed-loop|open-fixed|open-poisson|bursty] "
                  "[--cap C] [--zipf-sender S] [--zipf-dest S] "
                  "[--burst-on-ms A] [--burst-off-ms B] [--burst-gap-ms G] "
                  "[--workload-spec \"MODEL k=v ...\"] "
                  "[--crash pid:ms] "
                  "[--recover pid:ms] [--churn pid:periodMs] "
                  "[--partition g,g:fromMs:untilMs|never] "
                  "[--format summary|deliveries|latency] "
                  "[--json-out FILE] [--csv-out FILE]\n"
                  "       wanmc_cli sweep --help   for the sweep flags\n",
                  core::RunOptions::flagHelp());
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  core::RunConfig cfg;
  try {
    cfg = ro.toRunConfig();  // validates the shared knobs
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  spec.destGroups = ro.destGroups;

  // Recovery runs need the consensus round timeout armed (see
  // StackConfig::consensusRoundTimeout) — same default ScenarioRunner uses.
  if ((!recoveries.empty() || !churns.empty()) &&
      cfg.stack.consensusRoundTimeout == 0)
    cfg.stack.consensusRoundTimeout = 500 * kMs;
  // Churned processes rejoin over the state-transfer handshake; without it
  // the fresh incarnations would sit amnesiac for the rest of the run.
  if (!churns.empty()) cfg.stack.bootstrap.armed = true;

  // Expand each churn plan into explicit crash/recover cycles spanning the
  // arrival schedule: crash at k*period, rejoin half a period later. A
  // period that fits no full cycle is a schedule typo, not a quiet no-op.
  for (auto [pid, period] : churns) {
    int cycles = 0;
    for (SimTime t = period; t + period / 2 < spec.nominalEnd();
         t += period) {
      crashes.emplace_back(pid, t);
      recoveries.emplace_back(pid, t + period / 2);
      ++cycles;
    }
    if (cycles == 0) {
      std::fprintf(stderr,
                   "--churn: period %lldms fits no crash/recover cycle "
                   "inside the arrival schedule (ends at %lldms)\n",
                   static_cast<long long>(period / kMs),
                   static_cast<long long>(spec.nominalEnd() / kMs));
      return 2;
    }
  }

  // The Experiment ctor rejects sim-only axes on the threaded backend
  // (validateBackend) — surface that as a usage error, not an abort.
  std::optional<core::Experiment> exOpt;
  try {
    exOpt.emplace(cfg);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  core::Experiment& ex = *exOpt;
  try {
    for (auto [pid, when] : crashes) ex.crashAt(pid, when);
    for (auto [pid, when] : recoveries) ex.recoverAt(pid, when);
    for (const auto& p : partitions) ex.partitionAt(p.side, p.from, p.until);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "invalid fault schedule: %s\n", e.what());
    return 2;
  } catch (const std::logic_error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  ex.addWorkload(spec);
  // DetMerge00's heartbeats never quiesce: bound its run near the end of
  // the arrival schedule instead of waiting out the full horizon.
  const SimTime horizon = cfg.protocol == core::ProtocolKind::kDetMerge00
                              ? spec.nominalEnd() + 5 * kSec
                              : 3600 * kSec;
  auto r = ex.run(horizon);

  // The safety suite runs ONCE: its verdict feeds the summary JSON (both
  // copies) and the exit code. A partition or message loss legitimately
  // loses messages — delivery obligations are void (same rule the
  // scenario harness applies) — so those runs check safety only:
  // integrity + uniform prefix order. Reliable channels restore the
  // obligation: loss and healed partitions are masked by retransmission,
  // and only a never-healed cut still voids delivery.
  bool deliveryVoid;
  if (cfg.stack.reliableChannels) {
    deliveryVoid = false;
    for (const auto& p : partitions)
      if (p.until == kTimeNever) deliveryVoid = true;
  } else {
    deliveryVoid = !partitions.empty() || cfg.lossRate > 0;
  }
  verify::Violations violations;
  if (!deliveryVoid) {
    violations = r.checkAtomicSuite();
  } else {
    const auto ctx = r.checkContext();
    violations = verify::checkUniformIntegrity(ctx);
    auto order = verify::checkUniformPrefixOrder(ctx);
    violations.insert(violations.end(), order.begin(), order.end());
  }
  std::string summaryText;
  auto summaryJson = [&]() -> const std::string& {
    if (summaryText.empty()) {
      std::ostringstream os;
      core::writeSummaryJson(r, os, &violations);
      summaryText = os.str();
    }
    return summaryText;
  };

  if (format == "summary") {
    std::cout << summaryJson();
  } else if (format == "deliveries") {
    core::writeDeliveriesCsv(r, std::cout);
  } else if (format == "latency") {
    core::writeLatencyCsv(r, std::cout);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (!jsonOut.empty()) writeFileOrDie(jsonOut, summaryJson());
  if (!csvOut.empty()) {
    std::ostringstream os;
    core::writeLatencyCsv(r, os);
    writeFileOrDie(csvOut, os.str());
  }
  return violations.empty() ? 0 : 1;
}
