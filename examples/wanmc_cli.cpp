// wanmc_cli — command-line driver for the simulator.
//
// Runs any protocol on any topology/workload and prints a summary (JSON) or
// raw traces (CSV) for external analysis / plotting.
//
//   $ ./examples/wanmc_cli --protocol a1 --groups 3 --procs 2
//         --msgs 50 --interval-ms 40 --dest-groups 2 --seed 9
//         --format summary      (one line; wrapped here for width)
//
//   --protocol   a1|fritzke98|delporte00|rodrigues98|skeen87|viabcast|
//                a2|sousa02|vicente02|detmerge00
//   --workload   closed-loop|open-fixed|open-poisson|bursty (arrival model)
//   --workload-spec "open-poisson count=50 mean=20000 szipf=1.2"
//                full serialized workload::Spec, overrides the other
//                workload flags (see src/workload/spec.hpp)
//   --format     summary (JSON) | messages (CSV) | deliveries (CSV)
//   --inter-ms / --intra-us   link latencies (fixed)
//   --crash <pid>:<ms>        schedule a crash (repeatable)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "workload/spec.hpp"

using namespace wanmc;

namespace {

workload::Model parseModel(const std::string& s) {
  for (workload::Model m :
       {workload::Model::kClosedLoop, workload::Model::kOpenLoopFixed,
        workload::Model::kOpenLoopPoisson, workload::Model::kBursty})
    if (s == workload::modelName(m)) return m;
  std::fprintf(stderr, "unknown workload model '%s'\n", s.c_str());
  std::exit(2);
}

core::ProtocolKind parseProtocol(const std::string& s) {
  if (s == "a1") return core::ProtocolKind::kA1;
  if (s == "fritzke98") return core::ProtocolKind::kFritzke98;
  if (s == "delporte00") return core::ProtocolKind::kDelporte00;
  if (s == "rodrigues98") return core::ProtocolKind::kRodrigues98;
  if (s == "skeen87") return core::ProtocolKind::kSkeen87;
  if (s == "viabcast") return core::ProtocolKind::kViaBcast;
  if (s == "a2") return core::ProtocolKind::kA2;
  if (s == "sousa02") return core::ProtocolKind::kSousa02;
  if (s == "vicente02") return core::ProtocolKind::kVicente02;
  if (s == "detmerge00") return core::ProtocolKind::kDetMerge00;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::RunConfig cfg;
  cfg.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  workload::Spec spec = workload::Spec::closedLoop(20, 40 * kMs);
  std::string format = "summary";
  std::vector<std::pair<ProcessId, SimTime>> crashes;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") cfg.protocol = parseProtocol(next());
    else if (arg == "--groups") cfg.groups = std::atoi(next().c_str());
    else if (arg == "--procs") cfg.procsPerGroup = std::atoi(next().c_str());
    else if (arg == "--seed") cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--msgs") spec.count = std::atoi(next().c_str());
    else if (arg == "--interval-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      spec.interval = spec.meanGap = v;  // one knob for either model family
    } else if (arg == "--dest-groups")
      spec.destGroups = std::atoi(next().c_str());
    else if (arg == "--workload") spec.model = parseModel(next());
    else if (arg == "--cap") spec.inFlightCap = std::atoi(next().c_str());
    else if (arg == "--zipf-sender")
      spec.senderZipf = std::atof(next().c_str());
    else if (arg == "--zipf-dest") spec.destZipf = std::atof(next().c_str());
    else if (arg == "--burst-on-ms")
      spec.onDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-off-ms")
      spec.offDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-gap-ms")
      spec.burstGap = std::atoi(next().c_str()) * kMs;
    else if (arg == "--workload-spec") {
      const std::string text = next();
      auto parsed = workload::parse(text);
      if (!parsed) {
        std::fprintf(stderr, "malformed workload spec '%s'\n", text.c_str());
        return 2;
      }
      spec = *parsed;
    } else if (arg == "--inter-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      cfg.latency.interMin = cfg.latency.interMax = v;
    } else if (arg == "--intra-us") {
      const SimTime v = std::atoi(next().c_str());
      cfg.latency.intraMin = cfg.latency.intraMax = v;
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--crash") {
      const std::string v = next();
      const auto colon = v.find(':');
      crashes.push_back({std::atoi(v.substr(0, colon).c_str()),
                         std::atoi(v.substr(colon + 1).c_str()) * kMs});
    } else if (arg == "--help") {
      std::printf("usage: wanmc_cli [--protocol P] [--groups N] [--procs D] "
                  "[--msgs M] [--interval-ms I] [--dest-groups K] "
                  "[--workload closed-loop|open-fixed|open-poisson|bursty] "
                  "[--cap C] [--zipf-sender S] [--zipf-dest S] "
                  "[--burst-on-ms A] [--burst-off-ms B] [--burst-gap-ms G] "
                  "[--workload-spec \"MODEL k=v ...\"] "
                  "[--seed S] [--inter-ms L] [--intra-us U] "
                  "[--crash pid:ms] [--format summary|messages|deliveries]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  core::Experiment ex(cfg);
  for (auto [pid, when] : crashes) ex.crashAt(pid, when);
  ex.addWorkload(spec);
  // DetMerge00's heartbeats never quiesce: bound its run near the end of
  // the arrival schedule instead of waiting out the full horizon.
  const SimTime horizon = cfg.protocol == core::ProtocolKind::kDetMerge00
                              ? spec.nominalEnd() + 5 * kSec
                              : 3600 * kSec;
  auto r = ex.run(horizon);

  if (format == "summary") {
    core::writeSummaryJson(r, std::cout);
  } else if (format == "messages") {
    core::writeMessagesCsv(r, std::cout);
  } else if (format == "deliveries") {
    core::writeDeliveriesCsv(r, std::cout);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  return r.checkAtomicSuite().empty() ? 0 : 1;
}
