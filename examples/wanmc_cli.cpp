// wanmc_cli — command-line driver for the simulator.
//
// Runs any protocol on any topology/workload and prints a summary (JSON) or
// raw traces (CSV) for external analysis / plotting, or drives the
// closed-loop latency-throughput sweep (the paper's Figure-1 regime).
//
//   $ ./examples/wanmc_cli --protocol a1 --groups 3 --procs 2
//         --msgs 50 --interval-ms 40 --dest-groups 2 --seed 9
//         --format summary      (one line; wrapped here for width)
//   $ ./examples/wanmc_cli sweep --protocol a1 --points 7 --csv-out a1.csv
//
//   --protocol   a1|fritzke98|delporte00|rodrigues98|skeen87|viabcast|
//                a2|sousa02|vicente02|detmerge00
//   --workload   closed-loop|open-fixed|open-poisson|bursty (arrival model)
//   --workload-spec "open-poisson count=50 mean=20000 szipf=1.2"
//                full serialized workload::Spec, overrides the other
//                workload flags (see src/workload/spec.hpp)
//   --format     summary (JSON) | messages (CSV) | deliveries (CSV) |
//                latency (CSV percentile rows, see core::writeLatencyCsv)
//   --json-out / --csv-out    also write the summary JSON / latency CSV
//                to a file. `sweep` accepts only --csv-out (the sweep CSV)
//   --inter-ms / --intra-us   link latencies (fixed)
//   --crash <pid>:<ms>        schedule a crash (repeatable)
//
// `sweep` flags: --points K, --casts M, --cap C, --seeds S, --jobs J,
// --interval-max-ms / --interval-min-ms (ladder endpoints), plus
// --protocol/--groups/--procs/--dest-groups/--seed/--inter-ms/--intra-us.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/export.hpp"
#include "metrics/sweep.hpp"
#include "workload/spec.hpp"

using namespace wanmc;

namespace {

workload::Model parseModel(const std::string& s) {
  for (workload::Model m :
       {workload::Model::kClosedLoop, workload::Model::kOpenLoopFixed,
        workload::Model::kOpenLoopPoisson, workload::Model::kBursty})
    if (s == workload::modelName(m)) return m;
  std::fprintf(stderr, "unknown workload model '%s'\n", s.c_str());
  std::exit(2);
}

core::ProtocolKind parseProtocol(const std::string& s) {
  if (s == "a1") return core::ProtocolKind::kA1;
  if (s == "fritzke98") return core::ProtocolKind::kFritzke98;
  if (s == "delporte00") return core::ProtocolKind::kDelporte00;
  if (s == "rodrigues98") return core::ProtocolKind::kRodrigues98;
  if (s == "skeen87") return core::ProtocolKind::kSkeen87;
  if (s == "viabcast") return core::ProtocolKind::kViaBcast;
  if (s == "a2") return core::ProtocolKind::kA2;
  if (s == "sousa02") return core::ProtocolKind::kSousa02;
  if (s == "vicente02") return core::ProtocolKind::kVicente02;
  if (s == "detmerge00") return core::ProtocolKind::kDetMerge00;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  std::exit(2);
}

void writeFileOrDie(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  if (!f.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
  f << text;
}

// `wanmc_cli sweep ...`: the closed-loop offered-load ladder, one
// latency-vs-throughput CSV row per load point (metrics/sweep.hpp).
int sweepMain(int argc, char** argv) {
  metrics::SweepOptions opt;
  opt.base.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  int points = 7;
  SimTime slowest = 256 * kMs;
  SimTime fastest = 4 * kMs;
  std::string csvOut;

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") opt.base.protocol = parseProtocol(next());
    else if (arg == "--groups") opt.base.groups = std::atoi(next().c_str());
    else if (arg == "--procs")
      opt.base.procsPerGroup = std::atoi(next().c_str());
    else if (arg == "--seed")
      opt.firstSeed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--dest-groups") opt.destGroups = std::atoi(next().c_str());
    else if (arg == "--points") points = std::atoi(next().c_str());
    else if (arg == "--casts") opt.casts = std::atoi(next().c_str());
    else if (arg == "--cap") opt.inFlightCap = std::atoi(next().c_str());
    else if (arg == "--seeds") opt.seedsPerPoint = std::atoi(next().c_str());
    else if (arg == "--jobs") opt.jobs = std::atoi(next().c_str());
    else if (arg == "--interval-max-ms")
      slowest = std::atoi(next().c_str()) * kMs;
    else if (arg == "--interval-min-ms")
      fastest = std::atoi(next().c_str()) * kMs;
    else if (arg == "--inter-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      opt.base.latency.interMin = opt.base.latency.interMax = v;
    } else if (arg == "--intra-us") {
      const SimTime v = std::atoi(next().c_str());
      opt.base.latency.intraMin = opt.base.latency.intraMax = v;
    } else if (arg == "--csv-out") {
      csvOut = next();
    } else if (arg == "--help") {
      std::printf(
          "usage: wanmc_cli sweep [--protocol P] [--groups N] [--procs D] "
          "[--points K] [--casts M] [--cap C] [--seeds S] [--jobs J] "
          "[--dest-groups G] [--interval-max-ms A] [--interval-min-ms B] "
          "[--seed S] [--inter-ms L] [--intra-us U] [--csv-out FILE]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown sweep flag '%s' (try sweep --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  if (points <= 0 || opt.casts <= 0 || opt.seedsPerPoint <= 0) {
    std::fprintf(stderr,
                 "sweep: --points, --casts, and --seeds must be positive "
                 "(got %d, %d, %d)\n",
                 points, opt.casts, opt.seedsPerPoint);
    return 2;
  }
  opt.intervals = metrics::defaultLoadLadder(points, slowest, fastest);
  const auto curve = metrics::runLatencyThroughputSweep(opt);
  std::ostringstream os;
  metrics::writeSweepCsv(curve, os);
  std::fputs(os.str().c_str(), stdout);
  if (!csvOut.empty()) writeFileOrDie(csvOut, os.str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0)
    return sweepMain(argc - 2, argv + 2);

  core::RunConfig cfg;
  cfg.latency = sim::LatencyModel::fixed(kMs, 100 * kMs);
  workload::Spec spec = workload::Spec::closedLoop(20, 40 * kMs);
  std::string format = "summary";
  std::string jsonOut;
  std::string csvOut;
  std::vector<std::pair<ProcessId, SimTime>> crashes;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") cfg.protocol = parseProtocol(next());
    else if (arg == "--groups") cfg.groups = std::atoi(next().c_str());
    else if (arg == "--procs") cfg.procsPerGroup = std::atoi(next().c_str());
    else if (arg == "--seed") cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
    else if (arg == "--msgs") spec.count = std::atoi(next().c_str());
    else if (arg == "--interval-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      spec.interval = spec.meanGap = v;  // one knob for either model family
    } else if (arg == "--dest-groups")
      spec.destGroups = std::atoi(next().c_str());
    else if (arg == "--workload") spec.model = parseModel(next());
    else if (arg == "--cap") spec.inFlightCap = std::atoi(next().c_str());
    else if (arg == "--zipf-sender")
      spec.senderZipf = std::atof(next().c_str());
    else if (arg == "--zipf-dest") spec.destZipf = std::atof(next().c_str());
    else if (arg == "--burst-on-ms")
      spec.onDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-off-ms")
      spec.offDuration = std::atoi(next().c_str()) * kMs;
    else if (arg == "--burst-gap-ms")
      spec.burstGap = std::atoi(next().c_str()) * kMs;
    else if (arg == "--workload-spec") {
      const std::string text = next();
      auto parsed = workload::parse(text);
      if (!parsed) {
        std::fprintf(stderr, "malformed workload spec '%s'\n", text.c_str());
        return 2;
      }
      spec = *parsed;
    } else if (arg == "--inter-ms") {
      const SimTime v = std::atoi(next().c_str()) * kMs;
      cfg.latency.interMin = cfg.latency.interMax = v;
    } else if (arg == "--intra-us") {
      const SimTime v = std::atoi(next().c_str());
      cfg.latency.intraMin = cfg.latency.intraMax = v;
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--json-out") {
      jsonOut = next();
    } else if (arg == "--csv-out") {
      csvOut = next();
    } else if (arg == "--crash") {
      const std::string v = next();
      const auto colon = v.find(':');
      crashes.push_back({std::atoi(v.substr(0, colon).c_str()),
                         std::atoi(v.substr(colon + 1).c_str()) * kMs});
    } else if (arg == "--help") {
      std::printf("usage: wanmc_cli [sweep] [--protocol P] [--groups N] "
                  "[--procs D] "
                  "[--msgs M] [--interval-ms I] [--dest-groups K] "
                  "[--workload closed-loop|open-fixed|open-poisson|bursty] "
                  "[--cap C] [--zipf-sender S] [--zipf-dest S] "
                  "[--burst-on-ms A] [--burst-off-ms B] [--burst-gap-ms G] "
                  "[--workload-spec \"MODEL k=v ...\"] "
                  "[--seed S] [--inter-ms L] [--intra-us U] [--crash pid:ms] "
                  "[--format summary|messages|deliveries|latency] "
                  "[--json-out FILE] [--csv-out FILE]\n"
                  "       wanmc_cli sweep --help   for the sweep flags\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  core::Experiment ex(cfg);
  for (auto [pid, when] : crashes) ex.crashAt(pid, when);
  ex.addWorkload(spec);
  // DetMerge00's heartbeats never quiesce: bound its run near the end of
  // the arrival schedule instead of waiting out the full horizon.
  const SimTime horizon = cfg.protocol == core::ProtocolKind::kDetMerge00
                              ? spec.nominalEnd() + 5 * kSec
                              : 3600 * kSec;
  auto r = ex.run(horizon);

  // The safety suite runs ONCE: its verdict feeds the summary JSON (both
  // copies) and the exit code.
  const auto violations = r.checkAtomicSuite();
  std::string summaryText;
  auto summaryJson = [&]() -> const std::string& {
    if (summaryText.empty()) {
      std::ostringstream os;
      core::writeSummaryJson(r, os, &violations);
      summaryText = os.str();
    }
    return summaryText;
  };

  if (format == "summary") {
    std::cout << summaryJson();
  } else if (format == "messages") {
    core::writeMessagesCsv(r, std::cout);
  } else if (format == "deliveries") {
    core::writeDeliveriesCsv(r, std::cout);
  } else if (format == "latency") {
    core::writeLatencyCsv(r, std::cout);
  } else {
    std::fprintf(stderr, "unknown format '%s'\n", format.c_str());
    return 2;
  }
  if (!jsonOut.empty()) writeFileOrDie(jsonOut, summaryJson());
  if (!csvOut.empty()) {
    std::ostringstream os;
    core::writeLatencyCsv(r, os);
    writeFileOrDie(csvOut, os.str());
  }
  return violations.empty() ? 0 : 1;
}
