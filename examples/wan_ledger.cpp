// A fully replicated ledger over atomic broadcast (Algorithm A2).
//
// Two regions, two replicas each; every replica holds ALL accounts and
// applies transfers in the total order A2 delivers. Balances can never
// diverge — even though transfers are submitted concurrently from both
// regions — and while the stream is busy, A2 delivers each transfer after a
// single WAN delay (latency degree 1, Theorem 5.1).
//
//   $ ./examples/wan_ledger
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"

using namespace wanmc;

namespace {

class Ledger {
 public:
  Ledger() { balances_["root"] = 1000; }

  void apply(const AppMessage& m) {
    // body: "transfer <from> <to> <amount>"
    char from[32], to[32];
    long amount = 0;
    if (std::sscanf(m.body.c_str(), "transfer %31s %31s %ld", from, to,
                    &amount) != 3)
      return;
    if (balances_[from] >= amount) {
      balances_[from] -= amount;
      balances_[to] += amount;
      ++applied_;
    } else {
      ++rejected_;
    }
  }

  [[nodiscard]] std::string fingerprint() const {
    std::string out;
    for (const auto& [acc, bal] : balances_)
      out += acc + ":" + std::to_string(bal) + ";";
    return out;
  }
  [[nodiscard]] int applied() const { return applied_; }
  [[nodiscard]] int rejected() const { return rejected_; }

 private:
  std::map<std::string, long> balances_;
  int applied_ = 0;
  int rejected_ = 0;
};

}  // namespace

int main() {
  core::RunConfig cfg;
  cfg.groups = 2;
  cfg.procsPerGroup = 2;
  cfg.protocol = core::ProtocolKind::kA2;
  cfg.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  cfg.seed = 11;
  core::Experiment ex(cfg);

  std::vector<Ledger> ledgers(4);
  for (ProcessId p = 0; p < 4; ++p)
    ex.node(p).onADeliver([p, &ledgers](const AppMsgPtr& m) {
      ledgers[static_cast<size_t>(p)].apply(*m);
    });

  std::printf("WAN ledger: 2 regions x 2 replicas, A2 atomic broadcast\n\n");

  // Concurrent conflicting transfers from both regions: "root" funds three
  // accounts, the accounts shuffle money among themselves. Order matters —
  // an early transfer out of an unfunded account must be rejected the SAME
  // WAY everywhere.
  const char* ops[] = {
      "transfer root alice 300",  "transfer root bob 300",
      "transfer alice carol 150", "transfer bob alice 100",
      "transfer carol bob 50",    "transfer alice root 200",
      "transfer bob carol 250",   "transfer carol alice 75",
      "transfer dave root 10",    // always rejected: dave is unfunded
      "transfer root dave 20",
  };
  std::vector<MsgId> ids;
  for (size_t i = 0; i < std::size(ops); ++i) {
    const auto sender = static_cast<ProcessId>(i % 4);
    ids.push_back(ex.castAllAt(10 * kMs + static_cast<SimTime>(i) * 35 * kMs,
                               sender, ops[i]));
  }

  auto r = ex.run();

  std::printf("replica ledgers after %zu transfers:\n", std::size(ops));
  for (ProcessId p = 0; p < 4; ++p)
    std::printf("  p%d (region %d): %s applied=%d rejected=%d\n", p,
                ex.runtime().topology().group(p),
                ledgers[static_cast<size_t>(p)].fingerprint().c_str(),
                ledgers[static_cast<size_t>(p)].applied(),
                ledgers[static_cast<size_t>(p)].rejected());

  bool identical = true;
  for (ProcessId p = 1; p < 4; ++p)
    identical &= ledgers[static_cast<size_t>(p)].fingerprint() ==
                 ledgers[0].fingerprint();
  std::printf("\nledger convergence: %s\n", identical ? "OK" : "DIVERGED");

  int64_t minDeg = INT64_MAX;
  double wallSum = 0;
  for (MsgId id : ids) {
    minDeg = std::min(minDeg, r.trace.latencyDegree(id).value_or(99));
    wallSum += static_cast<double>(r.trace.wallLatency(id).value_or(0)) / kMs;
  }
  std::printf("best latency degree over the stream: %lld (A2's optimum: 1)\n",
              static_cast<long long>(minDeg));
  std::printf("mean commit latency: %.1fms (one-way WAN delay: ~100ms)\n",
              wallSum / static_cast<double>(std::size(ops)));

  auto violations = r.checkAtomicSuite();
  std::printf("atomic broadcast properties: %s\n",
              violations.empty() ? "OK" : violations[0].c_str());
  return (identical && violations.empty()) ? 0 : 1;
}
