// Quickstart: atomically multicast a handful of messages across a simulated
// WAN with Algorithm A1 and inspect delivery order, latency degree and
// inter-group traffic.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"

using namespace wanmc;

int main() {
  // A WAN of 3 groups ("data centers") with 2 processes each. Intra-group
  // links: 1-2ms; inter-group links: 95-110ms.
  core::RunConfig cfg;
  cfg.groups = 3;
  cfg.procsPerGroup = 2;
  cfg.protocol = core::ProtocolKind::kA1;
  cfg.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  cfg.seed = 2024;

  core::Experiment ex(cfg);

  // Print every A-Delivery as the application sees it.
  for (ProcessId p = 0; p < 6; ++p) {
    ex.node(p).onADeliver([p, &ex](const AppMsgPtr& m) {
      std::printf("  t=%6.1fms  p%d  A-Deliver m%llu (\"%s\") dest=%s\n",
                  static_cast<double>(ex.runtime().now()) / kMs, p,
                  static_cast<unsigned long long>(m->id), m->body.c_str(),
                  m->dest.str().c_str());
    });
  }

  std::printf("multicasting 4 messages with overlapping destinations...\n");
  auto m1 = ex.castAt(10 * kMs, 0, GroupSet::of({0, 1}), "reserve-item");
  auto m2 = ex.castAt(12 * kMs, 2, GroupSet::of({1, 2}), "charge-card");
  auto m3 = ex.castAt(14 * kMs, 4, GroupSet::of({0, 1, 2}), "audit-log");
  auto m4 = ex.castAt(16 * kMs, 1, GroupSet::of({0}), "local-note");

  auto r = ex.run();

  std::printf("\nper-message latency degree (inter-group delays):\n");
  for (MsgId id : {m1, m2, m3, m4}) {
    std::printf("  m%llu: degree %lld, wall latency %.1fms\n",
                static_cast<unsigned long long>(id),
                static_cast<long long>(*r.trace.latencyDegree(id)),
                static_cast<double>(*r.trace.wallLatency(id)) / kMs);
  }

  std::printf("\ninter-group messages: %llu (protocol %llu, consensus %llu, "
              "rmcast %llu)\n",
              static_cast<unsigned long long>(r.traffic.interAlgorithmic()),
              static_cast<unsigned long long>(
                  r.traffic.at(Layer::kProtocol).inter),
              static_cast<unsigned long long>(
                  r.traffic.at(Layer::kConsensus).inter),
              static_cast<unsigned long long>(
                  r.traffic.at(Layer::kReliableMulticast).inter));

  auto violations = r.checkAtomicSuite();
  std::printf("safety checks: %s\n",
              violations.empty() ? "all passed" : violations[0].c_str());
  return violations.empty() ? 0 : 1;
}
