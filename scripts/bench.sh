#!/usr/bin/env bash
# Simulator hot-path benchmark runner.
#
#   scripts/bench.sh                     full run, writes BENCH_PR10.json
#   scripts/bench.sh --quick             reduced budget (CI smoke)
#   scripts/bench.sh --check FILE        also gate events/sec against FILE
#                                        (exit 1 on >20% regression, on
#                                        metrics-recorder or idle-bootstrap
#                                        overhead >5%, or on
#                                        channel-substrate overhead >10%)
#   OUT=path scripts/bench.sh            write the report elsewhere
#
# All flags are passed through to bench_sim_core (--jobs N, etc.).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

# Default report path: the checked-in baseline for full runs, but a scratch
# file when gating (--check) so the baseline is never clobbered by the run
# that is being compared against it.
if [[ -z "${OUT:-}" ]]; then
  case " $* " in
    *" --check "*) OUT="$BUILD_DIR/bench_report.json" ;;
    *)             OUT="BENCH_PR10.json" ;;
  esac
fi

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_sim_core >/dev/null

exec "$BUILD_DIR/bench_sim_core" --out "$OUT" "$@"
