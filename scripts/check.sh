#!/usr/bin/env bash
# Convenience wrapper around the tier-1 verify command:
#   scripts/check.sh            configure + build + full ctest
#   scripts/check.sh unit       ... only the fast unit tier
#   scripts/check.sh scenario   ... only the seed-sweep / matrix tier
#   scripts/check.sh bench      ... bench smoke + perf-regression gate
#   scripts/check.sh sanitize   ... ASan+UBSan Debug build, unit+scenario
#                                   (the CI `sanitize` job, locally)
set -euo pipefail

cd "$(dirname "$0")/.."

TIER="${1:-all}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

if [[ "$TIER" != "sanitize" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
fi

case "$TIER" in
  all)      ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" ;;
  unit)     ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit ;;
  scenario) ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L scenario ;;
  bench)
    OUT="$BUILD_DIR/bench_smoke.json" scripts/bench.sh --quick \
      --check BENCH_PR7.json
    ;;
  sanitize)
    ASAN_DIR="${ASAN_DIR:-build-asan}"
    cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=Debug -DWANMC_SANITIZE=ON \
      -DWANMC_BUILD_BENCH=OFF -DWANMC_BUILD_EXAMPLES=OFF
    cmake --build "$ASAN_DIR" -j "$JOBS"
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"
    ;;
  *)
    echo "usage: $0 [all|unit|scenario|bench|sanitize]" >&2
    exit 2
    ;;
esac
