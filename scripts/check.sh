#!/usr/bin/env bash
# Convenience wrapper around the tier-1 verify command:
#   scripts/check.sh            configure + build + full ctest
#   scripts/check.sh unit       ... only the fast unit tier
#   scripts/check.sh scenario   ... only the seed-sweep / matrix tier
#   scripts/check.sh bench      ... bench smoke + perf-regression gate
set -euo pipefail

cd "$(dirname "$0")/.."

TIER="${1:-all}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"

case "$TIER" in
  all)      ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" ;;
  unit)     ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit ;;
  scenario) ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L scenario ;;
  bench)
    OUT="$BUILD_DIR/bench_smoke.json" scripts/bench.sh --quick \
      --check BENCH_PR4.json
    ;;
  *)
    echo "usage: $0 [all|unit|scenario|bench]" >&2
    exit 2
    ;;
esac
