#!/usr/bin/env bash
# Convenience wrapper around the tier-1 verify command:
#   scripts/check.sh            configure + build + full ctest
#   scripts/check.sh unit       ... only the fast unit tier
#   scripts/check.sh scenario   ... only the seed-sweep / matrix tier
#   scripts/check.sh bench      ... bench smoke + perf-regression gate
#   scripts/check.sh sanitize   ... ASan+UBSan Debug build, unit+scenario
#                                   (the CI `sanitize` job, locally)
#   scripts/check.sh lint       ... wanmc-lint determinism rules (self-test
#                                   + live tree) and clang-tidy, if installed
#   scripts/check.sh tsan       ... TSan build; the threaded surface only:
#                                   jobs=4 golden matrix, parallel-vs-serial
#                                   sweep equality, 100-seed sweep
set -euo pipefail

cd "$(dirname "$0")/.."

TIER="${1:-all}"
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

if [[ "$TIER" != "sanitize" && "$TIER" != "tsan" && "$TIER" != "lint" ]]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$JOBS"
fi

case "$TIER" in
  all)      ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" ;;
  unit)     ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L unit ;;
  scenario) ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -L scenario ;;
  bench)
    OUT="$BUILD_DIR/bench_smoke.json" scripts/bench.sh --quick \
      --check BENCH_PR10.json
    ;;
  sanitize)
    ASAN_DIR="${ASAN_DIR:-build-asan}"
    cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=Debug \
      -DWANMC_SANITIZE=address \
      -DWANMC_BUILD_BENCH=OFF -DWANMC_BUILD_EXAMPLES=OFF
    cmake --build "$ASAN_DIR" -j "$JOBS"
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"
    ;;
  lint)
    PY="${PYTHON:-python3}"
    "$PY" tools/lint/wanmc_lint.py --self-test
    "$PY" tools/lint/wanmc_lint.py
    if command -v clang-tidy >/dev/null 2>&1; then
      # clang-tidy needs compile_commands.json: configure (no build) is
      # enough, the checks run on source.
      cmake -B "$BUILD_DIR" -S . >/dev/null
      # Headers are covered through the TUs that include them
      # (HeaderFilterRegex in .clang-tidy).
      find src examples -name '*.cpp' -print0 | xargs -0 -P "$JOBS" -n 8 \
        clang-tidy -p "$BUILD_DIR" --quiet
    else
      echo "clang-tidy not installed - skipping the tidy half of the lint tier"
    fi
    ;;
  tsan)
    TSAN_DIR="${TSAN_DIR:-build-tsan}"
    cmake -B "$TSAN_DIR" -S . -DWANMC_SANITIZE=thread \
      -DWANMC_BUILD_BENCH=OFF -DWANMC_BUILD_EXAMPLES=OFF
    cmake --build "$TSAN_DIR" -j "$JOBS"
    # WANMC_JOBS=4 forces the worker pool on even on small runners, so the
    # golden matrix and the sweeps genuinely exercise the threaded paths.
    WANMC_JOBS=4 "$TSAN_DIR/test_golden_fingerprints"
    WANMC_JOBS=4 "$TSAN_DIR/test_seed_sweep"
    # The exec::ThreadedRuntime backend: one matrix cell per stack on both
    # backends, same safety properties demanded of each (the CI
    # threaded-smoke job).
    "$TSAN_DIR/test_exec_backends"
    ;;
  *)
    echo "usage: $0 [all|unit|scenario|bench|sanitize|lint|tsan]" >&2
    exit 2
    ;;
esac
