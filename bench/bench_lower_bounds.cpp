// Empirical check of the paper's §3 lower bounds:
//
//   Prop. 3.1 + 3.2:  no GENUINE atomic multicast delivers a message
//                     addressed to >= 2 groups with latency degree < 2;
//   Prop. 3.1 + 3.3:  no QUIESCENT atomic broadcast delivers a message cast
//                     after quiescence with latency degree < 2.
//
// A simulator cannot prove an impossibility, but it can fail to refute it
// over a large space of runs: this bench sweeps every genuine multicast
// implementation across topologies, destination-set sizes, sender
// placements and seeds, histograms the observed latency degrees of
// multi-group messages, and reports the minimum. It does the same for the
// reactive-cast scenario of every (quiescent) broadcast implementation.
// The non-genuine and non-quiescent algorithms are included as the
// "control group": they are exactly the ones that beat the bounds.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct Sweep {
  int64_t minDegree = INT64_MAX;
  uint64_t runs = 0;
  std::map<int64_t, uint64_t> histogram;
  bool allSafe = true;
};

// Multi-group multicasts, one isolated message per run.
Sweep sweepMulticast(core::ProtocolKind kind) {
  Sweep s;
  for (int groups : {2, 3, 4}) {
    for (int d : {1, 2, 3}) {
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        for (int destGroups : {2, groups}) {
          if (destGroups > groups) continue;
          core::RunConfig cfg = (seed % 2 == 0)
                                    ? fixedConfig(kind, groups, d, seed)
                                    : baseConfig(kind, groups, d, seed);
          core::Experiment ex(cfg);
          GroupSet dest;
          for (GroupId g = 0; g < destGroups; ++g) dest.add(g);
          const auto sender = static_cast<ProcessId>(
              (seed % static_cast<uint64_t>(groups * d)));
          auto id = ex.castAt(kMs, sender, dest, "lb");
          auto r = ex.run(900 * kSec);
          s.allSafe = s.allSafe && r.checkAtomicSuite().empty();
          if (auto deg = r.trace.latencyDegree(id)) {
            ++s.runs;
            ++s.histogram[*deg];
            s.minDegree = std::min(s.minDegree, *deg);
          }
        }
      }
    }
  }
  return s;
}

// Reactive-cast broadcasts: one message into a fully quiescent system.
Sweep sweepReactiveBroadcast(core::ProtocolKind kind) {
  Sweep s;
  for (int groups : {2, 3}) {
    for (int d : {1, 2}) {
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        core::RunConfig cfg = (seed % 2 == 0)
                                  ? fixedConfig(kind, groups, d, seed)
                                  : baseConfig(kind, groups, d, seed);
        cfg.merge.heartbeatPeriod = 200 * kMs;
        core::Experiment ex(cfg);
        const auto sender = static_cast<ProcessId>(
            seed % static_cast<uint64_t>(groups * d));
        // Cast well after t=0: any round the algorithm might have run at
        // startup is long over; processes are reactive (Def. 3.1).
        auto id = ex.castAllAt(2 * kSec + static_cast<SimTime>(seed) * kMs,
                               sender, "rb");
        auto r = ex.run(900 * kSec);
        s.allSafe = s.allSafe && r.checkAtomicSuite().empty();
        if (auto deg = r.trace.latencyDegree(id)) {
          ++s.runs;
          ++s.histogram[*deg];
          s.minDegree = std::min(s.minDegree, *deg);
        }
      }
    }
  }
  return s;
}

void printHistogram(const Sweep& s) {
  std::printf("runs=%3llu  min=%lld  histogram: ",
              static_cast<unsigned long long>(s.runs),
              static_cast<long long>(s.minDegree));
  for (const auto& [deg, n] : s.histogram)
    std::printf("Delta=%lld:%llu  ", static_cast<long long>(deg),
                static_cast<unsigned long long>(n));
  std::printf("%s\n", s.allSafe ? "" : " [SAFETY VIOLATION]");
}

void printReproduction() {
  std::printf("\n=== Prop. 3.1/3.2 — genuine multicast to >= 2 groups: "
              "Delta >= 2 ===\n");
  for (auto kind :
       {core::ProtocolKind::kA1, core::ProtocolKind::kFritzke98,
        core::ProtocolKind::kDelporte00, core::ProtocolKind::kRodrigues98}) {
    std::printf("  %-34s", core::protocolName(kind));
    printHistogram(sweepMulticast(kind));
  }
  std::printf("  control (non-genuine, may beat the bound):\n");
  {
    std::printf("  %-34s", core::protocolName(core::ProtocolKind::kViaBcast));
    // Warm via-bcast can hit 1 — measured separately on a warm stream.
    auto s = runBroadcastStream(
        fixedConfig(core::ProtocolKind::kViaBcast, 2, 2, 1), 25, 40 * kMs);
    std::printf("warm-stream min Delta = %lld (beats the genuine bound)\n",
                static_cast<long long>(s.minDegree));
  }

  std::printf("\n=== Prop. 3.1/3.3 — quiescent broadcast, reactive cast: "
              "Delta >= 2 ===\n");
  for (auto kind : {core::ProtocolKind::kA2, core::ProtocolKind::kSousa02,
                    core::ProtocolKind::kVicente02}) {
    std::printf("  %-34s", core::protocolName(kind));
    printHistogram(sweepReactiveBroadcast(kind));
  }
  std::printf("  control (never quiescent, beats the bound):\n");
  {
    std::printf("  %-34s",
                core::protocolName(core::ProtocolKind::kDetMerge00));
    auto cfg = fixedConfig(core::ProtocolKind::kDetMerge00, 2, 1, 1);
    cfg.merge.heartbeatPeriod = 200 * kMs;
    core::Experiment ex(cfg);
    auto id = ex.castAllAt(2 * kSec + 100 * kMs, 0, "m");
    auto r = ex.run(10 * kSec);
    std::printf("reactive-cast Delta = %lld (its heartbeats never stop)\n",
                static_cast<long long>(r.trace.latencyDegree(id).value_or(-1)));
  }
  std::printf("\n");
}

void BM_LowerBoundSweep(benchmark::State& state) {
  Sweep s;
  for (auto _ : state) {
    s = sweepMulticast(core::ProtocolKind::kA1);
    benchmark::DoNotOptimize(s);
  }
  state.counters["min_degree"] = static_cast<double>(s.minDegree);
}
BENCHMARK(BM_LowerBoundSweep);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
