// Simulator hot-path microbenchmark + regression gate (PR 2).
//
// Measures the simulation core itself — scheduler throughput, multicast
// fan-out/delivery machinery, the DetMerge00 heartbeat storm, the
// open-loop workload storm with the streaming metrics recorder off AND on
// (their ratio is the recorder-overhead figure), the same storm with the
// reliable channel substrate off AND on (the per-event throughput ratio is
// the channel-overhead figure), the storm with the bootstrap plane armed
// but idle (the fault-free cost of keeping every process rejoin-capable),
// the batch-size ladder (batching off / max 8 / max 64 — the batch64/
// batch0 goodput ratio is the amortization headline), and the 100-seed
// sweep wall-clock (serial and thread-pool; the thread-pool leg is marked
// skipped on a single-core box) — and emits a machine-readable JSON report
// (BENCH_PR9.json is the checked-in baseline). Allocation counts come from
// a global operator new hook, so every figure carries an allocs-per-event
// column.
//
//   bench_sim_core [--quick] [--jobs N] [--out FILE] [--check BASELINE]
//
// --quick   reduced iteration budget (CI smoke).
// --check   compare events/sec fields against a baseline JSON; exit 1 if
//           any rate regressed by more than 20%, if the metrics recorder
//           or the idle bootstrap plane costs more than 5% of sim-core
//           events/sec, or if the channel substrate costs more than 10%
//           per fired event.
//           Wall-clock fields are machine-dependent and are NOT gated.
//
// Intentionally free of the google-benchmark dependency: it must build and
// run everywhere the library does, including the CI smoke job.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/runtime.hpp"
#include "testing/scenario.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook.
// ---------------------------------------------------------------------------

static std::atomic<uint64_t> g_allocs{0};

// GCC 12's -Wmismatched-new-delete flags std::free in the replaced
// operator delete when it can see an allocation site inlined through the
// std allocator — a false positive here: the replaced operator new
// allocates with std::malloc, so free IS its deallocator.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace wanmc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One repeat of a measured body, with the pure-ALU calibration rate
// (SplitMix64 draws/sec) sampled immediately before it: on shared/noisy
// machines a slow window hits both numbers, so their ratio stays stable.
struct Sample {
  double secs = 0;
  uint64_t allocs = 0;
  double calib = 0;  // draws/sec right before this repeat
};

double calibrationRate() {
  wanmc::SplitMix64 rng(1);
  uint64_t sink = 0;
  const uint64_t kDraws = 20'000'000;
  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < kDraws; ++i) sink += rng.next();
  const double secs = secondsSince(t0);
  // Keep the loop observable.
  if (sink == 42) std::fprintf(stderr, "%llu\n", (unsigned long long)sink);
  return static_cast<double>(kDraws) / secs;
}

template <class F>
std::vector<Sample> measure(F&& body, int repeats) {
  std::vector<Sample> out;
  for (int r = 0; r < repeats; ++r) {
    Sample s;
    s.calib = calibrationRate();
    const uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    body();
    s.secs = secondsSince(t0);
    s.allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    out.push_back(s);
  }
  return out;
}

// Fastest repeat: external interference only ever slows a run down, so the
// best sample is the most reproducible point estimate.
const Sample& bestOf(const std::vector<Sample>& samples) {
  size_t best = 0;
  for (size_t i = 1; i < samples.size(); ++i)
    if (samples[i].secs < samples[best].secs) best = i;
  return samples[best];
}

// Median calibration-normalized rate across repeats — the reported
// figure and the baseline side of the --check gate.
// NOT the max: "interference only slows things down" holds for wall
// time but not for the rate/calib RATIO — a noise window that hits the
// calibration loop while missing the measured body inflates the ratio,
// and the max estimator then picks exactly that corrupted repeat
// (observed: a chain-bench repeat with calib at 60% of its neighbors
// producing a norm 50% above every clean run). The median discards a
// mismatched pair on either side.
double normRate(std::vector<Sample> samples, double events) {
  std::vector<double> norms;
  for (const Sample& s : samples)
    if (s.calib > 0 && s.secs > 0) norms.push_back(events / s.secs / s.calib);
  if (norms.empty()) return 0;
  std::sort(norms.begin(), norms.end());
  return norms[norms.size() / 2];
}

// Best normalized rate across repeats — the CURRENT side of the --check
// gate (the baseline side is the median above). Asymmetric on purpose,
// like the overhead floor gates: a genuine regression is systematic and
// shows in every repeat, so the best one still catches it, while a noisy
// window on the gating run can only make repeats slower — taking the
// best keeps one bad window from flaking CI. (The max-inflation hazard
// the median exists for is harmless here: it can only turn a marginal
// fail into a pass, never corrupt the pinned baseline.)
double peakNorm(const std::vector<Sample>& samples, double events) {
  double best = 0;
  for (const Sample& s : samples)
    if (s.calib > 0 && s.secs > 0)
      best = std::max(best, events / s.secs / s.calib);
  return best;
}

// ---------------------------------------------------------------------------
// Benches.
// ---------------------------------------------------------------------------

struct Result {
  std::string name;
  double eventsPerSec = 0;   // 0: not an events/sec bench
  double allocsPerEvent = -1;
  double wallMs = 0;
  double normRate = 0;       // eventsPerSec / calibration draws-per-sec
                             // (median repeat; what the baseline pins)
  double normBest = 0;       // best repeat; the gate's current side
  double goodputPerSec = 0;  // completed casts per wall-second (0: n/a)
  // A bench that could not run meaningfully in this environment (e.g. the
  // thread-pool sweep on a single-core box). Emitted to the JSON so the
  // gate can tell "skipped" from "regressed to nothing".
  bool skipped = false;
  std::string note;
};

// 1. Raw scheduler: 64 self-rescheduling POD chains (bucket-local pattern).
struct Chain {
  wanmc::sim::Scheduler* s;
  uint64_t* fired;
  uint64_t total;
  void operator()() const {
    if (++*fired < total) s->at(s->now() + 1, *this);
  }
};

Result benchSchedulerChain(uint64_t events, int repeats) {
  Result r;
  r.name = "scheduler_chain";
  r.note = "self-rescheduling POD events, single bucket";
  uint64_t fired = 0;
  const auto samples = measure(
      [&] {
        wanmc::sim::Scheduler s;
        fired = 0;
        for (int i = 0; i < 64; ++i) s.at(i, Chain{&s, &fired, events});
        s.run();
      },
      repeats);
  const Sample& m = bestOf(samples);
  r.eventsPerSec = static_cast<double>(fired) / m.secs;
  r.allocsPerEvent = static_cast<double>(m.allocs) / static_cast<double>(fired);
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(samples, static_cast<double>(fired));
  r.normBest = peakNorm(samples, static_cast<double>(fired));
  return r;
}

// 2. Scheduler under the WAN delay profile: events scatter across the
// calendar ring the way real runs do (1-2ms intra, 95-110ms inter).
struct Scatter {
  wanmc::sim::Scheduler* s;
  wanmc::SplitMix64* rng;
  uint64_t* fired;
  uint64_t total;
  void operator()() const {
    if (++*fired >= total) return;
    const uint64_t v = rng->next();
    const wanmc::SimTime d =
        (v % 8) < 2 ? 1000 + static_cast<wanmc::SimTime>(v % 1000)
                    : 95000 + static_cast<wanmc::SimTime>(v % 15000);
    s->at(s->now() + d, *this);
  }
};

Result benchSchedulerScatter(uint64_t events, int repeats) {
  Result r;
  r.name = "scheduler_scatter";
  r.note = "self-rescheduling POD events, WAN delay scatter";
  uint64_t fired = 0;
  const auto samples = measure(
      [&] {
        wanmc::sim::Scheduler s;
        wanmc::SplitMix64 rng(7);
        fired = 0;
        for (int i = 0; i < 64; ++i)
          s.at(i, Scatter{&s, &rng, &fired, events});
        s.run();
      },
      repeats);
  const Sample& m = bestOf(samples);
  r.eventsPerSec = static_cast<double>(fired) / m.secs;
  r.allocsPerEvent = static_cast<double>(m.allocs) / static_cast<double>(fired);
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(samples, static_cast<double>(fired));
  r.normBest = peakNorm(samples, static_cast<double>(fired));
  return r;
}

// 3. Full runtime machinery: 3x3 WAN topology, every process multicasts to
// all others each round — measures the per-delivery cost of the network
// path (fan-out records, latency draws, Lamport stamping, dispatch).
struct ProbePayload final : wanmc::Payload {
  [[nodiscard]] wanmc::Layer layer() const override {
    return wanmc::Layer::kProtocol;
  }
  [[nodiscard]] std::string debugString() const override { return "bench"; }
};

class ProbeNode final : public wanmc::sim::Node {
 public:
  using wanmc::sim::Node::Node;
  uint64_t got = 0;
  void onMessage(wanmc::ProcessId, const wanmc::PayloadPtr&) override {
    ++got;
  }
};

Result benchMulticastStorm(int rounds, int repeats) {
  Result r;
  r.name = "multicast_storm";
  r.note = "3x3 WAN all-to-all fan-out, runtime delivery path";
  const int kProcs = 9;
  uint64_t deliveries = 0;
  const auto samples = measure(
      [&] {
        wanmc::sim::Runtime rt(
            wanmc::Topology(3, 3),
            wanmc::sim::LatencyModel{wanmc::kMs, 2 * wanmc::kMs,
                                     95 * wanmc::kMs, 110 * wanmc::kMs},
            1);
        for (wanmc::ProcessId p = 0; p < kProcs; ++p)
          rt.attach(p, std::make_unique<ProbeNode>(rt, p));
        rt.start();
        auto payload = std::make_shared<const ProbePayload>();
        std::vector<wanmc::ProcessId> tos;
        tos.reserve(kProcs - 1);
        for (int round = 0; round < rounds; ++round) {
          for (wanmc::ProcessId p = 0; p < kProcs; ++p) {
            tos.clear();
            for (wanmc::ProcessId q = 0; q < kProcs; ++q)
              if (q != p) tos.push_back(q);
            rt.multicast(p, tos, payload);
          }
          rt.run();
        }
        deliveries =
            static_cast<uint64_t>(rounds) * kProcs * (kProcs - 1);
      },
      repeats);
  const Sample& m = bestOf(samples);
  r.eventsPerSec = static_cast<double>(deliveries) / m.secs;
  r.allocsPerEvent =
      static_cast<double>(m.allocs) / static_cast<double>(deliveries);
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(samples, static_cast<double>(deliveries));
  r.normBest = peakNorm(samples, static_cast<double>(deliveries));
  return r;
}

// 4 + 5. The DetMerge00 heartbeat storm: the scenario the ROADMAP singled
// out as dominating test wall-clock. One cell (single seed) and the full
// 100-seed sweep, serial and with the thread pool.
wanmc::testing::Scenario detMergeScenario() {
  wanmc::testing::Scenario s;
  s.name = "bench/detmerge";
  s.config.groups = 3;
  s.config.procsPerGroup = 3;
  s.config.protocol = wanmc::core::ProtocolKind::kDetMerge00;
  s.latency = wanmc::testing::LatencyPreset::kWan;
  s.workload = wanmc::workload::Spec::closedLoop(6, 80 * wanmc::kMs, 2);
  s.runUntil = 900 * wanmc::kSec;
  s.withDefaultExpectations();
  return s;
}

Result benchHeartbeatStorm(int repeats) {
  Result r;
  r.name = "heartbeat_storm";
  r.note = "one DetMerge00 seed, 900 sim-seconds of heartbeats";
  // ~365k scheduler events per run (9 procs, 200ms period, 8-way fan-out).
  const double kEventsPerRun = 364'500.0;
  const auto samples = measure(
      [&] {
        auto res = wanmc::testing::ScenarioRunner(detMergeScenario()).run();
        if (!res.ok()) std::fprintf(stderr, "%s\n", res.report().c_str());
      },
      repeats);
  const Sample& m = bestOf(samples);
  r.eventsPerSec = kEventsPerRun / m.secs;
  r.allocsPerEvent = static_cast<double>(m.allocs) / kEventsPerRun;
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(samples, kEventsPerRun);
  r.normBest = peakNorm(samples, kEventsPerRun);
  return r;
}

// 6. Open-loop workload storm (PR 3): A1 on a 3x3 WAN under Poisson
// arrivals far denser than the delivery latency — the reactive generator
// keeps exactly one pending arrival while hundreds of multicasts overlap.
// Measures end-to-end simulator events/sec (scheduler + network + protocol
// + workload generation) under sustained overload. With `metrics` on, the
// streaming recorder (PR 4) observes every cast/delivery/send — the pair
// of runs is the recorder-overhead measurement.
uint64_t runOpenLoopStorm(int casts, bool metrics,
                          wanmc::SimTime batchWindow = 0, int batchMax = 0,
                          bool channels = false, bool bootstrap = false) {
  wanmc::core::RunConfig cfg;
  cfg.groups = 3;
  cfg.procsPerGroup = 3;
  cfg.protocol = wanmc::core::ProtocolKind::kA1;
  cfg.latency = wanmc::sim::LatencyModel{
      wanmc::kMs, 2 * wanmc::kMs, 95 * wanmc::kMs, 110 * wanmc::kMs};
  cfg.seed = 1;
  cfg.metrics = metrics;
  cfg.stack.batchWindow = batchWindow;
  cfg.stack.batchMaxSize = batchMax;
  cfg.stack.reliableChannels = channels;
  cfg.stack.bootstrap.armed = bootstrap;
  cfg.workload =
      wanmc::workload::Spec::openLoopPoisson(casts, 3 * wanmc::kMs, 2);
  wanmc::core::Experiment ex(cfg);
  // Drive the runtime directly: the raw fired-event count is the
  // denominator of the rate.
  ex.runtime().start();
  return ex.runtime().run(600 * wanmc::kSec);
}

// The off/on repeats are INTERLEAVED (off, on, off, on, ...) so that a
// noisy wall-clock window on a shared machine degrades both sides of the
// recorder-overhead ratio instead of skewing it — back-to-back blocks were
// observed ±25% apart on the quick budget, far wider than the 5% gate.
// See benchMetricsOverheadPair: `median` is the reported recorder-overhead
// figure, `floor` the noise-robust lower estimate the --check gate uses.
struct OverheadPair {
  double median = 0;
  double floor = 0;
};

std::vector<Result> benchMetricsOverheadPair(int casts, int repeats,
                                             OverheadPair* overheadOut) {
  std::vector<Sample> off, on;
  uint64_t fired = 0;
  for (int r = 0; r < repeats; ++r) {
    for (bool metrics : {false, true}) {
      auto s = measure([&] { fired = runOpenLoopStorm(casts, metrics); }, 1);
      (metrics ? on : off).push_back(s.front());
    }
  }
  // Two estimates off the per-pair wall-time ratios. The REPORTED figure
  // is the median pair (each adjacent off/on pair shares its noise
  // window; the median discards pairs where load shifted mid-pair). The
  // GATED figure is the cleanest pair (largest off/on ratio): a real
  // recorder regression is systematic — it shows in EVERY pair — while
  // interference is one-sided, so the floor estimate cannot flake the CI
  // gate yet still catches a recorder that is genuinely too slow.
  std::vector<double> ratios;
  for (size_t i = 0; i < off.size() && i < on.size(); ++i)
    if (on[i].secs > 0) ratios.push_back(off[i].secs / on[i].secs);
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    overheadOut->median = 1.0 - ratios[ratios.size() / 2];
    overheadOut->floor = 1.0 - ratios.back();
  }
  auto finish = [&](const std::vector<Sample>& samples, const char* name,
                    const char* tag) {
    Result r;
    r.name = name;
    r.note = "A1 3x3 WAN, Poisson arrivals mean 3ms, " +
             std::to_string(casts) + " casts, metrics " + tag;
    const Sample& m = bestOf(samples);
    r.eventsPerSec = static_cast<double>(fired) / m.secs;
    r.allocsPerEvent =
        static_cast<double>(m.allocs) / static_cast<double>(fired);
    r.wallMs = m.secs * 1e3;
    r.normRate = normRate(samples, static_cast<double>(fired));
    r.normBest = peakNorm(samples, static_cast<double>(fired));
    return r;
  };
  return {finish(off, "open_loop_storm", "off"),
          finish(on, "open_loop_storm_metrics", "on")};
}

// 6b. Channel-overhead pair (PR 7): the identical open-loop storm with the
// reliable channel substrate armed (zero loss). Arming channels roughly
// DOUBLES the fired-event count by design — every DATA copy earns a
// cumulative ACK, plus retransmit-timer arm/cancel events — so comparing
// wall-clock for the same cast budget would gate the intentional extra
// traffic, not the substrate. The figure here is therefore the per-event
// throughput ratio: events/sec with channels on vs off, interleaved
// off/on pairs exactly like the metrics pair above (median reported,
// cleanest-pair floor gated — the channel plane may cost at most 10% of
// sim-core events/sec).
Result benchChannelOverheadPair(int casts, int repeats,
                                OverheadPair* overheadOut) {
  std::vector<Sample> on;
  uint64_t firedOn = 0;
  std::vector<double> ratios;
  for (int r = 0; r < repeats; ++r) {
    double rate[2] = {0, 0};
    for (bool channels : {false, true}) {
      uint64_t fired = 0;
      auto s = measure(
          [&] {
            fired = runOpenLoopStorm(casts, /*metrics=*/false,
                                     /*batchWindow=*/0, /*batchMax=*/0,
                                     channels);
          },
          1);
      if (s.front().secs > 0)
        rate[channels ? 1 : 0] =
            static_cast<double>(fired) / s.front().secs;
      if (channels) {
        on.push_back(s.front());
        firedOn = fired;
      }
    }
    if (rate[0] > 0 && rate[1] > 0) ratios.push_back(rate[1] / rate[0]);
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    overheadOut->median = 1.0 - ratios[ratios.size() / 2];
    overheadOut->floor = 1.0 - ratios.back();
  }
  Result r;
  r.name = "open_loop_storm_channels";
  r.note = "A1 3x3 WAN, Poisson arrivals mean 3ms, " +
           std::to_string(casts) +
           " casts, reliable channels armed, zero loss";
  const Sample& m = bestOf(on);
  r.eventsPerSec = static_cast<double>(firedOn) / m.secs;
  r.allocsPerEvent =
      static_cast<double>(m.allocs) / static_cast<double>(firedOn);
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(on, static_cast<double>(firedOn));
  r.normBest = peakNorm(on, static_cast<double>(firedOn));
  return r;
}

// 6c. Bootstrap-overhead pair (PR 9): the identical open-loop storm with
// the bootstrap plane armed but idle (no crash ever happens, so no rejoin
// handshake runs). Arming builds the per-process plane and threads the
// snapshot hooks through every stack — the pair bounds what fault-free
// runs pay for keeping every process rejoin-capable. Interleaved off/on
// pairs like the metrics pair (median reported, cleanest-pair floor
// gated at 5%: an idle plane must stay off the hot path).
Result benchBootstrapOverheadPair(int casts, int repeats,
                                  OverheadPair* overheadOut) {
  std::vector<Sample> on;
  uint64_t firedOn = 0;
  std::vector<double> ratios;
  for (int r = 0; r < repeats; ++r) {
    double rate[2] = {0, 0};
    for (bool bootstrap : {false, true}) {
      uint64_t fired = 0;
      auto s = measure(
          [&] {
            fired = runOpenLoopStorm(casts, /*metrics=*/false,
                                     /*batchWindow=*/0, /*batchMax=*/0,
                                     /*channels=*/false, bootstrap);
          },
          1);
      if (s.front().secs > 0)
        rate[bootstrap ? 1 : 0] =
            static_cast<double>(fired) / s.front().secs;
      if (bootstrap) {
        on.push_back(s.front());
        firedOn = fired;
      }
    }
    if (rate[0] > 0 && rate[1] > 0) ratios.push_back(rate[1] / rate[0]);
  }
  if (!ratios.empty()) {
    std::sort(ratios.begin(), ratios.end());
    overheadOut->median = 1.0 - ratios[ratios.size() / 2];
    overheadOut->floor = 1.0 - ratios.back();
  }
  Result r;
  r.name = "open_loop_storm_bootstrap";
  r.note = "A1 3x3 WAN, Poisson arrivals mean 3ms, " +
           std::to_string(casts) +
           " casts, bootstrap plane armed, no recoveries";
  const Sample& m = bestOf(on);
  r.eventsPerSec = static_cast<double>(firedOn) / m.secs;
  r.allocsPerEvent =
      static_cast<double>(m.allocs) / static_cast<double>(firedOn);
  r.wallMs = m.secs * 1e3;
  r.normRate = normRate(on, static_cast<double>(firedOn));
  r.normBest = peakNorm(on, static_cast<double>(firedOn));
  return r;
}

// 7. Batch ladder (PR 6): the identical open-loop storm under the batching
// plane at rising batch sizes. Batching amortizes the per-cast ordering
// cost (one protocol instance per carrier instead of per cast), so the
// wall-clock per completed cast — goodput_per_sec — is the figure: the
// batch64/batch0 ratio is the headline amortization ceiling recorded in
// the baseline JSON.
std::vector<Result> benchBatchLadder(int casts, int repeats,
                                     double* x64RatioOut) {
  const wanmc::SimTime kWindow = 2 * wanmc::kSec;
  std::vector<Result> out;
  double unbatched = 0;
  for (const int size : {0, 8, 64}) {
    uint64_t fired = 0;
    const auto samples = measure(
        [&] {
          fired = runOpenLoopStorm(casts, /*metrics=*/false,
                                   size == 0 ? 0 : kWindow, size);
        },
        repeats);
    const Sample& m = bestOf(samples);
    Result r;
    r.name = "open_loop_storm_batch" + std::to_string(size);
    r.note = "A1 3x3 WAN, Poisson mean 3ms, " + std::to_string(casts) +
             (size == 0 ? " casts, batching off"
                        : " casts, batch window 2s, max " +
                              std::to_string(size));
    r.eventsPerSec = static_cast<double>(fired) / m.secs;
    r.allocsPerEvent =
        static_cast<double>(m.allocs) / static_cast<double>(fired);
    r.wallMs = m.secs * 1e3;
    r.normRate = normRate(samples, static_cast<double>(fired));
    r.normBest = peakNorm(samples, static_cast<double>(fired));
    r.goodputPerSec = static_cast<double>(casts) / m.secs;
    if (size == 0) unbatched = r.goodputPerSec;
    if (size == 64 && unbatched > 0)
      *x64RatioOut = r.goodputPerSec / unbatched;
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<Result> benchDetMergeSweep(int seeds, int jobs, int repeats) {
  wanmc::testing::ScenarioRunner runner(detMergeScenario());
  size_t bad = 0;
  auto sweep = [&](int useJobs) {
    auto results = runner.sweepSeeds(1, seeds, useJobs);
    for (const auto& res : results) bad += res.ok() ? 0 : 1;
  };

  Result serial;
  serial.name = "detmerge_sweep_serial";
  serial.note = std::to_string(seeds) + " seeds, jobs=1";
  serial.wallMs = bestOf(measure([&] { sweep(1); }, repeats)).secs * 1e3;

  Result parallel;
  parallel.name = "detmerge_sweep_jobs";
  if (jobs <= 1) {
    // A single-core box resolves the pool to one worker: the "parallel"
    // sweep would re-measure the serial one and poison any multi-core
    // baseline it is later compared against. Mark it skipped instead.
    parallel.skipped = true;
    parallel.note = std::to_string(seeds) +
                    " seeds, skipped: thread pool resolved to jobs=1";
  } else {
    parallel.note = std::to_string(seeds) + " seeds, jobs=" +
                    std::to_string(jobs);
    parallel.wallMs =
        bestOf(measure([&] { sweep(jobs); }, repeats)).secs * 1e3;
  }

  if (bad > 0)
    std::fprintf(stderr, "WARNING: %zu sweep cells reported violations\n",
                 bad);
  return {serial, parallel};
}

// ---------------------------------------------------------------------------
// JSON out + baseline check.
// ---------------------------------------------------------------------------

void writeJson(const std::string& path, const std::vector<Result>& results,
               bool quick, int jobs, unsigned hardwareConcurrency,
               double metricsOverhead, double batchGoodputX64,
               double channelOverhead, double bootstrapOverhead) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"wanmc-bench-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"hardware_concurrency\": " << hardwareConcurrency << ",\n";
  os << "  \"metrics_overhead\": " << metricsOverhead << ",\n";
  os << "  \"batch_goodput_x64\": " << batchGoodputX64 << ",\n";
  os << "  \"channel_overhead\": " << channelOverhead << ",\n";
  os << "  \"bootstrap_overhead\": " << bootstrapOverhead << ",\n";
  os << "  \"benches\": {\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    os << "    \"" << r.name << "\": {";
    if (r.skipped) os << "\"skipped\": true, ";
    if (r.eventsPerSec > 0) os << "\"events_per_sec\": " << r.eventsPerSec
                               << ", ";
    if (r.normRate > 0) os << "\"norm_rate\": " << r.normRate << ", ";
    if (r.goodputPerSec > 0)
      os << "\"goodput_per_sec\": " << r.goodputPerSec << ", ";
    if (r.allocsPerEvent >= 0)
      os << "\"allocs_per_event\": " << r.allocsPerEvent << ", ";
    os << "\"wall_ms\": " << r.wallMs << ", \"note\": \"" << r.note << "\"}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  }\n}\n";
  const std::string text = os.str();
  std::fputs(text.c_str(), stdout);
  if (!path.empty()) {
    std::ofstream f(path);
    f << text;
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
}

// Minimal field extraction from our own schema: finds
//   "<bench>": {..."<field>": <num>...}
// Good enough for the regression gate; not a general JSON parser.
bool extractField(const std::string& json, const std::string& bench,
                  const std::string& field, double* out) {
  const size_t at = json.find("\"" + bench + "\"");
  if (at == std::string::npos) return false;
  const std::string needle = "\"" + field + "\":";
  const size_t key = json.find(needle, at);
  if (key == std::string::npos) return false;
  const size_t close = json.find('}', at);
  if (close != std::string::npos && key > close) return false;
  *out = std::strtod(json.c_str() + key + needle.size(), nullptr);
  return *out > 0;
}

// True when the baseline recorded this bench as skipped (e.g. it was
// produced on a single-core box): its numbers, if any, are not comparable.
bool baselineSkipped(const std::string& json, const std::string& bench) {
  const size_t at = json.find("\"" + bench + "\"");
  if (at == std::string::npos) return false;
  const size_t key = json.find("\"skipped\": true", at);
  const size_t close = json.find('}', at);
  return key != std::string::npos && close != std::string::npos &&
         key < close;
}

int checkAgainstBaseline(const std::string& baseline,
                         const std::vector<Result>& results) {
  constexpr double kMaxRegression = 0.20;
  int failures = 0;
  for (const Result& r : results) {
    if (r.skipped || baselineSkipped(baseline, r.name)) {
      std::fprintf(stderr, "check %-18s: skipped (%s side), not gated\n",
                   r.name.c_str(), r.skipped ? "current" : "baseline");
      continue;
    }
    if (r.eventsPerSec <= 0) continue;  // wall-clock-only bench: not gated
    // Gate on the calibration-normalized rate when the baseline has one
    // (machine-independent); fall back to the raw rate for old baselines.
    // The current side uses the BEST repeat (see peakNorm) against the
    // baseline's pinned median.
    double base = 0;
    double mine = 0;
    const char* what = "norm";
    if (r.normBest > 0 && extractField(baseline, r.name, "norm_rate", &base)) {
      mine = r.normBest;
    } else if (extractField(baseline, r.name, "events_per_sec", &base)) {
      mine = r.eventsPerSec;
      what = "raw";
    } else {
      std::fprintf(stderr, "check %-18s: no baseline rate, skipped\n",
                   r.name.c_str());
      continue;
    }
    const double ratio = mine / base;
    const bool ok = ratio >= 1.0 - kMaxRegression;
    std::fprintf(stderr,
                 "check %-18s: %s rate %.3g vs baseline %.3g (%.0f%%) %s\n",
                 r.name.c_str(), what, mine, base, ratio * 100,
                 ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  bool quick = false;
  int jobs = 0;
  std::string out;
  std::string baseline;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--jobs N] [--out FILE] "
                   "[--check BASELINE]\n",
                   argv[0]);
      return 2;
    }
  }
  jobs = wanmc::testing::resolveJobs(jobs, 1 << 20);

  using namespace wanmc::bench;

  // The baseline is read BEFORE the report is written: --out and --check
  // may name the same file, and the gate must compare against the previous
  // content, not the report we are about to produce.
  std::string baselineText;
  if (!baseline.empty()) {
    std::ifstream f(baseline);
    if (!f.good()) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    baselineText = buf.str();
  }
  const uint64_t chainEvents = quick ? 1'000'000 : 4'000'000;
  const int stormRounds = quick ? 8'000 : 40'000;
  const int sweepSeeds = quick ? 10 : 100;
  const int repeats = quick ? 3 : 5;

  std::vector<Result> results;
  results.push_back(benchSchedulerChain(chainEvents, repeats));
  results.push_back(benchSchedulerScatter(chainEvents, repeats));
  results.push_back(benchMulticastStorm(stormRounds, repeats));
  results.push_back(benchHeartbeatStorm(quick ? 3 : 5));
  // The overhead pair always gets >= 5 interleaved repeats: its ratio
  // feeds a 5% gate, much tighter than the 20% rate gate, so it needs
  // more chances at a clean window even on the quick budget.
  OverheadPair metricsOverhead;
  for (auto& r : benchMetricsOverheadPair(quick ? 400 : 2000,
                                          std::max(repeats, 5),
                                          &metricsOverhead))
    results.push_back(std::move(r));
  // Same interleaving discipline for the channel substrate (10% gate).
  OverheadPair channelOverhead;
  results.push_back(benchChannelOverheadPair(
      quick ? 400 : 2000, std::max(repeats, 5), &channelOverhead));
  // And for the bootstrap plane, armed but idle (5% gate).
  OverheadPair bootstrapOverhead;
  results.push_back(benchBootstrapOverheadPair(
      quick ? 400 : 2000, std::max(repeats, 5), &bootstrapOverhead));
  double batchGoodputX64 = 0;
  for (auto& r : benchBatchLadder(quick ? 400 : 2000, repeats,
                                  &batchGoodputX64))
    results.push_back(std::move(r));
  for (auto& r : benchDetMergeSweep(sweepSeeds, jobs, quick ? 1 : 3))
    results.push_back(std::move(r));

  // Recorder-overhead figure: the metrics-on storm vs the metrics-off
  // storm, on calibration-normalized rates. Reported always; enforced as
  // part of the --check gate (CI budget: the streaming measurement plane
  // may cost at most 5% of sim-core events/sec).
  constexpr double kMaxMetricsOverhead = 0.05;
  std::fprintf(stderr,
               "metrics_overhead: %.2f%% of events/sec median, %.2f%% "
               "cleanest pair (gate %g%% on the latter)\n",
               metricsOverhead.median * 100, metricsOverhead.floor * 100,
               kMaxMetricsOverhead * 100);
  std::fprintf(stderr, "batch_goodput_x64: %.1fx unbatched goodput\n",
               batchGoodputX64);
  // Channel-overhead figure (PR 7): per-event throughput with the reliable
  // channel substrate armed vs off, on interleaved pairs. Gated at 10% —
  // looser than the recorder's 5% because the channel plane does real
  // per-event work (holdback, ACK bookkeeping) on the hot path.
  constexpr double kMaxChannelOverhead = 0.10;
  std::fprintf(stderr,
               "channel_overhead: %.2f%% of events/sec median, %.2f%% "
               "cleanest pair (gate %g%% on the latter)\n",
               channelOverhead.median * 100, channelOverhead.floor * 100,
               kMaxChannelOverhead * 100);
  // Bootstrap-overhead figure (PR 9): per-event throughput with the
  // bootstrap plane armed-but-idle vs off. Gated at the recorder's 5%:
  // with no recovery in the run, the plane must stay off the hot path.
  constexpr double kMaxBootstrapOverhead = 0.05;
  std::fprintf(stderr,
               "bootstrap_overhead: %.2f%% of events/sec median, %.2f%% "
               "cleanest pair (gate %g%% on the latter)\n",
               bootstrapOverhead.median * 100, bootstrapOverhead.floor * 100,
               kMaxBootstrapOverhead * 100);

  writeJson(out, results, quick, jobs, std::thread::hardware_concurrency(),
            metricsOverhead.median, batchGoodputX64, channelOverhead.median,
            bootstrapOverhead.median);
  if (!baseline.empty()) {
    int rc = checkAgainstBaseline(baselineText, results);
    if (metricsOverhead.floor > kMaxMetricsOverhead) {
      std::fprintf(stderr,
                   "check metrics_overhead : cleanest-pair overhead %.2f%% "
                   "exceeds the %g%% budget REGRESSED\n",
                   metricsOverhead.floor * 100, kMaxMetricsOverhead * 100);
      rc = 1;
    }
    if (channelOverhead.floor > kMaxChannelOverhead) {
      std::fprintf(stderr,
                   "check channel_overhead : cleanest-pair overhead %.2f%% "
                   "exceeds the %g%% budget REGRESSED\n",
                   channelOverhead.floor * 100, kMaxChannelOverhead * 100);
      rc = 1;
    }
    if (bootstrapOverhead.floor > kMaxBootstrapOverhead) {
      std::fprintf(stderr,
                   "check bootstrap_overhead : cleanest-pair overhead "
                   "%.2f%% exceeds the %g%% budget REGRESSED\n",
                   bootstrapOverhead.floor * 100,
                   kMaxBootstrapOverhead * 100);
      rc = 1;
    }
    return rc;
  }
  return 0;
}
