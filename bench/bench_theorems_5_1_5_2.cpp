// Reproduces Theorems 5.1 and 5.2:
//   5.1  there exists a run of A2 with Delta(m, R) = 1 — the warm-round run
//        where a broadcast rides the very next bundle exchange;
//   5.2  there exists a run where the LAST message, cast while processes
//        are reactive (the algorithm went quiescent), has Delta(m, R) = 2 —
//        the sender's group's bundle must first wake the other groups.
// Together with Prop. 3.1/3.3 this is the quiescence lower bound: the
// degree-2 cold-start cost is unavoidable for quiescent algorithms.
#include <benchmark/benchmark.h>

#include "abcast/a2_node.hpp"
#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

void printReproduction() {
  // ---- Theorem 5.1: warm run, Delta = 1 -----------------------------------
  std::printf("\n=== Theorem 5.1 — warm A2 delivers with Delta(m, R) = 1 "
              "===\n");
  {
    auto cfg = fixedConfig(core::ProtocolKind::kA2, 2, 2, 1);
    core::Experiment ex(cfg);
    std::vector<MsgId> ids;
    for (int i = 0; i < 25; ++i)
      ids.push_back(ex.castAllAt(kMs + i * 40 * kMs,
                                 static_cast<ProcessId>(i % 4), "w"));
    auto r = ex.run(600 * kSec);
    int64_t minDeg = INT64_MAX, maxDeg = INT64_MIN;
    int ones = 0;
    for (MsgId id : ids) {
      auto d = r.trace.latencyDegree(id).value_or(-1);
      minDeg = std::min(minDeg, d);
      maxDeg = std::max(maxDeg, d);
      if (d == 1) ++ones;
    }
    std::printf("  25 msgs at 25 msg/s over 2 groups x 2 procs\n");
    std::printf("  min Delta = %lld (paper: 1), max Delta = %lld, "
                "%d/25 messages at Delta = 1\n",
                static_cast<long long>(minDeg),
                static_cast<long long>(maxDeg), ones);
    std::printf("  safety: %s\n",
                r.checkAtomicSuite().empty() ? "ok" : "VIOLATED");
  }

  // ---- Theorem 5.2: quiescent start, Delta = 2 ----------------------------
  std::printf("\n=== Theorem 5.2 — a message cast after quiescence pays "
              "Delta(m, R) = 2 ===\n");
  {
    auto cfg = fixedConfig(core::ProtocolKind::kA2, 2, 2, 1);
    core::Experiment ex(cfg);
    auto id = ex.castAllAt(kMs, 0, "cold");
    auto r = ex.run(600 * kSec);
    const auto& cast = r.trace.casts.front();
    std::printf("  t=%7.2fms  p%d  A-BCast(m)    ts = %llu\n",
                static_cast<double>(cast.when) / kMs, cast.process,
                static_cast<unsigned long long>(cast.lamport));
    for (const auto& d : r.trace.deliveries)
      std::printf("  t=%7.2fms  p%d  A-Deliver(m)  ts = %llu\n",
                  static_cast<double>(d.when) / kMs, d.process,
                  static_cast<unsigned long long>(d.lamport));
    std::printf("  Delta(m, R) = %lld (paper: 2 — the quiescence cost)\n",
                static_cast<long long>(r.trace.latencyDegree(id).value_or(-1)));
  }

  // ---- Quiescence itself (Prop. A.9) --------------------------------------
  std::printf("\n=== Prop. A.9 — A2 is quiescent ===\n");
  {
    auto cfg = fixedConfig(core::ProtocolKind::kA2, 3, 2, 1);
    core::Experiment ex(cfg);
    for (int i = 0; i < 5; ++i)
      ex.castAllAt(kMs + i * 100 * kMs, static_cast<ProcessId>(i), "q");
    auto r = ex.run(600 * kSec);
    SimTime lastCast = 0;
    for (const auto& c : r.trace.casts) lastCast = std::max(lastCast, c.when);
    std::printf("  last A-BCast at %.1fms; last protocol packet at %.1fms "
                "(+%.0fms settle)\n",
                static_cast<double>(lastCast) / kMs,
                static_cast<double>(r.lastAlgoSend) / kMs,
                static_cast<double>(r.lastAlgoSend - lastCast) / kMs);
    auto& n0 = dynamic_cast<abcast::A2Node&>(ex.node(0));
    std::printf("  rounds executed: %llu (useful: %llu) — exactly one "
                "trailing empty round\n",
                static_cast<unsigned long long>(n0.roundsExecuted()),
                static_cast<unsigned long long>(n0.usefulRounds()));
  }
  std::printf("\n");
}

void BM_A2Warm(benchmark::State& state) {
  StreamStats s;
  for (auto _ : state) {
    s = runBroadcastStream(fixedConfig(core::ProtocolKind::kA2, 2, 2, 1),
                           25, 40 * kMs);
    benchmark::DoNotOptimize(s);
  }
  state.counters["min_latency_degree"] = static_cast<double>(s.minDegree);
}
BENCHMARK(BM_A2Warm);

void BM_A2Cold(benchmark::State& state) {
  int64_t degree = -1;
  for (auto _ : state) {
    core::Experiment ex(fixedConfig(core::ProtocolKind::kA2, 2, 2, 1));
    auto id = ex.castAllAt(kMs, 0, "x");
    auto r = ex.run(600 * kSec);
    degree = r.trace.latencyDegree(id).value_or(-1);
    benchmark::DoNotOptimize(r);
  }
  state.counters["latency_degree"] = static_cast<double>(degree);
}
BENCHMARK(BM_A2Cold);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
