// Reproduces Theorem 4.1: there exists a run R of Algorithm A1 in which a
// message m is A-MCast to two groups such that Delta(m, R) = 2.
//
// The bench replays the proof's run shape (two groups g1, g2; p1 in g1
// A-MCasts m to both; each group decides m's timestamp proposal in one
// consensus instance; the (TS, m) exchange crosses the WAN once in each
// direction) and prints the event timeline with the paper's modified
// Lamport clock next to each event, so Delta(m, R) = 2 can be read off.
// It also confirms the matching lower bound empirically: no seed, topology
// or sender placement yields Delta < 2 for a 2-group message.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

void printReproduction() {
  std::printf("\n=== Theorem 4.1 — A1 delivers a 2-group multicast with "
              "Delta(m, R) = 2 ===\n");
  auto cfg = fixedConfig(core::ProtocolKind::kA1, 2, 2, 1);
  core::Experiment ex(cfg);
  auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "thm41");
  auto r = ex.run(600 * kSec);

  const auto& cast = r.trace.casts.front();
  std::printf("  t=%7.2fms  p%d  A-MCast(m) to {g0,g1}        ts = %llu\n",
              static_cast<double>(cast.when) / kMs, cast.process,
              static_cast<unsigned long long>(cast.lamport));
  for (const auto& d : r.trace.deliveries) {
    std::printf("  t=%7.2fms  p%d  A-Deliver(m)                 ts = %llu\n",
                static_cast<double>(d.when) / kMs, d.process,
                static_cast<unsigned long long>(d.lamport));
  }
  const auto degree = r.trace.latencyDegree(id);
  std::printf("  Delta(m, R) = %lld   (paper: 2)   safety: %s\n",
              static_cast<long long>(degree.value_or(-1)),
              r.checkAtomicSuite().empty() ? "ok" : "VIOLATED");

  // Optimality: Prop. 3.1/3.2 say 2 is a lower bound for genuine multicast
  // to >= 2 groups. Sweep seeds and placements looking for a counterexample.
  std::printf("\n  lower-bound sweep (A1, 2..4 groups, seeds 1..10): ");
  int64_t minSeen = INT64_MAX;
  for (int groups = 2; groups <= 4; ++groups) {
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      auto c = baseConfig(core::ProtocolKind::kA1, groups, 2, seed);
      core::Experiment e2(c);
      auto mid = e2.castAt(kMs, static_cast<ProcessId>(seed % 2),
                           GroupSet::of({0, 1}), "x");
      auto rr = e2.run(600 * kSec);
      if (auto deg = rr.trace.latencyDegree(mid))
        minSeen = std::min(minSeen, *deg);
    }
  }
  std::printf("min Delta observed = %lld (bound: 2)\n\n",
              static_cast<long long>(minSeen));
}

void BM_Theorem41(benchmark::State& state) {
  int64_t degree = -1;
  for (auto _ : state) {
    auto cfg = fixedConfig(core::ProtocolKind::kA1, 2, 2, 1);
    core::Experiment ex(cfg);
    auto id = ex.castAt(kMs, 0, GroupSet::of({0, 1}), "x");
    auto r = ex.run(600 * kSec);
    degree = r.trace.latencyDegree(id).value_or(-1);
    benchmark::DoNotOptimize(r);
  }
  state.counters["latency_degree"] = static_cast<double>(degree);
}
BENCHMARK(BM_Theorem41);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
