// Shared helpers for the reproduction benches.
//
// Every bench binary prints a paper-vs-measured table for its figure /
// theorem (the reproduction artifact recorded in EXPERIMENTS.md), then runs
// google-benchmark timings of the same simulations so `for b in
// build/bench/*; do $b; done` also yields perf series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace wanmc::bench {

inline core::RunConfig baseConfig(core::ProtocolKind kind, int groups,
                                  int procs, uint64_t seed = 1) {
  core::RunConfig c;
  c.groups = groups;
  c.procsPerGroup = procs;
  c.seed = seed;
  c.protocol = kind;
  c.latency = sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
  return c;
}

// Jitter-free best-case model: intra-group delays two orders of magnitude
// below inter-group ones, so group-local consensus always completes between
// WAN hops — the interleaving the paper's best-case accounting assumes.
inline core::RunConfig fixedConfig(core::ProtocolKind kind, int groups,
                                   int procs, uint64_t seed = 1) {
  core::RunConfig c = baseConfig(kind, groups, procs, seed);
  c.latency = sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
  return c;
}

struct Row {
  std::string algorithm;
  std::string paperDegree;    // closed-form from Figure 1
  std::string measuredDegree;
  std::string paperMsgs;      // closed-form inter-group message count
  std::string measuredMsgs;
  std::string note;
};

inline void printTable(const std::string& title,
                       const std::vector<Row>& rows) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-34s %14s %14s %16s %14s  %s\n", "algorithm",
              "degree(paper)", "degree(meas)", "igm(paper)", "igm(meas)",
              "note");
  for (const auto& r : rows) {
    std::printf("%-34s %14s %14s %16s %14s  %s\n", r.algorithm.c_str(),
                r.paperDegree.c_str(), r.measuredDegree.c_str(),
                r.paperMsgs.c_str(), r.measuredMsgs.c_str(), r.note.c_str());
  }
  std::printf("\n");
}

inline std::string fmtOpt(std::optional<int64_t> v) {
  return v ? std::to_string(*v) : std::string("-");
}

// Warm a broadcast protocol with a steady stream and return the minimum
// latency degree over the stream plus the per-message inter-group traffic
// of the active phase.
struct StreamStats {
  int64_t minDegree = -1;
  int64_t maxDegree = -1;
  double interPerMsg = 0;
  bool safe = false;
};

inline StreamStats runBroadcastStream(core::RunConfig cfg, int count,
                                      SimTime period,
                                      SimTime horizon = 3600 * kSec) {
  core::Experiment ex(cfg);
  const int n = cfg.groups * cfg.procsPerGroup;
  for (int i = 0; i < count; ++i)
    ex.castAllAt(10 * kMs + i * period,
                 static_cast<ProcessId>(i % n), "b");
  auto r = ex.run(horizon);
  StreamStats s;
  s.safe = r.checkAtomicSuite().empty();
  if (auto d = r.trace.minLatencyDegree()) s.minDegree = *d;
  if (auto d = r.trace.maxLatencyDegree()) s.maxDegree = *d;
  s.interPerMsg =
      static_cast<double>(r.traffic.interAlgorithmic()) / count;
  return s;
}

}  // namespace wanmc::bench
