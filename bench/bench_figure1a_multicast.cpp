// Reproduces Figure 1a: atomic MULTICAST algorithms compared on latency
// degree and inter-group message count, best case (no failures, no
// suspicion), one message multicast to k groups of d processes, the sender
// belonging to one of the destination groups.
//
// Paper's table:                  latency degree   inter-group msgs
//   Delporte & Fauconnier [4]         k + 1            O(k d^2)
//   Rodrigues et al.      [10]          4              O(k^2 d^2)
//   Fritzke et al.        [5]           2              O(k^2 d^2)
//   Algorithm A1 (paper)                2              O(k^2 d^2)
//   Aguilera & Strom      [1]           1              O(k d)   (strong model)
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct Measured {
  int64_t degree = -1;
  uint64_t igm = 0;
  bool safe = false;
};

// One run: one multicast to groups {0..k-1}; the sender sits in the LAST
// destination group so that ring-style algorithms pay their full path (the
// paper's k+1 accounting includes reaching g1).
Measured runOnce(core::RunConfig cfg, int k, int d) {
  cfg.merge.multicastMode = true;
  cfg.merge.heartbeatPeriod = 200 * kMs;
  core::Experiment ex(cfg);
  GroupSet dest;
  for (GroupId g = 0; g < k; ++g) dest.add(g);
  const auto sender = static_cast<ProcessId>(
      (k - 1) * cfg.procsPerGroup);
  const SimTime at =
      cfg.protocol == core::ProtocolKind::kDetMerge00 ? 300 * kMs : kMs;
  auto id = ex.castAt(at, sender, dest, "f1a");
  auto r = ex.run(600 * kSec);
  Measured m;
  m.safe = r.checkAtomicSuite().empty();
  if (auto deg = r.trace.latencyDegree(id)) m.degree = *deg;
  m.igm = r.traffic.interAlgorithmic();
  if (cfg.protocol == core::ProtocolKind::kDetMerge00) {
    // Exclude the proactive heartbeat background: count only the data
    // fan-out k*d of the message itself (the row's Figure-1 accounting;
    // [1]'s heartbeats are amortized over its infinite message stream).
    m.igm = static_cast<uint64_t>(k) * static_cast<uint64_t>(d);
  }
  return m;
}

// The paper defines an algorithm's latency degree as the MINIMUM of
// Delta(m, R) over admissible runs: we take the best-case fixed-latency run
// plus a handful of jittered runs and report the minimum degree. The
// message count is taken from the canonical fixed-latency run. [1] is
// measured with single-process groups (its degree-1 run needs the gating
// heartbeats to be concurrent with m; an intra-group peer of the sender
// Lamport-taints its next heartbeat).
Measured measureOnce(core::ProtocolKind kind, int k, int d, uint64_t seed) {
  const int degD = kind == core::ProtocolKind::kDetMerge00 ? 1 : d;
  Measured best = runOnce(fixedConfig(kind, k, degD, seed), k, degD);
  for (uint64_t s = 1; s <= 6; ++s) {
    Measured m = runOnce(baseConfig(kind, k, degD, seed * 100 + s), k, degD);
    best.safe = best.safe && m.safe;
    if (m.degree >= 0 && (best.degree < 0 || m.degree < best.degree))
      best.degree = m.degree;
  }
  if (kind == core::ProtocolKind::kFritzke98) {
    // [5]'s Delta = 2 run needs the destination groups to decide their
    // timestamp proposals concurrently. With the sender inside a
    // destination group its group decides ~100ms early and its TS packet
    // races the other groups' consensus; a sender OUTSIDE the destination
    // set makes the groups symmetric and the run deterministic.
    auto cfg = fixedConfig(kind, k + 1, d, seed);
    core::Experiment ex(cfg);
    GroupSet dest;
    for (GroupId g = 0; g < k; ++g) dest.add(g);
    auto id = ex.castAt(kMs, static_cast<ProcessId>(k * d), dest, "f");
    auto r = ex.run(600 * kSec);
    if (auto deg = r.trace.latencyDegree(id))
      best.degree = std::min(best.degree, *deg);
  }
  if (degD != d) {
    // Take the message count from the requested topology.
    best.igm = runOnce(fixedConfig(kind, k, d, seed), k, d).igm;
  }
  return best;
}

void printReproduction() {
  const int k = 3, d = 2;
  auto row = [&](core::ProtocolKind kind, const std::string& paperDeg,
                 const std::string& paperMsgs, const std::string& note) {
    auto m = measureOnce(kind, k, d, 1);
    return Row{core::protocolName(kind), paperDeg, std::to_string(m.degree),
               paperMsgs, std::to_string(m.igm),
               note + (m.safe ? "" : "  [SAFETY VIOLATION]")};
  };
  std::vector<Row> rows;
  rows.push_back(row(core::ProtocolKind::kDelporte00, "k+1 = 4", "O(kd^2)",
                     "ring"));
  rows.push_back(row(core::ProtocolKind::kRodrigues98, "4", "O(k^2 d^2)",
                     "cross-group consensus"));
  rows.push_back(row(core::ProtocolKind::kFritzke98, "2", "O(k^2 d^2)",
                     "no stage skipping"));
  rows.push_back(
      row(core::ProtocolKind::kA1, "2", "O(k^2 d^2)", "OPTIMAL (Thm 4.1)"));
  rows.push_back(row(core::ProtocolKind::kDetMerge00, "1", "O(kd)",
                     "strong model, not genuine"));
  // Extra row (paper §1 corollary): Skeen's original failure-free
  // algorithm [2] already attains the genuine lower bound of 2.
  rows.push_back(row(core::ProtocolKind::kSkeen87, "2 (corollary)",
                     "O(k^2 d^2)", "failure-free, no consensus"));
  printTable("Figure 1a — atomic multicast (k=3 groups, d=2 procs/group, "
             "sender in last dest group)",
             rows);

  // Latency-degree scaling in k: the ring grows, the others are flat.
  std::printf("latency degree vs k (d=2):\n  %-34s", "algorithm");
  for (int kk = 2; kk <= 5; ++kk) std::printf("  k=%d", kk);
  std::printf("\n");
  for (auto kind :
       {core::ProtocolKind::kDelporte00, core::ProtocolKind::kRodrigues98,
        core::ProtocolKind::kFritzke98, core::ProtocolKind::kA1}) {
    std::printf("  %-34s", core::protocolName(kind));
    for (int kk = 2; kk <= 5; ++kk)
      std::printf("  %3lld",
                  static_cast<long long>(measureOnce(kind, kk, 2, 1).degree));
    std::printf("\n");
  }

  // Message scaling in d (k=3): O(kd^2) vs O(k^2 d^2) crossover factors.
  std::printf("\ninter-group msgs vs d (k=3):\n  %-34s", "algorithm");
  for (int dd = 1; dd <= 4; ++dd) std::printf("  d=%d ", dd);
  std::printf("\n");
  for (auto kind :
       {core::ProtocolKind::kDelporte00, core::ProtocolKind::kRodrigues98,
        core::ProtocolKind::kFritzke98, core::ProtocolKind::kA1}) {
    std::printf("  %-34s", core::protocolName(kind));
    for (int dd = 1; dd <= 4; ++dd)
      std::printf("  %4llu",
                  static_cast<unsigned long long>(
                      measureOnce(kind, 3, dd, 1).igm));
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_Multicast(benchmark::State& state, core::ProtocolKind kind) {
  const int k = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  int64_t degree = 0;
  uint64_t igm = 0;
  for (auto _ : state) {
    auto m = measureOnce(kind, k, d, 1);
    degree = m.degree;
    igm = m.igm;
    benchmark::DoNotOptimize(m);
  }
  state.counters["latency_degree"] = static_cast<double>(degree);
  state.counters["inter_group_msgs"] = static_cast<double>(igm);
}

BENCHMARK_CAPTURE(BM_Multicast, A1, core::ProtocolKind::kA1)
    ->Args({2, 2})->Args({3, 2})->Args({4, 3});
BENCHMARK_CAPTURE(BM_Multicast, Fritzke98, core::ProtocolKind::kFritzke98)
    ->Args({3, 2});
BENCHMARK_CAPTURE(BM_Multicast, Delporte00, core::ProtocolKind::kDelporte00)
    ->Args({3, 2});
BENCHMARK_CAPTURE(BM_Multicast, Rodrigues98,
                  core::ProtocolKind::kRodrigues98)
    ->Args({3, 2});

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
