// Ablation of A1's two stage-skipping optimizations (§4.1/§6):
//
//   * single-group messages jump s0 -> s3 (one consensus instead of two);
//   * a group whose proposal equals the final timestamp skips s2.
//
// The paper: "In contrast to [5], the algorithm presented in this paper
// allows messages to skip stages, therefore sparing the execution of
// consensus instances. This has no impact on the latency degree or on the
// number of inter-group messages sent... However, our algorithm sends fewer
// intra-group messages."
//
// We run the same workloads through A1 (skips on) and the [5] configuration
// (skips off) and compare consensus instances, intra-group messages,
// inter-group messages and wall latency.
#include <benchmark/benchmark.h>

#include "amcast/a1_node.hpp"
#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct AblationPoint {
  uint64_t consensusInstances = 0;
  uint64_t intraMsgs = 0;
  uint64_t interMsgs = 0;
  double meanWallMs = 0;
  bool safe = false;
};

// `singleGroupShare` of the messages go to one group, the rest to two.
AblationPoint measure(core::ProtocolKind kind, int singleGroupPercent,
                      uint64_t seed) {
  auto cfg = fixedConfig(kind, 3, 2, seed);
  core::Experiment ex(cfg);
  SplitMix64 rng(seed * 7919);
  const int count = 30;
  std::vector<MsgId> ids;
  for (int i = 0; i < count; ++i) {
    const auto sender = static_cast<ProcessId>(rng.next() % 6);
    GroupSet dest = GroupSet::single(ex.runtime().topology().group(sender));
    if (static_cast<int>(rng.next() % 100) >= singleGroupPercent) {
      while (dest.size() < 2)
        dest.add(static_cast<GroupId>(rng.next() % 3));
    }
    ids.push_back(ex.castAt(10 * kMs + i * 300 * kMs, sender, dest, "a"));
  }
  auto r = ex.run(3600 * kSec);

  AblationPoint p;
  p.safe = r.checkAtomicSuite().empty();
  for (ProcessId q = 0; q < 6; ++q)
    p.consensusInstances +=
        dynamic_cast<amcast::A1Node&>(ex.node(q)).consensusInstancesDecided();
  p.intraMsgs = r.traffic.intraTotal();
  p.interMsgs = r.traffic.interAlgorithmic();
  double wallSum = 0;
  for (MsgId id : ids)
    wallSum += static_cast<double>(r.trace.wallLatency(id).value_or(0)) / kMs;
  p.meanWallMs = wallSum / count;
  return p;
}

void printReproduction() {
  std::printf("\n=== Ablation — A1 stage skipping vs Fritzke et al. [5] "
              "(3 groups x 2, 30 msgs) ===\n");
  std::printf("  %-22s %-12s %12s %12s %12s %12s\n", "workload", "variant",
              "consensus", "intra msgs", "inter msgs", "mean wall");
  for (int singlePct : {0, 50, 100}) {
    for (auto [kind, name] :
         {std::pair{core::ProtocolKind::kA1, "A1 (skips)"},
          std::pair{core::ProtocolKind::kFritzke98, "[5] (none)"}}) {
      auto p = measure(kind, singlePct, 1);
      char wl[32];
      std::snprintf(wl, sizeof wl, "%d%% single-group", singlePct);
      std::printf("  %-22s %-12s %12llu %12llu %12llu %10.1fms%s\n", wl,
                  name, static_cast<unsigned long long>(p.consensusInstances),
                  static_cast<unsigned long long>(p.intraMsgs),
                  static_cast<unsigned long long>(p.interMsgs), p.meanWallMs,
                  p.safe ? "" : "  [SAFETY VIOLATION]");
    }
  }
  std::printf("\n  expectation: identical inter-group counts; A1 runs ~1 "
              "consensus per message where [5] runs 2 (s2 never skipped),\n"
              "  with the gap widest on single-group traffic; fewer intra "
              "messages and lower wall latency for A1.\n\n");
}

void BM_SkipAblation(benchmark::State& state, core::ProtocolKind kind) {
  AblationPoint p;
  for (auto _ : state) {
    p = measure(kind, 50, 1);
    benchmark::DoNotOptimize(p);
  }
  state.counters["consensus_instances"] =
      static_cast<double>(p.consensusInstances);
  state.counters["intra_msgs"] = static_cast<double>(p.intraMsgs);
}
BENCHMARK_CAPTURE(BM_SkipAblation, A1, core::ProtocolKind::kA1);
BENCHMARK_CAPTURE(BM_SkipAblation, Fritzke98, core::ProtocolKind::kFritzke98);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
