// Sim-vs-real calibration bench (PR 10).
//
// Re-runs the paper's Figure-1 regime — the A1 closed-loop latency-vs-
// throughput sweep — once on the simulator and once on the threaded
// real-clock backend, point by point with identical workloads, and emits a
// side-by-side CSV plus a JSON summary. The simulator is the deterministic
// oracle; the threaded leg measures what the same stack does on real
// threads with the same emulated link latencies. The interesting number is
// the per-point latency ratio: close to 1.0 means the simulator's latency
// accounting is faithful to a real execution (the scheduling and queueing
// the sim abstracts away are cheap next to the WAN delays it models);
// a drift would localize exactly which load points the abstraction
// misprices.
//
//   bench_calibration [--quick] [--points N] [--casts N] [--seeds N]
//                     [--csv-out FILE] [--out FILE]
//
// The threaded leg runs in real time (a 96ms arrival interval costs 96
// real milliseconds per cast), so the default budget is deliberately
// small; --quick shrinks it further for the CI smoke job. Wall-clock
// ratios are machine-dependent and are NOT gated — the CSV is a recorded
// artifact, like EXPERIMENTS.md tables.
//
// Dependency-free on purpose (no google-benchmark): the CI threaded-smoke
// job runs it wherever the library builds.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_options.hpp"
#include "metrics/sweep.hpp"

namespace wanmc::bench {
namespace {

struct Options {
  int points = 5;
  int casts = 60;
  int seeds = 2;
  std::string csvOut;
  std::string jsonOut;
};

// One load point measured on both backends.
struct CalPoint {
  metrics::SweepPoint sim;
  metrics::SweepPoint threaded;
};

double ratio(double real, double oracle) {
  return oracle > 0 ? real / oracle : 0.0;
}

void writeCsv(const std::vector<CalPoint>& points, const std::string& config,
              std::ostream& os) {
  os << "# " << config << "\n";
  os << "interval_us,offered_per_sec,goodput_sim,goodput_threaded,"
        "p50_sim_us,p50_threaded_us,p50_ratio,"
        "p90_sim_us,p90_threaded_us,p90_ratio,"
        "p99_sim_us,p99_threaded_us,p99_ratio\n";
  for (const auto& p : points) {
    char line[512];
    std::snprintf(
        line, sizeof line,
        "%lld,%.3f,%.3f,%.3f,%lld,%lld,%.4f,%lld,%lld,%.4f,%lld,%lld,%.4f\n",
        static_cast<long long>(p.sim.interval), p.sim.offeredPerSec,
        p.sim.goodputPerSec, p.threaded.goodputPerSec,
        static_cast<long long>(p.sim.latency.p50),
        static_cast<long long>(p.threaded.latency.p50),
        ratio(static_cast<double>(p.threaded.latency.p50),
              static_cast<double>(p.sim.latency.p50)),
        static_cast<long long>(p.sim.latency.p90),
        static_cast<long long>(p.threaded.latency.p90),
        ratio(static_cast<double>(p.threaded.latency.p90),
              static_cast<double>(p.sim.latency.p90)),
        static_cast<long long>(p.sim.latency.p99),
        static_cast<long long>(p.threaded.latency.p99),
        ratio(static_cast<double>(p.threaded.latency.p99),
              static_cast<double>(p.sim.latency.p99)));
    os << line;
  }
}

void writeJson(const std::vector<CalPoint>& points, const std::string& config,
               std::ostream& os) {
  os << "{\n  \"bench\": \"calibration\",\n  \"config\": \"" << config
     << "\",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"interval_us\": %lld, \"p50_sim_us\": %lld, "
                  "\"p50_threaded_us\": %lld, \"p50_ratio\": %.4f, "
                  "\"p99_sim_us\": %lld, \"p99_threaded_us\": %lld, "
                  "\"p99_ratio\": %.4f}%s\n",
                  static_cast<long long>(p.sim.interval),
                  static_cast<long long>(p.sim.latency.p50),
                  static_cast<long long>(p.threaded.latency.p50),
                  ratio(static_cast<double>(p.threaded.latency.p50),
                        static_cast<double>(p.sim.latency.p50)),
                  static_cast<long long>(p.sim.latency.p99),
                  static_cast<long long>(p.threaded.latency.p99),
                  ratio(static_cast<double>(p.threaded.latency.p99),
                        static_cast<double>(p.sim.latency.p99)),
                  i + 1 < points.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
}

int run(const Options& o) {
  // The shared knob set: the serialized line goes verbatim into the CSV
  // header and the JSON, so the exact configuration is recorded with the
  // artifact and can be rebuilt with RunOptions::parse.
  core::RunOptions ro;
  ro.protocol = core::ProtocolKind::kA1;
  ro.groups = 2;
  ro.procsPerGroup = 2;

  metrics::SweepOptions sweep;
  sweep.base = ro.toRunConfig();
  sweep.intervals = metrics::defaultLoadLadder(o.points, 96 * kMs, 12 * kMs);
  sweep.casts = o.casts;
  sweep.seedsPerPoint = o.seeds;
  sweep.destGroups = ro.destGroups;

  const std::string config = ro.serialize();
  std::printf("calibration config: %s\n", config.c_str());
  std::printf("ladder: %d points, %d casts, %d seed(s) per point\n", o.points,
              o.casts, o.seeds);

  std::printf("[sim]      sweeping...\n");
  const auto simCurve = metrics::runLatencyThroughputSweep(sweep);

  // Same ladder, same seeds, same workload derivation — only the backend
  // differs. The threaded leg is serial (ScenarioRunner refuses to
  // oversubscribe real-time runs) and takes real wall-clock time.
  sweep.base.backend = exec::Backend::kThreaded;
  std::printf("[threaded] sweeping (real time)...\n");
  const auto thrCurve = metrics::runLatencyThroughputSweep(sweep);

  if (simCurve.size() != thrCurve.size()) {
    std::fprintf(stderr, "backend curves differ in length: %zu vs %zu\n",
                 simCurve.size(), thrCurve.size());
    return 1;
  }

  std::vector<CalPoint> points;
  points.reserve(simCurve.size());
  for (size_t i = 0; i < simCurve.size(); ++i)
    points.push_back({simCurve[i], thrCurve[i]});

  std::printf("\n%12s %14s %12s %12s %9s\n", "interval_ms", "goodput/s(sim)",
              "p50_sim_ms", "p50_thr_ms", "ratio");
  for (const auto& p : points)
    std::printf("%12.1f %14.2f %12.2f %12.2f %9.4f\n",
                p.sim.interval / 1000.0, p.sim.goodputPerSec,
                p.sim.latency.p50 / 1000.0, p.threaded.latency.p50 / 1000.0,
                ratio(static_cast<double>(p.threaded.latency.p50),
                      static_cast<double>(p.sim.latency.p50)));

  if (!o.csvOut.empty()) {
    std::ofstream os(o.csvOut);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", o.csvOut.c_str());
      return 1;
    }
    writeCsv(points, config, os);
    std::printf("\ncsv written to %s\n", o.csvOut.c_str());
  }
  if (!o.jsonOut.empty()) {
    std::ofstream os(o.jsonOut);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", o.jsonOut.c_str());
      return 1;
    }
    writeJson(points, config, os);
    std::printf("json written to %s\n", o.jsonOut.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      o.points = 3;
      o.casts = 24;
      o.seeds = 1;
    } else if (arg == "--points") {
      o.points = std::atoi(next().c_str());
    } else if (arg == "--casts") {
      o.casts = std::atoi(next().c_str());
    } else if (arg == "--seeds") {
      o.seeds = std::atoi(next().c_str());
    } else if (arg == "--csv-out") {
      o.csvOut = next();
    } else if (arg == "--out") {
      o.jsonOut = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_calibration [--quick] [--points N] "
                   "[--casts N] [--seeds N] [--csv-out FILE] [--out FILE]\n");
      return 2;
    }
  }
  return wanmc::bench::run(o);
}
