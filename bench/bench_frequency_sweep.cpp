// Reproduces the §5.3 claim: "the presented broadcast algorithm never
// becomes reactive if the time between two consecutive broadcasts is
// smaller than the time to execute a round. Moreover, in this case, all
// rounds are useful... In a large-scale system where the inter-group
// latency is 100 milliseconds, a broadcast frequency of 10 messages per
// second is sufficient for the algorithm to reach this optimality."
//
// The bench sweeps the broadcast frequency at a fixed 100ms inter-group
// latency and reports, per frequency: the fraction of useful rounds, the
// share of messages delivered at latency degree 1, and the mean wall-clock
// delivery latency. The crossover at ~10 msg/s (one message per round
// time) is the claim to observe.
#include <benchmark/benchmark.h>

#include "abcast/a2_node.hpp"
#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct FreqPoint {
  double msgsPerSec = 0;
  double usefulRoundFraction = 0;
  uint64_t emptyRounds = 0;  // quiescent episodes (+1 trailing round)
  double meanWallMs = 0;
  int64_t minDegree = 0;
};

FreqPoint measure(double msgsPerSec, uint64_t seed) {
  auto cfg = fixedConfig(core::ProtocolKind::kA2, 2, 2, seed);
  core::Experiment ex(cfg);
  const auto period = static_cast<SimTime>(1e6 / msgsPerSec);
  const int count = 60;
  std::vector<MsgId> ids;
  // Jitter the arrivals by up to half a period: perfectly periodic casts
  // phase-lock against the (deterministic) round structure and make the
  // per-message latency degree alias instead of mixing.
  SplitMix64 rng(seed * 7 + 13);
  for (int i = 0; i < count; ++i) {
    const SimTime jitter = rng.uniform(0, std::max<SimTime>(1, period - 1));
    ids.push_back(ex.castAllAt(10 * kMs + i * period + jitter,
                               static_cast<ProcessId>(i % 4), "f"));
  }
  auto r = ex.run(3600 * kSec);

  FreqPoint p;
  p.msgsPerSec = msgsPerSec;
  auto& n0 = dynamic_cast<abcast::A2Node&>(ex.node(0));
  p.usefulRoundFraction =
      n0.roundsExecuted() == 0
          ? 0
          : static_cast<double>(n0.usefulRounds()) /
                static_cast<double>(n0.roundsExecuted());
  p.emptyRounds = n0.roundsExecuted() - n0.usefulRounds();
  double wallSum = 0;
  int64_t minDeg = INT64_MAX;
  for (MsgId id : ids) {
    minDeg = std::min(minDeg, r.trace.latencyDegree(id).value_or(-1));
    wallSum += static_cast<double>(r.trace.wallLatency(id).value_or(0)) / kMs;
  }
  p.meanWallMs = wallSum / count;
  p.minDegree = minDeg;
  return p;
}

void printReproduction() {
  std::printf("\n=== §5.3 — A2 broadcast-frequency sweep (inter-group "
              "latency 100ms) ===\n");
  std::printf("  %10s %16s %14s %12s %10s\n", "msg/s", "useful rounds",
              "empty rounds", "mean wall", "min Delta");
  for (double f : {1.0, 2.0, 5.0, 8.0, 10.0, 15.0, 20.0, 50.0, 100.0}) {
    auto p = measure(f, 1);
    std::printf("  %10.0f %15.0f%% %14llu %10.1fms %10lld\n", p.msgsPerSec,
                p.usefulRoundFraction * 100,
                static_cast<unsigned long long>(p.emptyRounds), p.meanWallMs,
                static_cast<long long>(p.minDegree));
  }
  std::printf("\n  expectation (§5.3): below ~10 msg/s gaps outlast a round "
              "and the algorithm repeatedly goes quiescent\n"
              "  (each empty round is a stop; restarted casts pay the "
              "Theorem-5.2 cost); at and above ~10 msg/s rounds are\n"
              "  continuously useful (one trailing empty round only) and "
              "the algorithm never becomes reactive.\n"
              "  min Delta = 1 appears whenever the two groups' round "
              "phases align (Theorem 5.1's run shape).\n\n");
}

void BM_FrequencyPoint(benchmark::State& state) {
  const double f = static_cast<double>(state.range(0));
  FreqPoint p;
  for (auto _ : state) {
    p = measure(f, 1);
    benchmark::DoNotOptimize(p);
  }
  state.counters["useful_round_pct"] = p.usefulRoundFraction * 100;
  state.counters["empty_rounds"] = static_cast<double>(p.emptyRounds);
  state.counters["mean_wall_ms"] = p.meanWallMs;
}
BENCHMARK(BM_FrequencyPoint)->Arg(2)->Arg(10)->Arg(50);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
