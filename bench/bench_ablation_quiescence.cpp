// Ablation of A2's quiescence mechanism (§5.2):
//
// A2 predicts "no more traffic" whenever a round delivers nothing, and
// stops; a later broadcast restarts rounds at a one-extra-WAN-delay cost
// (Theorem 5.2). This bench quantifies that design point on bursty
// workloads: for different gap lengths between bursts it reports the
// background bundle traffic during gaps (quiescence saves it entirely),
// and the latency penalty of the first message of each burst (the restart
// cost). The never-quiescent deterministic-merge algorithm [1] is the
// contrast: no restart penalty, permanent background traffic.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct BurstStats {
  double firstOfBurstWallMs = 0;   // mean wall latency of burst openers
  double restOfBurstWallMs = 0;    // mean wall latency of followers
  uint64_t interMsgs = 0;          // total inter-group traffic
  bool safe = false;
};

enum class A2Variant { kDefault, kLinger, kRate };

BurstStats measure(core::ProtocolKind kind, SimTime gap, uint64_t seed,
                   A2Variant variant = A2Variant::kDefault) {
  auto cfg = fixedConfig(kind, 2, 2, seed);
  cfg.merge.heartbeatPeriod = 200 * kMs;
  if (variant == A2Variant::kLinger) {
    cfg.a2.predictor = abcast::A2Options::Predictor::kLinger;
    cfg.a2.lingerRounds = 6;
  } else if (variant == A2Variant::kRate) {
    cfg.a2.predictor = abcast::A2Options::Predictor::kRateAdaptive;
    cfg.a2.rateMultiplier = 6.0;
  }
  core::Experiment ex(cfg);
  const int bursts = 6, perBurst = 5;
  std::vector<MsgId> first, rest;
  SimTime t = 10 * kMs;
  for (int b = 0; b < bursts; ++b) {
    for (int i = 0; i < perBurst; ++i) {
      // All senders of a burst live in group 0: the other group is then
      // woken only by the bundle exchange, which is exactly the restart
      // path whose cost (Thm 5.2) this ablation quantifies. (A concurrent
      // cast from the other group would start its round proactively and
      // hide the penalty.)
      auto id = ex.castAllAt(t, static_cast<ProcessId>(i % 2), "b");
      (i == 0 ? first : rest).push_back(id);
      t += 40 * kMs;
    }
    t += gap;
  }
  const SimTime horizon =
      kind == core::ProtocolKind::kDetMerge00 ? t + 2 * kSec : 3600 * kSec;
  auto r = ex.run(horizon);

  BurstStats s;
  s.safe = r.checkAtomicSuite().empty();
  auto mean = [&](const std::vector<MsgId>& ids) {
    double sum = 0;
    for (MsgId id : ids)
      sum += static_cast<double>(r.trace.wallLatency(id).value_or(0)) / kMs;
    return sum / static_cast<double>(ids.size());
  };
  s.firstOfBurstWallMs = mean(first);
  s.restOfBurstWallMs = mean(rest);
  s.interMsgs = r.traffic.interAlgorithmic();
  return s;
}

void printReproduction() {
  std::printf("\n=== Ablation — A2 quiescence on bursty workloads (6 bursts "
              "x 5 msgs @ 25/s) ===\n");
  std::printf("  %-10s %-28s %16s %16s %12s\n", "gap", "algorithm",
              "burst-opener", "follower", "inter msgs");
  struct Entry {
    core::ProtocolKind kind;
    A2Variant variant;
    const char* label;
  };
  const Entry entries[] = {
      {core::ProtocolKind::kA2, A2Variant::kDefault, "A2 (stop on empty)"},
      {core::ProtocolKind::kA2, A2Variant::kLinger, "A2 + linger(6) §5.3"},
      {core::ProtocolKind::kA2, A2Variant::kRate, "A2 + rate-adaptive §5.3"},
      {core::ProtocolKind::kDetMerge00, A2Variant::kDefault,
       "Aguilera & Strom 00 [1]"},
  };
  for (SimTime gap : {0 * kMs, 500 * kMs, 2 * kSec, 10 * kSec}) {
    for (const Entry& e : entries) {
      auto s = measure(e.kind, gap, 1, e.variant);
      char g[32];
      std::snprintf(g, sizeof g, "%.1fs", static_cast<double>(gap) / kSec);
      std::printf("  %-10s %-28s %14.1fms %14.1fms %12llu%s\n", g, e.label,
                  s.firstOfBurstWallMs, s.restOfBurstWallMs,
                  static_cast<unsigned long long>(s.interMsgs),
                  s.safe ? "" : "  [SAFETY VIOLATION]");
    }
  }
  std::printf("\n  expectation: with growing gaps A2's burst openers pay "
              "the restart (~2 WAN delays vs ~1 when warm) while its total "
              "traffic stays flat\n  (no rounds run during gaps); the "
              "linger/rate predictors (§5.3's suggested refinements) keep "
              "short-gap openers warm\n  for a bounded amount of extra "
              "empty-round traffic; the never-quiescent [1] keeps openers "
              "cheap but pays\n  permanent heartbeat traffic that grows "
              "with the gap.\n\n");
}

void BM_BurstyA2(benchmark::State& state) {
  BurstStats s;
  for (auto _ : state) {
    s = measure(core::ProtocolKind::kA2,
                static_cast<SimTime>(state.range(0)) * kMs, 1);
    benchmark::DoNotOptimize(s);
  }
  state.counters["opener_wall_ms"] = s.firstOfBurstWallMs;
  state.counters["inter_msgs"] = static_cast<double>(s.interMsgs);
}
BENCHMARK(BM_BurstyA2)->Arg(0)->Arg(2000)->Arg(10000);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
