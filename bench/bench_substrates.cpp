// Substrate accounting check (paper §6, Figure 1 footnote):
//
// "we consider the oracle-based uniform reliable broadcast and uniform
// consensus algorithms of [6] and [11] respectively... The latency degrees
// of [6] and [11] are respectively one and two. Furthermore, considering
// that a process p multicasts a message to k groups... or that k groups
// execute consensus, the algorithms respectively send d(k-1) and
// 2kd(kd-1) inter-group messages."
//
// This bench measures our implementations of both substrates against those
// numbers: reliable multicast latency degree and inter-group count, and
// consensus latency degree (in WAN delays, when run ACROSS k groups — it is
// zero by construction when run inside one group) and message count.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/runtime.hpp"
#include "consensus/consensus.hpp"
#include "rmcast/rmcast.hpp"

namespace wanmc::bench {
namespace {

// ---- reliable multicast ---------------------------------------------------

class RmHost final : public sim::Node {
 public:
  RmHost(sim::Runtime& rt, ProcessId pid, rmcast::Uniformity uni)
      : sim::Node(rt, pid),
        rm(rt, pid, rmcast::RelayPolicy::kIntraOnly, uni) {
    rm.onDeliver([this](const AppMsgPtr&) { deliveredAtLamport = runtime().lamport(this->pid()); });
  }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    rm.onMessage(from, static_cast<const rmcast::RmPayload&>(*p));
  }
  rmcast::ReliableMulticast rm;
  uint64_t deliveredAtLamport = UINT64_MAX;
};

struct RmResult {
  int64_t degree = -1;
  uint64_t inter = 0;
};

RmResult measureRm(int k, int d, rmcast::Uniformity uni) {
  sim::Runtime rt(Topology(k, d), sim::LatencyModel::fixed(kMs / 10, 100 * kMs),
                  1);
  std::vector<RmHost*> hosts;
  for (ProcessId p = 0; p < k * d; ++p) {
    auto n = std::make_unique<RmHost>(rt, p, uni);
    hosts.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  GroupSet dest;
  for (GroupId g = 0; g < k; ++g) dest.add(g);
  const uint64_t castTs = rt.lamport(0);
  hosts[0]->rm.rmcast(makeAppMessage(1, 0, dest));
  rt.run();
  RmResult r;
  r.inter = rt.traffic().at(Layer::kReliableMulticast).inter;
  uint64_t maxTs = 0;
  for (auto* h : hosts)
    if (h->deliveredAtLamport != UINT64_MAX)
      maxTs = std::max(maxTs, h->deliveredAtLamport);
  r.degree = static_cast<int64_t>(maxTs - castTs);
  return r;
}

// ---- consensus --------------------------------------------------------------

class ConsHost final : public sim::Node {
 public:
  ConsHost(sim::Runtime& rt, ProcessId pid, std::vector<ProcessId> members,
           consensus::ConsensusKind kind)
      : sim::Node(rt, pid) {
    fd = std::make_unique<fd::OracleFd>(rt, pid, 0);
    svc = consensus::makeConsensus(kind, rt, pid, std::move(members),
                                   fd.get(), 0);
    svc->onDecide([this](consensus::Instance, const ConsensusValue&) {
      decidedAtLamport = runtime().lamport(this->pid());
      decidedAt = now();
    });
  }
  void onMessage(ProcessId from, const PayloadPtr& p) override {
    svc->onMessage(from,
                   static_cast<const consensus::ConsensusPayload&>(*p));
  }
  std::unique_ptr<fd::FailureDetector> fd;
  std::unique_ptr<consensus::ConsensusService> svc;
  uint64_t decidedAtLamport = UINT64_MAX;
  SimTime decidedAt = -1;
};

struct ConsResult {
  int64_t degree = -1;  // inter-group delays, max over deciders
  uint64_t inter = 0;
  uint64_t intra = 0;
  SimTime lastDecide = -1;
};

ConsResult measureConsensus(int k, int d, consensus::ConsensusKind kind) {
  sim::Runtime rt(Topology(k, d), sim::LatencyModel::fixed(kMs / 10, 100 * kMs),
                  1);
  std::vector<ConsHost*> hosts;
  std::vector<ProcessId> members;
  for (ProcessId p = 0; p < k * d; ++p) members.push_back(p);
  for (ProcessId p = 0; p < k * d; ++p) {
    auto n = std::make_unique<ConsHost>(rt, p, members, kind);
    hosts.push_back(n.get());
    rt.attach(p, std::move(n));
  }
  rt.start();
  for (auto* h : hosts) h->svc->propose(1, uint64_t{42});
  rt.run();
  ConsResult r;
  r.inter = rt.traffic().at(Layer::kConsensus).inter;
  r.intra = rt.traffic().at(Layer::kConsensus).intra;
  uint64_t maxTs = 0;
  for (auto* h : hosts) {
    if (h->decidedAtLamport != UINT64_MAX)
      maxTs = std::max(maxTs, h->decidedAtLamport);
    r.lastDecide = std::max(r.lastDecide, h->decidedAt);
  }
  r.degree = static_cast<int64_t>(maxTs);  // proposals start at lamport 0
  return r;
}

void printReproduction() {
  std::printf("\n=== Substrates — reliable multicast ([6]-style) ===\n");
  std::printf("  %-22s %8s %8s %14s %16s\n", "variant", "k", "d",
              "degree (paper 1)", "inter (paper d(k-1))");
  for (int k : {2, 3, 4}) {
    for (int d : {2, 3}) {
      auto nu = measureRm(k, d, rmcast::Uniformity::kNonUniform);
      auto u = measureRm(k, d, rmcast::Uniformity::kUniform);
      std::printf("  %-22s %8d %8d %14lld %10llu (=%d)\n", "non-uniform", k,
                  d, static_cast<long long>(nu.degree),
                  static_cast<unsigned long long>(nu.inter), d * (k - 1));
      std::printf("  %-22s %8d %8d %14lld %10llu (=%d)\n", "uniform", k, d,
                  static_cast<long long>(u.degree),
                  static_cast<unsigned long long>(u.inter), d * (k - 1));
    }
  }

  std::printf("\n=== Substrates — consensus ([11]-style early consensus) "
              "===\n");
  std::printf("  %-22s %8s %8s %16s %14s %14s\n", "scope", "k", "d",
              "degree (paper 2)", "inter msgs", "2kd(kd-1)");
  for (int k : {1, 2, 3}) {
    for (int d : {2, 3}) {
      auto r = measureConsensus(k, d, consensus::ConsensusKind::kEarly);
      const int n = k * d;
      std::printf("  %-22s %8d %8d %16lld %14llu %14d\n",
                  k == 1 ? "intra-group" : "across groups", k, d,
                  static_cast<long long>(r.degree),
                  static_cast<unsigned long long>(r.inter),
                  2 * k * d * (n - 1));
    }
  }
  std::printf("\n  notes: intra-group consensus costs ZERO inter-group "
              "delays/messages — the basis of A1/A2's accounting;\n"
              "  across k groups the early-deciding path costs 2 WAN delays "
              "and O((kd)^2) messages, matching [11]'s row\n"
              "  (our count includes the decide-relay reliable broadcast; "
              "same order).\n\n");
}

void BM_RmCast(benchmark::State& state) {
  RmResult r;
  for (auto _ : state) {
    r = measureRm(3, 2, rmcast::Uniformity::kNonUniform);
    benchmark::DoNotOptimize(r);
  }
  state.counters["degree"] = static_cast<double>(r.degree);
  state.counters["inter_msgs"] = static_cast<double>(r.inter);
}
BENCHMARK(BM_RmCast);

void BM_ConsensusIntra(benchmark::State& state) {
  ConsResult r;
  for (auto _ : state) {
    r = measureConsensus(1, static_cast<int>(state.range(0)),
                         consensus::ConsensusKind::kEarly);
    benchmark::DoNotOptimize(r);
  }
  state.counters["decide_ms"] = static_cast<double>(r.lastDecide) / kMs;
}
BENCHMARK(BM_ConsensusIntra)->Arg(2)->Arg(3)->Arg(5);

void BM_ConsensusCrossGroup(benchmark::State& state) {
  ConsResult r;
  for (auto _ : state) {
    r = measureConsensus(static_cast<int>(state.range(0)), 2,
                         consensus::ConsensusKind::kEarly);
    benchmark::DoNotOptimize(r);
  }
  state.counters["degree"] = static_cast<double>(r.degree);
  state.counters["inter_msgs"] = static_cast<double>(r.inter);
}
BENCHMARK(BM_ConsensusCrossGroup)->Arg(2)->Arg(3);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
