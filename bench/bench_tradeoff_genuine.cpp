// The introduction's tradeoff, quantified:
//
// "If latency is the main concern, then every operation should be broadcast
// to all groups... This solution, however, has a high message complexity...
// To reduce the message complexity, genuine multicast can be used. However,
// any genuine multicast algorithm will have a latency degree of at least
// two."
//
// Partial-replication scenario: a system of G groups; every operation
// touches a fixed number of groups k << G. We compare genuine A1 against
// the non-genuine reduction to A2 (broadcast to everyone, deliver at
// addressees), sweeping the system size G at k = 2, and report per-message
// inter-group traffic (grows with G only for the broadcast) and delivery
// latency (one WAN delay better for the broadcast, when warm).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct Point {
  double interPerMsg = 0;
  int64_t minDegree = -1;
  double meanWallMs = 0;
  bool safe = false;
};

Point measure(core::ProtocolKind kind, int systemGroups, uint64_t seed) {
  auto cfg = fixedConfig(kind, systemGroups, 2, seed);
  core::Experiment ex(cfg);
  SplitMix64 rng(seed * 101);
  const int count = 30;
  std::vector<MsgId> ids;
  for (int i = 0; i < count; ++i) {
    // Operations touch 2 groups, picked pseudo-randomly; the sender lives
    // in one of them.
    const auto g1 = static_cast<GroupId>(rng.next() %
                                         static_cast<uint64_t>(systemGroups));
    auto g2 = static_cast<GroupId>(rng.next() %
                                   static_cast<uint64_t>(systemGroups));
    if (g2 == g1) g2 = (g1 + 1) % systemGroups;
    const auto sender = static_cast<ProcessId>(g1 * 2);
    ids.push_back(ex.castAt(10 * kMs + i * 40 * kMs, sender,
                            GroupSet::of({g1, g2}), "op"));
  }
  auto r = ex.run(3600 * kSec);
  Point p;
  p.safe = r.checkAtomicSuite().empty();
  p.interPerMsg = static_cast<double>(r.traffic.interAlgorithmic()) / count;
  p.minDegree = r.trace.minLatencyDegree().value_or(-1);
  double wallSum = 0;
  for (MsgId id : ids)
    wallSum += static_cast<double>(r.trace.wallLatency(id).value_or(0)) / kMs;
  p.meanWallMs = wallSum / count;
  return p;
}

void printReproduction() {
  std::printf("\n=== Intro tradeoff — genuine A1 vs broadcast-based "
              "multicast (ops touch 2 groups, d=2, 25 op/s) ===\n");
  std::printf("  %-8s %-28s %14s %12s %12s\n", "G", "algorithm",
              "inter msgs/op", "min Delta", "mean wall");
  for (int G : {2, 3, 4, 6, 8}) {
    for (auto kind :
         {core::ProtocolKind::kA1, core::ProtocolKind::kViaBcast}) {
      auto p = measure(kind, G, 1);
      std::printf("  %-8d %-28s %14.1f %12lld %10.1fms%s\n", G,
                  core::protocolName(kind), p.interPerMsg,
                  static_cast<long long>(p.minDegree), p.meanWallMs,
                  p.safe ? "" : "  [SAFETY VIOLATION]");
    }
  }
  std::printf("\n  expectation: A1's traffic is flat in G (genuineness: "
              "only the 2 addressed groups work) at min Delta = 2;\n"
              "  the broadcast reduction reaches min Delta = 1 but its "
              "per-op traffic grows ~quadratically with the system size.\n"
              "  The crossover makes genuine multicast the bandwidth choice "
              "as soon as G exceeds the touched set.\n\n");
}

void BM_Tradeoff(benchmark::State& state, core::ProtocolKind kind) {
  Point p;
  for (auto _ : state) {
    p = measure(kind, static_cast<int>(state.range(0)), 1);
    benchmark::DoNotOptimize(p);
  }
  state.counters["inter_per_msg"] = p.interPerMsg;
  state.counters["min_degree"] = static_cast<double>(p.minDegree);
}
BENCHMARK_CAPTURE(BM_Tradeoff, A1, core::ProtocolKind::kA1)
    ->Arg(2)->Arg(4)->Arg(8);
BENCHMARK_CAPTURE(BM_Tradeoff, ViaBcast, core::ProtocolKind::kViaBcast)
    ->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
