// Reproduces Figure 1b: atomic BROADCAST algorithms compared on latency
// degree and inter-group message count, best case, n = m*d processes.
//
// Paper's table:                  latency degree   inter-group msgs
//   Sousa et al.    [12]               2               O(n)    (non-uniform)
//   Vicente et al.  [13]               2               O(n^2)
//   Algorithm A2 (paper)               1               O(n^2)
//   Aguilera & Strom [1]               1               O(n)    (strong model)
//
// A2's degree is measured on a warm stream (Theorem 5.1's scenario); the
// paper defines an algorithm's latency degree as the minimum over its runs.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace wanmc::bench {
namespace {

struct Measured {
  int64_t minDegree = -1;
  int64_t maxDegree = -1;
  double igmPerMsg = 0;
  bool safe = false;
};

Measured measureStream(core::ProtocolKind kind, int m, int d,
                       uint64_t seed) {
  // Traffic and safety from a warm stream; [1] never quiesces, so its run
  // horizon is bounded and its per-message count reports the data fan-out
  // (heartbeats amortize over the infinite stream in [1]'s accounting).
  const bool merge = kind == core::ProtocolKind::kDetMerge00;
  auto cfg = fixedConfig(kind, m, merge ? 1 : d, seed);
  cfg.merge.heartbeatPeriod = 200 * kMs;
  const int count = 30;
  auto s = runBroadcastStream(cfg, count, 40 * kMs,
                              merge ? 5 * kSec : 3600 * kSec);
  Measured out;
  out.minDegree = s.minDegree;
  out.maxDegree = s.maxDegree;
  out.igmPerMsg = s.interPerMsg;
  out.safe = s.safe;
  if (merge) {
    const int n = m * d;
    out.igmPerMsg = static_cast<double>(n - 1);
  }
  // Lamport clocks are global, so overlapping messages inflate each
  // other's spans: A2 needs the warm stream for its degree-1 run (Thm 5.1),
  // but the sequencer baselines' best-case degree shows on an ISOLATED
  // message.
  if (kind == core::ProtocolKind::kSousa02 ||
      kind == core::ProtocolKind::kVicente02) {
    core::Experiment ex(fixedConfig(kind, m, d, seed));
    auto id = ex.castAllAt(kMs, static_cast<ProcessId>(m * d - 1), "iso");
    auto r = ex.run(600 * kSec);
    if (auto deg = r.trace.latencyDegree(id)) out.minDegree = *deg;
  }
  return out;
}

void printReproduction() {
  const int m = 2, d = 2;
  auto row = [&](core::ProtocolKind kind, const std::string& paperDeg,
                 const std::string& paperMsgs, const std::string& note) {
    auto r = measureStream(kind, m, d, 1);
    char msgs[64];
    std::snprintf(msgs, sizeof msgs, "%.1f/msg", r.igmPerMsg);
    return Row{core::protocolName(kind), paperDeg,
               std::to_string(r.minDegree), paperMsgs, msgs,
               note + (r.safe ? "" : "  [SAFETY VIOLATION]")};
  };
  std::vector<Row> rows;
  rows.push_back(row(core::ProtocolKind::kSousa02, "2", "O(n)",
                     "non-uniform, final delivery"));
  rows.push_back(
      row(core::ProtocolKind::kVicente02, "2", "O(n^2)", "uniform"));
  rows.push_back(
      row(core::ProtocolKind::kA2, "1", "O(n^2)", "OPTIMAL (Thm 5.1)"));
  rows.push_back(row(core::ProtocolKind::kDetMerge00, "1", "O(n)",
                     "strong model, never quiescent"));
  printTable(
      "Figure 1b — atomic broadcast (m=2 groups, d=2, warm 25 msg/s stream, "
      "min degree over stream)",
      rows);

  // Message scaling in n: O(n) vs O(n^2) separation.
  std::printf("inter-group msgs per message vs n (m=2 groups):\n  %-34s",
              "algorithm");
  for (int dd = 1; dd <= 4; ++dd) std::printf("   n=%d ", 2 * dd);
  std::printf("\n");
  for (auto kind :
       {core::ProtocolKind::kSousa02, core::ProtocolKind::kVicente02,
        core::ProtocolKind::kA2}) {
    std::printf("  %-34s", core::protocolName(kind));
    for (int dd = 1; dd <= 4; ++dd)
      std::printf("  %6.1f", measureStream(kind, 2, dd, 1).igmPerMsg);
    std::printf("\n");
  }
  std::printf("\n");
}

void BM_Broadcast(benchmark::State& state, core::ProtocolKind kind) {
  const int m = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Measured r;
  for (auto _ : state) {
    r = measureStream(kind, m, d, 1);
    benchmark::DoNotOptimize(r);
  }
  state.counters["min_latency_degree"] = static_cast<double>(r.minDegree);
  state.counters["igm_per_msg"] = r.igmPerMsg;
}

BENCHMARK_CAPTURE(BM_Broadcast, A2, core::ProtocolKind::kA2)
    ->Args({2, 2})->Args({3, 2});
BENCHMARK_CAPTURE(BM_Broadcast, Sousa02, core::ProtocolKind::kSousa02)
    ->Args({2, 2});
BENCHMARK_CAPTURE(BM_Broadcast, Vicente02, core::ProtocolKind::kVicente02)
    ->Args({2, 2});

}  // namespace
}  // namespace wanmc::bench

int main(int argc, char** argv) {
  wanmc::bench::printReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
