#include "core/export.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace wanmc::core {

namespace {

std::string destString(const GroupSet& s) {
  std::string out;
  for (GroupId g : s.groups()) {
    if (!out.empty()) out += "|";
    out += std::to_string(g);
  }
  return out;
}

}  // namespace

void writeDeliveriesCsv(const RunResult& r, std::ostream& os) {
  os << "process,group,msg,sender,destGroups,lamport,simTimeUs,order\n";
  for (const auto& d : r.trace.deliveries) {
    const auto destIt = r.trace.destOf.find(d.msg);
    const auto senderIt = r.trace.senderOf.find(d.msg);
    os << d.process << ',' << r.topo.group(d.process) << ',' << d.msg << ','
       << (senderIt != r.trace.senderOf.end() ? senderIt->second : -1) << ','
       << (destIt != r.trace.destOf.end() ? destString(destIt->second)
                                          : std::string())
       << ',' << d.lamport << ',' << d.when << ',' << d.order << '\n';
  }
}

void writeMessagesCsv(const RunResult& r, std::ostream& os) {
  os << "msg,sender,destGroups,castUs,lamport,latencyDegree,wallLatencyUs\n";
  for (const auto& c : r.trace.casts) {
    const auto deg = r.trace.latencyDegree(c.msg);
    const auto wall = r.trace.wallLatency(c.msg);
    os << c.msg << ',' << c.process << ',' << destString(c.dest) << ','
       << c.when << ',' << c.lamport << ','
       << (deg ? std::to_string(*deg) : std::string("-")) << ','
       << (wall ? std::to_string(*wall) : std::string("-")) << '\n';
  }
}

void writeSummaryJson(const RunResult& r, std::ostream& os) {
  // Latency-degree histogram.
  std::map<int64_t, int> degHist;
  std::vector<SimTime> walls;
  for (const auto& c : r.trace.casts) {
    if (auto deg = r.trace.latencyDegree(c.msg)) ++degHist[*deg];
    if (auto wall = r.trace.wallLatency(c.msg)) walls.push_back(*wall);
  }
  std::sort(walls.begin(), walls.end());
  auto pct = [&](double q) -> SimTime {
    if (walls.empty()) return 0;
    const auto idx = static_cast<size_t>(
        q * static_cast<double>(walls.size() - 1) + 0.5);
    return walls[std::min(idx, walls.size() - 1)];
  };

  const auto violations = r.checkAtomicSuite();

  os << "{\n";
  os << "  \"processes\": " << r.topo.numProcesses() << ",\n";
  os << "  \"groups\": " << r.topo.numGroups() << ",\n";
  os << "  \"casts\": " << r.trace.casts.size() << ",\n";
  os << "  \"deliveries\": " << r.trace.deliveries.size() << ",\n";
  os << "  \"traffic\": {\n";
  for (int l = 0; l < 5; ++l) {
    const auto layer = static_cast<Layer>(l);
    os << "    \"" << layerName(layer) << "\": {\"intra\": "
       << r.traffic.at(layer).intra << ", \"inter\": "
       << r.traffic.at(layer).inter << "}" << (l + 1 < 5 ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"latencyDegreeHistogram\": {";
  bool firstH = true;
  for (const auto& [deg, n] : degHist) {
    if (!firstH) os << ", ";
    os << "\"" << deg << "\": " << n;
    firstH = false;
  }
  os << "},\n";
  os << "  \"wallLatencyUs\": {\"p50\": " << pct(0.5) << ", \"p90\": "
     << pct(0.9) << ", \"max\": " << (walls.empty() ? 0 : walls.back())
     << "},\n";
  os << "  \"lastAlgorithmicSendUs\": " << r.lastAlgoSend << ",\n";
  os << "  \"correctProcesses\": " << r.correct.size() << ",\n";
  os << "  \"safetyViolations\": [";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << violations[i] << "\"";
  }
  os << "]\n";
  os << "}\n";
}

}  // namespace wanmc::core
