#include "core/export.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace wanmc::core {

namespace {

std::string destString(const GroupSet& s) {
  std::string out;
  for (GroupId g : s.groups()) {
    if (!out.empty()) out += "|";
    out += std::to_string(g);
  }
  return out;
}

}  // namespace

void writeDeliveriesCsv(const RunResult& r, std::ostream& os) {
  os << "process,group,msg,sender,destGroups,lamport,simTimeUs,order\n";
  for (const auto& d : r.trace.deliveries) {
    const auto destIt = r.trace.destOf.find(d.msg);
    const auto senderIt = r.trace.senderOf.find(d.msg);
    os << d.process << ',' << r.topo.group(d.process) << ',' << d.msg << ','
       << (senderIt != r.trace.senderOf.end() ? senderIt->second : -1) << ','
       << (destIt != r.trace.destOf.end() ? destString(destIt->second)
                                          : std::string())
       << ',' << d.lamport << ',' << d.when << ',' << d.order << '\n';
  }
}

namespace {

// Harvested results always carry a populated summary; hand-assembled
// RunResults (tests, external tooling) may not — rebuild from the trace
// so the exporters never silently print an empty measurement.
metrics::Summary ensureSummary(const RunResult& r) {
  if (r.metrics.casts != 0 || r.trace.casts.empty()) return r.metrics;
  return metrics::summarizeTrace(r.trace, r.topo, r.traffic, r.lastAlgoSend,
                                 r.endTime);
}

}  // namespace

void writeSummaryJson(const RunResult& r, std::ostream& os,
                      const verify::Violations* precomputed) {
  // Everything below reads the streaming summary — no trace rescans. The
  // trace is consulted only by the safety checkers.
  const metrics::Summary m = ensureSummary(r);
  const metrics::LatencyStats wall = m.msgStats();

  const verify::Violations violations =
      precomputed != nullptr ? *precomputed : r.checkAtomicSuite();

  os << "{\n";
  os << "  \"processes\": " << r.topo.numProcesses() << ",\n";
  os << "  \"groups\": " << r.topo.numGroups() << ",\n";
  os << "  \"casts\": " << m.casts << ",\n";
  os << "  \"deliveries\": " << m.deliveries << ",\n";
  os << "  \"traffic\": {\n";
  for (int l = 0; l < kNumLayers; ++l) {
    const auto layer = static_cast<Layer>(l);
    os << "    \"" << layerName(layer) << "\": {\"intra\": "
       << m.traffic.at(layer).intra << ", \"inter\": "
       << m.traffic.at(layer).inter << "}"
       << (l + 1 < kNumLayers ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"latencyDegreeHistogram\": {";
  bool firstH = true;
  for (const auto& [deg, n] : m.latencyDegrees) {
    if (!firstH) os << ", ";
    os << "\"" << deg << "\": " << n;
    firstH = false;
  }
  os << "},\n";
  os << "  \"wallLatencyUs\": {\"p50\": " << wall.p50 << ", \"p90\": "
     << wall.p90 << ", \"p99\": " << wall.p99 << ", \"max\": " << wall.max
     << "},\n";
  os << "  \"metrics\": ";
  metrics::writeJson(m, os, "  ");
  os << ",\n";
  os << "  \"lastAlgorithmicSendUs\": " << r.lastAlgoSend << ",\n";
  os << "  \"correctProcesses\": " << r.correct.size() << ",\n";
  os << "  \"safetyViolations\": [";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << violations[i] << "\"";
  }
  os << "]\n";
  os << "}\n";
}

void writeLatencyCsv(const RunResult& r, std::ostream& os) {
  const metrics::Summary m = ensureSummary(r);
  os << "scope,key,count,p50_us,p90_us,p99_us,max_us,mean_us\n";
  auto row = [&os](const std::string& scope, const std::string& key,
                   const metrics::LatencyStats& s) {
    os << scope << ',' << key << ',' << s.count << ',' << s.p50 << ','
       << s.p90 << ',' << s.p99 << ',' << s.max << ',' << s.mean << '\n';
  };
  row("message", "", m.msgStats());
  row("delivery", "", m.deliveryStats());
  for (size_t g = 0; g < m.perGroup.size(); ++g)
    if (m.perGroup[g].count() > 0)
      row("group", std::to_string(g), metrics::LatencyStats::of(m.perGroup[g]));
  for (size_t k = 0; k < m.perDestSize.size(); ++k)
    if (m.perDestSize[k].count() > 0)
      row("destsize", std::to_string(k),
          metrics::LatencyStats::of(m.perDestSize[k]));
}

}  // namespace wanmc::core
