#include "core/batcher.hpp"

#include <cassert>

namespace wanmc::core {

void BatchPlane::enqueue(ProcessId sender, const AppMsgPtr& m) {
  assert(!rt_.crashed(sender));
  const Key key{sender, m->dest.bits()};
  const uint32_t inc = rt_.incarnation(sender);

  auto it = open_.find(key);
  if (it != open_.end() && it->second.inc != inc) {
    // The open batch was accumulated by a dead incarnation of the sender:
    // its casts die with it (never flushed, never delivered — safe, the
    // crashed sender is not correct). The fresh incarnation starts clean.
    rt_.harnessCancel(it->second.timer);
    open_.erase(it);
    it = open_.end();
  }
  if (it == open_.end()) {
    Open o;
    o.dest = m->dest;
    o.inc = inc;
    o.gen = nextGen_++;
    const uint64_t gen = o.gen;
    // wanmc-lint: allow(D4): onWindowExpiry checks the batch generation
    // and the sender incarnation; a dead incarnation's flush is dropped
    o.timer = rt_.harnessAt(
        rt_.now() + window_, [this, key, gen]() { onWindowExpiry(key, gen); });
    it = open_.emplace(key, std::move(o)).first;
  }

  it->second.casts.push_back(m);
  if (maxSize_ > 0 && static_cast<int>(it->second.casts.size()) >= maxSize_) {
    rt_.harnessCancel(it->second.timer);
    flushLocked(it);
  }
}

void BatchPlane::onWindowExpiry(Key key, uint64_t gen) {
  auto it = open_.find(key);
  // Stale firing: the batch it was armed for was already flushed by its
  // size bound (and the key possibly reopened since). Generation mismatch
  // detects both.
  if (it == open_.end() || it->second.gen != gen) return;
  const ProcessId sender = key.first;
  if (rt_.crashed(sender) || rt_.incarnation(sender) != it->second.inc) {
    // The sender died (or died and reincarnated) while the window was
    // open: drop the batch instead of flushing on behalf of a dead
    // incarnation.
    open_.erase(it);
    return;
  }
  flushLocked(it);
}

void BatchPlane::flushLocked(std::map<Key, Open>::iterator it) {
  const ProcessId sender = it->first.first;
  const GroupSet dest = it->second.dest;
  std::vector<AppMsgPtr> casts = std::move(it->second.casts);
  // Erase before flushing: the flush xcasts the carrier, which can deliver
  // synchronously (single-member consensus decides in place) and re-enter
  // enqueue through a closed-loop workload.
  open_.erase(it);
  flush_(sender, dest, std::move(casts));
}

}  // namespace wanmc::core
