// StackNode: a simulated process hosting a full protocol stack.
//
// Each process runs (bottom-up): a failure detector, one or more consensus
// services (usually one, scoped to the process's group), a reliable
// multicast endpoint, and the atomic multicast / broadcast algorithm.
// StackNode routes incoming packets to the right component by Layer tag and
// consensus scope, mirroring the modular structure of the paper's proofs.
#pragma once

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bootstrap/bootstrap.hpp"
#include "channel/channel.hpp"
#include "common/batch.hpp"
#include "common/message.hpp"
#include "consensus/consensus.hpp"
#include "fd/failure_detector.hpp"
#include "rmcast/rmcast.hpp"
#include "exec/context.hpp"

namespace wanmc::core {

// How a protocol stack should be parameterized. One StackConfig is shared by
// every node of a run.
struct StackConfig {
  fd::FdKind fdKind = fd::FdKind::kOracle;
  SimTime fdOracleDelay = 50 * kMs;
  fd::HeartbeatFd::Params fdHeartbeat{};
  // Remote-group heartbeat lanes (stacks that widen the FD scope across
  // groups, see FailureDetector::addRemoteGroup) tick/time out under
  // WAN-sized parameters.
  fd::HeartbeatFd::Params fdHeartbeatRemote = fd::HeartbeatFd::remoteDefaults();
  consensus::ConsensusKind consensusKind = consensus::ConsensusKind::kEarly;
  // Per-round consensus progress timer (0 = off, the crash-stop default).
  // REQUIRED for liveness in crash-RECOVERY runs: an amnesiac rejoin can
  // be a round coordinator that is alive (never suspected) yet silent
  // forever, and only a timeout moves the round on. ScenarioRunner arms
  // this automatically for scenarios with a recovery schedule.
  SimTime consensusRoundTimeout = 0;
  rmcast::RelayPolicy rmRelay = rmcast::RelayPolicy::kIntraOnly;
  rmcast::Uniformity rmUniformity = rmcast::Uniformity::kNonUniform;
  // Batching plane (src/core/batcher.hpp): casts sharing a (sender,
  // destination-set) key are accumulated for up to batchWindow and ordered
  // as ONE protocol instance per batch. batchWindow == 0 disables batching
  // entirely — the cast path is then byte-identical to the pre-batching
  // harness (pinned by the golden fingerprints). batchMaxSize bounds a
  // batch's cast count (reaching it flushes immediately); <= 0 leaves the
  // size unbounded, the window alone flushes.
  SimTime batchWindow = 0;
  int batchMaxSize = 0;
  // Reliable-channel substrate (src/channel/): when armed, every non-FD
  // send/sendToMany is routed through a per-link retransmitting ARQ plane,
  // restoring the quasi-reliable FIFO channel contract the algorithms were
  // proved against — delivery obligations then bind through healed
  // partitions and probabilistic loss (RunConfig::lossRate). Off =
  // byte-identical to the direct send path (pinned by every pre-existing
  // golden fingerprint).
  bool reliableChannels = false;
  channel::Config channel{};
  // Bootstrap plane (src/bootstrap/): when armed, a recovered process runs
  // a rejoin handshake — it requests an order-state snapshot plus delivery
  // suffix from a live donor, installs it, and resumes as a full protocol
  // participant instead of an amnesiac. Off = plane never constructed,
  // byte-identical to the pre-bootstrap harness (pinned by every
  // pre-existing golden fingerprint).
  bootstrap::Config bootstrap{};
  // Non-owning; set by the Experiment (which owns the plane) before nodes
  // are built. Null whenever bootstrap.armed is false.
  bootstrap::Plane* bootstrapPlane = nullptr;
};

class StackNode : public exec::Process {
 public:
  StackNode(exec::Context& rt, ProcessId pid, const StackConfig& cfg)
      : exec::Process(rt, pid), cfg_(cfg) {
    // The failure detector's scope is the own group: that is where consensus
    // runs and the only place suspicion matters for the core algorithms.
    // (Stacks that run consensus across groups widen the scope themselves.)
    fd_ = fd::makeFd(cfg.fdKind, rt, pid, rt.topology().members(gid()),
                     cfg.fdOracleDelay, cfg.fdHeartbeat,
                     cfg.fdHeartbeatRemote);
    rm_ = std::make_unique<rmcast::ReliableMulticast>(
        rt, pid, cfg.rmRelay, cfg.rmUniformity);
  }

  void onStart() override {
    fd_->start();
    startProtocol();
  }

  void onMessage(ProcessId from, const PayloadPtr& payload) override {
    switch (payload->layer()) {
      case Layer::kFailureDetector:
        fd_->onMessage(from, *payload);
        break;
      case Layer::kConsensus: {
        const auto& cp =
            static_cast<const consensus::ConsensusPayload&>(*payload);
        auto it = consensusByScope_.find(cp.scope);
        if (it == consensusByScope_.end()) {
          consensus::ConsensusService* svc = onUnknownConsensusScope(from, cp);
          if (svc == nullptr) return;  // not a participant of that scope
          svc->onMessage(from, cp);
        } else {
          it->second->onMessage(from, cp);
        }
        break;
      }
      case Layer::kReliableMulticast:
        rm_->onMessage(from, static_cast<const rmcast::RmPayload&>(*payload));
        break;
      case Layer::kProtocol:
      case Layer::kApp:
        onProtocolMessage(from, payload);
        break;
      case Layer::kChannel:
        // Channel control packets terminate in the channel plane; the
        // substrate never hands them to a node.
        break;
      case Layer::kBootstrap:
        // State-transfer packets belong to the bootstrap plane; the node
        // only hosts the delivery (plane endpoints are not exec::Processs).
        if (cfg_.bootstrapPlane != nullptr)
          cfg_.bootstrapPlane->onMessage(pid(), from, *payload);
        break;
    }
  }

 protected:
  // Creates a consensus service over `members` under scope id `scope`.
  consensus::ConsensusService& addConsensus(uint64_t scope,
                                            std::vector<ProcessId> members) {
    auto svc = consensus::makeConsensus(cfg_.consensusKind, runtime(), pid(),
                                        std::move(members), fd_.get(), scope,
                                        cfg_.consensusRoundTimeout);
    auto* raw = svc.get();
    consensusByScope_[scope] = raw;
    ownedConsensus_.push_back(std::move(svc));
    return *raw;
  }

  // Convention: the per-group consensus service uses the group id as scope.
  consensus::ConsensusService& addGroupConsensus() {
    return addConsensus(static_cast<uint64_t>(gid()),
                        runtime().topology().members(gid()));
  }

  [[nodiscard]] consensus::ConsensusService* findConsensus(uint64_t scope) {
    auto it = consensusByScope_.find(scope);
    return it == consensusByScope_.end() ? nullptr : it->second;
  }

  // Hook for stacks that create consensus services dynamically (e.g. the
  // Rodrigues baseline runs one consensus per message, across groups).
  virtual consensus::ConsensusService* onUnknownConsensusScope(
      ProcessId /*from*/, const consensus::ConsensusPayload&) {
    return nullptr;
  }

  // Bootstrap snapshot surface: visit every consensus service this stack
  // owns (per-group and dynamically-created scopes alike).
  template <class Fn>
  void forEachConsensus(Fn&& fn) {
    for (auto& [scope, svc] : consensusByScope_) fn(scope, *svc);
  }

  virtual void startProtocol() {}
  virtual void onProtocolMessage(ProcessId from, const PayloadPtr& p) = 0;

  [[nodiscard]] rmcast::ReliableMulticast& rm() { return *rm_; }
  [[nodiscard]] fd::FailureDetector& fd() { return *fd_; }
  [[nodiscard]] const fd::FailureDetector& fd() const { return *fd_; }
  [[nodiscard]] const StackConfig& config() const { return cfg_; }

 private:
  StackConfig cfg_;
  std::unique_ptr<fd::FailureDetector> fd_;
  std::unique_ptr<rmcast::ReliableMulticast> rm_;
  std::map<uint64_t, consensus::ConsensusService*> consensusByScope_;
  std::vector<std::unique_ptr<consensus::ConsensusService>> ownedConsensus_;
};

// Base class of every atomic multicast / broadcast protocol node: exposes
// the A-XCast entry point and the A-Deliver callback, and records both
// events against the modified Lamport clock for latency-degree measurement.
// It is also the stacks' one bootstrap::Participant implementation: the
// protocol-agnostic snapshot parts (consensus decisions, rmcast delivered
// set, delivery-suffix replay) live here, the protocol-specific blob is
// delegated to the per-protocol virtuals below.
class XcastNode : public StackNode, public bootstrap::Participant {
 public:
  using DeliverCb = std::function<void(const AppMsgPtr&)>;

  XcastNode(exec::Context& rt, ProcessId pid, const StackConfig& cfg)
      : StackNode(rt, pid, cfg) {
    if (cfg.bootstrapPlane != nullptr)
      cfg.bootstrapPlane->bind(pid, this, fd());
  }

  // A-MCast / A-BCast m from this process.
  virtual void xcast(const AppMsgPtr& m) = 0;

  void onADeliver(DeliverCb cb) { deliverCbs_.push_back(std::move(cb)); }

  [[nodiscard]] const std::vector<AppMsgPtr>& delivered() const {
    return deliveredList_;
  }

  // ---- bootstrap::Participant ---------------------------------------------

  [[nodiscard]] std::shared_ptr<const bootstrap::Snapshot> makeSnapshot()
      override {
    auto s = std::make_shared<bootstrap::Snapshot>();
    s->donorGroup = gid();
    forEachConsensus([&](uint64_t scope, consensus::ConsensusService& svc) {
      s->consensus.push_back({scope, svc.decisions()});
    });
    s->rmDelivered = rm().snapshotDelivered();
    s->suffix = deliveredList_;  // full history, in delivery order
    s->protocol = snapshotProtocolState();
    return s;
  }

  size_t installSnapshot(const bootstrap::Snapshot& s) override {
    // joining_ stays raised through the whole merge: no protocol path may
    // propose or deliver until the suffix replay has fixed the prefix.
    // Consensus decisions first (silent): scopes this incarnation has not
    // (re)created yet — Rodrigues98 per-message scopes — are skipped; the
    // protocol blob carries their outcomes.
    for (const auto& cs : s.consensus)
      if (auto* svc = findConsensus(cs.scope))
        svc->installDecisions(cs.decisions);
    rm().installDelivered(s.rmDelivered);
    installProtocolState(s);
    // Replay the donor's delivery history restricted to messages this
    // process is an addressee of (identical to the full history for a
    // same-group donor): the new incarnation's sequence is then order-
    // consistent with the donor's, and integrity holds per incarnation.
    // The joining() gates keep the window delivery-free, so the dedup set
    // is normally empty; it is the integrity backstop should a protocol
    // path slip a delivery through before the install.
    std::set<MsgId> have;
    for (const AppMsgPtr& m : deliveredList_) have.insert(m->id);
    size_t replayed = 0;
    for (const AppMsgPtr& m : s.suffix) {
      if (!m->dest.contains(gid())) continue;
      if (!have.insert(m->id).second) continue;
      deliverOne(m);
      ++replayed;
    }
    joining_ = false;
    resumeAfterInstall();
    return replayed;
  }

  void setJoining(bool joining) override { joining_ = joining; }

 protected:
  // True between recovery and snapshot install: protocols hold back
  // proposal INITIATION (never message intake) while it is raised.
  [[nodiscard]] bool joining() const { return joining_; }

  // Protocol-specific snapshot blob (clocks, pending tables, sequencer
  // assignments...). Donor side; null means "nothing beyond the generic
  // parts".
  [[nodiscard]] virtual std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const {
    return nullptr;
  }
  // Rejoiner side: MERGE the donated blob into local state. Runs before
  // the suffix replay; messages that arrived during the joining window
  // must survive the merge (union sets, most-advanced-stage wins).
  virtual void installProtocolState(const bootstrap::Snapshot& /*s*/) {}
  // Rejoiner side, after the replay: kick the protocol's progress paths
  // (drain buffered decisions, re-propose, pump queues).
  virtual void resumeAfterInstall() {}
  // Called by subclasses at the A-XCast event (before any sends). Batch
  // carriers are ordering-layer artifacts: their constituents were already
  // recorded when the batching plane accepted them, and the carrier id
  // itself must never reach the trace.
  void recordXcast(const AppMsgPtr& m) {
    if (!m->batch) runtime().recordCast(pid(), m);
  }

  // Called by subclasses at the A-Deliver event. A batch carrier expands
  // into its constituent casts in batch-internal order: the stacks decide
  // a total order on carriers, so every addressee performs the same
  // expansion at its carrier-delivery point and per-message prefix order
  // is inherited from the carrier order.
  void adeliver(const AppMsgPtr& m) {
    if (const BatchMessage* b = asBatch(m)) {
      for (const AppMsgPtr& c : b->casts) deliverOne(c);
      return;
    }
    deliverOne(m);
  }

 private:
  void deliverOne(const AppMsgPtr& m) {
    runtime().recordDelivery(pid(), m->id);
    deliveredList_.push_back(m);
    for (const auto& cb : deliverCbs_) cb(m);
  }

  std::vector<DeliverCb> deliverCbs_;
  std::vector<AppMsgPtr> deliveredList_;
  bool joining_ = false;
};

}  // namespace wanmc::core
