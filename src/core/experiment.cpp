#include "core/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "abcast/a2_node.hpp"
#include "abcast/sequencer_node.hpp"
#include "amcast/a1_node.hpp"
#include "amcast/ring_node.hpp"
#include "amcast/rodrigues_node.hpp"
#include "amcast/skeen_node.hpp"
#include "amcast/viabcast_node.hpp"
#include "common/batch.hpp"
#include "core/batcher.hpp"
#include "exec/threaded/threaded_runtime.hpp"
#include "metrics/recorder.hpp"
#include "workload/generator.hpp"

namespace wanmc::core {

const char* protocolName(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kA1: return "A1 (this paper)";
    case ProtocolKind::kFritzke98: return "Fritzke et al. 98 [5]";
    case ProtocolKind::kDelporte00: return "Delporte & Fauconnier 00 [4]";
    case ProtocolKind::kRodrigues98: return "Rodrigues et al. 98 [10]";
    case ProtocolKind::kViaBcast: return "non-genuine via A-BCast";
    case ProtocolKind::kSkeen87: return "Skeen 87 [2] (failure-free)";
    case ProtocolKind::kA2: return "A2 (this paper)";
    case ProtocolKind::kSousa02: return "Sousa et al. 02 [12]";
    case ProtocolKind::kVicente02: return "Vicente & Rodrigues 02 [13]";
    case ProtocolKind::kDetMerge00: return "Aguilera & Strom 00 [1]";
  }
  return "?";
}

bool isBroadcastProtocol(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kA2:
    case ProtocolKind::kSousa02:
    case ProtocolKind::kVicente02:
    case ProtocolKind::kDetMerge00:
      return true;
    default:
      return false;
  }
}

namespace {

std::unique_ptr<XcastNode> makeNode(ProtocolKind kind, exec::Context& rt,
                                    ProcessId pid, const RunConfig& cfg) {
  StackConfig stack = cfg.stack;
  switch (kind) {
    case ProtocolKind::kA1:
      return std::make_unique<amcast::A1Node>(rt, pid, stack,
                                              amcast::A1Options{true, true});
    case ProtocolKind::kFritzke98:
      // [5]: no stage skipping, uniform reliable multicast. Uniformity comes
      // from majority-of-own-group copies via INTRA-group relays ([6]'s
      // domain-based scheme), which keeps the primitive at latency degree 1
      // and hence [5] at degree 2, exactly as Figure 1a accounts it.
      stack.rmUniformity = rmcast::Uniformity::kUniform;
      stack.rmRelay = rmcast::RelayPolicy::kIntraOnly;
      return std::make_unique<amcast::A1Node>(
          rt, pid, stack, amcast::A1Options{false, false});
    case ProtocolKind::kDelporte00:
      return std::make_unique<amcast::RingNode>(rt, pid, stack);
    case ProtocolKind::kRodrigues98:
      return std::make_unique<amcast::RodriguesNode>(rt, pid, stack);
    case ProtocolKind::kSkeen87:
      return std::make_unique<amcast::SkeenNode>(rt, pid, stack);
    case ProtocolKind::kViaBcast:
      return std::make_unique<amcast::ViaBcastNode>(rt, pid, stack, cfg.a2);
    case ProtocolKind::kA2:
      return std::make_unique<abcast::A2Node>(rt, pid, stack, cfg.a2);
    case ProtocolKind::kSousa02:
      return std::make_unique<abcast::SequencerNode>(
          rt, pid, stack, abcast::SequencerMode::kOptimisticNonUniform);
    case ProtocolKind::kVicente02:
      return std::make_unique<abcast::SequencerNode>(
          rt, pid, stack, abcast::SequencerMode::kUniformEcho);
    case ProtocolKind::kDetMerge00:
      return std::make_unique<abcast::MergeNode>(rt, pid, stack, cfg.merge);
  }
  return nullptr;
}

// Typed observer feeding capped closed-loop workloads their delivery
// signal (the PR 3 addDeliveryObserver shim used to wrap this; the
// registry is now the only path).
class WorkloadDeliveryObserver final : public sim::RunObserver {
 public:
  explicit WorkloadDeliveryObserver(workload::Generator& gen) : gen_(gen) {}
  void onDeliver(const DeliveryEvent& ev) override { gen_.onDelivered(ev.msg); }

 private:
  workload::Generator& gen_;
};

}  // namespace

void Experiment::validateBackend() const {
  if (cfg_.backend == exec::Backend::kSim) return;
  auto reject = [](const char* what) {
    std::ostringstream os;
    os << "RunConfig: " << what
       << " is a sim-backend feature; the threaded backend measures real "
          "hardware and supports none of the deterministic injection axes";
    throw std::invalid_argument(os.str());
  };
  if (cfg_.stack.reliableChannels) reject("stack.reliableChannels");
  if (cfg_.stack.bootstrap.armed) reject("stack.bootstrap.armed");
  if (cfg_.lossRate != 0) reject("lossRate");
  if (cfg_.recordWire) reject("recordWire");
  if (cfg_.workload && cfg_.workload->model == workload::Model::kClosedLoop &&
      cfg_.workload->inFlightCap > 0)
    reject("a capped closed-loop workload (delivery feedback)");
}

Experiment::Experiment(RunConfig cfg) : cfg_(cfg) {
  Topology topo = cfg_.groupSizes.empty()
                      ? Topology(cfg_.groups, cfg_.procsPerGroup)
                      : Topology(cfg_.groupSizes);
  cfg_.groups = topo.numGroups();
  validateBackend();
  if (cfg_.backend == exec::Backend::kSim) {
    rt_ = std::make_unique<sim::Runtime>(topo, cfg_.latency, cfg_.seed);
    ctx_ = rt_.get();
    rt_->setRecordWire(cfg_.recordWire);
    // Registered before any node or workload so the measurement plane sees
    // every event; the recorder is passive, so run behavior is unchanged.
    // (Threaded runs have no observer registry: RunResult::metrics is
    // reconstructed from the merged wall-clock trace at harvest.)
    if (cfg_.metrics) recorder_ = std::make_unique<metrics::Recorder>(*rt_);
  } else {
    threaded_ = std::make_unique<exec::ThreadedRuntime>(topo, cfg_.latency,
                                                        cfg_.seed);
    ctx_ = threaded_.get();
  }
  // The bootstrap plane outlives every node incarnation and must exist
  // before the first XcastNode constructor runs (nodes bind to it there).
  if (cfg_.stack.bootstrap.armed) {
    bootstrap_ = std::make_unique<bootstrap::Plane>(*ctx_,
                                                    cfg_.stack.bootstrap);
    cfg_.stack.bootstrapPlane = bootstrap_.get();
  }
  for (ProcessId p = 0; p < topo.numProcesses(); ++p) {
    auto node = makeNode(cfg_.protocol, *ctx_, p, cfg_);
    nodes_.push_back(node.get());
    ctx_->attach(p, std::move(node));
  }
  // Recovery rebuilds a crashed process's stack from the same config; the
  // factory also refreshes the experiment's node table so node(pid) always
  // resolves to the live incarnation, and hands the fresh incarnation to
  // the bootstrap plane (which marks it joining and arms the rejoin
  // handshake — the incarnation counter is already bumped here). Recovery
  // is a sim-only axis, so the factory binds to the sim backend.
  if (rt_ != nullptr) {
    rt_->setNodeFactory([this](ProcessId p) -> std::unique_ptr<sim::Node> {
      auto node = makeNode(cfg_.protocol, *ctx_, p, cfg_);
      nodes_[static_cast<size_t>(p)] = node.get();
      if (bootstrap_) bootstrap_->onRecovered(p);
      return node;
    });
  }
  if (cfg_.stack.reliableChannels) {
    channel_ = std::make_unique<channel::Plane>(*ctx_, cfg_.stack.channel);
    ctx_->setChannelHook(channel_.get());
  }
  if (cfg_.lossRate != 0) rt_->setLossRate(cfg_.lossRate);  // validates
  if (batchingEnabled()) {
    batcher_ = std::make_unique<BatchPlane>(
        *ctx_, cfg_.stack.batchWindow, cfg_.stack.batchMaxSize,
        [this](ProcessId sender, GroupSet dest,
               std::vector<AppMsgPtr> casts) {
          // Carrier ids come from the same allocator as cast ids so the
          // two can never collide; checkMsgIdCeiling budgeted for them
          // and allocCarrierId enforces the ceiling at mint time.
          const MsgId cid = allocCarrierId();
          AppMsgPtr carrier = makeCarrier(cid, sender, dest, std::move(casts));
          // The window expires on the harness side (sim scheduler / threaded
          // driver wheel); the xcast itself must run where the sender's
          // protocol state lives. post() is an immediate call on the sim
          // backend and a ring crossing on the threaded one.
          XcastNode* n = &node(sender);
          ctx_->post(sender, [n, carrier]() { n->xcast(carrier); });
        });
  }
  if (cfg_.workload) addWorkload(*cfg_.workload);
}

Experiment::~Experiment() = default;

XcastNode& Experiment::node(ProcessId pid) {
  return *nodes_.at(static_cast<size_t>(pid));
}

void Experiment::validateCast(ProcessId sender, const GroupSet& dest) const {
  const Topology& topo = ctx_->topology();
  if (sender < 0 || sender >= topo.numProcesses()) {
    std::ostringstream os;
    os << "castAt: sender pid " << sender << " out of range [0, "
       << topo.numProcesses() << ")";
    throw std::invalid_argument(os.str());
  }
  if (dest.empty())
    throw std::invalid_argument("castAt: empty destination group set");
  if (topo.numGroups() < 64 &&
      (dest.bits() >> topo.numGroups()) != 0) {
    std::ostringstream os;
    os << "castAt: destination set " << dest.str() << " addresses groups "
       << "beyond the topology's " << topo.numGroups();
    throw std::invalid_argument(os.str());
  }
  // DetMerge00's multicast mode legitimately delivers at addressees only;
  // every other broadcast protocol requires the full group set.
  const bool multicastCapable =
      !isBroadcastProtocol(cfg_.protocol) ||
      (cfg_.protocol == ProtocolKind::kDetMerge00 && cfg_.merge.multicastMode);
  if (!multicastCapable && dest != topo.allGroups()) {
    std::ostringstream os;
    os << "castAt: " << protocolName(cfg_.protocol)
       << " is a broadcast protocol and delivers to every group — pass the "
       << "full group set (or use castAllAt)";
    throw std::invalid_argument(os.str());
  }
}

uint64_t Experiment::carrierBudget(uint64_t casts) const {
  if (!batchingEnabled()) return 0;
  const int s = cfg_.stack.batchMaxSize;
  // No effective size cap (unbounded, or singleton batches): the flush
  // pattern alone decides, and every cast may become its own carrier.
  if (s <= 1) return casts;
  return (casts + static_cast<uint64_t>(s) - 1) / static_cast<uint64_t>(s);
}

MsgId Experiment::allocCarrierId() {
  if (cfg_.protocol == ProtocolKind::kRodrigues98 &&
      nextMsgId_ >= amcast::RodriguesNode::kScopeBase) {
    throw std::runtime_error(
        "Rodrigues98: a batch-carrier id reached the kScopeBase "
        "consensus-scope band (2^20) — the window-flush pattern minted more "
        "carriers than the batchMaxSize budget anticipated. Lower the cast "
        "budget, raise batchMaxSize, or split the run.");
  }
  return nextMsgId_++;
}

void Experiment::checkMsgIdCeiling(uint64_t pending) const {
  if (cfg_.protocol != ProtocolKind::kRodrigues98) return;
  const uint64_t ceiling = amcast::RodriguesNode::kScopeBase;
  // Ids already reserved by installed-but-not-yet-drained workloads count
  // against the budget too: generators allocate lazily, so the ceiling
  // must be enforced against the eventual total, not the current counter.
  // With batching on, carriers draw from the same allocator: the budget
  // grows by the exact size-trigger carrier count (carrierBudget). A
  // window-flush pattern that mints more is caught per carrier by
  // allocCarrierId, so the upfront check can use the tight count instead
  // of the old conservative 2x.
  const uint64_t budget = reservedWorkloadIds_ + pending;
  const uint64_t reach = nextMsgId_ + budget + carrierBudget(budget);
  if (reach <= ceiling) return;
  std::ostringstream os;
  os << "Rodrigues98 runs one consensus instance per message under scope "
     << "kScopeBase + msgId (kScopeBase = 2^20): a workload reaching msg id "
     << (reach - 1)
     << " would collide with the scope band. Split the run or use another "
     << "protocol for >1M-message workloads (ROADMAP: scale ceilings).";
  throw std::invalid_argument(os.str());
}

MsgId Experiment::castAt(SimTime when, ProcessId sender, GroupSet dest,
                         std::string body) {
  validateCast(sender, dest);
  checkMsgIdCeiling(1);
  const MsgId id = nextMsgId_++;
  auto msg = makeAppMessage(id, sender, dest, std::move(body));
  // A harness event (Context::harnessAt), not an incarnation-bound
  // Context::timer: a cast is harness input, not protocol state of the
  // incarnation that scheduled it. It fires iff the sender is alive AT
  // CAST TIME — a crashed sender casts nothing (as before), a
  // crash-recovered one casts again (same rule as issueWorkloadCast).
  ctx_->harnessAt(when, [this, sender, msg]() {
    if (!ctx_->crashed(sender)) dispatchCast(sender, msg);
  });
  return id;
}

MsgId Experiment::issueWorkloadCast(ProcessId sender, GroupSet dest,
                                    std::string body) {
  if (reservedWorkloadIds_ > 0) --reservedWorkloadIds_;  // reserved -> used
  const MsgId id = nextMsgId_++;
  if (!ctx_->crashed(sender))
    dispatchCast(sender, makeAppMessage(id, sender, dest, std::move(body)));
  return id;
}

void Experiment::dispatchCast(ProcessId sender, const AppMsgPtr& m) {
  // Every addressee of the cast owes exactly one A-Deliver: the threaded
  // backend's run loop terminates on this ledger (the sim backend
  // terminates on scheduler quiescence and ignores it).
  for (uint64_t b = m->dest.bits(); b != 0; b &= b - 1)
    expectedDeliveries_ += static_cast<uint64_t>(ctx_->topology().groupSize(
        static_cast<GroupId>(__builtin_ctzll(b))));
  if (batcher_ == nullptr) {
    // The stack records the cast itself. Posted to the sender's execution
    // context: an immediate inline call on the sim backend (byte-identical
    // to the historical direct call), an enqueued command on the sender's
    // own thread on the threaded backend.
    XcastNode* n = &node(sender);
    ctx_->post(sender, [n, m]() { n->xcast(m); });
    return;
  }
  // Batched: the cast becomes observable NOW — the window wait is real
  // latency and must show in the measured numbers — while the stack only
  // sees the carrier at flush time (which skips recording, see
  // XcastNode::recordXcast).
  ctx_->recordCast(sender, m);
  batcher_->enqueue(sender, m);
}

workload::Generator& Experiment::addWorkload(workload::Spec spec) {
  // Generated senders/destinations are valid by construction; replayed
  // trace entries are user input and validated up front, as is the total
  // message-id budget of the workload (reserved now, consumed as the
  // generator issues — layered workloads share one budget).
  const uint64_t budget =
      spec.model == workload::Model::kTraceReplay
          ? static_cast<uint64_t>(spec.trace.size())
          : static_cast<uint64_t>(std::max(spec.count, 0));
  checkMsgIdCeiling(budget);
  reservedWorkloadIds_ += budget;
  if (spec.model == workload::Model::kTraceReplay) {
    // Validate the effective destination the generator will issue: empty
    // means "all groups", and broadcast protocols always get the full set.
    const bool broadcast = isBroadcastProtocol(cfg_.protocol);
    for (const workload::TraceCast& c : spec.trace)
      validateCast(c.sender, (c.dest.empty() || broadcast)
                                 ? ctx_->topology().allGroups()
                                 : c.dest);
  }
  auto gen = std::make_unique<workload::Generator>(*this, std::move(spec));
  workload::Generator* raw = gen.get();
  workloads_.push_back(std::move(gen));
  if (raw->spec().model == workload::Model::kClosedLoop &&
      raw->spec().inFlightCap > 0) {
    // Capped closed loops need delivery feedback: a typed observer on the
    // sim registry (sim/observer.hpp), owned by the experiment. Rejected
    // on the threaded backend by validateBackend.
    assert(rt_ != nullptr);
    workloadObservers_.push_back(
        std::make_unique<WorkloadDeliveryObserver>(*raw));
    rt_->addObserver(workloadObservers_.back().get(),
                     sim::kObserveDeliveries);
  }
  raw->install();
  return *raw;
}

std::vector<MsgId> Experiment::workloadIds() const {
  std::vector<MsgId> ids;
  for (const auto& g : workloads_)
    ids.insert(ids.end(), g->issued().begin(), g->issued().end());
  return ids;
}

MsgId Experiment::castAllAt(SimTime when, ProcessId sender,
                            std::string body) {
  return castAt(when, sender, ctx_->topology().allGroups(), std::move(body));
}

void Experiment::checkPid(ProcessId pid, const char* what) const {
  const Topology& topo = ctx_->topology();
  if (pid < 0 || pid >= topo.numProcesses()) {
    std::ostringstream os;
    os << what << ": pid " << pid << " out of range [0, "
       << topo.numProcesses() << ")";
    throw std::invalid_argument(os.str());
  }
}

void Experiment::crashAt(ProcessId pid, SimTime when) {
  checkPid(pid, "crashAt");
  crashPlanned_.insert(pid);
  runtime().scheduleCrash(pid, when);
}

void Experiment::recoverAt(ProcessId pid, SimTime when) {
  checkPid(pid, "recoverAt");
  runtime().scheduleRecover(pid, when);
}

sim::Runtime::PartitionId Experiment::partitionAt(GroupSet side,
                                                  SimTime from,
                                                  SimTime until) {
  return runtime().partition(side, from, until);
}

RunResult Experiment::run(SimTime until) {
  if (rt_ != nullptr) {
    if (!started_) {
      started_ = true;
      rt_->start();
    }
    rt_->run(until);
    return harvest();
  }
  // Threaded: `until` is a REAL-time budget (µs of wall clock), a safety
  // net rather than a duration — the run ends as soon as the delivery
  // ledger closes: every harness event fired and every addressee of every
  // dispatched cast has recorded its A-Deliver. One-shot: the threads are
  // joined and the traces merged at stop; a second run() just re-harvests.
  if (!started_) {
    started_ = true;
    threaded_->start();
    threaded_->run(until, [this]() {
      return threaded_->pendingHarnessEvents() == 0 &&
             threaded_->deliveredCount() >= expectedDeliveries_;
    });
    threaded_->stop();
  }
  return harvest();
}

RunResult Experiment::runMore(SimTime until) { return run(until); }

RunResult Experiment::harvest() const {
  const exec::Context& ctx = *ctx_;
  RunResult r;
  r.topo = ctx.topology();
  r.trace = ctx.trace();
  r.traffic = ctx.traffic();
  r.lastAlgoSend = ctx.lastAlgorithmicSend();
  r.endTime = ctx.now();
  r.metrics = recorder_
                  ? recorder_->summary(ctx.now())
                  : metrics::summarizeTrace(ctx.trace(), ctx.topology(),
                                            ctx.traffic(),
                                            ctx.lastAlgorithmicSend(),
                                            ctx.now());
  // The recorder observes casts/deliveries/sends, not fault events; both
  // constructions take the fault block straight from the trace. The channel
  // block is likewise injected identically into both constructions: the
  // plane's counters are not reconstructible from the trace.
  r.metrics.faults = faultStatsOf(ctx.trace());
  if (channel_) r.metrics.channels = channel_->stats();
  if (bootstrap_) {
    r.metrics.bootstrap = bootstrap_->stats();
    for (const auto& rj : bootstrap_->rejoins()) {
      RunResult::RejoinResult rr;
      rr.pid = rj.pid;
      rr.installedAt = rj.installedAt;
      rr.suffixReplayed = rj.suffixReplayed;
      for (const auto& rec : ctx.trace().recoveries)
        if (rec.process == rj.pid && rec.when <= rj.installedAt)
          rr.recoveredAt = rec.when;
      for (const auto& d : ctx.trace().deliveries) {
        if (d.process != rj.pid || d.when <= rj.installedAt) continue;
        rr.firstDeliveryAfter = d.when;
        break;
      }
      r.rejoins.push_back(rr);
    }
  }
  for (const auto& rec : ctx.trace().recoveries)
    r.recovered.insert(rec.process);
  for (ProcessId p : ctx.topology().allProcesses()) {
    if (!ctx.everCrashed(p)) r.correct.insert(p);
    if (ctx.everSentAlgorithmic(p)) r.genuineness.sentAlgorithmic.insert(p);
    if (ctx.everReceivedAlgorithmic(p))
      r.genuineness.receivedAlgorithmic.insert(p);
  }
  return r;
}

}  // namespace wanmc::core
