#include "core/experiment.hpp"

#include <cassert>

#include "abcast/a2_node.hpp"
#include "abcast/sequencer_node.hpp"
#include "amcast/a1_node.hpp"
#include "amcast/ring_node.hpp"
#include "amcast/rodrigues_node.hpp"
#include "amcast/skeen_node.hpp"
#include "amcast/viabcast_node.hpp"

namespace wanmc::core {

const char* protocolName(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kA1: return "A1 (this paper)";
    case ProtocolKind::kFritzke98: return "Fritzke et al. 98 [5]";
    case ProtocolKind::kDelporte00: return "Delporte & Fauconnier 00 [4]";
    case ProtocolKind::kRodrigues98: return "Rodrigues et al. 98 [10]";
    case ProtocolKind::kViaBcast: return "non-genuine via A-BCast";
    case ProtocolKind::kSkeen87: return "Skeen 87 [2] (failure-free)";
    case ProtocolKind::kA2: return "A2 (this paper)";
    case ProtocolKind::kSousa02: return "Sousa et al. 02 [12]";
    case ProtocolKind::kVicente02: return "Vicente & Rodrigues 02 [13]";
    case ProtocolKind::kDetMerge00: return "Aguilera & Strom 00 [1]";
  }
  return "?";
}

bool isBroadcastProtocol(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kA2:
    case ProtocolKind::kSousa02:
    case ProtocolKind::kVicente02:
    case ProtocolKind::kDetMerge00:
      return true;
    default:
      return false;
  }
}

namespace {

std::unique_ptr<XcastNode> makeNode(ProtocolKind kind, sim::Runtime& rt,
                                    ProcessId pid, const RunConfig& cfg) {
  StackConfig stack = cfg.stack;
  switch (kind) {
    case ProtocolKind::kA1:
      return std::make_unique<amcast::A1Node>(rt, pid, stack,
                                              amcast::A1Options{true, true});
    case ProtocolKind::kFritzke98:
      // [5]: no stage skipping, uniform reliable multicast. Uniformity comes
      // from majority-of-own-group copies via INTRA-group relays ([6]'s
      // domain-based scheme), which keeps the primitive at latency degree 1
      // and hence [5] at degree 2, exactly as Figure 1a accounts it.
      stack.rmUniformity = rmcast::Uniformity::kUniform;
      stack.rmRelay = rmcast::RelayPolicy::kIntraOnly;
      return std::make_unique<amcast::A1Node>(
          rt, pid, stack, amcast::A1Options{false, false});
    case ProtocolKind::kDelporte00:
      return std::make_unique<amcast::RingNode>(rt, pid, stack);
    case ProtocolKind::kRodrigues98:
      return std::make_unique<amcast::RodriguesNode>(rt, pid, stack);
    case ProtocolKind::kSkeen87:
      return std::make_unique<amcast::SkeenNode>(rt, pid, stack);
    case ProtocolKind::kViaBcast:
      return std::make_unique<amcast::ViaBcastNode>(rt, pid, stack, cfg.a2);
    case ProtocolKind::kA2:
      return std::make_unique<abcast::A2Node>(rt, pid, stack, cfg.a2);
    case ProtocolKind::kSousa02:
      return std::make_unique<abcast::SequencerNode>(
          rt, pid, stack, abcast::SequencerMode::kOptimisticNonUniform);
    case ProtocolKind::kVicente02:
      return std::make_unique<abcast::SequencerNode>(
          rt, pid, stack, abcast::SequencerMode::kUniformEcho);
    case ProtocolKind::kDetMerge00:
      return std::make_unique<abcast::MergeNode>(rt, pid, stack, cfg.merge);
  }
  return nullptr;
}

}  // namespace

Experiment::Experiment(RunConfig cfg) : cfg_(cfg) {
  Topology topo = cfg_.groupSizes.empty()
                      ? Topology(cfg_.groups, cfg_.procsPerGroup)
                      : Topology(cfg_.groupSizes);
  cfg_.groups = topo.numGroups();
  rt_ = std::make_unique<sim::Runtime>(topo, cfg_.latency, cfg_.seed);
  rt_->setRecordWire(cfg_.recordWire);
  for (ProcessId p = 0; p < topo.numProcesses(); ++p) {
    auto node = makeNode(cfg_.protocol, *rt_, p, cfg_);
    nodes_.push_back(node.get());
    rt_->attach(p, std::move(node));
  }
}

Experiment::~Experiment() = default;

XcastNode& Experiment::node(ProcessId pid) {
  return *nodes_.at(static_cast<size_t>(pid));
}

MsgId Experiment::castAt(SimTime when, ProcessId sender, GroupSet dest,
                         std::string body) {
  const MsgId id = nextMsgId_++;
  auto msg = makeAppMessage(id, sender, dest, std::move(body));
  rt_->timer(sender, when - rt_->now(),
             [this, sender, msg]() { node(sender).xcast(msg); });
  return id;
}

MsgId Experiment::castAllAt(SimTime when, ProcessId sender,
                            std::string body) {
  return castAt(when, sender, rt_->topology().allGroups(), std::move(body));
}

void Experiment::crashAt(ProcessId pid, SimTime when) {
  crashPlanned_.insert(pid);
  rt_->scheduleCrash(pid, when);
}

RunResult Experiment::run(SimTime until) {
  if (!started_) {
    started_ = true;
    rt_->start();
  }
  rt_->run(until);
  return harvest();
}

RunResult Experiment::runMore(SimTime until) { return run(until); }

RunResult Experiment::harvest() const {
  RunResult r;
  r.topo = rt_->topology();
  r.trace = rt_->trace();
  r.traffic = rt_->traffic();
  r.lastAlgoSend = rt_->lastAlgorithmicSend();
  r.endTime = rt_->now();
  for (ProcessId p : rt_->topology().allProcesses()) {
    if (!rt_->crashed(p)) r.correct.insert(p);
    if (rt_->everSentAlgorithmic(p)) r.genuineness.sentAlgorithmic.insert(p);
    if (rt_->everReceivedAlgorithmic(p))
      r.genuineness.receivedAlgorithmic.insert(p);
  }
  return r;
}

std::vector<MsgId> scheduleWorkload(Experiment& ex, const WorkloadSpec& spec) {
  SplitMix64 rng(spec.seed);
  const auto& topo = ex.runtime().topology();
  const int g = topo.numGroups();
  const int destGroups = std::min(spec.destGroups, g);
  std::vector<MsgId> ids;
  SimTime when = spec.start;
  for (int i = 0; i < spec.count; ++i, when += spec.interval) {
    const auto sender =
        static_cast<ProcessId>(rng.next() % topo.numProcesses());
    GroupSet dest;
    if (isBroadcastProtocol(ex.config().protocol)) {
      dest = topo.allGroups();
    } else {
      dest.add(topo.group(sender));  // always include the sender's group
      while (dest.size() < destGroups)
        dest.add(static_cast<GroupId>(rng.next() % g));
    }
    ids.push_back(ex.castAt(when, sender, dest,
                            "w" + std::to_string(i)));
  }
  return ids;
}

}  // namespace wanmc::core
