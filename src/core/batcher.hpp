// The batching plane: accumulates casts into per-(sender, destination-set)
// windows and hands each full window to the experiment as ONE carrier.
//
// Sits between the harness cast entry points (Experiment::castAt /
// issueWorkloadCast) and the protocol stacks: a cast is recorded in the
// trace the moment the plane accepts it (the window wait is real latency
// and shows up in the measured numbers), but the stack only sees the
// carrier when the window closes — by its time limit expiring or its size
// bound being reached, whichever is first.
//
// Crash semantics mirror the PR 5 castAt fix: the window-expiry timer is a
// harness event (Context::harnessAt), not an incarnation-bound process timer,
// but it guards itself — a batch opened by incarnation k of the sender is
// dropped, not flushed, if the sender is crashed or reincarnated when the
// window closes. Losing those casts is safe: a crashed sender is not
// "correct", so validity never binds for them, and no process delivered
// them (the carrier was never sent). A fresh incarnation casting into a
// key whose open batch belongs to a dead incarnation starts a new batch;
// the dead one is discarded on the spot.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/message.hpp"
#include "exec/context.hpp"

namespace wanmc::core {

class BatchPlane {
 public:
  // `flush` receives each closed batch (casts in enqueue order, all
  // sharing sender and dest); the experiment turns it into a carrier and
  // xcasts it. Invoked only while the sender's enqueue-time incarnation
  // is still alive.
  using FlushFn = std::function<void(ProcessId sender, GroupSet dest,
                                     std::vector<AppMsgPtr> casts)>;

  BatchPlane(exec::Context& rt, SimTime window, int maxSize, FlushFn flush)
      : rt_(rt), window_(window), maxSize_(maxSize),
        flush_(std::move(flush)) {}

  BatchPlane(const BatchPlane&) = delete;
  BatchPlane& operator=(const BatchPlane&) = delete;

  // Accepts one cast. The caller has already trace-recorded it and
  // guarantees the sender is alive right now.
  void enqueue(ProcessId sender, const AppMsgPtr& m);

  // Open (not yet flushed) batches, for tests and introspection.
  [[nodiscard]] int openBatches() const {
    return static_cast<int>(open_.size());
  }

 private:
  using Key = std::pair<ProcessId, uint64_t>;  // (sender, dest.bits())

  struct Open {
    std::vector<AppMsgPtr> casts;
    GroupSet dest;
    uint32_t inc = 0;     // sender incarnation that opened the batch
    uint64_t gen = 0;     // disambiguates the expiry timer across reuse
    exec::EventId timer = exec::kNoEvent;
  };

  void onWindowExpiry(Key key, uint64_t gen);
  void flushLocked(std::map<Key, Open>::iterator it);

  exec::Context& rt_;
  SimTime window_;
  int maxSize_;
  FlushFn flush_;
  std::map<Key, Open> open_;
  uint64_t nextGen_ = 1;
};

}  // namespace wanmc::core
