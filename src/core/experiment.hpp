// The library's top-level API: configure a WAN, pick a protocol, drive a
// workload, get back a fully instrumented run.
//
//   core::RunConfig cfg;
//   cfg.groups = 3; cfg.procsPerGroup = 2; cfg.protocol = ProtocolKind::kA1;
//   core::Experiment ex(cfg);
//   ex.castAt(5 * kMs, /*sender=*/0, GroupSet::of({0, 1}), "hello");
//   core::RunResult r = ex.run(10 * kSec);
//   r.trace.latencyDegree(...); r.checkAtomicSuite(); ...
#pragma once

#include <cassert>
#include <stdexcept>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "abcast/a2_node.hpp"
#include "abcast/merge_node.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/trace.hpp"
#include "core/stack_node.hpp"
#include "metrics/summary.hpp"
#include "sim/runtime.hpp"
#include "verify/properties.hpp"
#include "workload/spec.hpp"

namespace wanmc::workload {
class Generator;
}
namespace wanmc::exec {
class ThreadedRuntime;
}
namespace wanmc::metrics {
class Recorder;
}
namespace wanmc::core {
class BatchPlane;
}

namespace wanmc::core {

enum class ProtocolKind {
  // Atomic multicast (genuine unless noted).
  kA1,             // this paper, §4 — latency degree 2 (optimal)
  kFritzke98,      // [5]: A1 without stage skipping, uniform reliable mcast
  kDelporte00,     // [4]: per-group ring — latency degree k+1
  kRodrigues98,    // [10]: cross-group consensus — latency degree 4
  kViaBcast,       // non-genuine reduction to A2 — latency degree 1
  kSkeen87,        // [2]: Skeen's original (failure-free) — degree 2
  // Atomic broadcast.
  kA2,             // this paper, §5 — latency degree 1 (optimal)
  kSousa02,        // [12]: optimistic, non-uniform — final delivery degree 2
  kVicente02,      // [13]: uniform sequencer + echo — degree 2, O(n^2)
  kDetMerge00,     // [1]: deterministic merge — degree 1, strong model
};

[[nodiscard]] const char* protocolName(ProtocolKind k);
[[nodiscard]] bool isBroadcastProtocol(ProtocolKind k);

struct RunConfig {
  // Execution backend (exec/context.hpp): kSim runs on the deterministic
  // discrete-event oracle; kThreaded runs every process on its own OS
  // thread against the real steady clock. The threaded backend measures —
  // it supports no fault injection, no reliable channels, no bootstrap,
  // and no capped closed-loop workloads (Experiment rejects those combos).
  exec::Backend backend = exec::Backend::kSim;
  int groups = 2;
  int procsPerGroup = 2;
  // Non-empty overrides groups/procsPerGroup with a ragged layout:
  // groupSizes[g] processes in group g.
  std::vector<int> groupSizes{};
  sim::LatencyModel latency{};
  uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kA1;
  StackConfig stack{};
  abcast::A2Options a2{};        // kA2 / kViaBcast only
  abcast::MergeOptions merge{};  // kDetMerge00 only
  // Iid per-wire-copy drop probability in [0, 1) (sim LossModel axis),
  // drawn from a dedicated RNG stream forked from `seed` so arming loss
  // never perturbs the latency draws of surviving copies. Protocol
  // liveness under loss requires stack.reliableChannels.
  double lossRate = 0;
  bool recordWire = false;
  // Streaming measurement plane (src/metrics/): when on (the default), a
  // metrics::Recorder observes the run and RunResult::metrics is built
  // online, with no trace rescan. Observation never perturbs the run (the
  // golden fingerprints pin this); turn it off only to shave the last few
  // percent off raw simulator throughput — RunResult::metrics is then
  // reconstructed from the trace at harvest time instead.
  bool metrics = true;
  // Installed at construction; generation starts once run() begins. More
  // workloads can be layered on with Experiment::addWorkload.
  std::optional<workload::Spec> workload{};
};

struct CrashPlan {
  ProcessId pid = kNoProcess;
  SimTime when = 0;
};

struct RunResult {
  Topology topo;
  RunTrace trace;
  TrafficStats traffic;
  SimTime lastAlgoSend = -1;
  SimTime endTime = 0;
  // Processes that never crashed (a recovered process is NOT correct in
  // the paper's sense — see verify::recoveredProcesses).
  std::set<ProcessId> correct;
  // Processes that crashed and recovered at least once.
  std::set<ProcessId> recovered;
  verify::GenuinenessInput genuineness;
  // Streaming measurement summary (latency percentiles, degree tallies,
  // goodput — see metrics/summary.hpp). Built online by the recorder when
  // RunConfig::metrics is on, else reconstructed from the trace.
  metrics::Summary metrics;
  // Completed bootstrap rejoins (armed runs only), one per install, in
  // install order. firstDeliveryAfter is the recovered pid's first
  // A-Deliver STRICTLY after the install instant (-1: none) — the suffix
  // replay itself lands exactly AT the install instant, so this is the
  // first delivery the rejoined protocol earned on its own; together with
  // installedAt it bounds the catch-up latency.
  struct RejoinResult {
    ProcessId pid = kNoProcess;
    SimTime recoveredAt = 0;
    SimTime installedAt = 0;
    uint64_t suffixReplayed = 0;
    SimTime firstDeliveryAfter = -1;
  };
  std::vector<RejoinResult> rejoins;

  [[nodiscard]] verify::CheckContext checkContext() const {
    return verify::CheckContext{&trace, &topo, correct};
  }
  [[nodiscard]] verify::Violations checkAtomicSuite() const {
    return verify::checkAtomicSuite(checkContext());
  }
};

class Experiment {
 public:
  explicit Experiment(RunConfig cfg);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // The execution context hosting the run — backend-agnostic surface.
  [[nodiscard]] exec::Context& context() { return *ctx_; }
  // The sim backend's full control surface (crash/recover/partition/loss
  // injection, the deterministic scheduler). Only valid when the run is on
  // the sim backend — throws std::logic_error otherwise; fault injection
  // is sim-only.
  [[nodiscard]] sim::Runtime& runtime() {
    if (rt_ == nullptr)
      throw std::logic_error(
          "Experiment::runtime(): the fault/scheduler surface is "
          "sim-backend-only; this run is on the threaded backend");
    return *rt_;
  }
  [[nodiscard]] XcastNode& node(ProcessId pid);
  [[nodiscard]] const RunConfig& config() const { return cfg_; }

  // Schedule an A-XCast of a fresh message at simulated time `when`.
  // Returns the message id. For broadcast protocols pass the full group set
  // (or use castAllAt). Throws std::invalid_argument on an out-of-range
  // sender, an empty or out-of-range destination set, a partial destination
  // set under a broadcast protocol, or a Rodrigues98 workload that would
  // exhaust the kScopeBase consensus-scope band.
  MsgId castAt(SimTime when, ProcessId sender, GroupSet dest,
               std::string body = {});
  MsgId castAllAt(SimTime when, ProcessId sender, std::string body = {});

  // Installs `spec` as a reactive workload: casts are generated by
  // simulator timers while the run progresses (see workload/generator.hpp).
  // The returned generator is owned by the experiment; read its issued()
  // ids after the run. Validates the spec against the topology/protocol
  // like castAt does.
  workload::Generator& addWorkload(workload::Spec spec);

  // Message ids issued so far by every installed workload, in issue order.
  // Complete only once the run has drained the generators.
  [[nodiscard]] std::vector<MsgId> workloadIds() const;

  void crashAt(ProcessId pid, SimTime when);

  // Schedules a recovery: at `when`, if `pid` is crashed, a FRESH node
  // (same protocol, reset state) is attached and started in its place —
  // the crash-recovery model without stable storage. A recovery of an
  // alive process is a no-op. Throws std::invalid_argument on an
  // out-of-range pid.
  void recoverAt(ProcessId pid, SimTime when);

  // Cuts the groups in `side` off from the rest of the topology during
  // [from, until) — see sim::Runtime::partition for exact semantics and
  // the argument validation (both throw std::invalid_argument).
  sim::Runtime::PartitionId partitionAt(GroupSet side, SimTime from,
                                        SimTime until = kTimeNever);

  // Run the simulation until `until` (or exhaustion) and harvest results.
  RunResult run(SimTime until = 300 * kSec);

  // Continue a run (e.g. cast more, run again) — results are cumulative.
  RunResult runMore(SimTime until);

 private:
  friend class workload::Generator;

  RunResult harvest() const;
  // Rejects sim-only RunConfig axes (fault injection, channels, bootstrap,
  // capped closed loops) on the threaded backend — throws
  // std::invalid_argument naming the offending knob.
  void validateBackend() const;
  // Shared castAt/addWorkload argument validation (throws on bad input).
  void validateCast(ProcessId sender, const GroupSet& dest) const;
  // Throws std::invalid_argument on an out-of-range pid (crash/recover).
  void checkPid(ProcessId pid, const char* what) const;
  // Rejects message ids that would leave the Rodrigues98 consensus-scope
  // band [kScopeBase, ...) collision-free territory (ROADMAP "Scale
  // ceilings"): `pending` ids must fit below kScopeBase.
  void checkMsgIdCeiling(uint64_t pending) const;
  // Exact worst-case carrier-id count for `casts` batched casts, derived
  // from batchMaxSize (0 when batching is off). The size trigger caps a
  // carrier at batchMaxSize casts, so a budget of B casts mints at most
  // ceil(B / batchMaxSize) carriers at steady state; with no effective
  // size cap every cast may flush alone.
  [[nodiscard]] uint64_t carrierBudget(uint64_t casts) const;
  // Allocates a batch-carrier id, enforcing the Rodrigues98 scope ceiling
  // exactly at mint time: a pathological window-flush pattern that makes
  // more carriers than carrierBudget() anticipated throws here instead of
  // colliding with the consensus-scope band.
  MsgId allocCarrierId();
  // Issue a cast NOW, from inside a workload arrival event: the message id
  // is allocated unconditionally (so schedules stay stable under crashes),
  // but a crashed sender casts nothing — the semantics the legacy per-cast
  // timer guard had.
  MsgId issueWorkloadCast(ProcessId sender, GroupSet dest, std::string body);
  // Hand a live cast to the stack — directly, or through the batching
  // plane when StackConfig::batchWindow > 0. Called at cast-fire time with
  // the sender alive; the unbatched path is byte-identical to pre-batching
  // behavior.
  void dispatchCast(ProcessId sender, const AppMsgPtr& m);
  [[nodiscard]] bool batchingEnabled() const {
    return cfg_.stack.batchWindow > 0;
  }

  RunConfig cfg_;
  // Declared before rt_ so the recorder (a registered observer) outlives
  // the runtime; constructed right after rt_ in the ctor body.
  std::unique_ptr<metrics::Recorder> recorder_;  // nullptr: metrics off
  // Exactly one backend is constructed, per cfg_.backend; ctx_ aims at it.
  std::unique_ptr<sim::Runtime> rt_;                // kSim, else nullptr
  std::unique_ptr<exec::ThreadedRuntime> threaded_;  // kThreaded, else null
  exec::Context* ctx_ = nullptr;
  // Closed-loop workload feedback adapters, registered on the sim observer
  // registry (capped closed loops are a sim-only feature).
  std::vector<std::unique_ptr<sim::RunObserver>> workloadObservers_;
  // Reliable-channel plane (nullptr: channels off). Declared after rt_ so
  // it is destroyed first; the runtime holds a non-owning hook pointer and
  // never invokes it from its destructor.
  std::unique_ptr<channel::Plane> channel_;
  // Bootstrap state-transfer plane (nullptr: unarmed). Declared after rt_
  // for the same reason; nodes hold a non-owning pointer via StackConfig
  // and route Layer::kBootstrap packets to it.
  std::unique_ptr<bootstrap::Plane> bootstrap_;
  std::vector<XcastNode*> nodes_;
  std::unique_ptr<BatchPlane> batcher_;  // nullptr: batching off
  std::vector<std::unique_ptr<workload::Generator>> workloads_;
  std::set<ProcessId> crashPlanned_;
  MsgId nextMsgId_ = 1;
  // Threaded-backend termination ledger: every addressee of every
  // dispatched cast owes one A-Deliver. Touched only on the driver thread
  // (dispatchCast runs there); the sim backend ignores it.
  uint64_t expectedDeliveries_ = 0;
  // Message ids promised to installed workloads but not yet allocated;
  // counted by checkMsgIdCeiling so lazily-issued ids cannot sneak past
  // the Rodrigues98 scope ceiling.
  uint64_t reservedWorkloadIds_ = 0;
  bool started_ = false;
};

}  // namespace wanmc::core
