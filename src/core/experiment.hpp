// The library's top-level API: configure a WAN, pick a protocol, drive a
// workload, get back a fully instrumented run.
//
//   core::RunConfig cfg;
//   cfg.groups = 3; cfg.procsPerGroup = 2; cfg.protocol = ProtocolKind::kA1;
//   core::Experiment ex(cfg);
//   ex.castAt(5 * kMs, /*sender=*/0, GroupSet::of({0, 1}), "hello");
//   core::RunResult r = ex.run(10 * kSec);
//   r.trace.latencyDegree(...); r.checkAtomicSuite(); ...
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "abcast/a2_node.hpp"
#include "abcast/merge_node.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/trace.hpp"
#include "core/stack_node.hpp"
#include "sim/runtime.hpp"
#include "verify/properties.hpp"

namespace wanmc::core {

enum class ProtocolKind {
  // Atomic multicast (genuine unless noted).
  kA1,             // this paper, §4 — latency degree 2 (optimal)
  kFritzke98,      // [5]: A1 without stage skipping, uniform reliable mcast
  kDelporte00,     // [4]: per-group ring — latency degree k+1
  kRodrigues98,    // [10]: cross-group consensus — latency degree 4
  kViaBcast,       // non-genuine reduction to A2 — latency degree 1
  kSkeen87,        // [2]: Skeen's original (failure-free) — degree 2
  // Atomic broadcast.
  kA2,             // this paper, §5 — latency degree 1 (optimal)
  kSousa02,        // [12]: optimistic, non-uniform — final delivery degree 2
  kVicente02,      // [13]: uniform sequencer + echo — degree 2, O(n^2)
  kDetMerge00,     // [1]: deterministic merge — degree 1, strong model
};

[[nodiscard]] const char* protocolName(ProtocolKind k);
[[nodiscard]] bool isBroadcastProtocol(ProtocolKind k);

struct RunConfig {
  int groups = 2;
  int procsPerGroup = 2;
  // Non-empty overrides groups/procsPerGroup with a ragged layout:
  // groupSizes[g] processes in group g.
  std::vector<int> groupSizes{};
  sim::LatencyModel latency{};
  uint64_t seed = 1;
  ProtocolKind protocol = ProtocolKind::kA1;
  StackConfig stack{};
  abcast::A2Options a2{};        // kA2 / kViaBcast only
  abcast::MergeOptions merge{};  // kDetMerge00 only
  bool recordWire = false;
};

struct CrashPlan {
  ProcessId pid = kNoProcess;
  SimTime when = 0;
};

struct RunResult {
  Topology topo;
  RunTrace trace;
  TrafficStats traffic;
  SimTime lastAlgoSend = -1;
  SimTime endTime = 0;
  std::set<ProcessId> correct;
  verify::GenuinenessInput genuineness;

  [[nodiscard]] verify::CheckContext checkContext() const {
    return verify::CheckContext{&trace, &topo, correct};
  }
  [[nodiscard]] verify::Violations checkAtomicSuite() const {
    return verify::checkAtomicSuite(checkContext());
  }
};

class Experiment {
 public:
  explicit Experiment(RunConfig cfg);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] sim::Runtime& runtime() { return *rt_; }
  [[nodiscard]] XcastNode& node(ProcessId pid);
  [[nodiscard]] const RunConfig& config() const { return cfg_; }

  // Schedule an A-XCast of a fresh message at simulated time `when`.
  // Returns the message id. For broadcast protocols pass the full group set
  // (or use castAllAt).
  MsgId castAt(SimTime when, ProcessId sender, GroupSet dest,
               std::string body = {});
  MsgId castAllAt(SimTime when, ProcessId sender, std::string body = {});

  void crashAt(ProcessId pid, SimTime when);

  // Run the simulation until `until` (or exhaustion) and harvest results.
  RunResult run(SimTime until = 300 * kSec);

  // Continue a run (e.g. cast more, run again) — results are cumulative.
  RunResult runMore(SimTime until);

 private:
  RunResult harvest() const;

  RunConfig cfg_;
  std::unique_ptr<sim::Runtime> rt_;
  std::vector<XcastNode*> nodes_;
  std::set<ProcessId> crashPlanned_;
  MsgId nextMsgId_ = 1;
  bool started_ = false;
};

// ---------------------------------------------------------------------------
// Workload helpers.
// ---------------------------------------------------------------------------

struct WorkloadSpec {
  SimTime start = 10 * kMs;
  SimTime interval = 50 * kMs;  // time between consecutive casts
  int count = 20;
  int destGroups = 2;           // groups per multicast (clamped to #groups)
  uint64_t seed = 7;
};

// Schedules `spec.count` casts with rotating senders and pseudo-random
// destination sets of `spec.destGroups` groups (always including the
// sender's group). Returns the message ids.
std::vector<MsgId> scheduleWorkload(Experiment& ex, const WorkloadSpec& spec);

}  // namespace wanmc::core
