#include "core/run_options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace wanmc::core {

std::optional<ProtocolKind> protocolFromName(const std::string& name) {
  if (name == "a1") return ProtocolKind::kA1;
  if (name == "fritzke98") return ProtocolKind::kFritzke98;
  if (name == "delporte00") return ProtocolKind::kDelporte00;
  if (name == "rodrigues98") return ProtocolKind::kRodrigues98;
  if (name == "skeen87") return ProtocolKind::kSkeen87;
  if (name == "viabcast") return ProtocolKind::kViaBcast;
  if (name == "a2") return ProtocolKind::kA2;
  if (name == "sousa02") return ProtocolKind::kSousa02;
  if (name == "vicente02") return ProtocolKind::kVicente02;
  if (name == "detmerge00") return ProtocolKind::kDetMerge00;
  return std::nullopt;
}

std::optional<exec::Backend> backendFromName(const std::string& name) {
  if (name == "sim") return exec::Backend::kSim;
  if (name == "threaded") return exec::Backend::kThreaded;
  return std::nullopt;
}

namespace {

// The identifier-safe protocol key serialize() emits (protocolName() has
// spaces and citation brackets).
const char* protocolKey(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kA1: return "a1";
    case ProtocolKind::kFritzke98: return "fritzke98";
    case ProtocolKind::kDelporte00: return "delporte00";
    case ProtocolKind::kRodrigues98: return "rodrigues98";
    case ProtocolKind::kSkeen87: return "skeen87";
    case ProtocolKind::kViaBcast: return "viabcast";
    case ProtocolKind::kA2: return "a2";
    case ProtocolKind::kSousa02: return "sousa02";
    case ProtocolKind::kVicente02: return "vicente02";
    case ProtocolKind::kDetMerge00: return "detmerge00";
  }
  return "?";
}

long long intOrDie(const std::string& s, const char* flag) {
  size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(s, &used);
  } catch (const std::exception&) {
    used = std::string::npos;
  }
  if (s.empty() || used != s.size()) {
    std::fprintf(stderr, "%s: '%s' is not a number\n", flag, s.c_str());
    std::exit(2);
  }
  return v;
}

}  // namespace

bool RunOptions::consumeFlag(const std::string& arg,
                             const std::function<std::string()>& next) {
  if (arg == "--backend") {
    const std::string v = next();
    const auto b = backendFromName(v);
    if (!b) {
      std::fprintf(stderr, "--backend: unknown backend '%s' (sim|threaded)\n",
                   v.c_str());
      std::exit(2);
    }
    backend = *b;
  } else if (arg == "--protocol") {
    const std::string v = next();
    const auto p = protocolFromName(v);
    if (!p) {
      std::fprintf(stderr, "--protocol: unknown protocol '%s'\n", v.c_str());
      std::exit(2);
    }
    protocol = *p;
  } else if (arg == "--groups") {
    groups = static_cast<int>(intOrDie(next(), "--groups"));
  } else if (arg == "--procs") {
    procsPerGroup = static_cast<int>(intOrDie(next(), "--procs"));
  } else if (arg == "--seed") {
    seed = static_cast<uint64_t>(intOrDie(next(), "--seed"));
  } else if (arg == "--dest-groups") {
    destGroups = static_cast<int>(intOrDie(next(), "--dest-groups"));
  } else if (arg == "--inter-ms") {
    const SimTime v = intOrDie(next(), "--inter-ms") * kMs;
    latency.interMin = latency.interMax = v;
  } else if (arg == "--intra-us") {
    const SimTime v = intOrDie(next(), "--intra-us");
    latency.intraMin = latency.intraMax = v;
  } else if (arg == "--batch-window") {
    batchWindow = intOrDie(next(), "--batch-window") * kMs;
  } else if (arg == "--batch-max") {
    batchMaxSize = static_cast<int>(intOrDie(next(), "--batch-max"));
  } else if (arg == "--loss") {
    lossRate = std::atof(next().c_str());
  } else if (arg == "--reliable-channels") {
    reliableChannels = true;
  } else {
    return false;
  }
  return true;
}

void RunOptions::validate() const {
  std::ostringstream os;
  if (groups <= 0 || procsPerGroup <= 0) {
    os << "RunOptions: topology " << groups << "x" << procsPerGroup
       << " needs positive group and process counts";
    throw std::invalid_argument(os.str());
  }
  if (destGroups <= 0 || destGroups > groups) {
    os << "RunOptions: dest-groups " << destGroups << " outside [1, "
       << groups << "]";
    throw std::invalid_argument(os.str());
  }
  if (!(lossRate >= 0.0 && lossRate < 1.0)) {
    os << "RunOptions: loss rate " << lossRate
       << " outside [0, 1) - a lossless link needs 0, a dead one a cut";
    throw std::invalid_argument(os.str());
  }
  if (batchWindow < 0 || batchMaxSize < 0) {
    os << "RunOptions: batch window " << batchWindow << "us / max size "
       << batchMaxSize << " must be non-negative";
    throw std::invalid_argument(os.str());
  }
  latency.validate();
}

std::string RunOptions::serialize() const {
  std::ostringstream os;
  os << "backend=" << exec::backendName(backend)
     << " protocol=" << protocolKey(protocol) << " groups=" << groups
     << " procs=" << procsPerGroup << " seed=" << seed
     << " intra=" << latency.intraMin << ":" << latency.intraMax
     << " inter=" << latency.interMin << ":" << latency.interMax
     << " batch-window=" << batchWindow << " batch-max=" << batchMaxSize
     << " loss=" << lossRate
     << " channels=" << (reliableChannels ? 1 : 0)
     << " dest-groups=" << destGroups;
  return os.str();
}

std::optional<RunOptions> RunOptions::parse(const std::string& text) {
  RunOptions out;
  std::istringstream is(text);
  std::string tok;
  auto range = [](const std::string& v, SimTime& lo, SimTime& hi) {
    const auto colon = v.find(':');
    if (colon == std::string::npos) return false;
    try {
      lo = std::stoll(v.substr(0, colon));
      hi = std::stoll(v.substr(colon + 1));
    } catch (const std::exception&) {
      return false;
    }
    return true;
  };
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string k = tok.substr(0, eq);
    const std::string v = tok.substr(eq + 1);
    try {
      if (k == "backend") {
        const auto b = backendFromName(v);
        if (!b) return std::nullopt;
        out.backend = *b;
      } else if (k == "protocol") {
        const auto p = protocolFromName(v);
        if (!p) return std::nullopt;
        out.protocol = *p;
      } else if (k == "groups") {
        out.groups = std::stoi(v);
      } else if (k == "procs") {
        out.procsPerGroup = std::stoi(v);
      } else if (k == "seed") {
        out.seed = std::stoull(v);
      } else if (k == "intra") {
        if (!range(v, out.latency.intraMin, out.latency.intraMax))
          return std::nullopt;
      } else if (k == "inter") {
        if (!range(v, out.latency.interMin, out.latency.interMax))
          return std::nullopt;
      } else if (k == "batch-window") {
        out.batchWindow = std::stoll(v);
      } else if (k == "batch-max") {
        out.batchMaxSize = std::stoi(v);
      } else if (k == "loss") {
        out.lossRate = std::stod(v);
      } else if (k == "channels") {
        out.reliableChannels = std::stoi(v) != 0;
      } else if (k == "dest-groups") {
        out.destGroups = std::stoi(v);
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return out;
}

RunConfig RunOptions::toRunConfig() const {
  validate();
  RunConfig cfg;
  cfg.backend = backend;
  cfg.protocol = protocol;
  cfg.groups = groups;
  cfg.procsPerGroup = procsPerGroup;
  cfg.seed = seed;
  cfg.latency = latency;
  cfg.stack.batchWindow = batchWindow;
  cfg.stack.batchMaxSize = batchMaxSize;
  cfg.stack.reliableChannels = reliableChannels;
  cfg.lossRate = lossRate;
  return cfg;
}

const char* RunOptions::flagHelp() {
  return "[--backend sim|threaded] [--protocol P] [--groups N] [--procs D] "
         "[--seed S] [--dest-groups G] [--inter-ms L] [--intra-us U] "
         "[--batch-window MS] [--batch-max N] [--loss P] "
         "[--reliable-channels]";
}

}  // namespace wanmc::core
