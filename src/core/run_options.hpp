// core::RunOptions — the shared experiment knob set, parsed and validated
// in exactly ONE place.
//
// Before PR 10 the same ~10 knobs (protocol, topology shape, seed, link
// latencies, batching, loss, channels) were plumbed three times: once per
// hand-rolled flag loop in wanmc_cli (single-run and sweep), and once more
// by every harness that built a RunConfig by hand. Each copy had its own
// validation (or none), and adding a knob meant touching all of them. The
// backend axis would have made it four.
//
// RunOptions is the one struct all of those now share:
//   * consumeFlag() is the single CLI parse path — both wanmc_cli loops
//     feed every flag through it first and only handle their own extras.
//   * validate() is the single shape check — ranges, positivity, the
//     lossRate domain — throwing std::invalid_argument with the same
//     message no matter which entry point the knob came through.
//     (Backend-capability rejections live in Experiment::validateBackend,
//     which sees the full RunConfig.)
//   * serialize()/parse() round-trip the options as one "k=v ..." line, so
//     a bench or CSV header can record the exact configuration and a test
//     can rebuild it.
//   * toRunConfig() produces the core::RunConfig everything downstream
//     (Experiment, ScenarioRunner, the sweep API) consumes.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace wanmc::core {

// nullopt on an unknown name. The inverses are protocolName (experiment
// .hpp) and exec::backendName.
[[nodiscard]] std::optional<ProtocolKind> protocolFromName(
    const std::string& name);
[[nodiscard]] std::optional<exec::Backend> backendFromName(
    const std::string& name);

struct RunOptions {
  exec::Backend backend = exec::Backend::kSim;
  ProtocolKind protocol = ProtocolKind::kA1;
  int groups = 2;
  int procsPerGroup = 2;
  uint64_t seed = 1;
  // Link latency bounds (the CLI's --inter-ms/--intra-us set fixed values;
  // the full jittered model stays reachable through the struct).
  exec::LatencyModel latency = exec::LatencyModel::fixed(kMs, 100 * kMs);
  SimTime batchWindow = 0;      // 0: batching off
  int batchMaxSize = 0;         // 0: no size trigger
  double lossRate = 0;          // iid wire-copy drop probability, [0, 1)
  bool reliableChannels = false;
  int destGroups = 2;           // groups per multicast (workload/sweep knob)

  // The one CLI parse path. If `arg` is a shared knob flag, consumes its
  // value via `next` (which must return the following argv token, exiting
  // on a missing value) and returns true; unknown flags return false so
  // the caller can handle its own extras. Malformed values exit(2) with a
  // message, like the rest of the CLI.
  bool consumeFlag(const std::string& arg,
                   const std::function<std::string()>& next);

  // The one shape check: throws std::invalid_argument naming the knob.
  void validate() const;

  // One-line "k=v" serialization (stable key order), and its inverse.
  // parse() accepts exactly the keys serialize() emits, in any order, and
  // returns nullopt on an unknown key or malformed value.
  [[nodiscard]] std::string serialize() const;
  [[nodiscard]] static std::optional<RunOptions> parse(
      const std::string& text);

  // Validates, then builds the RunConfig downstream consumers take.
  [[nodiscard]] RunConfig toRunConfig() const;

  // The usage text for the shared flags (one source for both --help's).
  [[nodiscard]] static const char* flagHelp();
};

}  // namespace wanmc::core
