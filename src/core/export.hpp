// Trace and statistics export: CSV for delivery traces, JSON for run
// summaries. Used by the CLI tool and handy for plotting bench output.
#pragma once

#include <ostream>
#include <string>

#include "core/experiment.hpp"

namespace wanmc::core {

// One row per A-Deliver event:
//   process,group,msg,sender,destGroups,lamport,simTimeUs,order
void writeDeliveriesCsv(const RunResult& r, std::ostream& os);

// One row per cast message:
//   msg,sender,destGroups,castUs,lamport,latencyDegree,wallLatencyUs
void writeMessagesCsv(const RunResult& r, std::ostream& os);

// A JSON object with the run's aggregates: traffic per layer, latency-degree
// histogram, wall-latency stats, quiescence info, safety-check results.
void writeSummaryJson(const RunResult& r, std::ostream& os);

}  // namespace wanmc::core
