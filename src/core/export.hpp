// Trace and statistics export: CSV for delivery traces and latency
// percentiles, JSON for run summaries. Used by the CLI tool and handy for
// plotting bench/sweep output.
//
// Redesigned around the streaming metrics plane (PR 4): writeSummaryJson
// and writeLatencyCsv read RunResult::metrics (built online by
// metrics::Recorder — no O(trace) rescan and no recordWire requirement);
// the row-per-event CSVs still walk the trace, which is what they export.
#pragma once

#include <ostream>
#include <string>

#include "core/experiment.hpp"

namespace wanmc::core {

// One row per A-Deliver event:
//   process,group,msg,sender,destGroups,lamport,simTimeUs,order
void writeDeliveriesCsv(const RunResult& r, std::ostream& os);

// A JSON object with the run's aggregates, read from r.metrics: counts,
// traffic per layer, latency-degree histogram, wall-latency percentiles
// (p50/p90/p99/max, log-bucket semantics — see metrics/summary.hpp),
// offered/goodput rates, per-group and per-destination-size breakdowns,
// quiescence info, and safety-check results. Callers that already ran the
// safety suite pass the verdict via `violations` to avoid re-running it
// (it is the one remaining trace-sized cost in this exporter).
void writeSummaryJson(const RunResult& r, std::ostream& os,
                      const verify::Violations* violations = nullptr);

// Latency percentile rows from r.metrics, one scope per row:
//   scope,key,count,p50_us,p90_us,p99_us,max_us,mean_us
// Scopes: "message" (cast -> last delivery), "delivery" (each A-Deliver),
// "group,<g>" (deliveries at group g), "destsize,<k>" (messages addressed
// to k groups).
void writeLatencyCsv(const RunResult& r, std::ostream& os);

}  // namespace wanmc::core
