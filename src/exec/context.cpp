#include "exec/context.hpp"

#include <sstream>
#include <stdexcept>

namespace wanmc::exec {

void LatencyModel::validate() const {
  auto bad = [](const char* what, SimTime lo, SimTime hi) {
    std::ostringstream os;
    os << "LatencyModel: " << what << " range [" << lo << ", " << hi
       << "]us is invalid (bounds must be non-negative and min <= max)";
    throw std::invalid_argument(os.str());
  };
  if (intraMin < 0 || intraMax < 0 || intraMin > intraMax)
    bad("intra-group", intraMin, intraMax);
  if (interMin < 0 || interMax < 0 || interMin > interMax)
    bad("inter-group", interMin, interMax);
}

}  // namespace wanmc::exec
