// ThreadedRuntime: the real-clock execution backend.
//
// One OS thread per process, real std::chrono::steady_clock time, lock-free
// SPSC rings for everything that crosses threads, and a per-thread timer
// wheel. Protocol stacks written against exec::Context run here unmodified;
// what changes is the physics: time advances on its own, message "latency"
// is the emulated WAN draw ON TOP of real scheduling/queueing overhead, and
// nothing is deterministic. The sim backend remains the oracle; this
// backend exists to measure — the calibration bench re-runs the A1
// latency/throughput sweep here and plots sim vs. real.
//
// Scope (v1): crash-free, loss-free, partition-free runs only. The
// injection axes (crash/recover, partitions, LossModel, reliable channels,
// bootstrap) are deterministic-sim features; core::Experiment rejects
// configurations that arm them on this backend. crashed() is constantly
// false and incarnation() constantly 0, so the stacks' guard paths compile
// and run but never trigger.
//
// Threading model
//   * N process threads, one per pid; thread i owns per_[i]: its node, its
//     timer wheel, its deferred-message queue, its RNG, its Lamport clock,
//     and its slice of the trace. Only thread i touches them.
//   * The driver (the thread that calls run(), slot N) owns the harness
//     wheel: scripted casts, workload arrivals, batch windows. It reaches
//     a process ONLY via post(), which crosses on a ring like any message.
//   * Crossings: rings_[consumer][producer]. multicast() pushes one
//     envelope per destination on the sender's own thread; the receiver
//     defers it until its emulated-latency deadline, then delivers.
//   * Shutdown: stop() raises a flag, joins every thread, then merges the
//     per-thread trace slices into one RunTrace ordered by wall time.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/rng.hpp"
#include "exec/context.hpp"
#include "exec/threaded/spsc.hpp"
#include "exec/threaded/timer_wheel.hpp"
#include "sim/topology.hpp"

namespace wanmc::exec {

class ThreadedRuntime final : public Context {
 public:
  ThreadedRuntime(Topology topo, LatencyModel latency, uint64_t seed);
  ~ThreadedRuntime() override;

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  // ---- lifecycle (driver thread) ------------------------------------------

  // Launches one thread per process; each runs its node's onStart() and
  // enters the poll loop. The caller becomes the driver.
  void start();

  // Drives the harness wheel until `done()` holds or `wallBudgetUs` of real
  // time elapses. `done` is evaluated between wheel ticks on the driver
  // thread. Returns true iff the run ended by done().
  bool run(SimTime wallBudgetUs, const std::function<bool()>& done);

  // Stops the process threads, joins them, and merges their trace slices.
  // Idempotent; called automatically from the destructor if needed.
  void stop();

  // Total A-Delivers recorded so far, readable from the driver while the
  // run is in flight (the termination ledger reads this).
  [[nodiscard]] uint64_t deliveredCount() const {
    return delivered_.load(std::memory_order_acquire);
  }
  // Harness events still pending on the driver wheel. Driver thread only.
  [[nodiscard]] size_t pendingHarnessEvents() const {
    return driverWheel_.size();
  }

  // ---- exec::Context: node surface ----------------------------------------

  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] const Topology& topology() const override { return topo_; }
  void multicast(ProcessId from, const std::vector<ProcessId>& tos,
                 PayloadPtr payload) override;
  void cancelTimer(EventId id) override;
  [[nodiscard]] bool crashed(ProcessId) const override { return false; }
  [[nodiscard]] uint32_t incarnation(ProcessId) const override { return 0; }
  [[nodiscard]] int aliveInGroup(GroupId g) const override {
    return topo_.groupSize(g);
  }
  void addCrashListener(ProcessId owner,
                        std::function<void(ProcessId)> fn) override {
    // Stored for interface parity; never fired (no crashes here).
    crashListeners_.emplace_back(owner, std::move(fn));
  }
  void addRecoveryListener(ProcessId owner,
                           std::function<void(ProcessId)> fn) override {
    recoveryListeners_.emplace_back(owner, std::move(fn));
  }
  [[nodiscard]] uint64_t lamport(ProcessId pid) const override {
    return per_[static_cast<size_t>(pid)].lamport.load(
        std::memory_order_relaxed);
  }
  void recordCast(ProcessId pid, const AppMsgPtr& m) override;
  void recordDelivery(ProcessId pid, MsgId msg) override;

  // ---- exec::Context: plane surface ---------------------------------------

  [[nodiscard]] const LatencyModel& latencyModel() const override {
    return latency_;
  }
  [[nodiscard]] ArenaPool& payloadArena() override { return arena_; }
  void setChannelHook(ChannelHook* hook) override;
  [[nodiscard]] ChannelHook* channelHook() const override { return nullptr; }
  void channelSend(ProcessId from, ProcessId to, PayloadPtr payload,
                   Layer accountLayer) override;
  void deliverFromChannel(ProcessId from, ProcessId to,
                          const PayloadPtr& payload, uint64_t sendTs) override;

  // ---- exec::Context: harness surface -------------------------------------

  void attach(ProcessId pid, std::unique_ptr<Process> node) override;
  [[nodiscard]] Process& node(ProcessId pid) override {
    return *per_[static_cast<size_t>(pid)].node;
  }
  EventId harnessAt(SimTime when, SmallFn fn) override;
  void harnessCancel(EventId id) override;
  void post(ProcessId pid, SmallFn fn) override;
  [[nodiscard]] const RunTrace& trace() const override { return trace_; }
  [[nodiscard]] const TrafficStats& traffic() const override {
    return traffic_;
  }
  [[nodiscard]] SimTime lastAlgorithmicSend() const override {
    return lastAlgoSend_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool everCrashed(ProcessId) const override { return false; }
  [[nodiscard]] bool everSentAlgorithmic(ProcessId pid) const override {
    return per_[static_cast<size_t>(pid)].sentAlgo;
  }
  [[nodiscard]] bool everReceivedAlgorithmic(ProcessId pid) const override {
    return per_[static_cast<size_t>(pid)].recvAlgo;
  }

 protected:
  EventId scheduleTimer(ProcessId pid, SimTime delay, SmallFn fn) override;

 private:
  // One message or command crossing a thread boundary.
  struct Envelope {
    PayloadPtr payload;            // null for a posted command
    SmallFn cmd;                   // the command, when payload is null
    int64_t dueUs = 0;             // emulated-latency arrival deadline
    uint64_t sendTs = 0;           // sender's modified Lamport stamp
    ProcessId from = kNoProcess;
  };

  // Everything thread `pid` owns. alignas keeps two threads' states off a
  // shared cache line.
  struct alignas(64) PerThread {
    std::unique_ptr<Process> node;
    TimerWheel wheel;                        // protocol timers
    std::multimap<int64_t, Envelope> inbox;  // latency-deferred messages
    SplitMix64 rng{0};                       // latency-emulation draws
    // Modified Lamport clock. Atomic (relaxed) because recordCast for a
    // BATCHED cast runs on the driver thread and reads the sender's clock;
    // all writes stay on the owning thread.
    std::atomic<uint64_t> lamport{0};
    uint64_t perProcOrder = 0;
    bool sentAlgo = false;
    bool recvAlgo = false;
    TrafficStats traffic;
    // Trace slices, merged at stop().
    std::vector<CastEvent> casts;
    std::vector<DeliveryEvent> deliveries;
    std::thread th;
  };

  [[nodiscard]] int64_t monoUs() const;  // µs since start()
  void threadMain(ProcessId pid);
  void pushBlocking(int consumer, int producer, Envelope e);
  void deliverEnvelope(ProcessId to, Envelope& e);
  void drainRings(ProcessId pid);
  [[nodiscard]] SimTime drawLatency(bool interGroup, SplitMix64& rng) const;
  void mergeTraces();
  void bumpAlgoSend(ProcessId from, SimTime when);

  // Driver-slot index (process slots are [0, N)).
  [[nodiscard]] int driverSlot() const { return topo_.numProcesses(); }

  // EventId encoding: (owner slot + 1) in the high bits, the wheel-local id
  // in the low 40. The +1 keeps kNoEvent (0) unambiguous.
  static constexpr int kSlotShift = 40;
  static constexpr uint64_t kLocalMask = (uint64_t{1} << kSlotShift) - 1;

  Topology topo_;
  LatencyModel latency_;
  uint64_t seed_;
  ArenaPool arena_{/*threadSafe=*/true};

  std::vector<PerThread> per_;
  // rings_[consumer][producer]; producers are the N process threads plus
  // the driver (index N).
  std::vector<std::vector<std::unique_ptr<SpscRing<Envelope>>>> rings_;

  TimerWheel driverWheel_;  // harness events; driver thread only
  // Driver-slice trace entries (recordCast of batched casts).
  std::vector<CastEvent> driverCasts_;

  std::vector<std::pair<ProcessId, std::function<void(ProcessId)>>>
      crashListeners_;
  std::vector<std::pair<ProcessId, std::function<void(ProcessId)>>>
      recoveryListeners_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopFlag_{false};
  bool stopped_ = false;
  std::atomic<uint64_t> delivered_{0};
  std::atomic<int64_t> lastAlgoSend_{-1};
  std::chrono::steady_clock::time_point t0_{};

  // Merged at stop().
  RunTrace trace_;
  TrafficStats traffic_;
};

}  // namespace wanmc::exec
