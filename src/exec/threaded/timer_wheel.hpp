// Per-thread timer wheel for the real-clock backend.
//
// Each process thread (and the driver) owns exactly one wheel and is the
// only thread that ever touches it, so the structure is deliberately
// lock-free-by-ownership: no atomics, no mutex. The layout mirrors the sim
// scheduler's two-level calendar — a near ring of ~1ms buckets covering the
// next ~2s, and a far map for everything beyond — because the traffic is
// the same (heartbeat cadences, consensus round timeouts, batch windows).
//
// Cancellation is O(1): live timer ids sit in a hash set, cancel() removes
// the id, and a fired or swept entry whose id is gone is skipped. Within a
// bucket entries fire in due order only approximately (swap-removal) —
// this backend has no determinism contract (lint rule D1 is relaxed under
// src/exec/threaded/).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/context.hpp"

namespace wanmc::exec {

class TimerWheel {
 public:
  static constexpr int kBuckets = 2048;        // near window: ~2.1s
  static constexpr int64_t kBucketUs = 1024;   // ~1ms granularity

  // Registers `fn` to fire once fireDue() is called with now >= dueUs.
  // Returns a wheel-local id (never 0).
  uint64_t at(int64_t dueUs, SmallFn fn) {
    const uint64_t id = nextId_++;
    live_.insert(id);
    ++liveCount_;
    place(Entry{id, dueUs, std::move(fn)});
    return id;
  }

  // Idempotent: cancelling a fired or unknown id is a no-op.
  void cancel(uint64_t id) {
    if (live_.erase(id) > 0) --liveCount_;
  }

  // Fires every live entry with due <= nowUs; advances the cursor. A fired
  // callback may re-enter at()/cancel() freely. Returns the fire count.
  size_t fireDue(int64_t nowUs) {
    size_t fired = 0;
    for (;;) {
      // Current bucket: fire what is due, keep what is not. Indexed access
      // throughout — a fired callback may at() into this very bucket and
      // reallocate its vector.
      const size_t b =
          static_cast<size_t>(cursor_ / kBucketUs) % kBuckets;
      for (size_t i = 0; i < near_[b].size();) {
        if (near_[b][i].due > nowUs) {
          ++i;
          continue;
        }
        Entry e = std::move(near_[b][i]);
        near_[b][i] = std::move(near_[b].back());
        near_[b].pop_back();
        if (live_.erase(e.id) > 0) {
          --liveCount_;
          e.fn();
          ++fired;
          i = 0;  // the callback may have reshuffled the bucket
        }
      }
      if (nowUs < cursor_ + kBucketUs) break;
      cursor_ += kBucketUs;
      // The near window slid forward one bucket: adopt far entries that now
      // fall inside it.
      const int64_t windowEnd = cursor_ + int64_t{kBuckets} * kBucketUs;
      while (!far_.empty() && far_.begin()->first < windowEnd) {
        Entry e = std::move(far_.begin()->second);
        far_.erase(far_.begin());
        if (live_.count(e.id) > 0) place(std::move(e));
      }
    }
    return fired;
  }

  // Live (registered, not yet fired, not cancelled) timer count.
  [[nodiscard]] size_t size() const { return liveCount_; }

 private:
  struct Entry {
    uint64_t id = 0;
    int64_t due = 0;
    SmallFn fn;
  };

  void place(Entry e) {
    const int64_t windowEnd = cursor_ + int64_t{kBuckets} * kBucketUs;
    if (e.due >= windowEnd) {
      const int64_t due = e.due;
      far_.emplace(due, std::move(e));
      return;
    }
    const int64_t slotTime = e.due < cursor_ ? cursor_ : e.due;
    near_[static_cast<size_t>(slotTime / kBucketUs) % kBuckets].push_back(
        std::move(e));
  }

  std::array<std::vector<Entry>, kBuckets> near_;
  std::multimap<int64_t, Entry> far_;
  std::unordered_set<uint64_t> live_;
  size_t liveCount_ = 0;
  int64_t cursor_ = 0;  // start of the current bucket, multiple of kBucketUs
  uint64_t nextId_ = 1;
};

}  // namespace wanmc::exec
