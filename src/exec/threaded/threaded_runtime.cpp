#include "exec/threaded/threaded_runtime.hpp"

#include <algorithm>
#include <stdexcept>

namespace wanmc::exec {

namespace {
// Which slot (process index, or driverSlot) the current thread IS. -1 on
// threads the runtime never adopted (e.g. a test's main thread before
// run()). Identity, not data: used only for ownership asserts and for
// routing recordCast to the right trace slice.
thread_local int tlsSlot = -1;
}  // namespace

ThreadedRuntime::ThreadedRuntime(Topology topo, LatencyModel latency,
                                 uint64_t seed)
    : topo_(std::move(topo)), latency_(latency), seed_(seed) {
  latency_.validate();
  const size_t n = static_cast<size_t>(topo_.numProcesses());
  per_ = std::vector<PerThread>(n);
  for (size_t p = 0; p < n; ++p) {
    // Same forking discipline as the sim: one independent stream per
    // process, all derived from the run seed.
    per_[p].rng = SplitMix64(seed_).fork(static_cast<uint64_t>(p) + 1);
  }
  rings_.resize(n);
  for (size_t c = 0; c < n; ++c) {
    rings_[c].reserve(n + 1);
    for (size_t prod = 0; prod <= n; ++prod)
      rings_[c].push_back(std::make_unique<SpscRing<Envelope>>());
  }
}

ThreadedRuntime::~ThreadedRuntime() {
  if (running_.load(std::memory_order_acquire)) stop();
}

void ThreadedRuntime::attach(ProcessId pid, std::unique_ptr<Process> node) {
  assert(!running_.load(std::memory_order_relaxed) &&
         "attach() before start()");
  assert(pid >= 0 && pid < topo_.numProcesses());
  per_[static_cast<size_t>(pid)].node = std::move(node);
}

int64_t ThreadedRuntime::monoUs() const {
  if (!running_.load(std::memory_order_relaxed) && !stopped_) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

SimTime ThreadedRuntime::now() const { return monoUs(); }

void ThreadedRuntime::start() {
  assert(!running_.load(std::memory_order_relaxed));
  for (const PerThread& p : per_)
    assert(p.node != nullptr && "every process must have an attached node");
  t0_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  for (size_t p = 0; p < per_.size(); ++p)
    per_[p].th = std::thread(&ThreadedRuntime::threadMain, this,
                             static_cast<ProcessId>(p));
}

void ThreadedRuntime::threadMain(ProcessId pid) {
  tlsSlot = pid;
  PerThread& me = per_[static_cast<size_t>(pid)];
  me.node->onStart();
  while (!stopFlag_.load(std::memory_order_acquire)) {
    size_t work = 0;

    drainRings(pid);

    // Deferred messages whose emulated-latency deadline has passed.
    const int64_t now = monoUs();
    while (!me.inbox.empty() && me.inbox.begin()->first <= now) {
      Envelope e = std::move(me.inbox.begin()->second);
      me.inbox.erase(me.inbox.begin());
      deliverEnvelope(pid, e);
      ++work;
    }

    work += me.wheel.fireDue(monoUs());

    if (work == 0) {
      // Idle: nothing due, rings empty. A short real sleep keeps the poll
      // loop from melting a core; 20us is far below the smallest emulated
      // latency, so it does not distort the measurement.
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  }
}

void ThreadedRuntime::drainRings(ProcessId pid) {
  PerThread& me = per_[static_cast<size_t>(pid)];
  auto& myRings = rings_[static_cast<size_t>(pid)];
  const int64_t now = monoUs();
  Envelope e;
  for (auto& ring : myRings) {
    while (ring->tryPop(e)) {
      if (e.payload == nullptr) {
        // Posted command from the driver: runs immediately on this thread.
        e.cmd();
        continue;
      }
      if (e.dueUs <= now) {
        deliverEnvelope(pid, e);
      } else {
        const int64_t due = e.dueUs;
        me.inbox.emplace(due, std::move(e));
      }
    }
  }
}

void ThreadedRuntime::deliverEnvelope(ProcessId to, Envelope& e) {
  PerThread& me = per_[static_cast<size_t>(to)];
  // Receive event (rule 3): the receiver's clock jumps to
  // max(LC, ts(send(m))). Relaxed: only this thread writes its clock.
  const uint64_t lc = me.lamport.load(std::memory_order_relaxed);
  me.lamport.store(std::max(lc, e.sendTs), std::memory_order_relaxed);
  const Layer layer = e.payload->layer();
  if (layer != Layer::kFailureDetector && layer != Layer::kBootstrap)
    me.recvAlgo = true;
  me.node->onMessage(e.from, e.payload);
}

void ThreadedRuntime::pushBlocking(int consumer, int producer, Envelope e) {
  SpscRing<Envelope>& ring =
      *rings_[static_cast<size_t>(consumer)][static_cast<size_t>(producer)];
  while (!ring.tryPush(e)) {
    // Ring full: the consumer is behind. Backpressure by spinning; bail
    // (dropping the envelope) only if the run is already tearing down,
    // otherwise a full ring at shutdown would deadlock the producer.
    if (stopFlag_.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(std::chrono::microseconds(5));
  }
}

SimTime ThreadedRuntime::drawLatency(bool interGroup, SplitMix64& rng) const {
  const SimTime lo = interGroup ? latency_.interMin : latency_.intraMin;
  const SimTime hi = interGroup ? latency_.interMax : latency_.intraMax;
  if (lo == hi) return lo;
  return static_cast<SimTime>(
      rng.uniform(static_cast<uint64_t>(lo), static_cast<uint64_t>(hi)));
}

void ThreadedRuntime::bumpAlgoSend(ProcessId from, SimTime when) {
  per_[static_cast<size_t>(from)].sentAlgo = true;
  // Monotonic max; several sender threads race here, so CAS-max.
  int64_t cur = lastAlgoSend_.load(std::memory_order_relaxed);
  while (when > cur && !lastAlgoSend_.compare_exchange_weak(
                           cur, when, std::memory_order_release,
                           std::memory_order_relaxed)) {
  }
}

void ThreadedRuntime::multicast(ProcessId from,
                                const std::vector<ProcessId>& tos,
                                PayloadPtr payload) {
  assert(payload != nullptr);
  assert((tlsSlot == from || !running_.load(std::memory_order_relaxed)) &&
         "multicast must run on the sender's own thread");
  if (tos.empty()) return;

  PerThread& me = per_[static_cast<size_t>(from)];
  const Layer layer = payload->layer();

  // Modified Lamport clock (paper §2.3, rule 2): stamp LC+1 iff the
  // fan-out leaves the group; one tick for the whole fan-out.
  bool anyInter = false;
  for (ProcessId to : tos) anyInter |= !topo_.sameGroup(from, to);
  const uint64_t sendTs =
      me.lamport.load(std::memory_order_relaxed) + (anyInter ? 1 : 0);
  me.lamport.store(sendTs, std::memory_order_relaxed);

  if (layer != Layer::kFailureDetector && layer != Layer::kBootstrap)
    bumpAlgoSend(from, monoUs());

  auto& counter = me.traffic.at(layer);
  for (ProcessId to : tos) {
    const bool inter = !topo_.sameGroup(from, to);
    if (inter) {
      ++counter.inter;
    } else {
      ++counter.intra;
    }
    // The emulated WAN delay is drawn on the sender's own stream and rides
    // in the envelope; the receiver defers delivery until the deadline.
    Envelope e;
    e.payload = payload;
    e.dueUs = monoUs() + drawLatency(inter, me.rng);
    e.sendTs = sendTs;
    e.from = from;
    pushBlocking(to, tlsSlot >= 0 ? tlsSlot : from, std::move(e));
  }
}

EventId ThreadedRuntime::scheduleTimer(ProcessId pid, SimTime delay,
                                       SmallFn fn) {
  assert((tlsSlot == pid || !running_.load(std::memory_order_relaxed)) &&
         "a process may only arm its own timers");
  const uint64_t local =
      per_[static_cast<size_t>(pid)].wheel.at(monoUs() + delay, std::move(fn));
  return (static_cast<uint64_t>(pid) + 1) << kSlotShift | local;
}

void ThreadedRuntime::cancelTimer(EventId id) {
  if (id == kNoEvent) return;
  const int slot = static_cast<int>(id >> kSlotShift) - 1;
  assert(slot >= 0 && slot < topo_.numProcesses());
  assert((tlsSlot == slot || !running_.load(std::memory_order_relaxed)) &&
         "a process may only cancel its own timers");
  per_[static_cast<size_t>(slot)].wheel.cancel(id & kLocalMask);
}

EventId ThreadedRuntime::harnessAt(SimTime when, SmallFn fn) {
  assert((tlsSlot == driverSlot() ||
          !running_.load(std::memory_order_relaxed)) &&
         "harness events belong to the driver thread");
  const int64_t due = std::max<int64_t>(when, monoUs());
  const uint64_t local = driverWheel_.at(due, std::move(fn));
  return (static_cast<uint64_t>(driverSlot()) + 1) << kSlotShift | local;
}

void ThreadedRuntime::harnessCancel(EventId id) {
  if (id == kNoEvent) return;
  assert(static_cast<int>(id >> kSlotShift) - 1 == driverSlot());
  driverWheel_.cancel(id & kLocalMask);
}

void ThreadedRuntime::post(ProcessId pid, SmallFn fn) {
  assert(pid >= 0 && pid < topo_.numProcesses());
  Envelope e;
  e.cmd = std::move(fn);
  pushBlocking(pid, tlsSlot >= 0 ? tlsSlot : driverSlot(), std::move(e));
}

void ThreadedRuntime::recordCast(ProcessId pid, const AppMsgPtr& m) {
  const uint64_t lc =
      per_[static_cast<size_t>(pid)].lamport.load(std::memory_order_relaxed);
  CastEvent ev{pid, m->id, m->dest, lc, monoUs()};
  // Unbatched casts record on the sender's thread; batched carriers are
  // recorded by the driver's flush path. Each appends to its OWN slice.
  if (tlsSlot == pid) {
    per_[static_cast<size_t>(pid)].casts.push_back(ev);
  } else {
    driverCasts_.push_back(ev);
  }
}

void ThreadedRuntime::recordDelivery(ProcessId pid, MsgId msg) {
  PerThread& me = per_[static_cast<size_t>(pid)];
  assert(tlsSlot == pid && "deliveries are recorded on the owning thread");
  me.deliveries.push_back(
      DeliveryEvent{pid, msg, me.lamport.load(std::memory_order_relaxed),
                    monoUs(), me.perProcOrder++});
  // Release pairs with the driver's acquire in deliveredCount(): the
  // termination ledger must observe the trace entry it counted.
  delivered_.fetch_add(1, std::memory_order_release);
}

void ThreadedRuntime::setChannelHook(ChannelHook* hook) {
  if (hook != nullptr)
    throw std::logic_error(
        "ThreadedRuntime: reliable channels are a sim-backend substrate; "
        "the threaded backend sends every copy exactly once");
}

void ThreadedRuntime::channelSend(ProcessId, ProcessId, PayloadPtr, Layer) {
  throw std::logic_error("ThreadedRuntime::channelSend: no channel plane");
}

void ThreadedRuntime::deliverFromChannel(ProcessId, ProcessId,
                                         const PayloadPtr&, uint64_t) {
  throw std::logic_error(
      "ThreadedRuntime::deliverFromChannel: no channel plane");
}

bool ThreadedRuntime::run(SimTime wallBudgetUs,
                          const std::function<bool()>& done) {
  assert(running_.load(std::memory_order_relaxed) && "start() first");
  tlsSlot = driverSlot();
  for (;;) {
    driverWheel_.fireDue(monoUs());
    if (done()) return true;
    if (monoUs() > wallBudgetUs) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void ThreadedRuntime::stop() {
  if (stopped_) return;
  stopped_ = true;
  stopFlag_.store(true, std::memory_order_release);
  for (PerThread& p : per_)
    if (p.th.joinable()) p.th.join();
  running_.store(false, std::memory_order_release);
  mergeTraces();
}

void ThreadedRuntime::mergeTraces() {
  size_t nCasts = driverCasts_.size();
  size_t nDeliv = 0;
  for (const PerThread& p : per_) {
    nCasts += p.casts.size();
    nDeliv += p.deliveries.size();
  }
  trace_.casts.reserve(nCasts);
  trace_.deliveries.reserve(nDeliv);
  for (PerThread& p : per_) {
    trace_.casts.insert(trace_.casts.end(), p.casts.begin(), p.casts.end());
    trace_.deliveries.insert(trace_.deliveries.end(), p.deliveries.begin(),
                             p.deliveries.end());
  }
  trace_.casts.insert(trace_.casts.end(), driverCasts_.begin(),
                      driverCasts_.end());
  // Wall-time order, ties broken by process then id, so verify:: and
  // metrics:: walk the merged trace the same way they walk a sim trace.
  std::sort(trace_.casts.begin(), trace_.casts.end(),
            [](const CastEvent& a, const CastEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.process != b.process) return a.process < b.process;
              return a.msg < b.msg;
            });
  std::sort(trace_.deliveries.begin(), trace_.deliveries.end(),
            [](const DeliveryEvent& a, const DeliveryEvent& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.process != b.process) return a.process < b.process;
              return a.order < b.order;
            });
  for (const CastEvent& c : trace_.casts) {
    trace_.destOf[c.msg] = c.dest;
    trace_.senderOf[c.msg] = c.process;
  }
  for (const PerThread& p : per_)
    for (int l = 0; l < kNumLayers; ++l) {
      traffic_.perLayer[l].intra += p.traffic.perLayer[l].intra;
      traffic_.perLayer[l].inter += p.traffic.perLayer[l].inter;
    }
}

}  // namespace wanmc::exec
