// Bounded lock-free single-producer / single-consumer ring.
//
// The threaded backend wires every ordered (producer thread, consumer
// thread) pair with one of these: message copies and posted commands cross
// threads ONLY through a ring, so no queue ever sees two concurrent
// producers or two concurrent consumers and the classic two-index SPSC
// scheme is race-free by construction. Slots hold full objects (shared_ptr
// payloads, small callables) — the producer move-assigns in, the consumer
// moves out; the release/acquire pair on the indices publishes the slot
// contents.
//
// This file is under src/exec/threaded/: the determinism contract (lint
// rule D1) is relaxed here — this is the real-clock backend.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wanmc::exec {

template <class T>
class SpscRing {
 public:
  // `capacity` is rounded up to a power of two (index arithmetic uses a
  // mask). A full ring makes tryPush fail — the producer decides whether
  // to spin, drop, or give up (see ThreadedRuntime::pushBlocking).
  explicit SpscRing(size_t capacity = 4096) {
    size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false (leaving `v` intact) when the ring is full.
  bool tryPush(T& v) {
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool tryPop(T& out) {
    const uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side emptiness probe (used for idle detection; a false
  // negative only costs one extra poll round).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Indices on separate cache lines: the producer only writes tail_, the
  // consumer only writes head_ — sharing a line would ping-pong it.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> tail_{0};
};

}  // namespace wanmc::exec
