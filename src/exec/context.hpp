// The execution-backend interface: the surface a protocol stack runs on.
//
// Every protocol node in this repo (the 10 stacks under src/abcast/,
// src/amcast/, src/rmcast/, src/consensus/, src/fd/) and every plane that
// rides along with them (channel, batching, bootstrap, workload) talks to
// its host exclusively through exec::Context: current time, message
// fan-out, guarded timers, crash/incarnation queries, Lamport-clock
// instrumentation, and the channel substrate hand-off. The two backends —
//
//   * sim::Runtime          the deterministic discrete-event oracle
//                           (src/sim/): virtual time, seeded latency draws,
//                           byte-identical golden fingerprints;
//   * exec::ThreadedRuntime real threads and a real steady clock
//                           (src/exec/threaded/): one thread per process,
//                           SPSC queues for message copies, per-thread
//                           timer wheels — the calibration backend;
//
// implement the same contract, so protocol code is compiled once and runs
// unmodified on either. Backend-agnostic code must not name sim::Runtime
// or the Scheduler directly (lint rule D6 enforces this).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "sim/topology.hpp"

namespace wanmc::exec {

// Which execution backend hosts a run. kSim is the deterministic oracle
// (golden fingerprints, fault injection, latency sweeps); kThreaded is the
// real-clock calibration backend (one thread per process, no determinism).
enum class Backend { kSim, kThreaded };

[[nodiscard]] inline const char* backendName(Backend b) {
  return b == Backend::kSim ? "sim" : "threaded";
}

// Backend-independent event handle for timers and harness events. The sim
// scheduler's generation-tagged ids and the threaded wheel's slot ids share
// the representation; zero is never issued and serves as "no event".
using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

// The link-latency model both backends apply: per-copy latency drawn
// uniformly from [min, max], one range for intra-group and one (orders of
// magnitude larger) for inter-group links. The sim backend draws from the
// seeded run RNG; the threaded backend emulates the same distribution in
// real time on top of thread/queue overhead.
struct LatencyModel {
  SimTime intraMin = 1 * kMs;
  SimTime intraMax = 2 * kMs;
  SimTime interMin = 100 * kMs;
  SimTime interMax = 110 * kMs;

  // A LAN-vs-WAN model with no jitter, handy for deterministic examples.
  static LatencyModel fixed(SimTime intra, SimTime inter) {
    return LatencyModel{intra, intra, inter, inter};
  }

  // Throws std::invalid_argument on a negative bound or an inverted
  // [min, max] range. Checked at backend construction (so every
  // RunConfig-built experiment is covered too): a bad range would
  // otherwise silently collapse to a fixed draw (span underflow) or
  // schedule events behind the clock.
  void validate() const;
};

// Interception point for the reliable-channel substrate (src/channel/).
// When installed, every non-FD multicast is handed to the hook INSTEAD of
// being scheduled directly; the hook transmits wire copies through
// Context::channelSend (which applies traffic accounting, link state, the
// drop filter, the loss model, and the latency draw) and hands packets that
// have reached their in-order point to Context::deliverFromChannel. With no
// hook installed the send path is byte-identical to the direct scheme.
class ChannelHook {
 public:
  virtual ~ChannelHook() = default;
  // One fan-out from `from` with the already-stamped modified Lamport clock
  // value `sendTs` (the clock ticked ONCE for the whole fan-out; every
  // transmission and retransmission of these copies must carry `sendTs`).
  virtual void onSend(ProcessId from, const std::vector<ProcessId>& tos,
                      const PayloadPtr& payload, uint64_t sendTs) = 0;
  // A wire copy sent via channelSend arrived at a live process `to`.
  virtual void onWireArrive(ProcessId from, ProcessId to,
                            const PayloadPtr& payload) = 0;
  // `pid` recovered as a fresh incarnation (called before the fresh node is
  // built): its channel endpoints must forget the dead incarnation's state.
  virtual void onReset(ProcessId pid) = 0;
};

// Move-only type-erased callable crossing the Context timer boundary. The
// inline buffer is sized so that the sim backend's incarnation guard
// (pointer + pid + incarnation + SmallFn = 56 bytes) still fits the
// scheduler's 56-byte inline event pool: routine protocol timers — which
// capture `this` plus a few ids — stay allocation-free end to end.
// Larger captures fall back to one heap allocation.
class SmallFn {
 public:
  static constexpr size_t kInlineSize = 32;

  SmallFn() = default;

  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* p) { (*static_cast<D*>(p))(); },
          [](void* p) { static_cast<D*>(p)->~D(); },
          [](void* src, void* dst) {
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
          }};
      vt_ = &vt;
    } else {
      // Cold fallback for captures beyond the inline buffer; every routine
      // protocol timer fits inline (static_asserted by the backends' own
      // hot-path guards and cross-checked by the bench operator-new hook).
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* p) { (**static_cast<D**>(p))(); },
          [](void* p) { delete *static_cast<D**>(p); },
          [](void* src, void* dst) {
            ::new (dst) D*(*static_cast<D**>(src));
          }};
      vt_ = &vt;
    }
  }

  SmallFn(SmallFn&& o) noexcept { moveFrom(o); }
  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  void operator()() { vt_->call(buf_); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*call)(void*);
    void (*destroy)(void*);
    void (*relocate)(void* src, void* dst);  // move into dst, destroy src
  };

  void moveFrom(SmallFn& o) {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  alignas(void*) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};
static_assert(sizeof(SmallFn) == SmallFn::kInlineSize + sizeof(void*),
              "SmallFn layout drifted: the sim timer guard is sized to the "
              "scheduler's inline event pool");

class Process;

// The execution context a protocol stack runs on. Split in three tiers:
//
//   node surface     now/topology/multicast/timer/cancel, crash and
//                    incarnation queries, recordCast/recordDelivery —
//                    everything a Process may touch;
//   plane surface    latencyModel/payloadArena, the channel substrate
//                    hand-off, crash/recovery listeners — what the channel,
//                    batching, bootstrap, and FD planes additionally need;
//   harness surface  attach/node, harnessAt/post, trace/traffic harvest —
//                    reserved for the driver (core::Experiment and the
//                    workload generator), never for protocol code.
class Context {
 public:
  virtual ~Context() = default;

  // ---- node surface: time, topology, transport ----------------------------

  [[nodiscard]] virtual SimTime now() const = 0;
  [[nodiscard]] virtual const Topology& topology() const = 0;

  // Sends one payload to many destinations as a SINGLE send event: the
  // sender's Lamport clock ticks once (iff any destination is in another
  // group), and every copy carries that one stamp. This matches the paper's
  // cost model: in the proof of Theorem 4.1, "processes in g_i send (TS, m)
  // to g_{3-i}" is one event with one timestamp, not |g| events. Message
  // *counts* are still per link (one per destination).
  virtual void multicast(ProcessId from, const std::vector<ProcessId>& tos,
                         PayloadPtr payload) = 0;

  // Sends `payload` from `from` to `to`, applying the latency model, the
  // traffic accounting, and the modified Lamport-clock rules. A crashed
  // sender sends nothing; delivery to a crashed receiver is dropped.
  void send(ProcessId from, ProcessId to, PayloadPtr payload) {
    multicast(from, {to}, std::move(payload));
  }

  // Fires `fn` after `delay` unless the process has crashed (or crashed and
  // recovered as a fresh incarnation) by then. Timers are local events:
  // they never touch the Lamport clock, and they fire on the process's own
  // execution context (the sim scheduler / the process's thread).
  template <class F>
  EventId timer(ProcessId pid, SimTime delay, F&& fn) {
    return scheduleTimer(pid, delay, SmallFn(std::forward<F>(fn)));
  }
  virtual void cancelTimer(EventId id) = 0;

  // ---- node surface: failures and incarnations -----------------------------

  [[nodiscard]] virtual bool crashed(ProcessId pid) const = 0;
  [[nodiscard]] virtual uint32_t incarnation(ProcessId pid) const = 0;
  [[nodiscard]] virtual int aliveInGroup(GroupId g) const = 0;

  // Registers a callback fired whenever a process crashes. `owner` is the
  // process hosting the listener (the oracle failure detector registers
  // one per process): listeners die with their owner's incarnation, so a
  // recovered process's FRESH detector is the only one still listening.
  virtual void addCrashListener(ProcessId owner,
                                std::function<void(ProcessId)> fn) = 0;
  // Same contract, fired whenever a process RECOVERS (after the fresh node
  // is attached and before its onStart). Used for suspicion retraction.
  virtual void addRecoveryListener(ProcessId owner,
                                   std::function<void(ProcessId)> fn) = 0;

  // ---- node surface: modified Lamport-clock instrumentation ---------------

  // Current modified-Lamport clock value of `pid` (paper §2.3: only
  // inter-group sends tick it; receives jump to max(LC, sendTs)).
  [[nodiscard]] virtual uint64_t lamport(ProcessId pid) const = 0;
  // Record an A-XCast event (local event: stamped with the current clock).
  virtual void recordCast(ProcessId pid, const AppMsgPtr& m) = 0;
  // Record an A-Deliver event.
  virtual void recordDelivery(ProcessId pid, MsgId msg) = 0;

  // ---- plane surface -------------------------------------------------------

  [[nodiscard]] virtual const LatencyModel& latencyModel() const = 0;

  // Recycler for per-interval protocol payloads (see common/arena.hpp).
  // Owned by the backend so pooled payloads may be held by ANY node or
  // in-flight event: the arena is destroyed after all of them.
  [[nodiscard]] virtual ArenaPool& payloadArena() = 0;

  // Installs a NON-OWNING channel hook (null to remove). The hook must stay
  // alive for as long as the backend dispatches events. Layer
  // kFailureDetector traffic is never routed through the hook: heartbeat
  // TIMING is the failure signal, and retransmitting it would blind the
  // detector.
  virtual void setChannelHook(ChannelHook* hook) = 0;
  [[nodiscard]] virtual ChannelHook* channelHook() const = 0;

  // Raw single-copy transmission for the channel plane: traffic accounting
  // under `accountLayer` (DATA under its inner layer, ACK/NACK under
  // kChannel), wire observers, link state, drop filter, loss model, latency
  // draw, then ChannelHook::onWireArrive at the receiver. Never touches the
  // Lamport clocks: only the ORIGINAL multicast ticks the sender's clock
  // (paper §2.3); retransmissions carry the original stamp inside the
  // channel payload.
  virtual void channelSend(ProcessId from, ProcessId to, PayloadPtr payload,
                           Layer accountLayer) = 0;

  // Final in-order handoff of a channel-carried packet to the hosting node:
  // applies the receive-side Lamport jump to the ORIGINAL `sendTs` and the
  // genuineness accounting, exactly like a direct delivery would have.
  virtual void deliverFromChannel(ProcessId from, ProcessId to,
                                  const PayloadPtr& payload,
                                  uint64_t sendTs) = 0;

  // ---- harness surface: hosting --------------------------------------------

  // Takes ownership of the node hosting process `pid`.
  virtual void attach(ProcessId pid, std::unique_ptr<Process> node) = 0;
  [[nodiscard]] virtual Process& node(ProcessId pid) = 0;

  // ---- harness surface: driver-plane scheduling ----------------------------

  // Schedules an UNGUARDED harness event at absolute time `when` (clamped
  // to now): workload arrivals, scripted casts, batch-window expiries. The
  // callback must check crash/incarnation state itself if it touches a
  // process. On the threaded backend harness events fire on the driver
  // thread; use post() to touch a process's stack.
  virtual EventId harnessAt(SimTime when, SmallFn fn) = 0;
  virtual void harnessCancel(EventId id) = 0;

  // Runs `fn` on `pid`'s execution context: immediately (inline) on the
  // sim backend, as an enqueued command on the process's own thread on the
  // threaded backend. The only sanctioned way for driver-plane code to
  // call into a node's stack.
  virtual void post(ProcessId pid, SmallFn fn) = 0;

  // ---- harness surface: harvest --------------------------------------------

  [[nodiscard]] virtual const RunTrace& trace() const = 0;
  [[nodiscard]] virtual const TrafficStats& traffic() const = 0;
  // Time of the last non-FD packet handed to the network. The quiescence
  // verifier compares this against the last cast (paper §5.2 / Prop. A.9).
  [[nodiscard]] virtual SimTime lastAlgorithmicSend() const = 0;
  // True if the process crashed at least once, even if it has recovered
  // since: the paper's "correct process" means NEVER crashed.
  [[nodiscard]] virtual bool everCrashed(ProcessId pid) const = 0;
  // Per-process "took part in the protocol" flags for the genuineness
  // checker (layer kFailureDetector excluded, see DESIGN.md §2).
  [[nodiscard]] virtual bool everSentAlgorithmic(ProcessId pid) const = 0;
  [[nodiscard]] virtual bool everReceivedAlgorithmic(ProcessId pid) const = 0;

 protected:
  // Backend hook behind the timer() template: schedule `fn` on `pid`'s
  // execution context after `delay`, guarded against crash/reincarnation.
  virtual EventId scheduleTimer(ProcessId pid, SimTime delay, SmallFn fn) = 0;
};

// Base class of a hosted process. A Process hosts the whole per-process
// protocol stack (failure detector, consensus, reliable multicast, and the
// atomic multicast/broadcast algorithm); subclasses dispatch payloads to
// the right component in onMessage. Known to the sim backend as sim::Node
// (the historical name, kept as an alias).
class Process {
 public:
  Process(Context& ctx, ProcessId pid)
      : ctx_(ctx), pid_(pid), gid_(ctx.topology().group(pid)) {}
  virtual ~Process() = default;

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] GroupId gid() const { return gid_; }
  // The execution context hosting this process. The name predates the
  // backend split; protocol code reads naturally either way.
  [[nodiscard]] Context& runtime() { return ctx_; }
  [[nodiscard]] const Topology& topology() const { return ctx_.topology(); }
  [[nodiscard]] SimTime now() const { return ctx_.now(); }

  // Called once when the run starts (on the process's own context).
  virtual void onStart() {}
  // Called for every delivered packet.
  virtual void onMessage(ProcessId from, const PayloadPtr& payload) = 0;
  // Called when this process crashes (for bookkeeping only — a crashed
  // process takes no further steps).
  virtual void onCrash() {}

 protected:
  void send(ProcessId to, PayloadPtr payload) {
    ctx_.send(pid_, to, std::move(payload));
  }
  // One send event, many copies (see Context::multicast).
  void sendToMany(const std::vector<ProcessId>& tos, const PayloadPtr& p) {
    ctx_.multicast(pid_, tos, p);
  }
  template <class F>
  EventId timer(SimTime delay, F&& fn) {
    return ctx_.timer(pid_, delay, std::forward<F>(fn));
  }

 private:
  Context& ctx_;
  ProcessId pid_;
  GroupId gid_;
};

}  // namespace wanmc::exec
