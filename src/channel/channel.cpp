#include "channel/channel.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/hot.hpp"

namespace wanmc::channel {

std::string DataPacket::debugString() const {
  std::ostringstream os;
  os << "chan-data{seq=" << seq << " inc=" << senderInc << " ep=" << epoch
     << " " << inner->debugString() << "}";
  return os.str();
}

std::string AckPacket::debugString() const {
  std::ostringstream os;
  os << "chan-ack{cum=" << cumAck;
  if (nackTo > nackFrom) os << " nack=[" << nackFrom << "," << nackTo << ")";
  os << " inc=" << receiverInc << " ep=" << epoch << "}";
  return os.str();
}

Plane::Plane(exec::Context& rt, Config cfg)
    : rt_(rt), cfg_(cfg), n_(rt.topology().numProcesses()) {
  const auto& lm = rt_.latencyModel();
  // One worst-case DATA + ACK round trip over the slowest link class, plus
  // slack for the receiver's turnaround. Deterministic in the model.
  const SimTime oneWay = std::max(lm.interMax, lm.intraMax);
  rto_ = cfg_.rto > 0 ? cfg_.rto : 2 * oneWay + 2 * lm.intraMax + 1 * kMs;
  out_.resize(static_cast<size_t>(n_) * static_cast<size_t>(n_));
  in_.resize(static_cast<size_t>(n_) * static_cast<size_t>(n_));
}

WANMC_HOT void Plane::onSend(ProcessId from, const std::vector<ProcessId>& tos,
                             const PayloadPtr& payload, uint64_t sendTs) {
  const Layer layer = payload->layer();
  for (ProcessId to : tos) {
    OutLink& ol = out(from, to);
    const uint64_t seq = ol.nextSeq++;
    ol.window.push_back(Unacked{payload, layer, sendTs});
    ++stats_.dataSent;
    transmit(from, to, ol, seq, ol.window.back());
    armTimer(from, to, ol);
  }
}

WANMC_HOT void Plane::transmit(ProcessId from, ProcessId to, const OutLink& ol,
                               uint64_t seq, const Unacked& u) {
  // wanmc-lint: allow(D5): one DataPacket envelope per wire copy; pooling
  // it through the payload arena is the ROADMAP's channel follow-through
  auto pkt = std::make_shared<DataPacket>();
  pkt->inner = u.inner;
  pkt->innerLayer = u.innerLayer;
  pkt->seq = seq;
  pkt->sendTs = u.sendTs;
  pkt->senderInc = rt_.incarnation(from);
  pkt->epoch = ol.epoch;
  rt_.channelSend(from, to, std::move(pkt), u.innerLayer);
}

void Plane::armTimer(ProcessId from, ProcessId to, OutLink& ol) {
  if (ol.timerArmed) return;
  ol.timerArmed = true;
  const uint64_t gen = ++ol.timerGen;
  const SimTime delay =
      rto_ << std::min(ol.backoff, cfg_.maxBackoffExp);
  // Runtime::timer is incarnation-guarded: if `from` crashes (or crashes
  // and recovers) before this fires, the dead incarnation's timer is
  // suppressed; the generation check voids timers the plane disarmed.
  rt_.timer(from, delay, [this, from, to, gen]() { onRto(from, to, gen); });
}

void Plane::onRto(ProcessId from, ProcessId to, uint64_t gen) {
  OutLink& ol = out(from, to);
  if (!ol.timerArmed || gen != ol.timerGen) return;
  ol.timerArmed = false;
  if (ol.window.empty()) return;
  // Go-back-N: re-offer the whole unacked window. Windows are small (one
  // fan-out's worth per destination at steady state), and the cumulative
  // ACK immediately re-trims whatever did get through.
  uint64_t seq = ol.base;
  for (const Unacked& u : ol.window) {
    ++stats_.retransmits;
    transmit(from, to, ol, seq++, u);
  }
  ol.backoff = std::min(ol.backoff + 1, cfg_.maxBackoffExp);
  armTimer(from, to, ol);
}

void Plane::rekey(ProcessId from, ProcessId to, OutLink& ol) {
  // The peer reincarnated: everything it ever acked died with it. Open a
  // fresh epoch whose sequence space starts at 0 and re-offer the unacked
  // backlog as its prefix; in-flight packets and ACKs of older epochs are
  // dropped as stale on arrival.
  ++ol.epoch;
  ol.base = 0;
  ol.nextSeq = ol.window.size();
  ol.backoff = 0;
  ol.timerArmed = false;
  ++ol.timerGen;
  uint64_t seq = 0;
  for (const Unacked& u : ol.window) {
    ++stats_.retransmits;
    transmit(from, to, ol, seq++, u);
  }
  if (!ol.window.empty()) armTimer(from, to, ol);
}

void Plane::onWireArrive(ProcessId from, ProcessId to,
                         const PayloadPtr& payload) {
  if (const auto* d = dynamic_cast<const DataPacket*>(payload.get())) {
    handleData(from, to, *d);
  } else if (const auto* a = dynamic_cast<const AckPacket*>(payload.get())) {
    handleAck(from, to, *a);
  }
}

WANMC_HOT void Plane::handleData(ProcessId sender, ProcessId self,
                                 const DataPacket& d) {
  // Stale-incarnation copies (a dead incarnation's stragglers still in
  // flight) are dropped outright: the (sender incarnation, seq) key is what
  // makes duplicate suppression survive recovery.
  if (d.senderInc != rt_.incarnation(sender)) {
    ++stats_.staleDropped;
    return;
  }
  InLink& il = in(self, sender);
  if (!il.known || d.senderInc != il.peerInc) {
    // First contact, or the sender reincarnated: adopt its fresh space.
    il = InLink{};
    il.known = true;
    il.peerInc = d.senderInc;
    il.epoch = d.epoch;
  } else if (d.epoch != il.epoch) {
    if (d.epoch > il.epoch) {
      // The sender re-keyed (it saw OUR fresh incarnation): the new epoch's
      // prefix supersedes anything held from the old one.
      il.holdback.clear();
      il.nextExpected = 0;
      il.nackCeiling = 0;
      il.epoch = d.epoch;
    } else {
      ++stats_.staleDropped;
      sendAck(self, sender, il, 0, 0);  // re-sync the sender to our epoch
      return;
    }
  }

  if (d.seq < il.nextExpected) {
    // Already delivered (the ACK must have been lost): suppress, re-ack.
    ++stats_.duplicatesDropped;
    sendAck(self, sender, il, 0, 0);
    return;
  }
  if (d.seq == il.nextExpected) {
    rt_.deliverFromChannel(sender, self, d.inner, d.sendTs);
    ++stats_.delivered;
    ++il.nextExpected;
    for (auto it = il.holdback.begin();
         it != il.holdback.end() && it->first == il.nextExpected;
         it = il.holdback.erase(it)) {
      rt_.deliverFromChannel(sender, self, it->second.inner,
                             it->second.sendTs);
      ++stats_.delivered;
      ++il.nextExpected;
    }
    if (il.nackCeiling < il.nextExpected) il.nackCeiling = il.nextExpected;
    sendAck(self, sender, il, 0, 0);
    return;
  }

  // Gap: hold if there is room (drop-newest past the cap — the sender's
  // retransmit timer re-offers it once the window drains).
  if (il.holdback.count(d.seq) != 0) {
    ++stats_.duplicatesDropped;
    sendAck(self, sender, il, 0, 0);
    return;
  }
  if (il.holdback.size() >= cfg_.holdbackCap) {
    ++stats_.holdbackOverflow;
    sendAck(self, sender, il, 0, 0);
    return;
  }
  il.holdback.emplace(d.seq, Held{d.inner, d.sendTs});
  uint64_t nackFrom = 0;
  uint64_t nackTo = 0;
  if (d.seq > il.nackCeiling) {
    // This arrival WIDENED the gap: request the missing prefix once.
    nackFrom = il.nextExpected;
    nackTo = d.seq;
    il.nackCeiling = d.seq;
    ++stats_.nacksSent;
  }
  sendAck(self, sender, il, nackFrom, nackTo);
}

WANMC_HOT void Plane::sendAck(ProcessId self, ProcessId sender,
                              const InLink& il, uint64_t nackFrom,
                              uint64_t nackTo) {
  // wanmc-lint: allow(D5): one AckPacket per DATA arrival; pooled ACKs
  // ride with the DataPacket arena item above
  auto ack = std::make_shared<AckPacket>();
  ack->cumAck = il.nextExpected;
  ack->nackFrom = nackFrom;
  ack->nackTo = nackTo;
  ack->receiverInc = rt_.incarnation(self);
  ack->epoch = il.epoch;
  ++stats_.acksSent;
  rt_.channelSend(self, sender, std::move(ack), Layer::kChannel);
}

WANMC_HOT void Plane::handleAck(ProcessId acker, ProcessId self,
                                const AckPacket& a) {
  if (a.receiverInc != rt_.incarnation(acker)) {
    ++stats_.staleDropped;  // an ACK from the acker's dead incarnation
    return;
  }
  OutLink& ol = out(self, acker);
  if (ol.peerKnown && a.receiverInc != ol.peerInc) {
    // The receiver reincarnated since we last heard from it: re-key the
    // link. This ACK's cumAck/NACK describe a dead sequence space.
    ol.peerInc = a.receiverInc;
    rekey(self, acker, ol);
    return;
  }
  ol.peerInc = a.receiverInc;
  ol.peerKnown = true;
  if (a.epoch != ol.epoch) {
    ++stats_.staleDropped;  // pre-rekey ACK still in flight
    return;
  }
  const uint64_t oldBase = ol.base;
  while (ol.base < a.cumAck && !ol.window.empty()) {
    ol.window.pop_front();
    ++ol.base;
  }
  if (ol.window.empty()) {
    ol.timerArmed = false;
    ++ol.timerGen;
    ol.backoff = 0;
  } else if (ol.base != oldBase) {
    ol.backoff = 0;  // forward progress: the link is alive again
  }
  if (a.nackTo > a.nackFrom) {
    const uint64_t lo = std::max(a.nackFrom, ol.base);
    const uint64_t hi = std::min(a.nackTo, ol.nextSeq);
    for (uint64_t s = lo; s < hi; ++s) {
      ++stats_.retransmits;
      transmit(self, acker, ol, s, ol.window[s - ol.base]);
    }
  }
}

void Plane::onReset(ProcessId pid) {
  // `pid` recovered as a fresh incarnation: both endpoints of every link it
  // touches forget the dead incarnation's state. Its fresh sends open new
  // sequence spaces (peers adopt them on the incarnation change); peers'
  // links TO it re-key lazily when its fresh ACKs reveal the incarnation.
  for (ProcessId peer = 0; peer < n_; ++peer) {
    out(pid, peer) = OutLink{};
    in(pid, peer) = InLink{};
  }
}

}  // namespace wanmc::channel
