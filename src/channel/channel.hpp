// Reliable retransmitting channel substrate (the ROADMAP's
// "liveness through partitions and loss" item).
//
// The paper's algorithms are proved over quasi-reliable FIFO channels, but
// the fault plane (PR 5) makes partitions and drop filters lose protocol
// messages for good — which is why partition-heal and lossy matrix cells
// were checked for safety only. This plane restores the channel contract
// BELOW the stacks, the way a deployment would (Dolev et al.'s stabilizing
// data-link over unreliable non-FIFO channels is the theory anchor):
//
//   * per directed link, DATA packets carry a sequence number, the sender's
//     incarnation, a link epoch, and the ORIGINAL modified-Lamport stamp;
//   * the receiver delivers strictly in order, holding out-of-order copies
//     in a BOUNDED holdback buffer (drop-newest past the cap — the sender's
//     retransmit timer re-offers them later);
//   * every DATA arrival is answered with a cumulative ACK; an arrival that
//     OPENS a gap additionally carries a NACK range for fast resend,
//     suppressed while the same gap is already outstanding;
//   * unacked packets are re-sent on a deterministic capped-exponential
//     retransmit timer, incarnation-guarded through Runtime::timer so a
//     dead sender's timers die with it;
//   * duplicates are suppressed by (sender incarnation, seq); packets from
//     a process's DEAD incarnation are stale and dropped outright;
//   * recovery re-keys the link: a fresh sender incarnation opens a new
//     sequence space, and a sender that learns its peer reincarnated bumps
//     the link epoch and re-offers the whole unacked backlog as the new
//     epoch's prefix (the amnesiac receiver lost everything it had acked).
//
// Cost-model fidelity: the plane never touches the Lamport clocks. The
// original multicast ticks the sender's clock once per fan-out; every
// (re)transmission carries that stamp, and the receive-side jump happens at
// the final in-order handoff (Runtime::deliverFromChannel). DATA is
// accounted under its inner layer (so retransmissions honestly inflate the
// algorithm's message counts); ACK/NACK control traffic is accounted under
// Layer::kChannel, which — like the FD substrate — is excluded from the
// genuineness/quiescence bookkeeping.
//
// Everything is deterministic: no RNG, timers through the scheduler, dense
// link tables iterated in pid order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "exec/context.hpp"

namespace wanmc::channel {

// Tuning knobs, all deterministic. The defaults are derived from the
// runtime's latency model at Plane construction where marked.
struct Config {
  // Retransmit timeout for the oldest unacked packet. 0 = derive from the
  // latency model: one worst-case DATA + ACK round trip plus slack.
  SimTime rto = 0;
  // Consecutive barren timeouts double the timer up to rto << maxBackoffExp
  // (so a permanently dead peer costs a bounded, geometric trickle).
  int maxBackoffExp = 4;
  // Out-of-order copies held per incoming link; beyond it, drop-newest.
  size_t holdbackCap = 1024;
};

// DATA: one protocol packet riding the channel. Reports the INNER layer so
// traffic accounting and drop filters see the algorithm's packet, not the
// envelope.
struct DataPacket final : Payload {
  PayloadPtr inner;
  Layer innerLayer = Layer::kProtocol;
  uint64_t seq = 0;
  uint64_t sendTs = 0;  // original multicast stamp (modified Lamport)
  uint32_t senderInc = 0;
  uint32_t epoch = 0;

  [[nodiscard]] Layer layer() const override { return innerLayer; }
  [[nodiscard]] std::string debugString() const override;
};

// ACK/NACK control packet: cumulative ack plus an optional gap request
// [nackFrom, nackTo) (empty when nackFrom == nackTo).
struct AckPacket final : Payload {
  uint64_t cumAck = 0;  // every seq < cumAck was delivered in order
  uint64_t nackFrom = 0;
  uint64_t nackTo = 0;
  uint32_t receiverInc = 0;
  uint32_t epoch = 0;

  [[nodiscard]] Layer layer() const override { return Layer::kChannel; }
  [[nodiscard]] std::string debugString() const override;
};

class Plane final : public exec::ChannelHook {
 public:
  // Does NOT install itself: the owner calls rt.setChannelHook(&plane).
  Plane(exec::Context& rt, Config cfg);

  void onSend(ProcessId from, const std::vector<ProcessId>& tos,
              const PayloadPtr& payload, uint64_t sendTs) override;
  void onWireArrive(ProcessId from, ProcessId to,
                    const PayloadPtr& payload) override;
  void onReset(ProcessId pid) override;

  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  [[nodiscard]] SimTime rto() const { return rto_; }

 private:
  struct Unacked {
    PayloadPtr inner;
    Layer innerLayer = Layer::kProtocol;
    uint64_t sendTs = 0;
  };
  // Sender endpoint of the directed link local -> peer.
  struct OutLink {
    std::deque<Unacked> window;  // unacked, seqs [base, base+window.size())
    uint64_t base = 0;
    uint64_t nextSeq = 0;
    uint64_t timerGen = 0;  // bumping it voids the armed timer
    uint32_t epoch = 0;
    uint32_t peerInc = 0;   // receiver incarnation last seen in an ACK
    bool peerKnown = false;
    bool timerArmed = false;
    int backoff = 0;
  };
  struct Held {
    PayloadPtr inner;
    uint64_t sendTs = 0;
  };
  // Receiver endpoint of the directed link peer -> local.
  struct InLink {
    std::map<uint64_t, Held> holdback;
    uint64_t nextExpected = 0;
    uint64_t nackCeiling = 0;  // highest seq a NACK was already issued for
    uint32_t peerInc = 0;      // sender incarnation this space belongs to
    uint32_t epoch = 0;
    bool known = false;  // adopted a (peerInc, epoch) space yet?
  };

  OutLink& out(ProcessId local, ProcessId peer) {
    return out_[static_cast<size_t>(local) * static_cast<size_t>(n_) +
                static_cast<size_t>(peer)];
  }
  InLink& in(ProcessId local, ProcessId peer) {
    return in_[static_cast<size_t>(local) * static_cast<size_t>(n_) +
               static_cast<size_t>(peer)];
  }

  void transmit(ProcessId from, ProcessId to, const OutLink& ol, uint64_t seq,
                const Unacked& u);
  void armTimer(ProcessId from, ProcessId to, OutLink& ol);
  void onRto(ProcessId from, ProcessId to, uint64_t gen);
  void rekey(ProcessId from, ProcessId to, OutLink& ol);
  void handleData(ProcessId sender, ProcessId self, const DataPacket& d);
  void handleAck(ProcessId acker, ProcessId self, const AckPacket& a);
  void sendAck(ProcessId self, ProcessId sender, const InLink& il,
               uint64_t nackFrom, uint64_t nackTo);

  exec::Context& rt_;
  Config cfg_;
  SimTime rto_ = 0;
  int n_ = 0;
  std::vector<OutLink> out_;  // n*n, indexed local*n + peer
  std::vector<InLink> in_;
  ChannelStats stats_;
};

}  // namespace wanmc::channel
