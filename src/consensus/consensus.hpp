// Uniform consensus, instance-numbered: Propose(k, v) / Decide(k, v).
//
// The paper assumes consensus is solvable inside every group (§2.1) and its
// Figure-1 accounting uses Schiper's early consensus [11]: latency degree 2
// and 2kd(kd-1) messages when run across k groups of d processes. We provide
// two implementations behind one interface:
//
//  * EarlyConsensus — rotating-coordinator, early-deciding: in the first
//    round the coordinator broadcasts its own proposal without collecting
//    estimates, everyone lock-broadcasts an ACK, and a process decides on a
//    majority of ACKs: two message delays in the failure-free case, matching
//    [11]'s latency degree of 2. Later rounds collect estimates and pick the
//    most recently locked one (classic indulgent locking), so uniform
//    agreement holds under f < n/2 crashes and arbitrary suspicion noise.
//  * CtConsensus — the textbook Chandra–Toueg <>S protocol (estimate /
//    propose / ack-nack / decide), four delays, kept as an independent
//    implementation to cross-validate protocol behaviour in tests.
//
// Both run over whatever member set they are given. The atomic multicast /
// broadcast algorithms instantiate them per group (intra-group traffic only,
// hence latency-degree contribution 0); the Rodrigues-et-al. baseline
// instantiates them across groups, where the 2 inter-group delays and the
// O((kd)^2) messages show up exactly as in Figure 1a.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/consensus_value.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "fd/failure_detector.hpp"
#include "exec/context.hpp"

namespace wanmc::consensus {

using Instance = uint64_t;

struct ConsensusPayload final : Payload {
  enum class Type : uint8_t { kEstimate, kPropose, kAck, kNack, kDecide };

  uint64_t scope = 0;  // which service on the node this packet belongs to
  Instance instance = 0;
  uint32_t round = 0;
  Type type = Type::kEstimate;
  ConsensusValue value;
  uint32_t estRound = 0;  // round in which `value` was last locked

  [[nodiscard]] Layer layer() const override { return Layer::kConsensus; }
  [[nodiscard]] std::string debugString() const override;
};

class ConsensusService {
 public:
  using DecideCb = std::function<void(Instance, const ConsensusValue&)>;

  // `roundTimeout` > 0 arms a per-round progress timer (see the class
  // comments below): required for liveness under crash-RECOVERY, where a
  // round's coordinator can be alive (so never suspected) yet amnesiac
  // about the instance and silent forever. 0 (the default) relies purely
  // on failure-detector suspicion, the pre-v2 behavior.
  ConsensusService(exec::Context& rt, ProcessId self,
                   std::vector<ProcessId> members, fd::FailureDetector* fd,
                   uint64_t scope, SimTime roundTimeout = 0)
      : rt_(rt),
        self_(self),
        members_(std::move(members)),
        fd_(fd),
        scope_(scope),
        roundTimeout_(roundTimeout) {}
  virtual ~ConsensusService() = default;

  ConsensusService(const ConsensusService&) = delete;
  ConsensusService& operator=(const ConsensusService&) = delete;

  virtual void propose(Instance k, ConsensusValue v) = 0;
  virtual void onMessage(ProcessId from, const ConsensusPayload& p) = 0;

  void onDecide(DecideCb cb) { decideCbs_.push_back(std::move(cb)); }
  [[nodiscard]] uint64_t scope() const { return scope_; }
  [[nodiscard]] const std::vector<ProcessId>& members() const {
    return members_;
  }
  [[nodiscard]] bool decided(Instance k) const {
    return decided_.count(k) > 0;
  }
  [[nodiscard]] const ConsensusValue& decision(Instance k) const {
    return decided_.at(k);
  }

  // Bootstrap plane (src/bootstrap/): the decided-instance table is part of
  // a donor's snapshot, and a rejoining incarnation installs it SILENTLY —
  // no decide callbacks fire, because the donated protocol state already
  // reflects every decision's effect. The install also arms
  // maybeRetransmitDecision: the rejoiner can answer stragglers stuck in
  // instances it never personally ran.
  [[nodiscard]] const std::map<Instance, ConsensusValue>& decisions() const {
    return decided_;
  }
  void installDecisions(const std::map<Instance, ConsensusValue>& ds) {
    for (const auto& [k, v] : ds) decided_.emplace(k, v);
  }

 protected:
  [[nodiscard]] size_t majority() const { return members_.size() / 2 + 1; }
  [[nodiscard]] ProcessId coordinator(Instance k, uint32_t round) const {
    return members_[(k + round - 1) % members_.size()];
  }
  void broadcast(const std::shared_ptr<const ConsensusPayload>& p) {
    rt_.multicast(self_, members_, p);  // one send event (paper §2.3)
  }
  void decideLocal(Instance k, const ConsensusValue& v) {
    if (decided_.count(k)) return;
    decided_[k] = v;
    for (const auto& cb : decideCbs_) cb(k, v);
  }

  // Decision retransmission (armed with the round timeout): an estimate
  // for an instance we already decided means the sender is stuck in a
  // round the rest of us finished long ago — an amnesiac rejoin catching
  // up. Reply with the decision. Gated on roundTimeout_ so runs without
  // recovery keep their exact pre-v2 message traffic.
  bool maybeRetransmitDecision(ProcessId from, Instance k);

  exec::Context& rt_;
  ProcessId self_;
  std::vector<ProcessId> members_;
  fd::FailureDetector* fd_;
  uint64_t scope_;
  SimTime roundTimeout_ = 0;
  std::map<Instance, ConsensusValue> decided_;

 private:
  std::vector<DecideCb> decideCbs_;
};

// ---------------------------------------------------------------------------
// Early-deciding rotating-coordinator consensus (default).
// ---------------------------------------------------------------------------
class EarlyConsensus final : public ConsensusService {
 public:
  EarlyConsensus(exec::Context& rt, ProcessId self,
                 std::vector<ProcessId> members, fd::FailureDetector* fd,
                 uint64_t scope, SimTime roundTimeout = 0);

  void propose(Instance k, ConsensusValue v) override;
  void onMessage(ProcessId from, const ConsensusPayload& p) override;

 private:
  struct Estimate {
    ConsensusValue value;
    uint32_t estRound = 0;
  };
  struct RoundState {
    std::map<ProcessId, Estimate> estimates;  // collected by the coordinator
    std::set<ProcessId> acks;
    ConsensusValue ackedValue;  // the value the round's ACKs carry
    bool proposalSent = false;
    bool ackSent = false;
  };
  struct InstanceState {
    bool joined = false;     // proposed locally or adopted a proposal
    bool decidedFlag = false;
    bool decideRelayed = false;
    ConsensusValue estimate;
    uint32_t estRound = 0;
    uint32_t round = 1;      // current round as a participant
    std::map<uint32_t, RoundState> rounds;
  };

  InstanceState& state(Instance k) { return instances_[k]; }

  void enterRound(Instance k, uint32_t r);
  void coordinatorMaybePropose(Instance k, uint32_t r);
  void maybeDecideOnAcks(Instance k, uint32_t r);
  void onSuspicion(ProcessId p);
  void armRoundTimer(Instance k, uint32_t r);
  void sendToCoord(Instance k, uint32_t r,
                   const std::shared_ptr<const ConsensusPayload>& p) {
    rt_.send(self_, coordinator(k, r), p);
  }

  std::map<Instance, InstanceState> instances_;
};

// ---------------------------------------------------------------------------
// Classic Chandra-Toueg <>S consensus (four phases per round).
// ---------------------------------------------------------------------------
class CtConsensus final : public ConsensusService {
 public:
  CtConsensus(exec::Context& rt, ProcessId self,
              std::vector<ProcessId> members, fd::FailureDetector* fd,
              uint64_t scope, SimTime roundTimeout = 0);

  void propose(Instance k, ConsensusValue v) override;
  void onMessage(ProcessId from, const ConsensusPayload& p) override;

 private:
  struct RoundState {
    std::map<ProcessId, std::pair<ConsensusValue, uint32_t>> estimates;
    std::set<ProcessId> acks;
    std::set<ProcessId> nacks;
    bool proposalSent = false;
    bool concluded = false;  // coordinator finished phase 4 for this round
  };
  struct InstanceState {
    bool joined = false;
    bool decidedFlag = false;
    bool decideRelayed = false;
    ConsensusValue estimate;
    uint32_t estRound = 0;
    uint32_t round = 1;
    bool repliedThisRound = false;  // sent ack or nack for `round`
    std::map<uint32_t, RoundState> rounds;
  };

  InstanceState& state(Instance k) { return instances_[k]; }

  void startRound(Instance k);
  void coordinatorMaybePropose(Instance k, uint32_t r);
  void coordinatorMaybeConclude(Instance k, uint32_t r);
  void onSuspicion(ProcessId p);
  void armRoundTimer(Instance k, uint32_t r);
  [[nodiscard]] const ConsensusValue& proposalOf(Instance k, uint32_t r) {
    return proposals_[{k, r}];
  }

  std::map<Instance, InstanceState> instances_;
  // Proposal broadcast in (instance, round), remembered by every process so
  // the coordinator can decide it in phase 4.
  std::map<std::pair<Instance, uint32_t>, ConsensusValue> proposals_;
};

enum class ConsensusKind { kEarly, kCt };

std::unique_ptr<ConsensusService> makeConsensus(
    ConsensusKind kind, exec::Context& rt, ProcessId self,
    std::vector<ProcessId> members, fd::FailureDetector* fd, uint64_t scope,
    SimTime roundTimeout = 0);

}  // namespace wanmc::consensus
