#include "consensus/consensus.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::consensus {

std::string ConsensusPayload::debugString() const {
  const char* t = "?";
  switch (type) {
    case Type::kEstimate: t = "EST"; break;
    case Type::kPropose: t = "PROP"; break;
    case Type::kAck: t = "ACK"; break;
    case Type::kNack: t = "NACK"; break;
    case Type::kDecide: t = "DEC"; break;
  }
  return std::string(t) + "(k=" + std::to_string(instance) +
         ",r=" + std::to_string(round) + "," + valueDebugString(value) + ")";
}

namespace {

std::shared_ptr<const ConsensusPayload> makePayload(
    uint64_t scope, Instance k, uint32_t round, ConsensusPayload::Type type,
    ConsensusValue value = std::monostate{}, uint32_t estRound = 0) {
  auto p = std::make_shared<ConsensusPayload>();
  p->scope = scope;
  p->instance = k;
  p->round = round;
  p->type = type;
  p->value = std::move(value);
  p->estRound = estRound;
  return p;
}

}  // namespace

bool ConsensusService::maybeRetransmitDecision(ProcessId from, Instance k) {
  if (roundTimeout_ == 0) return false;
  auto it = decided_.find(k);
  if (it == decided_.end()) return false;
  rt_.send(self_, from,
           makePayload(scope_, k, 0, ConsensusPayload::Type::kDecide,
                       it->second));
  return true;
}

// ===========================================================================
// EarlyConsensus
// ===========================================================================

EarlyConsensus::EarlyConsensus(exec::Context& rt, ProcessId self,
                               std::vector<ProcessId> members,
                               fd::FailureDetector* fd, uint64_t scope,
                               SimTime roundTimeout)
    : ConsensusService(rt, self, std::move(members), fd, scope,
                       roundTimeout) {
  if (fd_ != nullptr)
    fd_->onSuspicion([this](ProcessId p) { onSuspicion(p); });
}

void EarlyConsensus::propose(Instance k, ConsensusValue v) {
  auto& st = state(k);
  if (st.joined || st.decidedFlag) return;  // one proposal per instance
  st.joined = true;
  st.estimate = std::move(v);
  st.estRound = 0;
  enterRound(k, st.round);
}

void EarlyConsensus::enterRound(Instance k, uint32_t r) {
  auto& st = state(k);
  if (st.decidedFlag || !st.joined) return;
  // Bound the fast-forward: after a full rotation we are our own coordinator
  // and never suspect ourselves, so this loop always terminates.
  for (uint32_t round = r;; ++round) {
    st.round = round;
    const ProcessId c = coordinator(k, round);
    if (fd_ != nullptr && c != self_ && fd_->suspects(c)) continue;
    if (round == 1) {
      // Early decision: the first-round coordinator broadcasts its own
      // proposal without collecting estimates. No lock can exist yet, so
      // this is safe, and it is what buys the two-delay fast path.
      if (c == self_ && !st.rounds[1].proposalSent) {
        st.rounds[1].proposalSent = true;
        broadcast(makePayload(scope_, k, 1, ConsensusPayload::Type::kPropose,
                              st.estimate, st.estRound));
      }
    } else {
      sendToCoord(k, round,
                  makePayload(scope_, k, round,
                              ConsensusPayload::Type::kEstimate, st.estimate,
                              st.estRound));
      coordinatorMaybePropose(k, round);  // self-coordinated rounds
    }
    break;
  }
  armRoundTimer(k, st.round);
}

void EarlyConsensus::armRoundTimer(Instance k, uint32_t r) {
  // Progress under crash-recovery: a round's coordinator can be alive —
  // so the detector never suspects it — yet an amnesiac rejoin that knows
  // nothing of this instance and proposes nothing, ever. Round changes
  // are always safe in an indulgent protocol (the locking rule protects
  // agreement), so after `roundTimeout_` of no decision we move on as if
  // the coordinator had been suspected. Unarmed (0) outside recovery
  // runs: every pre-v2 schedule is preserved exactly.
  if (roundTimeout_ == 0) return;
  rt_.timer(self_, roundTimeout_, [this, k, r]() {
    auto& st = state(k);
    if (st.decidedFlag || !st.joined || st.round != r) return;  // stale
    enterRound(k, r + 1);
  });
}

void EarlyConsensus::coordinatorMaybePropose(Instance k, uint32_t r) {
  if (r <= 1) return;  // round 1 never collects estimates
  auto& st = state(k);
  if (st.decidedFlag) return;
  if (coordinator(k, r) != self_) return;
  auto& rs = st.rounds[r];
  if (rs.proposalSent || rs.estimates.size() < majority()) return;
  // Pick the most recently locked estimate (indulgent locking rule).
  const Estimate* best = nullptr;
  ProcessId bestPid = kNoProcess;
  for (const auto& [pid, est] : rs.estimates) {
    if (best == nullptr || est.estRound > best->estRound ||
        (est.estRound == best->estRound && pid < bestPid)) {
      best = &est;
      bestPid = pid;
    }
  }
  assert(best != nullptr);
  rs.proposalSent = true;
  broadcast(makePayload(scope_, k, r, ConsensusPayload::Type::kPropose,
                        best->value, r));
}

void EarlyConsensus::maybeDecideOnAcks(Instance k, uint32_t r) {
  auto& st = state(k);
  if (st.decidedFlag) return;
  auto& rs = st.rounds[r];
  if (rs.acks.size() < majority()) return;
  st.decidedFlag = true;
  // Decide BEFORE relaying: the decide event must not inherit the Lamport
  // tick of the (possibly inter-group) relay broadcast.
  const ConsensusValue v = rs.ackedValue;
  decideLocal(k, v);
  if (!st.decideRelayed) {
    st.decideRelayed = true;
    broadcast(
        makePayload(scope_, k, r, ConsensusPayload::Type::kDecide, v));
  }
}

void EarlyConsensus::onMessage(ProcessId from, const ConsensusPayload& p) {
  auto& st = state(p.instance);
  switch (p.type) {
    case ConsensusPayload::Type::kEstimate: {
      // A straggler still campaigning in an instance we decided is an
      // amnesiac rejoin catching up: hand it the decision (recovery runs
      // only — see maybeRetransmitDecision).
      if (maybeRetransmitDecision(from, p.instance)) break;
      auto& rs = st.rounds[p.round];
      rs.estimates[from] = Estimate{p.value, p.estRound};
      // Amnesiac join (recovery runs): an estimate for an instance we
      // hold no state for means our dead incarnation took part and the
      // quorum may INCLUDE us (it does when every member is needed).
      // Adopt the estimate — value and lock tag travel together, so the
      // locking rule stays intact — and enter the round so the
      // coordinator can count us toward its majority.
      if (roundTimeout_ != 0 && !st.joined && !st.decidedFlag) {
        st.joined = true;
        st.estimate = p.value;
        st.estRound = p.estRound;
        enterRound(p.instance, std::max(st.round, p.round));
      }
      coordinatorMaybePropose(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kPropose: {
      if (st.decidedFlag || p.round < st.round) {
        // Timeout-driven round advances (recovery runs) can leave cohorts
        // permanently one round apart: the ahead side silently rejects
        // every lower-round proposal and no round ever collects a
        // majority. Tell the stale proposer which round we are in; it
        // catches up (kNack handler) and the rounds re-synchronize.
        if (roundTimeout_ != 0 && !st.decidedFlag && p.round < st.round)
          rt_.send(self_, from,
                   makePayload(scope_, p.instance, st.round,
                               ConsensusPayload::Type::kNack));
        return;
      }
      st.round = p.round;
      st.joined = true;  // adopting a proposal joins the instance
      st.estimate = p.value;
      st.estRound = p.round;
      auto& rs = st.rounds[p.round];
      if (!rs.ackSent) {
        rs.ackSent = true;
        // Lock-broadcast: every process tells every process it locked v, so
        // that all members can decide two delays after the proposal.
        broadcast(makePayload(scope_, p.instance, p.round,
                              ConsensusPayload::Type::kAck, p.value));
      }
      // The adoption path bypasses enterRound: keep the progress timer
      // armed for the round we locked in (stale firings no-op).
      armRoundTimer(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kAck: {
      auto& rs = st.rounds[p.round];
      rs.acks.insert(from);
      rs.ackedValue = p.value;
      maybeDecideOnAcks(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kNack:
      // Round catch-up (recovery runs): a peer rejected our proposal
      // because it is already in a higher round — join that round instead
      // of discovering it one timeout at a time. Round jumps are always
      // safe; only the locking rule guards agreement.
      if (roundTimeout_ != 0 && st.joined && !st.decidedFlag &&
          p.round > st.round)
        enterRound(p.instance, p.round);
      break;
    case ConsensusPayload::Type::kDecide: {
      if (!st.decidedFlag) {
        st.decidedFlag = true;
        decideLocal(p.instance, p.value);
        if (!st.decideRelayed) {
          st.decideRelayed = true;
          broadcast(makePayload(scope_, p.instance, p.round,
                                ConsensusPayload::Type::kDecide, p.value));
        }
      }
      break;
    }
  }
}

void EarlyConsensus::onSuspicion(ProcessId p) {
  // Any undecided instance whose current coordinator just got suspected
  // moves on to the next round (whether or not we already acked: if the
  // coordinator crashed mid-broadcast only a minority may have acked, and
  // everyone must regroup under the next coordinator).
  for (auto& [k, st] : instances_) {
    if (st.decidedFlag || !st.joined) continue;
    if (coordinator(k, st.round) == p) enterRound(k, st.round + 1);
  }
}

// ===========================================================================
// CtConsensus
// ===========================================================================

CtConsensus::CtConsensus(exec::Context& rt, ProcessId self,
                         std::vector<ProcessId> members,
                         fd::FailureDetector* fd, uint64_t scope,
                         SimTime roundTimeout)
    : ConsensusService(rt, self, std::move(members), fd, scope,
                       roundTimeout) {
  if (fd_ != nullptr)
    fd_->onSuspicion([this](ProcessId p) { onSuspicion(p); });
}

void CtConsensus::propose(Instance k, ConsensusValue v) {
  auto& st = state(k);
  if (st.joined || st.decidedFlag) return;
  st.joined = true;
  st.estimate = std::move(v);
  st.estRound = 0;
  startRound(k);
}

void CtConsensus::startRound(Instance k) {
  auto& st = state(k);
  if (st.decidedFlag || !st.joined) return;
  for (;; ++st.round) {
    const uint32_t r = st.round;
    const ProcessId c = coordinator(k, r);
    st.repliedThisRound = false;
    // Phase 1: send the current estimate to the round's coordinator.
    rt_.send(self_, c,
             makePayload(scope_, k, r, ConsensusPayload::Type::kEstimate,
                         st.estimate, st.estRound));
    coordinatorMaybePropose(k, r);
    // Phase 3 shortcut: if the coordinator is already suspected, nack and
    // move on. Terminates because we never suspect ourselves.
    if (fd_ != nullptr && c != self_ && fd_->suspects(c)) {
      st.repliedThisRound = true;
      rt_.send(self_, c,
               makePayload(scope_, k, r, ConsensusPayload::Type::kNack));
      continue;
    }
    break;
  }
  armRoundTimer(k, st.round);
}

void CtConsensus::armRoundTimer(Instance k, uint32_t r) {
  // Same crash-recovery progress rule as EarlyConsensus::armRoundTimer:
  // nack an alive-but-amnesiac coordinator after `roundTimeout_` and move
  // on, exactly as a suspicion would. Unarmed outside recovery runs.
  if (roundTimeout_ == 0) return;
  rt_.timer(self_, roundTimeout_, [this, k, r]() {
    auto& st = state(k);
    if (st.decidedFlag || !st.joined || st.round != r) return;  // stale
    if (st.repliedThisRound) return;  // phase 3 done: pipeline advances
    st.repliedThisRound = true;
    rt_.send(self_, coordinator(k, r),
             makePayload(scope_, k, r, ConsensusPayload::Type::kNack));
    ++st.round;
    startRound(k);
  });
}

void CtConsensus::coordinatorMaybePropose(Instance k, uint32_t r) {
  auto& st = state(k);
  if (st.decidedFlag || coordinator(k, r) != self_) return;
  auto& rs = st.rounds[r];
  if (rs.proposalSent || rs.estimates.size() < majority()) return;
  const std::pair<ConsensusValue, uint32_t>* best = nullptr;
  ProcessId bestPid = kNoProcess;
  for (const auto& [pid, est] : rs.estimates) {
    if (best == nullptr || est.second > best->second ||
        (est.second == best->second && pid < bestPid)) {
      best = &est;
      bestPid = pid;
    }
  }
  rs.proposalSent = true;
  proposals_[{k, r}] = best->first;
  broadcast(makePayload(scope_, k, r, ConsensusPayload::Type::kPropose,
                        best->first, r));
}

void CtConsensus::coordinatorMaybeConclude(Instance k, uint32_t r) {
  auto& st = state(k);
  auto& rs = st.rounds[r];
  if (rs.concluded || rs.acks.size() + rs.nacks.size() < majority()) return;
  rs.concluded = true;
  if (rs.nacks.empty() && !st.decidedFlag) {
    // All acks: the proposal of round r is locked by a majority — decide.
    // rs proposal value == current estimate of any acker; the coordinator
    // proposed it, so it still has it as its own estimate if it acked, but
    // to be precise we keep the proposed value implicitly via our own
    // estimate only if we adopted it; store-and-reuse is simpler:
    st.decidedFlag = true;
    decideLocal(k, proposalOf(k, r));
    if (!st.decideRelayed) {
      st.decideRelayed = true;
      broadcast(makePayload(scope_, k, r, ConsensusPayload::Type::kDecide,
                            proposalOf(k, r)));
    }
  }
}

void CtConsensus::onMessage(ProcessId from, const ConsensusPayload& p) {
  auto& st = state(p.instance);
  switch (p.type) {
    case ConsensusPayload::Type::kEstimate: {
      if (maybeRetransmitDecision(from, p.instance)) break;
      auto& rs = st.rounds[p.round];
      rs.estimates[from] = {p.value, p.estRound};
      // Amnesiac join, as in EarlyConsensus (recovery runs only).
      if (roundTimeout_ != 0 && !st.joined && !st.decidedFlag) {
        st.joined = true;
        st.estimate = p.value;
        st.estRound = p.estRound;
        st.round = std::max(st.round, p.round);
        startRound(p.instance);
      }
      coordinatorMaybePropose(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kPropose: {
      proposals_[{p.instance, p.round}] = p.value;
      if (st.decidedFlag) return;
      if (p.round < st.round) {
        // Same stale-proposer catch-up as EarlyConsensus (recovery runs).
        if (roundTimeout_ != 0)
          rt_.send(self_, from,
                   makePayload(scope_, p.instance, st.round,
                               ConsensusPayload::Type::kNack));
        return;
      }
      st.round = p.round;
      st.joined = true;
      st.estimate = p.value;
      st.estRound = p.round;
      if (!st.repliedThisRound) {
        st.repliedThisRound = true;
        rt_.send(self_, from,
                 makePayload(scope_, p.instance, p.round,
                             ConsensusPayload::Type::kAck));
      }
      // Phase-3 done: pipeline into the next round (classic CT structure).
      ++st.round;
      startRound(p.instance);
      break;
    }
    case ConsensusPayload::Type::kAck: {
      st.rounds[p.round].acks.insert(from);
      coordinatorMaybeConclude(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kNack: {
      // Round catch-up (recovery runs): a nack from a higher round means
      // we are the stale one — jump there instead of pipelining through
      // every round in between.
      if (roundTimeout_ != 0 && st.joined && !st.decidedFlag &&
          p.round > st.round) {
        st.round = p.round;
        startRound(p.instance);
        break;
      }
      st.rounds[p.round].nacks.insert(from);
      coordinatorMaybeConclude(p.instance, p.round);
      break;
    }
    case ConsensusPayload::Type::kDecide: {
      if (!st.decidedFlag) {
        st.decidedFlag = true;
        decideLocal(p.instance, p.value);
        if (!st.decideRelayed) {
          st.decideRelayed = true;
          broadcast(makePayload(scope_, p.instance, p.round,
                                ConsensusPayload::Type::kDecide, p.value));
        }
      }
      break;
    }
  }
}

void CtConsensus::onSuspicion(ProcessId p) {
  for (auto& [k, st] : instances_) {
    if (st.decidedFlag || !st.joined) continue;
    if (coordinator(k, st.round) == p && !st.repliedThisRound) {
      st.repliedThisRound = true;
      rt_.send(self_, p,
               makePayload(scope_, k, st.round,
                           ConsensusPayload::Type::kNack));
      ++st.round;
      startRound(k);
    }
  }
}

// ===========================================================================

std::unique_ptr<ConsensusService> makeConsensus(
    ConsensusKind kind, exec::Context& rt, ProcessId self,
    std::vector<ProcessId> members, fd::FailureDetector* fd, uint64_t scope,
    SimTime roundTimeout) {
  switch (kind) {
    case ConsensusKind::kEarly:
      return std::make_unique<EarlyConsensus>(rt, self, std::move(members),
                                              fd, scope, roundTimeout);
    case ConsensusKind::kCt:
      return std::make_unique<CtConsensus>(rt, self, std::move(members), fd,
                                           scope, roundTimeout);
  }
  return nullptr;
}

}  // namespace wanmc::consensus
