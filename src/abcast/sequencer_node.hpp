// Baselines: sequencer-based total order for WANs.
//
//  * Sousa, Pereira, Moura & Oliveira, "Optimistic total order in wide area
//    networks" (SRDS 2002) — the paper's reference [12]. Non-uniform: the
//    sender broadcasts m to everyone (optimistic delivery on receipt, one
//    inter-group delay); a sequencer broadcasts sequence numbers; the FINAL
//    delivery — the one Figure 1b accounts — happens on receipt of the
//    sequence number: latency degree 2, O(n) messages per message.
//
//  * Vicente & Rodrigues, "An indulgent uniform total order algorithm with
//    optimistic delivery" (SRDS 2002) — reference [13]. Uniform: in
//    parallel with the sequencer's number, every process echoes m to every
//    process; the final delivery additionally waits until a majority of
//    processes is known to hold m, which makes the order stable across
//    crashes. The echo runs in parallel with the sequencing hop, so the
//    latency degree stays 2, but the echo costs O(n^2) messages.
//
// Both are implemented by one node parameterized on Mode; the sequencer
// fails over to the lowest unsuspected process id.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "core/stack_node.hpp"

namespace wanmc::abcast {

struct SeqPayload final : Payload {
  enum class Kind : uint8_t { kData, kSeq, kEcho };
  Kind kind = Kind::kData;
  AppMsgPtr msg;    // kData / kEcho
  MsgId msgId = 0;  // kSeq / kEcho
  uint64_t sn = 0;  // kSeq

  SeqPayload(Kind k, AppMsgPtr m, MsgId id, uint64_t s)
      : kind(k), msg(std::move(m)), msgId(id), sn(s) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return std::string(kind == Kind::kData   ? "seq-data(m"
                       : kind == Kind::kSeq ? "seq-sn(m"
                                            : "seq-echo(m") +
           std::to_string(msgId) + ")";
  }
};

enum class SequencerMode {
  kOptimisticNonUniform,  // Sousa et al. [12]
  kUniformEcho,           // Vicente & Rodrigues [13]
};

class SequencerNode final : public core::XcastNode {
 public:
  SequencerNode(exec::Context& rt, ProcessId pid,
                const core::StackConfig& cfg, SequencerMode mode);

  void xcast(const AppMsgPtr& m) override;

  // Optimistic deliveries (on data receipt) for the optimism benches: the
  // tentative order that [12]/[13] expose to the application early.
  [[nodiscard]] const std::vector<MsgId>& optimisticOrder() const {
    return optimistic_;
  }

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Bootstrap snapshot surface. Carries the sequencer handoff: nextSn is
  // re-based past every assignment the donor has seen, so a recovered
  // process that becomes (or returns as) sequencer never reuses a number.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct BootState final : bootstrap::ProtocolState {
    std::map<MsgId, AppMsgPtr> data;
    std::map<MsgId, std::set<ProcessId>> echoes;
    std::map<uint64_t, MsgId> assigned;
    std::map<MsgId, uint64_t> snOf;
    std::set<MsgId> unsequenced;
    uint64_t nextSn = 0;
    uint64_t nextDeliver = 0;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  [[nodiscard]] ProcessId currentSequencer() const;
  [[nodiscard]] std::vector<ProcessId> everyoneElse() const {
    std::vector<ProcessId> out;
    for (ProcessId q : topology().allProcesses())
      if (q != pid()) out.push_back(q);
    return out;
  }
  void noteData(const AppMsgPtr& m, ProcessId holder);
  void maybeSequence();
  void tryFinalDeliver();

  SequencerMode mode_;
  std::map<MsgId, AppMsgPtr> data_;
  std::map<MsgId, std::set<ProcessId>> echoes_;
  std::map<uint64_t, MsgId> assigned_;   // sn -> msg
  std::map<MsgId, uint64_t> snOf_;
  std::set<MsgId> unsequenced_;          // data seen, no sn yet (in arrival order via set? we keep ids)
  uint64_t nextSn_ = 0;                  // sequencer-local
  uint64_t nextDeliver_ = 0;
  std::vector<MsgId> optimistic_;
};

}  // namespace wanmc::abcast
