// Algorithm A2 — atomic broadcast with latency degree 1 (paper §5).
//
// Processes execute a sequence of rounds. In round K:
//   1. inside each group, consensus defines the group's *bundle*: the set of
//      messages R-Delivered but not yet A-Delivered (possibly empty);
//   2. every process sends its group's bundle to all processes of the other
//      groups and waits for one bundle per remote group;
//   3. the union of all bundles is A-Delivered in a deterministic order.
//
// The protocol is *proactive*: rounds run even when nothing was broadcast —
// that is what buys latency degree 1 (Theorem 5.1), which no quiescent or
// genuine-multicast algorithm can achieve (Prop. 3.1-3.3). It is still
// *quiescent* (Prop. A.9): a round that delivers nothing does not raise
// Barrier, and a process only starts round K if it has undelivered messages
// or K <= Barrier. Prediction mistakes are tolerated: a bundle received for
// round x raises Barrier to x, which restarts rounds on groups that had
// stopped — those runs pay latency degree 2 (Theorem 5.2), matching the
// quiescence lower bound.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/consensus_value.hpp"
#include "core/stack_node.hpp"

namespace wanmc::abcast {

// (K, msgSet) of line 15: a group's bundle for round K.
struct BundlePayload final : Payload {
  uint64_t round = 0;
  MsgBundle msgs;
  GroupId fromGroup = kNoGroup;

  BundlePayload(uint64_t r, MsgBundle b, GroupId g)
      : round(r), msgs(std::move(b)), fromGroup(g) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return "bundle(r=" + std::to_string(round) +
           ",n=" + std::to_string(msgs.size()) + ")";
  }
};

// Quiescence prediction strategy (§5.3): when does a process decide that no
// further messages will be broadcast and stop executing rounds?
//
// The paper's algorithm stops after the first round that delivers nothing
// (kRoundEmpty) and §5.3 closes with: "In case the broadcast frequency is
// too low or not constant, to prevent processes from stopping prematurely,
// more elaborate prediction strategies based on application behavior could
// be used." The two extra predictors implement that suggestion:
//   kLinger        — tolerate `lingerRounds` consecutive empty rounds before
//                    stopping (a fixed hysteresis);
//   kRateAdaptive  — estimate the message inter-arrival time (EWMA over
//                    R-Deliver and bundle arrivals) and keep rounds running
//                    while another message is plausibly imminent.
// All predictors only affect WHEN rounds stop, never safety: a wrong
// prediction costs either latency (stopped too early: Theorem 5.2's extra
// WAN delay on restart) or bandwidth (stopped too late: empty rounds).
struct A2Options {
  enum class Predictor { kRoundEmpty, kLinger, kRateAdaptive };
  Predictor predictor = Predictor::kRoundEmpty;
  int lingerRounds = 2;          // kLinger: empty rounds tolerated
  double rateMultiplier = 4.0;   // kRateAdaptive: linger while
                                 // now - lastArrival < mult * ewma
};

class A2Node : public core::XcastNode {
 public:
  A2Node(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg,
         A2Options opts = {});

  // A-BCast m (Task 1, lines 4-5): R-MCast m to the sender's own group.
  void xcast(const AppMsgPtr& m) override;

  // Introspection for tests / benches.
  [[nodiscard]] uint64_t round() const { return K_; }
  [[nodiscard]] uint64_t barrier() const { return barrier_; }
  [[nodiscard]] uint64_t roundsExecuted() const { return roundsExecuted_; }
  [[nodiscard]] uint64_t usefulRounds() const { return usefulRounds_; }
  [[nodiscard]] bool quiescentNow() const {
    // True when this process would not start another round on its own.
    return rdelivered_.empty() && K_ > barrier_ && propK_ <= K_;
  }

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Hook for the non-genuine broadcast-based multicast of the paper's
  // introduction: the ordering machinery runs at every process, but only
  // addressees A-Deliver. Default: deliver everywhere (true broadcast).
  [[nodiscard]] virtual bool shouldDeliver(const AppMessage&) const {
    return true;
  }

  // Bootstrap snapshot surface: round/barrier clocks, the
  // RDELIVERED-minus-ADELIVERED working set, buffered bundles and
  // decisions. Inherited
  // unchanged by ViaBcastNode (donor and rejoiner run the same stack).
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct BootState final : bootstrap::ProtocolState {
    uint64_t K = 1;
    uint64_t propK = 1;
    uint64_t barrier = 0;
    std::set<MsgId> rdelivered;
    std::map<MsgId, AppMsgPtr> rdeliveredMsgs;
    std::set<MsgId> adelivered;
    std::map<uint64_t, std::map<GroupId, MsgBundle>> msgs;
    std::map<consensus::Instance, MsgBundle> decisionBuffer;
    bool awaitingBundles = false;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  // Task 4 guard (line 11).
  void tryPropose();
  // Predictor hook: called at the end of an EMPTY round; returns true if
  // the process should nevertheless keep executing rounds.
  [[nodiscard]] bool predictMoreTraffic();
  void noteArrival();
  void onDecided(consensus::Instance k, const ConsensusValue& v);
  void drainDecisions();
  // Lines 15-23, entered when the decision for round K_ is available.
  void handleDecided(uint64_t k, const MsgBundle& bundle);
  // Line 16: complete round K_ once one bundle per group is present.
  void tryCompleteRound();

  consensus::ConsensusService* groupConsensus_ = nullptr;

  uint64_t K_ = 1;
  uint64_t propK_ = 1;
  uint64_t barrier_ = 0;
  std::set<MsgId> rdelivered_;     // RDELIVERED \ ADELIVERED
  std::map<MsgId, AppMsgPtr> rdeliveredMsgs_;
  std::set<MsgId> adelivered_;
  // Msgs: round -> group -> bundle.
  std::map<uint64_t, std::map<GroupId, MsgBundle>> msgs_;
  std::map<consensus::Instance, MsgBundle> decisionBuffer_;
  bool awaitingBundles_ = false;  // decided round K_, waiting for line 16

  uint64_t roundsExecuted_ = 0;
  uint64_t usefulRounds_ = 0;

  A2Options opts_;
  uint64_t consecutiveEmpty_ = 0;
  SimTime lastArrival_ = -1;
  double ewmaIntervalUs_ = 0;  // 0 = no estimate yet
};

}  // namespace wanmc::abcast
