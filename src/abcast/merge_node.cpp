#include "abcast/merge_node.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <set>

namespace wanmc::abcast {

MergeNode::MergeNode(exec::Context& rt, ProcessId pid,
                     const core::StackConfig& cfg, MergeOptions opts)
    : core::XcastNode(rt, pid, cfg),
      opts_(opts),
      streams_(static_cast<size_t>(rt.topology().numProcesses())) {
  for (ProcessId q : rt.topology().allProcesses())
    if (q != pid) others_.push_back(q);
}

void MergeNode::startProtocol() {
  tick();
}

// Merge events are published every heartbeat period by every process — the
// dominant allocation of long runs. They are drawn from the runtime's
// payload arena: allocate_shared fuses object + control block into one
// pooled block that is recycled as soon as every subscriber consumed it.
std::shared_ptr<const MergePayload> MergeNode::makeEvent(bool heartbeat,
                                                         AppMsgPtr msg,
                                                         uint64_t ts) {
  return std::allocate_shared<const MergePayload>(
      PoolAllocator<const MergePayload>(&runtime().payloadArena()),
      heartbeat, std::move(msg), ts, pubSeq_++);
}

void MergeNode::tick() {
  // Publish a heartbeat carrying the current tick: it advances our stream
  // frontier at every subscriber even when we have nothing to say, which
  // is what lets every subscriber run the same deterministic merge.
  // Heartbeats are for IDLE publishers ([1]): a publisher that sent a data
  // event within the last period stays silent — the data already advanced
  // its frontier, and a redundant heartbeat would tick the Lamport clock
  // past the publisher's own delivery of that data. A JOINING publisher
  // stays silent too: until the install hands over the dead incarnation's
  // seq counter, anything it published would collide with that stream.
  if (!joining() &&
      (now() == 0 || now() - lastSentAt_ >= opts_.heartbeatPeriod)) {
    publish(/*heartbeat=*/true, nullptr);
  }
  timer(opts_.heartbeatPeriod, [this]() { tick(); });
}

void MergeNode::publish(bool heartbeat, const AppMsgPtr& msg) {
  // Events are stamped with the CURRENT tick: several events of one
  // publisher may share a tick and are ordered by their event counter.
  const uint64_t ts = nowTick();
  lastSentAt_ = now();
  auto ev = makeEvent(heartbeat, msg, ts);
  // [1]'s model has publishers cast to EVERY subscriber (that is what keeps
  // every stream frontier moving); in multicast mode non-addressees receive
  // the event but only use it as a frontier advance — advanceStream filters
  // the merge buffer by addressee.
  sendToMany(others_, ev);
  advanceStream(pid(), ev);
}

void MergeNode::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  if (joining()) {
    deferredCasts_.push_back(m);  // published at install, seq-continued
    return;
  }
  publish(/*heartbeat=*/false, m);
}

void MergeNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  assert(dynamic_cast<const MergePayload*>(p.get()) != nullptr);
  advanceStream(from, p);
}

void MergeNode::applyEvent(ProcessId pub, Stream& s,
                           const MergePayload& ev) {
  s.frontierTs = ev.eventTs;
  if (!ev.isHeartbeat) {
    const bool addressee =
        !opts_.multicastMode || ev.msg->dest.contains(gid());
    if (addressee) mergeBuf_[{ev.eventTs, pub, ev.seq}] = ev.msg;
  }
  ++s.nextSeq;
}

void MergeNode::advanceStream(ProcessId pub, const PayloadPtr& p) {
  const auto& ev = static_cast<const MergePayload&>(*p);
  Stream& s = streams_[static_cast<size_t>(pub)];
  if (ev.seq == s.nextSeq) {
    // In-order arrival (every arrival when the publish period exceeds the
    // link jitter): consume in place, no buffering, no shared_ptr copy.
    applyEvent(pub, s, ev);
    // A filled gap may release buffered successors. Links are not FIFO;
    // the per-publisher event counter restores stream order.
    while (!s.buffered.empty()) {
      auto it = s.buffered.find(s.nextSeq);
      if (it == s.buffered.end()) break;
      applyEvent(pub, s, *it->second);
      s.buffered.erase(it);
    }
  } else if (ev.seq > s.nextSeq) {
    // Out of order: hold until the gap fills.
    s.buffered[ev.seq] = std::static_pointer_cast<const MergePayload>(p);
  }
  tryDeliver();
}

void MergeNode::tryDeliver() {
  if (joining()) return;  // streams buffer; the merge waits for install
  // A buffered event (ts, P, seq) is deliverable once no event that sorts
  // before it can still arrive. Publishers stamp nondecreasing ticks, so a
  // publisher Q can still produce events with timestamp equal to its
  // frontier: an event of Q with the SAME ts would sort before ours iff
  // Q < P, hence the strict frontier requirement for smaller-id publishers
  // and the non-strict one for larger ids.
  while (!mergeBuf_.empty()) {
    auto it = mergeBuf_.begin();
    const auto [ts, pub, seq] = it->first;
    bool deliverable = true;
    const auto n = static_cast<ProcessId>(streams_.size());
    for (ProcessId q = 0; q < n; ++q) {
      if (q == pub) continue;
      const Stream& s = streams_[static_cast<size_t>(q)];
      if (q < pub ? s.frontierTs <= ts : s.frontierTs < ts) {
        deliverable = false;
        break;
      }
    }
    if (!deliverable) break;
    AppMsgPtr m = it->second;
    mergeBuf_.erase(it);
    adeliver(m);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t MergeNode::BootState::approxBytes() const {
  uint64_t b = 0;
  for (const Stream& s : streams) b += 24 + 32 * s.buffered.size();
  for (const auto& [key, m] : mergeBuf) b += 32 + m->body.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState> MergeNode::snapshotProtocolState()
    const {
  auto s = std::make_shared<BootState>();
  s->streams = streams_;
  s->mergeBuf = mergeBuf_;
  return s;
}

void MergeNode::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr || s->streams.size() != streams_.size()) return;
  // Per-publisher stream merge: whichever side is further along wins, the
  // other side's out-of-order holdings graft on beyond the frontier.
  for (size_t q = 0; q < streams_.size(); ++q) {
    Stream& l = streams_[q];
    const Stream& d = s->streams[q];
    if (d.nextSeq > l.nextSeq) {
      auto keep = std::move(l.buffered);
      l = d;
      for (auto& [seq, ev] : keep)
        if (seq >= l.nextSeq) l.buffered.emplace(seq, std::move(ev));
    } else {
      for (const auto& [seq, ev] : d.buffered)
        if (seq >= l.nextSeq) l.buffered.emplace(seq, ev);
    }
    // The graft may have closed a gap.
    while (true) {
      auto it = l.buffered.find(l.nextSeq);
      if (it == l.buffered.end()) break;
      applyEvent(static_cast<ProcessId>(q), l, *it->second);
      l.buffered.erase(it);
    }
  }
  for (const auto& [key, m] : s->mergeBuf) mergeBuf_.emplace(key, m);
  // Events the donor already merged out may still sit in our buffer (they
  // arrived during the joining window); the suffix replay covers them.
  std::set<MsgId> done;
  for (const AppMsgPtr& m : snap.suffix) done.insert(m->id);
  for (auto it = mergeBuf_.begin(); it != mergeBuf_.end();)
    it = done.count(it->second->id) ? mergeBuf_.erase(it) : std::next(it);
  // The publisher handoff: continue the dead incarnation's event counter
  // past everything any subscriber could have seen of it.
  const Stream& self = streams_[static_cast<size_t>(pid())];
  uint64_t seq = std::max(pubSeq_, self.nextSeq);
  if (!self.buffered.empty()) seq = std::max(seq, self.buffered.rbegin()->first + 1);
  pubSeq_ = seq;
}

void MergeNode::resumeAfterInstall() {
  // Flush casts deferred during the joining window; if there were none,
  // publish a heartbeat immediately — subscribers' merges are stalled on
  // this stream's frontier and need not wait out a full period.
  auto deferred = std::move(deferredCasts_);
  deferredCasts_.clear();
  for (const AppMsgPtr& m : deferred) publish(/*heartbeat=*/false, m);
  if (deferred.empty()) publish(/*heartbeat=*/true, nullptr);
  tryDeliver();
}

}  // namespace wanmc::abcast
