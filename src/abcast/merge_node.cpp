#include "abcast/merge_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::abcast {

MergeNode::MergeNode(sim::Runtime& rt, ProcessId pid,
                     const core::StackConfig& cfg, MergeOptions opts)
    : core::XcastNode(rt, pid, cfg), opts_(opts) {
  for (ProcessId q : rt.topology().allProcesses()) streams_[q];  // all pubs
}

void MergeNode::startProtocol() {
  tick();
}

void MergeNode::tick() {
  // Publish a heartbeat carrying the current tick: it advances our stream
  // frontier at every subscriber even when we have nothing to say, which
  // is what lets every subscriber run the same deterministic merge.
  // Heartbeats are for IDLE publishers ([1]): a publisher that sent a data
  // event within the last period stays silent — the data already advanced
  // its frontier, and a redundant heartbeat would tick the Lamport clock
  // past the publisher's own delivery of that data.
  if (now() == 0 || now() - lastSentAt_ >= opts_.heartbeatPeriod) {
    const uint64_t ts = nowTick();
    lastSentAt_ = now();
    auto hb =
        std::make_shared<const MergePayload>(true, nullptr, ts, pubSeq_++);
    std::vector<ProcessId> others;
    for (ProcessId q : topology().allProcesses())
      if (q != pid()) others.push_back(q);
    sendToMany(others, hb);
    advanceStream(pid(), hb);
  }
  timer(opts_.heartbeatPeriod, [this]() { tick(); });
}

void MergeNode::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  // Data events are stamped with the CURRENT tick: several events of one
  // publisher may share a tick and are ordered by their event counter.
  const uint64_t ts = nowTick();
  lastSentAt_ = now();
  auto data = std::make_shared<const MergePayload>(false, m, ts, pubSeq_++);
  // [1]'s model has publishers cast to EVERY subscriber (that is what keeps
  // every stream frontier moving); in multicast mode non-addressees receive
  // the event but only use it as a frontier advance — advanceStream filters
  // the merge buffer by addressee.
  std::vector<ProcessId> others;
  for (ProcessId q : topology().allProcesses())
    if (q != pid()) others.push_back(q);
  sendToMany(others, data);
  advanceStream(pid(), data);
}

void MergeNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  auto mp = std::dynamic_pointer_cast<const MergePayload>(p);
  assert(mp != nullptr);
  advanceStream(from, mp);
}

void MergeNode::advanceStream(ProcessId pub,
                              const std::shared_ptr<const MergePayload>& ev) {
  Stream& s = streams_[pub];
  s.buffered[ev->seq] = ev;
  // Consume the contiguous prefix: links are not FIFO, the per-publisher
  // event counter restores stream order.
  for (auto it = s.buffered.find(s.nextSeq); it != s.buffered.end();
       it = s.buffered.find(s.nextSeq)) {
    const auto& e = it->second;
    s.frontierTs = e->eventTs;
    if (!e->isHeartbeat) {
      const AppMessage& m = *e->msg;
      const bool addressee = !opts_.multicastMode ||
                             m.dest.contains(gid());
      if (addressee)
        mergeBuf_[{e->eventTs, pub, e->seq}] = e->msg;
    }
    ++s.nextSeq;
    s.buffered.erase(it);
  }
  tryDeliver();
}

void MergeNode::tryDeliver() {
  // A buffered event (ts, P, seq) is deliverable once no event that sorts
  // before it can still arrive. Publishers stamp nondecreasing ticks, so a
  // publisher Q can still produce events with timestamp equal to its
  // frontier: an event of Q with the SAME ts would sort before ours iff
  // Q < P, hence the strict frontier requirement for smaller-id publishers
  // and the non-strict one for larger ids.
  while (!mergeBuf_.empty()) {
    auto it = mergeBuf_.begin();
    const auto [ts, pub, seq] = it->first;
    bool deliverable = true;
    for (const auto& [q, s] : streams_) {
      if (q == pub) continue;
      if (q < pub ? s.frontierTs <= ts : s.frontierTs < ts) {
        deliverable = false;
        break;
      }
    }
    if (!deliverable) break;
    AppMsgPtr m = it->second;
    mergeBuf_.erase(it);
    adeliver(m);
  }
}

}  // namespace wanmc::abcast
