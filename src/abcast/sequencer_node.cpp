#include "abcast/sequencer_node.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace wanmc::abcast {

SequencerNode::SequencerNode(exec::Context& rt, ProcessId pid,
                             const core::StackConfig& cfg,
                             SequencerMode mode)
    : core::XcastNode(rt, pid, cfg), mode_(mode) {
  fd().onSuspicion([this](ProcessId) { maybeSequence(); });
}

ProcessId SequencerNode::currentSequencer() const {
  for (ProcessId q : topology().allProcesses())
    if (!fd().suspects(q)) return q;
  return 0;
}

void SequencerNode::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  auto data = std::make_shared<const SeqPayload>(SeqPayload::Kind::kData, m,
                                                 m->id, 0);
  sendToMany(everyoneElse(), data);
  noteData(m, pid());
}

void SequencerNode::noteData(const AppMsgPtr& m, ProcessId holder) {
  if (data_.count(m->id) == 0) {
    data_[m->id] = m;
    optimistic_.push_back(m->id);  // optimistic delivery
    if (snOf_.count(m->id) == 0) unsequenced_.insert(m->id);
    // Sequence BEFORE echoing: the SEQ broadcast doubles as the
    // sequencer's echo, so the sequencing hop and the echo hop run in
    // parallel and the final delivery stays at latency degree 2.
    maybeSequence();
    if (mode_ == SequencerMode::kUniformEcho &&
        currentSequencer() != pid()) {
      auto echo = std::make_shared<const SeqPayload>(SeqPayload::Kind::kEcho,
                                                     m, m->id, 0);
      sendToMany(everyoneElse(), echo);
    }
    echoes_[m->id].insert(pid());
  }
  echoes_[m->id].insert(holder);
  tryFinalDeliver();
}

void SequencerNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  const auto* sp = dynamic_cast<const SeqPayload*>(p.get());
  assert(sp != nullptr);
  switch (sp->kind) {
    case SeqPayload::Kind::kData: {
      // Echo m to everyone: once a majority is known to hold m, the final
      // order is stable across crashes (uniformity).
      noteData(sp->msg, from);  // the sender holds m too
      break;
    }
    case SeqPayload::Kind::kSeq: {
      if (snOf_.count(sp->msgId) == 0) {
        snOf_[sp->msgId] = sp->sn;
        assigned_[sp->sn] = sp->msgId;
        unsequenced_.erase(sp->msgId);
        nextSn_ = std::max(nextSn_, sp->sn + 1);
      }
      // The SEQ broadcast doubles as the sequencer's echo.
      echoes_[sp->msgId].insert(from);
      tryFinalDeliver();
      break;
    }
    case SeqPayload::Kind::kEcho: {
      // First sight via echo behaves like first sight via data: the echo
      // carries the payload (a fast peer's echo can overtake the sender's
      // own data packet).
      noteData(sp->msg, from);
      break;
    }
  }
}

void SequencerNode::maybeSequence() {
  // A joining node never sequences: it may not know every number the dead
  // incarnation's sequencer already handed out.
  if (joining()) return;
  if (currentSequencer() != pid()) return;
  // Assign sequence numbers to every known-but-unsequenced message, in
  // message-id order for determinism within a batch.
  while (!unsequenced_.empty()) {
    const MsgId id = *unsequenced_.begin();
    unsequenced_.erase(unsequenced_.begin());
    if (snOf_.count(id)) continue;
    const uint64_t sn = nextSn_++;
    snOf_[id] = sn;
    assigned_[sn] = id;
    auto seq = std::make_shared<const SeqPayload>(SeqPayload::Kind::kSeq,
                                                  nullptr, id, sn);
    sendToMany(everyoneElse(), seq);
  }
  tryFinalDeliver();
}

void SequencerNode::tryFinalDeliver() {
  if (joining()) return;  // data/sn/echoes buffer; delivery waits
  const size_t majority =
      static_cast<size_t>(topology().numProcesses()) / 2 + 1;
  for (auto it = assigned_.find(nextDeliver_); it != assigned_.end();
       it = assigned_.find(nextDeliver_)) {
    const MsgId id = it->second;
    auto d = data_.find(id);
    if (d == data_.end()) return;  // sn known, payload still in flight
    if (mode_ == SequencerMode::kUniformEcho &&
        echoes_[id].size() < majority)
      return;  // stability: a majority must hold m before final delivery
    ++nextDeliver_;
    adeliver(d->second);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t SequencerNode::BootState::approxBytes() const {
  uint64_t b = 16;
  for (const auto& [id, m] : data) b += 32 + m->body.size();
  for (const auto& [id, es] : echoes) b += 8 + 8 * es.size();
  b += 16 * (assigned.size() + snOf.size()) + 8 * unsequenced.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState>
SequencerNode::snapshotProtocolState() const {
  auto s = std::make_shared<BootState>();
  s->data = data_;
  s->echoes = echoes_;
  s->assigned = assigned_;
  s->snOf = snOf_;
  s->unsequenced = unsequenced_;
  s->nextSn = nextSn_;
  s->nextDeliver = nextDeliver_;
  return s;
}

void SequencerNode::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  for (const auto& [id, m] : s->data) data_.emplace(id, m);
  for (const auto& [id, es] : s->echoes)
    echoes_[id].insert(es.begin(), es.end());
  // Assignments are sequencer-issued and globally consistent: fill-if-
  // absent in either direction.
  for (const auto& [sn, id] : s->assigned) assigned_.emplace(sn, id);
  for (const auto& [id, sn] : s->snOf) snOf_.emplace(id, sn);
  unsequenced_.insert(s->unsequenced.begin(), s->unsequenced.end());
  for (auto it = unsequenced_.begin(); it != unsequenced_.end();)
    it = snOf_.count(*it) ? unsequenced_.erase(it) : std::next(it);
  // The handoff: never reuse a number the donor saw assigned, even numbers
  // the dead incarnation handed out moments before crashing (they reached
  // the donor by serve time).
  nextSn_ = std::max({nextSn_, s->nextSn,
                      assigned_.empty() ? 0 : assigned_.rbegin()->first + 1});
  // The suffix replay covers exactly sn 0 .. nextDeliver-1 of the donor.
  nextDeliver_ = std::max(nextDeliver_, s->nextDeliver);
}

void SequencerNode::resumeAfterInstall() {
  maybeSequence();
  tryFinalDeliver();
}

}  // namespace wanmc::abcast
