#include "abcast/sequencer_node.hpp"

#include <cassert>

namespace wanmc::abcast {

SequencerNode::SequencerNode(sim::Runtime& rt, ProcessId pid,
                             const core::StackConfig& cfg,
                             SequencerMode mode)
    : core::XcastNode(rt, pid, cfg), mode_(mode) {
  fd().onSuspicion([this](ProcessId) { maybeSequence(); });
}

ProcessId SequencerNode::currentSequencer() const {
  for (ProcessId q : topology().allProcesses())
    if (!fd().suspects(q)) return q;
  return 0;
}

void SequencerNode::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  auto data = std::make_shared<const SeqPayload>(SeqPayload::Kind::kData, m,
                                                 m->id, 0);
  sendToMany(everyoneElse(), data);
  noteData(m, pid());
}

void SequencerNode::noteData(const AppMsgPtr& m, ProcessId holder) {
  if (data_.count(m->id) == 0) {
    data_[m->id] = m;
    optimistic_.push_back(m->id);  // optimistic delivery
    if (snOf_.count(m->id) == 0) unsequenced_.insert(m->id);
    // Sequence BEFORE echoing: the SEQ broadcast doubles as the
    // sequencer's echo, so the sequencing hop and the echo hop run in
    // parallel and the final delivery stays at latency degree 2.
    maybeSequence();
    if (mode_ == SequencerMode::kUniformEcho &&
        currentSequencer() != pid()) {
      auto echo = std::make_shared<const SeqPayload>(SeqPayload::Kind::kEcho,
                                                     m, m->id, 0);
      sendToMany(everyoneElse(), echo);
    }
    echoes_[m->id].insert(pid());
  }
  echoes_[m->id].insert(holder);
  tryFinalDeliver();
}

void SequencerNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  const auto* sp = dynamic_cast<const SeqPayload*>(p.get());
  assert(sp != nullptr);
  switch (sp->kind) {
    case SeqPayload::Kind::kData: {
      // Echo m to everyone: once a majority is known to hold m, the final
      // order is stable across crashes (uniformity).
      noteData(sp->msg, from);  // the sender holds m too
      break;
    }
    case SeqPayload::Kind::kSeq: {
      if (snOf_.count(sp->msgId) == 0) {
        snOf_[sp->msgId] = sp->sn;
        assigned_[sp->sn] = sp->msgId;
        unsequenced_.erase(sp->msgId);
        nextSn_ = std::max(nextSn_, sp->sn + 1);
      }
      // The SEQ broadcast doubles as the sequencer's echo.
      echoes_[sp->msgId].insert(from);
      tryFinalDeliver();
      break;
    }
    case SeqPayload::Kind::kEcho: {
      // First sight via echo behaves like first sight via data: the echo
      // carries the payload (a fast peer's echo can overtake the sender's
      // own data packet).
      noteData(sp->msg, from);
      break;
    }
  }
}

void SequencerNode::maybeSequence() {
  if (currentSequencer() != pid()) return;
  // Assign sequence numbers to every known-but-unsequenced message, in
  // message-id order for determinism within a batch.
  while (!unsequenced_.empty()) {
    const MsgId id = *unsequenced_.begin();
    unsequenced_.erase(unsequenced_.begin());
    if (snOf_.count(id)) continue;
    const uint64_t sn = nextSn_++;
    snOf_[id] = sn;
    assigned_[sn] = id;
    auto seq = std::make_shared<const SeqPayload>(SeqPayload::Kind::kSeq,
                                                  nullptr, id, sn);
    sendToMany(everyoneElse(), seq);
  }
  tryFinalDeliver();
}

void SequencerNode::tryFinalDeliver() {
  const size_t majority =
      static_cast<size_t>(topology().numProcesses()) / 2 + 1;
  for (auto it = assigned_.find(nextDeliver_); it != assigned_.end();
       it = assigned_.find(nextDeliver_)) {
    const MsgId id = it->second;
    auto d = data_.find(id);
    if (d == data_.end()) return;  // sn known, payload still in flight
    if (mode_ == SequencerMode::kUniformEcho &&
        echoes_[id].size() < majority)
      return;  // stability: a majority must hold m before final delivery
    ++nextDeliver_;
    adeliver(d->second);
  }
}

}  // namespace wanmc::abcast
