// Baseline: Aguilera & Strom, "Efficient atomic broadcast using
// deterministic merge" (PODC 2000) — the paper's reference [1].
//
// Strong model (the paper's footnotes 5/6): links are reliable, publishers
// do not crash and cast infinitely many messages. Every process is both a
// publisher and a subscriber. A publisher stamps each message from a local
// monotone clock (here: a heartbeat tick) and sends it directly to the
// subscribers; when idle it emits timestamped heartbeats. A subscriber
// buffers per-publisher streams (re-sequenced by a per-publisher event
// counter, so non-FIFO links are fine) and delivers messages in global
// (timestamp, publisher, seq) order once every publisher's stream frontier
// has passed the timestamp — the same deterministic merge at every process,
// hence total order with NO agreement protocol at all.
//
// Latency degree 1 (one inter-group delay, matching Figure 1's row for [1])
// provided the heartbeat period is at least the inter-group delay; the
// wall-clock merge delay grows with the heartbeat period — exactly the
// rate-vs-delay tradeoff [1] studies. The algorithm is never quiescent and,
// used as a multicast (messages sent to addressees only, heartbeats still
// global), it is not genuine — which is why it evades the paper's lower
// bounds (different model, see §6).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/stack_node.hpp"

namespace wanmc::abcast {

struct MergePayload final : Payload {
  bool isHeartbeat = true;
  AppMsgPtr msg;       // null for heartbeats
  uint64_t eventTs = 0;
  uint64_t seq = 0;    // per-publisher event counter (re-sequencing)

  MergePayload(bool hb, AppMsgPtr m, uint64_t ts, uint64_t s)
      : isHeartbeat(hb), msg(std::move(m)), eventTs(ts), seq(s) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return std::string(isHeartbeat ? "merge-hb(" : "merge-data(") +
           std::to_string(eventTs) + ")";
  }
};

struct MergeOptions {
  SimTime heartbeatPeriod = 200 * kMs;  // >= max inter-group delay => deg. 1
  // Broadcast mode sends data to everyone; multicast mode sends data to the
  // addressees only (heartbeats are global either way).
  bool multicastMode = false;
};

class MergeNode final : public core::XcastNode {
 public:
  MergeNode(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg,
            MergeOptions opts = {});

  void xcast(const AppMsgPtr& m) override;
  void startProtocol() override;

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Bootstrap snapshot surface. The critical carry-over is the publisher
  // counter: the rejoiner resumes publishing at the seq its dead
  // incarnation reached (as observed by the donor), so subscribers'
  // re-sequencers accept the new stream as the continuation of the old.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct Stream {
    uint64_t nextSeq = 0;      // next contiguous event expected
    uint64_t frontierTs = 0;   // eventTs of the last contiguous event
    // Out-of-order holding area. The hot path (in-order arrival, which is
    // every arrival when the publish period exceeds the link jitter) never
    // touches it.
    std::map<uint64_t, std::shared_ptr<const MergePayload>> buffered;
  };

  struct BootState final : bootstrap::ProtocolState {
    std::vector<Stream> streams;
    std::map<std::tuple<uint64_t, ProcessId, uint64_t>, AppMsgPtr> mergeBuf;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  void tick();
  // Publish one event (data or heartbeat) from this process's stream.
  void publish(bool heartbeat, const AppMsgPtr& msg);
  // `p` must hold a MergePayload. The in-order fast path reads it by
  // reference without copying the shared_ptr (no refcount traffic); only
  // the out-of-order slow path retains a reference.
  void advanceStream(ProcessId pub, const PayloadPtr& p);
  void applyEvent(ProcessId pub, Stream& s, const MergePayload& ev);
  void tryDeliver();
  [[nodiscard]] std::shared_ptr<const MergePayload> makeEvent(
      bool heartbeat, AppMsgPtr msg, uint64_t ts);
  [[nodiscard]] uint64_t nowTick() const {
    return static_cast<uint64_t>(now() / opts_.heartbeatPeriod) + 1;
  }

  MergeOptions opts_;
  SimTime lastSentAt_ = -1;   // last publish instant (idle-only heartbeats)
  uint64_t pubSeq_ = 0;       // my event counter
  std::vector<ProcessId> others_;  // every process but self, cached
  std::vector<Stream> streams_;    // dense, indexed by publisher pid
  // Merge buffer: (eventTs, publisher, seq) -> message.
  std::map<std::tuple<uint64_t, ProcessId, uint64_t>, AppMsgPtr> mergeBuf_;
  // Casts issued while joining: publishing them with a pre-handoff seq
  // would collide with the dead incarnation's stream at every subscriber,
  // so they wait for the install and publish with continued seqs.
  std::vector<AppMsgPtr> deferredCasts_;
};

}  // namespace wanmc::abcast
