#include "abcast/a2_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::abcast {

A2Node::A2Node(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg,
               A2Options opts)
    : core::XcastNode(rt, pid, cfg), opts_(opts) {
  groupConsensus_ = &addGroupConsensus();
  groupConsensus_->onDecide(
      [this](consensus::Instance k, const ConsensusValue& v) {
        onDecided(k, v);
      });
  rm().onDeliver([this](const AppMsgPtr& m) {
    // Task 2 (lines 6-7).
    if (adelivered_.count(m->id)) return;
    rdelivered_.insert(m->id);
    rdeliveredMsgs_[m->id] = m;
    noteArrival();
    tryPropose();
  });
}

void A2Node::noteArrival() {
  const SimTime now_ = now();
  if (lastArrival_ >= 0) {
    const auto interval = static_cast<double>(now_ - lastArrival_);
    ewmaIntervalUs_ = ewmaIntervalUs_ == 0
                          ? interval
                          : 0.75 * ewmaIntervalUs_ + 0.25 * interval;
  }
  lastArrival_ = now_;
}

bool A2Node::predictMoreTraffic() {
  switch (opts_.predictor) {
    case A2Options::Predictor::kRoundEmpty:
      return false;  // the paper's default: one empty round => stop
    case A2Options::Predictor::kLinger:
      return consecutiveEmpty_ < static_cast<uint64_t>(opts_.lingerRounds);
    case A2Options::Predictor::kRateAdaptive: {
      if (ewmaIntervalUs_ == 0 || lastArrival_ < 0) return false;
      const auto sinceLast = static_cast<double>(now() - lastArrival_);
      return sinceLast < opts_.rateMultiplier * ewmaIntervalUs_;
    }
  }
  return false;
}

void A2Node::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  // line 5: R-MCast m to the sender's own group only — the bundle exchange
  // of round K propagates it across groups.
  rm().rmcastTo(m, topology().members(gid()));
}

void A2Node::tryPropose() {
  if (joining()) return;  // rejoin in progress: no proposal initiation
  // line 11: ((RDELIVERED \ ADELIVERED) != {} or K <= Barrier) and propK <= K
  if (propK_ > K_) return;
  if (rdelivered_.empty() && K_ > barrier_) return;
  MsgBundle proposal;
  proposal.reserve(rdelivered_.size());
  for (MsgId id : rdelivered_) proposal.push_back(rdeliveredMsgs_.at(id));
  canonicalize(proposal);
  propK_ = K_ + 1;  // line 13
  groupConsensus_->propose(K_, std::move(proposal));
}

void A2Node::onDecided(consensus::Instance k, const ConsensusValue& v) {
  const auto* bundle = std::get_if<MsgBundle>(&v);
  assert(bundle != nullptr && "A2 consensus decides MsgBundles");
  decisionBuffer_[k] = *bundle;
  drainDecisions();
}

void A2Node::drainDecisions() {
  if (joining()) return;  // decisions buffer until the snapshot install
  while (!awaitingBundles_) {
    auto it = decisionBuffer_.find(K_);
    if (it == decisionBuffer_.end()) return;
    MsgBundle bundle = std::move(it->second);
    decisionBuffer_.erase(it);
    handleDecided(K_, bundle);
  }
}

void A2Node::handleDecided(uint64_t k, const MsgBundle& bundle) {
  // line 15: ship our group's bundle to every process of every other group
  // (one send event).
  auto payload = std::make_shared<const BundlePayload>(k, bundle, gid());
  std::vector<ProcessId> others;
  for (ProcessId q : topology().allProcesses())
    if (topology().group(q) != gid()) others.push_back(q);
  sendToMany(others, payload);
  // line 17.
  msgs_[k][gid()] = bundle;
  awaitingBundles_ = true;
  tryCompleteRound();
}

void A2Node::onProtocolMessage(ProcessId /*from*/, const PayloadPtr& p) {
  const auto* b = dynamic_cast<const BundlePayload*>(p.get());
  assert(b != nullptr && "A2 protocol layer speaks BundlePayload only");
  // Task 3 (lines 8-10).
  auto& slot = msgs_[b->round][b->fromGroup];
  if (slot.empty()) slot = b->msgs;
  barrier_ = std::max(barrier_, b->round);
  tryPropose();
  tryCompleteRound();
}

void A2Node::tryCompleteRound() {
  if (joining()) return;  // the suffix replay owns the delivery prefix
  if (!awaitingBundles_) return;
  // line 16: one bundle from every group (ours is already in).
  const auto& byGroup = msgs_[K_];
  for (GroupId g = 0; g < topology().numGroups(); ++g)
    if (byGroup.count(g) == 0) return;

  // line 18: the union of all bundles...
  MsgBundle toDeliver;
  for (const auto& [g, bundle] : byGroup)
    for (const AppMsgPtr& m : bundle)
      if (!adelivered_.count(m->id)) toDeliver.push_back(m);
  // ...A-Delivered in a deterministic order (line 19): by message id.
  canonicalize(toDeliver);
  toDeliver.erase(std::unique(toDeliver.begin(), toDeliver.end(),
                              [](const AppMsgPtr& a, const AppMsgPtr& b) {
                                return a->id == b->id;
                              }),
                  toDeliver.end());

  for (const AppMsgPtr& m : toDeliver) {
    adelivered_.insert(m->id);  // line 20
    rdelivered_.erase(m->id);
    rdeliveredMsgs_.erase(m->id);
    if (shouldDeliver(*m)) adeliver(m);
  }

  msgs_.erase(K_);
  ++K_;  // line 21
  ++roundsExecuted_;
  awaitingBundles_ = false;
  if (!toDeliver.empty()) {
    ++usefulRounds_;
    consecutiveEmpty_ = 0;
    barrier_ = std::max(barrier_, K_);  // lines 22-23
  } else {
    ++consecutiveEmpty_;
    // §5.3 extension: a prediction strategy may keep rounds running past
    // the paper's stop-on-first-empty-round default.
    if (predictMoreTraffic()) barrier_ = std::max(barrier_, K_);
  }

  tryPropose();
  drainDecisions();
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t A2Node::BootState::approxBytes() const {
  uint64_t b = 24;  // the three clocks
  for (const auto& [id, m] : rdeliveredMsgs) b += 40 + m->body.size();
  b += 8 * adelivered.size();
  for (const auto& [r, byGroup] : msgs)
    for (const auto& [g, bundle] : byGroup) b += 16 + 24 * bundle.size();
  for (const auto& [k, bundle] : decisionBuffer) b += 8 + 24 * bundle.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState> A2Node::snapshotProtocolState()
    const {
  auto s = std::make_shared<BootState>();
  s->K = K_;
  s->propK = propK_;
  s->barrier = barrier_;
  s->rdelivered = rdelivered_;
  s->rdeliveredMsgs = rdeliveredMsgs_;
  s->adelivered = adelivered_;
  s->msgs = msgs_;
  s->decisionBuffer = decisionBuffer_;
  s->awaitingBundles = awaitingBundles_;
  return s;
}

void A2Node::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  // Merge, never clobber. Rounds are lockstep across groups, so the round
  // clocks, the A-Delivered set and the bundle table are meaningful from
  // any donor; bundles that arrived during the joining window survive
  // (fill-if-absent, like the wire path).
  K_ = std::max(K_, s->K);
  barrier_ = std::max(barrier_, s->barrier);
  adelivered_.insert(s->adelivered.begin(), s->adelivered.end());
  for (const auto& [r, byGroup] : s->msgs)
    for (const auto& [g, bundle] : byGroup) {
      auto& slot = msgs_[r][g];
      if (slot.empty()) slot = bundle;
    }
  if (snap.donorGroup == gid()) {
    // Group-scoped pieces: the R-Delivered working set, the buffered
    // group-consensus decisions and the proposal clock describe the
    // donor's OWN group — only a groupmate's apply here.
    propK_ = std::max(propK_, s->propK);
    for (const auto& [id, m] : s->rdeliveredMsgs)
      if (adelivered_.count(id) == 0) {
        rdelivered_.insert(id);
        rdeliveredMsgs_[id] = m;
      }
    for (const auto& [k, bundle] : s->decisionBuffer)
      decisionBuffer_.emplace(k, bundle);
  }
  // Messages R-Delivered during the joining window that the donor already
  // A-Delivered leave the working set: the suffix replay delivers them.
  for (MsgId id : s->adelivered) {
    rdelivered_.erase(id);
    rdeliveredMsgs_.erase(id);
  }
  // awaitingBundles_ asserts "round K_'s own-group bundle is decided and
  // sits in msgs_[K_][gid()]". The donor's flag speaks about ITS group's
  // slot — adopting it from a cross-group donor would stall drainDecisions
  // forever — so derive it from the merged table instead.
  const auto rIt = msgs_.find(K_);
  awaitingBundles_ = rIt != msgs_.end() && rIt->second.count(gid()) != 0;
  // Rounds and decisions below the merged clock can never be consumed —
  // drop them instead of leaking.
  msgs_.erase(msgs_.begin(), msgs_.lower_bound(K_));
  decisionBuffer_.erase(decisionBuffer_.begin(),
                        decisionBuffer_.lower_bound(K_));
}

void A2Node::resumeAfterInstall() {
  // Round K_ may already be completable from the merged bundle table; then
  // drain decisions buffered during the window and rejoin the proposal
  // loop (K_ <= barrier_ restarts rounds even with an empty working set).
  tryCompleteRound();
  drainDecisions();
  tryPropose();
}

}  // namespace wanmc::abcast
