#include "abcast/a2_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::abcast {

A2Node::A2Node(sim::Runtime& rt, ProcessId pid, const core::StackConfig& cfg,
               A2Options opts)
    : core::XcastNode(rt, pid, cfg), opts_(opts) {
  groupConsensus_ = &addGroupConsensus();
  groupConsensus_->onDecide(
      [this](consensus::Instance k, const ConsensusValue& v) {
        onDecided(k, v);
      });
  rm().onDeliver([this](const AppMsgPtr& m) {
    // Task 2 (lines 6-7).
    if (adelivered_.count(m->id)) return;
    rdelivered_.insert(m->id);
    rdeliveredMsgs_[m->id] = m;
    noteArrival();
    tryPropose();
  });
}

void A2Node::noteArrival() {
  const SimTime now_ = now();
  if (lastArrival_ >= 0) {
    const auto interval = static_cast<double>(now_ - lastArrival_);
    ewmaIntervalUs_ = ewmaIntervalUs_ == 0
                          ? interval
                          : 0.75 * ewmaIntervalUs_ + 0.25 * interval;
  }
  lastArrival_ = now_;
}

bool A2Node::predictMoreTraffic() {
  switch (opts_.predictor) {
    case A2Options::Predictor::kRoundEmpty:
      return false;  // the paper's default: one empty round => stop
    case A2Options::Predictor::kLinger:
      return consecutiveEmpty_ < static_cast<uint64_t>(opts_.lingerRounds);
    case A2Options::Predictor::kRateAdaptive: {
      if (ewmaIntervalUs_ == 0 || lastArrival_ < 0) return false;
      const auto sinceLast = static_cast<double>(now() - lastArrival_);
      return sinceLast < opts_.rateMultiplier * ewmaIntervalUs_;
    }
  }
  return false;
}

void A2Node::xcast(const AppMsgPtr& m) {
  recordXcast(m);
  // line 5: R-MCast m to the sender's own group only — the bundle exchange
  // of round K propagates it across groups.
  rm().rmcastTo(m, topology().members(gid()));
}

void A2Node::tryPropose() {
  // line 11: ((RDELIVERED \ ADELIVERED) != {} or K <= Barrier) and propK <= K
  if (propK_ > K_) return;
  if (rdelivered_.empty() && K_ > barrier_) return;
  MsgBundle proposal;
  proposal.reserve(rdelivered_.size());
  for (MsgId id : rdelivered_) proposal.push_back(rdeliveredMsgs_.at(id));
  canonicalize(proposal);
  propK_ = K_ + 1;  // line 13
  groupConsensus_->propose(K_, std::move(proposal));
}

void A2Node::onDecided(consensus::Instance k, const ConsensusValue& v) {
  const auto* bundle = std::get_if<MsgBundle>(&v);
  assert(bundle != nullptr && "A2 consensus decides MsgBundles");
  decisionBuffer_[k] = *bundle;
  drainDecisions();
}

void A2Node::drainDecisions() {
  while (!awaitingBundles_) {
    auto it = decisionBuffer_.find(K_);
    if (it == decisionBuffer_.end()) return;
    MsgBundle bundle = std::move(it->second);
    decisionBuffer_.erase(it);
    handleDecided(K_, bundle);
  }
}

void A2Node::handleDecided(uint64_t k, const MsgBundle& bundle) {
  // line 15: ship our group's bundle to every process of every other group
  // (one send event).
  auto payload = std::make_shared<const BundlePayload>(k, bundle, gid());
  std::vector<ProcessId> others;
  for (ProcessId q : topology().allProcesses())
    if (topology().group(q) != gid()) others.push_back(q);
  sendToMany(others, payload);
  // line 17.
  msgs_[k][gid()] = bundle;
  awaitingBundles_ = true;
  tryCompleteRound();
}

void A2Node::onProtocolMessage(ProcessId /*from*/, const PayloadPtr& p) {
  const auto* b = dynamic_cast<const BundlePayload*>(p.get());
  assert(b != nullptr && "A2 protocol layer speaks BundlePayload only");
  // Task 3 (lines 8-10).
  auto& slot = msgs_[b->round][b->fromGroup];
  if (slot.empty()) slot = b->msgs;
  barrier_ = std::max(barrier_, b->round);
  tryPropose();
  tryCompleteRound();
}

void A2Node::tryCompleteRound() {
  if (!awaitingBundles_) return;
  // line 16: one bundle from every group (ours is already in).
  const auto& byGroup = msgs_[K_];
  for (GroupId g = 0; g < topology().numGroups(); ++g)
    if (byGroup.count(g) == 0) return;

  // line 18: the union of all bundles...
  MsgBundle toDeliver;
  for (const auto& [g, bundle] : byGroup)
    for (const AppMsgPtr& m : bundle)
      if (!adelivered_.count(m->id)) toDeliver.push_back(m);
  // ...A-Delivered in a deterministic order (line 19): by message id.
  canonicalize(toDeliver);
  toDeliver.erase(std::unique(toDeliver.begin(), toDeliver.end(),
                              [](const AppMsgPtr& a, const AppMsgPtr& b) {
                                return a->id == b->id;
                              }),
                  toDeliver.end());

  for (const AppMsgPtr& m : toDeliver) {
    adelivered_.insert(m->id);  // line 20
    rdelivered_.erase(m->id);
    rdeliveredMsgs_.erase(m->id);
    if (shouldDeliver(*m)) adeliver(m);
  }

  msgs_.erase(K_);
  ++K_;  // line 21
  ++roundsExecuted_;
  awaitingBundles_ = false;
  if (!toDeliver.empty()) {
    ++usefulRounds_;
    consecutiveEmpty_ = 0;
    barrier_ = std::max(barrier_, K_);  // lines 22-23
  } else {
    ++consecutiveEmpty_;
    // §5.3 extension: a prediction strategy may keep rounds running past
    // the paper's stop-on-first-empty-round default.
    if (predictMoreTraffic()) barrier_ = std::max(barrier_, K_);
  }

  tryPropose();
  drainDecisions();
}

}  // namespace wanmc::abcast
