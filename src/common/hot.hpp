// WANMC_HOT: the determinism contract's hot-region marker (rule D5).
//
// A function marked WANMC_HOT is part of a region the performance contract
// says must not touch the general heap: the scheduler fire path, the
// multicast fan-out, and the channel DATA path. The marker is enforced on
// two independent axes:
//
//   * statically  — tools/lint/wanmc_lint.py rule D5 flags non-placement
//     new, make_unique/make_shared, the malloc family, and std::function
//     construction inside the marked body; a deliberate exception carries
//     a `// wanmc-lint: allow(D5): <why>` annotation, which is the review
//     artifact;
//   * dynamically — bench_sim_core's operator-new hook counts allocations
//     per fired event, and scripts/bench.sh gates the ratio (~0.004-0.03
//     allocs/event at steady state).
//
// The macro itself expands to the compiler's hot-path attribute where one
// exists, so marking a function is never a behavior change — fire order,
// RNG draws, and fingerprints are untouched.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define WANMC_HOT [[gnu::hot]]
#else
#define WANMC_HOT
#endif
