// A size-classed block recycler for pooled payloads.
//
// Protocols that publish at a fixed cadence (merge heartbeats, FD pings)
// allocate one payload per interval per process — the dominant allocation
// in long simulations. ArenaPool keeps a free list per block size so those
// payloads are recycled instead of round-tripping through the general heap;
// PoolAllocator adapts it to std::allocate_shared, which fuses the object
// and its control block into a single pooled allocation.
//
// Ownership rule: the pool must outlive every shared_ptr allocated from it.
// The simulator guarantees this by owning one arena per Runtime, declared
// before (so destroyed after) the nodes and the event pool.
#pragma once

#include <cstddef>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace wanmc {

class ArenaPool {
 public:
  // `threadSafe` guards the free lists with a mutex: required when payloads
  // allocated on one thread are released on another (the threaded execution
  // backend). The sim backend stays single-threaded and lock-free — the
  // flag costs it one predictable branch per alloc/dealloc.
  explicit ArenaPool(bool threadSafe = false) : threadSafe_(threadSafe) {}
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;
  ~ArenaPool() {
    for (auto& [size, head] : classes_) {
      while (head != nullptr) {
        Free* next = head->next;
        ::operator delete(head);
        head = next;
      }
    }
  }

  void* alloc(size_t n) {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (threadSafe_) lock.lock();
    for (auto& [size, head] : classes_) {
      if (size != n) continue;
      if (head == nullptr) break;
      Free* p = head;
      head = head->next;
      return p;
    }
    return ::operator new(n);
  }

  void dealloc(void* p, size_t n) {
    std::unique_lock<std::mutex> lock(mu_, std::defer_lock);
    if (threadSafe_) lock.lock();
    for (auto& [size, head] : classes_) {
      if (size != n) continue;
      auto* f = static_cast<Free*>(p);
      f->next = head;
      head = f;
      return;
    }
    if (classes_.size() < kMaxClasses) {
      classes_.push_back({n, static_cast<Free*>(p)});
      classes_.back().second->next = nullptr;
      return;
    }
    ::operator delete(p);
  }

 private:
  struct Free {
    Free* next;
  };
  // A handful of distinct payload sizes per run; linear scan is cheapest.
  static constexpr size_t kMaxClasses = 8;
  bool threadSafe_ = false;
  std::mutex mu_;
  std::vector<std::pair<size_t, Free*>> classes_;
};

// Minimal allocator over an ArenaPool for std::allocate_shared.
template <class T>
struct PoolAllocator {
  using value_type = T;

  explicit PoolAllocator(ArenaPool* p) : pool(p) {}
  template <class U>
  PoolAllocator(const PoolAllocator<U>& o)  // NOLINT(google-explicit-constructor)
      : pool(o.pool) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool->alloc(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { pool->dealloc(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const PoolAllocator<U>& o) const {
    return pool == o.pool;
  }

  ArenaPool* pool;
};

}  // namespace wanmc
