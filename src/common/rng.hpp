// Deterministic pseudo-random number generation for the simulator.
//
// Every run of the simulator is a pure function of its seed: latency jitter,
// crash schedules and workload generation all draw from SplitMix64 streams
// derived from a single root seed. SplitMix64 is tiny, fast, and passes
// BigCrush for our purposes (jitter, shuffles); determinism and
// reproducibility matter more here than statistical perfection.
#pragma once

#include <cstdint>

namespace wanmc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr int64_t uniform(int64_t lo, int64_t hi) {
    if (lo >= hi) return lo;
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
  }

  // Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Derive an independent stream, e.g. one per subsystem.
  [[nodiscard]] constexpr SplitMix64 fork(uint64_t salt) const {
    SplitMix64 child(state_ ^ (0xd1342543de82ef95ULL * (salt + 1)));
    child.next();
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace wanmc
