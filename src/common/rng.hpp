// Deterministic pseudo-random number generation for the simulator.
//
// Every run of the simulator is a pure function of its seed: latency jitter,
// crash schedules and workload generation all draw from SplitMix64 streams
// derived from a single root seed. SplitMix64 is tiny, fast, and passes
// BigCrush for our purposes (jitter, shuffles); determinism and
// reproducibility matter more here than statistical perfection.
#pragma once

#include <cstdint>

namespace wanmc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  constexpr int64_t uniform(int64_t lo, int64_t hi) {
    if (lo >= hi) return lo;
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
  }

  // Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Derive an independent stream, e.g. one per subsystem.
  [[nodiscard]] constexpr SplitMix64 fork(uint64_t salt) const {
    SplitMix64 child(state_ ^ (0xd1342543de82ef95ULL * (salt + 1)));
    child.next();
    return child;
  }

 private:
  uint64_t state_;
};

// Division-free `x % d` for a fixed divisor (Lemire's fastmod). A 64-bit
// hardware division costs 30-90 cycles with a full-width dividend; the
// simulator draws one latency modulo per message copy, which makes this
// one of the hottest single instructions of a run. Produces bit-identical
// results to the plain modulo, so it is safe on the deterministic path.
class FastMod {
 public:
  FastMod() = default;
  explicit FastMod(uint64_t d) : d_(d), M_(~__uint128_t{0} / d + 1) {}

  [[nodiscard]] uint64_t operator()(uint64_t x) const {
    const __uint128_t lowbits = M_ * x;
    const __uint128_t bottom =
        ((lowbits & UINT64_MAX) * d_) >> 64;
    const __uint128_t top = (lowbits >> 64) * d_;
    return static_cast<uint64_t>((bottom + top) >> 64);
  }

 private:
  uint64_t d_ = 1;
  __uint128_t M_ = 0;
};

}  // namespace wanmc
