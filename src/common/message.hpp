// Application-level messages and protocol payload plumbing.
//
// AppMessage is the unit the agreement protocols order: it corresponds to the
// paper's message m with fields m.id and m.dest. Protocol-internal packets
// (consensus rounds, timestamp exchanges, bundles, heartbeats...) derive from
// Payload and are routed to the owning component by Layer tag.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/ids.hpp"

namespace wanmc {

// Which component of a process stack a packet belongs to. The network layer
// records per-layer traffic statistics; the genuineness and quiescence
// verifiers use the tags to reason about protocol-level traffic exactly as
// the paper does (its accounting treats consensus/reliable multicast as
// oracle-based substrates; see DESIGN.md §2).
enum class Layer : uint8_t {
  kFailureDetector,
  kConsensus,
  kReliableMulticast,
  kProtocol,   // the atomic multicast / broadcast algorithm itself
  kApp,
  kChannel,    // reliable-channel substrate control traffic (ACK/NACK);
               // retransmitted DATA is accounted under its inner layer
  kBootstrap,  // recovery state-transfer plane (src/bootstrap/): announce/
               // request/offer traffic for rejoining incarnations. Substrate
               // like kChannel: excluded from genuineness/quiescence, and
               // fingerprint-visible only when armed
};

inline constexpr int kNumLayers = 7;

[[nodiscard]] constexpr const char* layerName(Layer l) {
  switch (l) {
    case Layer::kFailureDetector: return "fd";
    case Layer::kConsensus: return "consensus";
    case Layer::kReliableMulticast: return "rmcast";
    case Layer::kProtocol: return "protocol";
    case Layer::kApp: return "app";
    case Layer::kChannel: return "channel";
    case Layer::kBootstrap: return "bootstrap";
  }
  return "?";
}

// An application message to be atomically multicast / broadcast.
// Immutable once created; protocols share it by shared_ptr and keep their
// mutable per-message state (stage, timestamp) in their own tables, exactly
// like an implementation over a real network would keep a parsed copy.
struct AppMessage {
  MsgId id = 0;             // globally unique, totally ordered tie-breaker
  ProcessId sender = kNoProcess;
  GroupSet dest;            // m.dest: the addressed groups
  std::string body;         // opaque application data
  bool batch = false;       // true: this is a BatchMessage carrier
                            // (common/batch.hpp) — an ordering-layer
                            // artifact, never surfaced in the trace

  AppMessage(MsgId i, ProcessId s, GroupSet d, std::string b)
      : id(i), sender(s), dest(d), body(std::move(b)) {}
};

using AppMsgPtr = std::shared_ptr<const AppMessage>;

inline AppMsgPtr makeAppMessage(MsgId id, ProcessId sender, GroupSet dest,
                                std::string body = {}) {
  return std::make_shared<const AppMessage>(id, sender, dest,
                                            std::move(body));
}

// Base class of every packet that crosses the simulated network.
struct Payload {
  virtual ~Payload() = default;
  [[nodiscard]] virtual Layer layer() const = 0;
  [[nodiscard]] virtual std::string debugString() const = 0;
};

using PayloadPtr = std::shared_ptr<const Payload>;

}  // namespace wanmc
