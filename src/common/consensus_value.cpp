#include "common/consensus_value.hpp"

namespace wanmc {

std::string valueDebugString(const ConsensusValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return "<none>";
  if (const auto* es = std::get_if<A1EntrySet>(&v)) {
    std::string out = "a1[";
    for (const auto& e : *es) {
      out += "m" + std::to_string(e.msg->id) + ":" + stageName(e.stage) +
             "@" + std::to_string(e.ts) + " ";
    }
    return out + "]";
  }
  if (const auto* mb = std::get_if<MsgBundle>(&v)) {
    std::string out = "bundle[";
    for (const auto& m : *mb) out += "m" + std::to_string(m->id) + " ";
    return out + "]";
  }
  return "ts:" + std::to_string(std::get<uint64_t>(v));
}

}  // namespace wanmc
