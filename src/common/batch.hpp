// Batch carriers: one AppMessage standing in for a window of casts.
//
// The batching plane (src/core/batcher.hpp) amortizes the per-cast ordering
// cost — one consensus / timestamp-exchange instance per A-XCast — by
// accumulating casts with the same (sender, destination-set) into a carrier
// message and running the protocol once per carrier. The stacks order the
// carrier like any other AppMessage; at A-Deliver time the harness expands
// it back into its constituent casts in batch-internal (enqueue) order, so
// every per-message property checker and latency accountant keeps operating
// on individual casts. Carriers are an ordering-layer artifact: they never
// appear in the run trace and their ids are never observed by verify:: or
// metrics::.
//
// Wire shape: the carrier body is a length-prefixed concatenation of the
// constituent (id, body) pairs, little-endian fixed-width — what a real
// implementation would put on the wire. Sender and destination set are NOT
// repeated per constituent: the batch key guarantees they are shared with
// the carrier. The in-memory carrier additionally keeps the decoded
// constituent pointers so delivery-time expansion costs no parsing.
#pragma once

#include <string>
#include <vector>

#include "common/message.hpp"

namespace wanmc {

// A carrier and its constituents. Constituents are ordinary AppMessages in
// batch-internal order; `body` holds their wire encoding. Detection goes
// through AppMessage::batch (set by the constructor), so the hot delivery
// path needs no dynamic_cast.
struct BatchMessage final : AppMessage {
  std::vector<AppMsgPtr> casts;

  BatchMessage(MsgId i, ProcessId s, GroupSet d, std::vector<AppMsgPtr> cs);
};

// Carrier for `casts` (all sharing `sender` and `dest` — asserted). The
// carrier id comes from the experiment's message-id allocator so carrier
// and constituent ids never collide.
[[nodiscard]] AppMsgPtr makeCarrier(MsgId id, ProcessId sender, GroupSet dest,
                                    std::vector<AppMsgPtr> casts);

// Narrowing accessor: nullptr unless `m` is a carrier.
[[nodiscard]] inline const BatchMessage* asBatch(const AppMsgPtr& m) {
  return m && m->batch ? static_cast<const BatchMessage*>(m.get()) : nullptr;
}

// Wire codec for the carrier body. encode is what BatchMessage's
// constructor stores in `body`; decode reconstructs the constituents of a
// carrier received as raw bytes (the simulator hands the in-memory object
// around, so decode is exercised by tests, not the hot path). decode
// throws std::invalid_argument on a malformed buffer.
[[nodiscard]] std::string encodeBatchBody(const std::vector<AppMsgPtr>& casts);
[[nodiscard]] std::vector<AppMsgPtr> decodeBatchBody(ProcessId sender,
                                                     GroupSet dest,
                                                     const std::string& wire);

}  // namespace wanmc
