// Run traces: everything the verifiers and the benchmark harness need to
// check the paper's properties and to measure latency degrees.
//
// The latency degree (paper §2.3) is defined over a *modified* Lamport
// clock: only inter-group sends tick the clock. The simulator stamps every
// A-XCast and A-Deliver event with that clock; Delta(m, R) is then
//     max_{q in Pi'(m)} ts(A-Deliver(m)_q) - ts(A-XCast(m)_p).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"

namespace wanmc {

// One A-Deliver (or R-Deliver / optimistic-deliver) event.
struct DeliveryEvent {
  ProcessId process = kNoProcess;
  MsgId msg = 0;
  uint64_t lamport = 0;   // modified Lamport timestamp of the deliver event
  SimTime when = 0;       // simulated wall-clock
  uint64_t order = 0;     // per-process delivery sequence number
};

// One A-XCast (A-MCast or A-BCast) event.
struct CastEvent {
  ProcessId process = kNoProcess;
  MsgId msg = 0;
  GroupSet dest;
  uint64_t lamport = 0;
  SimTime when = 0;
};

// One benign crash (crash-stop until recovered).
struct CrashEvent {
  ProcessId process = kNoProcess;
  SimTime when = 0;
};

// One process recovery: the process rejoins with RESET protocol state (the
// crash-recovery model without stable storage — an amnesiac rejoin). The
// runtime bumps the process's incarnation; verifiers use these events to
// segment a recovered process's deliveries by incarnation.
struct RecoveryEvent {
  ProcessId process = kNoProcess;
  SimTime when = 0;
};

// One network-partition transition: `side` (GroupSet bits) is cut from (or
// re-joined to) the rest of the topology.
struct PartitionEvent {
  bool cut = true;  // false: heal
  uint64_t side = 0;
  SimTime when = 0;
};

// One packet on the wire (for message-complexity accounting and for the
// genuineness / quiescence checkers).
struct WireEvent {
  ProcessId from = kNoProcess;
  ProcessId to = kNoProcess;
  Layer layer = Layer::kProtocol;
  bool interGroup = false;
  SimTime sentAt = 0;
};

// Aggregated trace of one simulation run.
struct RunTrace {
  std::vector<CastEvent> casts;
  std::vector<DeliveryEvent> deliveries;
  std::vector<WireEvent> wire;  // populated when Network::recordWire is on
  // Fault-plane events (always recorded; empty in fault-free runs).
  std::vector<CrashEvent> crashes;
  std::vector<RecoveryEvent> recoveries;
  std::vector<PartitionEvent> partitions;
  // Wire copies discarded because their link was cut at send time.
  uint64_t linkDrops = 0;
  // Wire copies discarded by the iid LossModel (sim::Runtime::setLossRate).
  uint64_t lossDrops = 0;
  std::map<MsgId, GroupSet> destOf;
  std::map<MsgId, ProcessId> senderOf;

  // Per-process delivery sequences, in delivery order.
  [[nodiscard]] std::map<ProcessId, std::vector<MsgId>> sequences() const {
    std::map<ProcessId, std::vector<MsgId>> out;
    for (const auto& d : deliveries) out[d.process].push_back(d.msg);
    return out;
  }

  [[nodiscard]] std::optional<CastEvent> castOf(MsgId id) const {
    for (const auto& c : casts)
      if (c.msg == id) return c;
    return std::nullopt;
  }

  // Delta(m, R): max over delivering processes of the Lamport distance from
  // the cast event. Returns nullopt if m was never cast or never delivered.
  [[nodiscard]] std::optional<int64_t> latencyDegree(MsgId id) const {
    auto cast = castOf(id);
    if (!cast) return std::nullopt;
    std::optional<int64_t> best;
    for (const auto& d : deliveries) {
      if (d.msg != id) continue;
      int64_t delta = static_cast<int64_t>(d.lamport) -
                      static_cast<int64_t>(cast->lamport);
      if (!best || delta > *best) best = delta;
    }
    return best;
  }

  // Latency degrees of all cast-and-delivered messages.
  [[nodiscard]] std::vector<int64_t> allLatencyDegrees() const {
    std::vector<int64_t> out;
    for (const auto& c : casts)
      if (auto d = latencyDegree(c.msg)) out.push_back(*d);
    return out;
  }

  // The paper defines the latency degree of an *algorithm* as the minimum
  // Delta over admissible runs and messages; within one run this is the
  // minimum over messages.
  [[nodiscard]] std::optional<int64_t> minLatencyDegree() const {
    auto all = allLatencyDegrees();
    if (all.empty()) return std::nullopt;
    int64_t best = all.front();
    for (int64_t v : all) best = std::min(best, v);
    return best;
  }

  [[nodiscard]] std::optional<int64_t> maxLatencyDegree() const {
    auto all = allLatencyDegrees();
    if (all.empty()) return std::nullopt;
    int64_t best = all.front();
    for (int64_t v : all) best = std::max(best, v);
    return best;
  }

  // Max simulated wall-clock delay between cast and last delivery of m.
  [[nodiscard]] std::optional<SimTime> wallLatency(MsgId id) const {
    auto cast = castOf(id);
    if (!cast) return std::nullopt;
    std::optional<SimTime> best;
    for (const auto& d : deliveries) {
      if (d.msg != id) continue;
      SimTime delta = d.when - cast->when;
      if (!best || delta > *best) best = delta;
    }
    return best;
  }
};

// Fault-plane counters: one block of the metrics Summary. Derived from the
// RunTrace (see faultStatsOf) so the streaming recorder and the offline
// summarizeTrace fallback stay field-for-field identical.
struct FaultStats {
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t partitionsCut = 0;
  uint64_t partitionsHealed = 0;
  uint64_t linkDrops = 0;  // copies discarded on a cut link
  uint64_t lossDrops = 0;  // copies discarded by the iid LossModel
  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

[[nodiscard]] inline FaultStats faultStatsOf(const RunTrace& t) {
  FaultStats out;
  out.crashes = t.crashes.size();
  out.recoveries = t.recoveries.size();
  for (const auto& p : t.partitions) (p.cut ? out.partitionsCut
                                            : out.partitionsHealed)++;
  out.linkDrops = t.linkDrops;
  out.lossDrops = t.lossDrops;
  return out;
}

// Reliable-channel substrate counters (src/channel/). Maintained by the
// channel plane itself, not derivable from the RunTrace: like lastAlgoSend,
// they are injected identically into both Summary constructions at harvest.
// All-zero when channels are off.
struct ChannelStats {
  uint64_t dataSent = 0;           // first transmissions of protocol packets
  uint64_t retransmits = 0;        // timer- or NACK-triggered resends
  uint64_t acksSent = 0;           // cumulative ACK control packets
  uint64_t nacksSent = 0;          // ACKs that carried a gap request
  uint64_t duplicatesDropped = 0;  // (sender incarnation, seq) already seen
  uint64_t staleDropped = 0;       // wrong incarnation/epoch packets
  uint64_t holdbackOverflow = 0;   // out-of-order copies past the buffer cap
  uint64_t delivered = 0;          // in-order handoffs to the stacks
  friend bool operator==(const ChannelStats&, const ChannelStats&) = default;
};

// Bootstrap-plane counters (src/bootstrap/). Like ChannelStats: maintained
// by the bootstrap plane itself and injected into both Summary constructions
// at harvest. All-zero when the plane is unarmed.
struct BootstrapStats {
  uint64_t snapshotsRequested = 0;  // kRequest packets sent by rejoiners
  uint64_t snapshotsServed = 0;     // kOffer packets sent by live peers
  uint64_t snapshotsInstalled = 0;  // offers accepted and installed
  uint64_t snapshotBytes = 0;       // approximate serialized size of offers
  uint64_t suffixMessages = 0;      // delivery-suffix entries replayed
  uint64_t retries = 0;             // request re-issues (peer dead or silent)
  uint64_t denies = 0;              // kDeny responses (peer itself rejoining)
  uint64_t staleDropped = 0;        // packets for a superseded incarnation
  friend bool operator==(const BootstrapStats&,
                         const BootstrapStats&) = default;
};

// Per-layer message counters, split intra/inter group.
struct TrafficStats {
  struct Counter {
    uint64_t intra = 0;
    uint64_t inter = 0;
    [[nodiscard]] uint64_t total() const { return intra + inter; }
    friend bool operator==(const Counter&, const Counter&) = default;
  };
  Counter perLayer[kNumLayers];

  friend bool operator==(const TrafficStats& a, const TrafficStats& b) {
    for (int l = 0; l < kNumLayers; ++l)
      if (!(a.perLayer[l] == b.perLayer[l])) return false;
    return true;
  }

  Counter& at(Layer l) { return perLayer[static_cast<int>(l)]; }
  [[nodiscard]] const Counter& at(Layer l) const {
    return perLayer[static_cast<int>(l)];
  }

  [[nodiscard]] uint64_t interTotal() const {
    uint64_t s = 0;
    for (const auto& c : perLayer) s += c.inter;
    return s;
  }
  [[nodiscard]] uint64_t intraTotal() const {
    uint64_t s = 0;
    for (const auto& c : perLayer) s += c.intra;
    return s;
  }
  // Inter-group messages excluding the failure-detector substrate, which the
  // paper's accounting treats as an oracle (DESIGN.md §2), the reliable-
  // channel control traffic, which the paper assumes away entirely
  // (retransmitted DATA copies still count under their inner layer), and the
  // bootstrap state-transfer plane, which exists outside the paper's model
  // (its crash-stop processes never rejoin).
  [[nodiscard]] uint64_t interAlgorithmic() const {
    uint64_t s = 0;
    for (int l = 0; l < kNumLayers; ++l)
      if (static_cast<Layer>(l) != Layer::kFailureDetector &&
          static_cast<Layer>(l) != Layer::kChannel &&
          static_cast<Layer>(l) != Layer::kBootstrap)
        s += perLayer[l].inter;
    return s;
  }
};

}  // namespace wanmc
