#include "common/batch.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace wanmc {

namespace {

void putU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void putU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint32_t getU32(const std::string& in, size_t& pos) {
  if (in.size() - pos < 4)
    throw std::invalid_argument("batch body: truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[pos++])) << (8 * i);
  return v;
}

uint64_t getU64(const std::string& in, size_t& pos) {
  if (in.size() - pos < 8)
    throw std::invalid_argument("batch body: truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[pos++])) << (8 * i);
  return v;
}

}  // namespace

std::string encodeBatchBody(const std::vector<AppMsgPtr>& casts) {
  std::string out;
  putU32(out, static_cast<uint32_t>(casts.size()));
  for (const AppMsgPtr& c : casts) {
    putU64(out, c->id);
    putU32(out, static_cast<uint32_t>(c->body.size()));
    out += c->body;
  }
  return out;
}

std::vector<AppMsgPtr> decodeBatchBody(ProcessId sender, GroupSet dest,
                                       const std::string& wire) {
  size_t pos = 0;
  const uint32_t count = getU32(wire, pos);
  std::vector<AppMsgPtr> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const MsgId id = getU64(wire, pos);
    const uint32_t len = getU32(wire, pos);
    if (wire.size() - pos < len)
      throw std::invalid_argument("batch body: truncated cast body");
    out.push_back(makeAppMessage(id, sender, dest, wire.substr(pos, len)));
    pos += len;
  }
  if (pos != wire.size())
    throw std::invalid_argument("batch body: trailing bytes");
  return out;
}

BatchMessage::BatchMessage(MsgId i, ProcessId s, GroupSet d,
                           std::vector<AppMsgPtr> cs)
    : AppMessage(i, s, d, encodeBatchBody(cs)), casts(std::move(cs)) {
  batch = true;
}

AppMsgPtr makeCarrier(MsgId id, ProcessId sender, GroupSet dest,
                      std::vector<AppMsgPtr> casts) {
  assert(!casts.empty());
  for ([[maybe_unused]] const AppMsgPtr& c : casts)
    assert(c->sender == sender && c->dest == dest && !c->batch);
  return std::make_shared<const BatchMessage>(id, sender, dest,
                                              std::move(casts));
}

}  // namespace wanmc
