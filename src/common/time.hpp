// Simulated time, in microseconds since the start of the run.
#pragma once

#include <cstdint>

namespace wanmc {

using SimTime = int64_t;

inline constexpr SimTime kUs = 1;
inline constexpr SimTime kMs = 1000;
inline constexpr SimTime kSec = 1000 * kMs;
inline constexpr SimTime kTimeNever = INT64_MAX;

}  // namespace wanmc
