// Values decided by the per-group uniform consensus abstraction.
//
// Algorithm A1 proposes sets of (message, stage, timestamp) entries; A2
// proposes message bundles; the Rodrigues-et-al. baseline proposes a single
// timestamp. A std::variant keeps the abstraction strongly typed while the
// consensus implementations stay value-agnostic.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/message.hpp"

namespace wanmc {

// Stage of a message in Algorithm A1 (paper §4.1). Messages move
// s0 -> s1 -> s2 -> s3, possibly skipping s1/s2 (single-group messages) or
// s2 (groups whose proposal equals the final timestamp).
enum class Stage : uint8_t { s0 = 0, s1 = 1, s2 = 2, s3 = 3 };

[[nodiscard]] constexpr const char* stageName(Stage s) {
  switch (s) {
    case Stage::s0: return "s0";
    case Stage::s1: return "s1";
    case Stage::s2: return "s2";
    case Stage::s3: return "s3";
  }
  return "?";
}

// One entry of an A1 consensus proposal: a message together with the stage
// it was proposed in and its current timestamp. The AppMessage pointer
// travels with the entry so that a process that never R-Delivered m still
// learns m from the decision (paper line 30: "add message or update its
// fields").
struct A1Entry {
  AppMsgPtr msg;
  Stage stage = Stage::s0;
  uint64_t ts = 0;

  friend bool operator==(const A1Entry& a, const A1Entry& b) {
    return a.msg->id == b.msg->id && a.stage == b.stage && a.ts == b.ts;
  }
};

using A1EntrySet = std::vector<A1Entry>;       // canonical: sorted by msg id
using MsgBundle = std::vector<AppMsgPtr>;      // canonical: sorted by msg id

inline void canonicalize(A1EntrySet& s) {
  std::sort(s.begin(), s.end(), [](const A1Entry& a, const A1Entry& b) {
    return a.msg->id < b.msg->id;
  });
}
inline void canonicalize(MsgBundle& s) {
  std::sort(s.begin(), s.end(),
            [](const AppMsgPtr& a, const AppMsgPtr& b) { return a->id < b->id; });
}

inline bool sameBundle(const MsgBundle& a, const MsgBundle& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i)
    if (a[i]->id != b[i]->id) return false;
  return true;
}

// The value type carried through consensus. monostate is the "no proposal
// yet" placeholder inside consensus implementations; it is never decided.
using ConsensusValue =
    std::variant<std::monostate, A1EntrySet, MsgBundle, uint64_t>;

inline bool valueEquals(const ConsensusValue& a, const ConsensusValue& b) {
  if (a.index() != b.index()) return false;
  if (std::holds_alternative<A1EntrySet>(a))
    return std::get<A1EntrySet>(a) == std::get<A1EntrySet>(b);
  if (std::holds_alternative<MsgBundle>(a))
    return sameBundle(std::get<MsgBundle>(a), std::get<MsgBundle>(b));
  if (std::holds_alternative<uint64_t>(a))
    return std::get<uint64_t>(a) == std::get<uint64_t>(b);
  return true;  // both monostate
}

[[nodiscard]] std::string valueDebugString(const ConsensusValue& v);

}  // namespace wanmc
