// Basic identifier types shared by every layer of the stack.
//
// The system model follows Schiper & Pedone (PODC'07): a set of processes
// Pi = {p1..pn} partitioned into disjoint groups Gamma = {g1..gm}.
// Processes are identified by a dense integer ProcessId in [0, n); groups by
// a dense GroupId in [0, m). A GroupSet is a bitmask over groups, which keeps
// destination sets of multicast messages cheap to copy and canonical to
// compare.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wanmc {

using ProcessId = int32_t;
using GroupId = int32_t;
using MsgId = uint64_t;

inline constexpr ProcessId kNoProcess = -1;
inline constexpr GroupId kNoGroup = -1;

// Destination set of a multicast message: a bitmask over group ids.
// Supports up to 64 groups, far beyond the paper's WAN scenarios.
class GroupSet {
 public:
  constexpr GroupSet() = default;
  explicit constexpr GroupSet(uint64_t bits) : bits_(bits) {}

  static GroupSet single(GroupId g) { return GroupSet(uint64_t{1} << g); }
  static GroupSet of(std::initializer_list<GroupId> gs) {
    GroupSet s;
    for (GroupId g : gs) s.add(g);
    return s;
  }
  static GroupSet all(int num_groups) {
    return num_groups >= 64 ? GroupSet(~uint64_t{0})
                            : GroupSet((uint64_t{1} << num_groups) - 1);
  }

  void add(GroupId g) { bits_ |= uint64_t{1} << g; }
  void remove(GroupId g) { bits_ &= ~(uint64_t{1} << g); }
  [[nodiscard]] bool contains(GroupId g) const {
    return (bits_ >> g) & uint64_t{1};
  }
  [[nodiscard]] int size() const { return __builtin_popcountll(bits_); }
  [[nodiscard]] bool empty() const { return bits_ == 0; }
  [[nodiscard]] uint64_t bits() const { return bits_; }

  [[nodiscard]] std::vector<GroupId> groups() const {
    std::vector<GroupId> out;
    for (uint64_t b = bits_; b != 0; b &= b - 1)
      out.push_back(static_cast<GroupId>(__builtin_ctzll(b)));
    return out;
  }

  [[nodiscard]] GroupSet without(GroupId g) const {
    GroupSet s = *this;
    s.remove(g);
    return s;
  }

  friend bool operator==(const GroupSet&, const GroupSet&) = default;

  [[nodiscard]] std::string str() const {
    std::string out = "{";
    bool first = true;
    for (GroupId g : groups()) {
      if (!first) out += ",";
      out += "g";  // built by append: avoids a GCC 12 -Wrestrict
      out += std::to_string(g);  // false positive on operator+
      first = false;
    }
    return out + "}";
  }

 private:
  uint64_t bits_ = 0;
};

}  // namespace wanmc
