#include "testing/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/rng.hpp"

namespace wanmc::testing {

// ---------------------------------------------------------------------------
// Latency presets.
// ---------------------------------------------------------------------------

sim::LatencyModel latencyModelFor(LatencyPreset p) {
  switch (p) {
    case LatencyPreset::kLan:
      return sim::LatencyModel{kMs, 2 * kMs, kMs, 2 * kMs};
    case LatencyPreset::kWan:
      return sim::LatencyModel{kMs, 2 * kMs, 95 * kMs, 110 * kMs};
    case LatencyPreset::kWanFixed:
      return sim::LatencyModel::fixed(kMs / 10, 100 * kMs);
    case LatencyPreset::kMixed:
      return sim::LatencyModel{kMs, 2 * kMs, 20 * kMs, 80 * kMs};
  }
  return sim::LatencyModel{};
}

const char* latencyPresetName(LatencyPreset p) {
  switch (p) {
    case LatencyPreset::kLan: return "lan";
    case LatencyPreset::kWan: return "wan";
    case LatencyPreset::kWanFixed: return "wan-fixed";
    case LatencyPreset::kMixed: return "mixed";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Fault scripts.
// ---------------------------------------------------------------------------

std::vector<CrashSpec> materializeCrashes(const Topology& topo,
                                          const RandomCrashes& plan,
                                          uint64_t seed) {
  std::vector<CrashSpec> out;
  SplitMix64 rng(SplitMix64(seed).fork(plan.salt).next());
  for (GroupId g = 0; g < topo.numGroups(); ++g) {
    const auto members = topo.members(g);
    // Strict minority: consensus inside the group must stay solvable.
    const int maxFaulty = (static_cast<int>(members.size()) - 1) / 2;
    const int victims = std::min(plan.perGroup, maxFaulty);
    std::vector<ProcessId> pool = members;
    for (int i = 0; i < victims; ++i) {
      const auto idx = static_cast<size_t>(rng.next() % pool.size());
      const ProcessId victim = pool[idx];
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(idx));
      out.push_back(CrashSpec{
          victim, rng.uniform(plan.earliest, std::max(plan.earliest,
                                                      plan.latest))});
    }
  }
  return out;
}

std::vector<RecoverSpec> materializeRecoveries(
    const std::vector<CrashSpec>& crashes, const RandomRecoveries& plan,
    uint64_t seed) {
  std::vector<RecoverSpec> out;
  SplitMix64 rng(SplitMix64(seed).fork(plan.salt).next());
  for (const CrashSpec& c : crashes) {
    const SimTime delay =
        rng.uniform(plan.delayMin, std::max(plan.delayMin, plan.delayMax));
    out.push_back(RecoverSpec{c.pid, c.when + delay});
  }
  return out;
}

std::pair<std::vector<CrashSpec>, std::vector<RecoverSpec>>
materializeChurn(const Topology& topo, const ChurnSpec& plan,
                 uint64_t seed) {
  std::pair<std::vector<CrashSpec>, std::vector<RecoverSpec>> out;
  // Only processes whose group survives their crash are eligible: one
  // victim at a time, so any group of three or more keeps its majority.
  std::vector<ProcessId> eligible;
  for (ProcessId p : topo.allProcesses())
    if (topo.groupSize(topo.group(p)) >= 3) eligible.push_back(p);
  if (eligible.empty() || plan.cycles <= 0) return out;
  SplitMix64 rng(SplitMix64(seed).fork(plan.salt).next());
  for (int c = 0; c < plan.cycles; ++c) {
    const ProcessId victim =
        eligible[static_cast<size_t>(rng.next() % eligible.size())];
    const SimTime when = plan.start + c * plan.period;
    const SimTime down =
        rng.uniform(plan.downMin, std::max(plan.downMin, plan.downMax));
    out.first.push_back(CrashSpec{victim, when});
    out.second.push_back(RecoverSpec{victim, when + down});
  }
  return out;
}

std::vector<PartitionSpec> materializePartitions(const Topology& topo,
                                                 const RandomPartitions& plan,
                                                 uint64_t seed) {
  std::vector<PartitionSpec> out;
  if (topo.numGroups() < 2) return out;  // a lone group has no far side
  SplitMix64 rng(SplitMix64(seed).fork(plan.salt).next());
  for (int i = 0; i < plan.count; ++i) {
    const auto g = static_cast<GroupId>(
        rng.next() % static_cast<uint64_t>(topo.numGroups()));
    const SimTime from =
        rng.uniform(plan.earliest, std::max(plan.earliest, plan.latest));
    const SimTime dur =
        rng.uniform(plan.durMin, std::max(plan.durMin, plan.durMax));
    out.push_back(PartitionSpec{GroupSet::single(g), from, from + dur});
  }
  return out;
}

namespace {

// A deterministic per-rule coin: the k-th matching packet of a rule is
// dropped iff hash(seed, salt, k) < probability. The simulator processes
// packets in a deterministic order, so the whole filter is reproducible.
class DropEngine {
 public:
  DropEngine(std::vector<DropSpec> specs, const Topology& topo,
             uint64_t seed)
      : specs_(std::move(specs)), topo_(&topo) {
    for (const auto& s : specs_)
      coins_.emplace_back(SplitMix64(seed).fork(s.salt).next());
  }

  bool operator()(ProcessId from, ProcessId to, const Payload& p,
                  SimTime now) {
    bool drop = false;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const DropSpec& s = specs_[i];
      if (s.layer && p.layer() != *s.layer) continue;
      if (s.from != kNoProcess && from != s.from) continue;
      if (s.to != kNoProcess && to != s.to) continue;
      if (s.fromGroup != kNoGroup && topo_->group(from) != s.fromGroup)
        continue;
      if (s.toGroup != kNoGroup && topo_->group(to) != s.toGroup) continue;
      if (s.interGroupOnly && topo_->sameGroup(from, to)) continue;
      if (now < s.activeFrom || now >= s.activeUntil) continue;
      // Matching rules consume their coin even if an earlier rule already
      // dropped the packet, so each rule's stream stays self-consistent.
      if (s.probability >= 1.0 || coins_[i].uniform01() < s.probability)
        drop = true;
    }
    return drop;
  }

 private:
  std::vector<DropSpec> specs_;
  const Topology* topo_;
  std::vector<SplitMix64> coins_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Protocol traits and expectations.
// ---------------------------------------------------------------------------

ProtocolTraits traitsOf(core::ProtocolKind kind, bool bootstrapArmed) {
  using core::ProtocolKind;
  ProtocolTraits t;
  switch (kind) {
    case ProtocolKind::kA1:
      // A1's stage-skip optimization is what blocks amnesiac rejoins: a
      // message whose own group proposed the max timestamp goes s1 -> s3
      // WITHOUT a second consensus, so its final order exists only in
      // the TS exchange the recovered process missed — it sticks at s1
      // and blocks the delivery test behind it. Full re-integration
      // needs TS-state transfer (ROADMAP).
      break;
    case ProtocolKind::kFritzke98:
    case ProtocolKind::kRodrigues98:
      // Crash-tolerant, uniform, genuine — and amnesia-recoverable:
      // Fritzke98 never skips stages, so the whole ordering history is
      // in the consensus-instance stream a rejoin replays (decision
      // retransmission + round timeouts); Rodrigues re-collects votes
      // after the retraction re-introduces pending messages. Verified by
      // the crash-recover matrix cells, which cast past the recovery.
      t.recoveredRejoins = true;
      break;
    case ProtocolKind::kDelporte00:
      break;  // ring-token state is lost with the incarnation
    case ProtocolKind::kSkeen87:
      t.toleratesCrashes = false;  // [2] assumes a failure-free system
      break;
    case ProtocolKind::kViaBcast:
    case ProtocolKind::kA2:
      // Broadcast-based: every process participates. Same replay gap as
      // A1 for the rejoin (observed in the crash-recover cells).
      t.genuine = false;
      break;
    case ProtocolKind::kVicente02:
      t.genuine = false;
      // Sequencer-based: a recovered process misses the sequence numbers
      // its dead incarnation consumed and can hold back later slots, so
      // post-recovery delivery is not guaranteed (observed in the
      // crash-recover-sweep cells).
      break;
    case ProtocolKind::kSousa02:
      t.genuine = false;
      t.uniform = false;  // optimistic, non-uniform by design [12]
      break;  // sequencer-based: same recovery gap as Vicente02
    case ProtocolKind::kDetMerge00:
      // [1]'s merge needs every publisher's frontier to advance: a crashed
      // publisher stalls delivery, so crash scenarios are out of scope.
      t.toleratesCrashes = false;
      t.genuine = false;
      break;
  }
  // The bootstrap plane transfers exactly the state whose loss is recorded
  // above (TS exchanges, ring tokens, sequencer counters, merge frontiers):
  // with it armed, every stack's recovered processes rejoin (pinned by the
  // RejoinSmoke suite in tests/test_bootstrap.cpp).
  if (bootstrapArmed) t.recoveredRejoins = true;
  return t;
}

const char* protocolTestName(core::ProtocolKind kind) {
  using core::ProtocolKind;
  switch (kind) {
    case ProtocolKind::kA1: return "A1";
    case ProtocolKind::kFritzke98: return "Fritzke98";
    case ProtocolKind::kDelporte00: return "Ring";
    case ProtocolKind::kRodrigues98: return "Rodrigues98";
    case ProtocolKind::kViaBcast: return "ViaBcast";
    case ProtocolKind::kSkeen87: return "Skeen87";
    case ProtocolKind::kA2: return "A2";
    case ProtocolKind::kSousa02: return "Sousa02";
    case ProtocolKind::kVicente02: return "Vicente02";
    case ProtocolKind::kDetMerge00: return "DetMerge00";
  }
  return "Unknown";
}

PropertyExpectations defaultExpectations(core::ProtocolKind kind,
                                         bool anyCrashes, bool anyDrops) {
  const ProtocolTraits t = traitsOf(kind);
  PropertyExpectations e;
  e.uniform = t.uniform;
  // Arbitrary omission faults void the quasi-reliable-channel assumption:
  // delivery obligations (validity/agreement) no longer bind, but safety
  // (integrity + prefix order) must survive any loss pattern.
  e.checkLiveness = !anyDrops;
  // Genuineness only holds with its preconditions intact: a multicast
  // protocol may legitimately contact extra groups while handling faults.
  e.checkGenuineness = t.genuine && !anyCrashes && !anyDrops;
  return e;
}

Scenario& Scenario::withDefaultExpectations() {
  const bool anyChurn = churn.has_value() && churn->cycles > 0;
  const bool anyCrashes =
      !crashes.empty() || anyChurn ||
      (randomCrashes.has_value() && randomCrashes->perGroup > 0);
  bool anyDrops;
  if (config.stack.reliableChannels) {
    // The retransmitting substrate (src/channel/) restores the quasi-
    // reliable-channel assumption through transient faults: iid loss
    // (lossRate < 1) and HEALING partitions are masked by retransmission,
    // so the full delivery obligations bind. Only permanent omission still
    // voids them: DropSpec filters match retransmitted copies too (a
    // matched link stays lossy forever), and a partition that never heals
    // leaves the retransmit timers firing into a void.
    bool unhealedCut = false;
    for (const auto& p : partitions)
      if (p.until == kTimeNever) unhealedCut = true;
    anyDrops = !drops.empty() || unhealedCut;
  } else {
    // A partition (or raw wire loss) voids the quasi-reliable-channel
    // assumption exactly like an omission fault: copies sent across the
    // cut are lost for good, so delivery obligations no longer bind
    // (safety still must).
    anyDrops = !drops.empty() || !partitions.empty() ||
               randomPartitions.has_value() || config.lossRate > 0;
  }
  expect = defaultExpectations(config.protocol, anyCrashes, anyDrops);
  // Recovered-delivery is a LIVENESS obligation: it only binds where the
  // other delivery obligations do (drops/partitions void it too — a lost
  // copy can be exactly the one addressed to the recovered process).
  if (expect.checkLiveness &&
      (!recoveries.empty() || randomRecoveries.has_value() || anyChurn))
    expect.checkRecoveredDelivery =
        traitsOf(config.protocol, config.stack.bootstrap.armed)
            .recoveredRejoins;
  return *this;
}

// ---------------------------------------------------------------------------
// Checking and fingerprints.
// ---------------------------------------------------------------------------

verify::Violations checkExpectations(const core::RunResult& r,
                                     const PropertyExpectations& exp,
                                     const verify::StreamingOrderChecker* order) {
  verify::Violations out;
  auto append = [&out](verify::Violations v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  const auto ctx = r.checkContext();
  append(verify::checkUniformIntegrity(ctx));
  if (order != nullptr) {
    // Streaming verdict, built incrementally during the run: no O(n^2)
    // end-of-run sequence comparison.
    append(exp.uniform ? order->violations() : order->violations(r.correct));
  } else {
    append(exp.uniform ? verify::checkUniformPrefixOrder(ctx)
                       : verify::checkPrefixOrderCorrectOnly(ctx));
  }
  if (exp.checkLiveness) {
    append(verify::checkValidity(ctx));
    append(exp.uniform ? verify::checkUniformAgreement(ctx)
                       : verify::checkAgreementCorrectOnly(ctx));
  }
  if (exp.checkRecoveredDelivery)
    append(verify::checkRecoveredDelivery(ctx));
  if (exp.checkGenuineness)
    append(verify::checkGenuineness(ctx, r.genuineness));
  if (exp.quiescenceBudget)
    append(verify::checkQuiescence(ctx, r.lastAlgoSend,
                                   *exp.quiescenceBudget));
  if (r.trace.deliveries.size() < exp.minDeliveries) {
    std::ostringstream os;
    os << "stall: only " << r.trace.deliveries.size() << " deliveries, "
       << "expected at least " << exp.minDeliveries;
    out.push_back(os.str());
  }
  return out;
}

std::string traceFingerprint(const core::RunResult& r) {
  std::ostringstream os;
  os << "topo n=" << r.topo.numProcesses() << " m=" << r.topo.numGroups();
  for (GroupId g = 0; g < r.topo.numGroups(); ++g)
    os << " " << r.topo.groupSize(g);
  os << "\ncorrect";
  for (ProcessId p : r.correct) os << " " << p;
  os << "\n";
  for (const auto& c : r.trace.casts)
    os << "C p" << c.process << " m" << c.msg << " d" << c.dest.bits()
       << " lc" << c.lamport << " t" << c.when << "\n";
  for (const auto& d : r.trace.deliveries)
    os << "D p" << d.process << " m" << d.msg << " lc" << d.lamport << " t"
       << d.when << " o" << d.order << "\n";
  // Fault-plane v2 lines are emitted ONLY when the corresponding events
  // exist: every pre-v2 run fingerprint stays byte-identical.
  for (const auto& rec : r.trace.recoveries)
    os << "R p" << rec.process << " t" << rec.when << "\n";
  for (const auto& p : r.trace.partitions)
    os << "P " << (p.cut ? "cut" : "heal") << " s" << p.side << " t"
       << p.when << "\n";
  if (r.trace.linkDrops != 0) os << "LD " << r.trace.linkDrops << "\n";
  if (r.trace.lossDrops != 0) os << "XD " << r.trace.lossDrops << "\n";
  for (int l = 0; l < kNumLayers; ++l) {
    const auto& c = r.traffic.at(static_cast<Layer>(l));
    // The channel and bootstrap layers postdate the golden corpus: their
    // lines appear only when such traffic exists, so channels-off /
    // bootstrap-unarmed fingerprints (and the loss-drop line above) stay
    // byte-identical to the pre-substrate runs.
    if ((static_cast<Layer>(l) == Layer::kChannel ||
         static_cast<Layer>(l) == Layer::kBootstrap) &&
        c.intra == 0 && c.inter == 0)
      continue;
    os << "T " << layerName(static_cast<Layer>(l)) << " intra=" << c.intra
       << " inter=" << c.inter << "\n";
  }
  os << "lastAlgoSend=" << r.lastAlgoSend << " end=" << r.endTime << "\n";
  return os.str();
}

std::string ScenarioResult::report() const {
  std::ostringstream os;
  os << name << " (seed " << seed << "): " << violations.size()
     << " violation(s)";
  for (const auto& v : violations) os << "\n  " << v;
  return os.str();
}

// ---------------------------------------------------------------------------
// ScenarioRunner.
// ---------------------------------------------------------------------------

ScenarioResult ScenarioRunner::run() const {
  const Scenario& s = scenario_;
  core::RunConfig cfg = s.config;
  if (s.latency) cfg.latency = latencyModelFor(*s.latency);
  // Recovery runs need the consensus round timeout armed (an amnesiac
  // rejoin can be an alive-but-silent round coordinator; see StackConfig).
  // 500ms is ~2 worst-case preset round trips — long enough that only a
  // real stall fires it, short enough that an amnesiac catching up on a
  // backlog of decided instances (one timeout per instance) finishes
  // well inside the cell horizon.
  if ((!s.recoveries.empty() || s.randomRecoveries.has_value() ||
       s.churn.has_value()) &&
      cfg.stack.consensusRoundTimeout == 0)
    cfg.stack.consensusRoundTimeout = 500 * kMs;

  core::Experiment ex(cfg);
  const Topology& topo = ex.context().topology();
  const bool onSim = cfg.backend == exec::Backend::kSim;

  // Prefix order is checked incrementally from the observer plane while
  // the run progresses (verify/streaming.hpp); passive, so fingerprints
  // are unaffected. The observer registry is a sim facility: a threaded
  // run is checked from its merged trace instead (checkExpectations falls
  // back to the trace-based oracle when no streaming verdict is passed).
  verify::StreamingOrderChecker orderChecker(topo);
  if (onSim)
    ex.runtime().addObserver(&orderChecker,
                             sim::kObserveCasts | sim::kObserveDeliveries);

  ScenarioResult result;
  result.name = s.name;
  result.seed = cfg.seed;

  // Fault script: scripted crashes verbatim, random crashes derived from
  // the scenario seed.
  result.effectiveCrashes = s.crashes;
  if (s.randomCrashes) {
    auto extra = materializeCrashes(topo, *s.randomCrashes, cfg.seed);
    result.effectiveCrashes.insert(result.effectiveCrashes.end(),
                                   extra.begin(), extra.end());
  }

  // Recovery schedule: scripted verbatim, plus one seed-derived recovery
  // per effective crash. Recovered processes are excluded from the
  // streaming prefix-order pairs up front (their sequences restart
  // mid-run; the trace-based checkers skip them the same way).
  result.effectiveRecoveries = s.recoveries;
  if (s.randomRecoveries) {
    auto extra = materializeRecoveries(result.effectiveCrashes,
                                       *s.randomRecoveries, cfg.seed);
    result.effectiveRecoveries.insert(result.effectiveRecoveries.end(),
                                      extra.begin(), extra.end());
  }

  // Churn cycles: paired crash+recover schedules, appended to both.
  if (s.churn) {
    auto [crashes, recoveries] = materializeChurn(topo, *s.churn, cfg.seed);
    result.effectiveCrashes.insert(result.effectiveCrashes.end(),
                                   crashes.begin(), crashes.end());
    result.effectiveRecoveries.insert(result.effectiveRecoveries.end(),
                                      recoveries.begin(), recoveries.end());
  }

  for (const auto& c : result.effectiveCrashes) ex.crashAt(c.pid, c.when);
  for (const auto& rec : result.effectiveRecoveries) {
    ex.recoverAt(rec.pid, rec.when);
    orderChecker.excludeProcess(rec.pid);
  }

  // Partition windows: scripted verbatim + seed-derived healing cuts.
  result.effectivePartitions = s.partitions;
  if (s.randomPartitions) {
    auto extra =
        materializePartitions(topo, *s.randomPartitions, cfg.seed);
    result.effectivePartitions.insert(result.effectivePartitions.end(),
                                      extra.begin(), extra.end());
  }
  for (const auto& p : result.effectivePartitions)
    ex.partitionAt(p.side, p.from, p.until);

  if (!s.drops.empty()) {
    // The engine lives in the filter closure; per-rule coin streams are
    // seeded from the scenario seed, so reruns replay identical drops.
    auto engine =
        std::make_shared<DropEngine>(s.drops, topo, cfg.seed);
    auto* rt = &ex.runtime();
    ex.runtime().setDropFilter(
        [engine, rt](ProcessId from, ProcessId to, const Payload& p) {
          return (*engine)(from, to, p, rt->now());
        });
  }

  // Workload: generated casts re-derive from the scenario seed so sweeps
  // explore different sender/destination/arrival patterns per seed.
  if (s.workload) {
    workload::Spec spec = *s.workload;
    spec.seed = SplitMix64(cfg.seed).fork(spec.seed).next();
    ex.addWorkload(std::move(spec));
  }
  for (const auto& c : s.casts) {
    const GroupSet dest = c.dest.empty() ? topo.allGroups() : c.dest;
    ex.castAt(c.when, c.sender, dest, c.body);
  }

  result.run = ex.run(s.runUntil);
  result.violations = checkExpectations(result.run, s.expect,
                                        onSim ? &orderChecker : nullptr);
  result.fingerprint = traceFingerprint(result.run);
  return result;
}

int resolveJobs(int jobs, int maxUseful) {
  if (maxUseful < 1) maxUseful = 1;
  if (jobs <= 0) {
    if (const char* env = std::getenv("WANMC_JOBS")) jobs = std::atoi(env);
    if (jobs <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      jobs = hw > 0 ? static_cast<int>(hw) : 1;
    }
  }
  return std::min(jobs, maxUseful);
}

std::vector<ScenarioResult> ScenarioRunner::sweepSeeds(uint64_t firstSeed,
                                                       int count,
                                                       int jobs) const {
  std::vector<ScenarioResult> out(static_cast<size_t>(std::max(count, 0)));
  if (count <= 0) return out;

  // Each seed builds its own Experiment/Runtime from a private Scenario
  // copy, and the library holds no mutable globals, so seeds are
  // embarrassingly parallel. Results are written by index: output order is
  // by seed, independent of worker scheduling.
  auto runSeed = [&](int i) {
    Scenario s = scenario_;
    s.config.seed = firstSeed + static_cast<uint64_t>(i);
    s.name = scenario_.name + "/seed" + std::to_string(s.config.seed);
    out[static_cast<size_t>(i)] = ScenarioRunner(std::move(s)).run();
  };

  // A threaded-backend seed already runs one OS thread per process; fanning
  // seeds out on top would oversubscribe the machine AND distort the very
  // wall-clock latencies the backend exists to measure. Serial, always.
  const int n = scenario_.config.backend == exec::Backend::kSim
                    ? resolveJobs(jobs, count)
                    : 1;
  if (n <= 1) {
    for (int i = 0; i < count; ++i) runSeed(i);
    return out;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    workers.emplace_back([&]() {
      for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1))
        runSeed(i);
    });
  }
  for (auto& t : workers) t.join();
  return out;
}

// ---------------------------------------------------------------------------
// The standard fault matrix.
// ---------------------------------------------------------------------------

std::vector<Scenario> standardFaultMatrix(core::ProtocolKind kind,
                                          const MatrixOptions& opt) {
  const ProtocolTraits traits = traitsOf(kind);
  const std::string base = core::protocolName(kind);

  auto makeBase = [&](const char* tag, LatencyPreset latency) {
    Scenario s;
    s.name = base;  // built by append: avoids the GCC 12 -Wrestrict
    s.name += "/";  // false positive on chained operator+
    s.name += tag;
    s.name += "/";
    s.name += latencyPresetName(latency);
    s.config.groups = opt.groups;
    s.config.procsPerGroup = opt.procsPerGroup;
    s.config.protocol = kind;
    s.config.seed = opt.firstSeed;
    s.latency = latency;
    s.workload = workload::Spec::closedLoop(opt.casts, opt.castInterval,
                                            std::min(2, opt.groups));
    s.runUntil = 900 * kSec;
    return s;
  };

  std::vector<Scenario> out;

  // Failure-free cells: every latency preset.
  for (LatencyPreset l :
       {LatencyPreset::kLan, LatencyPreset::kWan, LatencyPreset::kMixed}) {
    Scenario s = makeBase("ok", l);
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }

  if (traits.toleratesCrashes) {
    // Random minority crashes per group, WAN and mixed jitter.
    for (LatencyPreset l : {LatencyPreset::kWan, LatencyPreset::kMixed}) {
      Scenario s = makeBase("crash-minority", l);
      s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
    // Sender crashes right after its first cast (process 0 casts at t=1ms).
    // Broadcast protocols address all groups (empty dest = all).
    {
      Scenario s = makeBase("crash-sender", LatencyPreset::kWan);
      s.workload.reset();
      const GroupSet dest = core::isBroadcastProtocol(kind)
                                ? GroupSet{}
                                : GroupSet::of({0, 1});
      s.casts.push_back(ScheduledCast{kMs, 0, dest, "x"});
      for (int i = 1; i < opt.casts; ++i) {
        std::string body = "w";  // append: GCC 12 -Wrestrict, see makeBase
        body += std::to_string(i);
        s.casts.push_back(ScheduledCast{kMs + i * opt.castInterval, 1, dest,
                                        std::move(body)});
      }
      s.crashes.push_back(CrashSpec{0, kMs + 1});
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
  }

  // Omission cells: safety must survive any loss pattern. Liveness checks
  // are off (defaultExpectations) — lost packets legitimately stall runs.
  {
    Scenario s = makeBase("drop-protocol-lossy", LatencyPreset::kWan);
    DropSpec d;
    d.layer = Layer::kProtocol;
    d.interGroupOnly = true;
    d.probability = 0.3;
    s.drops.push_back(d);
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }
  {
    Scenario s = makeBase("drop-window-blackout", LatencyPreset::kWan);
    DropSpec d;  // total inter-group blackout for a WAN round-trip
    d.interGroupOnly = true;
    d.activeFrom = 150 * kMs;
    d.activeUntil = 400 * kMs;
    s.drops.push_back(d);
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }
  if (traits.toleratesCrashes) {
    // Crashes AND probabilistic loss together.
    Scenario s = makeBase("crash-plus-drop", LatencyPreset::kMixed);
    s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
    DropSpec d;
    d.interGroupOnly = true;
    d.probability = 0.15;
    s.drops.push_back(d);
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  // Workload-realism cells (PR 3): open-loop arrivals and skewed load, the
  // regimes the rotating-sender schedule could not express. Failure-free,
  // so the full trait-derived property suite (incl. liveness) applies.
  {
    // Open-loop Poisson arrivals: bursts and quiet stretches at the same
    // mean rate as the closed-loop cells.
    Scenario s = makeBase("open-poisson", LatencyPreset::kWan);
    s.workload->model = workload::Model::kOpenLoopPoisson;
    s.workload->meanGap = opt.castInterval;
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  {
    // On/off phases: a burst of back-to-back casts, then silence longer
    // than a WAN round trip, repeated — exercises quiescence/restart paths.
    Scenario s = makeBase("open-burst", LatencyPreset::kMixed);
    s.workload->model = workload::Model::kBursty;
    s.workload->onDuration = opt.castInterval;
    s.workload->offDuration = 300 * kMs;
    s.workload->burstGap = std::max<SimTime>(opt.castInterval / 4, kMs);
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  {
    // Zipf-skewed hotspots: one hot sender, popular destination groups.
    Scenario s = makeBase("skew-zipf", LatencyPreset::kWan);
    s.workload->senderZipf = 1.2;
    s.workload->destZipf = 0.8;
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  if (traits.toleratesCrashes) {
    // Open-loop load does not pause for fault handling: minority crashes
    // while Poisson arrivals keep coming.
    Scenario s = makeBase("open-poisson-crash", LatencyPreset::kWan);
    s.workload->model = workload::Model::kOpenLoopPoisson;
    s.workload->meanGap = opt.castInterval;
    s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  // Fault-plane v2 cells (appended so every pre-v2 cell keeps its name and
  // fingerprint). Heartbeat-FD runs never quiesce — the detector ticks
  // forever — so these cells bound the horizon explicitly: 30 simulated
  // seconds is ~50 WAN round trips past the last arrival.
  const SimTime v2Horizon = 30 * kSec;

  {
    // The real detector instead of the oracle, failure-free: exercises
    // heartbeat traffic (and, for cross-group stacks, the remote lanes)
    // under WAN jitter with no suspicion ever justified.
    Scenario s = makeBase("hb-ok", LatencyPreset::kWan);
    s.config.stack.fdKind = fd::FdKind::kHeartbeat;
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  if (traits.toleratesCrashes) {
    // Minority crashes under the heartbeat detector: suspicion now comes
    // from timeouts, not the oracle — for Rodrigues-style cross-group
    // consensus this is the remote-lane path (a remote crash must be
    // suspected or the vote quorum hangs).
    Scenario s = makeBase("hb-crash-minority", LatencyPreset::kWan);
    s.config.stack.fdKind = fd::FdKind::kHeartbeat;
    s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  // A partition that heals: group 0 is cut off for three WAN round trips.
  // Copies crossing the cut are lost for good (no retransmission below
  // the protocols), so like the blackout cells these check safety only.
  for (bool hb : {false, true}) {
    Scenario s = makeBase(hb ? "partition-heal-hb" : "partition-heal",
                          LatencyPreset::kWan);
    if (hb) s.config.stack.fdKind = fd::FdKind::kHeartbeat;
    s.partitions.push_back(
        PartitionSpec{GroupSet::single(0), 150 * kMs, 450 * kMs});
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  if (traits.toleratesCrashes) {
    // Crash + recovery, scripted: one process of group 0 is down for two
    // WAN round trips, then rejoins with reset state. Integrity binds per
    // incarnation; uniform order skips the amnesiac; and when the
    // protocol re-integrates recovered processes, they must deliver the
    // post-recovery messages every correct addressee delivered.
    for (bool hb : {false, true}) {
      Scenario s = makeBase(hb ? "crash-recover-hb" : "crash-recover",
                            LatencyPreset::kWan);
      if (hb) s.config.stack.fdKind = fd::FdKind::kHeartbeat;
      s.crashes.push_back(CrashSpec{1, 200 * kMs});
      s.recoveries.push_back(RecoverSpec{1, 500 * kMs});
      // Keep arrivals coming well past the recovery instant: the
      // recovered-delivery obligation is vacuous unless messages are
      // cast AFTER the rejoin (the rotating senders include the
      // recovered process itself — alive again, it casts again).
      s.workload->count = opt.casts + 4;
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
    {
      // Seed-derived minority crashes, every victim recovering after a
      // seed-derived delay, under adversarial jitter.
      Scenario s = makeBase("crash-recover-sweep", LatencyPreset::kMixed);
      s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
      s.randomRecoveries = RandomRecoveries{};
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
    {
      // Partition + recovery combined: the healing cut and the amnesiac
      // rejoin interact (suspicion from the partition must retract while
      // the recovered process re-integrates). Safety-only, like every
      // partition cell.
      Scenario s = makeBase("partition-recover", LatencyPreset::kWan);
      s.partitions.push_back(
          PartitionSpec{GroupSet::single(1), 150 * kMs, 450 * kMs});
      s.crashes.push_back(CrashSpec{1, 200 * kMs});
      s.recoveries.push_back(RecoverSpec{1, 600 * kMs});
      s.workload->count = opt.casts + 4;  // arrivals past the recovery
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
  }

  // Batching cells (PR 6, appended so every earlier cell keeps its name
  // and fingerprint): the batching plane accumulates casts per (sender,
  // destination-set) window and the stacks order ONE carrier per batch.
  // Arrivals are dense and Zipf-skewed so multi-cast batches actually
  // form — uniform draws spread the batch keys and degenerate to
  // singleton batches.
  {
    // Batching under open-loop Poisson load, failure-free: the full
    // trait-derived suite (incl. liveness — every window flushes).
    Scenario s = makeBase("batch-open-poisson", LatencyPreset::kWan);
    s.config.stack.batchWindow = 50 * kMs;
    s.config.stack.batchMaxSize = 4;
    s.workload->model = workload::Model::kOpenLoopPoisson;
    s.workload->meanGap = std::max<SimTime>(opt.castInterval / 8, kMs);
    s.workload->senderZipf = 1.5;
    s.workload->destZipf = 1.5;
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  if (traits.toleratesCrashes) {
    // Batching × crashes: windows open when senders die — dead-sender
    // batches must be dropped (their casts bind no obligations), and
    // correct senders' batches must still flush and deliver.
    Scenario s = makeBase("batch-crash", LatencyPreset::kWan);
    s.config.stack.batchWindow = 60 * kMs;
    s.config.stack.batchMaxSize = 3;
    s.workload->model = workload::Model::kOpenLoopPoisson;
    s.workload->meanGap = std::max<SimTime>(opt.castInterval / 4, kMs);
    s.workload->senderZipf = 1.5;
    s.workload->destZipf = 1.5;
    s.randomCrashes = RandomCrashes{1, 50 * kMs, kSec, 0xc4a5};
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }
  {
    // Batching × healing partition: carriers crossing the cut are lost
    // for good like any packet, so safety-only (see partition-heal) —
    // but a lost carrier must lose its casts ATOMICALLY (prefix order
    // over constituents survives partial connectivity).
    Scenario s = makeBase("batch-partition-heal", LatencyPreset::kWan);
    s.config.stack.batchWindow = 60 * kMs;
    s.config.stack.batchMaxSize = 4;
    s.workload->model = workload::Model::kOpenLoopPoisson;
    s.workload->meanGap = std::max<SimTime>(opt.castInterval / 8, kMs);
    s.workload->senderZipf = 1.5;
    s.workload->destZipf = 1.5;
    s.partitions.push_back(
        PartitionSpec{GroupSet::single(0), 150 * kMs, 450 * kMs});
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  // Reliable-channel cells (PR 7, appended so every earlier cell keeps its
  // name and fingerprint): the retransmitting substrate under the faults
  // that void liveness for bare stacks. With channels armed these are the
  // FULL property suites — transient loss and healing cuts must be masked,
  // so validity/agreement bind again (see withDefaultExpectations).
  {
    // The partition-heal cell graduated to a liveness cell: retransmit
    // timers outlive the 300ms cut, so every copy lost across it is
    // re-sent after the heal and all obligations must be met.
    Scenario s = makeBase("chan-partition-heal", LatencyPreset::kWan);
    s.config.stack.reliableChannels = true;
    s.partitions.push_back(
        PartitionSpec{GroupSet::single(0), 150 * kMs, 450 * kMs});
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }
  // iid per-copy wire loss at 1%, 5%, and 10%: the classic lossy-WAN
  // regime. Without channels these rates would void liveness (a lost copy
  // is gone for good); with them the go-back-N/NACK machinery must recover
  // every gap, so the full suite applies at every rate.
  for (double lossP : {0.01, 0.05, 0.10}) {
    std::string tag = "chan-loss-p";  // append: GCC 12 -Wrestrict
    tag += std::to_string(static_cast<int>(lossP * 100 + 0.5));
    Scenario s = makeBase(tag.c_str(), LatencyPreset::kWan);
    s.config.stack.reliableChannels = true;
    s.config.lossRate = lossP;
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    s.expect.minDeliveries = 1;
    out.push_back(std::move(s));
  }
  if (traits.toleratesCrashes) {
    // Channels x crash-recovery: the incarnation/epoch machinery is what
    // keeps a recovered endpoint from replaying its dead incarnation's
    // sequence space. Same script as crash-recover, channels armed.
    Scenario s = makeBase("chan-crash-recover", LatencyPreset::kWan);
    s.config.stack.reliableChannels = true;
    s.crashes.push_back(CrashSpec{1, 200 * kMs});
    s.recoveries.push_back(RecoverSpec{1, 500 * kMs});
    s.workload->count = opt.casts + 4;  // arrivals past the recovery
    s.runUntil = v2Horizon;
    s.withDefaultExpectations();
    out.push_back(std::move(s));
  }

  // Bootstrap cells (PR 9, appended so every earlier cell keeps its name
  // and fingerprint): the state-transfer plane armed. Recovered processes
  // now REJOIN — traitsOf(kind, armed) flips recoveredRejoins for every
  // stack, so these are the cells where checkRecoveredDelivery binds
  // across the whole protocol zoo, not just the two natural rejoiners.
  if (traits.toleratesCrashes) {
    {
      // The crash-recover script with the plane armed: the rejoiner must
      // deliver everything cast after its recovery.
      Scenario s = makeBase("boot-crash-recover", LatencyPreset::kWan);
      s.config.stack.bootstrap.armed = true;
      s.crashes.push_back(CrashSpec{1, 200 * kMs});
      s.recoveries.push_back(RecoverSpec{1, 500 * kMs});
      s.workload->count = opt.casts + 4;  // arrivals past the recovery
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
    {
      // Partition + recovery, with BOTH substrates armed: retransmission
      // masks the healing cut (liveness binds again, unlike the bare
      // partition-recover cell), then a crash+rejoin runs on the healed
      // network, so the transferred state spans the partition era. The
      // crash sits well past the heal: a victim that dies while its
      // partition-dropped copies are still on the ARQ's backed-off retry
      // schedule loses them forever (its channel state dies with it),
      // which non-uniform stacks without a second data path — Sousa02 has
      // no echo — legitimately cannot mask. The in-partition handshake
      // path is covered by test_bootstrap.
      Scenario s = makeBase("boot-partition-recover", LatencyPreset::kWan);
      s.config.stack.bootstrap.armed = true;
      s.config.stack.reliableChannels = true;
      s.partitions.push_back(
          PartitionSpec{GroupSet::single(1), 150 * kMs, 450 * kMs});
      s.crashes.push_back(CrashSpec{1, 1500 * kMs});
      s.recoveries.push_back(RecoverSpec{1, 1900 * kMs});
      s.workload->count = opt.casts + 20;  // arrivals past the recovery
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      out.push_back(std::move(s));
    }
    // Long-horizon churn: seed-derived crash+recover cycles marching
    // through the membership while open-loop Poisson arrivals keep the
    // protocol under load — every victim must rejoin mid-traffic, cycle
    // after cycle, under the oracle and the heartbeat detector alike.
    // Arrivals are stretched to span the whole churn window (a cycle
    // every 2.5s for ~15s), not front-loaded like the closed-loop cells.
    for (bool hb : {false, true}) {
      Scenario s = makeBase(hb ? "churn-open-hb" : "churn-open",
                            LatencyPreset::kWan);
      if (hb) s.config.stack.fdKind = fd::FdKind::kHeartbeat;
      s.config.stack.bootstrap.armed = true;
      s.churn = ChurnSpec{};
      s.workload->model = workload::Model::kOpenLoopPoisson;
      s.workload->meanGap = 600 * kMs;
      s.workload->count = opt.casts + 20;
      s.runUntil = v2Horizon;
      s.withDefaultExpectations();
      s.expect.minDeliveries = 1;
      out.push_back(std::move(s));
    }
  }

  return out;
}

std::vector<ScenarioResult> runStandardMatrix(core::ProtocolKind kind,
                                              const MatrixOptions& opt,
                                              int jobs) {
  std::vector<ScenarioResult> out;
  for (const Scenario& s : standardFaultMatrix(kind, opt)) {
    auto sweep = ScenarioRunner(s).sweepSeeds(opt.firstSeed,
                                              opt.seedsPerCell, jobs);
    out.insert(out.end(), std::make_move_iterator(sweep.begin()),
               std::make_move_iterator(sweep.end()));
  }
  return out;
}

}  // namespace wanmc::testing
