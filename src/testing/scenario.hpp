// Deterministic fault-injection harness: ScenarioRunner.
//
// A Scenario is a declarative description of one simulated run — topology,
// protocol, workload, scripted crash schedule, message-drop filters, and a
// latency-model preset — plus the property suite the run must satisfy.
// ScenarioRunner materializes the scenario into a core::Experiment, runs it,
// checks every verify/properties invariant the scenario demands (validity,
// uniform agreement, uniform integrity, prefix/total order, genuineness),
// and returns the violations together with a canonical trace fingerprint.
//
// Everything is a pure function of the scenario seed: rerunning the same
// scenario produces a byte-identical fingerprint, which is what makes crash
// and omission bugs reproducible from a single uint64.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "core/experiment.hpp"
#include "verify/properties.hpp"
#include "verify/streaming.hpp"
#include "workload/spec.hpp"

namespace wanmc::testing {

// ---------------------------------------------------------------------------
// Latency-model presets.
// ---------------------------------------------------------------------------

enum class LatencyPreset {
  kLan,       // every link 1-2ms: a single site, inter ~= intra
  kWan,       // the paper's WAN: 1-2ms intra, 95-110ms inter (jittered)
  kWanFixed,  // jitter-free WAN (0.1ms / 100ms): theorem interleavings
  kMixed,     // 1-2ms intra, 20-80ms inter: heavy jitter, adversarial
};

[[nodiscard]] sim::LatencyModel latencyModelFor(LatencyPreset p);
[[nodiscard]] const char* latencyPresetName(LatencyPreset p);

// ---------------------------------------------------------------------------
// Fault scripts.
// ---------------------------------------------------------------------------

// Crash process `pid` at simulated time `when` (crash-stop).
struct CrashSpec {
  ProcessId pid = kNoProcess;
  SimTime when = 0;
};

// Randomized crash plan, materialized deterministically from the scenario
// seed: up to `perGroup` distinct victims per group, each at a time drawn
// uniformly from [earliest, latest]. `perGroup` is clamped to a minority of
// each group so consensus stays solvable (the paper's f < n_g/2 assumption).
struct RandomCrashes {
  int perGroup = 1;
  SimTime earliest = 50 * kMs;
  SimTime latest = kSec;
  uint64_t salt = 0xc4a5;  // folded with the scenario seed
};

// Recover process `pid` at simulated time `when`: a FRESH node (reset
// protocol state, re-registered timers) replaces the crashed one — the
// crash-recovery model without stable storage. A no-op if the process is
// alive at `when`.
struct RecoverSpec {
  ProcessId pid = kNoProcess;
  SimTime when = 0;
};

// Seed-derived recovery plan: every crash of the effective crash schedule
// (scripted + materialized random crashes) recovers after a delay drawn
// uniformly from [delayMin, delayMax].
struct RandomRecoveries {
  SimTime delayMin = 200 * kMs;
  SimTime delayMax = 600 * kMs;
  uint64_t salt = 0x9ec0;  // folded with the scenario seed
};

// Seed-derived long-horizon churn: `cycles` consecutive crash+recover
// cycles, one victim per cycle, the c-th crash at exactly
// start + c * period and its recovery after a downtime drawn uniformly
// from [downMin, downMax]. downMax < period keeps at most one process
// down at any instant, so every group retains a live majority throughout.
// Victims are drawn (per cycle, seed-derived) from groups large enough
// that one crash is still a strict minority.
struct ChurnSpec {
  int cycles = 6;
  SimTime start = 2 * kSec;
  SimTime period = 2500 * kMs;
  SimTime downMin = 400 * kMs;
  SimTime downMax = kSec;
  uint64_t salt = 0xc0a7;  // folded with the scenario seed
};

// Cut the groups in `side` off from the rest of the topology during
// [from, until) — copies sent across the cut are dropped deterministically
// and the link heals at `until` (kTimeNever: never heals).
struct PartitionSpec {
  GroupSet side{};
  SimTime from = 0;
  SimTime until = kTimeNever;
};

// Seed-derived partition plan: `count` healing partitions, each cutting
// one random group for a duration in [durMin, durMax], starting within
// [earliest, latest].
struct RandomPartitions {
  int count = 1;
  SimTime earliest = 100 * kMs;
  SimTime latest = 800 * kMs;
  SimTime durMin = 150 * kMs;
  SimTime durMax = 400 * kMs;
  uint64_t salt = 0x9a27;  // folded with the scenario seed
};

// Declarative message-drop rule. A packet is dropped when EVERY restriction
// matches and the (deterministic) coin comes up under `probability`.
// Unset fields match anything.
struct DropSpec {
  std::optional<Layer> layer;       // only packets of this layer
  ProcessId from = kNoProcess;      // only packets sent by this process
  ProcessId to = kNoProcess;        // only packets to this process
  GroupId fromGroup = kNoGroup;     // only packets leaving this group
  GroupId toGroup = kNoGroup;       // only packets entering this group
  bool interGroupOnly = false;      // only packets crossing a group border
  SimTime activeFrom = 0;           // drop window start (inclusive)
  SimTime activeUntil = kTimeNever; // drop window end (exclusive)
  double probability = 1.0;         // drop chance per matching packet
  uint64_t salt = 0xd309;           // folded with the scenario seed
};

// Materialize a random crash plan against a topology. Exposed so tests can
// assert schedule determinism directly.
[[nodiscard]] std::vector<CrashSpec> materializeCrashes(
    const Topology& topo, const RandomCrashes& plan, uint64_t seed);

// Materialize a random recovery plan against an effective crash schedule
// (one recovery per crash, delay drawn per crash in schedule order).
[[nodiscard]] std::vector<RecoverSpec> materializeRecoveries(
    const std::vector<CrashSpec>& crashes, const RandomRecoveries& plan,
    uint64_t seed);

// Materialize a random partition plan against a topology.
[[nodiscard]] std::vector<PartitionSpec> materializePartitions(
    const Topology& topo, const RandomPartitions& plan, uint64_t seed);

// Materialize a churn plan against a topology: paired crash and recovery
// schedules of equal length, in cycle order. Exposed for determinism tests.
[[nodiscard]] std::pair<std::vector<CrashSpec>, std::vector<RecoverSpec>>
materializeChurn(const Topology& topo, const ChurnSpec& plan, uint64_t seed);

// ---------------------------------------------------------------------------
// Property expectations.
// ---------------------------------------------------------------------------

// Which invariants a run must satisfy. Safety (integrity + prefix order) is
// always checked; liveness obligations (validity + agreement) are optional
// because arbitrary message loss legitimately voids them, and uniformity is
// per-protocol (Sousa02 is non-uniform by design).
struct PropertyExpectations {
  bool uniform = true;          // uniform vs correct-only agreement & order
  bool checkLiveness = true;    // validity + agreement delivery obligations
  bool checkGenuineness = false;
  // Recovery semantics (fault plane v2): integrity always binds per
  // incarnation and uniform order skips recovered processes (see
  // verify::recoveredProcesses); this flag additionally demands that a
  // recovered process deliver every post-recovery message the correct
  // addressees all delivered (verify::checkRecoveredDelivery) — only
  // sound for protocols whose traits say recoveredRejoins.
  bool checkRecoveredDelivery = false;
  std::optional<SimTime> quiescenceBudget;  // if set, check quiescence
  size_t minDeliveries = 0;     // sanity floor: the run must not stall flat
};

// Per-protocol capabilities, used to pick sound expectations and to skip
// scenarios a protocol was never designed for (Skeen87 is failure-free).
struct ProtocolTraits {
  bool toleratesCrashes = true;
  bool uniform = true;    // uniform agreement under crashes
  bool genuine = true;    // only sender+addressees participate
  // Does an amnesiac recovered process re-integrate far enough to deliver
  // NEW messages (those cast after its recovery)? Protocols that gate
  // delivery on state the dead incarnation held (sequencer epochs, merge
  // frontiers, missed consensus instances) do not; set from observed
  // behavior under the recover matrix cells. With the bootstrap plane
  // armed (StackConfig::bootstrap) the state transfer closes exactly that
  // gap, so EVERY stack rejoins — pass bootstrapArmed to traitsOf.
  bool recoveredRejoins = false;
};
[[nodiscard]] ProtocolTraits traitsOf(core::ProtocolKind kind,
                                      bool bootstrapArmed = false);

// Short identifier-safe protocol name for parameterized gtest suites
// (core::protocolName contains spaces/brackets, which gtest rejects).
[[nodiscard]] const char* protocolTestName(core::ProtocolKind kind);

// Sound default expectations for `kind` in a run with/without crashes/drops.
[[nodiscard]] PropertyExpectations defaultExpectations(
    core::ProtocolKind kind, bool anyCrashes, bool anyDrops);

// ---------------------------------------------------------------------------
// Scenario and runner.
// ---------------------------------------------------------------------------

// One cast scheduled verbatim (in addition to any generated workload).
// An empty destination set means "all groups" (broadcast).
struct ScheduledCast {
  SimTime when = 0;
  ProcessId sender = 0;
  GroupSet dest{};
  std::string body{};
};

struct Scenario {
  std::string name = "scenario";
  core::RunConfig config{};                 // protocol, topology, seed
  std::optional<LatencyPreset> latency;     // overrides config.latency
  // Generated workload; its seed is folded with config.seed so sweeps
  // explore a different sender/destination/arrival pattern per seed.
  std::optional<workload::Spec> workload;
  std::vector<ScheduledCast> casts;
  std::vector<CrashSpec> crashes;           // scripted crash schedule
  std::optional<RandomCrashes> randomCrashes;  // + seed-derived crashes
  std::vector<RecoverSpec> recoveries;      // scripted recovery schedule
  std::optional<RandomRecoveries> randomRecoveries;  // + seed-derived
  std::optional<ChurnSpec> churn;           // + seed-derived churn cycles
  std::vector<PartitionSpec> partitions;    // scripted partition windows
  std::optional<RandomPartitions> randomPartitions;  // + seed-derived
  std::vector<DropSpec> drops;
  SimTime runUntil = 600 * kSec;
  PropertyExpectations expect{};

  // Derives expectations from traitsOf(config.protocol) and the fault
  // script. Returns *this for chaining.
  Scenario& withDefaultExpectations();
};

struct ScenarioResult {
  std::string name;
  uint64_t seed = 0;
  core::RunResult run;
  std::vector<CrashSpec> effectiveCrashes;  // scripted + materialized
  std::vector<RecoverSpec> effectiveRecoveries;
  std::vector<PartitionSpec> effectivePartitions;
  verify::Violations violations;
  std::string fingerprint;  // canonical trace serialization

  [[nodiscard]] bool ok() const { return violations.empty(); }
  // All violations joined, prefixed with the scenario name — for gtest.
  [[nodiscard]] std::string report() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario s) : scenario_(std::move(s)) {}

  // Builds a fresh Experiment and runs the scenario to completion. Pure in
  // the scenario: calling run() twice yields byte-identical fingerprints.
  [[nodiscard]] ScenarioResult run() const;

  // Reruns the scenario under `count` consecutive seeds starting at
  // `firstSeed` (overriding config.seed; workload, random crashes, and
  // probabilistic drops all re-derive from each seed).
  //
  // Seeds are fully independent Runtime instances, so the sweep fans out
  // over a thread pool. `jobs` = 0 picks the default: the WANMC_JOBS
  // environment variable if set, else hardware_concurrency. `jobs` = 1
  // runs serially. Results are ordered by seed regardless of the job
  // count, and every result is byte-identical to a serial run.
  [[nodiscard]] std::vector<ScenarioResult> sweepSeeds(uint64_t firstSeed,
                                                       int count,
                                                       int jobs = 0) const;

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

 private:
  Scenario scenario_;
};

// Canonical serialization of a finished run: topology, crash set, every
// cast and delivery with Lamport/wall stamps, per-layer traffic. Two runs
// are behaviorally identical iff their fingerprints are byte-identical.
[[nodiscard]] std::string traceFingerprint(const core::RunResult& r);

// Checks `r` against `exp`; returns all violations found. When `order` is
// non-null its streaming verdict replaces the trace-based O(n^2)
// final-sequence prefix-order comparison (the default path through
// ScenarioRunner — the trace-based checkers remain the offline oracle and
// are cross-checked against the streaming ones in tests).
[[nodiscard]] verify::Violations checkExpectations(
    const core::RunResult& r, const PropertyExpectations& exp,
    const verify::StreamingOrderChecker* order = nullptr);

// ---------------------------------------------------------------------------
// The shared crash/drop/seed matrix every protocol stack is tested under.
// ---------------------------------------------------------------------------

struct MatrixOptions {
  int groups = 3;
  int procsPerGroup = 3;
  int casts = 8;
  SimTime castInterval = 70 * kMs;
  int seedsPerCell = 2;     // seeds per (latency x fault) cell
  uint64_t firstSeed = 1;
};

// Builds the standard scenario matrix for `kind`: failure-free LAN/WAN/
// mixed runs, minority-crash runs, sender-crash runs, targeted and
// probabilistic drop runs — each swept over seedsPerCell seeds, with
// expectations derived from the protocol's traits. Scenarios a protocol
// cannot meet (crashes for Skeen87) are omitted.
[[nodiscard]] std::vector<Scenario> standardFaultMatrix(
    core::ProtocolKind kind, const MatrixOptions& opt = {});

// Runs the whole matrix and returns every result (one per scenario seed).
// Seed sweeps within each scenario use the thread pool (see sweepSeeds).
[[nodiscard]] std::vector<ScenarioResult> runStandardMatrix(
    core::ProtocolKind kind, const MatrixOptions& opt = {}, int jobs = 0);

// Resolves a job-count request: explicit `jobs` > 0 wins, else the
// WANMC_JOBS environment variable, else hardware_concurrency; always
// clamped to [1, maxUseful].
[[nodiscard]] int resolveJobs(int jobs, int maxUseful);

}  // namespace wanmc::testing
