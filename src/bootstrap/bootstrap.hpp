// The bootstrap plane: recovery state transfer for rejoining incarnations.
//
// When armed, a recovered process does not limp back in as an amnesiac —
// it runs a rejoin handshake before initiating protocol work:
//
//   1. The runtime rebuilds the crashed process; the plane marks the fresh
//      incarnation JOINING (protocols gate proposal initiation on it) and
//      arms a settle timer of interMax + intraMax + slack. Any send the
//      process missed while down reaches a live donor within that window,
//      so one snapshot taken after it is complete — no re-request protocol.
//   2. At settle, the rejoiner sends kRequest to a candidate donor
//      (same-group peers first, ascending, then the other groups: group-
//      scoped state — clocks, per-group consensus — only a groupmate can
//      donate). Peers whose failure detector freshly retracted the rejoiner
//      send kAnnounce, which promotes them to preferred donor.
//   3. A live donor serializes its order state (Participant::makeSnapshot)
//      and replies kOffer. A donor that is itself still joining replies
//      kDeny, which advances the rejoiner to the next candidate at once.
//   4. The rejoiner installs the snapshot (consensus decisions, rmcast
//      delivered set, protocol state, delivery-suffix replay) and resumes.
//      A retry timer re-issues the request against the next candidate if
//      the donor crashed or the reply was lost (e.g. an unhealed
//      partition): candidates cycle forever, so the rejoin completes as
//      soon as ANY donor is reachable.
//
// Sessions and incarnations: every packet carries the rejoiner's session
// (= its incarnation at request time). A process that crashes AGAIN while
// rejoining invalidates the session; offers addressed to the dead session
// are dropped as stale, and the plane's timers are incarnation-guarded
// Runtime timers, so no stale callback can fire into a newer incarnation.
//
// Accounting: bootstrap traffic rides Layer::kBootstrap — a substrate like
// the reliable-channel plane, excluded from the genuineness/quiescence
// accounting and from interAlgorithmic(), and visible in trace fingerprints
// only when the plane is armed and actually transfers (zero-traffic layers
// emit no fingerprint line). Unarmed runs are byte-identical to a build
// without this plane.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bootstrap/snapshot.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "fd/failure_detector.hpp"
#include "exec/context.hpp"

namespace wanmc::bootstrap {

struct Config {
  // Off (default): the plane is never constructed; every pre-existing run
  // is byte-identical. On: recovered processes run the rejoin handshake.
  bool armed = false;
  // Re-issue the snapshot request against the next candidate donor if no
  // offer arrived within this budget (donor crashed, reply partitioned
  // away...). Must exceed one WAN round trip.
  SimTime retry = 400 * kMs;
  // Settle slack added on top of interMax + intraMax before the first
  // request: covers scheduler same-instant ordering and the donor-side
  // processing of late copies.
  SimTime settleSlack = 50 * kMs;
};

struct BootstrapPayload final : Payload {
  enum class Kind : uint8_t { kAnnounce, kRequest, kOffer, kDeny };
  Kind kind = Kind::kRequest;
  uint32_t session = 0;  // rejoiner incarnation the exchange belongs to
  std::shared_ptr<const Snapshot> snapshot;  // kOffer only

  BootstrapPayload(Kind k, uint32_t s,
                   std::shared_ptr<const Snapshot> snap = nullptr)
      : kind(k), session(s), snapshot(std::move(snap)) {}
  [[nodiscard]] Layer layer() const override { return Layer::kBootstrap; }
  [[nodiscard]] std::string debugString() const override;
};

// One completed rejoin, for catch-up latency measurement (the Experiment
// surfaces these in RunResult).
struct Rejoin {
  ProcessId pid = kNoProcess;
  uint32_t session = 0;
  SimTime installedAt = 0;
  uint64_t suffixReplayed = 0;
};

class Plane {
 public:
  Plane(exec::Context& rt, Config cfg);

  Plane(const Plane&) = delete;
  Plane& operator=(const Plane&) = delete;

  // Called from every XcastNode constructor (each incarnation): resets the
  // process's endpoint, binds the Participant surface, and hooks the fresh
  // failure detector's retraction signal for donor announcements.
  void bind(ProcessId pid, Participant* node, fd::FailureDetector& fd);

  // Called by the node factory right after the fresh incarnation is built:
  // marks it joining and arms the settle timer.
  void onRecovered(ProcessId pid);

  // Layer::kBootstrap packets, routed here by StackNode::onMessage.
  void onMessage(ProcessId self, ProcessId from, const Payload& p);

  [[nodiscard]] const BootstrapStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Rejoin>& rejoins() const {
    return rejoins_;
  }
  [[nodiscard]] SimTime settle() const { return settle_; }
  [[nodiscard]] bool joining(ProcessId pid) const {
    return eps_[static_cast<size_t>(pid)].joining;
  }

 private:
  struct Endpoint {
    Participant* node = nullptr;
    bool joining = false;
    uint32_t session = 0;
    uint64_t attempt = 0;  // invalidates retry timers of superseded requests
    std::vector<ProcessId> candidates;  // same group first, then the rest
    size_t candIdx = 0;
    ProcessId preferred = kNoProcess;  // last kAnnounce sender
  };

  void sendRequest(ProcessId pid);
  void announce(ProcessId donor, ProcessId rejoiner);
  [[nodiscard]] Endpoint& ep(ProcessId pid) {
    return eps_[static_cast<size_t>(pid)];
  }

  exec::Context& rt_;
  Config cfg_;
  SimTime settle_ = 0;
  std::vector<Endpoint> eps_;
  BootstrapStats stats_;
  std::vector<Rejoin> rejoins_;
};

}  // namespace wanmc::bootstrap
