#include "bootstrap/bootstrap.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace wanmc::bootstrap {

std::string BootstrapPayload::debugString() const {
  const char* k = kind == Kind::kAnnounce ? "announce"
                  : kind == Kind::kRequest ? "request"
                  : kind == Kind::kOffer   ? "offer"
                                           : "deny";
  return std::string("boot-") + k + "(s" + std::to_string(session) + ")";
}

Plane::Plane(exec::Context& rt, Config cfg)
    : rt_(rt),
      cfg_(cfg),
      // One settle window covers every copy that was in flight toward a
      // live donor when the rejoiner came back: inter + intra bounds the
      // worst chain still converging on the donor's tables.
      settle_(rt.latencyModel().interMax + rt.latencyModel().intraMax +
              cfg.settleSlack),
      eps_(static_cast<size_t>(rt.topology().numProcesses())) {}

void Plane::bind(ProcessId pid, Participant* node, fd::FailureDetector& fd) {
  Endpoint& e = ep(pid);
  e = Endpoint{};
  e.node = node;
  // Donor announcement: a fresh retraction means some process rejoined
  // with a new incarnation — this (live, steady) endpoint volunteers as
  // its donor. The callback is owned by the failure detector, which dies
  // with this incarnation's node, so it can never fire for a stale owner.
  fd.onRetraction([this, pid](ProcessId q, bool fresh) {
    if (fresh && q != pid) announce(pid, q);
  });
}

void Plane::announce(ProcessId donor, ProcessId rejoiner) {
  if (rt_.crashed(donor) || ep(donor).joining) return;
  rt_.multicast(donor, {rejoiner},
                std::make_shared<BootstrapPayload>(
                    BootstrapPayload::Kind::kAnnounce,
                    rt_.incarnation(rejoiner)));
}

void Plane::onRecovered(ProcessId pid) {
  Endpoint& e = ep(pid);
  e.joining = true;
  e.session = rt_.incarnation(pid);
  e.attempt = 0;
  e.candIdx = 0;
  e.preferred = kNoProcess;
  if (e.node != nullptr) e.node->setJoining(true);
  // Same-group donors first: group-scoped state (per-group consensus, group
  // clocks, the delivery subset of multicast protocols) only a groupmate
  // holds. Cross-group donors are a last resort for the globally-symmetric
  // broadcast stacks.
  const Topology& topo = rt_.topology();
  e.candidates.clear();
  for (ProcessId q : topo.members(topo.group(pid)))
    if (q != pid) e.candidates.push_back(q);
  for (ProcessId q : topo.allProcesses())
    if (q != pid && topo.group(q) != topo.group(pid))
      e.candidates.push_back(q);
  const uint32_t session = e.session;
  rt_.timer(pid, settle_, [this, pid, session] {
    Endpoint& e2 = ep(pid);
    if (e2.joining && e2.session == session) sendRequest(pid);
  });
}

void Plane::sendRequest(ProcessId pid) {
  Endpoint& e = ep(pid);
  // Pick the donor: an announced volunteer if it is still up, else cycle
  // the candidate list, skipping processes known down right now (crash
  // knowledge is oracle-grade here, like OracleFd: the plane is harness
  // substrate, and the retry loop covers everything the oracle cannot
  // see — partitions, donors that die mid-transfer).
  ProcessId target = kNoProcess;
  if (e.preferred != kNoProcess && !rt_.crashed(e.preferred)) {
    target = e.preferred;
  } else if (!e.candidates.empty()) {
    for (size_t i = 0; i < e.candidates.size(); ++i) {
      const size_t idx = (e.candIdx + i) % e.candidates.size();
      if (!rt_.crashed(e.candidates[idx])) {
        e.candIdx = idx;
        target = e.candidates[idx];
        break;
      }
    }
  }
  ++e.attempt;
  if (target != kNoProcess) {
    ++stats_.snapshotsRequested;
    rt_.multicast(pid, {target},
                  std::make_shared<BootstrapPayload>(
                      BootstrapPayload::Kind::kRequest, e.session));
  }
  // Retry against the next candidate if no offer lands in time. The timer
  // is incarnation-guarded (Runtime::timer) and additionally keyed on
  // (session, attempt): an install, a deny-advance, or a second crash all
  // invalidate it.
  const uint32_t session = e.session;
  const uint64_t attempt = e.attempt;
  rt_.timer(pid, cfg_.retry, [this, pid, session, attempt] {
    Endpoint& e2 = ep(pid);
    if (!e2.joining || e2.session != session || e2.attempt != attempt)
      return;
    ++stats_.retries;
    e2.preferred = kNoProcess;
    ++e2.candIdx;
    sendRequest(pid);
  });
}

void Plane::onMessage(ProcessId self, ProcessId from, const Payload& p) {
  const auto& bp = static_cast<const BootstrapPayload&>(p);
  Endpoint& e = ep(self);
  switch (bp.kind) {
    case BootstrapPayload::Kind::kAnnounce: {
      // A donor volunteered. Remember it; if the settle timer has not
      // fired yet it becomes the first target, otherwise the next retry
      // uses it. Same-group volunteers win the race: groupmates announce
      // over fast intra links, but a LATER cross-group announce (WAN
      // latency) must not steal the slot — group-scoped protocol state
      // only a groupmate holds. A cross-group volunteer is kept only
      // while nothing better is known (singleton groups, whole group
      // down).
      if (!e.joining || bp.session != e.session) break;
      const Topology& topo = rt_.topology();
      if (e.preferred == kNoProcess || topo.sameGroup(self, from) ||
          !topo.sameGroup(self, e.preferred))
        e.preferred = from;
      break;
    }
    case BootstrapPayload::Kind::kRequest: {
      if (e.joining) {
        // Cannot donate while waiting for a snapshot ourselves: advance
        // the rejoiner to the next candidate immediately.
        ++stats_.denies;
        rt_.multicast(self, {from},
                      std::make_shared<BootstrapPayload>(
                          BootstrapPayload::Kind::kDeny, bp.session));
        break;
      }
      auto snap = e.node->makeSnapshot();
      ++stats_.snapshotsServed;
      stats_.snapshotBytes += snap->approxBytes();
      rt_.multicast(self, {from},
                    std::make_shared<BootstrapPayload>(
                        BootstrapPayload::Kind::kOffer, bp.session,
                        std::move(snap)));
      break;
    }
    case BootstrapPayload::Kind::kOffer: {
      if (bp.session != rt_.incarnation(self)) {
        // Offer for a superseded incarnation (the rejoiner crashed again
        // and came back): the new session runs its own handshake.
        ++stats_.staleDropped;
        break;
      }
      if (!e.joining || bp.session != e.session) break;  // duplicate
      e.joining = false;
      ++e.attempt;  // kill the pending retry
      const size_t replayed = e.node->installSnapshot(*bp.snapshot);
      ++stats_.snapshotsInstalled;
      stats_.suffixMessages += replayed;
      rejoins_.push_back(Rejoin{self, e.session, rt_.now(),
                                static_cast<uint64_t>(replayed)});
      break;
    }
    case BootstrapPayload::Kind::kDeny:
      if (!e.joining || bp.session != e.session) break;
      ++e.attempt;  // supersede the outstanding retry
      if (e.preferred == from) e.preferred = kNoProcess;
      ++e.candIdx;
      sendRequest(self);
      break;
  }
}

}  // namespace wanmc::bootstrap
