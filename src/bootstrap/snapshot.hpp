// Order-state snapshots: what a live peer hands a rejoining incarnation.
//
// The crash-recovery model (fault plane v2) rebuilds a crashed process as a
// FRESH node with no stable storage: an amnesiac rejoin. Without help it can
// never re-deliver the history its dead incarnation saw, and several stacks
// stall outright (a rejoined merge subscriber waits forever for publisher
// sequence numbers it missed). The bootstrap plane (bootstrap.hpp) closes
// that gap with a state transfer: a live peer serializes its order state
// into a Snapshot, the rejoiner installs it, replays the delivery suffix it
// missed, and resumes as a full protocol participant.
//
// A Snapshot has three protocol-agnostic parts — the consensus decisions per
// scope, the reliable-multicast delivered set, and the donor's A-Deliver
// history in delivery order (the "suffix" the rejoiner replays) — plus one
// opaque, protocol-owned ProtocolState blob (clocks, pending tables,
// sequencer assignments, merge stream frontiers...). The plane only moves
// snapshots around; their content is the business of the stack that made
// them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/consensus_value.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"

namespace wanmc::bootstrap {

// Opaque per-protocol order state. Each protocol node subclasses this in
// its own translation unit (the donor and the rejoiner run the same class,
// so the concrete type never needs to cross a module boundary) and
// downcasts at install time. approxBytes feeds the snapshot-size metric:
// the simulator never serializes for real, so the estimate stands in for
// the bytes a wire transfer would move.
struct ProtocolState {
  virtual ~ProtocolState() = default;
  [[nodiscard]] virtual uint64_t approxBytes() const = 0;
};

// Decided consensus instances of one scope (group id, or a Rodrigues98
// per-message scope). Installed silently: the donor's ProtocolState already
// reflects every decision's effect, so re-firing decide callbacks at the
// rejoiner would double-apply them.
struct ConsensusScopeState {
  uint64_t scope = 0;
  std::map<uint64_t, ConsensusValue> decisions;  // instance -> decided value
};

struct Snapshot {
  // Group of the donating process. Group-scoped blob pieces — per-group
  // consensus decision buffers, R-Delivered working sets, proposal clocks —
  // describe the DONOR's group; installs only merge them when the donor is
  // a groupmate of the rejoiner.
  GroupId donorGroup = kNoGroup;
  std::vector<ConsensusScopeState> consensus;
  // Messages the donor's reliable-multicast endpoint R-Delivered, installed
  // as silently-delivered so stale wire copies cannot re-enter the rejoined
  // protocol as fresh messages.
  std::vector<AppMsgPtr> rmDelivered;
  // The donor's full A-Deliver history, in delivery order. The rejoiner
  // replays the entries addressed to its own group: its new incarnation
  // then owns a delivery sequence order-consistent with the donor's.
  std::vector<AppMsgPtr> suffix;
  std::shared_ptr<const ProtocolState> protocol;  // may be null

  [[nodiscard]] uint64_t approxBytes() const {
    // Rough wire-size model: ids and timestamps at 8 bytes, one AppMessage
    // at header + body. Only relative sizes matter (the metric tracks how
    // snapshot weight grows with history).
    uint64_t b = 0;
    for (const auto& cs : consensus) b += 16 + 24 * cs.decisions.size();
    for (const auto& m : rmDelivered) b += 24 + m->body.size();
    for (const auto& m : suffix) b += 24 + m->body.size();
    if (protocol) b += protocol->approxBytes();
    return b;
  }
};

// The surface a protocol stack exposes to the bootstrap plane. XcastNode
// implements it once for all stacks (consensus + rmcast + suffix replay)
// and delegates the protocol-specific blob to per-protocol virtuals.
class Participant {
 public:
  virtual ~Participant() = default;
  // Serialize this node's current order state. Called on a live donor; must
  // be a self-contained value copy (the rejoiner mutates its own tables).
  [[nodiscard]] virtual std::shared_ptr<const Snapshot> makeSnapshot() = 0;
  // Install a donor's snapshot and resume the protocol. Returns the number
  // of suffix entries replayed (for the metrics plane).
  virtual size_t installSnapshot(const Snapshot& s) = 0;
  // Raised while this incarnation waits for a snapshot: protocols hold
  // back proposal initiation (not message intake) until the install.
  virtual void setJoining(bool joining) = 0;
};

}  // namespace wanmc::bootstrap
