#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "core/experiment.hpp"
#include "exec/context.hpp"

namespace wanmc::workload {

// ---------------------------------------------------------------------------
// ZipfDraw.
// ---------------------------------------------------------------------------

ZipfDraw::ZipfDraw(int n, double exponent) : n_(std::max(n, 1)) {
  if (exponent == 0.0 || n_ <= 1) return;  // uniform: stay on the % path
  cdf_.reserve(static_cast<size_t>(n_));
  double sum = 0;
  for (int r = 0; r < n_; ++r) {
    sum += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_.push_back(sum);
  }
  for (double& c : cdf_) c /= sum;
}

int ZipfDraw::operator()(SplitMix64& rng) const {
  if (cdf_.empty()) return static_cast<int>(rng.next() % static_cast<uint64_t>(n_));
  const double u = rng.uniform01();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<int>(it - cdf_.begin());
  return std::min(rank, n_ - 1);
}

// ---------------------------------------------------------------------------
// Generator.
// ---------------------------------------------------------------------------

namespace {

// The pending-arrival event: a POD that fits the scheduler's inline
// callable storage, so workload generation never allocates per arrival.
struct Fire {
  Generator* g;
  void operator()() const { g->onArrivalEvent(); }
};

}  // namespace

Generator::Generator(core::Experiment& ex, Spec spec)
    : ex_(ex),
      spec_(std::move(spec)),
      rng_(spec_.seed),
      senderDraw_(ex.context().topology().numProcesses(), spec_.senderZipf),
      destDraw_(ex.context().topology().numGroups(), spec_.destZipf) {}

void Generator::install() {
  if (spec_.model == Model::kTraceReplay) {
    std::stable_sort(
        spec_.trace.begin(), spec_.trace.end(),
        [](const TraceCast& a, const TraceCast& b) { return a.when < b.when; });
    spec_.count = static_cast<int>(spec_.trace.size());
    if (spec_.trace.empty()) return;
    scheduleArrivalAt(
        std::max(spec_.trace.front().when, ex_.context().now()));
    return;
  }
  if (spec_.count <= 0) return;
  if (spec_.model == Model::kBursty) {
    // Degenerate phase parameters would stall the rollover loop below.
    spec_.onDuration = std::max<SimTime>(spec_.onDuration, 1);
    spec_.offDuration = std::max<SimTime>(spec_.offDuration, 0);
    spec_.burstGap = std::max<SimTime>(spec_.burstGap, 1);
  }
  burstStart_ = spec_.start;
  scheduleArrivalAt(std::max(spec_.start, ex_.context().now()));
}

void Generator::scheduleArrivalAt(SimTime when) {
  // A harness event (Context::harnessAt), not an incarnation-bound
  // Context::timer: the workload is an external traffic source, so the
  // arrival chain must survive the crash of any individual sender.
  // Per-cast crash semantics live in Experiment::issueWorkloadCast, which
  // allocates the message id but suppresses the xcast of a crashed sender
  // — exactly what the legacy per-cast timer guard did. harnessAt clamps
  // to the present, so a workload installed mid-run (or a phase computed
  // from a past anchor) can never enqueue an event behind the clock.
  ex_.context().harnessAt(when, Fire{this});
}

void Generator::onArrivalEvent() {
  switch (spec_.model) {
    case Model::kClosedLoop:
      if (spec_.inFlightCap > 0 && inFlight() >= spec_.inFlightCap) {
        waiting_ = true;  // onDelivered() restarts the chain
        return;
      }
      issueOne();
      if (!done())
        scheduleArrivalAt(ex_.context().now() + spec_.interval);
      return;
    case Model::kOpenLoopFixed:
    case Model::kOpenLoopPoisson:
      issueOne();
      if (!done()) scheduleArrivalAt(ex_.context().now() + openLoopGap());
      return;
    case Model::kBursty: {
      issueOne();
      if (done()) return;
      SimTime next = ex_.context().now() + spec_.burstGap;
      while (next - burstStart_ >= spec_.onDuration) {  // phase exhausted
        burstStart_ += spec_.onDuration + spec_.offDuration;
        next = std::max(next, burstStart_);
      }
      scheduleArrivalAt(next);
      return;
    }
    case Model::kTraceReplay:
      issueOne();
      ++traceNext_;
      if (traceNext_ < spec_.trace.size())
        scheduleArrivalAt(std::max(spec_.trace[traceNext_].when,
                                   ex_.context().now()));
      return;
  }
}

SimTime Generator::openLoopGap() {
  if (spec_.model == Model::kOpenLoopFixed)
    return std::max<SimTime>(spec_.meanGap, 1);
  // Exponential inter-arrival gap with mean meanGap, floored at one time
  // unit so the arrival chain always advances.
  const double u = rng_.uniform01();
  const double gap = -std::log1p(-u) * static_cast<double>(spec_.meanGap);
  return std::max<SimTime>(static_cast<SimTime>(std::llround(gap)), 1);
}

void Generator::issueOne() {
  const Topology& topo = ex_.context().topology();
  const bool broadcast = core::isBroadcastProtocol(ex_.config().protocol);

  ProcessId sender;
  GroupSet dest;
  if (spec_.model == Model::kTraceReplay) {
    const TraceCast& c = spec_.trace[traceNext_];
    sender = c.sender;
    dest = (c.dest.empty() || broadcast) ? topo.allGroups() : c.dest;
  } else {
    sender = static_cast<ProcessId>(senderDraw_(rng_));
    if (broadcast) {
      dest = topo.allGroups();
    } else {
      // The sender's own group is always addressed; extra groups are drawn
      // until the multicast spans destGroups distinct groups. With zero
      // skew this consumes the RNG exactly like the legacy scheduler.
      const int destGroups = std::min(spec_.destGroups, topo.numGroups());
      dest.add(topo.group(sender));
      while (dest.size() < destGroups)
        dest.add(static_cast<GroupId>(destDraw_(rng_)));
    }
  }

  // A crashed sender consumes its message id but casts nothing; such a
  // cast must NOT count toward the in-flight cap — it will never be
  // delivered, and tracking it would wedge the closed loop for good.
  const bool willCast = !ex_.context().crashed(sender);
  std::string body = "w";  // built by append: avoids a GCC 12 -Wrestrict
  body += std::to_string(issued_.size());  // false positive on operator+
  const MsgId id = ex_.issueWorkloadCast(sender, dest, std::move(body));
  issued_.push_back(id);
  if (spec_.model == Model::kClosedLoop && spec_.inFlightCap > 0 && willCast)
    outstanding_.insert(id);
}

void Generator::onDelivered(MsgId msg) {
  // First delivery anywhere completes the cast: robust against crashed
  // senders (their own delivery may never happen) while staying a pure
  // function of the simulation schedule.
  if (outstanding_.erase(msg) == 0) return;
  if (waiting_ && inFlight() < spec_.inFlightCap && !done()) {
    waiting_ = false;
    // Resume as a fresh event at the current instant: issuing from inside
    // the delivery callback would reenter the node mid-message.
    scheduleArrivalAt(ex_.context().now());
  }
}

}  // namespace wanmc::workload
