// Declarative workload specifications: what traffic an experiment drives.
//
// A workload::Spec is a serializable tagged union of arrival-model
// parameters. It describes WHAT casts a run generates — the generation
// itself happens reactively inside the simulation (src/workload/
// generator.hpp): each model schedules its next arrival as a Runtime timer
// only once its time is known, which is what lets closed-loop models react
// to deliveries and keeps open-loop storms from pre-materializing millions
// of events.
//
// Every model is a pure function of (spec, seed, topology): the same spec
// against the same experiment reproduces a byte-identical trace. The
// kClosedLoop model with inFlightCap == 0 reproduces the legacy
// core::WorkloadSpec / scheduleWorkload() schedule bit-for-bit (same RNG
// stream, same cast times, same message ids), which is what keeps the
// pre-existing golden fingerprints valid.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace wanmc::workload {

// Arrival process of a workload. Sender/destination skew (the Zipf knobs
// below) composes with every model; kTraceReplay ignores the RNG entirely.
enum class Model : uint8_t {
  // Fixed spacing between arrivals. inFlightCap == 0 is the legacy
  // uniform rotating-sender schedule; inFlightCap > 0 defers an arrival
  // until fewer than `cap` of this workload's casts are still undelivered
  // (a closed loop of `cap` clients with think time = interval).
  kClosedLoop,
  // Open loop: arrivals keep coming regardless of delivery progress.
  kOpenLoopFixed,    // deterministic inter-arrival gap (meanGap)
  kOpenLoopPoisson,  // exponential inter-arrival gaps with mean meanGap
  // On/off phases: bursts of open-loop arrivals every burstGap for
  // onDuration, then silence for offDuration, repeating until count.
  kBursty,
  // Deterministic replay of explicit (when, sender, dest) entries.
  kTraceReplay,
};

[[nodiscard]] const char* modelName(Model m);

// One replayed cast. An empty destination set means "all groups".
struct TraceCast {
  SimTime when = 0;
  ProcessId sender = 0;
  GroupSet dest{};

  friend bool operator==(const TraceCast&, const TraceCast&) = default;
};

struct Spec {
  Model model = Model::kClosedLoop;

  // ---- knobs shared by every generated model ----------------------------
  SimTime start = 10 * kMs;  // first arrival
  int count = 20;            // total casts (kTraceReplay: trace.size())
  int destGroups = 2;        // groups per multicast, clamped to the topology
  uint64_t seed = 7;         // workload-private RNG stream

  // Zipf skew exponents, 0 = uniform. senderZipf biases the sending
  // process (pid 0 hottest); destZipf biases which extra groups a
  // multicast addresses (group 0 most popular). Exponent 0 draws are
  // bit-identical to the legacy uniform `rng % n` draws.
  double senderZipf = 0.0;
  double destZipf = 0.0;

  // ---- kClosedLoop -------------------------------------------------------
  SimTime interval = 50 * kMs;  // spacing (and think time when capped)
  int inFlightCap = 0;          // 0: uncapped (the legacy schedule)

  // ---- kOpenLoopFixed / kOpenLoopPoisson ---------------------------------
  SimTime meanGap = 50 * kMs;  // (mean) inter-arrival gap

  // ---- kBursty -----------------------------------------------------------
  SimTime onDuration = 100 * kMs;
  SimTime offDuration = 400 * kMs;
  SimTime burstGap = 5 * kMs;  // spacing within a burst

  // ---- kTraceReplay ------------------------------------------------------
  std::vector<TraceCast> trace;

  // Convenience constructors for the common shapes.
  static Spec closedLoop(int count, SimTime interval, int destGroups = 2) {
    Spec s;
    s.model = Model::kClosedLoop;
    s.count = count;
    s.interval = interval;
    s.destGroups = destGroups;
    return s;
  }
  static Spec openLoopPoisson(int count, SimTime meanGap,
                              int destGroups = 2) {
    Spec s;
    s.model = Model::kOpenLoopPoisson;
    s.count = count;
    s.meanGap = meanGap;
    s.destGroups = destGroups;
    return s;
  }
  static Spec traceReplay(std::vector<TraceCast> casts) {
    Spec s;
    s.model = Model::kTraceReplay;
    s.trace = std::move(casts);
    s.count = static_cast<int>(s.trace.size());
    return s;
  }

  friend bool operator==(const Spec&, const Spec&) = default;

  // Upper bound on when the LAST arrival of this spec is issued (ignores
  // delivery latency). Capped closed loops and Poisson tails can exceed
  // their nominal spacing, so the bound is deliberately generous; use it
  // to size run horizons, not to assert exact schedules.
  [[nodiscard]] SimTime nominalEnd() const;

  // The offered load this spec is CONFIGURED for, in casts per simulated
  // second: the inverse mean inter-arrival gap of the model (bursty:
  // averaged over a whole on+off cycle; trace replay: count over the
  // replay window). The measured rate (metrics::Summary::offeredPerSec)
  // can sit below this when a capped closed loop defers arrivals — the
  // gap between the two is the load-shedding signal.
  [[nodiscard]] double nominalRatePerSec() const;
};

// Compact single-line serialization: "model key=value key=value ...".
// parse() accepts the keys in any order and defaults the rest; it returns
// nullopt (never throws) on an unknown model, unknown key, or malformed
// value. Round trip: parse(toString(s)) reproduces s exactly.
[[nodiscard]] std::string toString(const Spec& s);
[[nodiscard]] std::optional<Spec> parse(const std::string& text);

}  // namespace wanmc::workload
