// Reactive workload generation: materializes a workload::Spec against a
// running core::Experiment.
//
// A Generator never pre-schedules the whole workload. It keeps exactly one
// pending arrival timer in the simulation: when that timer fires, the cast
// is issued (sender and destination drawn from the workload-private RNG
// stream at that instant) and the NEXT arrival is scheduled according to
// the model. Closed-loop models additionally listen to A-Deliver events,
// which is how an in-flight cap can defer arrivals until the protocol
// catches up — something a pre-materialized schedule cannot express.
//
// Determinism: the generator draws only from its private SplitMix64 stream
// (seeded from Spec::seed) and schedules through the deterministic
// simulator, so a (spec, seed, topology) triple always reproduces the same
// cast schedule and, with everything else fixed, a byte-identical trace.
#pragma once

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "workload/spec.hpp"

namespace wanmc::core {
class Experiment;
}

namespace wanmc::workload {

// Deterministic Zipf(exponent) sampler over ranks [0, n). Exponent 0 is
// special-cased to the modulo draw so skew-free workloads consume the RNG
// exactly like the legacy scheduler did.
class ZipfDraw {
 public:
  ZipfDraw() = default;
  ZipfDraw(int n, double exponent);

  [[nodiscard]] int operator()(SplitMix64& rng) const;

 private:
  int n_ = 1;
  std::vector<double> cdf_;  // empty: uniform modulo draw
};

class Generator {
 public:
  // `ex` must outlive the generator (the experiment owns its generators).
  Generator(core::Experiment& ex, Spec spec);

  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  // Schedules the first arrival. Called once by Experiment::addWorkload.
  void install();

  [[nodiscard]] const Spec& spec() const { return spec_; }

  // Message ids issued so far, in issue order. Complete only after the
  // run: reactive workloads allocate ids at arrival time, not install
  // time.
  [[nodiscard]] const std::vector<MsgId>& issued() const { return issued_; }

  // True once every cast of the spec has been issued.
  [[nodiscard]] bool done() const {
    return static_cast<int>(issued_.size()) >= spec_.count;
  }

  // Casts of this workload not yet delivered by any process. Only
  // maintained for capped closed loops; 0 otherwise.
  [[nodiscard]] int inFlight() const {
    return static_cast<int>(outstanding_.size());
  }

  // Delivery feedback from the runtime (first delivery of one of our
  // casts anywhere completes it). Wired up by Experiment::addWorkload for
  // capped closed loops only.
  void onDelivered(MsgId msg);

  // Fired by the pending-arrival simulator event. Public for the event
  // callable only — not part of the user-facing API.
  void onArrivalEvent();

 private:
  void scheduleArrivalAt(SimTime when);
  void issueOne();
  [[nodiscard]] SimTime openLoopGap();

  core::Experiment& ex_;
  Spec spec_;
  SplitMix64 rng_;
  ZipfDraw senderDraw_;
  ZipfDraw destDraw_;

  std::vector<MsgId> issued_;
  size_t traceNext_ = 0;      // kTraceReplay cursor
  SimTime burstStart_ = 0;    // kBursty: start of the current on-phase
  bool waiting_ = false;      // kClosedLoop: blocked on the in-flight cap
  std::set<MsgId> outstanding_;  // capped closed loop: undelivered casts
};

}  // namespace wanmc::workload
