#include "workload/spec.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace wanmc::workload {

const char* modelName(Model m) {
  switch (m) {
    case Model::kClosedLoop: return "closed-loop";
    case Model::kOpenLoopFixed: return "open-fixed";
    case Model::kOpenLoopPoisson: return "open-poisson";
    case Model::kBursty: return "bursty";
    case Model::kTraceReplay: return "trace";
  }
  return "?";
}

double Spec::nominalRatePerSec() const {
  auto inverse = [](SimTime gap) {
    return gap > 0 ? 1e6 / static_cast<double>(gap) : 0.0;
  };
  switch (model) {
    case Model::kClosedLoop:
      return inverse(interval);
    case Model::kOpenLoopFixed:
    case Model::kOpenLoopPoisson:
      return inverse(meanGap);
    case Model::kBursty: {
      // Mean over a whole on+off cycle: onDuration/burstGap casts per
      // (onDuration + offDuration).
      const double perCycle = static_cast<double>(
          std::max<SimTime>(onDuration / std::max<SimTime>(burstGap, 1), 1));
      const SimTime cycle = std::max<SimTime>(onDuration + offDuration, 1);
      return perCycle * 1e6 / static_cast<double>(cycle);
    }
    case Model::kTraceReplay: {
      if (trace.size() < 2) return 0;
      SimTime lo = trace.front().when;
      SimTime hi = trace.front().when;
      for (const TraceCast& c : trace) {
        lo = std::min(lo, c.when);
        hi = std::max(hi, c.when);
      }
      if (hi <= lo) return 0;
      return static_cast<double>(trace.size() - 1) * 1e6 /
             static_cast<double>(hi - lo);
    }
  }
  return 0;
}

SimTime Spec::nominalEnd() const {
  switch (model) {
    case Model::kClosedLoop:
      // A capped loop can stall behind deliveries; leave WAN-scale slack
      // per cast on top of the nominal spacing.
      return start + static_cast<SimTime>(count) *
                         (interval + (inFlightCap > 0 ? kSec : 0));
    case Model::kOpenLoopFixed:
      return start + static_cast<SimTime>(count) * meanGap;
    case Model::kOpenLoopPoisson:
      // Mean end + generous tail: exponential gaps rarely sum to more
      // than a few means beyond the expectation.
      return start + 4 * static_cast<SimTime>(count) * meanGap;
    case Model::kBursty: {
      const SimTime perBurst = std::max<SimTime>(onDuration / std::max<SimTime>(burstGap, 1), 1);
      const SimTime cycles = (count + perBurst - 1) / perBurst;
      return start + cycles * (onDuration + offDuration);
    }
    case Model::kTraceReplay: {
      SimTime last = start;
      for (const TraceCast& c : trace) last = std::max(last, c.when);
      return last;
    }
  }
  return start;
}

std::string toString(const Spec& s) {
  std::ostringstream os;
  os << modelName(s.model) << " start=" << s.start << " count=" << s.count
     << " dest=" << s.destGroups << " seed=" << s.seed;
  if (s.senderZipf != 0.0) os << " szipf=" << s.senderZipf;
  if (s.destZipf != 0.0) os << " dzipf=" << s.destZipf;
  switch (s.model) {
    case Model::kClosedLoop:
      os << " interval=" << s.interval;
      if (s.inFlightCap > 0) os << " cap=" << s.inFlightCap;
      break;
    case Model::kOpenLoopFixed:
    case Model::kOpenLoopPoisson:
      os << " mean=" << s.meanGap;
      break;
    case Model::kBursty:
      os << " on=" << s.onDuration << " off=" << s.offDuration
         << " gap=" << s.burstGap;
      break;
    case Model::kTraceReplay:
      for (const TraceCast& c : s.trace)
        os << " cast=" << c.when << ":" << c.sender << ":" << c.dest.bits();
      break;
  }
  return os.str();
}

namespace {

std::optional<Model> parseModel(const std::string& name) {
  for (Model m : {Model::kClosedLoop, Model::kOpenLoopFixed,
                  Model::kOpenLoopPoisson, Model::kBursty,
                  Model::kTraceReplay})
    if (name == modelName(m)) return m;
  return std::nullopt;
}

// Strict integer parse of the whole string (empty or trailing junk fails).
bool parseI64(const std::string& v, int64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(v.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parseU64(const std::string& v, uint64_t* out) {
  if (v.empty() || v[0] == '-') return false;
  char* end = nullptr;
  *out = std::strtoull(v.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool parseF64(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != nullptr && *end == '\0';
}

// "when:sender:destbits" -> TraceCast.
bool parseTraceCast(const std::string& v, TraceCast* out) {
  const size_t c1 = v.find(':');
  const size_t c2 = v.find(':', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  int64_t when = 0;
  int64_t sender = 0;
  uint64_t bits = 0;
  if (!parseI64(v.substr(0, c1), &when)) return false;
  if (!parseI64(v.substr(c1 + 1, c2 - c1 - 1), &sender)) return false;
  if (!parseU64(v.substr(c2 + 1), &bits)) return false;
  out->when = when;
  out->sender = static_cast<ProcessId>(sender);
  out->dest = GroupSet(bits);
  return true;
}

}  // namespace

std::optional<Spec> parse(const std::string& text) {
  std::istringstream is(text);
  std::string tok;
  if (!(is >> tok)) return std::nullopt;
  const auto model = parseModel(tok);
  if (!model) return std::nullopt;

  Spec s;
  s.model = *model;
  while (is >> tok) {
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    int64_t i = 0;
    uint64_t u = 0;
    double f = 0;
    if (key == "start" && parseI64(val, &i)) s.start = i;
    else if (key == "count" && parseI64(val, &i)) s.count = static_cast<int>(i);
    else if (key == "dest" && parseI64(val, &i)) s.destGroups = static_cast<int>(i);
    else if (key == "seed" && parseU64(val, &u)) s.seed = u;
    else if (key == "szipf" && parseF64(val, &f)) s.senderZipf = f;
    else if (key == "dzipf" && parseF64(val, &f)) s.destZipf = f;
    else if (key == "interval" && parseI64(val, &i)) s.interval = i;
    else if (key == "cap" && parseI64(val, &i)) s.inFlightCap = static_cast<int>(i);
    else if (key == "mean" && parseI64(val, &i)) s.meanGap = i;
    else if (key == "on" && parseI64(val, &i)) s.onDuration = i;
    else if (key == "off" && parseI64(val, &i)) s.offDuration = i;
    else if (key == "gap" && parseI64(val, &i)) s.burstGap = i;
    else if (key == "cast") {
      TraceCast c;
      if (!parseTraceCast(val, &c)) return std::nullopt;
      s.trace.push_back(c);
    } else {
      return std::nullopt;
    }
  }
  if (s.model == Model::kTraceReplay)
    s.count = static_cast<int>(s.trace.size());
  return s;
}

}  // namespace wanmc::workload
