// Property checkers over run traces.
//
// Each checker corresponds to a property of the paper's §2.2 specification
// (or §3's definitions) and returns a list of human-readable violations —
// empty means the property held in the observed run. The checkers take the
// run trace plus the set of processes that were correct (never crashed), so
// uniform vs non-uniform obligations can be told apart.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/trace.hpp"
#include "sim/topology.hpp"

namespace wanmc::verify {

struct CheckContext {
  const RunTrace* trace = nullptr;
  const Topology* topo = nullptr;
  std::set<ProcessId> correct;  // processes that never crashed
};

using Violations = std::vector<std::string>;

// Processes that crashed and later RECOVERED (fault plane v2), derived
// from the trace's recovery events. A recovered process is an amnesiac
// rejoin: it is NOT correct (the paper's "correct" means never crashed),
// its delivery sequence restarts, and the checkers treat it specially:
//   * integrity binds PER INCARNATION (it may re-deliver a message its
//     dead incarnation delivered — it kept no state — but never twice
//     within one incarnation, and never a message it is no addressee of);
//   * prefix-order pairs involving it are skipped (its sequence has a
//     gap no prefix comparison can interpret); correct-only checks never
//     saw it anyway;
//   * uniform agreement still counts its deliveries as obligations on the
//     correct processes — uniformity is exactly the promise that ANY
//     delivery, even by a process that later crashed or recovered, binds.
[[nodiscard]] std::set<ProcessId> recoveredProcesses(const CheckContext& ctx);

// Uniform integrity: every process A-Delivers a message at most once (per
// incarnation, see above), only if it is an addressee, and only if the
// message was A-XCast.
[[nodiscard]] Violations checkUniformIntegrity(const CheckContext& ctx);

// Recovered-process liveness: a message cast strictly after a process's
// final recovery, addressed to it, and delivered by every correct
// addressee must eventually be delivered by the recovered process too —
// it is alive for the message's whole lifetime. (Only checkable when the
// protocol re-integrates amnesiac processes; gate on
// ProtocolTraits::recoveredRejoins.)
[[nodiscard]] Violations checkRecoveredDelivery(const CheckContext& ctx);

// Validity: if a correct process A-XCasts m, every correct addressee
// eventually A-Delivers m (checked at end of run: "eventually" = "by now").
[[nodiscard]] Violations checkValidity(const CheckContext& ctx);

// Uniform agreement: if ANY process (even one that later crashed)
// A-Delivers m, every correct addressee A-Delivers m.
[[nodiscard]] Violations checkUniformAgreement(const CheckContext& ctx);

// Non-uniform agreement (for the Sousa-et-al. baseline): like uniform
// agreement but only deliveries by correct processes create obligations.
[[nodiscard]] Violations checkAgreementCorrectOnly(const CheckContext& ctx);

// Uniform prefix order: for any two processes p,q and the final sequences
// S_p, S_q projected on messages addressed to both p and q, one projection
// is a prefix of the other.
[[nodiscard]] Violations checkUniformPrefixOrder(const CheckContext& ctx);

// Prefix order restricted to pairs of correct processes.
[[nodiscard]] Violations checkPrefixOrderCorrectOnly(const CheckContext& ctx);

// Genuineness (paper §2.2): only the sender and the addressees of cast
// messages take part in the protocol. Checked over the runtime's per-layer
// participation flags; the failure-detector substrate is excluded (it is an
// oracle in the paper's accounting, DESIGN.md §2).
struct GenuinenessInput {
  std::set<ProcessId> sentAlgorithmic;
  std::set<ProcessId> receivedAlgorithmic;
};
[[nodiscard]] Violations checkGenuineness(const CheckContext& ctx,
                            const GenuinenessInput& in);

// Quiescence: the last algorithmic (non-FD) send happened within
// `settleBudget` of the last A-XCast. lastAlgoSend < 0 means nothing was
// ever sent.
[[nodiscard]] Violations checkQuiescence(const CheckContext& ctx, SimTime lastAlgoSend,
                           SimTime settleBudget);

// Convenience: run the standard safety suite (integrity + validity +
// uniform agreement + uniform prefix order) and return all violations.
[[nodiscard]] Violations checkAtomicSuite(const CheckContext& ctx);

}  // namespace wanmc::verify
