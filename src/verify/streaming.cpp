#include "verify/streaming.hpp"

#include <sstream>

namespace wanmc::verify {

StreamingOrderChecker::StreamingOrderChecker(const Topology& topo)
    : topo_(&topo), n_(topo.numProcesses()) {
  const auto n = static_cast<size_t>(n_);
  pairs_.resize(n * (n - 1) / 2);
  excluded_.assign(n, 0);
}

void StreamingOrderChecker::onCast(const CastEvent& ev) {
  const size_t idx = static_cast<size_t>(ev.msg);
  if (idx >= destBits_.size()) {
    size_t grow = destBits_.size() < 16 ? 16 : destBits_.size() * 2;
    destBits_.resize(std::max(grow, idx + 1), 0);
  }
  destBits_[idx] = ev.dest.bits();
  // Materialize the addressee list once per distinct destination set, off
  // the delivery path.
  auto [it, inserted] = memberCache_.try_emplace(ev.dest.bits());
  if (inserted) it->second = topo_->membersOf(ev.dest);
}

void StreamingOrderChecker::advance(PairState& st, ProcessId p, ProcessId q,
                                    ProcessId deliverer, MsgId m) {
  if (st.violated) return;  // one violation per pair, like the oracle
  if (st.pending.empty() || st.aheadSide == deliverer) {
    st.pending.push_back(m);
    st.aheadSide = deliverer;
    return;
  }
  // The other side is ahead: its element at position `matched` is the
  // queue front, ours is m. Equal -> the common prefix grows; unequal ->
  // the two projections diverge exactly here.
  const MsgId front = st.pending.front();
  st.pending.pop_front();
  if (front == m) {
    ++st.matched;
    return;
  }
  st.violated = true;
  st.violationPos = st.matched;
  st.violationA = st.aheadSide == p ? front : m;
  st.violationB = st.aheadSide == p ? m : front;
  (void)q;
  ++violatedPairs_;
}

void StreamingOrderChecker::onDeliver(const DeliveryEvent& ev) {
  const ProcessId p = ev.process;
  if (excluded_[static_cast<size_t>(p)] != 0) return;
  const size_t idx = static_cast<size_t>(ev.msg);
  const uint64_t bits = idx < destBits_.size() ? destBits_[idx] : 0;
  if (bits == 0) return;  // never cast: integrity's problem, not order's
  if (((bits >> topo_->group(p)) & 1u) == 0) return;  // p not an addressee
  const std::vector<ProcessId>& members = memberCache_.find(bits)->second;
  for (ProcessId q : members) {
    if (q == p || excluded_[static_cast<size_t>(q)] != 0) continue;
    const ProcessId lo = p < q ? p : q;
    const ProcessId hi = p < q ? q : p;
    advance(pairs_[pairIndex(lo, hi)], lo, hi, p, ev.msg);
  }
}

void StreamingOrderChecker::appendViolation(Violations& out, ProcessId p,
                                            ProcessId q,
                                            const PairState& st) const {
  std::ostringstream os;
  os << "prefix order violated between p" << p << " and p" << q
     << " at position " << st.violationPos << ": m" << st.violationA
     << " vs m" << st.violationB;
  out.push_back(os.str());
}

Violations StreamingOrderChecker::violations() const {
  Violations out;
  for (ProcessId p = 0; p < n_; ++p)
    for (ProcessId q = p + 1; q < n_; ++q) {
      const PairState& st = pairs_[pairIndex(p, q)];
      if (st.violated) appendViolation(out, p, q, st);
    }
  return out;
}

Violations StreamingOrderChecker::violations(
    const std::set<ProcessId>& correct) const {
  Violations out;
  for (ProcessId p = 0; p < n_; ++p) {
    if (!correct.count(p)) continue;
    for (ProcessId q = p + 1; q < n_; ++q) {
      if (!correct.count(q)) continue;
      const PairState& st = pairs_[pairIndex(p, q)];
      if (st.violated) appendViolation(out, p, q, st);
    }
  }
  return out;
}

}  // namespace wanmc::verify
