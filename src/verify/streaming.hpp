// Streaming prefix-order checking over the observer plane.
//
// The trace-based checkers (verify/properties.hpp) compare FINAL delivery
// sequences pairwise at end of run: O(n^2) projections over the whole
// trace, the hot spot the ROADMAP called out for big traces. This checker
// is fed incrementally by the runtime's cast/delivery hooks instead: for
// every unordered process pair {p, q} it keeps one merged cursor — a queue
// of deliveries one side is ahead by, projected on messages addressed to
// BOTH — and compares elements the moment both sides have one. Each
// delivery of message m touches only the addressees of m, so the total
// work is O(deliveries * addressees), with no end-of-run rescan; the
// per-pair queues hold only the current divergence between the two
// processes, not whole sequences.
//
// Verdicts (and violation strings) are identical to
// checkUniformPrefixOrder / checkPrefixOrderCorrectOnly on every run —
// cross-checked over the full standard matrix in tests. The trace-based
// checkers remain available as the offline oracle.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "common/ids.hpp"
#include "sim/observer.hpp"
#include "sim/topology.hpp"
#include "verify/properties.hpp"

namespace wanmc::verify {

class StreamingOrderChecker final : public sim::RunObserver {
 public:
  // `topo` must outlive the checker. Register with
  //   rt.addObserver(&checker, sim::kObserveCasts | sim::kObserveDeliveries)
  // before the run starts.
  explicit StreamingOrderChecker(const Topology& topo);

  // Excludes `p` from all pair comparisons. Call BEFORE the run for
  // processes scheduled to crash-and-RECOVER: a recovered process rejoins
  // with reset state, so its delivery sequence restarts mid-run and
  // cross-incarnation prefix comparison is meaningless (matches the
  // trace-based checkers, which skip recovered processes the same way).
  void excludeProcess(ProcessId p) {
    excluded_[static_cast<size_t>(p)] = 1;
  }

  void onCast(const CastEvent& ev) override;
  void onDeliver(const DeliveryEvent& ev) override;

  // Violations over all process pairs (uniform prefix order), in the same
  // pair order and wording as checkUniformPrefixOrder.
  [[nodiscard]] Violations violations() const;
  // Restricted to pairs where both processes are in `correct`
  // (checkPrefixOrderCorrectOnly).
  [[nodiscard]] Violations violations(
      const std::set<ProcessId>& correct) const;

  // True iff some pair has already diverged (cheap mid-run probe).
  [[nodiscard]] bool anyViolation() const { return violatedPairs_ > 0; }

 private:
  // State of one unordered pair {p, q}, p < q. `pending` holds the merged
  // cursor's backlog: deliveries (projected on messages addressed to both)
  // that `aheadSide` has made and the other side has not yet matched.
  struct PairState {
    std::deque<MsgId> pending;
    ProcessId aheadSide = kNoProcess;
    uint64_t matched = 0;  // length of the agreed common prefix
    bool violated = false;
    uint64_t violationPos = 0;
    MsgId violationA = 0;  // what the lower pid delivered at that position
    MsgId violationB = 0;
  };

  [[nodiscard]] size_t pairIndex(ProcessId p, ProcessId q) const {
    // p < q; dense triangular index.
    const auto n = static_cast<size_t>(n_);
    const auto a = static_cast<size_t>(p);
    const auto b = static_cast<size_t>(q);
    return a * n - a * (a + 1) / 2 + (b - a - 1);
  }

  void advance(PairState& st, ProcessId p, ProcessId q, ProcessId deliverer,
               MsgId m);
  void appendViolation(Violations& out, ProcessId p, ProcessId q,
                       const PairState& st) const;

  const Topology* topo_;
  int n_ = 0;
  std::vector<PairState> pairs_;
  std::vector<uint8_t> excluded_;  // recovered processes, dense by pid
  uint64_t violatedPairs_ = 0;

  // Destination bits per message, dense by MsgId (ids are sequential).
  std::vector<uint64_t> destBits_;
  // Addressee process lists per distinct destination set, cached so the
  // delivery path never materializes group member vectors.
  std::map<uint64_t, std::vector<ProcessId>> memberCache_;
};

}  // namespace wanmc::verify
