#include "verify/properties.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace wanmc::verify {

namespace {

// Built by append: avoids the GCC 12 -Wrestrict false positive on chained
// string operator+ (same workaround as standardFaultMatrix's name builder).
std::string pname(ProcessId p) {
  std::string s("p");
  s += std::to_string(p);
  return s;
}
std::string mname(MsgId m) {
  std::string s("m");
  s += std::to_string(m);
  return s;
}

bool isAddressee(const CheckContext& ctx, ProcessId p, MsgId m) {
  auto it = ctx.trace->destOf.find(m);
  if (it == ctx.trace->destOf.end()) return false;
  return it->second.contains(ctx.topo->group(p));
}

// Final delivery sequence of every process.
std::map<ProcessId, std::vector<MsgId>> sequences(const CheckContext& ctx) {
  return ctx.trace->sequences();
}

Violations prefixOrderOver(const CheckContext& ctx,
                           const std::set<ProcessId>& procs) {
  Violations out;
  auto seqs = sequences(ctx);
  std::vector<ProcessId> ps(procs.begin(), procs.end());
  for (size_t i = 0; i < ps.size(); ++i) {
    for (size_t j = i + 1; j < ps.size(); ++j) {
      const ProcessId p = ps[i];
      const ProcessId q = ps[j];
      // Project both sequences on messages addressed to BOTH p and q.
      auto project = [&](ProcessId self) {
        std::vector<MsgId> out2;
        for (MsgId m : seqs[self])
          if (isAddressee(ctx, p, m) && isAddressee(ctx, q, m))
            out2.push_back(m);
        return out2;
      };
      const auto sp = project(p);
      const auto sq = project(q);
      const size_t n = std::min(sp.size(), sq.size());
      for (size_t x = 0; x < n; ++x) {
        if (sp[x] != sq[x]) {
          std::ostringstream os;
          os << "prefix order violated between " << pname(p) << " and "
             << pname(q) << " at position " << x << ": " << mname(sp[x])
             << " vs " << mname(sq[x]);
          out.push_back(os.str());
          break;
        }
      }
    }
  }
  return out;
}

// Sorted recovery times per process, for incarnation segmentation.
std::map<ProcessId, std::vector<SimTime>> recoveryTimes(
    const CheckContext& ctx) {
  std::map<ProcessId, std::vector<SimTime>> out;
  for (const auto& r : ctx.trace->recoveries) out[r.process].push_back(r.when);
  for (auto& [p, times] : out) std::sort(times.begin(), times.end());
  return out;
}

// Incarnation index of a delivery: the number of recoveries of `p` at or
// before `when` (a recovery strictly precedes anything its fresh node
// delivers at the same instant).
int incarnationAt(const std::vector<SimTime>& times, SimTime when) {
  return static_cast<int>(
      std::upper_bound(times.begin(), times.end(), when) - times.begin());
}

}  // namespace

std::set<ProcessId> recoveredProcesses(const CheckContext& ctx) {
  std::set<ProcessId> out;
  for (const auto& r : ctx.trace->recoveries) out.insert(r.process);
  return out;
}

Violations checkUniformIntegrity(const CheckContext& ctx) {
  Violations out;
  std::set<MsgId> cast;
  for (const auto& c : ctx.trace->casts) cast.insert(c.msg);
  const auto recTimes = recoveryTimes(ctx);

  // The duplicate check binds per (process, incarnation): an amnesiac
  // recovered process may re-deliver what its dead incarnation delivered,
  // but never the same message twice within one incarnation.
  std::map<std::tuple<ProcessId, int, MsgId>, int> count;
  for (const auto& d : ctx.trace->deliveries) {
    int inc = 0;
    if (auto it = recTimes.find(d.process); it != recTimes.end())
      inc = incarnationAt(it->second, d.when);
    ++count[{d.process, inc, d.msg}];
    if (!cast.count(d.msg))
      out.push_back(pname(d.process) + " delivered " + mname(d.msg) +
                    " which was never A-XCast");
    if (!isAddressee(ctx, d.process, d.msg))
      out.push_back(pname(d.process) + " delivered " + mname(d.msg) +
                    " but is not an addressee");
  }
  for (const auto& [key, n] : count) {
    if (n > 1)
      out.push_back(pname(std::get<0>(key)) + " delivered " +
                    mname(std::get<2>(key)) + " " + std::to_string(n) +
                    " times");
  }
  return out;
}

Violations checkRecoveredDelivery(const CheckContext& ctx) {
  Violations out;
  const auto recTimes = recoveryTimes(ctx);
  if (recTimes.empty()) return out;

  std::map<ProcessId, std::set<MsgId>> deliveredBy;
  for (const auto& d : ctx.trace->deliveries)
    deliveredBy[d.process].insert(d.msg);

  std::map<ProcessId, SimTime> lastCrash;
  for (const auto& c : ctx.trace->crashes)
    lastCrash[c.process] = std::max(lastCrash[c.process], c.when);

  for (const auto& [p, times] : recTimes) {
    const SimTime lastRecovery = times.back();
    // A process that crashed AGAIN after its final recovery ends the run
    // down: it owes no deliveries (crash-recover-crash is a legitimate
    // schedule, not a liveness failure).
    if (auto it = lastCrash.find(p);
        it != lastCrash.end() && it->second > lastRecovery)
      continue;
    for (const auto& c : ctx.trace->casts) {
      if (c.when <= lastRecovery) continue;  // pre-recovery: no obligation
      if (!isAddressee(ctx, p, c.msg)) continue;
      // Only messages the correct addressees all delivered: the protocol
      // demonstrably completed them, so the recovered process — alive the
      // whole time — must have delivered too.
      bool settled = true;
      for (ProcessId q : ctx.correct) {
        if (!isAddressee(ctx, q, c.msg)) continue;
        if (!deliveredBy[q].count(c.msg)) {
          settled = false;
          break;
        }
      }
      if (!settled) continue;
      if (!deliveredBy[p].count(c.msg))
        out.push_back("recovery: " + pname(p) + " (recovered at t=" +
                      std::to_string(lastRecovery) + "us) never delivered " +
                      mname(c.msg) + " cast at t=" + std::to_string(c.when) +
                      "us although every correct addressee did");
    }
  }
  return out;
}

Violations checkValidity(const CheckContext& ctx) {
  Violations out;
  std::map<ProcessId, std::set<MsgId>> deliveredBy;
  for (const auto& d : ctx.trace->deliveries)
    deliveredBy[d.process].insert(d.msg);

  for (const auto& c : ctx.trace->casts) {
    if (!ctx.correct.count(c.process)) continue;  // only correct senders
    for (ProcessId q : ctx.correct) {
      if (!isAddressee(ctx, q, c.msg)) continue;
      if (!deliveredBy[q].count(c.msg))
        out.push_back("validity: correct " + pname(q) + " never delivered " +
                      mname(c.msg) + " cast by correct " + pname(c.process));
    }
  }
  return out;
}

namespace {

Violations agreementImpl(const CheckContext& ctx, bool uniform) {
  Violations out;
  std::map<ProcessId, std::set<MsgId>> deliveredBy;
  std::set<MsgId> deliveredByAnyone;
  std::set<MsgId> deliveredByCorrect;
  for (const auto& d : ctx.trace->deliveries) {
    deliveredBy[d.process].insert(d.msg);
    deliveredByAnyone.insert(d.msg);
    if (ctx.correct.count(d.process)) deliveredByCorrect.insert(d.msg);
  }
  const auto& trigger = uniform ? deliveredByAnyone : deliveredByCorrect;
  for (MsgId m : trigger) {
    for (ProcessId q : ctx.correct) {
      if (!isAddressee(ctx, q, m)) continue;
      if (!deliveredBy[q].count(m))
        out.push_back(std::string(uniform ? "uniform " : "") +
                      "agreement: correct " + pname(q) +
                      " never delivered " + mname(m) +
                      " although it was delivered elsewhere");
    }
  }
  return out;
}

}  // namespace

Violations checkUniformAgreement(const CheckContext& ctx) {
  return agreementImpl(ctx, /*uniform=*/true);
}

Violations checkAgreementCorrectOnly(const CheckContext& ctx) {
  return agreementImpl(ctx, /*uniform=*/false);
}

Violations checkUniformPrefixOrder(const CheckContext& ctx) {
  // Recovered processes are skipped: an amnesiac rejoin restarts its
  // sequence mid-run, so no prefix comparison across the gap is sound
  // (see recoveredProcesses). Their deliveries still bind under uniform
  // agreement and per-incarnation integrity.
  const std::set<ProcessId> recovered = recoveredProcesses(ctx);
  std::set<ProcessId> all;
  for (ProcessId p : ctx.topo->allProcesses())
    if (!recovered.count(p)) all.insert(p);
  return prefixOrderOver(ctx, all);
}

Violations checkPrefixOrderCorrectOnly(const CheckContext& ctx) {
  return prefixOrderOver(ctx, ctx.correct);
}

Violations checkGenuineness(const CheckContext& ctx,
                            const GenuinenessInput& in) {
  Violations out;
  // Allowed participants: every sender and every addressee of cast messages.
  std::set<ProcessId> allowed;
  for (const auto& c : ctx.trace->casts) {
    allowed.insert(c.process);
    for (ProcessId p : ctx.topo->allProcesses())
      if (c.dest.contains(ctx.topo->group(p))) allowed.insert(p);
  }
  for (ProcessId p : in.sentAlgorithmic) {
    if (!allowed.count(p))
      out.push_back("genuineness: " + pname(p) +
                    " sent protocol messages but is neither sender nor "
                    "addressee of any cast message");
  }
  for (ProcessId p : in.receivedAlgorithmic) {
    if (!allowed.count(p))
      out.push_back("genuineness: " + pname(p) +
                    " received protocol messages but is neither sender nor "
                    "addressee of any cast message");
  }
  return out;
}

Violations checkQuiescence(const CheckContext& ctx, SimTime lastAlgoSend,
                           SimTime settleBudget) {
  Violations out;
  SimTime lastCast = 0;
  for (const auto& c : ctx.trace->casts)
    lastCast = std::max(lastCast, c.when);
  if (lastAlgoSend > lastCast + settleBudget) {
    std::ostringstream os;
    os << "quiescence: a protocol message was sent at t=" << lastAlgoSend
       << "us, more than " << settleBudget << "us after the last cast (t="
       << lastCast << "us)";
    out.push_back(os.str());
  }
  return out;
}

Violations checkAtomicSuite(const CheckContext& ctx) {
  Violations out;
  auto append = [&out](Violations v) {
    out.insert(out.end(), v.begin(), v.end());
  };
  append(checkUniformIntegrity(ctx));
  append(checkValidity(ctx));
  append(checkUniformAgreement(ctx));
  append(checkUniformPrefixOrder(ctx));
  return out;
}

}  // namespace wanmc::verify
