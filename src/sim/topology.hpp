// WAN topology: processes partitioned into disjoint groups.
//
// The paper's model (§2.1): Pi = {p1..pn}, Gamma = {g1..gm}, groups disjoint
// and covering Pi. Intra-group links are cheap/fast, inter-group links slow.
// We use a regular topology (every group the same size) by default, which is
// what the paper's Figure 1 accounting assumes (d processes per group), but
// ragged group sizes are supported.
#pragma once

#include <cassert>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace wanmc {

class Topology {
 public:
  Topology() = default;

  // Regular topology: `groups` groups of `procsPerGroup` processes each.
  Topology(int groups, int procsPerGroup)
      : Topology(std::vector<int>(static_cast<size_t>(groups),
                                  procsPerGroup)) {}

  // Ragged topology: sizes[g] processes in group g.
  // Throws std::invalid_argument beyond the GroupSet scale ceiling (a
  // 64-bit group bitmask) or on a non-positive group size: a silent
  // wraparound of the mask would corrupt every destination set.
  explicit Topology(std::vector<int> sizes) : sizes_(std::move(sizes)) {
    if (sizes_.size() > 64) {
      throw std::invalid_argument(
          "Topology: " + std::to_string(sizes_.size()) +
          " groups exceeds the GroupSet ceiling of 64 (destination sets "
          "are 64-bit group bitmasks; see ROADMAP scale ceilings)");
    }
    for (size_t g = 0; g < sizes_.size(); ++g) {
      if (sizes_[g] <= 0) {
        throw std::invalid_argument(
            "Topology: group " + std::to_string(g) + " has size " +
            std::to_string(sizes_[g]) + "; every group needs >= 1 process");
      }
    }
    groupOf_.clear();
    for (GroupId g = 0; g < static_cast<GroupId>(sizes_.size()); ++g) {
      firstPid_.push_back(static_cast<ProcessId>(groupOf_.size()));
      for (int i = 0; i < sizes_[static_cast<size_t>(g)]; ++i)
        groupOf_.push_back(g);
    }
  }

  [[nodiscard]] int numProcesses() const {
    return static_cast<int>(groupOf_.size());
  }
  [[nodiscard]] int numGroups() const {
    return static_cast<int>(sizes_.size());
  }
  [[nodiscard]] int groupSize(GroupId g) const {
    return sizes_[static_cast<size_t>(g)];
  }
  [[nodiscard]] GroupId group(ProcessId p) const {
    assert(p >= 0 && p < numProcesses());
    return groupOf_[static_cast<size_t>(p)];
  }
  [[nodiscard]] bool sameGroup(ProcessId a, ProcessId b) const {
    return group(a) == group(b);
  }

  [[nodiscard]] std::vector<ProcessId> members(GroupId g) const {
    std::vector<ProcessId> out;
    ProcessId first = firstPid_[static_cast<size_t>(g)];
    for (int i = 0; i < groupSize(g); ++i) out.push_back(first + i);
    return out;
  }

  [[nodiscard]] std::vector<ProcessId> membersOf(const GroupSet& gs) const {
    std::vector<ProcessId> out;
    for (GroupId g : gs.groups()) {
      auto ms = members(g);
      out.insert(out.end(), ms.begin(), ms.end());
    }
    return out;
  }

  [[nodiscard]] std::vector<ProcessId> allProcesses() const {
    std::vector<ProcessId> out(static_cast<size_t>(numProcesses()));
    std::iota(out.begin(), out.end(), 0);
    return out;
  }

  [[nodiscard]] GroupSet allGroups() const {
    return GroupSet::all(numGroups());
  }

 private:
  std::vector<int> sizes_;
  std::vector<GroupId> groupOf_;
  std::vector<ProcessId> firstPid_;
};

}  // namespace wanmc
