// The simulation runtime: scheduler + network + processes + instrumentation.
//
// Runtime is the deterministic implementation of exec::Context (the
// execution-backend interface every protocol stack is written against; see
// src/exec/context.hpp). It implements the paper's system model (§2.1):
//   * asynchronous message passing — per-message latency is drawn uniformly
//     from [min,max] ranges, one range for intra-group and one (orders of
//     magnitude larger) for inter-group links;
//   * quasi-reliable links — a message from a correct process to a correct
//     process is always delivered; messages to crashed processes vanish;
//     an optional drop filter injects omission faults for substrate tests;
//   * benign crash-stop failures — a crashed process sends nothing, receives
//     nothing, and fires no timers from the crash instant on.
//
// It also implements the paper's cost model (§2.3): a modified Lamport clock
// per process where ONLY inter-group sends tick the clock. Every A-XCast and
// A-Deliver is recorded against that clock so that latency degrees can be
// measured, not asserted.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/hot.hpp"
#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "exec/context.hpp"
#include "sim/observer.hpp"
#include "sim/scheduler.hpp"
#include "sim/topology.hpp"

namespace wanmc::sim {

// Historical names, now defined by the execution-backend interface. Sim-side
// code (tests, harnesses, examples) keeps reading naturally; backend-agnostic
// code should name the exec:: originals (lint rule D6).
using LatencyModel = exec::LatencyModel;
using ChannelHook = exec::ChannelHook;
using Node = exec::Process;

class Runtime final : public exec::Context {
 public:
  Runtime(Topology topo, LatencyModel latency, uint64_t seed)
      : topo_(std::move(topo)),
        latency_(latency),
        rng_(SplitMix64(seed).fork(0xa11ce)),
        lossRng_(SplitMix64(seed).fork(0x105eca11)),
        lamport_(static_cast<size_t>(topo_.numProcesses()), 0),
        crashed_(static_cast<size_t>(topo_.numProcesses()), 0),
        everCrashed_(static_cast<size_t>(topo_.numProcesses()), 0),
        incarnation_(static_cast<size_t>(topo_.numProcesses()), 0),
        nodes_(static_cast<size_t>(topo_.numProcesses()), nullptr),
        sentAlgo_(static_cast<size_t>(topo_.numProcesses()), 0),
        recvAlgo_(static_cast<size_t>(topo_.numProcesses()), 0),
        perProcOrder_(static_cast<size_t>(topo_.numProcesses()), 0),
        intraDraw_(latency_.intraMin, latency_.intraMax),
        interDraw_(latency_.interMin, latency_.interMax) {
    latency_.validate();
  }

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- wiring ------------------------------------------------------------

  // Takes ownership of the node hosting process `pid`.
  void attach(ProcessId pid, std::unique_ptr<Node> node) override;

  [[nodiscard]] Node& node(ProcessId pid) override {
    assert(owned_[static_cast<size_t>(pid)]);
    return *nodes_[static_cast<size_t>(pid)];
  }

  // ---- simulation control --------------------------------------------------

  // Calls Node::onStart on every attached node (at the current sim time) and
  // runs until quiescence or `until`.
  void start();
  uint64_t run(SimTime until = kTimeNever, uint64_t maxEvents = UINT64_MAX);
  bool stepOne() { return sched_.step(); }

  [[nodiscard]] SimTime now() const override { return sched_.now(); }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Topology& topology() const override { return topo_; }
  [[nodiscard]] SplitMix64& rng() { return rng_; }

  // Recycler for per-interval protocol payloads (see common/arena.hpp).
  // Owned by the runtime so pooled payloads may be held by ANY node or
  // in-flight event: the arena is destroyed after all of them.
  [[nodiscard]] ArenaPool& payloadArena() override { return payloadArena_; }

  // ---- messaging (used by Node) -------------------------------------------

  // One send event, many copies: see exec::Context::multicast for the
  // Lamport-stamping contract this implements.
  WANMC_HOT void multicast(ProcessId from, const std::vector<ProcessId>& tos,
                           PayloadPtr payload) override;

  // Omission-fault injection hook for substrate tests. Return true to drop.
  using DropFilter =
      std::function<bool(ProcessId from, ProcessId to, const Payload&)>;
  void setDropFilter(DropFilter f) { drop_ = std::move(f); }

  // ---- loss model ----------------------------------------------------------
  //
  // Iid per-copy drop probability, applied to every wire copy after link
  // state and the drop filter but before the latency draw. The coins come
  // from their OWN SplitMix64 stream forked from the run seed, so arming
  // loss never perturbs the latency draws of the copies that survive, and
  // p = 0 consumes no randomness at all (byte-identical to today).
  void setLossRate(double p);
  [[nodiscard]] double lossRate() const { return lossP_; }

  // ---- reliable-channel substrate -----------------------------------------

  void setChannelHook(ChannelHook* hook) override { channelHook_ = hook; }
  [[nodiscard]] ChannelHook* channelHook() const override {
    return channelHook_;
  }
  [[nodiscard]] const LatencyModel& latencyModel() const override {
    return latency_;
  }

  WANMC_HOT void channelSend(ProcessId from, ProcessId to, PayloadPtr payload,
                             Layer accountLayer) override;

  void deliverFromChannel(ProcessId from, ProcessId to,
                          const PayloadPtr& payload, uint64_t sendTs) override;

  // ---- timers --------------------------------------------------------------

  // Node timers are registered through exec::Context::timer, which lands in
  // scheduleTimer below; the callable is stored inline in the scheduler's
  // event pool when it fits (see EventCallable and exec::SmallFn), so
  // routine protocol timers do not allocate.
  void cancelTimer(EventId id) override { sched_.cancel(id); }

  // ---- failures ------------------------------------------------------------

  void crash(ProcessId pid);
  void scheduleCrash(ProcessId pid, SimTime when);
  void addCrashListener(ProcessId owner,
                        std::function<void(ProcessId)> fn) override {
    crashListeners_.push_back(
        {owner, incarnation(owner), std::move(fn)});
  }
  void addRecoveryListener(ProcessId owner,
                           std::function<void(ProcessId)> fn) override {
    recoveryListeners_.push_back(
        {owner, incarnation(owner), std::move(fn)});
  }
  [[nodiscard]] bool crashed(ProcessId pid) const override {
    return crashed_[static_cast<size_t>(pid)] != 0;
  }
  [[nodiscard]] bool everCrashed(ProcessId pid) const override {
    return everCrashed_[static_cast<size_t>(pid)] != 0;
  }
  [[nodiscard]] int aliveInGroup(GroupId g) const override;

  // ---- recovery ------------------------------------------------------------
  //
  // recover(pid) reinstates a crashed process as a FRESH incarnation: the
  // old node object is destroyed, a new one is built by the node factory,
  // attached, and started (so its protocol timers re-register through the
  // scheduler). Protocol state is reset — this is the crash-recovery model
  // without stable storage. Timers and listeners of the dead incarnation
  // are incarnation-guarded and can never fire into the new node; wire
  // copies already in flight TO the process are delivered if it is alive
  // when they arrive (quasi-reliable, non-FIFO channels).

  using NodeFactory = std::function<std::unique_ptr<Node>(ProcessId)>;
  void setNodeFactory(NodeFactory f) { nodeFactory_ = std::move(f); }

  // Immediate recovery; requires a node factory and crashed(pid).
  void recover(ProcessId pid);
  // Scheduled recovery at `when` (>= now). Recovering a process that is
  // not crashed at fire time is a no-op.
  void scheduleRecover(ProcessId pid, SimTime when);

  [[nodiscard]] uint32_t incarnation(ProcessId pid) const override {
    return incarnation_[static_cast<size_t>(pid)];
  }

  // ---- dynamic link state --------------------------------------------------
  //
  // A partition cuts every link between a group in `side` and a group
  // outside it during [from, until): copies SENT while a link is down are
  // dropped deterministically (and counted in trace().linkDrops); copies
  // already in flight when the cut activates still arrive — the partition
  // is a property of the network, not of queued events, so pending timers
  // and deliveries survive. Cut/heal transitions are scheduler events:
  // their order against same-instant sends is the deterministic
  // (time, insertion-sequence) order every other event obeys.

  using PartitionId = uint32_t;
  static constexpr PartitionId kNoPartition = UINT32_MAX;

  // Cut `side` from the rest of the topology during [from, until).
  // `until` = kTimeNever keeps the partition until heal()/healAll().
  // Throws std::invalid_argument on an empty/out-of-range side or an
  // inverted window.
  PartitionId partition(GroupSet side, SimTime from,
                        SimTime until = kTimeNever);
  // Heals partition `id` now (idempotent; before its cut activates, the
  // cut is cancelled).
  void heal(PartitionId id);
  // Heals every active or scheduled partition now.
  void healAll();
  // One symmetric process-pair link down during [from, until).
  void cutLink(ProcessId a, ProcessId b, SimTime from, SimTime until);
  // Is the (directed) link from->to up right now?
  [[nodiscard]] bool linkUp(ProcessId from, ProcessId to) const;

  [[nodiscard]] FaultStats faultStats() const {
    return faultStatsOf(trace_);
  }

  // ---- instrumentation -----------------------------------------------------

  [[nodiscard]] uint64_t lamport(ProcessId pid) const override {
    return lamport_[static_cast<size_t>(pid)];
  }

  void recordCast(ProcessId pid, const AppMsgPtr& m) override;
  void recordDelivery(ProcessId pid, MsgId msg) override;

  // ---- observer plane ------------------------------------------------------
  //
  // Typed observers (sim/observer.hpp) see cast/delivery/send events
  // synchronously, in registration order. Observers are passive: they never
  // draw from the runtime RNG, and anything they schedule goes through the
  // deterministic scheduler, so observation never perturbs reproducibility.

  // Registers a NON-OWNING observer for the instrumentation points named in
  // `interests` (a mask of ObserverInterest bits). There is no removal: the
  // observer must stay alive as long as the runtime dispatches events. The
  // runtime never invokes observers from its destructor, so an observer may
  // be destroyed before the runtime once the simulation is done.
  void addObserver(RunObserver* obs, uint32_t interests) {
    if (interests & kObserveCasts) castObservers_.push_back(obs);
    if (interests & kObserveDeliveries) deliveryObservers_.push_back(obs);
    if (interests & kObserveSends) sendObservers_.push_back(obs);
  }

  [[nodiscard]] const RunTrace& trace() const override { return trace_; }
  [[nodiscard]] RunTrace& trace() { return trace_; }
  [[nodiscard]] const TrafficStats& traffic() const override {
    return traffic_;
  }

  void setRecordWire(bool on) { recordWire_ = on; }

  [[nodiscard]] SimTime lastAlgorithmicSend() const override {
    return lastAlgoSend_;
  }

  [[nodiscard]] bool everSentAlgorithmic(ProcessId pid) const override {
    return sentAlgo_[static_cast<size_t>(pid)] != 0;
  }
  [[nodiscard]] bool everReceivedAlgorithmic(ProcessId pid) const override {
    return recvAlgo_[static_cast<size_t>(pid)] != 0;
  }

  // ---- harness surface (exec::Context) ------------------------------------

  // Unguarded absolute-time harness event: lands in the same deterministic
  // (time, insertion-sequence) order as every other scheduler event.
  EventId harnessAt(SimTime when, exec::SmallFn fn) override {
    return sched_.at(when > sched_.now() ? when : sched_.now(),
                     std::move(fn));
  }
  void harnessCancel(EventId id) override { sched_.cancel(id); }

  // The sim backend is single-threaded: "run on pid's context" is an
  // immediate synchronous call, preserving the exact legacy event order.
  void post(ProcessId, exec::SmallFn fn) override { fn(); }

 protected:
  EventId scheduleTimer(ProcessId pid, SimTime delay,
                        exec::SmallFn fn) override {
    return sched_.at(sched_.now() + delay,
                     TimerGuard{this, pid, incarnation(pid), std::move(fn)});
  }

 private:
  // Suppresses a timer whose process crashed — or crashed AND recovered —
  // before it fired: a recovered process is a new incarnation, and the old
  // incarnation's timers must not fire into the fresh node (their captures
  // point into the destroyed one). Sized to stay inline in the scheduler's
  // event pool (see exec::SmallFn::kInlineSize).
  struct TimerGuard {
    Runtime* rt;
    ProcessId pid;
    uint32_t inc;
    exec::SmallFn fn;
    void operator()() {
      if (!rt->crashed(pid) && rt->incarnation(pid) == inc) fn();
    }
  };
  static_assert(sizeof(TimerGuard) <= EventCallable::kInlineSize,
                "protocol timers must stay inline in the event pool");

  // One multicast fan-out: the payload, stamp, and layer are stored ONCE in
  // a pooled record; each copy on the wire is only a POD (when, seq, slot)
  // heap entry plus a Delivery referencing the record. `pending` counts
  // copies still in flight; the record returns to the free list when the
  // last one fires. Delivery events are internal and never cancelled, so
  // the count cannot strand a record.
  struct Fanout {
    PayloadPtr payload;
    ProcessId from = kNoProcess;
    Layer layer = Layer::kApp;
    uint64_t sendTs = 0;
    uint32_t pending = 0;
  };
  struct Delivery {
    Runtime* rt;
    Fanout* f;
    ProcessId to;
    void operator()() const { rt->deliverCopy(*f, to); }
  };

  // One channel wire copy in flight (channelSend). Arrival goes back to the
  // hook, not to the node: the plane decides when the packet reaches its
  // in-order point. Small enough to stay inline in the scheduler pool.
  struct ChanDelivery {
    Runtime* rt;
    ProcessId from;
    ProcessId to;
    PayloadPtr payload;
    void operator()() const {
      if (!rt->crashed(to) && rt->channelHook_ != nullptr)
        rt->channelHook_->onWireArrive(from, to, payload);
    }
  };

  Fanout* acquireFanout() {
    if (!fanoutFree_.empty()) {
      Fanout* f = fanoutFree_.back();
      fanoutFree_.pop_back();
      return f;
    }
    fanoutSlab_.emplace_back();
    return &fanoutSlab_.back();
  }
  void releaseFanout(Fanout* f) {
    f->payload.reset();
    fanoutFree_.push_back(f);
  }
  WANMC_HOT void deliverCopy(Fanout& f, ProcessId to);

  Topology topo_;
  ArenaPool payloadArena_;  // first: destroyed after nodes and events
  LatencyModel latency_;
  SplitMix64 rng_;
  SplitMix64 lossRng_;  // separate stream: loss never perturbs latency draws
  Scheduler sched_;

  // One crash/recovery listener, owned by a process incarnation: dispatch
  // skips (and purge removes) entries whose owner has moved on.
  struct OwnedListener {
    ProcessId owner;
    uint32_t inc;
    std::function<void(ProcessId)> fn;
  };
  void dispatchListeners(const std::vector<OwnedListener>& listeners,
                         ProcessId subject) {
    // Indexed loop + per-entry copy: a callback may register further
    // listeners while we iterate, reallocating the vector under us.
    for (size_t i = 0; i < listeners.size(); ++i) {
      OwnedListener l = listeners[i];
      if (incarnation(l.owner) == l.inc) l.fn(subject);
    }
  }
  static void purgeListeners(std::vector<OwnedListener>& listeners,
                             ProcessId owner, uint32_t liveInc) {
    std::erase_if(listeners, [owner, liveInc](const OwnedListener& l) {
      return l.owner == owner && l.inc != liveInc;
    });
  }

  // One scheduled partition. `side` stays fixed; the partition moves
  // through scheduled -> active -> healed (heal() can also cancel a
  // not-yet-active cut).
  struct Partition {
    GroupSet side;
    bool active = false;
    bool healed = false;
  };
  void activatePartition(PartitionId id);
  void adjustGroupCuts(const GroupSet& side, int delta);
  [[nodiscard]] bool groupLinkCut(GroupId a, GroupId b) const {
    return groupCut_[static_cast<size_t>(a) *
                         static_cast<size_t>(topo_.numGroups()) +
                     static_cast<size_t>(b)] != 0;
  }

  // One per-link down window (symmetric), evaluated by time.
  struct LinkWindow {
    ProcessId a = kNoProcess;
    ProcessId b = kNoProcess;
    SimTime from = 0;
    SimTime until = kTimeNever;
  };

  std::vector<uint64_t> lamport_;
  std::vector<uint8_t> crashed_;
  std::vector<uint8_t> everCrashed_;
  std::vector<uint32_t> incarnation_;
  std::vector<Node*> nodes_;
  std::vector<std::unique_ptr<Node>> owned_;
  NodeFactory nodeFactory_;

  // Dynamic link state. `anyLinkState_` gates the per-copy check so runs
  // without partitions/cut links pay nothing on the send hot path.
  bool anyLinkState_ = false;
  std::vector<Partition> partitions_;
  std::vector<uint16_t> groupCut_;  // numGroups^2 cut counts
  std::vector<LinkWindow> linkWindows_;

  DropFilter drop_;
  ChannelHook* channelHook_ = nullptr;
  double lossP_ = 0;  // iid per-copy drop probability
  std::vector<OwnedListener> crashListeners_;
  std::vector<OwnedListener> recoveryListeners_;
  std::vector<RunObserver*> castObservers_;
  std::vector<RunObserver*> deliveryObservers_;
  std::vector<RunObserver*> sendObservers_;
  RunTrace trace_;
  TrafficStats traffic_;
  bool recordWire_ = false;
  SimTime lastAlgoSend_ = -1;
  std::vector<uint8_t> sentAlgo_;
  std::vector<uint8_t> recvAlgo_;
  std::vector<uint64_t> perProcOrder_;

  std::deque<Fanout> fanoutSlab_;      // stable addresses for Delivery
  std::vector<Fanout*> fanoutFree_;
  std::vector<uint8_t> interScratch_;  // per-destination flags, reused

  // Latency spans are fixed per run, so the draw modulo uses precomputed
  // FastMod magic. Bit-identical to SplitMix64::uniform(min, max),
  // including the jitter-free case, which consumes NO random draw.
  struct LatencyDraw {
    SimTime min = 0;
    uint64_t span = 0;  // 0: fixed latency, no draw
    FastMod mod;
    explicit LatencyDraw(SimTime lo = 0, SimTime hi = 0)
        : min(lo),
          span(lo < hi ? static_cast<uint64_t>(hi - lo) + 1 : 0),
          mod(span > 0 ? FastMod(span) : FastMod()) {}
  };
  LatencyDraw intraDraw_{0, 0};
  LatencyDraw interDraw_{0, 0};

  SimTime drawLatency(bool interGroup) {
    const LatencyDraw& d = interGroup ? interDraw_ : intraDraw_;
    if (d.span == 0) return d.min;
    return d.min + static_cast<SimTime>(d.mod(rng_.next()));
  }
};

}  // namespace wanmc::sim
