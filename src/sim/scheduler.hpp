// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so a run is a pure
// function of the seed and the initial configuration.
//
// The hot path is allocation-free and built for the simulator's delay
// profile (intra-group ~1-2ms, inter-group ~100ms, timers ~10-200ms):
//
//  * The pending set is a two-level calendar: a ring of 1ms buckets
//    covering a ~2s near window (each bucket a small sorted vector of POD
//    (when, seq, slot) keys, pops O(1), inserts nearly always appends),
//    backed by a 4-ary heap for far-future events that migrates entries
//    into the ring as the window advances. Both levels order by
//    (when, seq), so fire order is identical to a single global queue.
//  * Event state lives in a chunked slab of pooled slots; callables are
//    stored in a small-buffer-optimized EventCallable and fired in place,
//    so routine timer and delivery events never touch the general heap.
//  * EventIds are generation tagged: cancel() is O(1), idempotent, and
//    safe against ids that already fired or whose slot has been reused —
//    no tombstone set to leak.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hot.hpp"
#include "common/time.hpp"

namespace wanmc::sim {

using EventFn = std::function<void()>;

// Generation-tagged event handle: (generation << 32) | slot. The zero value
// is never issued, so it can serve as a "no event" sentinel.
using EventId = uint64_t;
inline constexpr EventId kNoEvent = 0;

// Move-only type-erased callable with inline storage. Anything up to
// kInlineSize bytes (which covers the runtime's delivery records, timer
// guards, and a std::function) is stored in place; larger callables fall
// back to one heap allocation.
class EventCallable {
 public:
  static constexpr size_t kInlineSize = 56;

  EventCallable() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallable>>>
  EventCallable(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  EventCallable(EventCallable&& o) noexcept { moveFrom(o); }
  EventCallable& operator=(EventCallable&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }
  EventCallable(const EventCallable&) = delete;
  EventCallable& operator=(const EventCallable&) = delete;
  ~EventCallable() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  void operator()() { vt_->call(buf_); }

  void reset() {
    if (vt_ != nullptr) {
      // Routine events (delivery records, POD timer guards) are trivially
      // destructible: skip the indirect destroy call for them.
      if (!vt_->trivialDestroy) vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*call)(void*);
    void (*destroy)(void*);
    void (*relocate)(void* src, void* dst);  // move into dst, destroy src
    bool trivialDestroy;
  };

  template <class D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class F>
  WANMC_HOT void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      static constexpr VTable vt{
          [](void* p) { (*static_cast<D*>(p))(); },
          [](void* p) { static_cast<D*>(p)->~D(); },
          [](void* src, void* dst) {
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
          },
          std::is_trivially_destructible_v<D>};
      vt_ = &vt;
    } else {
      // wanmc-lint: allow(D5): cold fallback for callables beyond the
      // 56-byte inline buffer; every routine event type fits inline
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      static constexpr VTable vt{
          [](void* p) { (**static_cast<D**>(p))(); },
          [](void* p) { delete *static_cast<D**>(p); },
          [](void* src, void* dst) {
            ::new (dst) D*(*static_cast<D**>(src));
          },
          false};
      vt_ = &vt;
    }
  }

  void moveFrom(EventCallable& o) {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

class Scheduler {
 public:
  template <class F>
  WANMC_HOT EventId at(SimTime when, F&& fn) {
    const uint32_t idx = allocSlot();
    Slot& s = slot(idx);
    s.fn = EventCallable(std::forward<F>(fn));
    s.live = true;
    push(Entry{when, nextSeq_++, idx});
    ++live_;
    return makeId(s.gen, idx);
  }

  // O(1) and idempotent. Cancelling an id that already fired, was already
  // cancelled, or was never issued is a no-op: the generation tag no longer
  // matches any live slot. The dead queue entry is discarded when it
  // surfaces; nothing accumulates.
  void cancel(EventId id) {
    const auto idx = static_cast<uint32_t>(id & 0xffffffffu);
    const auto gen = static_cast<uint32_t>(id >> 32);
    if (idx >= slotCount_) return;
    Slot& s = slot(idx);
    if (!s.live || s.gen != gen) return;
    s.live = false;
    s.fn.reset();  // release captured state eagerly
    --live_;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  // Scheduled-but-not-yet-fired events, cancellations excluded. Maintained
  // as a counter: it can neither underflow nor drift.
  [[nodiscard]] size_t pendingEvents() const { return live_; }

  // Run a single event. Returns false if the queue is exhausted.
  WANMC_HOT bool step() {
    for (;;) {
      const Entry* top = peek();
      if (top == nullptr) return false;
      const Entry e = *top;
      dropTop();
      Slot& s = slot(e.slot);
      if (!s.live) {
        freeSlot(e.slot);
        continue;
      }
      s.live = false;
      --live_;
      now_ = e.when;
      // Fired IN PLACE: slot storage is chunked (stable across the growth
      // the callable may cause) and the slot joins the free list only after
      // the call, so a newly scheduled event cannot overwrite it.
      s.fn();
      freeSlot(e.slot);
      return true;
    }
  }

  // Run until the queue is exhausted or `until` is reached (events stamped
  // after `until` stay queued). Returns the number of events fired.
  WANMC_HOT uint64_t run(SimTime until = kTimeNever,
                         uint64_t maxEvents = UINT64_MAX) {
    uint64_t fired = 0;
    while (fired < maxEvents) {
      const Entry* top = peek();
      if (top == nullptr) break;
      const Entry e = *top;
      Slot& s = slot(e.slot);
      if (!s.live) {  // cancelled: discard and recycle
        dropTop();
        freeSlot(e.slot);
        continue;
      }
      if (e.when > until) break;
      dropTop();
      s.live = false;
      --live_;
      now_ = e.when;
      s.fn();  // in place, see step()
      freeSlot(e.slot);
      ++fired;
    }
    if (now_ < until && until != kTimeNever) now_ = until;
    return fired;
  }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;   // insertion sequence: FIFO tie-break at equal times
    uint32_t slot;
  };

  static bool earlier(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  // ---- calendar ring + far heap -------------------------------------------
  //
  // Bucket b of the ring holds entries with `when` in one kBucketWidth-wide
  // interval; bucket intervals are disjoint and increase from cursor_, so
  // the global minimum is always the head of the first nonempty bucket.
  // Entries stamped beyond the window wait in a 4-ary heap and migrate as
  // the window advances; entries stamped at or before the window start
  // (possible only for "fire immediately" events) clamp to the cursor
  // bucket, where in-bucket ordering keeps them first.

  static constexpr SimTime kBucketWidth = 1000;  // 1ms, in SimTime units
  static constexpr size_t kNumBuckets = 2048;    // ~2s near window
  static constexpr SimTime kSpan = kBucketWidth * kNumBuckets;

  struct Bucket {
    std::vector<Entry> evs;  // ascending (when, seq) from index `head`
    uint32_t head = 0;       // popped prefix (nonzero only at the cursor)
  };

  [[nodiscard]] bool inWindow(SimTime when) const {
    // Unsigned difference: well-defined for when >= windowStart_ and never
    // overflows (windowStart_ + kSpan might).
    return when <= windowStart_ ||
           static_cast<uint64_t>(when - windowStart_) <
               static_cast<uint64_t>(kSpan);
  }

  // True iff `when` sorts before the end of the bucket starting at `start`
  // (overflow-safe: never computes start + width).
  static bool beforeBucketEnd(SimTime when, SimTime start) {
    return when < start || when - start < kBucketWidth;
  }

  void push(const Entry& e) {
    if (!inWindow(e.when)) {
      farPush(e);
      return;
    }
    const size_t idx =
        e.when <= windowStart_
            ? cursor_
            : (cursor_ + static_cast<size_t>((e.when - windowStart_) /
                                             kBucketWidth)) %
                  kNumBuckets;
    Bucket& b = buckets_[idx];
    if (b.evs.empty() || earlier(b.evs.back(), e)) {
      b.evs.push_back(e);  // the common case: newest event sorts last
    } else {
      auto it = std::upper_bound(
          b.evs.begin() + b.head, b.evs.end(), e,
          [](const Entry& x, const Entry& y) { return earlier(x, y); });
      b.evs.insert(it, e);
    }
    markNonempty(idx);
    ++queuedNear_;
  }

  // Pointer to the globally earliest entry, advancing the window as needed.
  // Returns nullptr when the queue is exhausted. The pointer is valid until
  // the next push/dropTop.
  const Entry* peek() {
    // Fast path: the cursor bucket already holds the minimum. Safe with no
    // far-heap check: whenever the cursor bucket is nonempty, every far
    // entry sorts after its end (far entries preceding it were migrated
    // when the cursor parked here, and entries pushed far since then are
    // stamped at least a full window ahead).
    {
      Bucket& b = buckets_[cursor_];
      if (b.head < b.evs.size()) return &b.evs[b.head];
    }
    for (;;) {
      while (queuedNear_ > 0) {
        // Jump straight to the first nonempty bucket in ring order — a
        // bitmap word scan, not a walk over empty bucket headers.
        const size_t idx = firstNonemptyFrom(cursor_);
        const size_t dist = (idx - cursor_ + kNumBuckets) % kNumBuckets;
        const SimTime targetStart =
            windowStart_ + static_cast<SimTime>(dist) * kBucketWidth;
        // Far events that sort before the target bucket's end must enter
        // the ring first (they may have drifted into the window since they
        // were pushed); they land at or before the target, so rescan.
        if (!far_.empty() && beforeBucketEnd(far_.front().when, targetStart)) {
          do {
            const Entry e = far_.front();
            farPop();
            push(e);
          } while (!far_.empty() &&
                   beforeBucketEnd(far_.front().when, targetStart));
          continue;
        }
        cursor_ = idx;
        windowStart_ = targetStart;
        Bucket& b = buckets_[idx];
        return &b.evs[b.head];
      }
      if (far_.empty()) return nullptr;
      // The ring is empty: jump the window to the earliest far event. Every
      // bucket is empty, so relabeling the ring at cursor_ = 0 is safe.
      windowStart_ = far_.front().when - (far_.front().when % kBucketWidth);
      cursor_ = 0;
      while (!far_.empty() && inWindow(far_.front().when)) {
        const Entry e = far_.front();
        farPop();
        push(e);
      }
    }
  }

  void dropTop() {
    Bucket& b = buckets_[cursor_];
    if (++b.head == b.evs.size()) {
      b.evs.clear();
      b.head = 0;
      clearNonempty(cursor_);
    }
    --queuedNear_;
  }

  // ---- nonempty-bucket bitmap ---------------------------------------------

  void markNonempty(size_t idx) {
    bits_[idx >> 6] |= uint64_t{1} << (idx & 63);
  }
  void clearNonempty(size_t idx) {
    bits_[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }
  // First nonempty bucket in ring order starting at `from`. Requires
  // queuedNear_ > 0 (some bit is set).
  [[nodiscard]] size_t firstNonemptyFrom(size_t from) const {
    constexpr size_t kWords = kNumBuckets / 64;
    size_t w = from >> 6;
    uint64_t word = bits_[w] & (~uint64_t{0} << (from & 63));
    for (size_t i = 0; i <= kWords; ++i) {
      if (word != 0)
        return (w << 6) + static_cast<size_t>(__builtin_ctzll(word));
      w = (w + 1) % kWords;
      word = bits_[w];
    }
    return from;  // unreachable while the ring holds entries
  }

  // ---- far events: 4-ary heap over the same POD keys ----------------------

  void farPush(const Entry& e) {
    far_.push_back(e);
    size_t i = far_.size() - 1;
    while (i > 0) {
      const size_t parent = (i - 1) / 4;
      if (!earlier(e, far_[parent])) break;
      far_[i] = far_[parent];
      i = parent;
    }
    far_[i] = e;
  }

  void farPop() {
    const Entry last = far_.back();
    far_.pop_back();
    if (far_.empty()) return;
    size_t i = 0;
    const size_t n = far_.size();
    for (;;) {
      const size_t first = 4 * i + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t end = std::min(first + 4, n);
      for (size_t c = first + 1; c < end; ++c)
        if (earlier(far_[c], far_[best])) best = c;
      if (!earlier(far_[best], last)) break;
      far_[i] = far_[best];
      i = best;
    }
    far_[i] = last;
  }

  // ---- event slots ---------------------------------------------------------

  struct Slot {
    EventCallable fn;
    uint32_t gen = 1;       // bumped on free; stale EventIds never match
    uint32_t freeNext = kNoSlot;
    bool live = false;
  };
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  static EventId makeId(uint32_t gen, uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // Slot storage is a chunked slab: addresses are stable while an event
  // fires in place, and a slot index addresses its chunk with two loads.
  static constexpr uint32_t kChunkShift = 10;  // 1024 slots per chunk
  static constexpr uint32_t kChunkMask = (1u << kChunkShift) - 1;

  Slot& slot(uint32_t i) {
    // Nearly every run stays within the first chunk; its pointer is cached
    // to make the common slot access a single indirection.
    if (i < (1u << kChunkShift)) return chunk0_[i];
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  uint32_t allocSlot() {
    if (freeHead_ != kNoSlot) {
      const uint32_t idx = freeHead_;
      freeHead_ = slot(idx).freeNext;
      return idx;
    }
    if ((slotCount_ >> kChunkShift) == chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(size_t{1} << kChunkShift));
      if (chunks_.size() == 1) chunk0_ = chunks_.front().get();
    }
    return slotCount_++;
  }

  // A slot is recycled only once its queue entry has been popped, so a live
  // entry can never alias a reused slot.
  void freeSlot(uint32_t idx) {
    Slot& s = slot(idx);
    s.fn.reset();
    if (++s.gen == 0) s.gen = 1;  // keep ids nonzero across wraparound
    s.freeNext = freeHead_;
    freeHead_ = idx;
  }

  std::vector<Bucket> buckets_{kNumBuckets};
  uint64_t bits_[kNumBuckets / 64] = {};  // bit b: bucket b is nonempty
  size_t cursor_ = 0;         // bucket whose interval starts at windowStart_
  SimTime windowStart_ = 0;
  size_t queuedNear_ = 0;     // ring entries, cancelled included
  std::vector<Entry> far_;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* chunk0_ = nullptr;
  uint32_t slotCount_ = 0;
  uint32_t freeHead_ = kNoSlot;
  uint64_t nextSeq_ = 1;
  size_t live_ = 0;
  SimTime now_ = 0;
};

}  // namespace wanmc::sim
