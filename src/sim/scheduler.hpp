// Deterministic discrete-event scheduler.
//
// Events fire in (time, insertion-sequence) order, so a run is a pure
// function of the seed and the initial configuration. Cancellation is
// tombstone-based: timers return an id which can be cancelled in O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace wanmc::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Scheduler {
 public:
  EventId at(SimTime when, EventFn fn) {
    EventId id = nextId_++;
    queue_.push(Entry{when, id, std::move(fn)});
    return id;
  }

  void cancel(EventId id) { cancelled_.insert(id); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] size_t pendingEvents() const {
    return queue_.size() - cancelled_.size();
  }

  // Run a single event. Returns false if the queue is exhausted.
  bool step() {
    while (!queue_.empty()) {
      Entry e = queue_.top();
      queue_.pop();
      if (cancelled_.erase(e.id) > 0) continue;
      now_ = e.when;
      e.fn();
      return true;
    }
    return false;
  }

  // Run until the queue is exhausted or `until` is reached (events stamped
  // after `until` stay queued). Returns the number of events fired.
  uint64_t run(SimTime until = kTimeNever, uint64_t maxEvents = UINT64_MAX) {
    uint64_t fired = 0;
    while (fired < maxEvents && !queue_.empty()) {
      const Entry& top = queue_.top();
      if (cancelled_.count(top.id)) {
        cancelled_.erase(top.id);
        queue_.pop();
        continue;
      }
      if (top.when > until) break;
      Entry e = top;
      queue_.pop();
      now_ = e.when;
      e.fn();
      ++fired;
    }
    if (now_ < until && until != kTimeNever) now_ = until;
    return fired;
  }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0;
  EventId nextId_ = 1;
};

}  // namespace wanmc::sim
