// Typed run-observer registry: the simulator's measurement plane.
//
// A RunObserver subscribes to the runtime's instrumentation points — cast,
// delivery, and wire-send events — and sees each event exactly once, at the
// instant the runtime records it. Observers are PASSIVE: they must not draw
// from the runtime RNG and anything they schedule goes through the
// deterministic scheduler, so observation never perturbs a run (the golden
// fingerprints pin this).
//
// This generalizes (and since PR 10 fully replaces) the PR 3
// addDeliveryObserver hook: the metrics recorder (src/metrics/), the
// streaming order checkers (src/verify/streaming.hpp), and the experiment's
// closed-loop workload feedback all feed off this plane instead of
// rescanning the RunTrace after the fact.
#pragma once

#include <cstdint>

#include "common/trace.hpp"

namespace wanmc::sim {

// Which instrumentation points an observer wants. Passed at registration so
// the runtime only walks the lists that are non-empty — an unobserved run
// pays one empty-vector check per event kind, nothing per observer.
enum ObserverInterest : uint32_t {
  kObserveCasts = 1u << 0,       // every recordCast (A-XCast)
  kObserveDeliveries = 1u << 1,  // every recordDelivery (A-Deliver)
  kObserveSends = 1u << 2,       // every wire copy handed to the network
};

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  // An A-XCast was recorded. `ev` is the trace entry (already stamped).
  virtual void onCast(const CastEvent& ev) { (void)ev; }
  // An A-Deliver was recorded.
  virtual void onDeliver(const DeliveryEvent& ev) { (void)ev; }
  // One wire copy was handed to the network (counted even if a drop filter
  // later discards it — this mirrors the TrafficStats accounting).
  virtual void onSend(const WireEvent& ev) { (void)ev; }
};

}  // namespace wanmc::sim
