#include "sim/runtime.hpp"

namespace wanmc::sim {

void Runtime::attach(ProcessId pid, std::unique_ptr<Node> node) {
  assert(pid >= 0 && pid < topo_.numProcesses());
  const auto n = static_cast<size_t>(topo_.numProcesses());
  if (sentAlgo_.size() != n) {
    sentAlgo_.assign(n, 0);
    recvAlgo_.assign(n, 0);
  }
  if (perProcOrder_.size() != n) perProcOrder_.assign(n, 0);
  nodes_[static_cast<size_t>(pid)] = node.get();
  owned_.push_back(std::move(node));
}

void Runtime::start() {
  const auto n = static_cast<size_t>(topo_.numProcesses());
  if (sentAlgo_.size() != n) {
    sentAlgo_.assign(n, 0);
    recvAlgo_.assign(n, 0);
  }
  if (perProcOrder_.size() != n) perProcOrder_.assign(n, 0);
  for (ProcessId p = 0; p < topo_.numProcesses(); ++p) {
    Node* node = nodes_[static_cast<size_t>(p)];
    assert(node != nullptr && "every process must have an attached node");
    if (!crashed(p)) node->onStart();
  }
}

uint64_t Runtime::run(SimTime until, uint64_t maxEvents) {
  return sched_.run(until, maxEvents);
}

void Runtime::multicast(ProcessId from, const std::vector<ProcessId>& tos,
                        PayloadPtr payload) {
  assert(payload != nullptr);
  if (crashed(from)) return;  // crash-stop: a crashed process sends nothing
  if (tos.empty()) return;

  const Layer layer = payload->layer();

  // Modified Lamport clock (paper §2.3, rule 2): the send event is stamped
  // LC+1 if it leaves the group, LC otherwise; the sender's clock advances
  // to the stamp. A fan-out to several destinations is ONE send event.
  bool anyInter = false;
  for (ProcessId to : tos)
    if (!topo_.sameGroup(from, to)) anyInter = true;
  uint64_t& senderClock = lamport_[static_cast<size_t>(from)];
  const uint64_t sendTs = senderClock + (anyInter ? 1 : 0);
  senderClock = sendTs;

  if (layer != Layer::kFailureDetector) {
    lastAlgoSend_ = sched_.now();
    sentAlgo_[static_cast<size_t>(from)] = 1;
  }

  for (ProcessId to : tos) {
    const bool inter = !topo_.sameGroup(from, to);
    auto& counter = traffic_.at(layer);
    if (inter) {
      ++counter.inter;
    } else {
      ++counter.intra;
    }
    if (recordWire_) {
      trace_.wire.push_back(WireEvent{from, to, layer, inter, sched_.now()});
    }

    if (drop_ && drop_(from, to, *payload)) continue;

    const SimTime delay = drawLatency(inter);
    sched_.at(sched_.now() + delay,
              [this, from, to, sendTs, layer, p = payload]() {
                if (crashed(to)) return;  // to a crashed process: vanishes
                // Receive event (rule 3): the receiver's clock jumps to
                // max(LC, ts(send(m))).
                uint64_t& recvClock = lamport_[static_cast<size_t>(to)];
                recvClock = std::max(recvClock, sendTs);
                if (layer != Layer::kFailureDetector)
                  recvAlgo_[static_cast<size_t>(to)] = 1;
                nodes_[static_cast<size_t>(to)]->onMessage(from, p);
              });
  }
}

EventId Runtime::timer(ProcessId pid, SimTime delay, EventFn fn) {
  return sched_.at(sched_.now() + delay, [this, pid, f = std::move(fn)]() {
    if (!crashed(pid)) f();
  });
}

void Runtime::crash(ProcessId pid) {
  if (crashed(pid)) return;
  crashed_[static_cast<size_t>(pid)] = 1;
  if (nodes_[static_cast<size_t>(pid)] != nullptr)
    nodes_[static_cast<size_t>(pid)]->onCrash();
  for (const auto& fn : crashListeners_) fn(pid);
}

void Runtime::scheduleCrash(ProcessId pid, SimTime when) {
  assert(when >= sched_.now());
  sched_.at(when, [this, pid]() { crash(pid); });
}

int Runtime::aliveInGroup(GroupId g) const {
  int alive = 0;
  for (ProcessId p : topo_.members(g))
    if (!crashed(p)) ++alive;
  return alive;
}

void Runtime::recordCast(ProcessId pid, const AppMsgPtr& m) {
  trace_.casts.push_back(CastEvent{pid, m->id, m->dest,
                                   lamport_[static_cast<size_t>(pid)],
                                   sched_.now()});
  trace_.destOf[m->id] = m->dest;
  trace_.senderOf[m->id] = pid;
}

void Runtime::recordDelivery(ProcessId pid, MsgId msg) {
  trace_.deliveries.push_back(
      DeliveryEvent{pid, msg, lamport_[static_cast<size_t>(pid)],
                    sched_.now(), perProcOrder_[static_cast<size_t>(pid)]++});
}

}  // namespace wanmc::sim
