#include "sim/runtime.hpp"

#include <sstream>
#include <stdexcept>

namespace wanmc::sim {

void Runtime::attach(ProcessId pid, std::unique_ptr<Node> node) {
  assert(pid >= 0 && pid < topo_.numProcesses());
  // Indexed by pid (not append order) so recovery can swap one slot.
  if (owned_.size() < static_cast<size_t>(topo_.numProcesses()))
    owned_.resize(static_cast<size_t>(topo_.numProcesses()));
  nodes_[static_cast<size_t>(pid)] = node.get();
  owned_[static_cast<size_t>(pid)] = std::move(node);
}

void Runtime::start() {
  for (ProcessId p = 0; p < topo_.numProcesses(); ++p) {
    Node* node = nodes_[static_cast<size_t>(p)];
    assert(node != nullptr && "every process must have an attached node");
    if (!crashed(p)) node->onStart();
  }
}

uint64_t Runtime::run(SimTime until, uint64_t maxEvents) {
  return sched_.run(until, maxEvents);
}

WANMC_HOT void Runtime::multicast(ProcessId from,
                                  const std::vector<ProcessId>& tos,
                                  PayloadPtr payload) {
  assert(payload != nullptr);
  if (crashed(from)) return;  // crash-stop: a crashed process sends nothing
  if (tos.empty()) return;

  const Layer layer = payload->layer();

  // Modified Lamport clock (paper §2.3, rule 2): the send event is stamped
  // LC+1 if it leaves the group, LC otherwise; the sender's clock advances
  // to the stamp. A fan-out to several destinations is ONE send event.
  // Group membership per destination is computed once here and reused by
  // the scheduling loop below (interScratch_ keeps its capacity across
  // calls, so this does not allocate at steady state).
  bool anyInter = false;
  interScratch_.clear();
  for (ProcessId to : tos) {
    const bool inter = !topo_.sameGroup(from, to);
    interScratch_.push_back(inter ? 1 : 0);
    anyInter |= inter;
  }
  uint64_t& senderClock = lamport_[static_cast<size_t>(from)];
  const uint64_t sendTs = senderClock + (anyInter ? 1 : 0);
  senderClock = sendTs;

  if (layer != Layer::kFailureDetector) {
    // Bootstrap state transfer is substrate control traffic, like the FD
    // and the channel plane's ACK/NACK: it neither counts as algorithmic
    // activity (genuineness) nor resets the quiescence clock.
    if (layer != Layer::kBootstrap) {
      lastAlgoSend_ = sched_.now();
      sentAlgo_[static_cast<size_t>(from)] = 1;
    }

    // Reliable-channel substrate: the plane takes over transmission of the
    // whole fan-out (it will emit wire copies through channelSend, each
    // carrying this fan-out's single Lamport stamp). FD traffic stays on
    // the direct path — heartbeat timing IS the failure signal. Bootstrap
    // traffic rides the channels on purpose: the catch-up path must be as
    // loss-tolerant as the protocol traffic it reconstructs.
    if (channelHook_ != nullptr) {
      channelHook_->onSend(from, tos, payload, sendTs);
      return;
    }
  }

  // One pooled record for the whole fan-out; each copy is only a POD heap
  // entry. Copies are scheduled in destination order, so sequence numbers,
  // latency draws, and fire order are identical to a per-copy scheme.
  Fanout* f = acquireFanout();
  f->payload = std::move(payload);
  f->from = from;
  f->layer = layer;
  f->sendTs = sendTs;
  f->pending = 0;

  auto& counter = traffic_.at(layer);
  size_t idx = 0;
  for (ProcessId to : tos) {
    const bool inter = interScratch_[idx++] != 0;
    if (inter) {
      ++counter.inter;
    } else {
      ++counter.intra;
    }
    if (recordWire_ || !sendObservers_.empty()) {
      const WireEvent ev{from, to, layer, inter, sched_.now()};
      if (recordWire_) trace_.wire.push_back(ev);
      for (RunObserver* o : sendObservers_) o->onSend(ev);
    }

    // Cut links drop the copy before the latency draw, exactly like the
    // drop filter: link state never perturbs the RNG stream of the copies
    // that do go out.
    if (anyLinkState_ && !linkUp(from, to)) {
      ++trace_.linkDrops;
      continue;
    }
    if (drop_ && drop_(from, to, *f->payload)) continue;
    if (lossP_ > 0 && lossRng_.uniform01() < lossP_) {
      ++trace_.lossDrops;
      continue;
    }

    const SimTime delay = drawLatency(inter);
    ++f->pending;
    sched_.at(sched_.now() + delay, Delivery{this, f, to});
  }
  if (f->pending == 0) releaseFanout(f);  // every copy dropped
}

void Runtime::setLossRate(double p) {
  if (!(p >= 0.0 && p < 1.0)) {
    std::ostringstream os;
    os << "Runtime::setLossRate: probability " << p
       << " outside [0, 1) - a lossless link needs 0, a dead one a cut";
    throw std::invalid_argument(os.str());
  }
  lossP_ = p;
}

WANMC_HOT void Runtime::channelSend(ProcessId from, ProcessId to,
                                    PayloadPtr payload, Layer accountLayer) {
  assert(payload != nullptr);
  assert(channelHook_ != nullptr);
  if (crashed(from)) return;  // crash between enqueue and (re)transmit
  const bool inter = !topo_.sameGroup(from, to);
  auto& counter = traffic_.at(accountLayer);
  if (inter) {
    ++counter.inter;
  } else {
    ++counter.intra;
  }
  // Channel control traffic (ACK/NACK) is substrate, like FD: it neither
  // counts as algorithmic activity nor resets the quiescence clock. DATA
  // (re)transmissions are accounted under their inner layer and do —
  // except bootstrap DATA, which is substrate all the way down.
  if (accountLayer != Layer::kFailureDetector &&
      accountLayer != Layer::kChannel &&
      accountLayer != Layer::kBootstrap) {
    lastAlgoSend_ = sched_.now();
    sentAlgo_[static_cast<size_t>(from)] = 1;
  }
  if (recordWire_ || !sendObservers_.empty()) {
    const WireEvent ev{from, to, accountLayer, inter, sched_.now()};
    if (recordWire_) trace_.wire.push_back(ev);
    for (RunObserver* o : sendObservers_) o->onSend(ev);
  }
  if (anyLinkState_ && !linkUp(from, to)) {
    ++trace_.linkDrops;
    return;
  }
  if (drop_ && drop_(from, to, *payload)) return;
  if (lossP_ > 0 && lossRng_.uniform01() < lossP_) {
    ++trace_.lossDrops;
    return;
  }
  const SimTime delay = drawLatency(inter);
  sched_.at(sched_.now() + delay,
            ChanDelivery{this, from, to, std::move(payload)});
}

void Runtime::deliverFromChannel(ProcessId from, ProcessId to,
                                 const PayloadPtr& payload, uint64_t sendTs) {
  if (crashed(to)) return;
  // Receive event (rule 3) against the ORIGINAL send stamp: however many
  // retransmissions it took, the Lamport cost model sees one send event.
  uint64_t& recvClock = lamport_[static_cast<size_t>(to)];
  recvClock = std::max(recvClock, sendTs);
  if (payload->layer() != Layer::kFailureDetector &&
      payload->layer() != Layer::kBootstrap)
    recvAlgo_[static_cast<size_t>(to)] = 1;
  nodes_[static_cast<size_t>(to)]->onMessage(from, payload);
}

WANMC_HOT void Runtime::deliverCopy(Fanout& f, ProcessId to) {
  if (!crashed(to)) {  // to a crashed process: vanishes
    // Receive event (rule 3): the receiver's clock jumps to
    // max(LC, ts(send(m))).
    uint64_t& recvClock = lamport_[static_cast<size_t>(to)];
    recvClock = std::max(recvClock, f.sendTs);
    if (f.layer != Layer::kFailureDetector && f.layer != Layer::kBootstrap)
      recvAlgo_[static_cast<size_t>(to)] = 1;
    nodes_[static_cast<size_t>(to)]->onMessage(f.from, f.payload);
  }
  if (--f.pending == 0) releaseFanout(&f);
}

void Runtime::crash(ProcessId pid) {
  if (crashed(pid)) return;
  crashed_[static_cast<size_t>(pid)] = 1;
  everCrashed_[static_cast<size_t>(pid)] = 1;
  trace_.crashes.push_back(CrashEvent{pid, sched_.now()});
  if (nodes_[static_cast<size_t>(pid)] != nullptr)
    nodes_[static_cast<size_t>(pid)]->onCrash();
  dispatchListeners(crashListeners_, pid);
}

void Runtime::scheduleCrash(ProcessId pid, SimTime when) {
  assert(when >= sched_.now());
  sched_.at(when, [this, pid]() { crash(pid); });
}

void Runtime::recover(ProcessId pid) {
  assert(pid >= 0 && pid < topo_.numProcesses());
  if (!crashed(pid)) return;  // scheduled recovery of an alive process
  if (!nodeFactory_)
    throw std::logic_error(
        "Runtime::recover: no node factory installed (setNodeFactory)");
  const size_t i = static_cast<size_t>(pid);
  // The flags flip FIRST: the fresh node's constructor and onStart may
  // register timers and listeners, and those must carry the NEW
  // incarnation (old-incarnation timers are suppressed by TimerGuard).
  ++incarnation_[i];
  crashed_[i] = 0;
  // The channel plane forgets the dead incarnation's endpoints before the
  // fresh node exists: its first sends open brand-new sequence spaces.
  if (channelHook_ != nullptr) channelHook_->onReset(pid);
  purgeListeners(crashListeners_, pid, incarnation_[i]);
  purgeListeners(recoveryListeners_, pid, incarnation_[i]);
  std::unique_ptr<Node> fresh = nodeFactory_(pid);
  assert(fresh != nullptr);
  nodes_[i] = fresh.get();
  owned_[i] = std::move(fresh);  // destroys the dead incarnation's node
  trace_.recoveries.push_back(RecoveryEvent{pid, sched_.now()});
  dispatchListeners(recoveryListeners_, pid);
  nodes_[i]->onStart();
}

void Runtime::scheduleRecover(ProcessId pid, SimTime when) {
  assert(when >= sched_.now());
  sched_.at(when, [this, pid]() { recover(pid); });
}

// ---- dynamic link state ----------------------------------------------------

Runtime::PartitionId Runtime::partition(GroupSet side, SimTime from,
                                        SimTime until) {
  const int m = topo_.numGroups();
  auto bad = [](const auto&... parts) {
    std::ostringstream os;
    os << "Runtime::partition: ";
    (os << ... << parts);
    throw std::invalid_argument(os.str());
  };
  if (side.empty()) bad("empty partition side");
  if (m < 64 && (side.bits() >> m) != 0)
    bad("side ", side.str(), " addresses groups beyond the topology's ", m);
  if (side == topo_.allGroups())
    bad("side ", side.str(),
        " is the whole topology - a partition needs a non-empty far side");
  if (from < sched_.now()) bad("window starts in the past");
  if (until != kTimeNever && until <= from)
    bad("window [", from, ", ", until, ")us is empty");

  const auto id = static_cast<PartitionId>(partitions_.size());
  partitions_.push_back(Partition{side, false, false});
  anyLinkState_ = true;
  if (groupCut_.empty())
    groupCut_.assign(static_cast<size_t>(m) * static_cast<size_t>(m), 0);
  if (from <= sched_.now()) {
    activatePartition(id);
  } else {
    sched_.at(from, [this, id]() { activatePartition(id); });
  }
  if (until != kTimeNever) sched_.at(until, [this, id]() { heal(id); });
  return id;
}

void Runtime::activatePartition(PartitionId id) {
  Partition& p = partitions_[id];
  if (p.healed || p.active) return;  // healed before the cut fired
  p.active = true;
  adjustGroupCuts(p.side, +1);
  trace_.partitions.push_back(
      PartitionEvent{true, p.side.bits(), sched_.now()});
}

void Runtime::heal(PartitionId id) {
  assert(id < partitions_.size());
  Partition& p = partitions_[id];
  if (p.healed) return;
  p.healed = true;
  if (!p.active) return;  // cut never activated: nothing to undo
  p.active = false;
  adjustGroupCuts(p.side, -1);
  trace_.partitions.push_back(
      PartitionEvent{false, p.side.bits(), sched_.now()});
}

void Runtime::healAll() {
  for (PartitionId id = 0; id < partitions_.size(); ++id) heal(id);
}

void Runtime::adjustGroupCuts(const GroupSet& side, int delta) {
  const int m = topo_.numGroups();
  for (GroupId a = 0; a < m; ++a) {
    const bool inSide = side.contains(a);
    for (GroupId b = 0; b < m; ++b) {
      if (a == b || side.contains(b) == inSide) continue;
      auto& c = groupCut_[static_cast<size_t>(a) * static_cast<size_t>(m) +
                          static_cast<size_t>(b)];
      c = static_cast<uint16_t>(static_cast<int>(c) + delta);
    }
  }
}

void Runtime::cutLink(ProcessId a, ProcessId b, SimTime from, SimTime until) {
  auto bad = [](const char* what) {
    std::ostringstream os;
    os << "Runtime::cutLink: " << what;
    throw std::invalid_argument(os.str());
  };
  if (a < 0 || a >= topo_.numProcesses() || b < 0 ||
      b >= topo_.numProcesses())
    bad("pid out of range");
  if (a == b) bad("a process has no link to itself");
  if (until <= from) bad("empty window");
  linkWindows_.push_back(LinkWindow{a, b, from, until});
  anyLinkState_ = true;
}

bool Runtime::linkUp(ProcessId from, ProcessId to) const {
  if (!anyLinkState_) return true;
  if (!groupCut_.empty() && groupLinkCut(topo_.group(from), topo_.group(to)))
    return false;
  const SimTime now = sched_.now();
  for (const LinkWindow& w : linkWindows_) {
    if (((w.a == from && w.b == to) || (w.a == to && w.b == from)) &&
        now >= w.from && now < w.until)
      return false;
  }
  return true;
}

int Runtime::aliveInGroup(GroupId g) const {
  int alive = 0;
  for (ProcessId p : topo_.members(g))
    if (!crashed(p)) ++alive;
  return alive;
}

void Runtime::recordCast(ProcessId pid, const AppMsgPtr& m) {
  trace_.casts.push_back(CastEvent{pid, m->id, m->dest,
                                   lamport_[static_cast<size_t>(pid)],
                                   sched_.now()});
  trace_.destOf[m->id] = m->dest;
  trace_.senderOf[m->id] = pid;
  for (RunObserver* o : castObservers_) o->onCast(trace_.casts.back());
}

void Runtime::recordDelivery(ProcessId pid, MsgId msg) {
  trace_.deliveries.push_back(
      DeliveryEvent{pid, msg, lamport_[static_cast<size_t>(pid)],
                    sched_.now(), perProcOrder_[static_cast<size_t>(pid)]++});
  for (RunObserver* o : deliveryObservers_)
    o->onDeliver(trace_.deliveries.back());
}

}  // namespace wanmc::sim
