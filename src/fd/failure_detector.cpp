#include "fd/failure_detector.hpp"

namespace wanmc::fd {

std::unique_ptr<FailureDetector> makeFd(FdKind kind, exec::Context& rt,
                                        ProcessId self,
                                        std::vector<ProcessId> scope,
                                        SimTime oracleDelay,
                                        HeartbeatFd::Params hb,
                                        HeartbeatFd::Params hbRemote) {
  switch (kind) {
    case FdKind::kOracle:
      return std::make_unique<OracleFd>(rt, self, oracleDelay);
    case FdKind::kHeartbeat:
      return std::make_unique<HeartbeatFd>(rt, self, std::move(scope), hb,
                                           hbRemote);
  }
  return nullptr;
}

}  // namespace wanmc::fd
