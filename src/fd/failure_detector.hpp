// Failure detectors.
//
// The paper assumes consensus is solvable inside every group, which in the
// asynchronous crash-stop model means each group is equipped with (at least)
// an eventually-strong failure detector <>S and a majority of correct
// processes. We provide two interchangeable implementations:
//
//  * OracleFd — a zero-message oracle that learns crashes from the runtime
//    after a configurable detection delay. This matches the paper's
//    accounting, which treats the substrate algorithms as "oracle-based"
//    ([6], [11]) and charges them no background traffic; it keeps the
//    genuineness and quiescence measurements clean.
//  * HeartbeatFd — a real heartbeat/timeout detector exchanging
//    Layer::kFailureDetector packets within its scope. With a timeout above
//    the maximum link latency it behaves like <>P; transient timeouts only
//    make it eventually strong, which the indulgent consensus tolerates.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "sim/runtime.hpp"

namespace wanmc::fd {

class FailureDetector {
 public:
  using SuspicionCb = std::function<void(ProcessId)>;

  virtual ~FailureDetector() = default;

  [[nodiscard]] virtual bool suspects(ProcessId p) const = 0;

  // Fired when a process becomes suspected. (Un-suspicion is not signalled;
  // the consensus layer re-reads suspects() when it matters.)
  void onSuspicion(SuspicionCb cb) { callbacks_.push_back(std::move(cb)); }

  virtual void start() {}
  virtual void onMessage(ProcessId /*from*/, const Payload& /*payload*/) {}

 protected:
  void notify(ProcessId p) {
    for (const auto& cb : callbacks_) cb(p);
  }

 private:
  std::vector<SuspicionCb> callbacks_;
};

// ---------------------------------------------------------------------------

class OracleFd final : public FailureDetector {
 public:
  // `detectionDelay` models the time between a crash and its detection.
  OracleFd(sim::Runtime& rt, ProcessId self, SimTime detectionDelay = 0)
      : rt_(rt),
        self_(self),
        delay_(detectionDelay),
        suspected_(static_cast<size_t>(rt.topology().numProcesses()), 0) {
    rt_.addCrashListener([this](ProcessId p) {
      if (p == self_ || rt_.crashed(self_)) return;
      if (delay_ == 0) {
        suspected_[static_cast<size_t>(p)] = 1;
        notify(p);
      } else {
        rt_.timer(self_, delay_, [this, p]() {
          suspected_[static_cast<size_t>(p)] = 1;
          notify(p);
        });
      }
    });
  }

  [[nodiscard]] bool suspects(ProcessId p) const override {
    return suspected_[static_cast<size_t>(p)] != 0;
  }

 private:
  sim::Runtime& rt_;
  ProcessId self_;
  SimTime delay_;
  std::vector<uint8_t> suspected_;  // dense, indexed by pid
};

// ---------------------------------------------------------------------------

// Heartbeat packet. FD semantics depend only on layer() and the sender id,
// so each HeartbeatFd reuses ONE pooled instance across ticks (mutating
// `seq` in place) instead of heap-allocating a payload per interval — the
// `seq` a receiver observes is advisory, never protocol state.
struct HeartbeatPayload final : Payload {
  uint64_t seq = 0;
  explicit HeartbeatPayload(uint64_t s) : seq(s) {}
  [[nodiscard]] Layer layer() const override {
    return Layer::kFailureDetector;
  }
  [[nodiscard]] std::string debugString() const override {
    return "hb(" + std::to_string(seq) + ")";
  }
};

class HeartbeatFd final : public FailureDetector {
 public:
  struct Params {
    SimTime interval = 20 * kMs;
    SimTime timeout = 80 * kMs;  // must exceed interval + max link latency
  };

  // `scope` is the set of processes this detector monitors (and heartbeats).
  HeartbeatFd(sim::Runtime& rt, ProcessId self, std::vector<ProcessId> scope,
              Params params)
      : rt_(rt),
        self_(self),
        scope_(std::move(scope)),
        params_(params),
        hb_(std::make_shared<HeartbeatPayload>(0)),
        lastHeard_(static_cast<size_t>(rt.topology().numProcesses()), 0),
        suspected_(static_cast<size_t>(rt.topology().numProcesses()), 0) {
    // The per-tick destination vector is built once, not per interval.
    for (ProcessId p : scope_)
      if (p != self_) others_.push_back(p);
  }

  void start() override {
    // Start-of-run grace: everyone counts as heard at t=0.
    for (ProcessId p : scope_) lastHeard_[static_cast<size_t>(p)] = rt_.now();
    tick();
  }

  void onMessage(ProcessId from, const Payload& payload) override {
    if (payload.layer() != Layer::kFailureDetector) return;
    lastHeard_[static_cast<size_t>(from)] = rt_.now();
    if (suspected_[static_cast<size_t>(from)] != 0) {
      // eventual accuracy: a prematurely suspected process is rehabilitated
      suspected_[static_cast<size_t>(from)] = 0;
    }
  }

  [[nodiscard]] bool suspects(ProcessId p) const override {
    return suspected_[static_cast<size_t>(p)] != 0;
  }

 private:
  void tick() {
    hb_->seq = seq_++;  // pooled payload, see HeartbeatPayload
    rt_.multicast(self_, others_, hb_);
    const SimTime now = rt_.now();
    for (ProcessId p : scope_) {
      const auto i = static_cast<size_t>(p);
      if (p == self_ || suspected_[i] != 0) continue;
      if (now - lastHeard_[i] > params_.timeout) {
        suspected_[i] = 1;
        notify(p);
      }
    }
    rt_.timer(self_, params_.interval, [this]() { tick(); });
  }

  sim::Runtime& rt_;
  ProcessId self_;
  std::vector<ProcessId> scope_;
  Params params_;
  uint64_t seq_ = 0;
  std::shared_ptr<HeartbeatPayload> hb_;  // reused across ticks
  std::vector<ProcessId> others_;         // scope_ minus self, cached
  std::vector<SimTime> lastHeard_;        // dense, indexed by pid
  std::vector<uint8_t> suspected_;        // dense, indexed by pid
};

// Which detector a protocol stack should instantiate.
enum class FdKind { kOracle, kHeartbeat };

std::unique_ptr<FailureDetector> makeFd(FdKind kind, sim::Runtime& rt,
                                        ProcessId self,
                                        std::vector<ProcessId> scope,
                                        SimTime oracleDelay = 0,
                                        HeartbeatFd::Params hb = {});

}  // namespace wanmc::fd
