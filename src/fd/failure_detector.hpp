// Failure detectors.
//
// The paper assumes consensus is solvable inside every group, which in the
// asynchronous crash-stop model means each group is equipped with (at least)
// an eventually-strong failure detector <>S and a majority of correct
// processes. We provide two interchangeable implementations:
//
//  * OracleFd — a zero-message oracle that learns crashes from the runtime
//    after a configurable detection delay. This matches the paper's
//    accounting, which treats the substrate algorithms as "oracle-based"
//    ([6], [11]) and charges them no background traffic; it keeps the
//    genuineness and quiescence measurements clean.
//  * HeartbeatFd — a real heartbeat/timeout detector exchanging
//    Layer::kFailureDetector packets within its scope. With a timeout above
//    the maximum link latency it behaves like <>P; transient timeouts only
//    make it eventually strong, which the indulgent consensus tolerates.
//
// Scoping (fault plane v2): a detector monitors its own group by default —
// where consensus runs. Stacks that run consensus ACROSS groups (the
// Rodrigues baseline) widen the scope with addRemoteGroup(): the heartbeat
// detector then maintains one heartbeat LANE per remote group, with its own
// interval/timeout sized for inter-group latency, so cross-group consensus
// participants get suspicion for remote crashes without the oracle. The
// oracle is global already, so addRemoteGroup is a no-op there.
//
// Suspicion is RETRACTABLE: a suspected process that speaks again (false
// timeout, healed partition) or recovers is rehabilitated, and
// onRetraction callbacks fire. Protocol layers that cache quorum decisions
// must re-read suspects() when it matters rather than latching suspicion.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "common/time.hpp"
#include "exec/context.hpp"

namespace wanmc::fd {

class FailureDetector {
 public:
  using SuspicionCb = std::function<void(ProcessId)>;
  // Retraction callback. `freshIncarnation` distinguishes the two ways a
  // suspicion ends: false — the process was REHABILITATED (healed
  // partition, corrected premature timeout: same incarnation, it kept all
  // its protocol state); true — the process RECOVERED (a fresh amnesiac
  // incarnation that kept nothing). Layers that re-introduce state on
  // retraction (e.g. RodriguesNode re-sending pending kData) must branch
  // on it: a rehabilitated process only lacks what it never received, a
  // fresh incarnation lacks everything.
  using RetractionCb = std::function<void(ProcessId, bool freshIncarnation)>;

  virtual ~FailureDetector() = default;

  [[nodiscard]] virtual bool suspects(ProcessId p) const = 0;

  // Fired when a process becomes suspected.
  void onSuspicion(SuspicionCb cb) { callbacks_.push_back(std::move(cb)); }
  // Fired when a suspicion is RETRACTED (the process recovered, a healed
  // partition let its heartbeats through again, or a premature timeout was
  // corrected). Layers that only ever read suspects() live need no hook.
  void onRetraction(RetractionCb cb) {
    retractions_.push_back(std::move(cb));
  }

  // Widens the monitored scope to the members of remote group `g` (used by
  // stacks that run consensus across groups). Default: no-op — the oracle
  // is global by construction.
  virtual void addRemoteGroup(GroupId g,
                              const std::vector<ProcessId>& members) {
    (void)g;
    (void)members;
  }

  virtual void start() {}
  virtual void onMessage(ProcessId /*from*/, const Payload& /*payload*/) {}

 protected:
  void notify(ProcessId p) {
    for (const auto& cb : callbacks_) cb(p);
  }
  void notifyRetract(ProcessId p, bool freshIncarnation) {
    for (const auto& cb : retractions_) cb(p, freshIncarnation);
  }

 private:
  std::vector<SuspicionCb> callbacks_;
  std::vector<RetractionCb> retractions_;
};

// ---------------------------------------------------------------------------

class OracleFd final : public FailureDetector {
 public:
  // `detectionDelay` models the time between a crash and its detection.
  OracleFd(exec::Context& rt, ProcessId self, SimTime detectionDelay = 0)
      : rt_(rt),
        self_(self),
        delay_(detectionDelay),
        suspected_(static_cast<size_t>(rt.topology().numProcesses()), 0) {
    // Listeners are owned by this process's incarnation: when the process
    // recovers, the runtime purges them, and the recovered node's fresh
    // OracleFd registers its own.
    rt_.addCrashListener(self_, [this](ProcessId p) {
      if (p == self_ || rt_.crashed(self_)) return;
      suspectAfterDelay(p);
    });
    rt_.addRecoveryListener(self_, [this](ProcessId p) {
      if (p == self_ || rt_.crashed(self_)) return;
      if (suspected_[static_cast<size_t>(p)] != 0) {
        suspected_[static_cast<size_t>(p)] = 0;
        // The oracle only retracts on recovery, which is by definition a
        // fresh incarnation.
        notifyRetract(p, /*freshIncarnation=*/true);
      }
    });
    // A detector built mid-run (a recovered process's fresh stack) missed
    // earlier crash notifications: seed it with the processes that are
    // down right now, under the same detection delay.
    for (ProcessId p = 0; p < rt_.topology().numProcesses(); ++p)
      if (p != self_ && rt_.crashed(p)) suspectAfterDelay(p);
  }

  [[nodiscard]] bool suspects(ProcessId p) const override {
    return suspected_[static_cast<size_t>(p)] != 0;
  }

 private:
  void suspectAfterDelay(ProcessId p) {
    if (delay_ == 0) {
      suspected_[static_cast<size_t>(p)] = 1;
      notify(p);
    } else {
      rt_.timer(self_, delay_, [this, p]() {
        // The crash may have been retracted (recovery) before the delay
        // elapsed: the oracle never suspects an alive process.
        if (rt_.crashed(p) && suspected_[static_cast<size_t>(p)] == 0) {
          suspected_[static_cast<size_t>(p)] = 1;
          notify(p);
        }
      });
    }
  }

  exec::Context& rt_;
  ProcessId self_;
  SimTime delay_;
  std::vector<uint8_t> suspected_;  // dense, indexed by pid
};

// ---------------------------------------------------------------------------

// Heartbeat packet. FD semantics depend on layer(), the sender id, and the
// sender's INCARNATION (which lets a receiver tell a rehabilitated process
// from a recovered one), so each heartbeat lane reuses ONE pooled instance
// across ticks (mutating `seq` in place) instead of heap-allocating a
// payload per interval — the `seq` a receiver observes is advisory, never
// protocol state. `inc` is safe to pool: it is constant for the lane's
// whole life (a recovered process builds a fresh stack with fresh lanes,
// and the dead incarnation's pooled payloads are never mutated again).
struct HeartbeatPayload final : Payload {
  uint64_t seq = 0;
  uint32_t inc = 0;  // sender incarnation, see Runtime::incarnation
  HeartbeatPayload(uint64_t s, uint32_t i) : seq(s), inc(i) {}
  [[nodiscard]] Layer layer() const override {
    return Layer::kFailureDetector;
  }
  [[nodiscard]] std::string debugString() const override {
    return "hb(" + std::to_string(seq) + ",i" + std::to_string(inc) + ")";
  }
};

class HeartbeatFd final : public FailureDetector {
 public:
  struct Params {
    SimTime interval = 20 * kMs;
    SimTime timeout = 80 * kMs;  // must exceed interval + max link latency
  };

  // Lane parameters for remote-group scopes: sized for WAN links (the
  // presets top out at 110ms one-way), so a partitioned or crashed remote
  // process is suspected within ~half a second and an alive one never is.
  static constexpr Params remoteDefaults() {
    return Params{60 * kMs, 400 * kMs};
  }

  // `scope` is the set of processes this detector monitors (and
  // heartbeats) on its own-group lane; addRemoteGroup() adds one lane per
  // remote group, parameterized by `remoteParams`.
  HeartbeatFd(exec::Context& rt, ProcessId self, std::vector<ProcessId> scope,
              Params params, Params remoteParams = remoteDefaults())
      : rt_(rt),
        self_(self),
        remoteParams_(remoteParams),
        lastHeard_(static_cast<size_t>(rt.topology().numProcesses()), 0),
        lastInc_(static_cast<size_t>(rt.topology().numProcesses()), 0),
        suspected_(static_cast<size_t>(rt.topology().numProcesses()), 0) {
    // Baseline every peer's incarnation at build time: a detector built
    // mid-run (a recovered process's fresh stack) cannot know what it
    // missed — like the start-of-run heard grace, the current incarnation
    // counts as already seen.
    for (ProcessId p = 0; p < rt.topology().numProcesses(); ++p)
      lastInc_[static_cast<size_t>(p)] = rt.incarnation(p);
    addLane(kNoGroup, std::move(scope), params);
  }

  void addRemoteGroup(GroupId g,
                      const std::vector<ProcessId>& members) override {
    addLane(g, members, remoteParams_);
  }

  void start() override {
    started_ = true;
    // Start-of-run grace: every monitored peer counts as heard at start.
    for (size_t li = 0; li < lanes_.size(); ++li) startLane(li);
  }

  void onMessage(ProcessId from, const Payload& payload) override {
    if (payload.layer() != Layer::kFailureDetector) return;
    const auto& hb = static_cast<const HeartbeatPayload&>(payload);
    const auto i = static_cast<size_t>(from);
    // A heartbeat from an incarnation we have not seen before means the
    // peer crashed and RECOVERED since we last heard it — even if the
    // crash window fell entirely inside a partition and no timeout-based
    // evidence distinguishes it from a mere rehabilitation.
    const bool fresh = hb.inc != lastInc_[i];
    lastInc_[i] = hb.inc;
    lastHeard_[i] = rt_.now();
    if (suspected_[i] != 0) {
      // Eventual accuracy: a prematurely suspected process (false timeout,
      // healed partition, recovery) is rehabilitated — and the retraction
      // is signalled, unlike the pre-v2 detector.
      suspected_[i] = 0;
      notifyRetract(from, fresh);
    } else if (fresh) {
      // Incarnation advance WITHOUT a standing suspicion: the peer crashed
      // and recovered faster than this lane's timeout could notice (or the
      // whole crash window hid behind a partition). Without a retraction
      // nobody would re-send the amnesiac rejoiner anything until some
      // later suspicion cycle happened to fire — the FD gap PR 6 left open.
      notifyRetract(from, /*freshIncarnation=*/true);
    }
  }

  [[nodiscard]] bool suspects(ProcessId p) const override {
    return suspected_[static_cast<size_t>(p)] != 0;
  }

 private:
  // One heartbeat lane: a peer set heartbeated and monitored under its own
  // interval/timeout. The per-tick destination vector and the pooled
  // payload are built once per lane, not per interval.
  struct Lane {
    GroupId gid = kNoGroup;  // kNoGroup: the own-scope lane
    Params params;
    std::vector<ProcessId> peers;  // monitored + heartbeated, excl. self
    std::shared_ptr<HeartbeatPayload> hb;
    uint64_t seq = 0;
  };

  void addLane(GroupId g, std::vector<ProcessId> scope, Params params) {
    Lane lane;
    lane.gid = g;
    lane.params = params;
    for (ProcessId p : scope)
      if (p != self_) lane.peers.push_back(p);
    lane.hb = std::make_shared<HeartbeatPayload>(0, rt_.incarnation(self_));
    lanes_.push_back(std::move(lane));
    if (started_) startLane(lanes_.size() - 1);
  }

  void startLane(size_t li) {
    for (ProcessId p : lanes_[li].peers)
      lastHeard_[static_cast<size_t>(p)] = rt_.now();
    tick(li);
  }

  void tick(size_t li) {
    Lane& lane = lanes_[li];
    lane.hb->seq = lane.seq++;  // pooled payload, see HeartbeatPayload
    rt_.multicast(self_, lane.peers, lane.hb);
    const SimTime now = rt_.now();
    for (ProcessId p : lane.peers) {
      const auto i = static_cast<size_t>(p);
      if (suspected_[i] != 0) continue;
      if (now - lastHeard_[i] > lane.params.timeout) {
        suspected_[i] = 1;
        notify(p);
      }
    }
    rt_.timer(self_, lane.params.interval, [this, li]() { tick(li); });
  }

  exec::Context& rt_;
  ProcessId self_;
  Params remoteParams_;
  bool started_ = false;
  std::vector<Lane> lanes_;
  std::vector<SimTime> lastHeard_;  // dense, indexed by pid
  std::vector<uint32_t> lastInc_;   // last incarnation heard, per pid
  std::vector<uint8_t> suspected_;  // dense, indexed by pid
};

// Which detector a protocol stack should instantiate.
enum class FdKind { kOracle, kHeartbeat };

std::unique_ptr<FailureDetector> makeFd(
    FdKind kind, exec::Context& rt, ProcessId self,
    std::vector<ProcessId> scope, SimTime oracleDelay = 0,
    HeartbeatFd::Params hb = {},
    HeartbeatFd::Params hbRemote = HeartbeatFd::remoteDefaults());

}  // namespace wanmc::fd
