#include "rmcast/rmcast.hpp"

#include <algorithm>

namespace wanmc::rmcast {

namespace {

std::vector<ProcessId> allBut(const std::vector<ProcessId>& v,
                              ProcessId self) {
  std::vector<ProcessId> out;
  out.reserve(v.size());
  for (ProcessId q : v)
    if (q != self) out.push_back(q);
  return out;
}

}  // namespace

void ReliableMulticast::rmcast(const AppMsgPtr& m) {
  auto dests = destsOf(*m);
  auto payload = std::make_shared<const RmPayload>(m, /*relay=*/false);
  rt_.multicast(self_, allBut(dests, self_), payload);
  // The sender itself sees the message immediately (and R-Delivers it at
  // once if it is an addressee).
  firstSight(m, self_, dests, /*explicitScope=*/false);
}

void ReliableMulticast::rmcastTo(const AppMsgPtr& m,
                                 const std::vector<ProcessId>& dests) {
  auto payload = std::make_shared<const RmPayload>(m, /*relay=*/false, dests);
  rt_.multicast(self_, allBut(dests, self_), payload);
  firstSight(m, self_, dests, /*explicitScope=*/true);
}

void ReliableMulticast::onMessage(ProcessId from, const RmPayload& p) {
  if (p.explicitDests.empty()) {
    firstSight(p.msg, from, destsOf(*p.msg), /*explicitScope=*/false);
  } else {
    firstSight(p.msg, from, p.explicitDests, /*explicitScope=*/true);
  }
}

void ReliableMulticast::firstSight(const AppMsgPtr& m, ProcessId copyFrom,
                                   const std::vector<ProcessId>& dests,
                                   bool explicitScope) {
  auto& s = seen_[m->id];
  if (s.msg == nullptr) {
    s.msg = m;
    s.dests = dests;
    s.explicitScope = explicitScope;
  }
  if (rt_.topology().sameGroup(copyFrom, self_)) s.copiesFrom.insert(copyFrom);

  if (!s.relayed) {
    s.relayed = true;
    auto relay = std::make_shared<const RmPayload>(
        m, /*relay=*/true,
        s.explicitScope ? s.dests : std::vector<ProcessId>{});
    const GroupId myGroup = rt_.topology().group(self_);
    std::vector<ProcessId> tos;
    for (ProcessId q : s.dests) {
      if (q == self_) continue;
      const bool sameGroup = rt_.topology().group(q) == myGroup;
      if (relay_ == RelayPolicy::kEager || sameGroup) tos.push_back(q);
    }
    rt_.multicast(self_, tos, relay);
  }
  maybeDeliver(m->id);
}

void ReliableMulticast::maybeDeliver(MsgId id) {
  if (delivered_.count(id)) return;
  auto& s = seen_[id];
  // Uniform integrity: only addressees R-Deliver. (Non-addressees can still
  // see the message, e.g. a sender that multicasts outside its own group.)
  if (s.explicitScope) {
    if (std::find(s.dests.begin(), s.dests.end(), self_) == s.dests.end())
      return;
  } else if (!s.msg->dest.contains(rt_.topology().group(self_))) {
    return;
  }

  if (uniformity_ == Uniformity::kUniform) {
    const auto groupSize = static_cast<size_t>(
        rt_.topology().groupSize(rt_.topology().group(self_)));
    const size_t need = groupSize / 2 + 1;
    // Our own sighting counts as one copy.
    auto copies = s.copiesFrom;
    copies.insert(self_);
    if (copies.size() < need) return;
  }
  delivered_.insert(id);
  for (const auto& cb : deliverCbs_) cb(s.msg);
}

}  // namespace wanmc::rmcast
