// Reliable multicast: R-MCast / R-Deliver (paper §2.2).
//
// Non-uniform reliable multicast is the substrate A1 and A2 are built on.
// The paper's accounting (Figure 1) charges the [6]-style oracle-based
// primitive d(k-1) inter-group messages and latency degree 1; our default
// configuration matches both numbers: the sender sends m directly to every
// process in m.dest (d(k-1) inter-group packets when the sender's group is
// one of the k destinations) and receivers relay intra-group on first sight.
//
// Relay policies:
//  * kIntraOnly (default) — first sight triggers an intra-group relay only.
//    This guarantees agreement among correct processes *within* each group.
//    Cross-group agreement when the sender crashes mid-send is deliberately
//    left to the layer above: the paper's footnote 4 points out that A1's
//    (TS, m) messages "also serve the purpose of propagating m", and A2
//    only ever R-MCasts within the sender's own group.
//  * kEager — first sight triggers a relay to every process in m.dest.
//    Textbook reliable multicast: full agreement under any single-process
//    crash, at O((kd)^2) messages. Used by tests that isolate the primitive
//    and by the uniform variant below.
//
// Uniformity:
//  * kNonUniform (default) — R-Deliver on first sight (latency degree 1).
//  * kUniform — R-Deliver only once copies from a majority of the process's
//    own group have been seen (own relay counts). Delivery still happens at
//    latency degree 1 because the extra hops are intra-group. Used by the
//    Fritzke-et-al. baseline, which the paper contrasts with A1's
//    non-uniform choice.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/message.hpp"
#include "exec/context.hpp"

namespace wanmc::rmcast {

struct RmPayload final : Payload {
  AppMsgPtr msg;
  bool isRelay = false;
  // Non-empty when the caller overrode the destination set (rmcastTo):
  // receivers then deliver iff they appear in this list, regardless of
  // m->dest. A2 uses this to R-MCast within the sender's group only.
  std::vector<ProcessId> explicitDests;

  RmPayload(AppMsgPtr m, bool relay, std::vector<ProcessId> dests = {})
      : msg(std::move(m)), isRelay(relay), explicitDests(std::move(dests)) {}
  [[nodiscard]] Layer layer() const override {
    return Layer::kReliableMulticast;
  }
  [[nodiscard]] std::string debugString() const override {
    return std::string(isRelay ? "rm-relay(m" : "rm(m") +
           std::to_string(msg->id) + ")";
  }
};

enum class RelayPolicy { kIntraOnly, kEager };
enum class Uniformity { kNonUniform, kUniform };

class ReliableMulticast {
 public:
  using DeliverCb = std::function<void(const AppMsgPtr&)>;

  ReliableMulticast(exec::Context& rt, ProcessId self,
                    RelayPolicy relay = RelayPolicy::kIntraOnly,
                    Uniformity uniformity = Uniformity::kNonUniform)
      : rt_(rt), self_(self), relay_(relay), uniformity_(uniformity) {}

  void onDeliver(DeliverCb cb) { deliverCbs_.push_back(std::move(cb)); }

  // R-MCast m to the processes of the groups in m->dest. The caller need
  // not be a member of any destination group.
  void rmcast(const AppMsgPtr& m);

  // R-MCast m to an explicit process set (A2 uses "the sender's group").
  void rmcastTo(const AppMsgPtr& m, const std::vector<ProcessId>& dests);

  void onMessage(ProcessId from, const RmPayload& p);

  [[nodiscard]] bool delivered(MsgId id) const {
    return delivered_.count(id) > 0;
  }

  // Bootstrap plane (src/bootstrap/): a donor exports its R-Delivered
  // messages; the rejoining incarnation installs them as already-delivered
  // and already-relayed, SILENTLY (no deliver callbacks — the protocol
  // state travels separately in the snapshot). Stale wire copies of old
  // messages then dedupe here instead of re-entering the rejoined protocol
  // as fresh R-Delivers.
  [[nodiscard]] std::vector<AppMsgPtr> snapshotDelivered() const {
    std::vector<AppMsgPtr> out;
    for (const auto& [id, s] : seen_)
      if (delivered_.count(id) > 0) out.push_back(s.msg);
    return out;
  }
  void installDelivered(const std::vector<AppMsgPtr>& msgs) {
    for (const AppMsgPtr& m : msgs) {
      Seen& s = seen_[m->id];
      s.msg = m;
      s.relayed = true;
      delivered_.insert(m->id);
    }
  }

 private:
  struct Seen {
    AppMsgPtr msg;
    std::set<ProcessId> copiesFrom;  // distinct own-group copy senders
    bool relayed = false;
    bool explicitScope = false;   // dests came from rmcastTo
    std::vector<ProcessId> dests;
  };

  void firstSight(const AppMsgPtr& m, ProcessId copyFrom,
                  const std::vector<ProcessId>& dests, bool explicitScope);
  void maybeDeliver(MsgId id);
  [[nodiscard]] std::vector<ProcessId> destsOf(const AppMessage& m) const {
    return rt_.topology().membersOf(m.dest);
  }

  exec::Context& rt_;
  ProcessId self_;
  RelayPolicy relay_;
  Uniformity uniformity_;
  std::vector<DeliverCb> deliverCbs_;
  std::map<MsgId, Seen> seen_;
  std::set<MsgId> delivered_;
};

}  // namespace wanmc::rmcast
