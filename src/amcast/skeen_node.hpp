// Skeen's algorithm (as described by Birman & Joseph, TOCS'87) — the
// original genuine atomic multicast for FAILURE-FREE systems, reference [2].
//
// The paper's §1: "A corollary of this result is that Skeen's algorithm ...
// designed for failure-free systems, is also optimal — a result that has
// apparently been left unnoticed by the scientific community for more than
// 20 years." This implementation exists to exhibit that corollary: with
// per-PROCESS logical clocks and no consensus at all, the protocol still
// needs one delay to spread m and one to gather the timestamp votes —
// latency degree 2, exactly the genuine lower bound of Prop. 3.1/3.2.
//
// Protocol (classic three-step Skeen):
//   1. the sender sends m to every destination process;
//   2. every destination process votes with its logical clock and sends the
//      vote back to the sender... in the decentralized variant used here
//      (and by the paper's accounting), to ALL destination processes;
//   3. m's final timestamp is the maximum vote; messages are delivered in
//      (timestamp, id) order, held back while any known message could still
//      get a smaller final timestamp.
//
// NOT fault-tolerant: a crashed destination process blocks every message it
// was supposed to vote on. The fault-tolerant descendants in this library
// (A1, Fritzke, Rodrigues) replace the per-process votes with per-group
// agreement; keeping this ancestor around makes the lineage measurable.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "core/stack_node.hpp"

namespace wanmc::amcast {

struct SkeenPayload final : Payload {
  enum class Kind : uint8_t { kData, kVote };
  Kind kind = Kind::kData;
  AppMsgPtr msg;
  uint64_t ts = 0;

  SkeenPayload(Kind k, AppMsgPtr m, uint64_t t)
      : kind(k), msg(std::move(m)), ts(t) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return std::string(kind == Kind::kData ? "skeen-data(m" : "skeen-vote(m") +
           std::to_string(msg->id) + "," + std::to_string(ts) + ")";
  }
};

class SkeenNode final : public core::XcastNode {
 public:
  SkeenNode(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg);

  void xcast(const AppMsgPtr& m) override;

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Bootstrap snapshot surface. A rejoiner adopts the dead incarnation's
  // vote where one exists (so its maximum matches its peers') and casts a
  // fresh vote otherwise — which is exactly what unblocks peers stuck
  // waiting on the crashed process's vote.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct Pend {
    AppMsgPtr msg;
    uint64_t myVote = 0;
    std::map<ProcessId, uint64_t> votes;
    bool decided = false;
    uint64_t finalTs = 0;
  };

  struct BootState final : bootstrap::ProtocolState {
    uint64_t clock = 1;
    std::map<MsgId, Pend> pending;
    std::set<MsgId> delivered;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  void noteMessage(const AppMsgPtr& m);
  void maybeDecide(MsgId id);
  void tryDeliver();

  uint64_t clock_ = 1;
  std::map<MsgId, Pend> pending_;
  std::set<MsgId> delivered_;
};

}  // namespace wanmc::amcast
