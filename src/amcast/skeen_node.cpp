#include "amcast/skeen_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::amcast {

SkeenNode::SkeenNode(exec::Context& rt, ProcessId pid,
                     const core::StackConfig& cfg)
    : core::XcastNode(rt, pid, cfg) {}

void SkeenNode::xcast(const AppMsgPtr& m) {
  assert(!m->dest.empty());
  recordXcast(m);
  auto data = std::make_shared<const SkeenPayload>(SkeenPayload::Kind::kData,
                                                   m, 0);
  std::vector<ProcessId> tos;
  for (ProcessId q : topology().membersOf(m->dest))
    if (q != pid()) tos.push_back(q);
  sendToMany(tos, data);
  if (m->dest.contains(gid())) noteMessage(m);
}

void SkeenNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  const auto* sp = dynamic_cast<const SkeenPayload*>(p.get());
  assert(sp != nullptr);
  noteMessage(sp->msg);
  if (sp->kind == SkeenPayload::Kind::kVote) {
    auto it = pending_.find(sp->msg->id);
    if (it != pending_.end() && !it->second.decided) {
      it->second.votes[from] = sp->ts;
      clock_ = std::max(clock_, sp->ts + 1);
      maybeDecide(sp->msg->id);
    }
  }
}

void SkeenNode::noteMessage(const AppMsgPtr& m) {
  if (!m->dest.contains(gid())) return;
  if (delivered_.count(m->id) || pending_.count(m->id)) return;
  Pend& p = pending_[m->id];
  p.msg = m;
  p.myVote = clock_++;
  p.votes[pid()] = p.myVote;
  // Decentralized vote exchange: every destination process learns every
  // vote, so everyone computes the same maximum without a round trip
  // through the sender.
  auto vote = std::make_shared<const SkeenPayload>(SkeenPayload::Kind::kVote,
                                                   m, p.myVote);
  std::vector<ProcessId> tos;
  for (ProcessId q : topology().membersOf(m->dest))
    if (q != pid()) tos.push_back(q);
  sendToMany(tos, vote);
  maybeDecide(m->id);
}

void SkeenNode::maybeDecide(MsgId id) {
  Pend& p = pending_.at(id);
  // Failure-free model: wait for the vote of EVERY destination process.
  const auto dests = topology().membersOf(p.msg->dest);
  for (ProcessId q : dests)
    if (p.votes.count(q) == 0) return;
  uint64_t max = 0;
  for (const auto& [q, v] : p.votes) max = std::max(max, v);
  p.decided = true;
  p.finalTs = max;
  clock_ = std::max(clock_, max + 1);
  tryDeliver();
}

void SkeenNode::tryDeliver() {
  if (joining()) return;  // votes buffer in pending_; delivery waits
  // Deliver decided messages in (finalTs, id) order. An undecided message
  // holds everything with a larger (bound, id) back; our own vote is a
  // lower bound on its final timestamp (the maximum includes it).
  for (;;) {
    const Pend* best = nullptr;
    MsgId bestId = 0;
    for (const auto& [id, p] : pending_) {
      const uint64_t bound = p.decided ? p.finalTs : p.myVote;
      if (best == nullptr ||
          std::pair(bound, id) <
              std::pair(best->decided ? best->finalTs : best->myVote,
                        bestId)) {
        best = &p;
        bestId = id;
      }
    }
    if (best == nullptr || !best->decided) return;
    AppMsgPtr m = best->msg;
    delivered_.insert(bestId);
    pending_.erase(bestId);
    adeliver(m);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t SkeenNode::BootState::approxBytes() const {
  uint64_t b = 8;
  for (const auto& [id, p] : pending)
    b += 48 + p.msg->body.size() + 16 * p.votes.size();
  return b + 8 * delivered.size();
}

std::shared_ptr<bootstrap::ProtocolState> SkeenNode::snapshotProtocolState()
    const {
  auto s = std::make_shared<BootState>();
  s->clock = clock_;
  s->pending = pending_;
  s->delivered = delivered_;
  return s;
}

void SkeenNode::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  clock_ = std::max(clock_, s->clock);
  delivered_.insert(s->delivered.begin(), s->delivered.end());

  for (const auto& [id, dp] : s->pending) {
    if (delivered_.count(id)) continue;
    if (pending_.count(id) == 0) {
      if (auto v = dp.votes.find(pid()); v != dp.votes.end()) {
        // The dead incarnation voted on m before crashing: adopt that vote
        // (peers hold it) instead of casting a conflicting fresh one.
        Pend& p = pending_[id];
        p.msg = dp.msg;
        p.myVote = v->second;
      } else {
        // Peers are stuck waiting for this process's vote: cast it.
        noteMessage(dp.msg);
      }
    }
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;  // not an addressee
    Pend& p = it->second;
    for (const auto& [voter, ts] : dp.votes) p.votes.emplace(voter, ts);
    if (dp.decided && !p.decided) {
      p.decided = true;
      p.finalTs = dp.finalTs;
      clock_ = std::max(clock_, dp.finalTs + 1);
    }
  }
  for (MsgId id : s->delivered) pending_.erase(id);
}

void SkeenNode::resumeAfterInstall() {
  std::vector<MsgId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (MsgId id : ids)
    if (pending_.count(id)) maybeDecide(id);
  tryDeliver();
}

}  // namespace wanmc::amcast
