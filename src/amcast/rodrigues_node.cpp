#include "amcast/rodrigues_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::amcast {

RodriguesNode::RodriguesNode(exec::Context& rt, ProcessId pid,
                             const core::StackConfig& cfg)
    : core::XcastNode(rt, pid, cfg) {
  // Votes and consensus run ACROSS the destination groups, so suspicion of
  // REMOTE processes matters here — unlike the group-scoped stacks. Widen
  // the detector to every other group: the oracle is global already (this
  // is a no-op), and the heartbeat detector adds one inter-group lane per
  // remote group, closing the PR 1 gap where a remote crash under
  // HeartbeatFd went unnoticed and the vote quorum hung forever.
  for (GroupId g = 0; g < topology().numGroups(); ++g)
    if (g != gid()) fd().addRemoteGroup(g, topology().members(g));

  // A crash can be the event that completes a vote quorum: maybePropose
  // waits for every unsuspected destination process, so a new suspicion
  // must re-evaluate every pending message or the survivors hang.
  fd().onSuspicion([this](ProcessId) {
    std::vector<MsgId> ids;
    ids.reserve(pending_.size());
    for (const auto& [id, p] : pending_) ids.push_back(id);
    for (MsgId id : ids) maybePropose(id);
  });

  // And the dual, for the retraction side of fault plane v2: once a
  // suspicion is retracted (the process recovered, or a healed partition
  // let its heartbeats through again), the vote quorum waits on that
  // process AGAIN — but it may have missed the kData while unreachable
  // and then it will never vote. Re-introduce every pending message it
  // owes a vote on; noteMessage dedups at the receiver, so this is
  // idempotent for a process that merely timed out spuriously.
  //
  // Which messages it owes depends on WHY the suspicion ended. A
  // rehabilitated process (healed partition, premature timeout — same
  // incarnation) kept its state: only messages it never voted on can be
  // missing, and kData is enough. A FRESH incarnation lost every pending
  // message AND every vote it had collected — including for messages it
  // voted on before dying, which the pre-PR6 handler skipped, stranding
  // the rejoin (its buffered consensus packets wait forever on a kData
  // that never comes). For those, relay our whole COLLECTED VOTE MAP
  // (every vote is broadcast to all destination processes, so a correct
  // process's map is complete): the rejoin re-notes the message off the
  // first relayed vote, re-votes, completes its vote set from the relay
  // alone — even for messages other peers already delivered and will
  // never mention again — and proposes; an already-decided instance
  // answers the proposal with its decision (maybeRetransmitDecision).
  // Re-sending only kData, or only our own vote, deadlocks the rejoin
  // instead: it can never complete the vote set of a message whose other
  // voters moved on, never proposes, never hears the decision, and its
  // delivery queue stalls behind the undecidable entry forever.
  fd().onRetraction([this](ProcessId p, bool fresh) {
    const GroupId pg = topology().group(p);
    for (const auto& [id, pend] : pending_) {
      if (!pend.msg->dest.contains(pg)) continue;
      if (fresh) {
        for (const auto& [voter, ts] : pend.votes)
          send(p, std::make_shared<const RodriguesPayload>(
                      RodriguesPayload::Kind::kVote, pend.msg, ts, voter));
      } else if (pend.votes.count(p) == 0) {
        send(p, std::make_shared<const RodriguesPayload>(
                    RodriguesPayload::Kind::kData, pend.msg, 0));
      }
    }
  });
}

void RodriguesNode::xcast(const AppMsgPtr& m) {
  assert(!m->dest.empty());
  recordXcast(m);
  auto data = std::make_shared<const RodriguesPayload>(
      RodriguesPayload::Kind::kData, m, 0);
  std::vector<ProcessId> tos;
  for (ProcessId q : topology().membersOf(m->dest))
    if (q != pid()) tos.push_back(q);
  sendToMany(tos, data);
  if (m->dest.contains(gid())) noteMessage(m);
}

consensus::ConsensusService& RodriguesNode::serviceFor(const AppMsgPtr& m) {
  if (auto* svc = findConsensus(kScopeBase + m->id)) return *svc;
  return addConsensus(kScopeBase + m->id, topology().membersOf(m->dest));
}

void RodriguesNode::noteMessage(const AppMsgPtr& m) {
  if (!m->dest.contains(gid())) return;
  if (delivered_.count(m->id) || pending_.count(m->id)) return;

  Pend& p = pending_[m->id];
  p.msg = m;
  p.myVote = clock_++;
  p.votes[pid()] = p.myVote;
  knownMsgs_[m->id] = m;

  // One consensus instance per message, across the destination processes.
  auto& svc = serviceFor(m);
  svc.onDecide([this, id = m->id](consensus::Instance,
                                  const ConsensusValue& v) {
    const auto* ts = std::get_if<uint64_t>(&v);
    assert(ts != nullptr);
    onDecided(id, *ts);
  });

  auto vote = std::make_shared<const RodriguesPayload>(
      RodriguesPayload::Kind::kVote, m, p.myVote);
  std::vector<ProcessId> voteTos;
  for (ProcessId q : topology().membersOf(m->dest))
    if (q != pid()) voteTos.push_back(q);
  sendToMany(voteTos, vote);

  // Replay consensus packets that arrived before we knew the message.
  auto early = std::move(earlyConsensus_);
  earlyConsensus_.clear();
  for (auto& [from, payload] : early) onMessage(from, payload);

  maybePropose(m->id);
}

void RodriguesNode::onProtocolMessage(ProcessId from, const PayloadPtr& p) {
  const auto* rp = dynamic_cast<const RodriguesPayload*>(p.get());
  assert(rp != nullptr);
  noteMessage(rp->msg);
  if (rp->kind == RodriguesPayload::Kind::kVote) {
    auto it = pending_.find(rp->msg->id);
    if (it != pending_.end()) {
      // Relayed votes (amnesiac catch-up) carry an explicit voter; a
      // normal vote is the sender's own.
      const ProcessId voter = rp->voter == kNoProcess ? from : rp->voter;
      it->second.votes[voter] = rp->ts;
      // Keep the local clock ahead of every vote seen: later messages then
      // vote (and decide) above everything already ordered.
      clock_ = std::max(clock_, rp->ts + 1);
      maybePropose(rp->msg->id);
    }
  }
}

consensus::ConsensusService* RodriguesNode::onUnknownConsensusScope(
    ProcessId from, const consensus::ConsensusPayload& cp) {
  // A consensus packet for a message we have not seen yet (possible under
  // heavy jitter): buffer it; noteMessage replays it once m arrives.
  earlyConsensus_.push_back(
      {from, std::make_shared<consensus::ConsensusPayload>(cp)});
  return nullptr;
}

void RodriguesNode::maybePropose(MsgId id) {
  if (joining()) return;  // rejoin in progress: no proposal initiation
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pend& p = it->second;
  if (p.proposed || p.decided) return;

  // Wait for a vote from every unsuspected destination process, and at
  // least a majority of every destination group.
  for (GroupId g : p.msg->dest.groups()) {
    size_t have = 0;
    for (ProcessId q : topology().members(g)) {
      if (p.votes.count(q)) {
        ++have;
      } else if (!fd().suspects(q)) {
        return;  // still waiting for a live voter
      }
    }
    if (have < static_cast<size_t>(topology().groupSize(g)) / 2 + 1) return;
  }

  uint64_t maxVote = 0;
  for (const auto& [q, v] : p.votes) maxVote = std::max(maxVote, v);
  p.proposed = true;
  serviceFor(p.msg).propose(1, maxVote);
}

void RodriguesNode::onDecided(MsgId id, uint64_t finalTs) {
  auto it = pending_.find(id);
  if (it == pending_.end() || it->second.decided) return;
  it->second.decided = true;
  it->second.finalTs = finalTs;
  clock_ = std::max(clock_, finalTs + 1);
  tryDeliver();
}

void RodriguesNode::tryDeliver() {
  if (joining()) return;  // decisions buffer in pending_; delivery waits
  // Deliver decided messages in (finalTs, id) order, held back by any
  // pending message whose final timestamp could still be smaller. Our own
  // vote is a lower bound on every final timestamp (the decision is a
  // maximum over a vote set that includes every unsuspected process).
  for (;;) {
    const Pend* best = nullptr;
    MsgId bestId = 0;
    for (const auto& [id, p] : pending_) {
      const uint64_t bound = p.decided ? p.finalTs : p.myVote;
      if (best == nullptr ||
          std::pair(bound, id) <
              std::pair(best->decided ? best->finalTs : best->myVote,
                        bestId)) {
        best = &p;
        bestId = id;
      }
    }
    if (best == nullptr || !best->decided) return;

    AppMsgPtr m = best->msg;
    delivered_.insert(bestId);
    pending_.erase(bestId);
    adeliver(m);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t RodriguesNode::BootState::approxBytes() const {
  uint64_t b = 8;
  for (const auto& [id, p] : pending)
    b += 48 + p.msg->body.size() + 16 * p.votes.size();
  b += 8 * delivered.size() + 16 * knownMsgs.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState>
RodriguesNode::snapshotProtocolState() const {
  auto s = std::make_shared<BootState>();
  s->clock = clock_;
  s->pending = pending_;
  s->delivered = delivered_;
  s->knownMsgs = knownMsgs_;
  return s;
}

void RodriguesNode::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  // Clock first: every vote this incarnation casts below must land above
  // everything the donor has already ordered.
  clock_ = std::max(clock_, s->clock);
  delivered_.insert(s->delivered.begin(), s->delivered.end());
  for (const auto& [id, m] : s->knownMsgs) knownMsgs_.emplace(id, m);

  for (const auto& [id, dp] : s->pending) {
    if (delivered_.count(id)) continue;
    if (pending_.count(id) == 0) {
      // First sight via the snapshot: noteMessage recreates the per-message
      // consensus scope and casts OUR vote (the donor's myVote is its own).
      noteMessage(dp.msg);
    }
    auto it = pending_.find(id);
    if (it == pending_.end()) continue;  // not an addressee
    Pend& p = it->second;
    for (const auto& [voter, ts] : dp.votes) p.votes.emplace(voter, ts);
    if (dp.decided && !p.decided) {
      p.decided = true;
      p.finalTs = dp.finalTs;
      clock_ = std::max(clock_, dp.finalTs + 1);
    }
  }
  // Entries the donor delivered may still linger locally (vote intake
  // during the joining window): drop them, the suffix replay covers them.
  for (MsgId id : s->delivered) pending_.erase(id);
}

void RodriguesNode::resumeAfterInstall() {
  std::vector<MsgId> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  for (MsgId id : ids) maybePropose(id);
  tryDeliver();
}

}  // namespace wanmc::amcast
