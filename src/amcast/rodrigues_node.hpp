// Baseline: Rodrigues, Guerraoui & Schiper, "Scalable atomic multicast"
// (IC3N 1998) — the paper's reference [10].
//
// A Skeen-style protocol where the *addressees* (processes, not groups)
// timestamp the message: every destination process votes with its logical
// clock, votes are exchanged among all destination processes, and once a
// process has the votes it proposes the maximum to a consensus instance run
// ACROSS the destination processes. That cross-group consensus is the
// protocol's WAN weakness, called out in the paper's related work: with the
// early consensus of [11] it costs 2 extra inter-group delays, for a total
// latency degree of
//     1 (multicast) + 1 (vote exchange) + 2 (cross-group consensus) = 4
// and O(k^2 d^2) inter-group messages.
//
// Vote quorum: [10] uses a majority of every destination group. We wait for
// every *unsuspected* destination process instead (identical in the
// failure-free runs Figure 1 accounts for); this makes each process's own
// vote a lower bound on the decided timestamp, which gives a simple and
// airtight hold-back rule. See DESIGN.md §4 for the discussion.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/consensus_value.hpp"
#include "core/stack_node.hpp"

namespace wanmc::amcast {

struct RodriguesPayload final : Payload {
  enum class Kind : uint8_t { kData, kVote };
  Kind kind = Kind::kData;
  AppMsgPtr msg;
  uint64_t ts = 0;  // the vote
  // Whose vote `ts` is. kNoProcess (the default, and every pre-PR6
  // packet): the network sender's own. Set explicitly when a process
  // RELAYS its collected vote map to a recovered amnesiac rejoin — the
  // relay carries votes cast by third parties.
  ProcessId voter = kNoProcess;

  RodriguesPayload(Kind k, AppMsgPtr m, uint64_t t,
                   ProcessId v = kNoProcess)
      : kind(k), msg(std::move(m)), ts(t), voter(v) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return std::string(kind == Kind::kData ? "rod-data(m" : "rod-vote(m") +
           std::to_string(msg->id) + "," + std::to_string(ts) +
           (voter == kNoProcess ? "" : ",v" + std::to_string(voter)) + ")";
  }
};

class RodriguesNode final : public core::XcastNode {
 public:
  static constexpr uint64_t kScopeBase = 1u << 20;

  RodriguesNode(exec::Context& rt, ProcessId pid,
                const core::StackConfig& cfg);

  void xcast(const AppMsgPtr& m) override;

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;
  consensus::ConsensusService* onUnknownConsensusScope(
      ProcessId from, const consensus::ConsensusPayload& cp) override;

  // Bootstrap snapshot surface. Decided outcomes are adopted directly (the
  // per-message consensus scopes of a dead incarnation are gone); undecided
  // entries re-enter through noteMessage, which recreates the scope and
  // casts this incarnation's own vote.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct Pend {
    AppMsgPtr msg;
    uint64_t myVote = 0;
    std::map<ProcessId, uint64_t> votes;
    bool proposed = false;
    bool decided = false;
    uint64_t finalTs = 0;
  };

  struct BootState final : bootstrap::ProtocolState {
    uint64_t clock = 1;
    std::map<MsgId, Pend> pending;
    std::set<MsgId> delivered;
    std::map<MsgId, AppMsgPtr> knownMsgs;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  void noteMessage(const AppMsgPtr& m);
  void maybePropose(MsgId id);
  void onDecided(MsgId id, uint64_t finalTs);
  void tryDeliver();
  consensus::ConsensusService& serviceFor(const AppMsgPtr& m);

  uint64_t clock_ = 1;
  std::map<MsgId, Pend> pending_;
  std::set<MsgId> delivered_;
  std::map<MsgId, AppMsgPtr> knownMsgs_;  // for scope -> members resolution
  // Consensus packets that raced ahead of their kData/kVote introduction.
  std::vector<std::pair<ProcessId, std::shared_ptr<const Payload>>>
      earlyConsensus_;
};

}  // namespace wanmc::amcast
