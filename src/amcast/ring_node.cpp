#include "amcast/ring_node.hpp"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace wanmc::amcast {

RingNode::RingNode(exec::Context& rt, ProcessId pid,
                   const core::StackConfig& cfg)
    : core::XcastNode(rt, pid, cfg) {
  groupConsensus_ = &addGroupConsensus();
  groupConsensus_->onDecide(
      [this](consensus::Instance k, const ConsensusValue& v) {
        onDecided(k, v);
      });
}

GroupId RingNode::nextGroup(const AppMessage& m, GroupId g) {
  auto ring = m.dest.groups();  // ascending group ids
  for (size_t i = 0; i + 1 < ring.size(); ++i)
    if (ring[i] == g) return ring[i + 1];
  return kNoGroup;
}

void RingNode::xcast(const AppMsgPtr& m) {
  assert(!m->dest.empty());
  recordXcast(m);
  const GroupId g1 = firstGroup(*m);
  auto start = std::make_shared<const RingPayload>(RingPayload::Kind::kStart,
                                                   m, 0, gid());
  std::vector<ProcessId> tos;
  for (ProcessId q : topology().members(g1))
    if (q != pid()) tos.push_back(q);
  sendToMany(tos, start);
  if (gid() == g1) noteCandidate(m, /*defined=*/false, 0);
}

void RingNode::onProtocolMessage(ProcessId /*from*/, const PayloadPtr& p) {
  const auto* rp = dynamic_cast<const RingPayload*>(p.get());
  assert(rp != nullptr);
  switch (rp->kind) {
    case RingPayload::Kind::kStart:
      noteCandidate(rp->msg, /*defined=*/false, 0);
      break;
    case RingPayload::Kind::kHandover:
      noteCandidate(rp->msg, /*defined=*/true, rp->ts);
      break;
    case RingPayload::Kind::kAck:
      acked_.insert(rp->msg->id);
      pumpQueue();
      break;
  }
}

void RingNode::noteCandidate(const AppMsgPtr& m, bool defined, uint64_t ts) {
  if (done_.count(m->id) || agreed_.count(m->id) || candidates_.count(m->id))
    return;
  candidates_[m->id] = Cand{m, defined, ts};
  tryPropose();
}

void RingNode::tryPropose() {
  if (joining()) return;  // rejoin in progress: no proposal initiation
  if (propK_ > K_) return;
  A1EntrySet set;
  for (const auto& [id, c] : candidates_) {
    // Reuse the A1 entry encoding: s0 = "this group defines the timestamp",
    // s2 = "accept the handed-over timestamp `ts`".
    set.push_back(A1Entry{c.msg, c.defined ? Stage::s2 : Stage::s0, c.ts});
  }
  if (set.empty()) return;
  canonicalize(set);
  propK_ = K_ + 1;
  groupConsensus_->propose(K_, std::move(set));
}

void RingNode::onDecided(consensus::Instance k, const ConsensusValue& v) {
  const auto* entries = std::get_if<A1EntrySet>(&v);
  assert(entries != nullptr);
  decisionBuffer_[k] = *entries;
  drainDecisions();
}

void RingNode::drainDecisions() {
  // Buffer-only while joining (see A1Node::drainDecisions).
  if (joining()) return;
  for (auto it = decisionBuffer_.find(K_); it != decisionBuffer_.end();
       it = decisionBuffer_.find(K_)) {
    A1EntrySet entries = std::move(it->second);
    decisionBuffer_.erase(it);
    handleDecided(K_, entries);
  }
}

void RingNode::handleDecided(uint64_t k, const A1EntrySet& entries) {
  uint64_t maxTs = k;
  for (const A1Entry& e : entries) {
    const MsgId id = e.msg->id;
    candidates_.erase(id);
    if (done_.count(id) || agreed_.count(id)) continue;
    // g1 defines the timestamp as the consensus instance number; later
    // groups adopt the handed-over one and push their clock past it.
    const uint64_t ts = (e.stage == Stage::s0) ? k : e.ts;
    agreed_[id] = Cand{e.msg, true, ts};
    queue_.push_back(id);  // entries are sorted by id: deterministic order
    maxTs = std::max(maxTs, ts);
  }
  K_ = std::max(maxTs, K_) + 1;
  pumpQueue();
  tryPropose();
  drainDecisions();
}

void RingNode::pumpQueue() {
  if (joining()) return;  // acks buffer in acked_; the queue waits
  while (!queue_.empty()) {
    const MsgId id = queue_.front();
    const Cand& c = agreed_.at(id);
    const AppMessage& m = *c.msg;

    if (!forwarded_.count(id)) {
      forwarded_.insert(id);
      const GroupId next = nextGroup(m, gid());
      if (next != kNoGroup) {
        // Hand m over to the next group on its ring (all-to-all between the
        // two groups, for fault tolerance: any correct member keeps the
        // chain alive).
        auto h = std::make_shared<const RingPayload>(
            RingPayload::Kind::kHandover, c.msg, c.ts, gid());
        sendToMany(topology().members(next), h);
      } else {
        // We are gk: acknowledge to every destination process outside our
        // group; our own group learns locally.
        auto a = std::make_shared<const RingPayload>(RingPayload::Kind::kAck,
                                                     c.msg, c.ts, gid());
        std::vector<ProcessId> tos;
        for (ProcessId q : topology().membersOf(m.dest))
          if (topology().group(q) != gid()) tos.push_back(q);
        sendToMany(tos, a);
        acked_.insert(id);
      }
    }

    if (!acked_.count(id)) return;  // head-of-line wait for the final ack

    AppMsgPtr msg = c.msg;
    queue_.pop_front();
    agreed_.erase(id);
    forwarded_.erase(id);
    acked_.erase(id);
    done_.insert(id);
    adeliver(msg);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t RingNode::BootState::approxBytes() const {
  uint64_t b = 16;
  for (const auto& [id, c] : candidates) b += 40 + c.msg->body.size();
  for (const auto& [id, c] : agreed) b += 40 + c.msg->body.size();
  b += 8 * (queue.size() + acked.size() + forwarded.size() + done.size());
  for (const auto& [k, es] : decisionBuffer) b += 8 + 48 * es.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState> RingNode::snapshotProtocolState()
    const {
  auto s = std::make_shared<BootState>();
  s->K = K_;
  s->propK = propK_;
  s->candidates = candidates_;
  s->queue = queue_;
  s->agreed = agreed_;
  s->acked = acked_;
  s->forwarded = forwarded_;
  s->done = done_;
  s->decisionBuffer = decisionBuffer_;
  return s;
}

void RingNode::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  // Global facts, valid from any donor: the delivered set (the suffix
  // replay performs the actual deliveries) and final-group acks (gk
  // broadcasts them to every destination process). Acks DO land during
  // the joining window (union them).
  done_.insert(s->done.begin(), s->done.end());
  acked_.insert(s->acked.begin(), s->acked.end());
  if (snap.donorGroup == gid()) {
    // Group-scoped pieces: the clocks, the agreed queue and the candidate
    // table describe the DONOR's group's position on each message's ring —
    // only a groupmate's apply. The queue and its bookkeeping are produced
    // only by decisions, and the joining gate kept drainDecisions
    // buffer-only, so the local ones are empty and the donor's are adopted
    // wholesale.
    K_ = std::max(K_, s->K);
    propK_ = std::max(propK_, s->propK);
    queue_ = s->queue;
    agreed_ = s->agreed;
    forwarded_ = s->forwarded;
    for (const auto& [id, c] : s->candidates) candidates_[id] = c;
    for (const auto& [k, es] : s->decisionBuffer)
      decisionBuffer_.emplace(k, es);
  }
  for (auto it = acked_.begin(); it != acked_.end();)
    it = done_.count(*it) ? acked_.erase(it) : std::next(it);
  for (auto it = candidates_.begin(); it != candidates_.end();)
    it = (done_.count(it->first) || agreed_.count(it->first))
             ? candidates_.erase(it)
             : std::next(it);
  decisionBuffer_.erase(decisionBuffer_.begin(),
                        decisionBuffer_.lower_bound(K_));
}

void RingNode::resumeAfterInstall() {
  drainDecisions();
  pumpQueue();
  tryPropose();
}

}  // namespace wanmc::amcast
