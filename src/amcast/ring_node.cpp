#include "amcast/ring_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::amcast {

RingNode::RingNode(sim::Runtime& rt, ProcessId pid,
                   const core::StackConfig& cfg)
    : core::XcastNode(rt, pid, cfg) {
  groupConsensus_ = &addGroupConsensus();
  groupConsensus_->onDecide(
      [this](consensus::Instance k, const ConsensusValue& v) {
        onDecided(k, v);
      });
}

GroupId RingNode::nextGroup(const AppMessage& m, GroupId g) {
  auto ring = m.dest.groups();  // ascending group ids
  for (size_t i = 0; i + 1 < ring.size(); ++i)
    if (ring[i] == g) return ring[i + 1];
  return kNoGroup;
}

void RingNode::xcast(const AppMsgPtr& m) {
  assert(!m->dest.empty());
  recordXcast(m);
  const GroupId g1 = firstGroup(*m);
  auto start = std::make_shared<const RingPayload>(RingPayload::Kind::kStart,
                                                   m, 0, gid());
  std::vector<ProcessId> tos;
  for (ProcessId q : topology().members(g1))
    if (q != pid()) tos.push_back(q);
  sendToMany(tos, start);
  if (gid() == g1) noteCandidate(m, /*defined=*/false, 0);
}

void RingNode::onProtocolMessage(ProcessId /*from*/, const PayloadPtr& p) {
  const auto* rp = dynamic_cast<const RingPayload*>(p.get());
  assert(rp != nullptr);
  switch (rp->kind) {
    case RingPayload::Kind::kStart:
      noteCandidate(rp->msg, /*defined=*/false, 0);
      break;
    case RingPayload::Kind::kHandover:
      noteCandidate(rp->msg, /*defined=*/true, rp->ts);
      break;
    case RingPayload::Kind::kAck:
      acked_.insert(rp->msg->id);
      pumpQueue();
      break;
  }
}

void RingNode::noteCandidate(const AppMsgPtr& m, bool defined, uint64_t ts) {
  if (done_.count(m->id) || agreed_.count(m->id) || candidates_.count(m->id))
    return;
  candidates_[m->id] = Cand{m, defined, ts};
  tryPropose();
}

void RingNode::tryPropose() {
  if (propK_ > K_) return;
  A1EntrySet set;
  for (const auto& [id, c] : candidates_) {
    // Reuse the A1 entry encoding: s0 = "this group defines the timestamp",
    // s2 = "accept the handed-over timestamp `ts`".
    set.push_back(A1Entry{c.msg, c.defined ? Stage::s2 : Stage::s0, c.ts});
  }
  if (set.empty()) return;
  canonicalize(set);
  propK_ = K_ + 1;
  groupConsensus_->propose(K_, std::move(set));
}

void RingNode::onDecided(consensus::Instance k, const ConsensusValue& v) {
  const auto* entries = std::get_if<A1EntrySet>(&v);
  assert(entries != nullptr);
  decisionBuffer_[k] = *entries;
  drainDecisions();
}

void RingNode::drainDecisions() {
  for (auto it = decisionBuffer_.find(K_); it != decisionBuffer_.end();
       it = decisionBuffer_.find(K_)) {
    A1EntrySet entries = std::move(it->second);
    decisionBuffer_.erase(it);
    handleDecided(K_, entries);
  }
}

void RingNode::handleDecided(uint64_t k, const A1EntrySet& entries) {
  uint64_t maxTs = k;
  for (const A1Entry& e : entries) {
    const MsgId id = e.msg->id;
    candidates_.erase(id);
    if (done_.count(id) || agreed_.count(id)) continue;
    // g1 defines the timestamp as the consensus instance number; later
    // groups adopt the handed-over one and push their clock past it.
    const uint64_t ts = (e.stage == Stage::s0) ? k : e.ts;
    agreed_[id] = Cand{e.msg, true, ts};
    queue_.push_back(id);  // entries are sorted by id: deterministic order
    maxTs = std::max(maxTs, ts);
  }
  K_ = std::max(maxTs, K_) + 1;
  pumpQueue();
  tryPropose();
  drainDecisions();
}

void RingNode::pumpQueue() {
  while (!queue_.empty()) {
    const MsgId id = queue_.front();
    const Cand& c = agreed_.at(id);
    const AppMessage& m = *c.msg;

    if (!forwarded_.count(id)) {
      forwarded_.insert(id);
      const GroupId next = nextGroup(m, gid());
      if (next != kNoGroup) {
        // Hand m over to the next group on its ring (all-to-all between the
        // two groups, for fault tolerance: any correct member keeps the
        // chain alive).
        auto h = std::make_shared<const RingPayload>(
            RingPayload::Kind::kHandover, c.msg, c.ts, gid());
        sendToMany(topology().members(next), h);
      } else {
        // We are gk: acknowledge to every destination process outside our
        // group; our own group learns locally.
        auto a = std::make_shared<const RingPayload>(RingPayload::Kind::kAck,
                                                     c.msg, c.ts, gid());
        std::vector<ProcessId> tos;
        for (ProcessId q : topology().membersOf(m.dest))
          if (topology().group(q) != gid()) tos.push_back(q);
        sendToMany(tos, a);
        acked_.insert(id);
      }
    }

    if (!acked_.count(id)) return;  // head-of-line wait for the final ack

    AppMsgPtr msg = c.msg;
    queue_.pop_front();
    agreed_.erase(id);
    forwarded_.erase(id);
    acked_.erase(id);
    done_.insert(id);
    adeliver(msg);
  }
}

}  // namespace wanmc::amcast
