// Baseline: Delporte-Gallet & Fauconnier, "Fault-tolerant genuine atomic
// multicast to multiple groups" (OPODIS 2000) — the paper's reference [4].
//
// The destination groups of m form a deterministic ring g1 < g2 < ... < gk
// (ascending group id). g1 runs consensus to define m's final timestamp and
// hands m over to g2; every subsequent group runs consensus to accept m (and
// pushes its clock past the timestamp) and forwards it; gk finally sends an
// acknowledgment to all destination groups, after which m may be delivered.
// Crucially, "before handling other messages, every group waits for the
// final acknowledgment from gk": each group processes its messages strictly
// one at a time, which is what makes the delivery order acyclic — and what
// makes the latency degree grow linearly in k:
//     1 (reach g1) + (k-1) (handovers) + 1 (ack)  =  k + 1.
// Inter-group message complexity is O(k d^2) (d^2 per handover hop, all
// members of a group forward to all members of the next, for fault
// tolerance). Figure 1a contrasts this with A1's degree 2 at O(k^2 d^2):
// the two algorithms sit on opposite sides of a latency/bandwidth tradeoff.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "common/consensus_value.hpp"
#include "core/stack_node.hpp"

namespace wanmc::amcast {

struct RingPayload final : Payload {
  enum class Kind : uint8_t { kStart, kHandover, kAck };
  Kind kind = Kind::kStart;
  AppMsgPtr msg;
  uint64_t ts = 0;       // final timestamp (handover / ack)
  GroupId fromGroup = kNoGroup;

  RingPayload(Kind k, AppMsgPtr m, uint64_t t, GroupId g)
      : kind(k), msg(std::move(m)), ts(t), fromGroup(g) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return std::string("ring-") +
           (kind == Kind::kStart ? "start"
            : kind == Kind::kHandover ? "handover"
                                      : "ack") +
           "(m" + std::to_string(msg->id) + ")";
  }
};

class RingNode final : public core::XcastNode {
 public:
  RingNode(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg);

  void xcast(const AppMsgPtr& m) override;

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Bootstrap snapshot surface: clock, candidate set, the group-agreed
  // processing queue and its forwarded/acked bookkeeping.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct Cand {
    AppMsgPtr msg;
    bool defined = false;  // true once a timestamp travels with it
    uint64_t ts = 0;
  };

  struct BootState final : bootstrap::ProtocolState {
    uint64_t K = 1;
    uint64_t propK = 1;
    std::map<MsgId, Cand> candidates;
    std::deque<MsgId> queue;
    std::map<MsgId, Cand> agreed;
    std::set<MsgId> acked;
    std::set<MsgId> forwarded;
    std::set<MsgId> done;
    std::map<consensus::Instance, A1EntrySet> decisionBuffer;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  [[nodiscard]] static GroupId firstGroup(const AppMessage& m) {
    return m.dest.groups().front();
  }
  [[nodiscard]] static GroupId lastGroup(const AppMessage& m) {
    return m.dest.groups().back();
  }
  // Group after `g` on m's ring, or kNoGroup when g == gk.
  [[nodiscard]] static GroupId nextGroup(const AppMessage& m, GroupId g);

  void noteCandidate(const AppMsgPtr& m, bool defined, uint64_t ts);
  void tryPropose();
  void onDecided(consensus::Instance k, const ConsensusValue& v);
  void drainDecisions();
  void handleDecided(uint64_t k, const A1EntrySet& entries);
  // The head of the process queue may now be forwardable / deliverable.
  void pumpQueue();

  consensus::ConsensusService* groupConsensus_ = nullptr;

  uint64_t K_ = 1;
  uint64_t propK_ = 1;
  std::map<MsgId, Cand> candidates_;          // not yet agreed by the group
  std::deque<MsgId> queue_;                   // group-agreed processing order
  std::map<MsgId, Cand> agreed_;              // decided messages + final ts
  std::set<MsgId> acked_;
  std::set<MsgId> forwarded_;
  std::set<MsgId> done_;
  std::map<consensus::Instance, A1EntrySet> decisionBuffer_;
};

}  // namespace wanmc::amcast
