// The non-genuine multicast of the paper's introduction: reduce atomic
// multicast to atomic broadcast by A-BCasting every message to ALL groups
// and delivering it only at the addressees.
//
// This inherits A2's latency degree of 1 — beating the genuine lower bound
// of 2 (Prop. 3.1/3.2) precisely because it is not genuine: every process in
// the system works on every message, so its message complexity is O(n^2) per
// message no matter how few groups are addressed. bench_tradeoff_genuine
// quantifies this latency/bandwidth tradeoff against A1.
#pragma once

#include "abcast/a2_node.hpp"

namespace wanmc::amcast {

class ViaBcastNode final : public abcast::A2Node {
 public:
  using abcast::A2Node::A2Node;

 protected:
  [[nodiscard]] bool shouldDeliver(const AppMessage& m) const override {
    return m.dest.contains(gid());
  }
};

}  // namespace wanmc::amcast
