#include "amcast/a1_node.hpp"

#include <algorithm>
#include <cassert>

namespace wanmc::amcast {

A1Node::A1Node(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg,
               A1Options opts)
    : core::XcastNode(rt, pid, cfg), opts_(opts) {
  groupConsensus_ = &addGroupConsensus();
  groupConsensus_->onDecide(
      [this](consensus::Instance k, const ConsensusValue& v) {
        onDecided(k, v);
      });
  rm().onDeliver([this](const AppMsgPtr& m) {
    noteMessage(m);
    tryPropose();
  });
}

void A1Node::xcast(const AppMsgPtr& m) {
  assert(!m->dest.empty());
  recordXcast(m);
  rm().rmcast(m);  // line 9: R-MCast(m) to {q | q in m.dest}
}

void A1Node::noteMessage(const AppMsgPtr& m) {
  // Uniform integrity: only destination processes handle m.
  if (!m->dest.contains(gid())) return;
  if (pending_.count(m->id) || adelivered_.count(m->id)) return;
  pending_[m->id] = Pend{m, Stage::s0, K_};  // lines 11-13
}

void A1Node::tryPropose() {
  if (joining()) return;  // rejoin in progress: no proposal initiation
  if (propK_ > K_) return;  // one proposal per instance (line 14)
  A1EntrySet set;
  for (const auto& [id, p] : pending_) {
    if (p.stage == Stage::s0 || p.stage == Stage::s2)
      set.push_back(A1Entry{p.msg, p.stage, p.ts});
  }
  if (set.empty()) return;
  canonicalize(set);
  propK_ = K_ + 1;  // line 17
  groupConsensus_->propose(K_, std::move(set));
}

void A1Node::onDecided(consensus::Instance k, const ConsensusValue& v) {
  const auto* entries = std::get_if<A1EntrySet>(&v);
  assert(entries != nullptr && "A1 consensus decides A1EntrySets");
  decisionBuffer_[k] = *entries;
  drainDecisions();
}

void A1Node::drainDecisions() {
  // Decisions are applied in group-clock order: the sequence of instances a
  // group executes is the same on all members (paper Lemma A.1), but a
  // member that lags can receive the DECIDE for instance k' > K_ early.
  // While joining, decisions only accumulate in the buffer: applying one
  // against the amnesiac clock could A-Deliver before the snapshot lands,
  // making the suffix replay a within-incarnation duplicate.
  if (joining()) return;
  for (auto it = decisionBuffer_.find(K_); it != decisionBuffer_.end();
       it = decisionBuffer_.find(K_)) {
    A1EntrySet entries = std::move(it->second);
    decisionBuffer_.erase(it);
    handleDecided(K_, entries);
  }
}

void A1Node::handleDecided(consensus::Instance k, const A1EntrySet& entries) {
  ++instancesDecided_;
  uint64_t maxTs = 0;
  std::vector<MsgId> newlyS1;

  for (const A1Entry& e : entries) {
    const AppMsgPtr& m = e.msg;
    if (adelivered_.count(m->id)) continue;  // already done here
    Pend& p = pending_[m->id];               // line 30: add or update
    p.msg = m;

    if (e.stage == Stage::s2) {
      // line 26: the second consensus fixed the group clock; the final
      // timestamp was already adopted at line 39.
      p.ts = e.ts;
      p.stage = Stage::s3;
    } else if (m->dest.size() > 1) {
      // lines 21-24: define this group's proposal (= k) and exchange it.
      p.ts = k;
      p.stage = Stage::s1;
      tsProposals_[m->id][gid()] = k;
      auto ts = std::make_shared<const TsPayload>(m, k, gid());
      std::vector<ProcessId> remoteDests;
      for (GroupId g : m->dest.groups()) {
        if (g == gid()) continue;
        for (ProcessId q : topology().members(g)) remoteDests.push_back(q);
      }
      sendToMany(remoteDests, ts);  // line 24: one send event
      newlyS1.push_back(m->id);
    } else {
      // lines 28-29: single destination group. With the skip optimization m
      // jumps straight to s3; without it ([5]) m still walks through s1/s2,
      // which for one group degenerates to an extra consensus instance.
      p.ts = k;
      if (opts_.skipSingleGroup) {
        p.stage = Stage::s3;
      } else {
        p.stage = Stage::s1;
        tsProposals_[m->id][gid()] = k;
        newlyS1.push_back(m->id);
      }
    }
    maxTs = std::max(maxTs, p.ts);
  }

  // line 31: push the group clock past every decided timestamp.
  K_ = std::max(maxTs, K_) + 1;

  adeliveryTest();  // line 32

  // A proposal for the new instance may now be possible, and messages that
  // just reached s1 may already have all their remote proposals buffered.
  for (MsgId id : newlyS1) checkStage1(id);
  tryPropose();
  drainDecisions();
}

void A1Node::onProtocolMessage(ProcessId /*from*/, const PayloadPtr& p) {
  const auto* ts = dynamic_cast<const TsPayload*>(p.get());
  assert(ts != nullptr && "A1 protocol layer speaks TsPayload only");
  noteMessage(ts->msg);  // line 10: (TS, m) also introduces m
  tsProposals_[ts->msg->id][ts->fromGroup] =
      std::max(tsProposals_[ts->msg->id][ts->fromGroup], ts->ts);
  checkStage1(ts->msg->id);
  tryPropose();
}

void A1Node::checkStage1(MsgId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pend& p = it->second;
  if (p.stage != Stage::s1) return;

  // line 33: one proposal from every remote destination group.
  const auto& proposals = tsProposals_[id];
  for (GroupId g : p.msg->dest.groups()) {
    if (g != gid() && proposals.count(g) == 0) return;
  }

  uint64_t max = 0;  // line 34: TSset includes our own proposal (p.ts)
  for (const auto& [g, ts] : proposals) max = std::max(max, ts);
  max = std::max(max, p.ts);

  if (opts_.skipMaxProposal && p.ts >= max) {
    // line 35-36: our group proposed the final timestamp; its clock is
    // already beyond it (line 31 ran when the proposal was decided).
    p.stage = Stage::s3;
    adeliveryTest();
  } else {
    // lines 39-40: adopt the final timestamp; a second consensus will push
    // the group clock past it.
    p.ts = max;
    p.stage = Stage::s2;
    tryPropose();
  }
}

void A1Node::adeliveryTest() {
  // lines 3-7: deliver every s3 message whose (ts, id) is minimal among ALL
  // pending messages (any stage).
  for (;;) {
    const Pend* best = nullptr;
    MsgId bestId = 0;
    bool blocked = false;
    for (const auto& [id, p] : pending_) {
      if (best == nullptr ||
          std::pair(p.ts, id) < std::pair(best->ts, bestId)) {
        best = &p;
        bestId = id;
      }
    }
    if (best == nullptr) return;
    if (best->stage != Stage::s3) blocked = true;
    if (blocked) return;

    AppMsgPtr m = best->msg;
    adelivered_.insert(bestId);
    pending_.erase(bestId);
    tsProposals_.erase(bestId);
    adeliver(m);
  }
}

// ---------------------------------------------------------------------------
// Bootstrap snapshot surface.
// ---------------------------------------------------------------------------

uint64_t A1Node::BootState::approxBytes() const {
  uint64_t b = 16;  // the two clocks
  for (const auto& [id, p] : pending) b += 40 + p.msg->body.size();
  b += 8 * adelivered.size();
  for (const auto& [id, ps] : tsProposals) b += 8 + 16 * ps.size();
  for (const auto& [k, es] : decisionBuffer) b += 8 + 48 * es.size();
  return b;
}

std::shared_ptr<bootstrap::ProtocolState> A1Node::snapshotProtocolState()
    const {
  auto s = std::make_shared<BootState>();
  s->K = K_;
  s->propK = propK_;
  s->pending = pending_;
  s->adelivered = adelivered_;
  s->tsProposals = tsProposals_;
  s->decisionBuffer = decisionBuffer_;
  return s;
}

void A1Node::installProtocolState(const bootstrap::Snapshot& snap) {
  const auto* s = dynamic_cast<const BootState*>(snap.protocol.get());
  if (s == nullptr) return;
  // Merge, never clobber: messages that arrived during the joining window
  // must survive.
  adelivered_.insert(s->adelivered.begin(), s->adelivered.end());
  // Timestamp proposals are per-(message, group) facts learned over the
  // wire — meaningful from any donor; most-advanced wins.
  for (const auto& [id, ps] : s->tsProposals)
    for (const auto& [g, ts] : ps)
      tsProposals_[id][g] = std::max(tsProposals_[id][g], ts);
  if (snap.donorGroup == gid()) {
    // Group-scoped pieces: the group clock, the proposal clock, the
    // pending stages/timestamps and the buffered decisions all describe
    // the DONOR's group's ordering progress — only a groupmate's apply.
    // Clocks advance to the donor's; on a pending id both sides know, the
    // donor's entry wins (its stage is at least as advanced).
    K_ = std::max(K_, s->K);
    propK_ = std::max(propK_, s->propK);
    for (const auto& [id, p] : s->pending) pending_[id] = p;
    for (const auto& [k, es] : s->decisionBuffer)
      decisionBuffer_.emplace(k, es);
  }
  for (MsgId id : s->adelivered) {
    pending_.erase(id);
    tsProposals_.erase(id);
  }
  // Decisions for instances the donor already executed can never drain
  // (the clock is past them) — drop them instead of leaking.
  decisionBuffer_.erase(decisionBuffer_.begin(),
                        decisionBuffer_.lower_bound(K_));
}

void A1Node::resumeAfterInstall() {
  drainDecisions();
  std::vector<MsgId> s1;
  for (const auto& [id, p] : pending_)
    if (p.stage == Stage::s1) s1.push_back(id);
  for (MsgId id : s1) checkStage1(id);  // remote proposals may be in already
  adeliveryTest();
  tryPropose();
}

}  // namespace wanmc::amcast
