// Algorithm A1 — genuine atomic multicast for WANs (paper §4, Algorithm A1).
//
// Every message m moves through four stages:
//   s0  each destination group runs consensus to fix its timestamp proposal
//       (the proposal is the consensus instance number k = the group clock);
//   s1  groups exchange proposals via (TS, m) messages; the final timestamp
//       is the maximum proposal;
//   s2  groups whose proposal was below the maximum run a second consensus
//       to push their clock past the final timestamp;
//   s3  m is A-Delivered once its (ts, id) is minimal among all pending
//       messages (ADeliveryTest, paper lines 3-7).
//
// A1's contribution over Fritzke et al. [5] is stage skipping:
//   * a message addressed to a single group jumps s0 -> s3 (one consensus);
//   * a group whose proposal equals the final timestamp skips s2 (its clock
//     is already past the final timestamp after line 31).
// Both optimizations are config flags here so that the [5] baseline is the
// same code with the flags off — which makes the ablation bench an
// apples-to-apples comparison of consensus instances and intra-group
// traffic, the exact savings §4.1/§6 claim.
//
// Latency degree: 2 for messages multicast to >= 2 groups (Theorem 4.1,
// optimal by Prop. 3.1/3.2); 0/1 for single-group messages depending on
// whether the sender belongs to the destination group.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/consensus_value.hpp"
#include "core/stack_node.hpp"

namespace wanmc::amcast {

// (TS, m) message of line 24: the sending group's timestamp proposal. It
// also propagates m itself (paper footnote 4): a process that never
// R-Delivered m learns it from the first (TS, m) it receives.
struct TsPayload final : Payload {
  AppMsgPtr msg;
  uint64_t ts = 0;
  GroupId fromGroup = kNoGroup;

  TsPayload(AppMsgPtr m, uint64_t t, GroupId g)
      : msg(std::move(m)), ts(t), fromGroup(g) {}
  [[nodiscard]] Layer layer() const override { return Layer::kProtocol; }
  [[nodiscard]] std::string debugString() const override {
    return "TS(m" + std::to_string(msg->id) + "," + std::to_string(ts) +
           ",g" + std::to_string(fromGroup) + ")";
  }
};

struct A1Options {
  // A1's optimizations; both false reproduces Fritzke et al. [5].
  bool skipSingleGroup = true;   // single-group messages jump s0 -> s3
  bool skipMaxProposal = true;   // skip s2 when own proposal == max (line 35)
};

class A1Node final : public core::XcastNode {
 public:
  A1Node(exec::Context& rt, ProcessId pid, const core::StackConfig& cfg,
         A1Options opts = {});

  // A-MCast m to the groups in m->dest (Task 1, lines 8-9).
  void xcast(const AppMsgPtr& m) override;

  // Introspection for tests / benches.
  [[nodiscard]] uint64_t clock() const { return K_; }
  [[nodiscard]] uint64_t consensusInstancesDecided() const {
    return instancesDecided_;
  }
  [[nodiscard]] size_t pendingCount() const { return pending_.size(); }

 protected:
  void onProtocolMessage(ProcessId from, const PayloadPtr& p) override;

  // Bootstrap snapshot surface (core/stack_node.hpp): the full A1 ordering
  // state — group clock, pending table, stamp proposals, decision buffer.
  [[nodiscard]] std::shared_ptr<bootstrap::ProtocolState>
  snapshotProtocolState() const override;
  void installProtocolState(const bootstrap::Snapshot& s) override;
  void resumeAfterInstall() override;

 private:
  struct Pend {
    AppMsgPtr msg;
    Stage stage = Stage::s0;
    uint64_t ts = 0;
  };

  // Donor and rejoiner are the same class, so the blob round-trips as a
  // private nested type; nobody else can see inside it.
  struct BootState final : bootstrap::ProtocolState {
    uint64_t K = 1;
    uint64_t propK = 1;
    std::map<MsgId, Pend> pending;
    std::set<MsgId> adelivered;
    std::map<MsgId, std::map<GroupId, uint64_t>> tsProposals;
    std::map<consensus::Instance, A1EntrySet> decisionBuffer;
    [[nodiscard]] uint64_t approxBytes() const override;
  };

  // Lines 10-13: first sight of m via R-Deliver or (TS, m).
  void noteMessage(const AppMsgPtr& m);
  // Line 14-17: propose all pending s0/s2 messages to the next instance.
  void tryPropose();
  // Lines 18-32: handle the decision of instance k.
  void onDecided(consensus::Instance k, const ConsensusValue& v);
  void drainDecisions();
  void handleDecided(consensus::Instance k, const A1EntrySet& entries);
  // Lines 33-40: all remote proposals for a stage-s1 message are in.
  void checkStage1(MsgId id);
  // Lines 3-7.
  void adeliveryTest();

  A1Options opts_;
  consensus::ConsensusService* groupConsensus_ = nullptr;

  uint64_t K_ = 1;      // this group's clock == next consensus instance
  uint64_t propK_ = 1;  // lowest instance we may still propose to
  std::map<MsgId, Pend> pending_;
  std::set<MsgId> adelivered_;
  // Remote (and own) timestamp proposals per message, per group.
  std::map<MsgId, std::map<GroupId, uint64_t>> tsProposals_;
  // Decisions that arrived before our clock reached their instance.
  std::map<consensus::Instance, A1EntrySet> decisionBuffer_;
  uint64_t instancesDecided_ = 0;
};

}  // namespace wanmc::amcast
