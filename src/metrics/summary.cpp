#include "metrics/summary.hpp"

#include <algorithm>
#include <cstdio>

namespace wanmc::metrics {

namespace {

double secondsOf(SimTime us) { return static_cast<double>(us) / 1e6; }

}  // namespace

double Summary::offeredPerSec() const {
  // Inverse of the mean inter-arrival gap over the casting window; a
  // single cast has no measurable rate.
  if (casts < 2 || lastCastAt <= firstCastAt) return 0;
  return static_cast<double>(casts - 1) /
         secondsOf(lastCastAt - firstCastAt);
}

double Summary::goodputPerSec() const {
  if (completed == 0 || lastDeliveryAt <= firstCastAt) return 0;
  return static_cast<double>(completed) /
         secondsOf(lastDeliveryAt - firstCastAt);
}

void Summary::merge(const Summary& other) {
  processes = std::max(processes, other.processes);
  groups = std::max(groups, other.groups);
  casts += other.casts;
  deliveries += other.deliveries;
  completed += other.completed;
  fullyDelivered += other.fullyDelivered;

  auto minTime = [](SimTime a, SimTime b) {
    if (a < 0) return b;
    if (b < 0) return a;
    return std::min(a, b);
  };
  firstCastAt = minTime(firstCastAt, other.firstCastAt);
  lastCastAt = std::max(lastCastAt, other.lastCastAt);
  lastDeliveryAt = std::max(lastDeliveryAt, other.lastDeliveryAt);
  lastAlgoSendAt = std::max(lastAlgoSendAt, other.lastAlgoSendAt);
  endTime = std::max(endTime, other.endTime);

  msgLatency.merge(other.msgLatency);
  deliveryLatency.merge(other.deliveryLatency);
  if (perGroup.size() < other.perGroup.size())
    perGroup.resize(other.perGroup.size());
  for (size_t g = 0; g < other.perGroup.size(); ++g)
    perGroup[g].merge(other.perGroup[g]);
  if (perDestSize.size() < other.perDestSize.size())
    perDestSize.resize(other.perDestSize.size());
  for (size_t k = 0; k < other.perDestSize.size(); ++k)
    perDestSize[k].merge(other.perDestSize[k]);
  for (const auto& [deg, n] : other.latencyDegrees) latencyDegrees[deg] += n;
  for (int l = 0; l < kNumLayers; ++l) {
    traffic.perLayer[l].intra += other.traffic.perLayer[l].intra;
    traffic.perLayer[l].inter += other.traffic.perLayer[l].inter;
  }
  faults.crashes += other.faults.crashes;
  faults.recoveries += other.faults.recoveries;
  faults.partitionsCut += other.faults.partitionsCut;
  faults.partitionsHealed += other.faults.partitionsHealed;
  faults.linkDrops += other.faults.linkDrops;
  faults.lossDrops += other.faults.lossDrops;
  channels.dataSent += other.channels.dataSent;
  channels.retransmits += other.channels.retransmits;
  channels.acksSent += other.channels.acksSent;
  channels.nacksSent += other.channels.nacksSent;
  channels.duplicatesDropped += other.channels.duplicatesDropped;
  channels.staleDropped += other.channels.staleDropped;
  channels.holdbackOverflow += other.channels.holdbackOverflow;
  channels.delivered += other.channels.delivered;
  bootstrap.snapshotsRequested += other.bootstrap.snapshotsRequested;
  bootstrap.snapshotsServed += other.bootstrap.snapshotsServed;
  bootstrap.snapshotsInstalled += other.bootstrap.snapshotsInstalled;
  bootstrap.snapshotBytes += other.bootstrap.snapshotBytes;
  bootstrap.suffixMessages += other.bootstrap.suffixMessages;
  bootstrap.retries += other.bootstrap.retries;
  bootstrap.denies += other.bootstrap.denies;
  bootstrap.staleDropped += other.bootstrap.staleDropped;
}

Summary summarizeTrace(const RunTrace& trace, const Topology& topo,
                       const TrafficStats& traffic, SimTime lastAlgoSend,
                       SimTime endTime) {
  Summary out;
  out.processes = topo.numProcesses();
  out.groups = topo.numGroups();
  out.traffic = traffic;
  out.faults = faultStatsOf(trace);
  out.lastAlgoSendAt = lastAlgoSend;
  out.endTime = endTime;
  out.perGroup.resize(static_cast<size_t>(topo.numGroups()));
  out.perDestSize.resize(static_cast<size_t>(topo.numGroups()) + 1);

  // Rebuild exactly the per-message state the streaming Recorder keeps;
  // the two constructions are asserted field-identical in tests.
  struct MsgStat {
    SimTime castAt = -1;
    SimTime lastDeliveryAt = -1;
    uint64_t castLamport = 0;
    int64_t maxLamportDelta = -1;
    uint32_t deliveries = 0;
    uint32_t addressees = 0;
    uint32_t destGroups = 0;
  };
  std::map<MsgId, MsgStat> stats;

  out.casts = trace.casts.size();
  for (const CastEvent& c : trace.casts) {
    if (out.firstCastAt < 0) out.firstCastAt = c.when;
    out.lastCastAt = std::max(out.lastCastAt, c.when);
    MsgStat& s = stats[c.msg];
    s.castAt = c.when;
    s.castLamport = c.lamport;
    s.destGroups = static_cast<uint32_t>(c.dest.size());
    s.addressees = 0;
    for (GroupId g : c.dest.groups())
      s.addressees += static_cast<uint32_t>(topo.groupSize(g));
  }

  out.deliveries = trace.deliveries.size();
  for (const DeliveryEvent& d : trace.deliveries) {
    out.lastDeliveryAt = std::max(out.lastDeliveryAt, d.when);
    auto it = stats.find(d.msg);
    if (it == stats.end() || it->second.castAt < 0) continue;
    MsgStat& s = it->second;
    const SimTime latency = d.when - s.castAt;
    out.deliveryLatency.add(latency);
    out.perGroup[static_cast<size_t>(topo.group(d.process))].add(latency);
    out.perDestSize[s.destGroups].add(latency);
    s.lastDeliveryAt = d.when;
    ++s.deliveries;
    const int64_t delta = static_cast<int64_t>(d.lamport) -
                          static_cast<int64_t>(s.castLamport);
    if (delta > s.maxLamportDelta) s.maxLamportDelta = delta;
  }

  for (const auto& [id, s] : stats) {
    if (s.castAt < 0 || s.deliveries == 0) continue;
    ++out.completed;
    if (s.deliveries >= s.addressees) ++out.fullyDelivered;
    out.msgLatency.add(s.lastDeliveryAt - s.castAt);
    ++out.latencyDegrees[s.maxLamportDelta];
  }
  return out;
}

// ---------------------------------------------------------------------------
// JSON.
// ---------------------------------------------------------------------------

namespace {

std::string fmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void writeStats(const LatencyStats& s, std::ostream& os) {
  os << "{\"count\": " << s.count << ", \"p50\": " << s.p50
     << ", \"p90\": " << s.p90 << ", \"p99\": " << s.p99
     << ", \"max\": " << s.max << ", \"mean\": " << fmtDouble(s.mean) << "}";
}

}  // namespace

void writeJson(const Summary& s, std::ostream& os, const std::string& indent) {
  const std::string in2 = indent + "  ";
  os << "{\n";
  os << in2 << "\"casts\": " << s.casts << ",\n";
  os << in2 << "\"deliveries\": " << s.deliveries << ",\n";
  os << in2 << "\"completed\": " << s.completed << ",\n";
  os << in2 << "\"fullyDelivered\": " << s.fullyDelivered << ",\n";
  os << in2 << "\"offeredPerSec\": " << fmtDouble(s.offeredPerSec()) << ",\n";
  os << in2 << "\"goodputPerSec\": " << fmtDouble(s.goodputPerSec()) << ",\n";
  os << in2 << "\"msgLatencyUs\": ";
  writeStats(s.msgStats(), os);
  os << ",\n";
  os << in2 << "\"deliveryLatencyUs\": ";
  writeStats(s.deliveryStats(), os);
  os << ",\n";
  os << in2 << "\"latencyDegreeHistogram\": {";
  bool first = true;
  for (const auto& [deg, n] : s.latencyDegrees) {
    if (!first) os << ", ";
    os << "\"" << deg << "\": " << n;
    first = false;
  }
  os << "},\n";
  os << in2 << "\"perGroupLatencyUs\": {";
  first = true;
  for (size_t g = 0; g < s.perGroup.size(); ++g) {
    if (s.perGroup[g].count() == 0) continue;
    if (!first) os << ", ";
    os << "\"" << g << "\": ";
    writeStats(LatencyStats::of(s.perGroup[g]), os);
    first = false;
  }
  os << "},\n";
  os << in2 << "\"perDestSizeLatencyUs\": {";
  first = true;
  for (size_t k = 0; k < s.perDestSize.size(); ++k) {
    if (s.perDestSize[k].count() == 0) continue;
    if (!first) os << ", ";
    os << "\"" << k << "\": ";
    writeStats(LatencyStats::of(s.perDestSize[k]), os);
    first = false;
  }
  os << "},\n";
  os << in2 << "\"faults\": {\"crashes\": " << s.faults.crashes
     << ", \"recoveries\": " << s.faults.recoveries
     << ", \"partitionsCut\": " << s.faults.partitionsCut
     << ", \"partitionsHealed\": " << s.faults.partitionsHealed
     << ", \"linkDrops\": " << s.faults.linkDrops
     << ", \"lossDrops\": " << s.faults.lossDrops << "},\n";
  os << in2 << "\"channels\": {\"dataSent\": " << s.channels.dataSent
     << ", \"retransmits\": " << s.channels.retransmits
     << ", \"acksSent\": " << s.channels.acksSent
     << ", \"nacksSent\": " << s.channels.nacksSent
     << ", \"duplicatesDropped\": " << s.channels.duplicatesDropped
     << ", \"staleDropped\": " << s.channels.staleDropped
     << ", \"holdbackOverflow\": " << s.channels.holdbackOverflow
     << ", \"delivered\": " << s.channels.delivered << "},\n";
  os << in2 << "\"bootstrap\": {\"snapshotsRequested\": "
     << s.bootstrap.snapshotsRequested
     << ", \"snapshotsServed\": " << s.bootstrap.snapshotsServed
     << ", \"snapshotsInstalled\": " << s.bootstrap.snapshotsInstalled
     << ", \"snapshotBytes\": " << s.bootstrap.snapshotBytes
     << ", \"suffixMessages\": " << s.bootstrap.suffixMessages
     << ", \"retries\": " << s.bootstrap.retries
     << ", \"denies\": " << s.bootstrap.denies
     << ", \"staleDropped\": " << s.bootstrap.staleDropped << "},\n";
  os << in2 << "\"quiescence\": {\"lastCastUs\": " << s.lastCastAt
     << ", \"lastAlgoSendUs\": " << s.lastAlgoSendAt << ", \"settleUs\": "
     << (s.lastAlgoSendAt >= 0 && s.lastCastAt >= 0
             ? s.lastAlgoSendAt - s.lastCastAt
             : -1)
     << "},\n";
  os << in2 << "\"endTimeUs\": " << s.endTime << "\n";
  os << indent << "}";
}

}  // namespace wanmc::metrics
