// metrics::Sweep — closed-loop latency-vs-throughput sweeps.
//
// The paper's central claim is about latency, and its Figure-1 evaluation
// regime is the classic closed-loop curve: drive the protocol with a
// ladder of offered loads, and plot delivery latency percentiles against
// the throughput actually achieved. runLatencyThroughputSweep() does
// exactly that: one closed-loop workload per load point (arrival interval
// ladder with an in-flight cap, so overload saturates instead of
// diverging), swept across seeds on the ScenarioRunner thread pool, with
// the per-seed metrics::Summary histograms pooled EXACTLY (bucket-count
// sums) — the aggregate percentiles are deterministic and independent of
// the job count.
#pragma once

#include <ostream>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/summary.hpp"

namespace wanmc::metrics {

struct SweepOptions {
  // Protocol / topology / latency template. seed and workload fields are
  // overridden per point and per seed.
  core::RunConfig base{};

  // The offered-load ladder: one closed-loop run per arrival interval,
  // in the given order (descending interval = rising load). Empty picks
  // defaultLoadLadder(7, 256ms, 4ms).
  std::vector<SimTime> intervals{};

  // Messages per run. The default is sized so the steady-state ordering
  // backlog, not the startup transient, dominates the percentiles even at
  // the fastest ladder point (a 4ms spacing needs a multi-second window
  // to outweigh its first empty-system round trips).
  int casts = 600;
  // Closed-loop in-flight cap. 0 (the default) is the uncapped loop: the
  // arrival spacing is honored regardless of delivery progress, so rising
  // load monotonically deepens the ordering backlog — the regime that
  // produces the clean Figure-1-style curve. A positive cap bounds the
  // number of undelivered casts (K closed-loop clients with think time =
  // interval); note that at extreme load a capped loop admits arrivals in
  // consensus-round batches, which AMORTIZES ordering work and can bend
  // the tail latencies back DOWN — a real effect, not a measurement bug.
  int inFlightCap = 0;
  int destGroups = 2;     // groups per multicast (broadcasts ignore this)
  int seedsPerPoint = 3;  // seeds pooled into each point
  uint64_t firstSeed = 1;
  int jobs = 0;           // sweepSeeds thread pool (0: WANMC_JOBS / cores)
  SimTime runUntil = 3600 * kSec;
};

// One row of the latency-throughput curve: the pooled measurement of all
// seeds at one offered-load point.
struct SweepPoint {
  SimTime interval = 0;      // the ladder knob (arrival spacing, us)
  double offeredPerSec = 0;  // measured casts/sec (pooled over seeds)
  double goodputPerSec = 0;  // measured completed msgs/sec
  LatencyStats latency;      // message-level percentiles, pooled
  uint64_t casts = 0;
  uint64_t deliveries = 0;
  int seeds = 0;
};

// Geometric interval ladder from `slowest` down to `fastest`, `points`
// entries, deterministic rounding.
[[nodiscard]] std::vector<SimTime> defaultLoadLadder(int points,
                                                     SimTime slowest,
                                                     SimTime fastest);

// Runs the whole ladder. Points come back in ladder order; each is the
// exact pool of seedsPerPoint seeds. Throws std::invalid_argument on a
// config the underlying Experiment would reject.
[[nodiscard]] std::vector<SweepPoint> runLatencyThroughputSweep(
    const SweepOptions& opt);

// CSV: interval_us,offered_per_sec,goodput_per_sec,p50_us,p90_us,p99_us,
// max_us,mean_us,casts,deliveries,seeds — one row per point, ladder order.
void writeSweepCsv(const std::vector<SweepPoint>& points, std::ostream& os);

// One rung of the batch-size ladder: the full load curve measured at one
// batching configuration (PR 6). batchMaxSize 0 is the unbatched control
// rung — its window is forced to 0 so it runs the byte-identical
// pre-batching path.
struct BatchLadderEntry {
  int batchMaxSize = 0;
  SimTime batchWindow = 0;
  std::vector<SweepPoint> curve;
  double peakGoodputPerSec = 0;  // max goodput across the curve
};

// Re-runs the load ladder once per batch size, same seeds and workload
// per rung, so the rungs differ ONLY in the batching knobs. `batchWindow`
// applies to every non-zero rung.
[[nodiscard]] std::vector<BatchLadderEntry> runBatchLadderSweep(
    const SweepOptions& opt, const std::vector<int>& batchSizes,
    SimTime batchWindow);

// The sweep CSV columns prefixed with batch_max,batch_window_us — one row
// per (rung, load point), rung-major.
void writeBatchLadderCsv(const std::vector<BatchLadderEntry>& rungs,
                         std::ostream& os);

}  // namespace wanmc::metrics
