#include "metrics/sweep.hpp"

#include <algorithm>
#include <cmath>

#include "testing/scenario.hpp"

namespace wanmc::metrics {

std::vector<SimTime> defaultLoadLadder(int points, SimTime slowest,
                                       SimTime fastest) {
  std::vector<SimTime> out;
  if (points <= 0) return out;
  if (points == 1 || slowest <= fastest) {
    out.assign(static_cast<size_t>(points), slowest);
    return out;
  }
  const double ratio = std::pow(
      static_cast<double>(fastest) / static_cast<double>(slowest),
      1.0 / static_cast<double>(points - 1));
  double v = static_cast<double>(slowest);
  for (int i = 0; i < points; ++i) {
    out.push_back(std::max<SimTime>(static_cast<SimTime>(std::llround(v)), 1));
    v *= ratio;
  }
  out.back() = std::max<SimTime>(fastest, 1);
  return out;
}

std::vector<SweepPoint> runLatencyThroughputSweep(const SweepOptions& opt) {
  std::vector<SimTime> ladder = opt.intervals;
  if (ladder.empty()) ladder = defaultLoadLadder(7, 256 * kMs, 4 * kMs);

  std::vector<SweepPoint> out;
  out.reserve(ladder.size());
  for (const SimTime interval : ladder) {
    testing::Scenario s;
    s.name = "sweep/interval" + std::to_string(interval);
    s.config = opt.base;
    workload::Spec spec =
        workload::Spec::closedLoop(opt.casts, interval, opt.destGroups);
    spec.inFlightCap = opt.inFlightCap;
    s.workload = spec;
    // DetMerge00's heartbeats never quiesce: bound its runs near the end
    // of the arrival schedule instead of simulating the full horizon.
    s.runUntil = opt.base.protocol == core::ProtocolKind::kDetMerge00
                     ? spec.nominalEnd() + 5 * kSec
                     : opt.runUntil;
    // The sweep measures; it does not judge. Safety violations would
    // surface through the scenario/test tiers — here a violating seed
    // still contributes its latencies.
    s.expect = testing::PropertyExpectations{};
    s.expect.checkLiveness = false;

    const auto results = testing::ScenarioRunner(s).sweepSeeds(
        opt.firstSeed, opt.seedsPerPoint, opt.jobs);

    // Histograms and counters pool exactly (bucket sums). Rates do NOT:
    // each seed is its own simulated timeline starting at t=0, so the
    // merged cast window overlays the seeds instead of concatenating
    // them — the point's rate is the mean of the per-seed rates.
    Summary pooled;
    double offered = 0;
    double goodput = 0;
    for (const auto& r : results) {
      pooled.merge(r.run.metrics);
      offered += r.run.metrics.offeredPerSec();
      goodput += r.run.metrics.goodputPerSec();
    }
    const double n = results.empty() ? 1 : static_cast<double>(results.size());

    SweepPoint p;
    p.interval = interval;
    p.offeredPerSec = offered / n;
    p.goodputPerSec = goodput / n;
    p.latency = pooled.msgStats();
    p.casts = pooled.casts;
    p.deliveries = pooled.deliveries;
    p.seeds = static_cast<int>(results.size());
    out.push_back(p);
  }
  return out;
}

std::vector<BatchLadderEntry> runBatchLadderSweep(
    const SweepOptions& opt, const std::vector<int>& batchSizes,
    SimTime batchWindow) {
  std::vector<BatchLadderEntry> out;
  out.reserve(batchSizes.size());
  for (const int size : batchSizes) {
    SweepOptions rung = opt;
    rung.base.stack.batchMaxSize = size;
    rung.base.stack.batchWindow = size == 0 ? 0 : batchWindow;

    BatchLadderEntry e;
    e.batchMaxSize = size;
    e.batchWindow = rung.base.stack.batchWindow;
    e.curve = runLatencyThroughputSweep(rung);
    for (const SweepPoint& p : e.curve)
      e.peakGoodputPerSec = std::max(e.peakGoodputPerSec, p.goodputPerSec);
    out.push_back(std::move(e));
  }
  return out;
}

void writeSweepCsv(const std::vector<SweepPoint>& points, std::ostream& os) {
  os << "interval_us,offered_per_sec,goodput_per_sec,p50_us,p90_us,p99_us,"
        "max_us,mean_us,casts,deliveries,seeds\n";
  for (const SweepPoint& p : points) {
    os << p.interval << ',' << p.offeredPerSec << ',' << p.goodputPerSec
       << ',' << p.latency.p50 << ',' << p.latency.p90 << ','
       << p.latency.p99 << ',' << p.latency.max << ',' << p.latency.mean
       << ',' << p.casts << ',' << p.deliveries << ',' << p.seeds << '\n';
  }
}

void writeBatchLadderCsv(const std::vector<BatchLadderEntry>& rungs,
                         std::ostream& os) {
  os << "batch_max,batch_window_us,interval_us,offered_per_sec,"
        "goodput_per_sec,p50_us,p90_us,p99_us,max_us,mean_us,casts,"
        "deliveries,seeds\n";
  for (const BatchLadderEntry& e : rungs) {
    for (const SweepPoint& p : e.curve) {
      os << e.batchMaxSize << ',' << e.batchWindow << ',' << p.interval << ','
         << p.offeredPerSec << ',' << p.goodputPerSec << ',' << p.latency.p50
         << ',' << p.latency.p90 << ',' << p.latency.p99 << ','
         << p.latency.max << ',' << p.latency.mean << ',' << p.casts << ','
         << p.deliveries << ',' << p.seeds << '\n';
    }
  }
}

}  // namespace wanmc::metrics
