#include "metrics/recorder.hpp"

#include <algorithm>

#include "sim/runtime.hpp"

namespace wanmc::metrics {

namespace {

// Addressee count of a destination set without materializing the group
// list (GroupSet::groups() allocates; this is the cast hot path).
uint32_t addresseeCount(const Topology& topo, const GroupSet& dest) {
  uint32_t n = 0;
  for (uint64_t b = dest.bits(); b != 0; b &= b - 1)
    n += static_cast<uint32_t>(
        topo.groupSize(static_cast<GroupId>(__builtin_ctzll(b))));
  return n;
}

}  // namespace

Recorder::Recorder(sim::Runtime& rt) : rt_(rt) {
  const Topology& topo = rt_.topology();
  perGroup_.resize(static_cast<size_t>(topo.numGroups()));
  perDestSize_.resize(static_cast<size_t>(topo.numGroups()) + 1);
  rt_.addObserver(this, sim::kObserveCasts | sim::kObserveDeliveries |
                            sim::kObserveSends);
}

void Recorder::onCast(const CastEvent& ev) {
  ++casts_;
  if (firstCastAt_ < 0) firstCastAt_ = ev.when;
  lastCastAt_ = ev.when;

  const size_t idx = static_cast<size_t>(ev.msg);
  if (idx >= stats_.size()) {
    size_t grow = stats_.size() < 16 ? 16 : stats_.size() * 2;
    stats_.resize(std::max(grow, idx + 1));
  }
  MsgStat& s = stats_[idx];
  s.castAt = ev.when;
  s.castLamport = ev.lamport;
  s.addressees = addresseeCount(rt_.topology(), ev.dest);
  s.destGroups = static_cast<uint32_t>(ev.dest.size());
}

void Recorder::onDeliver(const DeliveryEvent& ev) {
  ++deliveries_;
  lastDeliveryAt_ = ev.when;

  MsgStat* s = statOf(ev.msg);
  if (s == nullptr || s->castAt < 0) return;  // never cast: no latency
  const SimTime latency = ev.when - s->castAt;
  deliveryLatency_.add(latency);
  perGroup_[static_cast<size_t>(rt_.topology().group(ev.process))].add(
      latency);
  perDestSize_[s->destGroups].add(latency);

  s->lastDeliveryAt = ev.when;
  ++s->deliveries;
  const int64_t delta = static_cast<int64_t>(ev.lamport) -
                        static_cast<int64_t>(s->castLamport);
  if (delta > s->maxLamportDelta) s->maxLamportDelta = delta;
}

void Recorder::onSend(const WireEvent& ev) {
  auto& counter = traffic_.at(ev.layer);
  if (ev.interGroup) {
    ++counter.inter;
  } else {
    ++counter.intra;
  }
  // FD heartbeats, channel ACK/NACK control packets and bootstrap
  // handshake traffic are substrate, not algorithm traffic: none of them
  // resets the quiescence clock (mirrors Runtime's lastAlgorithmicSend
  // accounting, incl. channelSend).
  if (ev.layer != Layer::kFailureDetector && ev.layer != Layer::kChannel &&
      ev.layer != Layer::kBootstrap)
    lastAlgoSendAt_ = ev.sentAt;
}

Summary Recorder::summary(SimTime endTime) const {
  Summary out;
  const Topology& topo = rt_.topology();
  out.processes = topo.numProcesses();
  out.groups = topo.numGroups();
  out.casts = casts_;
  out.deliveries = deliveries_;
  out.firstCastAt = firstCastAt_;
  out.lastCastAt = lastCastAt_;
  out.lastDeliveryAt = lastDeliveryAt_;
  out.lastAlgoSendAt = lastAlgoSendAt_;
  out.endTime = endTime;
  out.deliveryLatency = deliveryLatency_;
  out.perGroup = perGroup_;
  out.perDestSize = perDestSize_;
  out.traffic = traffic_;

  // Message-level fold: O(#messages), independent of trace length.
  for (const MsgStat& s : stats_) {
    if (s.castAt < 0 || s.deliveries == 0) continue;
    ++out.completed;
    if (s.deliveries >= s.addressees) ++out.fullyDelivered;
    out.msgLatency.add(s.lastDeliveryAt - s.castAt);
    ++out.latencyDegrees[s.maxLamportDelta];
  }
  return out;
}

}  // namespace wanmc::metrics
