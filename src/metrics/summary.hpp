// metrics::Summary — the result of the streaming measurement plane.
//
// A Summary is a value type: everything the export layer, the sweep driver,
// and the regression tests need from a finished run, with no pointer back
// into the trace. It is built online by metrics::Recorder (one observer
// hooked into the runtime, src/metrics/recorder.hpp) or offline by
// summarizeTrace() (the O(trace) fallback used when metrics are disabled,
// and the cross-check oracle in tests: both constructions are field-for-
// field identical on the same run).
//
// Percentile semantics: every histogram bins LATENCIES (microseconds of
// simulated wall-clock between A-XCast(m) and an A-Deliver(m)) into the
// log-bucketed LogHistogram; reported percentiles are bucket midpoints
// (<= 12.5% relative error), clamped to the exact max. Message-level
// latency is the max over that message's deliveries (time to the LAST
// delivery); delivery-level latency counts each A-Deliver separately.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "common/trace.hpp"
#include "metrics/histogram.hpp"
#include "sim/topology.hpp"

namespace wanmc::metrics {

// Compact percentile row derived from a LogHistogram.
struct LatencyStats {
  uint64_t count = 0;
  SimTime p50 = 0;
  SimTime p90 = 0;
  SimTime p99 = 0;
  SimTime max = 0;
  double mean = 0;

  static LatencyStats of(const LogHistogram& h) {
    return LatencyStats{h.count(), h.percentile(0.50), h.percentile(0.90),
                        h.percentile(0.99), h.max(), h.mean()};
  }
  friend bool operator==(const LatencyStats&, const LatencyStats&) = default;
};

struct Summary {
  // ---- counters ----------------------------------------------------------
  int processes = 0;
  int groups = 0;
  uint64_t casts = 0;            // offered messages (A-XCast events)
  uint64_t deliveries = 0;       // A-Deliver events
  uint64_t completed = 0;        // messages delivered at least once
  uint64_t fullyDelivered = 0;   // messages with one delivery per process
                                 // of their destination groups

  // ---- quiescence / horizon ---------------------------------------------
  SimTime firstCastAt = -1;
  SimTime lastCastAt = -1;
  SimTime lastDeliveryAt = -1;
  SimTime lastAlgoSendAt = -1;  // last non-FD wire send (quiescence)
  SimTime endTime = 0;          // when the run stopped

  // ---- latency histograms -------------------------------------------------
  LogHistogram msgLatency;       // per message: cast -> LAST delivery
  LogHistogram deliveryLatency;  // per delivery: cast -> this delivery

  // Delivery-level breakdowns. Indexed densely: perGroup[g] holds the
  // latencies of deliveries at processes of group g; perDestSize[k] holds
  // deliveries of messages addressed to exactly k groups (slot 0 unused).
  std::vector<LogHistogram> perGroup;
  std::vector<LogHistogram> perDestSize;

  // Message-level latency-degree tally (modified-Lamport Delta(m): max
  // deliver stamp minus cast stamp), the paper's §2.3 metric. Exact.
  std::map<int64_t, uint64_t> latencyDegrees;

  // Per-layer wire counters (identical accounting to Runtime's
  // TrafficStats — maintained from the observer plane, no recordWire).
  TrafficStats traffic;

  // Fault-plane counters (fault plane v2): crashes, recoveries, partition
  // cut/heal transitions, and wire copies dropped on cut links. Derived
  // from the trace's fault events in BOTH constructions (faultStatsOf), so
  // the streaming/offline equivalence holds field-for-field.
  FaultStats faults;

  // Reliable-channel substrate counters (src/channel/): retransmits, ACKs,
  // duplicate/stale suppression, holdback overflow. Maintained by the
  // channel plane and injected identically into both constructions at
  // Experiment::harvest (like lastAlgoSendAt, they are not reconstructible
  // from the trace). All-zero when channels are off.
  ChannelStats channels;

  // Bootstrap state-transfer counters (src/bootstrap/): snapshots served,
  // snapshot bytes, suffix replays, retries. Maintained by the bootstrap
  // plane and injected at harvest like the channel block. All-zero when
  // the plane is unarmed.
  BootstrapStats bootstrap;

  // ---- derived rates ------------------------------------------------------
  // Offered load: casts per simulated second over the casting window.
  [[nodiscard]] double offeredPerSec() const;
  // Goodput: completed messages per simulated second, first cast to last
  // delivery.
  [[nodiscard]] double goodputPerSec() const;

  [[nodiscard]] LatencyStats msgStats() const {
    return LatencyStats::of(msgLatency);
  }
  [[nodiscard]] LatencyStats deliveryStats() const {
    return LatencyStats::of(deliveryLatency);
  }

  // Exact pooling of two runs' measurements (histograms sum bucket-wise;
  // windows take min/max). Used by the sweep driver to aggregate seeds.
  void merge(const Summary& other);

  friend bool operator==(const Summary&, const Summary&) = default;
};

// O(trace) construction of the same Summary the streaming Recorder builds:
// the fallback when RunConfig::metrics is off, and the equivalence oracle
// in tests. `lastAlgoSend` and `traffic` come from the runtime (they are
// not reconstructible from an unrecorded wire).
[[nodiscard]] Summary summarizeTrace(const RunTrace& trace,
                                     const Topology& topo,
                                     const TrafficStats& traffic,
                                     SimTime lastAlgoSend, SimTime endTime);

// JSON rendering of a summary (a sub-object of core::writeSummaryJson, but
// usable standalone). `indent` prefixes every line.
void writeJson(const Summary& s, std::ostream& os,
               const std::string& indent = "");

}  // namespace wanmc::metrics
