// Log-bucketed latency histogram: the streaming metrics plane's workhorse.
//
// Values are binned HDR-style into log2 major buckets subdivided linearly
// (kSubBits sub-buckets per octave, ~100/2^kSubBits % relative resolution).
// add() is allocation-free and O(1) — a clz, a shift, an increment — so the
// recorder can bin every delivery on the simulator hot path. Percentiles
// are reconstructed from bucket midpoints (upper-bounded by the exact
// observed max), which makes them deterministic, merge-stable, and
// independent of insertion order: two histograms with the same multiset of
// values are operator== equal, and merge() is exact (bucket-count sums), so
// sweeps can combine per-seed histograms without re-scanning any trace.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace wanmc::metrics {

class LogHistogram {
 public:
  // 8 sub-buckets per octave: <= 12.5% relative bucket width. Values up to
  // 2^40us (~13 simulated days) land in distinct octaves; SimTime latencies
  // beyond that clamp into the top bucket.
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 40;
  static constexpr int kBuckets = (kOctaves + 1) * kSub;

  void add(SimTime v) {
    if (v < 0) v = 0;
    ++counts_[bucketOf(static_cast<uint64_t>(v))];
    ++count_;
    sum_ += static_cast<uint64_t>(v);
    if (v > max_) max_ = v;
  }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] SimTime max() const { return max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  // Value at quantile q in [0, 1]: the midpoint of the bucket holding the
  // ceil(q * count)-th smallest sample, clamped to the exact max. 0 when
  // empty. Deterministic: depends only on the bucket counts.
  [[nodiscard]] SimTime percentile(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count_) + 0.5);
    if (rank == 0) rank = 1;
    if (rank > count_) rank = count_;
    uint64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
      seen += counts_[static_cast<size_t>(b)];
      if (seen >= rank) {
        const SimTime mid = bucketMid(b);
        return mid < max_ ? mid : max_;
      }
    }
    return max_;
  }

  // Exact: bucket-wise sum. merge(a); merge(b) == merge(b); merge(a).
  void merge(const LogHistogram& other) {
    for (int b = 0; b < kBuckets; ++b)
      counts_[static_cast<size_t>(b)] += other.counts_[static_cast<size_t>(b)];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  static int bucketOf(uint64_t v) {
    if (v < kSub) return static_cast<int>(v);  // first octave: exact
    const int octave = 63 - __builtin_clzll(v);
    const int sub =
        static_cast<int>((v >> (octave - kSubBits)) & (kSub - 1));
    const int idx = octave - kSubBits + 1;  // idx 1 starts after exact range
    const int bucket = idx * kSub + sub;
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

  // Midpoint of bucket b's value range (lower bound for the exact octave).
  static SimTime bucketMid(int b) {
    if (b < kSub) return b;
    const int idx = b / kSub;
    const int sub = b % kSub;
    const int octave = idx + kSubBits - 1;
    const uint64_t lo = (uint64_t{1} << octave) +
                        (static_cast<uint64_t>(sub) << (octave - kSubBits));
    const uint64_t width = uint64_t{1} << (octave - kSubBits);
    return static_cast<SimTime>(lo + width / 2);
  }

  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  SimTime max_ = 0;
};

}  // namespace wanmc::metrics
