// metrics::Recorder — streaming, observer-driven run measurement.
//
// One Recorder subscribes to the runtime's cast/delivery/send hooks
// (sim/observer.hpp) and maintains every aggregate of metrics::Summary
// online: latency histograms bin each delivery the instant it happens,
// per-message state lives in a dense msg-id-indexed table (message ids are
// allocated sequentially from 1 by core::Experiment), and traffic/
// quiescence counters ride the send hook. Nothing rescans the RunTrace and
// nothing requires recordWire.
//
// Hot-path discipline: onDeliver/onSend are allocation-free at steady
// state (the per-message table grows geometrically, like a vector), never
// draw from the runtime RNG, and never schedule events — a recorded run is
// byte-identical to an unrecorded one (pinned by the golden fingerprints
// and gated at <5% events/sec overhead by bench_sim_core).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/summary.hpp"
#include "sim/observer.hpp"

namespace wanmc::sim {
class Runtime;
}

namespace wanmc::metrics {

class Recorder final : public sim::RunObserver {
 public:
  // Registers with `rt` for casts, deliveries, and sends. The recorder
  // must stay alive while the runtime dispatches events and while
  // summary() is called (core::Experiment owns both and destroys the
  // runtime first).
  explicit Recorder(sim::Runtime& rt);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void onCast(const CastEvent& ev) override;
  void onDeliver(const DeliveryEvent& ev) override;
  void onSend(const WireEvent& ev) override;

  // Snapshot of everything measured so far. Message-level aggregates
  // (final-latency histogram, latency-degree tally, completion counters)
  // are folded here from the per-message table — O(#messages), not
  // O(trace) — so summary() may be called mid-run and again later.
  [[nodiscard]] Summary summary(SimTime endTime) const;

 private:
  // Per-message running state, indexed by MsgId. POD, 48 bytes.
  struct MsgStat {
    SimTime castAt = -1;          // -1: not cast (or id not seen)
    SimTime lastDeliveryAt = -1;  // -1: no delivery yet
    uint64_t castLamport = 0;
    int64_t maxLamportDelta = -1;
    uint32_t deliveries = 0;
    uint32_t addressees = 0;   // processes in the destination groups
    uint32_t destGroups = 0;   // |dest|, the perDestSize bucket
    uint32_t reserved_ = 0;
  };

  [[nodiscard]] MsgStat* statOf(MsgId id) {
    const size_t idx = static_cast<size_t>(id);
    return idx < stats_.size() ? &stats_[idx] : nullptr;
  }

  sim::Runtime& rt_;
  std::vector<MsgStat> stats_;  // dense by MsgId; slot 0 unused

  // Streaming aggregates (delivery-level histograms fill in place;
  // message-level ones are derived from stats_ in summary()).
  LogHistogram deliveryLatency_;
  std::vector<LogHistogram> perGroup_;
  std::vector<LogHistogram> perDestSize_;
  TrafficStats traffic_;
  uint64_t casts_ = 0;
  uint64_t deliveries_ = 0;
  SimTime firstCastAt_ = -1;
  SimTime lastCastAt_ = -1;
  SimTime lastDeliveryAt_ = -1;
  SimTime lastAlgoSendAt_ = -1;
};

}  // namespace wanmc::metrics
