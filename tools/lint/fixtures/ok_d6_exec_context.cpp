// scope: src/amcast/fixture_node.cpp
// The same node written against the backend-agnostic surface: clean. The
// comment below naming sim::Runtime is fine -- D6 scans code, not prose --
// and an allow() with a reason covers a genuinely backend-bound line.
#include "exec/context.hpp"

namespace wanmc {

// sim::Runtime is one implementation of this interface; never name it here.
class FixtureNode {
 public:
  explicit FixtureNode(exec::Context& rt) : rt_(rt) {}

  void poke() {
    rt_.timer(0, 5, []() {});
  }

  void diag() {
    // wanmc-lint: allow(D6): debug-only probe of the sim oracle's clock
    auto* oracle = dynamic_cast<sim::Runtime*>(&rt_);
    (void)oracle;
  }

 private:
  exec::Context& rt_;
};

}  // namespace wanmc
