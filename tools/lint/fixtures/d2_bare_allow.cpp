// scope: src/fixture/d2_bare_allow.cpp
// A suppression with no reason is itself a finding: the annotation IS the
// review artifact, and an empty one documents nothing.
// expect: D2
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Stats {
  uint64_t total = 0;

  void fold(const std::unordered_map<int, uint64_t>& counts) {
    // wanmc-lint: allow(D2)
    for (const auto& [k, v] : counts) total += v;
  }
};

}  // namespace fixture
