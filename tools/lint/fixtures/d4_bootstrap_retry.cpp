// scope: src/fixture/d4_bootstrap_retry.cpp
// The bootstrap rejoin handshake re-issues its snapshot request when no
// offer lands in time. Arming that retry with a raw Scheduler::at is the
// D4 hazard in its sharpest form: the rejoiner is BY DEFINITION a fresh
// incarnation, and if it crashes again before the retry fires, the
// callback runs into the next incarnation's plane state (or freed
// memory) and re-sends a request for a session that no longer exists.
// The real plane (src/bootstrap/) arms every settle/retry timer through
// Runtime::timer, which drops the event when the incarnation changed.
// expect: D4
namespace fixture {

struct SchedStub {
  template <class F>
  void at(long when, F&& fn);
};

struct Runtime {
  SchedStub& scheduler();
  long now();
};

struct RejoinPlane {
  Runtime& rt;
  int pid;
  unsigned session;

  void sendRequest(unsigned attempt);

  void armRetry(unsigned attempt) {
    rt.scheduler().at(rt.now() + 400, [this, attempt]() {  // D4: unguarded
      sendRequest(attempt + 1);
    });
  }
};

}  // namespace fixture
