// scope: src/fixture/ok_bootstrap_retry.cpp
// The guarded counterpart of d4_bootstrap_retry.cpp: the rejoin retry is
// armed through Runtime::timer, whose TimerGuard captures the arming
// incarnation and drops the fire when the process crashed (or crashed
// and recovered again) in between. This is the idiom the live bootstrap
// plane uses for its settle and retry timers; D4 must stay quiet on it.
namespace fixture {

template <class F>
struct TimerGuard;

struct Runtime {
  // Incarnation-guarded one-shot: the callback only runs if pid is still
  // the same incarnation that armed it.
  template <class F>
  void timer(int pid, long delay, F&& fn);
};

struct RejoinPlane {
  Runtime& rt;
  int pid;
  unsigned session;

  void sendRequest(unsigned attempt);

  void armRetry(unsigned attempt) {
    rt.timer(pid, 400, [this, attempt]() {  // guarded: dropped on re-crash
      sendRequest(attempt + 1);
    });
  }
};

}  // namespace fixture
