// scope: src/fixture/d3_pointer_key.cpp
// Pointer-keyed ordered container feeding delivery decisions: std::map
// over Node* iterates in ADDRESS order, i.e. allocator order -- a
// different malloc layout reorders deliveries.
// expect: D3
#include <map>

namespace fixture {

struct Node {
  int pid;
};

struct DeliveryQueue {
  std::map<Node*, int> waiting;  // D3: address-dependent order

  int next() const {
    return waiting.empty() ? -1 : waiting.begin()->first->pid;
  }
};

}  // namespace fixture
