// scope: src/fixture/d5_hot_alloc.cpp
// Heap allocation inside a WANMC_HOT region: one make_shared per fired
// event turns the 25-30M ev/s scheduler into a malloc benchmark, and
// allocator jitter is the classic source of "fast machine passes, CI
// flakes" perf regressions.
// expect: D5
#include <memory>

#define WANMC_HOT

namespace fixture {

struct Payload {
  int bytes[16];
};

struct FirePath {
  std::shared_ptr<Payload> last;

  WANMC_HOT void fireOne() {
    last = std::make_shared<Payload>();  // D5: alloc on the fire path
  }

  WANMC_HOT void fireOther() {
    auto* p = new Payload();             // D5: raw new on the fire path
    last.reset(p);
  }
};

}  // namespace fixture
