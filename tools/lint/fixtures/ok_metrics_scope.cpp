// scope: src/metrics/fixture_observer.cpp
// The metrics plane only OBSERVES a finished run: its iteration order can
// reorder exported rows but never a trace fingerprint, so D2/D3 do not
// apply there. This fixture pins that scope boundary.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Exporter {
  std::unordered_map<int, uint64_t> perGroup;

  uint64_t sum() const {
    uint64_t t = 0;
    for (const auto& [g, v] : perGroup) t += v;  // exempt scope
    return t;
  }
};

}  // namespace fixture
